#!/usr/bin/env python3
"""Cross-check documented memory-order inventories against actual uses.

Each lock-free header under src/core/ documents its std::memory_order_*
usage in a prose inventory plus one machine-readable line:

    // memorder-audit: relaxed=5 acquire=3 release=3 acq_rel=0 seq_cst=0

This script counts the std::memory_order_* tokens actually present in the
file (comments stripped, so the inventory prose itself is not counted) and
fails when any count disagrees with the audit line. Run from anywhere:

    python3 tools/check_memorder.py

Exit status 0 = all inventories accurate, 1 = mismatch or missing audit
line. Wired into CI (the `san` job) so the inventory comments cannot rot.
"""

import re
import sys
from pathlib import Path

FILES = [
    "src/core/spsc_lane.hpp",
    "src/core/mpsc_ring.hpp",
    "src/core/request_pool.hpp",
    "src/core/cont_table.hpp",
    "src/core/drain_claim.hpp",
    "src/core/part_ready.hpp",
]

ORDERS = ["relaxed", "acquire", "release", "acq_rel", "seq_cst"]

AUDIT_RE = re.compile(
    r"//\s*memorder-audit:\s*"
    r"relaxed=(\d+)\s+acquire=(\d+)\s+release=(\d+)\s+acq_rel=(\d+)\s+seq_cst=(\d+)"
)


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments (string literals in these headers never
    contain comment markers, so a lexer-grade pass is not needed)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", "", text)
    return text


def count_orders(code: str) -> dict:
    counts = dict.fromkeys(ORDERS, 0)
    # Longest-match first so memory_order_acq_rel is not read as _acquire etc.
    for m in re.finditer(r"std::memory_order_(acq_rel|seq_cst|acquire|release|relaxed)", code):
        counts[m.group(1)] += 1
    return counts


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failed = False
    for rel in FILES:
        path = root / rel
        if not path.is_file():
            print(f"check_memorder: MISSING FILE {rel}")
            failed = True
            continue
        text = path.read_text(encoding="utf-8")
        m = AUDIT_RE.search(text)
        if m is None:
            print(f"check_memorder: {rel}: no 'memorder-audit:' line found")
            failed = True
            continue
        documented = dict(zip(ORDERS, (int(g) for g in m.groups())))
        actual = count_orders(strip_comments(text))
        if documented != actual:
            diffs = ", ".join(
                f"{k}: documented {documented[k]} != actual {actual[k]}"
                for k in ORDERS
                if documented[k] != actual[k]
            )
            print(f"check_memorder: {rel}: inventory stale ({diffs})")
            failed = True
        else:
            summary = " ".join(f"{k}={actual[k]}" for k in ORDERS)
            print(f"check_memorder: {rel}: OK ({summary})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
