#!/usr/bin/env python3
"""Convert `[stats]` trailer lines from a bench run into a JSON array.

Reads stdin, finds every line of the form

    [stats] <label tokens...>: key=value key=value ...

and emits a JSON array of objects, one per line, preserving input order:

    [{"label": "offload rank0 lane3", "submits": 64, ...}, ...]

Values are coerced to int, then float, then kept as strings. Tokens before
the first key=value pair form the label (a trailing ':' is stripped).

Known trailer families (all share the generic key=value grammar):
  "offload rank0 frontend"  engines/lanes/lane_submits/shared_submits/
                            overflow_submits/... — overflow_submits counts
                            lane-table-overflow fallbacks to the shared ring
                            separately so per-lane throughput stays honest;
  "offload rank0 steal"     steal_rounds/steal_commands (multi-proxy work
                            stealing, only printed when stealing happened);
  "a10 proxies"             the proxy-count scaling ablation rows
                            (n/skew_rate/uniform_rate/skew_speedup/stolen).

With --cont-summary the output is instead an object

    {"entries": [...], "cont_summary": {"totals": {...},
                                        "app_mpi_drop_by_approach": {...}}}

where `totals` sums the continuation counters (armed/executed/deferred/
inline/posts) across every `... cont` trailer and `app_mpi_drop_by_approach`
collects the A9 ablation's per-approach app-thread MPI-time drop.

Usage:  ./bench_foo --stats | python3 tools/stats_to_json.py > stats.json
        ./bench_foo --stats | python3 tools/stats_to_json.py --cont-summary
"""
import json
import sys

CONT_COUNTERS = ("armed", "executed", "deferred", "inline", "posts")


def coerce(v: str):
    for cast in (int, float):
        try:
            return cast(v)
        except ValueError:
            pass
    return v


def parse_line(line: str):
    tokens = line.split()[1:]  # drop the "[stats]" marker
    label_parts, entry = [], {}
    for tok in tokens:
        if "=" in tok:
            k, _, v = tok.partition("=")
            entry[k] = coerce(v)
        else:
            label_parts.append(tok.rstrip(":"))
    entry["label"] = " ".join(label_parts)
    return entry


def cont_summary(entries):
    totals = {k: 0 for k in CONT_COUNTERS}
    drops = {}
    for e in entries:
        label = e.get("label", "")
        if label.endswith(" cont"):
            for k in CONT_COUNTERS:
                if isinstance(e.get(k), (int, float)):
                    totals[k] += e[k]
        # The A9 ablation rows: "[stats] a9 qcd: approach=... app_mpi_drop=..."
        if label.startswith("a9") and "approach" in e:
            drops[e["approach"]] = e.get("app_mpi_drop")
    return {"totals": totals, "app_mpi_drop_by_approach": drops}


def main(argv) -> int:
    entries = [
        parse_line(line)
        for line in sys.stdin
        if line.lstrip().startswith("[stats]")
    ]
    if "--cont-summary" in argv:
        out = {"entries": entries, "cont_summary": cont_summary(entries)}
    else:
        out = entries
    json.dump(out, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
