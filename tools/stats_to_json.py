#!/usr/bin/env python3
"""Convert `[stats]` trailer lines from a bench run into a JSON array.

Reads stdin, finds every line of the form

    [stats] <label tokens...>: key=value key=value ...

and emits a JSON array of objects, one per line, preserving input order:

    [{"label": "offload rank0 lane3", "submits": 64, ...}, ...]

Values are coerced to int, then float, then kept as strings. Tokens before
the first key=value pair form the label (a trailing ':' is stripped).

Usage:  ./bench_foo --stats | python3 tools/stats_to_json.py > stats.json
"""
import json
import sys


def coerce(v: str):
    for cast in (int, float):
        try:
            return cast(v)
        except ValueError:
            pass
    return v


def parse_line(line: str):
    tokens = line.split()[1:]  # drop the "[stats]" marker
    label_parts, entry = [], {}
    for tok in tokens:
        if "=" in tok:
            k, _, v = tok.partition("=")
            entry[k] = coerce(v)
        else:
            label_parts.append(tok.rstrip(":"))
    entry["label"] = " ".join(label_parts)
    return entry


def main() -> int:
    entries = [
        parse_line(line)
        for line in sys.stdin
        if line.lstrip().startswith("[stats]")
    ]
    json.dump(entries, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
