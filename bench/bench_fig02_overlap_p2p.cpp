// Figure 2: compute-communication overlap for nonblocking point-to-point
// calls, 8 B .. 2 MB, baseline vs comm-self vs offload.
//
// Paper shape to reproduce: baseline overlaps 70-80% for small (eager)
// messages, collapsing to ~1% for large (rendezvous) messages; comm-self
// recovers large-message overlap (~80%) at the cost of small-message overlap;
// offload is >=85% everywhere and ~99% for large messages.
#include <cstdio>
#include <vector>

#include "benchlib/overlap.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  const auto prof = machine::xeon_fdr();
  const std::vector<std::size_t> sizes = {8,    64,    512,    4096,   16384,
                                          65536, 131072, 262144, 524288,
                                          1u << 20, 2u << 20};
  const Approach approaches[] = {Approach::kBaseline, Approach::kCommSelf,
                                 Approach::kOffload};

  std::printf("Figure 2: compute-communication overlap, nonblocking p2p "
              "(2 ranks, %s)\n", prof.name.c_str());
  Table t({"size", "approach", "comm(us)", "post%", "wait%", "overlap%"});
  for (std::size_t sz : sizes) {
    for (Approach a : approaches) {
      OverlapResult r = overlap_p2p(a, prof, sz);
      t.row({fmt_bytes(sz), core::approach_name(a), fmt_us(r.comm_us),
             fmt_pct(r.post_frac), fmt_pct(r.wait_frac), fmt_pct(r.overlap_frac)});
    }
  }
  benchlib::finish_table(t);
  return 0;
}
