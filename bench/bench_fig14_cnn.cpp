// Figure 14: deep-learning CNN training throughput (images/s) vs nodes for
// every approach, hybrid data/model parallelism.
//
// Paper shape: all approaches match up to ~8 nodes (compute dominates);
// at 64 nodes comm-self and offload beat baseline by ~2x (the conv-gradient
// allreduces overlap with backprop + next forward), offload slightly ahead
// of comm-self.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/cnn/trainer.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using cnn::CnnPerfConfig;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  std::printf("Figure 14: CNN hybrid-parallel training, batch 256, Endeavor "
              "Xeon (images/s)\n");
  Table t({"nodes", "baseline", "iprobe", "comm-self", "offload"});
  for (int nodes : {2, 4, 8, 16, 32, 64}) {
    std::vector<std::string> row{fmt_int(nodes)};
    for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                       Approach::kCommSelf, Approach::kOffload}) {
      CnnPerfConfig cfg;
      cfg.nodes = nodes;
      cfg.iters = 3;
      cfg.approach = a;
      row.push_back(fmt_double(run_cnn_perf(cfg).imgs_per_sec, 0));
    }
    t.row(row);
  }
  benchlib::finish_table(t);

  // Companion: the conv-gradient allreduces at 64 nodes are ~40-130 MB, so
  // the tuner's segmented ring is what carries them; pin each algorithm to
  // show what the selection is worth at full scale.
  std::printf("\nFigure 14 (cont.): conv-gradient allreduce algorithm at 64 "
              "nodes, offload (images/s)\n");
  Table t2({"allreduce algorithm", "images/s"});
  for (const char* spec : {"allreduce:ring@0", "allreduce:rdbl@0",
                           "allreduce:reduce-bcast@0"}) {
    CnnPerfConfig cfg;
    cfg.nodes = 64;
    cfg.iters = 3;
    cfg.approach = Approach::kOffload;
    cfg.coll_spec = spec;
    const char* name = std::strchr(spec, ':') + 1;
    std::string label(name, std::strcspn(name, "@"));
    t2.row({label, fmt_double(run_cnn_perf(cfg).imgs_per_sec, 0)});
  }
  benchlib::finish_table(t2);
  return 0;
}
