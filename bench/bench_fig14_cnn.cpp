// Figure 14: deep-learning CNN training throughput (images/s) vs nodes for
// every approach, hybrid data/model parallelism.
//
// Paper shape: all approaches match up to ~8 nodes (compute dominates);
// at 64 nodes comm-self and offload beat baseline by ~2x (the conv-gradient
// allreduces overlap with backprop + next forward), offload slightly ahead
// of comm-self.
#include <cstdio>
#include <vector>

#include "apps/cnn/trainer.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using cnn::CnnPerfConfig;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  std::printf("Figure 14: CNN hybrid-parallel training, batch 256, Endeavor "
              "Xeon (images/s)\n");
  Table t({"nodes", "baseline", "iprobe", "comm-self", "offload"});
  for (int nodes : {2, 4, 8, 16, 32, 64}) {
    std::vector<std::string> row{fmt_int(nodes)};
    for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                       Approach::kCommSelf, Approach::kOffload}) {
      CnnPerfConfig cfg;
      cfg.nodes = nodes;
      cfg.iters = 3;
      cfg.approach = a;
      row.push_back(fmt_double(run_cnn_perf(cfg).imgs_per_sec, 0));
    }
    t.row(row);
  }
  benchlib::finish_table(t);
  return 0;
}
