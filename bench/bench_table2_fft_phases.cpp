// Table 2: SOI-FFT time per transform on the Endeavor Xeon Phi coprocessor
// cluster (ms) — internal / post / wait / misc / total, baseline vs offload.
//
// Paper shape: ~90-96% post-time reduction; wait-time reduction shrinks from
// 87% at 2 nodes to ~22% at 32 nodes (all-to-all bandwidth does not scale);
// internal compute 2-5% slower; total time always better with offload.
#include <cstdio>

#include "apps/fft/distributed_fft.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;
using fft::FftPerfConfig;
using fft::FftPerfResult;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  std::printf("Table 2: 1-D FFT (SOI) per transform, 2^25 points/node, "
              "Endeavor Xeon Phi cluster (ms)\n");
  Table t({"nodes", "approach", "internal", "post", "wait", "misc", "total",
           "slowdown", "post-red", "wait-red"});
  for (int nodes : {2, 4, 8, 16, 32}) {
    FftPerfConfig cfg;
    cfg.nodes = nodes;
    cfg.points_per_node = 1u << 25;
    cfg.profile = machine::xeon_phi();
    cfg.flops_per_ns_thread = 0.35;  // slow in-order cores
    cfg.iters = 3;
    cfg.approach = Approach::kBaseline;
    const FftPerfResult base = run_fft_perf(cfg);
    cfg.approach = Approach::kOffload;
    const FftPerfResult off = run_fft_perf(cfg);
    auto red = [](double b, double o) {
      return b > 0 ? fmt_pct((b - o) / b) : std::string("-");
    };
    t.row({fmt_int(nodes), "baseline", fmt_ms(base.internal_ms, 1),
           fmt_ms(base.post_ms, 3), fmt_ms(base.wait_ms, 1),
           fmt_ms(base.misc_ms, 1), fmt_ms(base.total_ms, 1), "", "", ""});
    t.row({fmt_int(nodes), "offload", fmt_ms(off.internal_ms, 1),
           fmt_ms(off.post_ms, 3), fmt_ms(off.wait_ms, 1),
           fmt_ms(off.misc_ms, 1), fmt_ms(off.total_ms, 1),
           fmt_pct((off.internal_ms - base.internal_ms) /
                   (base.internal_ms > 0 ? base.internal_ms : 1)),
           red(base.post_ms, off.post_ms), red(base.wait_ms, off.wait_ms)});
  }
  benchlib::finish_table(t);
  return 0;
}
