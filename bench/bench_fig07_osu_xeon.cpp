// Figure 7: OSU (a) latency and (b) bandwidth on the Xeon profile.
//
// Paper shape: offload adds ~0.3 us to small-message latency over baseline
// (command round-trip) and loses no bandwidth; comm-self adds ~11 us latency
// (THREAD_MULTIPLE + progress-thread lock contention) and halves bandwidth
// for 4 KB–256 KB messages.
#include <cstdio>
#include <vector>

#include "benchlib/osu.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  const auto prof = machine::xeon_fdr();
  const std::vector<std::size_t> sizes = {8,      64,     512,    4096,
                                          16384,  65536,  262144, 1u << 20,
                                          4u << 20};
  const Approach approaches[] = {Approach::kBaseline, Approach::kCommSelf,
                                 Approach::kOffload};

  std::printf("Figure 7(a): OSU one-way latency (2 ranks, %s)\n", prof.name.c_str());
  Table lat({"size", "baseline(us)", "comm-self(us)", "offload(us)"});
  for (std::size_t sz : sizes) {
    std::vector<std::string> row{fmt_bytes(sz)};
    for (Approach a : approaches) {
      row.push_back(fmt_us(osu_latency(a, prof, sz).latency_us));
    }
    lat.row(row);
  }
  benchlib::finish_table(lat);

  std::printf("\nFigure 7(b): OSU uni-directional bandwidth (2 ranks, %s)\n",
              prof.name.c_str());
  Table bw({"size", "baseline(MB/s)", "comm-self(MB/s)", "offload(MB/s)"});
  for (std::size_t sz : sizes) {
    std::vector<std::string> row{fmt_bytes(sz)};
    for (Approach a : approaches) {
      row.push_back(fmt_double(osu_bandwidth(a, prof, sz).bandwidth_mbps, 0));
    }
    bw.row(row);
  }
  benchlib::finish_table(bw);
  return 0;
}
