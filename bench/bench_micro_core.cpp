// google-benchmark microbenchmarks of the offload core data structures on
// REAL host time (not simulated): the lock-free MPSC command ring and the
// request pool. These validate that the structures the paper's ~140 ns
// command-post figure depends on are in fact O(100ns) operations.
#include <benchmark/benchmark.h>

#include <thread>

#include "core/command.hpp"
#include "core/mpsc_ring.hpp"
#include "core/request_pool.hpp"

namespace {

void BM_RingPushPop(benchmark::State& state) {
  core::MpscRing<core::Command> ring(1024);
  core::Command cmd;
  cmd.op = core::CmdOp::kIsend;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(cmd));
    core::Command out;
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPushPop);

void BM_RingContendedPush(benchmark::State& state) {
  static core::MpscRing<core::Command>* ring = nullptr;
  static std::thread* drainer = nullptr;
  static std::atomic<bool> stop{false};
  if (state.thread_index() == 0) {
    ring = new core::MpscRing<core::Command>(4096);
    stop.store(false);
    drainer = new std::thread([] {
      core::Command out;
      while (!stop.load(std::memory_order_acquire)) {
        while (ring->try_pop(out)) {
        }
      }
    });
  }
  core::Command cmd;
  cmd.op = core::CmdOp::kIsend;
  for (auto _ : state) {
    while (!ring->try_push(cmd)) {
    }
  }
  if (state.thread_index() == 0) {
    stop.store(true, std::memory_order_release);
    drainer->join();
    delete drainer;
    delete ring;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingContendedPush)->Threads(1)->Threads(2)->Threads(4);

void BM_RequestPoolAllocFree(benchmark::State& state) {
  core::RequestPool pool(4096);
  for (auto _ : state) {
    const std::uint32_t idx = pool.alloc();
    benchmark::DoNotOptimize(idx);
    pool.free(idx);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestPoolAllocFree);

void BM_RequestPoolCompleteCheck(benchmark::State& state) {
  core::RequestPool pool(16);
  const std::uint32_t idx = pool.alloc();
  smpi::Status st;
  for (auto _ : state) {
    pool.complete(idx, st);
    benchmark::DoNotOptimize(pool.done(idx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestPoolCompleteCheck);

}  // namespace

BENCHMARK_MAIN();
