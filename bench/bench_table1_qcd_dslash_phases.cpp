// Table 1: QCD Wilson-Dslash time per iteration for a 32^3 x 256 lattice on
// the Endeavor Xeon cluster — internal-compute / post / wait / misc / total
// for baseline vs offload, plus the derived reduction columns.
//
// Paper shape: offload posts in <1 us (>99% reduction) at every scale; wait
// time drops 99% at small scale (full overlap) shrinking to 33% at 256
// nodes; internal compute is 1-5% slower (one core donated to the offload
// thread); total time is lower everywhere.
#include <cstdio>

#include "apps/qcd/dslash_perf.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;
using qcd::QcdPerfConfig;
using qcd::QcdPerfResult;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  std::printf("Table 1: QCD Dslash time per iteration, 32^3x256 lattice, "
              "Endeavor Xeon (us)\n");
  Table t({"nodes", "approach", "internal", "post", "wait", "misc", "total",
           "slowdown", "post-red", "wait-red"});
  for (int nodes : {8, 16, 32, 64, 128, 256}) {
    QcdPerfConfig cfg;
    cfg.global = {32, 32, 32, 256};
    cfg.nodes = nodes;
    cfg.iters = 10;
    cfg.approach = Approach::kBaseline;
    const QcdPerfResult base = run_qcd_perf(cfg);
    cfg.approach = Approach::kOffload;
    const QcdPerfResult off = run_qcd_perf(cfg);
    auto red = [](double b, double o) {
      return b > 0 ? fmt_pct((b - o) / b) : std::string("-");
    };
    t.row({fmt_int(nodes), "baseline", fmt_us(base.internal_us, 0),
           fmt_us(base.post_us), fmt_us(base.wait_us, 0), fmt_us(base.misc_us, 0),
           fmt_us(base.total_us, 0), "", "", ""});
    t.row({fmt_int(nodes), "offload", fmt_us(off.internal_us, 0),
           fmt_us(off.post_us), fmt_us(off.wait_us, 0), fmt_us(off.misc_us, 0),
           fmt_us(off.total_us, 0),
           fmt_pct((off.internal_us - base.internal_us) /
                   (base.internal_us > 0 ? base.internal_us : 1)),
           red(base.post_us, off.post_us), red(base.wait_us, off.wait_us)});
  }
  benchlib::finish_table(t);
  return 0;
}
