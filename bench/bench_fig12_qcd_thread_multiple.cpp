// Figure 12: Wilson-Dslash with MPI_THREAD_MULTIPLE thread-groups — multiple
// application threads concurrently issue the halo exchange, relative to the
// same approach with funneled issue.
//
// Paper shape: concurrent issue through a big-lock MPI hurts or barely helps
// baseline/iprobe/comm-self; through the offload command queue it gains up
// to ~15% (the communication-parallelism benefit without the lock).
#include <cstdio>

#include "apps/qcd/dslash_perf.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;
using qcd::QcdPerfConfig;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  std::printf("Figure 12: Dslash with thread-groups (4 groups) vs funneled, "
              "32^3x256, Endeavor Xeon (relative speedup)\n");
  Table t({"nodes", "baseline", "iprobe", "comm-self", "offload"});
  for (int nodes : {64, 128, 256}) {
    std::vector<std::string> row{fmt_int(nodes)};
    for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                       Approach::kCommSelf, Approach::kOffload}) {
      QcdPerfConfig cfg;
      cfg.global = {32, 32, 32, 256};
      cfg.nodes = nodes;
      cfg.iters = 10;
      cfg.approach = a;
      const double funneled = run_qcd_perf(cfg).tflops;
      cfg.thread_groups = 4;
      const double grouped = run_qcd_perf(cfg).tflops;
      row.push_back(fmt_double(grouped / funneled, 3));
    }
    t.row(row);
  }
  benchlib::finish_table(t);
  return 0;
}
