// Ablations over the design choices DESIGN.md calls out:
//   A1 eager/rendezvous threshold — moves the Fig. 2/4 overlap cliff;
//   A2 rendezvous pipeline depth — how much large-transfer overlap the
//      baseline gets "for free" from NIC autonomy;
//   A3 offload-thread detection latency (doorbell poll granularity);
//   A4 the dedicated core's cost — Dslash internal-compute slowdown vs the
//      thread count donated to communication;
//   A5 command-queue capacity under a burst of posts (ring-full stalls).
#include <cstdio>

#include "apps/qcd/dslash_perf.hpp"
#include "benchlib/osu.hpp"
#include "benchlib/overlap.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"
#include "mpi/cluster.hpp"

using namespace benchlib;
using core::Approach;

namespace {

void a1_eager_threshold() {
  std::printf("A1: eager/rendezvous threshold vs baseline overlap at 192K\n");
  Table t({"threshold", "comm(us)", "overlap%"});
  for (std::size_t thr : {32u << 10, 128u << 10, 512u << 10}) {
    auto prof = machine::xeon_fdr();
    prof.eager_threshold = thr;
    const OverlapResult r = overlap_p2p(Approach::kBaseline, prof, 192 << 10);
    t.row({fmt_bytes(thr), fmt_us(r.comm_us), fmt_pct(r.overlap_frac)});
  }
  benchlib::finish_table(t);
}

void a2_pipeline_depth() {
  std::printf("\nA2: rndv pipeline depth vs baseline overlap at 2M\n");
  Table t({"depth", "overlap%", "wait%"});
  for (int depth : {1, 4, 16, 64}) {
    auto prof = machine::xeon_fdr();
    prof.rndv_pipeline_depth = depth;
    const OverlapResult r = overlap_p2p(Approach::kBaseline, prof, 2 << 20);
    t.row({fmt_int(depth), fmt_pct(r.overlap_frac), fmt_pct(r.wait_frac)});
  }
  benchlib::finish_table(t);
}

void a3_detect_latency() {
  std::printf("\nA3: offload doorbell detection latency vs 8B latency\n");
  Table t({"detect(ns)", "one-way latency(us)"});
  for (int ns : {10, 40, 200, 1000}) {
    auto prof = machine::xeon_fdr();
    prof.cmd_detect = sim::Time(ns);
    prof.done_flag_detect = sim::Time(ns);
    const OsuResult r = osu_latency(Approach::kOffload, prof, 8);
    t.row({fmt_int(ns), fmt_us(r.latency_us)});
  }
  benchlib::finish_table(t);
}

void a4_dedicated_core() {
  std::printf("\nA4: cost of the dedicated core — Dslash internal compute vs "
              "cores per rank (16 nodes, 32^3x256)\n");
  Table t({"cores/rank", "baseline internal(us)", "offload internal(us)",
           "slowdown"});
  for (int cores : {4, 8, 14, 28}) {
    qcd::QcdPerfConfig cfg;
    cfg.global = {32, 32, 32, 256};
    cfg.nodes = 16;
    cfg.iters = 5;
    cfg.profile.cores_per_rank = cores;
    cfg.approach = Approach::kBaseline;
    const double base = run_qcd_perf(cfg).internal_us;
    cfg.approach = Approach::kOffload;
    const double off = run_qcd_perf(cfg).internal_us;
    t.row({fmt_int(cores), fmt_us(base, 0), fmt_us(off, 0),
           fmt_pct((off - base) / base)});
  }
  benchlib::finish_table(t);
}

void a5_ring_capacity() {
  std::printf("\nA5: command-ring capacity under a 512-post burst\n");
  Table t({"capacity", "ring-full stalls", "burst time(us)"});
  for (std::size_t cap : {16u, 64u, 256u, 1024u}) {
    smpi::ClusterConfig cc;
    cc.nranks = 2;
    cc.deadline = sim::Time::from_sec(60);
    smpi::Cluster cluster(cc);
    std::uint64_t stalls = 0;
    double us = 0;
    cluster.run([&](smpi::RankCtx& rc) {
      core::OffloadProxy p(rc, cap, 4096);
      p.start();
      const int peer = 1 - rc.rank();
      std::vector<core::PReq> reqs;
      const sim::Time t0 = sim::now();
      for (int i = 0; i < 512; ++i) {
        reqs.push_back(p.irecv(nullptr, 64, smpi::Datatype::kByte, peer, i));
        reqs.push_back(p.isend(nullptr, 64, smpi::Datatype::kByte, peer, i));
      }
      if (rc.rank() == 0) us = (sim::now() - t0).us();
      p.waitall(reqs);
      if (rc.rank() == 0) stalls = p.channel().stats().ring_full_stalls;
      p.barrier();
      p.stop();
    });
    t.row({fmt_int(static_cast<long long>(cap)),
           fmt_int(static_cast<long long>(stalls)), fmt_us(us, 1)});
  }
  benchlib::finish_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  a1_eager_threshold();
  a2_pipeline_depth();
  a3_detect_latency();
  a4_dedicated_core();
  a5_ring_capacity();
  return 0;
}
