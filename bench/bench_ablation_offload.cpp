// Ablations over the design choices DESIGN.md calls out:
//   A1 eager/rendezvous threshold — moves the Fig. 2/4 overlap cliff;
//   A2 rendezvous pipeline depth — how much large-transfer overlap the
//      baseline gets "for free" from NIC autonomy;
//   A3 offload-thread detection latency (doorbell poll granularity);
//   A4 the dedicated core's cost — Dslash internal-compute slowdown vs the
//      thread count donated to communication;
//   A5 command-queue capacity under a burst of posts (ring-full stalls);
//   A6 wire faults — overlap retention and reliability-layer work vs drop
//      rate, with an end-to-end payload digest proving the data is intact;
//   A7 submission front-end — the single shared MPSC ring vs per-thread SPSC
//      lanes vs lanes+batching, measured as the multi-thread post window;
//   A8 collective algorithm selection — recursive doubling vs the segmented
//      ring allreduce vs ring + doorbell batching, as effective bandwidth
//      over the message-size sweep (the CollTuner's whole reason to exist);
//   A9 completion discovery — the polling waitall vs the continuation graph
//      (when_all -> engine-run callbacks), as application-thread MPI time
//      (post + wait phases) per Dslash iteration across all four approaches;
//   A10 sharded progress engine — message rate vs proxy count (1/2/4 engine
//      fibers) under a skewed (every submitter hits one peer) and a uniform
//      (submitters spread over four peers) distribution; the skewed column
//      is what bounded work stealing exists for;
//   A11 persistent requests — init-once/start-many send windows vs one-shot
//      isend at 8 submitter threads: every generation replays the cached
//      envelope for a slot-index re-arm (cmd_enqueue_persist) instead of
//      paying full serialization (cmd_enqueue) per message.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/proxy.hpp"
#include "core/proxy_options.hpp"

#include "apps/qcd/dslash_perf.hpp"
#include "benchlib/osu.hpp"
#include "benchlib/overlap.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"
#include "mpi/cluster.hpp"
#include "sim/sync.hpp"

using namespace benchlib;
using core::Approach;

namespace {

void a1_eager_threshold() {
  std::printf("A1: eager/rendezvous threshold vs baseline overlap at 192K\n");
  Table t({"threshold", "comm(us)", "overlap%"});
  for (std::size_t thr : {32u << 10, 128u << 10, 512u << 10}) {
    auto prof = machine::xeon_fdr();
    prof.eager_threshold = thr;
    const OverlapResult r = overlap_p2p(Approach::kBaseline, prof, 192 << 10);
    t.row({fmt_bytes(thr), fmt_us(r.comm_us), fmt_pct(r.overlap_frac)});
  }
  benchlib::finish_table(t);
}

void a2_pipeline_depth() {
  std::printf("\nA2: rndv pipeline depth vs baseline overlap at 2M\n");
  Table t({"depth", "overlap%", "wait%"});
  for (int depth : {1, 4, 16, 64}) {
    auto prof = machine::xeon_fdr();
    prof.rndv_pipeline_depth = depth;
    const OverlapResult r = overlap_p2p(Approach::kBaseline, prof, 2 << 20);
    t.row({fmt_int(depth), fmt_pct(r.overlap_frac), fmt_pct(r.wait_frac)});
  }
  benchlib::finish_table(t);
}

void a3_detect_latency() {
  std::printf("\nA3: offload doorbell detection latency vs 8B latency\n");
  Table t({"detect(ns)", "one-way latency(us)"});
  for (int ns : {10, 40, 200, 1000}) {
    auto prof = machine::xeon_fdr();
    prof.cmd_detect = sim::Time(ns);
    prof.done_flag_detect = sim::Time(ns);
    const OsuResult r = osu_latency(Approach::kOffload, prof, 8);
    t.row({fmt_int(ns), fmt_us(r.latency_us)});
  }
  benchlib::finish_table(t);
}

void a4_dedicated_core() {
  std::printf("\nA4: cost of the dedicated core — Dslash internal compute vs "
              "cores per rank (16 nodes, 32^3x256)\n");
  Table t({"cores/rank", "baseline internal(us)", "offload internal(us)",
           "slowdown"});
  for (int cores : {4, 8, 14, 28}) {
    qcd::QcdPerfConfig cfg;
    cfg.global = {32, 32, 32, 256};
    cfg.nodes = 16;
    cfg.iters = 5;
    cfg.profile.cores_per_rank = cores;
    cfg.approach = Approach::kBaseline;
    const double base = run_qcd_perf(cfg).internal_us;
    cfg.approach = Approach::kOffload;
    const double off = run_qcd_perf(cfg).internal_us;
    t.row({fmt_int(cores), fmt_us(base, 0), fmt_us(off, 0),
           fmt_pct((off - base) / base)});
  }
  benchlib::finish_table(t);
}

void a5_ring_capacity() {
  std::printf("\nA5: command-ring capacity under a 512-post burst\n");
  Table t({"capacity", "ring-full stalls", "burst time(us)"});
  for (std::size_t cap : {16u, 64u, 256u, 1024u}) {
    smpi::ClusterConfig cc;
    cc.nranks = 2;
    cc.deadline = sim::Time::from_sec(60);
    smpi::Cluster cluster(cc);
    std::uint64_t stalls = 0;
    double us = 0;
    cluster.run([&](smpi::RankCtx& rc) {
      // lane_count = 0 pins the shared MPSC ring so the stalls land in
      // ring_full_stalls — the knob this ablation sweeps.
      core::OffloadProxy p(rc, core::ProxyOptions{.ring_capacity = cap,
                                                  .lane_count = 0});
      p.start_engine();
      const int peer = 1 - rc.rank();
      std::vector<core::PReq> reqs;
      const sim::Time t0 = sim::now();
      for (int i = 0; i < 512; ++i) {
        reqs.push_back(p.irecv(nullptr, 64, smpi::Datatype::kByte, peer, i));
        reqs.push_back(p.isend(nullptr, 64, smpi::Datatype::kByte, peer, i));
      }
      if (rc.rank() == 0) us = (sim::now() - t0).us();
      p.waitall(reqs);
      if (rc.rank() == 0) stalls = p.channel().stats().ring_full_stalls;
      p.barrier();
      p.stop();
    });
    t.row({fmt_int(static_cast<long long>(cap)),
           fmt_int(static_cast<long long>(stalls)), fmt_us(us, 1)});
  }
  benchlib::finish_table(t);
}

std::uint64_t fnv1a(const char* data, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

struct A6Cell {
  double comm_us = 0;
  double overlap = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_drops = 0;
  std::uint64_t digest = 0;  ///< FNV over every received payload, in order
};

/// One (approach, drop-rate) cell: 2 ranks exchange a rendezvous message and
/// an eager message per iteration, verify/digest every received byte, and
/// measure overlap the same way overlap_p2p does (wait shrinkage when comm
/// is covered by compute). The digest must not depend on the drop rate —
/// that is the reliability layer's whole contract.
A6Cell a6_run(Approach a, double drop) {
  auto prof = machine::xeon_fdr();
  prof.eager_threshold = 16 << 10;  // rendezvous at 48K, eager at 1K
  prof.rndv_chunk_bytes = 16 << 10;
  prof.faults.on = drop > 0;
  prof.faults.drop = drop;
  prof.faults.dup = drop / 2;
  prof.faults.seed = 42;
  smpi::ClusterConfig cc;
  cc.nranks = 2;
  cc.profile = prof;
  cc.thread_level = core::required_thread_level(a);
  cc.deadline = sim::Time::from_sec(600);
  smpi::Cluster cluster(cc);
  A6Cell cell;
  constexpr std::size_t kBig = 48 << 10;
  constexpr std::size_t kSmall = 1 << 10;
  constexpr int kWarmup = 2, kIters = 8;
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int peer = 1 - rc.rank();
    std::vector<char> sbig(kBig), rbig(kBig), ssmall(kSmall), rsmall(kSmall);
    std::uint64_t digest = 14695981039346656037ull;
    sim::Time wait1 = sim::Time::zero(), wait2 = sim::Time::zero(),
              comm = sim::Time::zero();
    for (int step = 1; step <= 2; ++step) {
      for (int i = 0; i < kWarmup + kIters; ++i) {
        const char fill = static_cast<char>('A' + (rc.rank() * 31 + i) % 23);
        std::memset(sbig.data(), fill, kBig);
        std::memset(ssmall.data(), fill ^ 0x55, kSmall);
        p->barrier();
        const sim::Time t0 = sim::now();
        core::PReq reqs[4] = {
            p->irecv(rbig.data(), kBig, smpi::Datatype::kByte, peer, 1),
            p->irecv(rsmall.data(), kSmall, smpi::Datatype::kByte, peer, 2),
            p->isend(sbig.data(), kBig, smpi::Datatype::kByte, peer, 1),
            p->isend(ssmall.data(), kSmall, smpi::Datatype::kByte, peer, 2)};
        if (step == 2) smpi::compute(sim::Time(comm.ns() / kIters));
        const sim::Time w0 = sim::now();
        p->waitall(reqs);
        const sim::Time w = sim::now() - w0;
        if (i >= kWarmup) {
          (step == 1 ? wait1 : wait2) += w;
          if (step == 1) comm += sim::now() - t0;
        }
        const char expect = static_cast<char>('A' + (peer * 31 + i) % 23);
        for (std::size_t b = 0; b < kBig; ++b) {
          if (rbig[b] != expect) throw std::runtime_error("payload corrupted");
        }
        for (std::size_t b = 0; b < kSmall; ++b) {
          if (rsmall[b] != static_cast<char>(expect ^ 0x55)) {
            throw std::runtime_error("payload corrupted (eager)");
          }
        }
        if (step == 1 && i >= kWarmup) {
          digest = fnv1a(rbig.data(), kBig, digest);
          digest = fnv1a(rsmall.data(), kSmall, digest);
        }
      }
    }
    p->barrier();
    if (rc.rank() == 0) {
      cell.comm_us = comm.us() / kIters;
      cell.overlap = std::max(
          0.0, (wait1.us() - wait2.us()) / kIters / std::max(cell.comm_us, 1e-9));
      cell.digest = digest;
    }
    p->stop();
  });
  for (int r = 0; r < cluster.nranks(); ++r) {
    cell.retransmits += cluster.rank(r).rel_stats().retransmits;
    cell.dup_drops += cluster.rank(r).rel_stats().dup_drops;
  }
  return cell;
}

void a6_fault_sweep() {
  std::printf("\nA6: wire faults (seed 42) — overlap + reliability work vs "
              "drop rate, 48K rndv + 1K eager per iter\n");
  Table t({"drop", "approach", "comm(us)", "overlap%", "retrans", "dup-drops",
           "rx digest"});
  for (double drop : {0.0, 0.02, 0.05}) {
    for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                       Approach::kCommSelf, Approach::kOffload}) {
      const A6Cell c = a6_run(a, drop);
      char dropbuf[16], digbuf[24];
      std::snprintf(dropbuf, sizeof dropbuf, "%.2f", drop);
      std::snprintf(digbuf, sizeof digbuf, "%016llx",
                    static_cast<unsigned long long>(c.digest));
      t.row({dropbuf, core::approach_name(a), fmt_us(c.comm_us),
             fmt_pct(c.overlap), fmt_int(static_cast<long long>(c.retransmits)),
             fmt_int(static_cast<long long>(c.dup_drops)), digbuf});
    }
  }
  benchlib::finish_table(t);
}

struct A7Cell {
  double window_us = 0;  ///< max(last post end) - min(first post start)
  double rate = 0;       ///< posted messages per microsecond of window
};

/// One (front-end, thread-count) cell: rank 0 runs `threads` submitter
/// fibers, each posting 64 small isends (singly or through post_batch);
/// rank 1 pre-posts the matching irecvs. The figure of merit is the post
/// window across all submitters — with the single shared ring the producers
/// serialize on the tail cache line, with lanes they post in parallel, and
/// batching amortizes the per-command enqueue + doorbell on top.
A7Cell a7_run(std::size_t lanes, bool batch, int threads) {
  constexpr int kPerThread = 64;
  smpi::ClusterConfig cc;
  cc.nranks = 2;
  cc.deadline = sim::Time::from_sec(120);
  smpi::Cluster cluster(cc);
  A7Cell cell;
  cluster.run([&](smpi::RankCtx& rc) {
    core::ProxyOptions opts;
    opts.ring_capacity = 4096;
    opts.pool_capacity = 1u << 15;
    opts.lane_count = lanes;
    opts.lane_capacity = 256;
    opts.batch_flush = 8;
    core::OffloadProxy p(rc, opts);
    p.start_engine();
    if (rc.rank() == 0) {
      auto done = std::make_shared<int>(0);
      auto done_n = std::make_shared<sim::Notifier>(sim::Time(200));
      auto t_min = std::make_shared<sim::Time>(sim::Time::max());
      auto t_max = std::make_shared<sim::Time>(sim::Time::zero());
      auto submit = [&p, done, done_n, t_min, t_max, batch](int tid) {
        std::vector<core::PReq> reqs(kPerThread);
        const sim::Time t0 = sim::now();
        if (batch) {
          std::vector<core::BatchOp> ops;
          ops.reserve(kPerThread);
          for (int i = 0; i < kPerThread; ++i) {
            ops.push_back(core::BatchOp::isend(nullptr, 8, smpi::Datatype::kByte,
                                               1, tid * 1000 + i));
          }
          p.post_batch(ops, reqs);
        } else {
          for (int i = 0; i < kPerThread; ++i) {
            reqs[i] =
                p.isend(nullptr, 8, smpi::Datatype::kByte, 1, tid * 1000 + i);
          }
        }
        const sim::Time t1 = sim::now();
        *t_min = std::min(*t_min, t0);
        *t_max = std::max(*t_max, t1);
        p.waitall(reqs);
        ++*done;
        done_n->signal();
      };
      for (int t = 1; t < threads; ++t) {
        rc.cluster().spawn_on(0, "sub" + std::to_string(t),
                              [submit, t]() { submit(t); });
      }
      submit(0);
      // Sleep on the submitter-exit notifier instead of spinning the clock.
      for (std::uint64_t seen = 0; *done < threads;) {
        seen = done_n->wait_beyond(seen);
      }
      cell.window_us = (*t_max - *t_min).us();
      cell.rate =
          threads * kPerThread / std::max(cell.window_us, 1e-9);
    } else {
      std::vector<core::PReq> reqs;
      reqs.reserve(static_cast<std::size_t>(threads) * kPerThread);
      for (int t = 0; t < threads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
          reqs.push_back(
              p.irecv(nullptr, 8, smpi::Datatype::kByte, 0, t * 1000 + i));
        }
      }
      p.waitall(reqs);
    }
    p.barrier();
    report_proxy_stats(p);
    p.stop();
  });
  return cell;
}

void a7_submission_lanes() {
  std::printf("\nA7: submission front-end — single shared ring vs per-thread "
              "lanes vs lanes+batching, 64 isends/thread\n");
  const std::vector<int> threads = Runner::smoke_enabled()
                                       ? std::vector<int>{1, 8}
                                       : std::vector<int>{1, 2, 4, 8, 16};
  Table t({"threads", "single-ring(us)", "lanes(us)", "lanes+batch(us)",
           "rate speedup"});
  for (int T : threads) {
    const A7Cell s = a7_run(0, false, T);
    const A7Cell l = a7_run(16, false, T);
    const A7Cell b = a7_run(16, true, T);
    char spd[16];
    std::snprintf(spd, sizeof spd, "%.2fx", b.rate / std::max(s.rate, 1e-12));
    t.row({fmt_int(T), fmt_us(s.window_us, 2), fmt_us(l.window_us, 2),
           fmt_us(b.window_us, 2), spd});
  }
  benchlib::finish_table(t);
}

struct A8Cell {
  double us = 0;                       ///< pure allreduce time
  std::uint64_t amortized = 0;         ///< doorbells saved by stage batching
};

/// One (forced algorithm, doorbell batching) cell: 8 offload ranks time a
/// pure (phantom-buffer) float-sum allreduce of `bytes`.
A8Cell a8_run(const std::string& spec, bool batch, std::size_t bytes) {
  smpi::ClusterConfig cc;
  cc.nranks = 8;
  cc.profile = machine::xeon_fdr();
  cc.profile.coll_batch_doorbells = batch;
  cc.coll_spec = spec;
  cc.thread_level = core::required_thread_level(Approach::kOffload);
  cc.deadline = sim::Time::from_sec(600);
  smpi::Cluster cluster(cc);
  A8Cell cell;
  constexpr int kWarmup = 1, kIters = 4;
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(Approach::kOffload, rc);
    p->start_engine();
    const std::size_t count = bytes / sizeof(float);
    sim::Time acc = sim::Time::zero();
    for (int i = 0; i < kWarmup + kIters; ++i) {
      p->barrier();
      const sim::Time t0 = sim::now();
      core::PReq rq = p->iallreduce(nullptr, nullptr, count,
                                    smpi::Datatype::kFloat, smpi::Op::kSum);
      p->wait(rq);
      if (i >= kWarmup) acc += sim::now() - t0;
    }
    p->barrier();
    if (rc.rank() == 0) cell.us = acc.us() / kIters;
    p->stop();
  });
  cell.amortized = cluster.rank(0).coll_stats().doorbells_amortized;
  return cell;
}

void a8_coll_algorithms() {
  std::printf("\nA8: allreduce algorithm — recursive doubling vs segmented "
              "ring vs ring+doorbell-batch, 8 ranks, offload, float sum\n");
  // Cheap even at 4M (phantom payloads), so smoke mode runs the full sweep
  // and BENCH_pr5.json carries the whole speedup curve.
  const std::vector<std::size_t> sizes = {64u << 10, 256u << 10, 1u << 20,
                                          4u << 20};
  Table t({"size", "rdbl(us)", "ring(us)", "ring+batch(us)", "eff.bw speedup",
           "amortized"});
  for (std::size_t bytes : sizes) {
    const A8Cell rd = a8_run("allreduce:rdbl@0", false, bytes);
    const A8Cell rg = a8_run("allreduce:ring@0", false, bytes);
    const A8Cell rb = a8_run("allreduce:ring@0", true, bytes);
    // Effective bandwidth ~ bytes / time, so the bandwidth ratio is the
    // inverse time ratio; report ring+batch vs recursive doubling.
    const double speedup = rd.us / std::max(rb.us, 1e-9);
    char spd[16];
    std::snprintf(spd, sizeof spd, "%.2fx", speedup);
    t.row({fmt_bytes(bytes), fmt_us(rd.us), fmt_us(rg.us), fmt_us(rb.us), spd,
           fmt_int(static_cast<long long>(rb.amortized))});
    if (Runner::stats_enabled()) {
      std::printf(
          "[stats] a8 allreduce: bytes=%zu rdbl_us=%.3f ring_us=%.3f "
          "ring_batch_us=%.3f speedup=%.2f amortized=%llu\n",
          bytes, rd.us, rg.us, rb.us, speedup,
          static_cast<unsigned long long>(rb.amortized));
    }
  }
  benchlib::finish_table(t);
}

struct A9Cell {
  double post_us = 0;
  double wait_us = 0;
};

/// One (approach, completion-mode) cell: the Dslash harness at a small
/// problem (cheap enough for smoke mode), either polling waitall or arming
/// the when_all continuation graph at post time. The figure of merit is the
/// application thread's MPI time per iteration — post + wait — which is
/// exactly what the continuation subsystem exists to shrink.
A9Cell a9_run(Approach a, bool continuations) {
  qcd::QcdPerfConfig cfg;
  cfg.global = {16, 16, 16, 64};
  cfg.nodes = 4;
  cfg.ranks_per_node = 2;
  cfg.iters = 5;
  cfg.warmup = 1;
  cfg.approach = a;
  cfg.continuations = continuations;
  const qcd::QcdPerfResult r = qcd::run_qcd_perf(cfg);
  if (continuations && Runner::stats_enabled() &&
      r.cont_armed + r.cont_inline + r.cont_posts != 0) {
    std::printf(
        "[stats] a9 %s cont: armed=%llu executed=%llu deferred=%llu "
        "inline=%llu posts=%llu\n",
        core::approach_name(a),
        static_cast<unsigned long long>(r.cont_armed),
        static_cast<unsigned long long>(r.cont_executed),
        static_cast<unsigned long long>(r.cont_deferred),
        static_cast<unsigned long long>(r.cont_inline),
        static_cast<unsigned long long>(r.cont_posts));
  }
  return {r.post_us, r.wait_us};
}

void a9_continuations() {
  std::printf("\nA9: completion discovery — polling waitall vs when_all "
              "continuation graph, Dslash app-thread MPI time (8 ranks, "
              "16^3x64)\n");
  Table t({"approach", "poll post+wait(us)", "cont post+wait(us)",
           "app MPI drop"});
  for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                     Approach::kCommSelf, Approach::kOffload}) {
    const A9Cell poll = a9_run(a, false);
    const A9Cell cont = a9_run(a, true);
    const double poll_mpi = poll.post_us + poll.wait_us;
    const double cont_mpi = cont.post_us + cont.wait_us;
    const double drop = (poll_mpi - cont_mpi) / std::max(poll_mpi, 1e-9);
    t.row({core::approach_name(a), fmt_us(poll_mpi), fmt_us(cont_mpi),
           fmt_pct(drop)});
    if (Runner::stats_enabled()) {
      std::printf(
          "[stats] a9 qcd: approach=%s poll_post_us=%.3f poll_wait_us=%.3f "
          "cont_post_us=%.3f cont_wait_us=%.3f app_mpi_drop=%.3f\n",
          core::approach_name(a), poll.post_us, poll.wait_us, cont.post_us,
          cont.wait_us, drop);
    }
  }
  benchlib::finish_table(t);
}

struct A10Cell {
  double rate = 0;          ///< completed messages per us of the send window
  std::uint64_t stolen = 0; ///< commands siblings drained from the hot engine
};

/// One (proxy-count, distribution) cell: rank 0 runs 8 submitter fibers, each
/// posting 64 small isends and waiting them out; ranks 1..4 pre-post the
/// matching receives. Skewed sends everything to peer 1 (the peer-hash
/// partition lands the full stream on ONE engine — only stealing can spread
/// it); uniform spreads submitters over all four peers (the partition itself
/// shards the load). The figure of merit is end-to-end: first post to last
/// completed waitall, so engine drain/issue/completion throughput — not the
/// submission front-end A7 already measures — dominates.
A10Cell a10_run(std::size_t proxies, bool skewed) {
  constexpr int kThreads = 8, kPerThread = 64, kPeers = 4;
  smpi::ClusterConfig cc;
  cc.nranks = 1 + kPeers;
  cc.deadline = sim::Time::from_sec(120);
  smpi::Cluster cluster(cc);
  A10Cell cell;
  cluster.run([&](smpi::RankCtx& rc) {
    core::ProxyOptions opts;
    opts.ring_capacity = 4096;
    opts.pool_capacity = 1u << 15;
    opts.lane_count = 16;
    opts.lane_capacity = 256;
    opts.proxy_count = proxies;
    opts.steal_bound = 8;
    core::OffloadProxy p(rc, opts);
    p.start_engine();
    if (rc.rank() == 0) {
      auto done = std::make_shared<int>(0);
      auto done_n = std::make_shared<sim::Notifier>(sim::Time(200));
      auto t_min = std::make_shared<sim::Time>(sim::Time::max());
      auto t_max = std::make_shared<sim::Time>(sim::Time::zero());
      auto submit = [&p, done, done_n, t_min, t_max, skewed](int tid) {
        const int peer = skewed ? 1 : 1 + (tid % kPeers);
        std::vector<core::PReq> reqs(kPerThread);
        const sim::Time t0 = sim::now();
        for (int i = 0; i < kPerThread; ++i) {
          reqs[static_cast<std::size_t>(i)] = p.isend(
              nullptr, 8, smpi::Datatype::kByte, peer, tid * 1000 + i);
        }
        p.waitall(reqs);
        const sim::Time t1 = sim::now();
        *t_min = std::min(*t_min, t0);
        *t_max = std::max(*t_max, t1);
        ++*done;
        done_n->signal();
      };
      for (int t = 1; t < kThreads; ++t) {
        rc.cluster().spawn_on(0, "sub" + std::to_string(t),
                              [submit, t]() { submit(t); });
      }
      submit(0);
      for (std::uint64_t seen = 0; *done < kThreads;) {
        seen = done_n->wait_beyond(seen);
      }
      cell.rate = kThreads * kPerThread /
                  std::max((*t_max - *t_min).us(), 1e-9);
      cell.stolen = p.channel().stats().steal_commands;
    } else {
      std::vector<core::PReq> reqs;
      for (int t = 0; t < kThreads; ++t) {
        const int peer = skewed ? 1 : 1 + (t % kPeers);
        if (peer != rc.rank()) continue;
        for (int i = 0; i < kPerThread; ++i) {
          reqs.push_back(
              p.irecv(nullptr, 8, smpi::Datatype::kByte, 0, t * 1000 + i));
        }
      }
      p.waitall(reqs);
    }
    p.barrier();
    p.stop();
  });
  return cell;
}

void a10_proxy_scaling() {
  std::printf("\nA10: sharded progress engine — message rate vs proxy count, "
              "8 submitter threads x 64 isends, skewed (all->peer 1) vs "
              "uniform (4 peers)\n");
  Table t({"proxies", "skew rate(msg/us)", "uniform rate(msg/us)",
           "skew speedup", "stolen"});
  double skew1 = 0;
  for (std::size_t n : {1u, 2u, 4u}) {
    const A10Cell s = a10_run(n, /*skewed=*/true);
    const A10Cell u = a10_run(n, /*skewed=*/false);
    if (n == 1) skew1 = s.rate;
    const double speedup = s.rate / std::max(skew1, 1e-12);
    char sr[16], ur[16], spd[16];
    std::snprintf(sr, sizeof sr, "%.3f", s.rate);
    std::snprintf(ur, sizeof ur, "%.3f", u.rate);
    std::snprintf(spd, sizeof spd, "%.2fx", speedup);
    t.row({fmt_int(static_cast<long long>(n)), sr, ur, spd,
           fmt_int(static_cast<long long>(s.stolen))});
    if (Runner::stats_enabled()) {
      std::printf(
          "[stats] a10 proxies: n=%zu skew_rate=%.3f uniform_rate=%.3f "
          "skew_speedup=%.2f stolen=%llu\n",
          n, s.rate, u.rate, speedup,
          static_cast<unsigned long long>(s.stolen));
    }
  }
  benchlib::finish_table(t);
}

/// One A11 cell: rank 0 runs 8 submitter fibers against peer 1 over a
/// 4-engine offload proxy, each fiber pushing kGens generations of a
/// kWin-message window and waiting each window out.
/// Persistent mode pays send_init for the window ONCE, then every generation
/// is start+wait on the same handles; one-shot mode re-posts isend every
/// time. The receiver mirrors the mode (recv_init windows vs irecv). Rate is
/// total messages over the union of the per-thread post-to-drain windows —
/// the same figure of merit as A10, so the two tables compose.
double a11_run(bool persistent) {
  constexpr int kThreads = 8, kWin = 32, kGens = 16;
  smpi::ClusterConfig cc;
  cc.nranks = 2;
  cc.deadline = sim::Time::from_sec(120);
  smpi::Cluster cluster(cc);
  double rate = 0;
  cluster.run([&](smpi::RankCtx& rc) {
    core::ProxyOptions opts;
    opts.ring_capacity = 4096;
    opts.pool_capacity = 1u << 15;
    opts.lane_count = 16;
    opts.lane_capacity = 256;
    opts.proxy_count = 4;
    core::OffloadProxy p(rc, opts);
    p.start_engine();
    const bool sender = rc.rank() == 0;
    auto done = std::make_shared<int>(0);
    auto done_n = std::make_shared<sim::Notifier>(sim::Time(200));
    auto t_min = std::make_shared<sim::Time>(sim::Time::max());
    auto t_max = std::make_shared<sim::Time>(sim::Time::zero());
    auto worker = [&p, done, done_n, t_min, t_max, sender,
                   persistent](int tid) {
      const int peer = sender ? 1 : 0;
      const sim::Time t0 = sim::now();
      if (persistent) {
        std::vector<core::PersistentReq> win(kWin);
        for (int w = 0; w < kWin; ++w) {
          const int tag = tid * 100 + w;
          win[static_cast<std::size_t>(w)] =
              sender ? p.send_init(nullptr, 8, smpi::Datatype::kByte, peer,
                                   tag)
                     : p.recv_init(nullptr, 8, smpi::Datatype::kByte, peer,
                                   tag);
        }
        for (int g = 0; g < kGens; ++g) {
          p.startall(win);
          for (auto& r : win) p.wait(r);
        }
        for (auto& r : win) p.request_free(r);
      } else {
        std::vector<core::PReq> win(kWin);
        for (int g = 0; g < kGens; ++g) {
          for (int w = 0; w < kWin; ++w) {
            const int tag = tid * 100 + w;
            win[static_cast<std::size_t>(w)] =
                sender ? p.isend(nullptr, 8, smpi::Datatype::kByte, peer, tag)
                       : p.irecv(nullptr, 8, smpi::Datatype::kByte, peer, tag);
          }
          p.waitall(win);
        }
      }
      const sim::Time t1 = sim::now();
      *t_min = std::min(*t_min, t0);
      *t_max = std::max(*t_max, t1);
      ++*done;
      done_n->signal();
    };
    constexpr int kThreadsHere = kThreads;
    for (int t = 1; t < kThreadsHere; ++t) {
      rc.cluster().spawn_on(rc.rank(), "sub" + std::to_string(t),
                            [worker, t]() { worker(t); });
    }
    worker(0);
    for (std::uint64_t seen = 0; *done < kThreadsHere;) {
      seen = done_n->wait_beyond(seen);
    }
    if (sender) {
      rate = kThreads * kWin * kGens /
             std::max((*t_max - *t_min).us(), 1e-9);
    }
    p.barrier();
    p.stop();
  });
  return rate;
}

void a11_persistent() {
  std::printf("\nA11: persistent requests — init-once/start-many vs one-shot "
              "isend, 8 submitter threads x 16 generations x 16-message "
              "windows, offload proxy with 4 engine fibers\n");
  const double oneshot = a11_run(/*persistent=*/false);
  const double persist = a11_run(/*persistent=*/true);
  const double speedup = persist / std::max(oneshot, 1e-12);
  Table t({"mode", "rate(msg/us)", "speedup"});
  char r0[16], r1[16], spd[16];
  std::snprintf(r0, sizeof r0, "%.3f", oneshot);
  std::snprintf(r1, sizeof r1, "%.3f", persist);
  std::snprintf(spd, sizeof spd, "%.2fx", speedup);
  t.row({"one-shot isend", r0, "1.00x"});
  t.row({"persistent start", r1, spd});
  benchlib::finish_table(t);
  if (Runner::stats_enabled()) {
    std::printf("[stats] a11 persistent: oneshot_rate=%.3f persist_rate=%.3f "
                "speedup=%.2f\n",
                oneshot, persist, speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  // Smoke mode (MPIOFF_BENCH_SMOKE=1, CI) runs only the A7 front-end
  // ablation (reduced thread sweep), the A8 collective-algorithm ablation,
  // the A9 continuation ablation, the A10 proxy-count scaling sweep and the
  // A11 persistent-request ablation; the full run does everything.
  if (!Runner::smoke_enabled()) {
    a1_eager_threshold();
    a2_pipeline_depth();
    a3_detect_latency();
    a4_dedicated_core();
    a5_ring_capacity();
    // A6 only perturbs the wire when MPIOFF_FAULTS-style faults are active in
    // its own profiles; with the default run it still executes (drop=0 row is
    // the control showing zero reliability-layer work).
    a6_fault_sweep();
  }
  a7_submission_lanes();
  a8_coll_algorithms();
  a9_continuations();
  a10_proxy_scaling();
  a11_persistent();
  return 0;
}
