// Figure 6: OSU multithreaded latency with 2/4/8 concurrent thread-pairs.
//
// Paper shape: baseline and comm-self latencies balloon with thread count
// (the THREAD_MULTIPLE global lock serializes every call and every progress
// poll, ~30 us one-way at 8 threads for small messages); offload stays low
// and flat because application threads only touch the lock-free ring and the
// single engine drives MPI at FUNNELED — up to ~6x better than comm-self.
#include <cstdio>
#include <vector>

#include "benchlib/osu.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  const auto prof = machine::xeon_fdr();
  // Smoke mode (MPIOFF_BENCH_SMOKE=1, CI) keeps one thread count and two
  // sizes so the job finishes in minutes but still emits real trailers.
  const bool smoke = benchlib::Runner::smoke_enabled();
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{8, 4096}
            : std::vector<std::size_t>{8, 64, 512, 4096, 16384, 65536};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{8} : std::vector<int>{2, 4, 8};
  const Approach approaches[] = {Approach::kBaseline, Approach::kCommSelf,
                                 Approach::kOffload};

  for (int threads : thread_counts) {
    std::printf("Figure 6(%c): OSU multithreaded latency, %d thread pairs (%s)\n",
                threads == 2 ? 'a' : threads == 4 ? 'b' : 'c', threads,
                prof.name.c_str());
    Table t({"size", "baseline(us)", "comm-self(us)", "offload(us)"});
    for (std::size_t sz : sizes) {
      std::vector<std::string> row{fmt_bytes(sz)};
      for (Approach a : approaches) {
        OsuResult r = osu_latency_mt(a, prof, threads, sz);
        row.push_back(fmt_us(r.latency_us));
      }
      t.row(row);
    }
    benchlib::finish_table(t);
    std::printf("\n");
  }
  return 0;
}
