// Figure 13: 1-D FFT weak scaling — (a) Xeon, 2^29 points/node; (b) Xeon
// Phi, 2^25 points/node. Aggregate GFLOPS vs nodes per approach.
//
// Paper shape: offload gains ~20% over baseline at small node counts on
// Xeon, shrinking to ~10% at 128 and marginal at 256 (the transform becomes
// all-to-all-bandwidth-bound); on the Phi the gains are larger (26-43%)
// because the MPI software overheads being hidden are bigger. comm-self is
// not available on the Phi platform (no MPI_THREAD_MULTIPLE there).
#include <cstdio>
#include <vector>

#include "apps/fft/distributed_fft.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;
using fft::FftPerfConfig;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  // Node counts capped at 64 (paper: 256): the 2^29-point all-to-alls at
  // 128+ simulated ranks generate O(10^8) wire events — beyond what a
  // single-host run of the simulator can turn around. The paper's trend
  // (offload advantage shrinking as the transform becomes all-to-all
  // bandwidth bound) is already fully visible by 64 nodes.
  std::printf("Figure 13(a): FFT weak scaling, 2^29 points/node, Endeavor "
              "Xeon (GFLOPS)\n");
  Table a({"nodes", "baseline", "iprobe", "comm-self", "offload"});
  for (int nodes : {2, 4, 8, 16, 32, 64}) {
    std::vector<std::string> row{fmt_int(nodes)};
    for (Approach ap : {Approach::kBaseline, Approach::kIprobe,
                        Approach::kCommSelf, Approach::kOffload}) {
      FftPerfConfig cfg;
      cfg.nodes = nodes;
      cfg.points_per_node = 1u << 29;
      cfg.profile = machine::xeon_fdr();
      cfg.flops_per_ns_thread = 1.0;
      cfg.iters = 2;
      cfg.approach = ap;
      row.push_back(fmt_double(run_fft_perf(cfg).gflops, 1));
    }
    a.row(row);
  }
  benchlib::finish_table(a);

  std::printf("\nFigure 13(b): FFT weak scaling, 2^25 points/node, Endeavor "
              "Xeon Phi (GFLOPS); comm-self unsupported on this platform\n");
  Table b({"nodes", "baseline", "iprobe", "offload"});
  for (int nodes : {2, 4, 8, 16, 32}) {
    std::vector<std::string> row{fmt_int(nodes)};
    for (Approach ap : {Approach::kBaseline, Approach::kIprobe,
                        Approach::kOffload}) {
      FftPerfConfig cfg;
      cfg.nodes = nodes;
      cfg.points_per_node = 1u << 25;
      cfg.profile = machine::xeon_phi();
      cfg.flops_per_ns_thread = 0.35;
      cfg.iters = 2;
      cfg.approach = ap;
      row.push_back(fmt_double(run_fft_perf(cfg).gflops, 1));
    }
    b.row(row);
  }
  benchlib::finish_table(b);
  return 0;
}
