// Figure 8: OSU (a) latency and (b) bandwidth on the Xeon Phi profile.
//
// Paper shape: same ordering as Fig. 7 but every software cost is larger on
// the slow in-order cores — the offload overhead grows from ~0.3 us to
// ~1.7 us, and comm-self's THREAD_MULTIPLE penalty is several times bigger.
// (comm-self is included here even though the paper could not run it on this
// platform: their MPI lacked THREAD_MULTIPLE support on the coprocessor.)
#include <cstdio>
#include <vector>

#include "benchlib/osu.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  const auto prof = machine::xeon_phi();
  const std::vector<std::size_t> sizes = {8,      64,     512,    4096,
                                          16384,  65536,  262144, 1u << 20,
                                          4u << 20};
  const Approach approaches[] = {Approach::kBaseline, Approach::kCommSelf,
                                 Approach::kOffload};

  std::printf("Figure 8(a): OSU one-way latency (2 ranks, %s)\n", prof.name.c_str());
  Table lat({"size", "baseline(us)", "comm-self(us)", "offload(us)"});
  for (std::size_t sz : sizes) {
    std::vector<std::string> row{fmt_bytes(sz)};
    for (Approach a : approaches) {
      row.push_back(fmt_us(osu_latency(a, prof, sz).latency_us));
    }
    lat.row(row);
  }
  benchlib::finish_table(lat);

  std::printf("\nFigure 8(b): OSU uni-directional bandwidth (2 ranks, %s)\n",
              prof.name.c_str());
  Table bw({"size", "baseline(MB/s)", "comm-self(MB/s)", "offload(MB/s)"});
  for (std::size_t sz : sizes) {
    std::vector<std::string> row{fmt_bytes(sz)};
    for (Approach a : approaches) {
      row.push_back(fmt_double(osu_bandwidth(a, prof, sz).bandwidth_mbps, 0));
    }
    bw.row(row);
  }
  benchlib::finish_table(bw);
  return 0;
}
