// A12: the production serving scenario (apps/serve) across the four
// proxies — the paper's offloading argument under the traffic shape the
// ROADMAP north star names: open-loop heavy-tailed client load against a
// latency SLO, with when_any-hedged replicas.
//
// Unlike the BSP ablations (A7-A11), the metric here is distributional:
// p50/p99/p999 virtual-time latency and goodput-under-SLO. The direct
// proxies collapse at the tail because the edge's reactive continuation
// graphs only run when some app thread happens to re-enter MPI, while the
// offload engine runs them at completion time — the same Fig. 2 story, told
// by tail latency instead of message rate.
#include <algorithm>
#include <cstdio>

#include "apps/serve/serve.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using benchlib::Runner;
using benchlib::Table;
using core::Approach;

namespace {

serve::ServeConfig bench_config(Approach a, int workers) {
  serve::ServeConfig cfg;
  cfg.approach = a;
  cfg.edges = 2;
  cfg.shards = 2;
  cfg.workers = workers;
  cfg.window = 32;
  cfg.requests = Runner::smoke_enabled() ? 600 : 6000;  // per edge
  cfg.traffic.mean_interarrival = sim::Time::from_us(1);
  cfg.slo = sim::Time::from_us(150);
  // MPIOFF_SERVE can reshape the workload (alpha, bursts, hedge rate, ...).
  return serve::serve_config_from_env(cfg);
}

struct Cell {
  serve::ServeResult r;
  Approach a;
};

void a12_serve(int workers) {
  std::printf("\nA12: serving tier at %d app threads/shard — p50/p99/p999 "
              "virtual-time latency, goodput under a 150us SLO, when_any "
              "hedging\n",
              workers);
  Table t({"approach", "p50(us)", "p99(us)", "p999(us)", "slo-ok%",
           "goodput(req/s)", "hedge-wins", "resp"});
  std::vector<Cell> cells;
  for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                     Approach::kCommSelf, Approach::kOffload}) {
    const serve::ServeResult r = run_serve(bench_config(a, workers));
    cells.push_back({r, a});
    char p50[24], p99[24], p999[24], okp[24], gp[24], hw[24], resp[24];
    std::snprintf(p50, sizeof p50, "%.1f", r.p50_us);
    std::snprintf(p99, sizeof p99, "%.1f", r.p99_us);
    std::snprintf(p999, sizeof p999, "%.1f", r.p999_us);
    std::snprintf(okp, sizeof okp, "%.1f",
                  100.0 * static_cast<double>(r.slo_ok) /
                      static_cast<double>(std::max<std::uint64_t>(
                          1, r.slo_ok + r.slo_miss)));
    std::snprintf(gp, sizeof gp, "%.0f", r.goodput_rps);
    std::snprintf(hw, sizeof hw, "%llu/%llu",
                  static_cast<unsigned long long>(r.hedge_wins),
                  static_cast<unsigned long long>(r.hedged));
    std::snprintf(resp, sizeof resp, "%llu",
                  static_cast<unsigned long long>(r.responses));
    t.row({core::approach_name(a), p50, p99, p999, okp, gp, hw, resp});
  }
  benchlib::finish_table(t);

  // The acceptance bar: offload beats the BEST direct proxy by >= 1.3x on
  // p99 latency or goodput-under-SLO.
  const Cell& off = cells.back();
  double best_direct_p99 = 1e300, best_direct_gp = 0.0;
  for (const Cell& c : cells) {
    if (c.a == Approach::kOffload) continue;
    best_direct_p99 = std::min(best_direct_p99, c.r.p99_us);
    best_direct_gp = std::max(best_direct_gp, c.r.goodput_rps);
  }
  const double p99_ratio = best_direct_p99 / std::max(off.r.p99_us, 1e-9);
  const double gp_ratio = off.r.goodput_rps / std::max(best_direct_gp, 1e-9);
  std::printf("offload vs best direct: p99 %.2fx better, goodput %.2fx\n",
              p99_ratio, gp_ratio);
  if (Runner::stats_enabled()) {
    std::printf(
        "[stats] a12 serve: threads=%d offload_p99_us=%.1f "
        "best_direct_p99_us=%.1f p99_ratio=%.2f offload_goodput=%.0f "
        "best_direct_goodput=%.0f goodput_ratio=%.2f offload_p999_us=%.1f "
        "hedged=%llu hedge_wins=%llu responses=%llu cont_executed=%llu "
        "cont_posts=%llu\n",
        workers, off.r.p99_us, best_direct_p99, p99_ratio,
        off.r.goodput_rps, best_direct_gp, gp_ratio, off.r.p999_us,
        static_cast<unsigned long long>(off.r.hedged),
        static_cast<unsigned long long>(off.r.hedge_wins),
        static_cast<unsigned long long>(off.r.responses),
        static_cast<unsigned long long>(off.r.cont_executed),
        static_cast<unsigned long long>(off.r.cont_posts));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  std::printf("Fig 15 (new): latency-SLO serving tier, offload vs direct "
              "proxies\n");
  if (!Runner::smoke_enabled()) a12_serve(2);
  a12_serve(8);
  return 0;
}
