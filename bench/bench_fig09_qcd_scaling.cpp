// Figure 9: Wilson-Dslash strong scaling (TFLOPS) on (a) Endeavor Xeon and
// (b) NERSC Edison, for 32^3x256 and 48^3x512 lattices, across approaches.
//
// Paper shape: all approaches track each other to ~16 nodes; beyond that
// offload pulls ahead (2x at 256 nodes on the small lattice); comm-self
// helps at moderate scale but collapses at 256 nodes on the small lattice
// (48 KB messages, THREAD_MULTIPLE overhead dominates) and recovers on the
// large lattice; superlinear speedup appears once the local volume fits in
// cache. On Edison, core specialization sits between baseline and offload.
#include <cstdio>
#include <vector>

#include "apps/qcd/dslash_perf.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;
using qcd::QcdPerfConfig;

namespace {

void run_platform(const char* title, const machine::Profile& prof,
                  const machine::Profile* corespec,
                  const qcd::Dims& lattice, const std::vector<int>& nodes) {
  std::printf("%s, lattice %dx%dx%dx%d (TFLOPS)\n", title, lattice[0],
              lattice[1], lattice[2], lattice[3]);
  std::vector<std::string> hdr{"nodes", "baseline", "iprobe", "comm-self",
                               "offload"};
  if (corespec != nullptr) hdr.push_back("corespec");
  Table t(hdr);
  for (int n : nodes) {
    std::vector<std::string> row{fmt_int(n)};
    for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                       Approach::kCommSelf, Approach::kOffload}) {
      QcdPerfConfig cfg;
      cfg.global = lattice;
      cfg.nodes = n;
      cfg.profile = prof;
      cfg.iters = 10;
      cfg.approach = a;
      row.push_back(fmt_double(run_qcd_perf(cfg).tflops, 2));
    }
    if (corespec != nullptr) {
      QcdPerfConfig cfg;
      cfg.global = lattice;
      cfg.nodes = n;
      cfg.profile = *corespec;
      cfg.iters = 10;
      cfg.approach = Approach::kCommSelf;  // corespec = in-library comm thread
      row.push_back(fmt_double(run_qcd_perf(cfg).tflops, 2));
    }
    t.row(row);
  }
  benchlib::finish_table(t);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  const auto xeon = machine::xeon_fdr();
  const auto edison = machine::aries();
  const auto corespec = machine::aries_corespec();

  run_platform("Figure 9(a): Endeavor Xeon", xeon, nullptr, {32, 32, 32, 256},
               {8, 16, 32, 64, 128, 256});
  run_platform("Figure 9(a): Endeavor Xeon", xeon, nullptr, {48, 48, 48, 512},
               {32, 64, 128, 256});
  run_platform("Figure 9(b): NERSC Edison", edison, &corespec,
               {32, 32, 32, 256}, {8, 16, 32, 64, 128, 256});
  run_platform("Figure 9(b): NERSC Edison", edison, &corespec,
               {48, 48, 48, 512}, {64, 128, 256, 576});
  return 0;
}
