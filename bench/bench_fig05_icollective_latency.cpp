// Figure 5: nonblocking collective issue latency, (a) 8 B and (b) 8 KB, on
// 16 ranks — baseline vs comm-self vs offload.
//
// Paper shape: issuing an Icollective in baseline costs the schedule-setup
// plus first-round sends inside the application thread; comm-self adds
// THREAD_MULTIPLE overhead on top; offload posts a command in ~0.14 us.
#include <cstdio>

#include "benchlib/overlap.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  const auto prof = machine::xeon_fdr();
  const int nranks = 16;
  const CollKind kinds[] = {CollKind::kIbcast,    CollKind::kIreduce,
                            CollKind::kIallreduce, CollKind::kIalltoall,
                            CollKind::kIallgather, CollKind::kIbarrier};
  const Approach approaches[] = {Approach::kBaseline, Approach::kCommSelf,
                                 Approach::kOffload};

  for (std::size_t bytes : {std::size_t{8}, std::size_t{8192}}) {
    std::printf("Figure 5%s: Icollective issue latency, %s, %d ranks (%s)\n",
                bytes == 8 ? "(a)" : "(b)", fmt_bytes(bytes).c_str(), nranks,
                prof.name.c_str());
    Table t({"collective", "algorithm", "baseline(us)", "comm-self(us)",
             "offload(us)"});
    for (CollKind k : kinds) {
      std::string algo = "-";
      std::vector<std::string> cells;
      for (Approach a : approaches) {
        cells.push_back(
            fmt_us(icollective_post_us(a, prof, k, nranks, bytes, 10, 2, &algo), 3));
      }
      std::vector<std::string> row{coll_name(k), algo};
      row.insert(row.end(), cells.begin(), cells.end());
      t.row(row);
    }
    benchlib::finish_table(t);
    std::printf("\n");
  }
  return 0;
}
