// Figure 11: full QCD solver (CG/BiCGStab) performance — Dslash plus BLAS1
// sweeps and global reductions per iteration.
//
// Paper shape: same ordering as Fig. 9 but lower absolute TFLOPS (the
// Allreduce latency and memory-bound BLAS1 do not scale like the stencil);
// best observed ~34 TFLOPS with offload vs ~67 for Dslash alone.
#include <cstdio>

#include "apps/qcd/dslash_perf.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;
using qcd::QcdPerfConfig;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  std::printf("Figure 11: QCD solver (Dslash + BLAS1 + Allreduce), "
              "48^3x512, Endeavor Xeon (TFLOPS)\n");
  Table t({"nodes", "baseline", "iprobe", "comm-self", "offload"});
  for (int nodes : {32, 64, 128, 256}) {
    std::vector<std::string> row{fmt_int(nodes)};
    for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                       Approach::kCommSelf, Approach::kOffload}) {
      QcdPerfConfig cfg;
      cfg.global = {48, 48, 48, 512};
      cfg.nodes = nodes;
      cfg.iters = 10;
      cfg.solver = true;
      cfg.approach = a;
      row.push_back(fmt_double(run_qcd_perf(cfg).tflops, 2));
    }
    t.row(row);
  }
  benchlib::finish_table(t);
  return 0;
}
