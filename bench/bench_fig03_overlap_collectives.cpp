// Figure 3: compute-communication overlap for nonblocking MPI collectives,
// (a) 8-byte and (b) 16 KB payloads, on 16 ranks.
//
// Paper shape: offload reaches near-complete overlap for every collective;
// baseline gets little (NBC schedules only advance inside MPI calls);
// comm-self sits in between, better for larger payloads.
#include <cstdio>

#include "benchlib/overlap.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  const auto prof = machine::xeon_fdr();
  const int nranks = 16;
  const CollKind kinds[] = {CollKind::kIbcast,    CollKind::kIreduce,
                            CollKind::kIallreduce, CollKind::kIalltoall,
                            CollKind::kIallgather, CollKind::kIbarrier};
  const Approach approaches[] = {Approach::kBaseline, Approach::kCommSelf,
                                 Approach::kOffload};

  for (std::size_t bytes : {std::size_t{8}, std::size_t{16384}}) {
    std::printf("Figure 3%s: NBC overlap, %s payload, %d ranks (%s)\n",
                bytes == 8 ? "(a)" : "(b)", fmt_bytes(bytes).c_str(), nranks,
                prof.name.c_str());
    Table t({"collective", "algorithm", "approach", "t_pure(us)", "overlap%"});
    for (CollKind k : kinds) {
      for (Approach a : approaches) {
        OverlapResult r = overlap_collective(a, prof, k, nranks, bytes);
        t.row({coll_name(k), r.algo, core::approach_name(a), fmt_us(r.comm_us),
               fmt_pct(r.overlap_frac)});
      }
    }
    benchlib::finish_table(t);
    std::printf("\n");
  }
  return 0;
}
