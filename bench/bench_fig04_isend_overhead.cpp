// Figure 4: time spent issuing a nonblocking MPI_Isend as part of the OSU
// ping-pong, 2 ranks, baseline vs comm-self vs offload.
//
// Paper shape: baseline/comm-self issue cost grows with message size up to
// the 128 KB eager threshold (internal copy), then drops sharply when the
// rendezvous protocol defers the data; comm-self sits a few microseconds
// above baseline (THREAD_MULTIPLE entry costs); offload is flat ~0.14 us at
// every size because the application thread only touches the command ring.
#include <cstdio>
#include <vector>

#include "benchlib/osu.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  const auto prof = machine::xeon_fdr();
  const std::vector<std::size_t> sizes = {8,      64,     512,     4096,
                                          16384,  65536,  131072,  262144,
                                          524288, 1u << 20, 4u << 20};
  const Approach approaches[] = {Approach::kBaseline, Approach::kCommSelf,
                                 Approach::kOffload};

  std::printf("Figure 4: MPI_Isend issue time in OSU ping-pong (2 ranks, %s)\n",
              prof.name.c_str());
  Table t({"size", "baseline(us)", "comm-self(us)", "offload(us)"});
  for (std::size_t sz : sizes) {
    std::vector<std::string> row{fmt_bytes(sz)};
    for (Approach a : approaches) {
      OsuResult r = osu_latency(a, prof, sz);
      row.push_back(fmt_us(r.post_us, 3));
    }
    t.row(row);
  }
  benchlib::finish_table(t);
  return 0;
}
