// Figure 10: where Wilson-Dslash time goes — compute / wait / misc(+post)
// percentage split for baseline vs offload, Xeon and Xeon Phi, 32^3x256.
//
// Paper shape: baseline wait share grows with node count (~25% at 64 Xeon
// nodes); offload keeps wait under ~5% through better overlap.
#include <cstdio>

#include "apps/qcd/dslash_perf.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;
using qcd::QcdPerfConfig;
using qcd::QcdPerfResult;

int main(int argc, char** argv) {
  benchlib::Runner runner(argc, argv);
  for (const auto& prof : {machine::xeon_fdr(), machine::xeon_phi()}) {
    std::printf("Figure 10: Dslash timing split, 32^3x256, %s\n",
                prof.name.c_str());
    Table t({"nodes", "approach", "compute%", "wait%", "misc+post%"});
    for (int nodes : {16, 32, 64, 128}) {
      for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
        QcdPerfConfig cfg;
        cfg.global = {32, 32, 32, 256};
        cfg.nodes = nodes;
        cfg.profile = prof;
        if (prof.name == "xeon_phi") cfg.flops_per_ns_thread = 1.2;
        cfg.iters = 10;
        cfg.approach = a;
        const QcdPerfResult r = run_qcd_perf(cfg);
        const double tot = r.internal_us + r.post_us + r.wait_us + r.misc_us;
        t.row({fmt_int(nodes), core::approach_name(a),
               fmt_pct(r.internal_us / tot), fmt_pct(r.wait_us / tot),
               fmt_pct((r.misc_us + r.post_us) / tot)});
      }
    }
    benchlib::finish_table(t);
    std::printf("\n");
  }
  return 0;
}
