// CommTable unit tests (context derivation, groups, split computation).
#include <gtest/gtest.h>

#include "mpi/comm.hpp"

using namespace smpi;

TEST(CommTable, WorldAndSelfInitialized) {
  CommTable t;
  t.init(2, 4);
  const CommInfo& w = t.get(kCommWorld);
  EXPECT_EQ(w.size(), 4);
  EXPECT_EQ(w.my_rank, 2);
  EXPECT_EQ(w.context, 0u);
  EXPECT_EQ(w.to_global(3), 3);
  const CommInfo& s = t.get(kCommSelf);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.my_rank, 0);
  EXPECT_EQ(s.to_global(0), 2);
}

TEST(CommTable, DupPreservesGroupFreshContext) {
  CommTable t;
  t.init(1, 4);
  Comm d1 = t.dup(kCommWorld);
  Comm d2 = t.dup(kCommWorld);
  EXPECT_NE(t.get(d1).context, t.get(d2).context);
  EXPECT_NE(t.get(d1).context, t.get(kCommWorld).context);
  EXPECT_EQ(t.get(d1).group, t.get(kCommWorld).group);
  EXPECT_EQ(t.get(d1).my_rank, 1);
}

TEST(CommTable, ContextDerivationAgreesAcrossRanks) {
  // Two ranks independently performing the same constructor sequence must
  // compute identical context ids — that is the whole point of the scheme.
  CommTable a, b;
  a.init(0, 4);
  b.init(3, 4);
  Comm da = a.dup(kCommWorld);
  Comm db = b.dup(kCommWorld);
  EXPECT_EQ(a.get(da).context, b.get(db).context);
  Comm da2 = a.dup(da);
  Comm db2 = b.dup(db);
  EXPECT_EQ(a.get(da2).context, b.get(db2).context);
}

TEST(CommTable, SplitGroupsByColorOrdersByKey) {
  CommTable t;
  t.init(2, 6);
  // colors: even/odd; keys reverse the rank order within each color.
  std::vector<std::pair<int, int>> ck;
  for (int r = 0; r < 6; ++r) ck.push_back({r % 2, -r});
  Comm sub = t.split(kCommWorld, ck);
  const CommInfo& ci = t.get(sub);
  EXPECT_EQ(ci.size(), 3);
  // Even ranks {0,2,4} with keys {0,-2,-4} -> order 4,2,0.
  EXPECT_EQ(ci.group, (std::vector<int>{4, 2, 0}));
  EXPECT_EQ(ci.my_rank, 1);  // rank 2 lands in the middle
}

TEST(CommTable, SplitNegativeColorOptsOut) {
  CommTable t;
  t.init(0, 4);
  std::vector<std::pair<int, int>> ck{{-1, 0}, {0, 0}, {0, 0}, {0, 0}};
  Comm sub = t.split(kCommWorld, ck);
  EXPECT_FALSE(sub.valid());
}

TEST(CommTable, FromGlobalTranslations) {
  CommTable t;
  t.init(0, 6);
  std::vector<std::pair<int, int>> ck;
  for (int r = 0; r < 6; ++r) ck.push_back({r % 2, r});
  Comm sub = t.split(kCommWorld, ck);
  const CommInfo& ci = t.get(sub);
  EXPECT_EQ(ci.from_global(4), 2);
  EXPECT_EQ(ci.from_global(1), kAnySource);  // not a member
}

TEST(CommTable, FreeAndUseAfterFree) {
  CommTable t;
  t.init(0, 2);
  Comm d = t.dup(kCommWorld);
  t.free(d);
  EXPECT_THROW(t.get(d), std::invalid_argument);
  EXPECT_THROW(t.free(kCommWorld), std::invalid_argument);
}

TEST(CommTable, InvalidHandleThrows) {
  CommTable t;
  t.init(0, 2);
  EXPECT_THROW(t.get(Comm{99}), std::invalid_argument);
  EXPECT_THROW(t.get(kCommNull), std::invalid_argument);
}
