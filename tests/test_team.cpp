// Team (OpenMP-style fork/join) tests.
#include <gtest/gtest.h>

#include <vector>

#include "core/team.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using core::Team;

namespace {
ClusterConfig cfg1() {
  ClusterConfig c;
  c.nranks = 1;
  c.deadline = sim::Time::from_sec(10);
  return c;
}
}  // namespace

TEST(Team, AllThreadsRunRegion) {
  Cluster c(cfg1());
  c.run([&](RankCtx& rc) {
    Team team(rc, 8);
    std::vector<int> hits(8, 0);
    team.parallel([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
    for (int h : hits) EXPECT_EQ(h, 1);
    team.shutdown();
  });
}

TEST(Team, RegionsRunBackToBack) {
  Cluster c(cfg1());
  c.run([&](RankCtx& rc) {
    Team team(rc, 4);
    int total = 0;
    for (int r = 0; r < 10; ++r) {
      team.parallel([&](int tid) {
        if (tid == 0) ++total;  // master-only side effect per region
      });
    }
    EXPECT_EQ(total, 10);
    team.shutdown();
  });
}

TEST(Team, JoinWaitsForSlowestWorker) {
  Cluster c(cfg1());
  c.run([&](RankCtx& rc) {
    Team team(rc, 4);
    team.parallel([&](int tid) {
      compute(sim::Time::from_us(static_cast<double>(tid) * 100.0));
    });
    EXPECT_GE(sim::now().ns(), 300000);  // slowest worker: 300us
    team.shutdown();
  });
}

TEST(Team, BarrierInsideRegionSynchronizes) {
  Cluster c(cfg1());
  c.run([&](RankCtx& rc) {
    Team team(rc, 4);
    std::vector<std::int64_t> after(4);
    team.parallel([&](int tid) {
      compute(sim::Time::from_us(static_cast<double>(tid) * 50.0));
      team.barrier();
      after[static_cast<std::size_t>(tid)] = sim::now().ns();
    });
    for (auto t : after) EXPECT_GE(t, 150000);
    team.shutdown();
  });
}

TEST(Team, WorkSplitsAcrossThreads) {
  // The load-balance model: total work W split over T threads takes ~W/T.
  Cluster c(cfg1());
  c.run([&](RankCtx& rc) {
    const sim::Time t0 = sim::now();
    Team team(rc, 10);
    team.parallel([&](int) {
      compute(sim::Time::from_us(100));  // each thread: W/T
    });
    const std::int64_t elapsed = (sim::now() - t0).ns();
    EXPECT_GE(elapsed, 100000);
    EXPECT_LT(elapsed, 115000);  // near-perfect scaling plus small overheads
    team.shutdown();
  });
}

TEST(Team, SingleThreadTeamDegenerates) {
  Cluster c(cfg1());
  c.run([&](RankCtx& rc) {
    Team team(rc, 1);
    int ran = 0;
    team.parallel([&](int tid) {
      EXPECT_EQ(tid, 0);
      ++ran;
    });
    EXPECT_EQ(ran, 1);
    team.shutdown();
  });
}

TEST(Team, DestructorShutsDown) {
  Cluster c(cfg1());
  c.run([&](RankCtx& rc) {
    {
      Team team(rc, 4);
      team.parallel([](int) {});
    }  // destructor must join workers so the cluster can drain
  });
  SUCCEED();
}
