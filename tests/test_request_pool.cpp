// Tests for the lock-free proxy-request pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/request_pool.hpp"

using core::RequestPool;

TEST(RequestPool, AllocAllThenExhaust) {
  RequestPool pool(8);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t idx = pool.alloc();
    ASSERT_NE(idx, RequestPool::kNil);
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate slot";
  }
  EXPECT_EQ(pool.alloc(), RequestPool::kNil);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(RequestPool, FreeMakesSlotReusable) {
  RequestPool pool(2);
  const std::uint32_t a = pool.alloc();
  const std::uint32_t b = pool.alloc();
  EXPECT_EQ(pool.alloc(), RequestPool::kNil);
  pool.free(a);
  EXPECT_EQ(pool.alloc(), a);  // LIFO
  pool.free(b);
  pool.free(a);
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(RequestPool, CompletionProtocol) {
  RequestPool pool(4);
  const std::uint32_t idx = pool.alloc();
  EXPECT_FALSE(pool.done(idx));
  smpi::Status st;
  st.source = 3;
  st.tag = 9;
  st.bytes = 128;
  pool.complete(idx, st);
  EXPECT_TRUE(pool.done(idx));
  EXPECT_EQ(pool.status(idx).source, 3);
  EXPECT_EQ(pool.status(idx).tag, 9);
  EXPECT_EQ(pool.status(idx).bytes, 128u);
  pool.free(idx);
  // Recycled slot starts not-done.
  const std::uint32_t again = pool.alloc();
  EXPECT_EQ(again, idx);
  EXPECT_FALSE(pool.done(again));
}

TEST(RequestPool, FreeOutOfRangeThrows) {
  RequestPool pool(4);
  EXPECT_THROW(pool.free(4), std::out_of_range);
}

// Real-thread stress: N threads repeatedly alloc/free; every handed-out slot
// must be exclusively owned (no double allocation of a live slot).
TEST(RequestPool, ConcurrentAllocFreeStress) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  RequestPool pool(64);
  std::vector<std::atomic<int>> owner(64);
  for (auto& o : owner) o.store(-1);
  std::atomic<bool> start{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kIters; ++i) {
        const std::uint32_t idx = pool.alloc();
        if (idx == RequestPool::kNil) continue;
        int expected = -1;
        if (!owner[idx].compare_exchange_strong(expected, t)) {
          violations.fetch_add(1);
        }
        owner[idx].store(-1);
        pool.free(idx);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(pool.free_count(), 64u);
}
