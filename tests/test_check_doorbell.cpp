// Model-checking the engine's sleep transition (the lost-doorbell window).
// The production ordering — snapshot the doorbell, re-check every queue,
// sleep beyond the snapshot — must hold under EVERY interleaving; swapping
// the first two steps re-opens the window where a command published between
// them is counted inside the armed snapshot and the engine sleeps forever.
// The checker forces exactly that preemption, which no cooperative-fiber
// unit test can reach (the two steps have no yield point between them in
// the simulator — the spec is the preemption the fiber scheduler can't do).
#include <gtest/gtest.h>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Options;
using chk::Result;
using chk::specs::check_doorbell;

TEST(CheckDoorbell, FixedOrderingHoldsExhaustively) {
  // Snapshot-then-recheck: under every interleaving, either the re-check
  // sees the push (no sleep), or the signal lands beyond the snapshot (the
  // sleep wakes). The space is tiny; require exhaustion.
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_doorbell(opt, /*buggy=*/false);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "state space not exhausted in " << r.executions;
}

TEST(CheckDoorbell, BuggyOrderingIsCaughtWithReplay) {
  // Recheck-then-snapshot: the checker must find the interleaving where the
  // producer's push+signal lands between the two steps — the engine arms
  // against a count the doorbell already reached and the command strands.
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_doorbell(opt, /*buggy=*/true);
  ASSERT_TRUE(r.failed) << "lost-doorbell window not found in "
                        << r.executions << " executions";
  EXPECT_FALSE(r.trace.empty());
  ASSERT_FALSE(r.failing_trail.empty());

  // The reported trail replays the identical failure.
  Options replay;
  replay.mode = Mode::kExhaustive;
  replay.replay_trail = r.failing_trail;
  const Result again = check_doorbell(replay, /*buggy=*/true);
  ASSERT_TRUE(again.failed);
  EXPECT_EQ(again.executions, 1u);
  EXPECT_EQ(again.message, r.message);
}

TEST(CheckDoorbell, BuggyOrderingIsCaughtByRandomSweep) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 2000;
  opt.seed = 11;
  const Result r = check_doorbell(opt, /*buggy=*/true);
  EXPECT_TRUE(r.failed) << "random sweep missed the lost-doorbell window";
}

TEST(CheckDoorbell, FixedOrderingSurvivesRandomSweep) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 2000;
  opt.seed = 11;
  const Result r = check_doorbell(opt, /*buggy=*/false);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

}  // namespace
