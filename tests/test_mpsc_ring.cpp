// Tests for the lock-free MPSC command ring — including real-thread stress
// (the structure is genuinely concurrent; the simulator merely uses it from
// one host thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/mpsc_ring.hpp"

using core::MpscRing;

TEST(MpscRing, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(MpscRing<int>(3), std::invalid_argument);
  EXPECT_THROW(MpscRing<int>(0), std::invalid_argument);
  EXPECT_THROW(MpscRing<int>(1), std::invalid_argument);
  EXPECT_NO_THROW(MpscRing<int>(8));
}

TEST(MpscRing, FifoSingleThread) {
  MpscRing<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size_approx(), 10u);
  int v = -1;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_TRUE(q.empty_approx());
}

TEST(MpscRing, FullAndWrapAround) {
  MpscRing<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  int v;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(4));  // slot freed by the pop
  // Drain and verify order across the wrap.
  std::vector<int> got;
  while (q.try_pop(v)) got.push_back(v);
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST(MpscRing, ManyWrapArounds) {
  MpscRing<std::uint64_t> q(8);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(q.try_push(i));
    if (i % 3 == 2) {
      for (int k = 0; k < 3; ++k) {
        std::uint64_t v;
        ASSERT_TRUE(q.try_pop(v));
        ASSERT_EQ(v, expect++);
      }
    }
  }
}

TEST(MpscRing, MoveOnlyPayload) {
  MpscRing<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(q.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 42);
}

// Real-thread stress: P producers push tagged sequences, one consumer checks
// per-producer FIFO and that nothing is lost or duplicated.
TEST(MpscRing, ConcurrentProducersStress) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpscRing<std::uint64_t> q(1024);
  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!start.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tagged = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(tagged)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  std::thread consumer([&] {
    while (!start.load(std::memory_order_acquire)) {}
    while (received < kProducers * kPerProducer) {
      std::uint64_t v;
      if (!q.try_pop(v)) {
        std::this_thread::yield();
        continue;
      }
      const auto p = static_cast<std::size_t>(v >> 32);
      const std::uint64_t seq = v & 0xffffffffu;
      ASSERT_LT(p, static_cast<std::size_t>(kProducers));
      ASSERT_EQ(seq, next[p]) << "per-producer FIFO violated";
      ++next[p];
      ++received;
    }
  });
  start.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[static_cast<std::size_t>(p)], kPerProducer);
}
