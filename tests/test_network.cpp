// Tests for the interconnect model: latency, serialization, ordering.
#include <gtest/gtest.h>

#include <vector>

#include "machine/network.hpp"
#include "sim/engine.hpp"

using namespace sim;
using namespace sim::literals;
using machine::NetMessage;
using machine::Network;

namespace {

NetMessage msg(int src, int dst, std::uint64_t id, std::size_t bytes) {
  NetMessage m;
  m.src = src;
  m.dst = dst;
  m.h0 = id;
  m.wire_bytes = bytes;
  return m;
}

}  // namespace

TEST(Network, SmallMessageLatencyIsWireLatencyPlusMinFrame) {
  Engine e;
  auto prof = machine::xeon_fdr();
  Network net(e, prof, 2);
  Time arrival;
  net.set_delivery_handler(1, [&](NetMessage&&) { arrival = e.now(); });
  net.set_delivery_handler(0, [](NetMessage&&) {});
  e.spawn("s", [&] { net.send(msg(0, 1, 1, 8)); });
  e.run();
  // 64B minimum frame at 6 B/ns = 10ns serialization + 700ns latency.
  EXPECT_EQ(arrival.ns(), prof.net_latency.ns() + prof.wire_cost(64).ns());
}

TEST(Network, LargeMessageIsBandwidthBound) {
  Engine e;
  auto prof = machine::xeon_fdr();
  Network net(e, prof, 2);
  Time arrival;
  net.set_delivery_handler(1, [&](NetMessage&&) { arrival = e.now(); });
  const std::size_t mb = 1 << 20;
  e.spawn("s", [&] { net.send(msg(0, 1, 1, mb)); });
  e.run();
  const double gbps = static_cast<double>(mb) / static_cast<double>(arrival.ns());
  EXPECT_NEAR(gbps, prof.net_bytes_per_ns, 0.1);
}

TEST(Network, EgressSerializesBackToBackSends) {
  Engine e;
  auto prof = machine::xeon_fdr();
  Network net(e, prof, 3);
  std::vector<std::int64_t> arrivals;
  net.set_delivery_handler(1, [&](NetMessage&&) { arrivals.push_back(e.now().ns()); });
  net.set_delivery_handler(2, [&](NetMessage&&) { arrivals.push_back(e.now().ns()); });
  const std::size_t big = 600000;  // 100us serialization each
  e.spawn("s", [&] {
    net.send(msg(0, 1, 1, big));
    net.send(msg(0, 2, 2, big));  // must queue behind the first on egress
  });
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const auto ser = prof.wire_cost(big).ns();
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]),
              static_cast<double>(ser), static_cast<double>(ser) * 0.05);
}

TEST(Network, IncastContendsAtReceiverIngress) {
  Engine e;
  auto prof = machine::xeon_fdr();
  Network net(e, prof, 5);
  std::vector<std::int64_t> arrivals;
  net.set_delivery_handler(0, [&](NetMessage&&) { arrivals.push_back(e.now().ns()); });
  const std::size_t big = 600000;
  for (int s = 1; s <= 4; ++s) {
    e.spawn("s", [&, s] { net.send(msg(s, 0, static_cast<std::uint64_t>(s), big)); });
  }
  e.run();
  ASSERT_EQ(arrivals.size(), 4u);
  // All four senders inject in parallel, but the receiver NIC drains them
  // one serialization time apart.
  const auto ser = prof.wire_cost(big).ns();
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GE(arrivals[i] - arrivals[i - 1], ser * 9 / 10);
  }
}

TEST(Network, InOrderPerSourceDestinationPair) {
  Engine e;
  Network net(e, machine::xeon_fdr(), 2);
  std::vector<std::uint64_t> ids;
  net.set_delivery_handler(1, [&](NetMessage&& m) { ids.push_back(m.h0); });
  e.spawn("s", [&] {
    for (std::uint64_t i = 0; i < 64; ++i) {
      net.send(msg(0, 1, i, (i % 2 == 0) ? 100000 : 64));
    }
  });
  e.run();
  ASSERT_EQ(ids.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(ids[i], i);
}

TEST(Network, StatsAccumulate) {
  Engine e;
  Network net(e, machine::xeon_fdr(), 2);
  net.set_delivery_handler(1, [](NetMessage&&) {});
  e.spawn("s", [&] {
    net.send(msg(0, 1, 0, 1000));
    net.send(msg(0, 1, 1, 1000));
  });
  e.run();
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 2000u);
}

TEST(Network, PayloadCarriedIntact) {
  Engine e;
  Network net(e, machine::xeon_fdr(), 2);
  std::vector<std::byte> got;
  net.set_delivery_handler(1, [&](NetMessage&& m) { got = std::move(m.payload); });
  e.spawn("s", [&] {
    NetMessage m = msg(0, 1, 7, 256);
    m.payload.resize(256);
    for (int i = 0; i < 256; ++i) m.payload[static_cast<std::size_t>(i)] = static_cast<std::byte>(i);
    net.send(std::move(m));
  });
  e.run();
  ASSERT_EQ(got.size(), 256u);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], static_cast<std::byte>(i));
}

TEST(Profile, MachineProfilesAreOrdered) {
  const auto xeon = machine::xeon_fdr();
  const auto phi = machine::xeon_phi();
  // The Phi's software paths must be uniformly slower than the Xeon's:
  // this ordering is what produces the paper's Fig. 8 vs Fig. 7 contrast.
  EXPECT_GT(phi.mpi_call_overhead.ns(), xeon.mpi_call_overhead.ns());
  EXPECT_GT(phi.cmd_enqueue.ns(), xeon.cmd_enqueue.ns());
  EXPECT_GT(phi.thread_multiple_entry.ns(), xeon.thread_multiple_entry.ns());
  EXPECT_LT(phi.copy_bytes_per_ns, xeon.copy_bytes_per_ns);
  EXPECT_GT(phi.cores_per_rank, xeon.cores_per_rank);
}
