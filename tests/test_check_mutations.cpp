// The mutation suite: proof that the checker specs have teeth.
//
// For every acquire/release site in the lock-free core (the mutation
// matrix), weakening that one site to relaxed must make the paired spec
// FAIL, with a deterministic replay. If the unmodified code passes and all
// mutants die, every memory order in the production code is demonstrably
// load-bearing.
#include <gtest/gtest.h>

#include <set>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Mutation;
using chk::Options;
using chk::Result;
using chk::Site;
using chk::specs::mutation_matrix;
using chk::specs::run_spec;

Options exhaustive() {
  Options o;
  o.mode = Mode::kExhaustive;
  return o;
}

TEST(CheckMutations, MatrixCoversEveryObservedSyncSite) {
  // Every acquire/release the specs actually execute must have a matrix row
  // (and vice versa), so a new fence added to the production code cannot
  // silently dodge the mutation suite.
  const std::vector<Site> observed = chk::specs::collect_sites();
  std::set<Site> matrix_sites;
  for (const auto& mc : mutation_matrix()) matrix_sites.insert(mc.site);
  EXPECT_EQ(std::set<Site>(observed.begin(), observed.end()), matrix_sites);
}

TEST(CheckMutations, UnmutatedSpecsPass) {
  for (const char* spec :
       {"ring", "pool", "lane", "handshake", "cont", "whenany", "mring",
        "sleep", "pready"}) {
    Options opt = exhaustive();
    // The default ring cfg does not exhaust within the cap (the per-spec
    // tests cover exhaustion on smaller cfgs); bound the sweep so this stays
    // a quick sanity gate for the mutation runs below.
    opt.max_executions = 30000;
    const Result r = run_spec(spec, opt);
    EXPECT_FALSE(r.failed) << spec << ": " << r.message << "\n" << r.trace;
  }
}

TEST(CheckMutations, EveryMutantIsDetectedAndReplayable) {
  for (const auto& mc : mutation_matrix()) {
    Options opt = exhaustive();
    opt.mutation = Mutation::of(mc.site);
    const Result r = run_spec(mc.spec, opt);
    ASSERT_TRUE(r.failed) << "mutant survived: " << opt.mutation.str()
                          << " (spec " << mc.spec << ", " << r.executions
                          << " executions)";
    EXPECT_FALSE(r.trace.empty()) << opt.mutation.str();
    ASSERT_FALSE(r.failing_trail.empty()) << opt.mutation.str();

    // The reported trail must replay the identical failure.
    Options replay = exhaustive();
    replay.mutation = opt.mutation;
    replay.replay_trail = r.failing_trail;
    const Result again = run_spec(mc.spec, replay);
    ASSERT_TRUE(again.failed) << "replay lost the failure: "
                              << opt.mutation.str();
    EXPECT_EQ(again.executions, 1u);
    EXPECT_EQ(again.message, r.message) << opt.mutation.str();
    EXPECT_EQ(again.trace, r.trace) << opt.mutation.str();
  }
}

TEST(CheckMutations, RandomModeAlsoKillsMutants) {
  // The CI random sweep must find the same bugs from a fixed seed, and the
  // reported seed must reproduce the failure in a single execution.
  for (const auto& mc : mutation_matrix()) {
    Options opt;
    opt.mode = Mode::kRandom;
    opt.iterations = 5000;
    opt.seed = 11;
    opt.mutation = Mutation::of(mc.site);
    const Result r = run_spec(mc.spec, opt);
    ASSERT_TRUE(r.failed) << "mutant survived random sweep: "
                          << opt.mutation.str();

    Options replay;
    replay.mode = Mode::kRandom;
    replay.iterations = 1;
    replay.seed = r.failing_seed;
    replay.mutation = opt.mutation;
    const Result again = run_spec(mc.spec, replay);
    ASSERT_TRUE(again.failed) << opt.mutation.str();
    EXPECT_EQ(again.message, r.message) << opt.mutation.str();
  }
}

}  // namespace
