// Differential conformance: one seeded random workload mixing point-to-point
// traffic, collectives, and every completion surface (wait/waitall/waitany/
// testall), executed under all four proxy approaches. The payloads each rank
// receives must be identical — bit for bit — no matter which approach carried
// them, and every approach must drain its request bookkeeping at teardown.
// A faulted variant (drops, duplicates, corruption, reordering) must still
// deliver the same bytes through the reliability sublayer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <span>
#include <vector>

#include "core/proxy.hpp"
#include "machine/fault.hpp"
#include "mpi/cluster.hpp"

using core::Approach;
using core::PReq;

namespace {

constexpr int kRanks = 6;  // even (pairwise step) and not a power of two
constexpr int kSteps = 28;

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* b = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic sender payload: a function of (seed, sender, step, offset)
/// only, so every approach produces — and every receiver digests — the same
/// bytes.
std::uint8_t payload(std::uint64_t seed, int sender, int step, std::size_t i) {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(sender) << 32) ^
                    (static_cast<std::uint64_t>(step) << 16) ^ i;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return static_cast<std::uint8_t>(x);
}

struct RunOut {
  std::vector<std::uint64_t> digests;  ///< per-rank payload digest
};

/// Run the scripted workload under `a` and return per-rank digests. The op
/// schedule is drawn from a PRNG seeded identically on every rank (so all
/// ranks agree on what to do each step); payload contents are functions of
/// the sending rank. Drained-pool invariants are asserted inline.
RunOut run_workload(Approach a, std::uint64_t seed, const char* fault_spec) {
  smpi::ClusterConfig cc;
  cc.nranks = kRanks;
  cc.thread_level = core::required_thread_level(a);
  cc.deadline = sim::Time::from_sec(600);
  if (fault_spec != nullptr) {
    cc.profile.faults = machine::FaultSpec::parse(fault_spec);
  }
  smpi::Cluster c(cc);
  RunOut out;
  out.digests.assign(kRanks, 0);
  c.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank();
    const int np = kRanks;
    std::uint64_t digest = 14695981039346656037ull;
    std::mt19937_64 script(seed);  // same stream on every rank
    for (int step = 0; step < kSteps; ++step) {
      // Draw the whole step up front so every rank consumes the same count.
      const auto sel = script() % 6;
      const auto szdraw = script();
      const auto rootdraw = script();
      p->progress_hint();
      switch (sel) {
        case 0:
        case 1: {  // ring shift; completion via waitall (0) or waitany (1)
          const std::size_t bytes = 1 + szdraw % 6000;
          const int tag = static_cast<int>(rootdraw % 100);
          const int right = (me + 1) % np;
          const int left = (me + np - 1) % np;
          std::vector<std::uint8_t> sb(bytes), rb(bytes, 0);
          for (std::size_t i = 0; i < bytes; ++i) {
            sb[i] = payload(seed, me, step, i);
          }
          PReq reqs[2];
          reqs[0] = p->irecv(rb.data(), bytes, smpi::Datatype::kByte, left, tag);
          reqs[1] = p->isend(sb.data(), bytes, smpi::Datatype::kByte, right, tag);
          if (sel == 0) {
            p->waitall(std::span<PReq>(reqs, 2));
          } else {
            while (p->waitany(std::span<PReq>(reqs, 2)) != -1) {
            }
          }
          for (std::size_t i = 0; i < bytes; ++i) {
            ASSERT_EQ(rb[i], payload(seed, left, step, i))
                << "step " << step << " byte " << i;
          }
          digest = fnv1a(rb.data(), bytes, digest);
          break;
        }
        case 2: {  // allreduce sum over ints
          const std::size_t count = 1 + szdraw % 4096;
          std::vector<int> in(count), res(count, -1);
          for (std::size_t i = 0; i < count; ++i) {
            in[i] = (me + 1) * static_cast<int>(i % 977 + 1);
          }
          p->allreduce(in.data(), res.data(), count, smpi::Datatype::kInt,
                       smpi::Op::kSum);
          digest = fnv1a(res.data(), count * sizeof(int), digest);
          break;
        }
        case 3: {  // bcast from a scripted root
          const std::size_t bytes = 1 + szdraw % 8192;
          const int root = static_cast<int>(rootdraw % np);
          std::vector<std::uint8_t> buf(bytes, 0);
          if (me == root) {
            for (std::size_t i = 0; i < bytes; ++i) {
              buf[i] = payload(seed, root, step, i);
            }
          }
          p->bcast(buf.data(), bytes, smpi::Datatype::kByte, root);
          digest = fnv1a(buf.data(), bytes, digest);
          break;
        }
        case 4: {  // allgather
          const std::size_t per = 1 + szdraw % 2048;
          std::vector<std::uint8_t> in(per);
          std::vector<std::uint8_t> all(per * static_cast<std::size_t>(np), 0);
          for (std::size_t i = 0; i < per; ++i) {
            in[i] = payload(seed, me, step, i);
          }
          p->allgather(in.data(), all.data(), per, smpi::Datatype::kByte);
          digest = fnv1a(all.data(), all.size(), digest);
          break;
        }
        case 5: {  // neighbor exchange polled to completion with testall
          const std::size_t bytes = 1 + szdraw % 3000;
          const int peer = me ^ 1;
          std::vector<std::uint8_t> sb(bytes), rb(bytes, 0);
          for (std::size_t i = 0; i < bytes; ++i) {
            sb[i] = payload(seed, me, step, i);
          }
          PReq reqs[2];
          reqs[0] = p->irecv(rb.data(), bytes, smpi::Datatype::kByte, peer, 7);
          reqs[1] = p->isend(sb.data(), bytes, smpi::Datatype::kByte, peer, 7);
          while (!p->testall(std::span<PReq>(reqs, 2))) {
            smpi::compute(sim::Time::from_ns(200));  // overlap, then re-poll
          }
          for (std::size_t i = 0; i < bytes; ++i) {
            ASSERT_EQ(rb[i], payload(seed, peer, step, i))
                << "step " << step << " byte " << i;
          }
          digest = fnv1a(rb.data(), bytes, digest);
          break;
        }
        default:
          break;
      }
    }
    p->barrier();
    // Nothing may still be parked in the proxy's own bookkeeping...
    EXPECT_EQ(p->inflight(), 0u) << "rank " << me;
    p->stop();
    // ...nor in the rank's request table once helper threads are joined.
    EXPECT_EQ(rc.requests().active_count(), 0u) << "rank " << me;
    out.digests[static_cast<std::size_t>(me)] = digest;
  });
  return out;
}

}  // namespace

TEST(Differential, FourApproachesProduceIdenticalPayloads) {
  const RunOut ref = run_workload(Approach::kBaseline, 42, nullptr);
  // A workload that digested nothing would make the comparison vacuous.
  for (const std::uint64_t d : ref.digests) {
    EXPECT_NE(d, 14695981039346656037ull);
  }
  for (const Approach a :
       {Approach::kIprobe, Approach::kCommSelf, Approach::kOffload}) {
    const RunOut got = run_workload(a, 42, nullptr);
    EXPECT_EQ(got.digests, ref.digests) << core::approach_name(a);
  }
}

TEST(Differential, SecondSeedAlsoAgrees) {
  const RunOut ref = run_workload(Approach::kBaseline, 7, nullptr);
  const RunOut got = run_workload(Approach::kOffload, 7, nullptr);
  EXPECT_EQ(got.digests, ref.digests);
}

TEST(Differential, ProxyCountSweepIsBitIdentical) {
  // The engine-shard count is a pure performance knob: 1, 2, and 4 engines
  // (stealing on where it can matter) must deliver bit-identical payloads —
  // clean AND through a faulted fabric — and drain all bookkeeping, or the
  // partition/steal protocol has observably reordered per-peer traffic.
  static const char* kFaults =
      "drop=0.03,dup=0.02,corrupt=0.005,delay=0.08:20us,reorder=0.03,seed=11";
  const RunOut ref = run_workload(Approach::kBaseline, 42, nullptr);
  for (const char* spec :
       {"proxies:1,steal:0", "proxies:2,steal:4", "proxies:4,steal:4"}) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test
    setenv("MPIOFF_PROXY", spec, 1);
    const RunOut clean = run_workload(Approach::kOffload, 42, nullptr);
    EXPECT_EQ(clean.digests, ref.digests) << spec << " (clean)";
    const RunOut faulted = run_workload(Approach::kOffload, 42, kFaults);
    EXPECT_EQ(faulted.digests, ref.digests) << spec << " (faulted)";
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    unsetenv("MPIOFF_PROXY");
  }
}

TEST(Differential, FaultedFabricDeliversTheSameBytes) {
  // Reliability sublayer must make loss, duplication, corruption, and
  // reordering invisible: digests match a clean run bit for bit.
  static const char* kFaults =
      "drop=0.03,dup=0.02,corrupt=0.005,delay=0.08:20us,reorder=0.03,seed=11";
  const RunOut ref = run_workload(Approach::kBaseline, 42, nullptr);
  for (const Approach a : {Approach::kBaseline, Approach::kOffload}) {
    const RunOut got = run_workload(a, 42, kFaults);
    EXPECT_EQ(got.digests, ref.digests) << core::approach_name(a);
  }
}
