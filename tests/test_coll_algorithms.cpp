// Conformance suite for the segmented collective algorithm layer:
//   * CollTuner parsing (MPIOFF_COLL grammar) and selection/fallback rules;
//   * a property sweep asserting every algorithm x op x rank count x payload
//     size (eager through rendezvous, chunk-aligned and not) produces results
//     bitwise-equal to a serial reference fold;
//   * stats invariants — the recorded algorithm is the one that ran, illegal
//     forced choices never appear in the counters, segmentation really chunks.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"
#include "mpi/coll_tuner.hpp"

using namespace smpi;

namespace {

ClusterConfig cfg(int n, std::string coll_spec = {}) {
  ClusterConfig c;
  c.nranks = n;
  c.deadline = sim::Time::from_sec(120);
  c.coll_spec = std::move(coll_spec);
  return c;
}

CollTuner base_tuner() { return CollTuner::defaults_for(machine::xeon_fdr()); }

/// Deterministic per-rank payload byte.
std::uint8_t pat(int rank, std::size_t i) {
  return static_cast<std::uint8_t>(rank * 131 + i * 7 + 13);
}

// ---- 2x2 uint16 matrix multiply packed into one uint64: associative but
// NOT commutative, the canonical order-sensitive user reduction. ----
std::uint64_t mat_mul(std::uint64_t x, std::uint64_t y) {
  const auto e = [](std::uint64_t m, int k) {
    return static_cast<std::uint64_t>((m >> (16 * k)) & 0xffff);
  };
  const std::uint64_t r0 = e(x, 0) * e(y, 0) + e(x, 1) * e(y, 2);
  const std::uint64_t r1 = e(x, 0) * e(y, 1) + e(x, 1) * e(y, 3);
  const std::uint64_t r2 = e(x, 2) * e(y, 0) + e(x, 3) * e(y, 2);
  const std::uint64_t r3 = e(x, 2) * e(y, 1) + e(x, 3) * e(y, 3);
  return (r0 & 0xffff) | ((r1 & 0xffff) << 16) | ((r2 & 0xffff) << 32) |
         ((r3 & 0xffff) << 48);
}

void mat_mul_op(const void* in, void* inout, std::size_t n, Datatype) {
  const auto* a = static_cast<const std::uint64_t*>(in);
  auto* b = static_cast<std::uint64_t*>(inout);
  for (std::size_t i = 0; i < n; ++i) b[i] = mat_mul(b[i], a[i]);
}

std::uint64_t mat_pat(int rank, std::size_t i) {
  // Entries kept small so products stay visibly distinct mod 2^16.
  const auto v = [&](int k) {
    return static_cast<std::uint64_t>((rank * 7 + i * 3 + k + 1) % 251);
  };
  return v(0) | (v(1) << 16) | (v(2) << 32) | (v(3) << 48);
}

}  // namespace

// ========================================================================
// CollTuner unit tests: grammar, thresholds, legality fallback.
// ========================================================================

TEST(CollTuner, ParseRejectsMalformedSpecs) {
  const CollTuner base = base_tuner();
  EXPECT_THROW(CollTuner::parse("nonsense", base), std::invalid_argument);
  EXPECT_THROW(CollTuner::parse("allreduce:warp-shuffle", base),
               std::invalid_argument);
  EXPECT_THROW(CollTuner::parse("gossip:ring", base), std::invalid_argument);
  EXPECT_THROW(CollTuner::parse("allreduce:ring@12q", base),
               std::invalid_argument);
  EXPECT_THROW(CollTuner::parse("seg:", base), std::invalid_argument);
  EXPECT_THROW(CollTuner::parse("chains:0", base), std::invalid_argument);
  EXPECT_THROW(CollTuner::parse("chains:65", base), std::invalid_argument);
  // Errors must name the valid vocabulary so a typo'd env var is fixable.
  try {
    CollTuner::parse("allreduce:warp-shuffle", base);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ring"), std::string::npos);
  }
}

TEST(CollTuner, ParseScalarKnobsAndSuffixes) {
  CollTuner t = CollTuner::parse("seg:4k,chains:8", base_tuner());
  EXPECT_EQ(t.seg_bytes(), 4096u);
  EXPECT_EQ(t.max_chains(), 8);
  t = CollTuner::parse("seg:1m", base_tuner());
  EXPECT_EQ(t.seg_bytes(), 1024u * 1024u);
  // Empty items are tolerated (trailing comma), zero seg clamps to one byte.
  t = CollTuner::parse("seg:0,", base_tuner());
  EXPECT_EQ(t.seg_bytes(), 1u);
}

TEST(CollTuner, ParseRejectsDuplicateScalarKnobs) {
  // Algo rules stack by threshold (ThresholdStackingLargestWins), but the
  // scalar knobs are single-valued — a repeat is a typo, and the message
  // must say which key and teach the grammar.
  const CollTuner base = base_tuner();
  try {
    CollTuner::parse("seg:4k,chains:8,seg:8k", base);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'seg'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("chains"), std::string::npos) << msg;
  }
  EXPECT_THROW(CollTuner::parse("chains:4,chains:4", base),
               std::invalid_argument);
  // Stacked algo rules for the same collective stay legal alongside the
  // duplicate-knob check.
  EXPECT_NO_THROW(
      CollTuner::parse("seg:4k,allreduce:rdbl@0,allreduce:ring@64k", base));
}

TEST(CollTuner, ParseRejectsTruncatedItems) {
  const CollTuner base = base_tuner();
  // A key with no value, a rule with no algorithm, a threshold cut mid-way:
  // each names the offending item so the env var is fixable.
  EXPECT_THROW(CollTuner::parse("chains:", base), std::invalid_argument);
  EXPECT_THROW(CollTuner::parse("allreduce:", base), std::invalid_argument);
  EXPECT_THROW(CollTuner::parse("allreduce:ring@", base),
               std::invalid_argument);
  try {
    CollTuner::parse("allreduce:ring@", base);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("allreduce:ring@"),
              std::string::npos);
  }
}

TEST(CollTuner, ThresholdStackingLargestWins) {
  const CollTuner t = CollTuner::parse("allreduce:rdbl@0,allreduce:ring@64k",
                                       base_tuner());
  EXPECT_EQ(t.choose(CollectiveId::kAllreduce, 1024, 256, 8, true),
            CollAlgo::kRecursiveDoubling);
  EXPECT_EQ(t.choose(CollectiveId::kAllreduce, 128 * 1024, 32 * 1024, 8, true),
            CollAlgo::kRing);
}

TEST(CollTuner, IllegalForcedChoiceFallsBackLegally) {
  // Ring allreduce needs a commutative op.
  const CollTuner ring = CollTuner::parse("allreduce:ring@0", base_tuner());
  EXPECT_EQ(ring.choose(CollectiveId::kAllreduce, 1 << 20, 1 << 18, 8, true),
            CollAlgo::kRing);
  EXPECT_EQ(ring.choose(CollectiveId::kAllreduce, 1 << 20, 1 << 18, 8, false),
            CollAlgo::kReduceBcast);
  // Recursive doubling needs a power-of-two communicator.
  const CollTuner rd = CollTuner::parse("allreduce:rdbl@0", base_tuner());
  EXPECT_EQ(rd.choose(CollectiveId::kAllreduce, 4096, 1024, 8, true),
            CollAlgo::kRecursiveDoubling);
  EXPECT_NE(rd.choose(CollectiveId::kAllreduce, 4096, 1024, 6, true),
            CollAlgo::kRecursiveDoubling);
  // Rabenseifner additionally needs count % ranks == 0.
  const CollTuner rab = CollTuner::parse("allreduce:rabenseifner@0", base_tuner());
  EXPECT_EQ(rab.choose(CollectiveId::kAllreduce, 4096, 1024, 8, true),
            CollAlgo::kRabenseifner);
  EXPECT_NE(rab.choose(CollectiveId::kAllreduce, 4092, 1023, 8, true),
            CollAlgo::kRabenseifner);
  // A pipeline rule on allreduce is never legal; defaults apply untouched.
  const CollTuner pipe = CollTuner::parse("allreduce:pipeline@0", base_tuner());
  EXPECT_NE(pipe.choose(CollectiveId::kAllreduce, 4096, 1024, 8, true),
            CollAlgo::kPipeline);
}

TEST(CollTuner, ChainsForClampsToMax) {
  const CollTuner t = CollTuner::parse("seg:1k,chains:4", base_tuner());
  EXPECT_EQ(t.chains_for(512), 1);
  EXPECT_EQ(t.chains_for(1024), 1);
  EXPECT_EQ(t.chains_for(1025), 2);
  EXPECT_EQ(t.chains_for(3 * 1024), 3);
  EXPECT_EQ(t.chains_for(1 << 20), 4);  // clamped; segment grows instead
}

// ========================================================================
// Property sweep: every algorithm, bitwise against a serial reference.
// ========================================================================

class CollAlgoRanks : public ::testing::TestWithParam<int> {};

namespace {

/// Byte payload sizes: eager through rendezvous, chunk-aligned and not
/// (seg is forced to 4 KiB in the sweep specs below).
constexpr std::size_t kSizes[] = {1,     3,      64,        1000,
                                  4096,  4097,   65536,     65537,
                                  262144, 1048576};

/// Run `bytes`-sized byte-wise allreduce on an existing cluster fiber and
/// compare against the serial fold.
void check_allreduce_bytes(Op op, std::size_t bytes) {
  const int p = size();
  std::vector<std::uint8_t> in(bytes), out(bytes, 0xEE);
  for (std::size_t i = 0; i < bytes; ++i) in[i] = pat(rank(), i);
  allreduce(in.data(), out.data(), bytes, Datatype::kByte, op);
  std::vector<std::uint8_t> want(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    std::uint8_t acc = pat(0, i);
    for (int r = 1; r < p; ++r) {
      const std::uint8_t v = pat(r, i);
      acc = op == Op::kSum ? static_cast<std::uint8_t>(acc + v)
                           : std::max(acc, v);
    }
    want[i] = acc;
  }
  ASSERT_EQ(std::memcmp(out.data(), want.data(), bytes), 0)
      << "allreduce mismatch: op=" << (op == Op::kSum ? "sum" : "max")
      << " bytes=" << bytes << " ranks=" << p;
}

}  // namespace

TEST_P(CollAlgoRanks, AllreduceEveryAlgorithmBitwise) {
  // Each spec pins one algorithm from byte 0 with a small segment so even
  // mid-sized payloads split into multiple chains; illegal combinations
  // (rdbl/rabenseifner off power-of-two) must fall back and still be exact.
  static const char* kSpecs[] = {
      "",  // profile defaults, size-dependent selection
      "allreduce:ring@0,seg:4k,chains:8",
      "allreduce:ring@0,seg:4097,chains:3",  // non-chunk-aligned segment
      "allreduce:rdbl@0",
      "allreduce:rabenseifner@0,seg:4k",
      "allreduce:reduce-bcast@0,seg:4k",
  };
  for (const char* spec : kSpecs) {
    Cluster c(cfg(GetParam(), spec));
    c.run([&](RankCtx&) {
      for (const std::size_t bytes : kSizes) {
        check_allreduce_bytes(Op::kSum, bytes);
        check_allreduce_bytes(Op::kMax, bytes);
      }
    });
  }
}

TEST_P(CollAlgoRanks, AllreduceNonCommutativeUserOp) {
  const Op matop = register_user_op(&mat_mul_op, /*commutative=*/false);
  ASSERT_FALSE(op_commutative(matop));
  // Force ring: illegal for a non-commutative op, so the schedule must fall
  // back to the order-preserving reduce-bcast — and record THAT, not ring.
  Cluster c(cfg(GetParam(), "allreduce:ring@0,seg:4k"));
  c.run([&](RankCtx&) {
    const int p = size();
    for (const std::size_t count : {std::size_t{1}, std::size_t{127},
                                    std::size_t{8192}, std::size_t{131072}}) {
      std::vector<std::uint64_t> in(count), out(count, 0);
      for (std::size_t i = 0; i < count; ++i) in[i] = mat_pat(rank(), i);
      allreduce(in.data(), out.data(), count, Datatype::kLong, matop);
      for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t acc = mat_pat(0, i);
        for (int r = 1; r < p; ++r) acc = mat_mul(acc, mat_pat(r, i));
        ASSERT_EQ(out[i], acc) << "count=" << count << " i=" << i;
      }
    }
  });
  const CollStats& cs = c.rank(0).coll_stats();
  EXPECT_EQ(cs.count(CollectiveId::kAllreduce, CollAlgo::kRing), 0u);
  EXPECT_EQ(cs.count(CollectiveId::kAllreduce, CollAlgo::kReduceBcast), 4u);
}

TEST_P(CollAlgoRanks, BcastPipelinedAndBinomialBitwise) {
  static const char* kSpecs[] = {
      "bcast:binomial@0",
      "bcast:pipeline@0,seg:4k,chains:8",
      "bcast:pipeline@0,seg:4097,chains:3",
  };
  for (const char* spec : kSpecs) {
    Cluster c(cfg(GetParam(), spec));
    c.run([&](RankCtx&) {
      const int p = size();
      for (const std::size_t bytes : kSizes) {
        for (int root = 0; root < p; root += (p > 2 ? p - 1 : 1)) {
          std::vector<std::uint8_t> buf(bytes);
          for (std::size_t i = 0; i < bytes; ++i) {
            buf[i] = rank() == root ? pat(root, i) : 0xCD;
          }
          bcast(buf.data(), bytes, Datatype::kByte, root);
          for (std::size_t i = 0; i < bytes; ++i) {
            ASSERT_EQ(buf[i], pat(root, i))
                << "bcast mismatch: bytes=" << bytes << " root=" << root
                << " i=" << i;
          }
        }
      }
    });
  }
}

TEST_P(CollAlgoRanks, AllgatherRingAndPostAllBitwise) {
  static const char* kSpecs[] = {
      "allgather:postall@0",
      "allgather:ring@0,seg:4k,chains:8",
  };
  for (const char* spec : kSpecs) {
    Cluster c(cfg(GetParam(), spec));
    c.run([&](RankCtx&) {
      const int p = size();
      for (const std::size_t per : {std::size_t{1}, std::size_t{1000},
                                    std::size_t{4097}, std::size_t{65536}}) {
        std::vector<std::uint8_t> in(per), out(per * static_cast<std::size_t>(p));
        for (std::size_t i = 0; i < per; ++i) in[i] = pat(rank(), i);
        allgather(in.data(), out.data(), per, Datatype::kByte);
        for (int r = 0; r < p; ++r) {
          for (std::size_t i = 0; i < per; ++i) {
            ASSERT_EQ(out[static_cast<std::size_t>(r) * per + i], pat(r, i))
                << "allgather mismatch: per=" << per << " src=" << r;
          }
        }
      }
    });
  }
}

TEST_P(CollAlgoRanks, AlltoallPostAllAndPairwiseBitwise) {
  static const char* kSpecs[] = {"alltoall:postall@0", "alltoall:pairwise@0"};
  for (const char* spec : kSpecs) {
    Cluster c(cfg(GetParam(), spec));
    c.run([&](RankCtx&) {
      const int p = size();
      for (const std::size_t blk : {std::size_t{1}, std::size_t{4097},
                                    std::size_t{65536}}) {
        const auto cell = [&](int src, int dst, std::size_t i) {
          return static_cast<std::uint8_t>(src * 89 + dst * 57 + i * 3 + 5);
        };
        std::vector<std::uint8_t> sb(blk * static_cast<std::size_t>(p));
        std::vector<std::uint8_t> rb(blk * static_cast<std::size_t>(p), 0xAB);
        for (int d = 0; d < p; ++d) {
          for (std::size_t i = 0; i < blk; ++i) {
            sb[static_cast<std::size_t>(d) * blk + i] = cell(rank(), d, i);
          }
        }
        alltoall(sb.data(), rb.data(), blk, Datatype::kByte);
        for (int s = 0; s < p; ++s) {
          for (std::size_t i = 0; i < blk; ++i) {
            ASSERT_EQ(rb[static_cast<std::size_t>(s) * blk + i],
                      cell(s, rank(), i))
                << "alltoall mismatch: blk=" << blk << " src=" << s;
          }
        }
      }
    });
  }
}

TEST_P(CollAlgoRanks, ForcedAlgorithmIsRecordedInStats) {
  Cluster c(cfg(GetParam(), "allreduce:ring@0,seg:4k,chains:4"));
  constexpr int kReps = 3;
  constexpr std::size_t kBytes = 256 * 1024;
  c.run([&](RankCtx&) {
    std::vector<std::uint8_t> in(kBytes, 1), out(kBytes);
    for (int i = 0; i < kReps; ++i) {
      allreduce(in.data(), out.data(), kBytes, Datatype::kByte, Op::kSum);
    }
  });
  for (int r = 0; r < c.nranks(); ++r) {
    const CollStats& cs = c.rank(r).coll_stats();
    EXPECT_EQ(cs.count(CollectiveId::kAllreduce, CollAlgo::kRing),
              static_cast<std::uint64_t>(kReps))
        << "rank " << r;
    EXPECT_EQ(cs.count(CollectiveId::kAllreduce, CollAlgo::kUnknown), 0u);
    // Segmented schedules must actually chunk: 256 KiB over a 4 KiB segment
    // clamps to 4 chains and many stages per chain.
    EXPECT_GT(cs.chunks, 0u) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollAlgoRanks,
                         ::testing::Values(2, 3, 4, 5, 7, 8));
