// MPIOFF_SAN unit tests: spec parsing, the fiber-aware race detector on a
// raw sim::Engine, reporter semantics (dedupe, cap, fail mode), stats
// counters, and determinism of report streams.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "san/san.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

#ifdef MPIOFFLOAD_NO_SAN
#define SAN_OR_SKIP() GTEST_SKIP() << "built with MPIOFFLOAD_ENABLE_SAN=OFF"
#else
#define SAN_OR_SKIP()
#endif

namespace {

/// Scoped sanitizer session for tests that drive the hooks manually (the
/// Cluster runner owns the session in production code).
struct Session {
  explicit Session(const std::string& spec) { san::begin_session(spec); }
  ~Session() { san::end_session(); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
};

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

}  // namespace

// ------------------------------------------------------------ spec parsing --

TEST(SanSpec, EmptyAndZeroDisable) {
  EXPECT_FALSE(san::Options::parse("").enabled);
  EXPECT_FALSE(san::Options::parse("0").enabled);
}

TEST(SanSpec, BareOneEnablesEverythingReportOnly) {
  const san::Options o = san::Options::parse("1");
  EXPECT_TRUE(o.enabled);
  EXPECT_TRUE(o.race);
  EXPECT_TRUE(o.usage);
  EXPECT_FALSE(o.fail);
  EXPECT_EQ(o.max_reports, 64u);
}

TEST(SanSpec, KeysOverrideDefaults) {
  const san::Options o = san::Options::parse("1,race:0,usage:1,fail:1,max_reports:16");
  EXPECT_TRUE(o.enabled);
  EXPECT_FALSE(o.race);
  EXPECT_TRUE(o.usage);
  EXPECT_TRUE(o.fail);
  EXPECT_EQ(o.max_reports, 16u);
}

TEST(SanSpec, BadLeadTokenNamesTheRule) {
  try {
    (void)san::Options::parse("yes");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_TRUE(contains(e.what(), "must start with '1'")) << e.what();
  }
}

TEST(SanSpec, UnknownKeyNamesTheVocabulary) {
  try {
    (void)san::Options::parse("1,zap:1");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_TRUE(contains(e.what(), "unknown key 'zap'")) << e.what();
    EXPECT_TRUE(contains(e.what(), "race, usage, fail, max_reports")) << e.what();
  }
}

TEST(SanSpec, DuplicateKeyThrows) {
  try {
    (void)san::Options::parse("1,race:1,race:0");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_TRUE(contains(e.what(), "duplicate key 'race'")) << e.what();
  }
}

TEST(SanSpec, MalformedTokenThrows) {
  EXPECT_THROW((void)san::Options::parse("1,race"), std::invalid_argument);
  EXPECT_THROW((void)san::Options::parse("1,:1"), std::invalid_argument);
  EXPECT_THROW((void)san::Options::parse("1,race:"), std::invalid_argument);
}

TEST(SanSpec, ZeroTakesNoKeys) {
  EXPECT_THROW((void)san::Options::parse("0,race:1"), std::invalid_argument);
}

TEST(SanSpec, BoolAndCountValuesValidated) {
  EXPECT_THROW((void)san::Options::parse("1,fail:2"), std::invalid_argument);
  EXPECT_THROW((void)san::Options::parse("1,max_reports:0"), std::invalid_argument);
  EXPECT_THROW((void)san::Options::parse("1,max_reports:lots"), std::invalid_argument);
}

// ---------------------------------------------------------- session gating --

TEST(SanSession, FlagsFollowTheSpec) {
  SAN_OR_SKIP();
  EXPECT_FALSE(san::on());
  EXPECT_FALSE(san::begin_session("0"));
  EXPECT_FALSE(san::on());
  {
    Session s("1,race:0");
    EXPECT_TRUE(san::on());
    EXPECT_FALSE(san::race_on());
    EXPECT_TRUE(san::usage_on());
  }
  EXPECT_FALSE(san::on());
}

TEST(SanSession, NestedSessionsJoinTheOuterOne) {
  SAN_OR_SKIP();
  Session outer("1");
  EXPECT_TRUE(san::begin_session("1,race:0"));  // nested: joins, no reset
  EXPECT_TRUE(san::race_on());                  // outer options still rule
  san::end_session();
  EXPECT_TRUE(san::on());  // outer session survives the nested close
}

// ------------------------------------------------------------ race detector --

namespace {

/// Two fibers write the same field with no synchronization edge between
/// them. Returns the report stream ("kind: message" per report).
std::vector<std::string> run_racy_engine() {
  Session s("1,usage:0");
  int x = 0;
  sim::Engine e;
  e.spawn("writer-a", [&] {
    sim::advance(sim::Time::from_us(1));
    x = 1;
    san::check_write(&x, sizeof(x), "test.racy-x");
  });
  e.spawn("writer-b", [&] {
    sim::advance(sim::Time::from_us(2));
    x = 2;
    san::check_write(&x, sizeof(x), "test.racy-x");
  });
  e.run();
  std::vector<std::string> out;
  for (const san::Report& r : san::reports()) out.push_back(r.kind + ": " + r.message);
  return out;
}

}  // namespace

TEST(SanRace, UnsyncedFiberWritesAreReported) {
  SAN_OR_SKIP();
  const std::vector<std::string> reps = run_racy_engine();
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_TRUE(contains(reps[0], "race: ")) << reps[0];
  EXPECT_TRUE(contains(reps[0], "test.racy-x")) << reps[0];
  EXPECT_TRUE(contains(reps[0], "writer-a")) << reps[0];
  EXPECT_TRUE(contains(reps[0], "writer-b")) << reps[0];
  EXPECT_TRUE(contains(reps[0], "no happens-before")) << reps[0];
}

TEST(SanRace, NotifierSignalOrdersTheAccesses) {
  SAN_OR_SKIP();
  Session s("1,usage:0");
  int x = 0;
  sim::Engine e;
  sim::Notifier n;
  e.spawn("producer", [&] {
    sim::advance(sim::Time::from_us(1));
    x = 1;
    san::check_write(&x, sizeof(x), "test.synced-x");
    n.signal();
  });
  e.spawn("consumer", [&] {
    n.wait_beyond(0);  // blocks until the producer's signal (wake edge)
    x = 2;
    san::check_write(&x, sizeof(x), "test.synced-x");
  });
  e.run();
  EXPECT_EQ(san::count("race"), 0u) << san::reports().front().message;
}

TEST(SanRace, ForkEdgeOrdersParentWritesBeforeChild) {
  SAN_OR_SKIP();
  Session s("1,usage:0");
  int x = 0;
  sim::Engine e;
  e.spawn("parent", [&] {
    x = 1;
    san::check_write(&x, sizeof(x), "test.fork-x");
    // The spawn itself is the HB edge: the child starts with our history.
    sim::Engine::current()->spawn("child", [&] {
      x = 2;
      san::check_write(&x, sizeof(x), "test.fork-x");
    });
  });
  e.run();
  EXPECT_EQ(san::count("race"), 0u);
}

TEST(SanRace, ReportStreamIsDeterministic) {
  SAN_OR_SKIP();
  const std::vector<std::string> a = run_racy_engine();
  const std::vector<std::string> b = run_racy_engine();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- reporter --

TEST(SanReporter, DedupesRepeatsAndCapsStoredReports) {
  SAN_OR_SKIP();
  std::vector<char> buf(32, 'x');
  Session s("1,race:0,max_reports:1");
  san::mpi_post_recv(0, 1, buf.data(), buf.size());
  san::check_read(buf.data(), 4, "cap.site-a");
  san::check_read(buf.data(), 4, "cap.site-a");  // identical message: deduped
  san::check_read(buf.data(), 4, "cap.site-b");  // distinct: counted, not stored
  EXPECT_EQ(san::reports().size(), 1u);          // cap
  EXPECT_EQ(san::stats().reports, 2u);           // dedupe counted once each
  EXPECT_EQ(san::count("read-inflight-recv"), 1u);
}

TEST(SanReporter, FailModeThrowsSanErrorWhichIsLogicError) {
  SAN_OR_SKIP();
  std::vector<char> buf(16, 'x');
  Session s("1,race:0,fail:1");
  san::mpi_post_recv(0, 1, buf.data(), buf.size());
  try {
    san::check_read(buf.data(), 4, "fail.site");
    FAIL() << "expected san::Error";
  } catch (const std::logic_error& e) {  // Error derives std::logic_error
    EXPECT_TRUE(contains(e.what(), "read-inflight-recv")) << e.what();
  }
}

TEST(SanReporter, EngineBlockMessageNamesTheCall) {
  const std::string m = san::engine_block_message("Test::wait");
  EXPECT_TRUE(contains(m, "blocking wait in offload-engine context (Test::wait)")) << m;
}

// ------------------------------------------------------------------- stats --

TEST(SanStats, CountersTrackTheWorkDone) {
  SAN_OR_SKIP();
  std::vector<char> buf(64, 'x');
  {
    Session s("1");
    san::mpi_post_send(0, 1, buf.data(), buf.size());  // register + checksum
    san::check_read(buf.data(), 8, "stats.read");      // reading a send buffer is legal
    san::mpi_complete(0, 1);                           // checksum verify
  }
  // Stats survive end_session() so the [stats] trailer can print them.
  const san::Stats& st = san::stats();
  EXPECT_EQ(st.buffer_regs, 1u);
  EXPECT_EQ(st.checksums, 2u);
  EXPECT_EQ(st.race_checks, 1u);
  EXPECT_EQ(st.reports, 0u);
}
