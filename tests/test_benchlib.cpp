// Benchmark-library sanity: the kernels that generate the paper's figures
// must themselves behave (monotonicity, bounds, approach orderings).
#include <gtest/gtest.h>

#include <sstream>

#include "benchlib/osu.hpp"
#include "benchlib/overlap.hpp"
#include "benchlib/table.hpp"

using namespace benchlib;
using core::Approach;

TEST(Table, AlignsAndEmitsCsv) {
  Table t({"a", "long-header", "c"});
  t.row({"1", "2", "3"}).row({"wide-cell", "x", "y"});
  std::ostringstream txt;
  t.print(txt);
  EXPECT_NE(txt.str().find("| long-header |"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,long-header,c\n1,2,3\nwide-cell,x,y\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_us(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.876), "88%");
  EXPECT_EQ(fmt_bytes(128 * 1024), "128K");
  EXPECT_EQ(fmt_bytes(2 * 1024 * 1024), "2M");
  EXPECT_EQ(fmt_bytes(100), "100");
  EXPECT_EQ(fmt_int(-5), "-5");
}

TEST(OsuKernels, LatencyIncreasesWithSize) {
  const auto prof = machine::xeon_fdr();
  const double small = osu_latency(Approach::kBaseline, prof, 8, 10).latency_us;
  const double large = osu_latency(Approach::kBaseline, prof, 1 << 20, 10).latency_us;
  EXPECT_GT(small, 0);
  EXPECT_GT(large, 20 * small);
}

TEST(OsuKernels, OffloadPostIsFlatAcrossSizes) {
  const auto prof = machine::xeon_fdr();
  const double p1 = osu_latency(Approach::kOffload, prof, 64, 10).post_us;
  const double p2 = osu_latency(Approach::kOffload, prof, 1 << 20, 10).post_us;
  EXPECT_NEAR(p1, p2, 0.01);
  EXPECT_LT(p1, 0.3);  // paper: ~140 ns
}

TEST(OsuKernels, BaselinePostPeaksAtEagerThreshold) {
  const auto prof = machine::xeon_fdr();
  const double at = osu_latency(Approach::kBaseline, prof, 128 << 10, 10).post_us;
  const double above = osu_latency(Approach::kBaseline, prof, 256 << 10, 10).post_us;
  EXPECT_GT(at, 10 * above);
}

TEST(OsuKernels, BandwidthApproachesWireRate) {
  const auto prof = machine::xeon_fdr();
  const double mbps = osu_bandwidth(Approach::kBaseline, prof, 4 << 20, 16, 3)
                          .bandwidth_mbps;
  EXPECT_GT(mbps, prof.net_bytes_per_ns * 1000.0 * 0.9);
  EXPECT_LE(mbps, prof.net_bytes_per_ns * 1000.0 * 1.05);
}

TEST(OsuKernels, MultithreadedContentionHurtsLockedPaths) {
  const auto prof = machine::xeon_fdr();
  const double base8 = osu_latency_mt(Approach::kBaseline, prof, 8, 64, 10).latency_us;
  const double off8 = osu_latency_mt(Approach::kOffload, prof, 8, 64, 10).latency_us;
  // Paper Fig. 6: several-fold advantage for offload at 8 threads.
  EXPECT_GT(base8, 3 * off8);
}

TEST(OverlapKernel, FractionsAreSane) {
  const auto prof = machine::xeon_fdr();
  for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
    const OverlapResult r = overlap_p2p(a, prof, 65536, 8, 2);
    EXPECT_GT(r.comm_us, 0);
    EXPECT_GE(r.overlap_frac, 0.0);
    EXPECT_LE(r.overlap_frac, 1.05);
    EXPECT_GE(r.wait_frac, 0.0);
  }
}

TEST(OverlapKernel, PaperOrderingAtLargeMessages) {
  const auto prof = machine::xeon_fdr();
  const double base = overlap_p2p(Approach::kBaseline, prof, 2 << 20, 8, 2).overlap_frac;
  const double self = overlap_p2p(Approach::kCommSelf, prof, 2 << 20, 8, 2).overlap_frac;
  const double off = overlap_p2p(Approach::kOffload, prof, 2 << 20, 8, 2).overlap_frac;
  // Fig. 2 at 2MB: baseline ~1%, comm-self ~80%+, offload ~99%.
  EXPECT_LT(base, 0.15);
  EXPECT_GT(self, 0.6);
  EXPECT_GT(off, 0.9);
  EXPECT_GE(off, self);
}

TEST(OverlapKernel, CollectiveOverlapOrderedByApproach) {
  const auto prof = machine::xeon_fdr();
  const double base = overlap_collective(Approach::kBaseline, prof,
                                         CollKind::kIallreduce, 8, 16384, 5, 1)
                          .overlap_frac;
  const double off = overlap_collective(Approach::kOffload, prof,
                                        CollKind::kIallreduce, 8, 16384, 5, 1)
                         .overlap_frac;
  EXPECT_GT(off, base);
  EXPECT_GT(off, 0.7);
}

TEST(OverlapKernel, IcollectivePostCheapestUnderOffload) {
  const auto prof = machine::xeon_fdr();
  for (CollKind k : {CollKind::kIallreduce, CollKind::kIalltoall, CollKind::kIbarrier}) {
    const double base = icollective_post_us(Approach::kBaseline, prof, k, 8, 8192, 5, 1);
    const double off = icollective_post_us(Approach::kOffload, prof, k, 8, 8192, 5, 1);
    EXPECT_LT(off, base) << coll_name(k);
    EXPECT_LT(off, 0.3) << coll_name(k);
  }
}

TEST(OverlapKernel, CollNamesResolve) {
  EXPECT_STREQ(coll_name(CollKind::kIbcast), "Ibcast");
  EXPECT_STREQ(coll_name(CollKind::kIbarrier), "Ibarrier");
  EXPECT_STREQ(coll_name(CollKind::kIalltoall), "Ialltoall");
}
