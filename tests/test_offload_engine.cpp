// Offload engine semantics: command round-trips, done-flag protocol,
// blocking->nonblocking conversion, asynchronous progress, stats.
#include <gtest/gtest.h>

#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using namespace core;

namespace {

ClusterConfig cfg(int n) {
  ClusterConfig c;
  c.nranks = n;
  c.thread_level = ThreadLevel::kFunneled;
  c.deadline = sim::Time::from_sec(30);
  return c;
}

}  // namespace

TEST(OffloadEngine, RoundTripAllOffloadableOps) {
  Cluster c(cfg(4));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start();
    const int me = rc.rank();
    // p2p
    int v = me, got = -1;
    PReq r1 = p.irecv(&got, 1, Datatype::kInt, me ^ 1, 0);
    PReq r2 = p.isend(&v, 1, Datatype::kInt, me ^ 1, 0);
    p.wait(r1);
    p.wait(r2);
    EXPECT_EQ(got, me ^ 1);
    // every collective kind
    int bc = me == 0 ? 55 : -1;
    p.bcast(&bc, 1, Datatype::kInt, 0);
    EXPECT_EQ(bc, 55);
    int sum = 0;
    p.reduce(&v, &sum, 1, Datatype::kInt, Op::kSum, 0);
    if (me == 0) EXPECT_EQ(sum, 6);
    int asum = 0;
    p.allreduce(&v, &asum, 1, Datatype::kInt, Op::kSum);
    EXPECT_EQ(asum, 6);
    std::vector<int> a2a_s(4), a2a_r(4);
    for (int i = 0; i < 4; ++i) a2a_s[static_cast<std::size_t>(i)] = me * 10 + i;
    p.alltoall(a2a_s.data(), a2a_r.data(), 1, Datatype::kInt);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(a2a_r[static_cast<std::size_t>(i)], i * 10 + me);
    std::vector<int> ag(4);
    p.allgather(&v, ag.data(), 1, Datatype::kInt);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(ag[static_cast<std::size_t>(i)], i);
    p.barrier();
    p.stop();
    EXPECT_GT(p.channel().stats().commands, 0u);
    EXPECT_EQ(p.channel().stats().completions, p.channel().stats().commands);
  });
}

TEST(OffloadEngine, PostReturnsBeforeCompletion) {
  // The defining property (paper Fig. 4): posting is O(100ns) regardless of
  // message size, because the application thread only touches the ring.
  Cluster c(cfg(2));
  std::int64_t post_small = 0, post_big = 0;
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start();
    const std::size_t big = 4 << 20;
    std::vector<char> sb(big, 'x'), rb(big);
    const int peer = 1 - rc.rank();
    PReq rr = p.irecv(rb.data(), big, Datatype::kByte, peer, 1);
    sim::Time t0 = sim::now();
    PReq rs = p.isend(sb.data(), 64, Datatype::kByte, peer, 2);
    if (rc.rank() == 0) post_small = (sim::now() - t0).ns();
    char tiny[64];
    PReq rt = p.irecv(tiny, 64, Datatype::kByte, peer, 2);
    t0 = sim::now();
    PReq rbg = p.isend(sb.data(), big, Datatype::kByte, peer, 1);
    if (rc.rank() == 0) post_big = (sim::now() - t0).ns();
    PReq all[] = {rr, rs, rt, rbg};
    p.waitall(all);
    EXPECT_EQ(rb[big - 1], 'x');
    p.stop();
  });
  // Post cost is flat: the 4MB post costs the same as the 64B post (within
  // noise), and both are well under a microsecond.
  EXPECT_LT(post_small, 1000);
  EXPECT_LT(post_big, 1000);
  EXPECT_NEAR(static_cast<double>(post_big), static_cast<double>(post_small), 200.0);
}

TEST(OffloadEngine, AsynchronousProgressOverlapsRendezvous) {
  // Same scenario as P2P.NoProgressOutsideMpiForRendezvous, but with the
  // offload engine the transfer completes DURING compute: wait is ~free.
  const std::size_t big = 6 << 20;  // ~1ms wire time
  Cluster c(cfg(2));
  std::int64_t wait_ns = -1;
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start();
    std::vector<char> sbuf(big, 's'), rbuf(big);
    const int peer = 1 - rc.rank();
    PReq rr = p.irecv(rbuf.data(), big, Datatype::kByte, peer, 0);
    PReq rs = p.isend(sbuf.data(), big, Datatype::kByte, peer, 0);
    compute(sim::Time::from_ms(5));
    const sim::Time t0 = sim::now();
    p.wait(rr);
    p.wait(rs);
    if (rc.rank() == 0) wait_ns = (sim::now() - t0).ns();
    EXPECT_EQ(rbuf[0], 's');
    p.stop();
  });
  EXPECT_GE(wait_ns, 0);
  EXPECT_LT(wait_ns, 50000);  // <5% of the 1ms transfer: fully overlapped
}

TEST(OffloadEngine, ManyOutstandingRequests) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, /*ring_capacity=*/64, /*pool_capacity=*/4096);
    p.start();
    const int peer = 1 - rc.rank();
    constexpr int kN = 500;  // forces ring wrap and pool recycling
    std::vector<int> rvals(kN), svals(kN);
    for (int i = 0; i < kN; ++i) svals[static_cast<std::size_t>(i)] = rc.rank() * 10000 + i;
    std::vector<PReq> rs;
    for (int i = 0; i < kN; ++i) {
      rs.push_back(p.irecv(&rvals[static_cast<std::size_t>(i)], 1, Datatype::kInt, peer, i));
      rs.push_back(p.isend(&svals[static_cast<std::size_t>(i)], 1, Datatype::kInt, peer, i));
    }
    p.waitall(rs);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(rvals[static_cast<std::size_t>(i)], peer * 10000 + i);
    }
    EXPECT_GE(p.channel().stats().max_inflight, 1u);
    p.stop();
  });
}

TEST(OffloadEngine, TestDoneNonBlocking) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start();
    if (rc.rank() == 0) {
      int got = -1;
      PReq r = p.irecv(&got, 1, Datatype::kInt, 1, 0);
      EXPECT_FALSE(p.test(r));  // peer sends at 50us
      while (!p.test(r)) compute(sim::Time::from_us(5));
      EXPECT_EQ(got, 99);
    } else {
      compute(sim::Time::from_us(50));
      const int v = 99;
      p.send(&v, 1, Datatype::kInt, 0, 0);
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadEngine, StatusPropagatesThroughProxy) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start();
    if (rc.rank() == 0) {
      double data[8];
      Status st;
      PReq r = p.irecv(data, 8, Datatype::kDouble, kAnySource, kAnyTag);
      p.wait(r, &st);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 17);
      EXPECT_EQ(st.count(Datatype::kDouble), 8);
    } else {
      double data[8] = {0};
      p.send(data, 8, Datatype::kDouble, 0, 17);
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadEngine, OnlyOffloadThreadEntersMpi) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    const std::uint64_t calls_before = rc.stats().calls;
    OffloadProxy p(rc);
    p.start();
    int v = 1, s = 0;
    p.allreduce(&v, &s, 1, Datatype::kInt, Op::kSum);
    p.stop();
    // All MPI library entries were made by the engine fiber; the application
    // fiber performed none itself — but stats are per-rank, so just verify
    // the engine made a sane number and the app-side wait made zero beyond
    // what the engine accounts for (engine calls == library entries).
    EXPECT_GT(rc.stats().calls, calls_before);
  });
}

TEST(OffloadEngine, ShutdownDrainsInflight) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start();
    const int peer = 1 - rc.rank();
    int got = -1, v = rc.rank();
    PReq rr = p.irecv(&got, 1, Datatype::kInt, peer, 0);
    PReq rs = p.isend(&v, 1, Datatype::kInt, peer, 0);
    p.wait(rr);
    p.wait(rs);
    p.stop();  // engine must exit despite having processed everything
    EXPECT_EQ(got, peer);
  });
}
