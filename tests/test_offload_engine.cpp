// Offload engine semantics: command round-trips, done-flag protocol,
// blocking->nonblocking conversion, asynchronous progress, stats.
#include <gtest/gtest.h>

#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using namespace core;

namespace {

ClusterConfig cfg(int n) {
  ClusterConfig c;
  c.nranks = n;
  c.thread_level = ThreadLevel::kFunneled;
  c.deadline = sim::Time::from_sec(30);
  return c;
}

}  // namespace

TEST(OffloadEngine, RoundTripAllOffloadableOps) {
  Cluster c(cfg(4));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start_engine();
    const int me = rc.rank();
    // p2p
    int v = me, got = -1;
    PReq r1 = p.irecv(&got, 1, Datatype::kInt, me ^ 1, 0);
    PReq r2 = p.isend(&v, 1, Datatype::kInt, me ^ 1, 0);
    p.wait(r1);
    p.wait(r2);
    EXPECT_EQ(got, me ^ 1);
    // every collective kind
    int bc = me == 0 ? 55 : -1;
    p.bcast(&bc, 1, Datatype::kInt, 0);
    EXPECT_EQ(bc, 55);
    int sum = 0;
    p.reduce(&v, &sum, 1, Datatype::kInt, Op::kSum, 0);
    if (me == 0) EXPECT_EQ(sum, 6);
    int asum = 0;
    p.allreduce(&v, &asum, 1, Datatype::kInt, Op::kSum);
    EXPECT_EQ(asum, 6);
    std::vector<int> a2a_s(4), a2a_r(4);
    for (int i = 0; i < 4; ++i) a2a_s[static_cast<std::size_t>(i)] = me * 10 + i;
    p.alltoall(a2a_s.data(), a2a_r.data(), 1, Datatype::kInt);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(a2a_r[static_cast<std::size_t>(i)], i * 10 + me);
    std::vector<int> ag(4);
    p.allgather(&v, ag.data(), 1, Datatype::kInt);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(ag[static_cast<std::size_t>(i)], i);
    p.barrier();
    p.stop();
    EXPECT_GT(p.channel().stats().commands, 0u);
    EXPECT_EQ(p.channel().stats().completions, p.channel().stats().commands);
  });
}

TEST(OffloadEngine, PostReturnsBeforeCompletion) {
  // The defining property (paper Fig. 4): posting is O(100ns) regardless of
  // message size, because the application thread only touches the ring.
  Cluster c(cfg(2));
  std::int64_t post_small = 0, post_big = 0;
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start_engine();
    const std::size_t big = 4 << 20;
    std::vector<char> sb(big, 'x'), rb(big);
    const int peer = 1 - rc.rank();
    PReq rr = p.irecv(rb.data(), big, Datatype::kByte, peer, 1);
    sim::Time t0 = sim::now();
    PReq rs = p.isend(sb.data(), 64, Datatype::kByte, peer, 2);
    if (rc.rank() == 0) post_small = (sim::now() - t0).ns();
    char tiny[64];
    PReq rt = p.irecv(tiny, 64, Datatype::kByte, peer, 2);
    t0 = sim::now();
    PReq rbg = p.isend(sb.data(), big, Datatype::kByte, peer, 1);
    if (rc.rank() == 0) post_big = (sim::now() - t0).ns();
    PReq all[] = {rr, rs, rt, rbg};
    p.waitall(all);
    EXPECT_EQ(rb[big - 1], 'x');
    p.stop();
  });
  // Post cost is flat: the 4MB post costs the same as the 64B post (within
  // noise), and both are well under a microsecond.
  EXPECT_LT(post_small, 1000);
  EXPECT_LT(post_big, 1000);
  EXPECT_NEAR(static_cast<double>(post_big), static_cast<double>(post_small), 200.0);
}

TEST(OffloadEngine, AsynchronousProgressOverlapsRendezvous) {
  // Same scenario as P2P.NoProgressOutsideMpiForRendezvous, but with the
  // offload engine the transfer completes DURING compute: wait is ~free.
  const std::size_t big = 6 << 20;  // ~1ms wire time
  Cluster c(cfg(2));
  std::int64_t wait_ns = -1;
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start_engine();
    std::vector<char> sbuf(big, 's'), rbuf(big);
    const int peer = 1 - rc.rank();
    PReq rr = p.irecv(rbuf.data(), big, Datatype::kByte, peer, 0);
    PReq rs = p.isend(sbuf.data(), big, Datatype::kByte, peer, 0);
    compute(sim::Time::from_ms(5));
    const sim::Time t0 = sim::now();
    p.wait(rr);
    p.wait(rs);
    if (rc.rank() == 0) wait_ns = (sim::now() - t0).ns();
    EXPECT_EQ(rbuf[0], 's');
    p.stop();
  });
  EXPECT_GE(wait_ns, 0);
  EXPECT_LT(wait_ns, 50000);  // <5% of the 1ms transfer: fully overlapped
}

TEST(OffloadEngine, ManyOutstandingRequests) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, core::ProxyOptions{.ring_capacity = 64});
    p.start_engine();
    const int peer = 1 - rc.rank();
    constexpr int kN = 500;  // forces ring wrap and pool recycling
    std::vector<int> rvals(kN), svals(kN);
    for (int i = 0; i < kN; ++i) svals[static_cast<std::size_t>(i)] = rc.rank() * 10000 + i;
    std::vector<PReq> rs;
    for (int i = 0; i < kN; ++i) {
      rs.push_back(p.irecv(&rvals[static_cast<std::size_t>(i)], 1, Datatype::kInt, peer, i));
      rs.push_back(p.isend(&svals[static_cast<std::size_t>(i)], 1, Datatype::kInt, peer, i));
    }
    p.waitall(rs);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(rvals[static_cast<std::size_t>(i)], peer * 10000 + i);
    }
    EXPECT_GE(p.channel().stats().max_inflight, 1u);
    p.stop();
  });
}

TEST(OffloadEngine, TestDoneNonBlocking) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start_engine();
    if (rc.rank() == 0) {
      int got = -1;
      PReq r = p.irecv(&got, 1, Datatype::kInt, 1, 0);
      EXPECT_FALSE(p.test(r));  // peer sends at 50us
      while (!p.test(r)) compute(sim::Time::from_us(5));
      EXPECT_EQ(got, 99);
    } else {
      compute(sim::Time::from_us(50));
      const int v = 99;
      p.send(&v, 1, Datatype::kInt, 0, 0);
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadEngine, StatusPropagatesThroughProxy) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start_engine();
    if (rc.rank() == 0) {
      double data[8];
      Status st;
      PReq r = p.irecv(data, 8, Datatype::kDouble, kAnySource, kAnyTag);
      p.wait(r, &st);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 17);
      EXPECT_EQ(st.count(Datatype::kDouble), 8);
    } else {
      double data[8] = {0};
      p.send(data, 8, Datatype::kDouble, 0, 17);
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadEngine, OnlyOffloadThreadEntersMpi) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    const std::uint64_t calls_before = rc.stats().calls;
    OffloadProxy p(rc);
    p.start_engine();
    int v = 1, s = 0;
    p.allreduce(&v, &s, 1, Datatype::kInt, Op::kSum);
    p.stop();
    // All MPI library entries were made by the engine fiber; the application
    // fiber performed none itself — but stats are per-rank, so just verify
    // the engine made a sane number and the app-side wait made zero beyond
    // what the engine accounts for (engine calls == library entries).
    EXPECT_GT(rc.stats().calls, calls_before);
  });
}

TEST(OffloadEngine, ShutdownDrainsInflight) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start_engine();
    const int peer = 1 - rc.rank();
    int got = -1, v = rc.rank();
    PReq rr = p.irecv(&got, 1, Datatype::kInt, peer, 0);
    PReq rs = p.isend(&v, 1, Datatype::kInt, peer, 0);
    p.wait(rr);
    p.wait(rs);
    p.stop();  // engine must exit despite having processed everything
    EXPECT_EQ(got, peer);
  });
}

TEST(OffloadEngine, PoolExhaustionCountsPoolFullStalls) {
  // A full request pool and a full command ring are different bottlenecks
  // and must be reported under different counters: here the ring is roomy
  // (64) but the pool holds only 8 slots, so the 9th post stalls on the pool
  // until another thread of the rank recycles a slot.
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, core::ProxyOptions{.ring_capacity = 64, .pool_capacity = 8});
    p.start_engine();
    if (rc.rank() == 0) {
      int vals[9];
      PReq reqs[9];
      for (int i = 0; i < 8; ++i) {
        vals[i] = i;
        // Eager sends complete at the MPI level almost immediately, but the
        // pool slot stays allocated until wait/test — exactly the situation
        // where the 9th submit must stall on the POOL, not the ring.
        reqs[i] = p.isend(&vals[i], 1, Datatype::kInt, 1, i);
      }
      // A second application thread recycles slot 0 a little later.
      rc.cluster().spawn_on(0, "rank0.recycler", [&]() {
        compute(sim::Time::from_us(30));
        p.wait(reqs[0]);
      });
      vals[8] = 8;
      reqs[8] = p.isend(&vals[8], 1, Datatype::kInt, 1, 8);  // stalls, then goes
      for (int i = 1; i < 9; ++i) p.wait(reqs[i]);
    } else {
      // Receive one at a time: rank 1 shares the 8-slot pool size and must
      // not trip its own exhaustion path.
      for (int i = 0; i < 9; ++i) {
        int got = -1;
        p.recv(&got, 1, Datatype::kInt, 0, i);
        EXPECT_EQ(got, i);
      }
    }
    p.barrier();
    p.stop();
    if (rc.rank() == 0) {
      EXPECT_GE(p.channel().stats().pool_full_stalls, 1u);
      EXPECT_EQ(p.channel().stats().ring_full_stalls, 0u);
    }
  });
}

TEST(OffloadEngine, RingBackpressureCountsRingFullStalls) {
  // The mirror image: a tiny ring (4) with an ample pool. A 64-deep post
  // burst outruns the engine's drain rate, so submits spin on the ring and
  // the stalls land in ring_full_stalls only.
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    // lane_count = 0 pins every submit to the shared MPSC ring: this test
    // is specifically about the shared ring's backpressure counter.
    OffloadProxy p(rc, core::ProxyOptions{.ring_capacity = 4, .lane_count = 0});
    p.start_engine();
    const int peer = 1 - rc.rank();
    constexpr int kN = 64;
    std::vector<int> rvals(kN), svals(kN);
    std::vector<PReq> rs;
    for (int i = 0; i < kN; ++i) {
      svals[static_cast<std::size_t>(i)] = rc.rank() * 1000 + i;
      rs.push_back(p.irecv(&rvals[static_cast<std::size_t>(i)], 1, Datatype::kInt, peer, i));
      rs.push_back(p.isend(&svals[static_cast<std::size_t>(i)], 1, Datatype::kInt, peer, i));
    }
    p.waitall(rs);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(rvals[static_cast<std::size_t>(i)], peer * 1000 + i);
    }
    p.stop();
    EXPECT_GT(p.channel().stats().ring_full_stalls, 0u);
    EXPECT_EQ(p.channel().stats().pool_full_stalls, 0u);
  });
}

TEST(OffloadEngine, LongLivedRequestSurvivesCompactionAndStaysFair) {
  // Regression for the in-flight bookkeeping rework: one slow request posted
  // FIRST, then 63 fast ones behind it. After the fast ones complete, 63
  // dead slots sit behind the lone live entry and the sweep array compacts
  // (size > 32, live*2 <= size). The slow request must keep its identity
  // through compaction and complete promptly once its message arrives —
  // under the old rebuild-per-completion scheme this scenario was O(n^2).
  Cluster c(cfg(2));
  sim::Time slow_sent, slow_done;
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, core::ProxyOptions{.ring_capacity = 128,
                                          .pool_capacity = 256});
    p.start_engine();
    if (rc.rank() == 0) {
      int slow_got = -1;
      PReq slow = p.irecv(&slow_got, 1, Datatype::kInt, 1, 999);
      std::vector<int> got(63, -1);
      std::vector<PReq> fast;
      for (int i = 0; i < 63; ++i) {
        fast.push_back(p.irecv(&got[static_cast<std::size_t>(i)], 1, Datatype::kInt, 1, i));
      }
      p.waitall(fast);  // all 63 complete; the slow request is now 1 live of 64
      for (int i = 0; i < 63; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
      p.wait(slow);
      slow_done = sim::now();
      EXPECT_EQ(slow_got, 777);
    } else {
      // Hold the sends until rank 0 has posted the whole burst, so all 64
      // receives are simultaneously in flight — the compaction trigger
      // (size > 32, live*2 <= size) this test exists to exercise.
      compute(sim::Time::from_us(50));
      for (int i = 0; i < 63; ++i) {
        const int v = i;
        p.send(&v, 1, Datatype::kInt, 0, i);
      }
      compute(sim::Time::from_us(200));
      const int v = 777;
      slow_sent = sim::now();
      p.send(&v, 1, Datatype::kInt, 0, 999);
    }
    p.barrier();
    p.stop();
    if (rc.rank() == 0) {
      EXPECT_EQ(p.channel().stats().completions, p.channel().stats().commands);
      EXPECT_GE(p.channel().stats().max_inflight, 64u);
    }
  });
  // Completion must follow the send within network latency + poll
  // granularity — not after another sweep proportional to the dead slots.
  EXPECT_GT(slow_done.ns(), 0);
  EXPECT_GT(slow_sent.ns(), 0);
  EXPECT_LT((slow_done - slow_sent).ns(), 50'000);
}
