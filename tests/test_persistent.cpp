// Persistent & partitioned point-to-point (DESIGN.md §16): the request
// lifecycle state machine (init -> start -> complete -> restart), pool-slot
// reuse across generations, partition-readiness protocol (double-mark,
// out-of-order publication), continuation interop over generations, and the
// differential soak — partitioned QCD/CNN results bit-identical to the
// one-shot paths across all four approaches, clean and faulted.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/cnn/trainer.hpp"
#include "apps/qcd/dslash.hpp"
#include "core/proxy.hpp"
#include "mpi/cluster.hpp"
#include "mpi/continuation.hpp"

using core::Approach;
using core::PersistentReq;
using smpi::Datatype;

namespace {

smpi::ClusterConfig ccfg(int n, Approach a = Approach::kOffload,
                         bool faulted = false) {
  smpi::ClusterConfig c;
  c.nranks = n;
  c.thread_level = core::required_thread_level(a);
  c.deadline = sim::Time::from_sec(300);
  if (faulted) {
    c.profile.faults.on = true;
    c.profile.faults.drop = 0.05;
    c.profile.faults.dup = 0.02;
    c.profile.faults.seed = 42;
  }
  return c;
}

/// Rank 1 sinks `count` plain persistent-send generations from rank 0.
void sink_recvs(core::Proxy& p, void* buf, std::size_t n, int tag, int count) {
  for (int i = 0; i < count; ++i) {
    core::PReq r = p.irecv(buf, n, Datatype::kByte, 0, tag);
    p.wait(r);
  }
}

}  // namespace

// ---------------------------------------------------------------- lifecycle --

class PersistentLifecycle : public ::testing::TestWithParam<Approach> {};

TEST_P(PersistentLifecycle, MisuseThrows) {
  const Approach a = GetParam();
  smpi::Cluster cluster(ccfg(2, a));
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    std::vector<char> buf(256);
    if (rc.rank() == 0) {
      PersistentReq s = p->send_init(buf.data(), buf.size(), Datatype::kByte,
                                     1, 5);
      // Wait on an inactive handle is trivially complete, not an error.
      smpi::Status st;
      p->wait(s, &st);
      EXPECT_EQ(st.bytes, 0u);
      // pready needs a started partitioned SEND.
      EXPECT_THROW(p->pready(s, 0), std::logic_error);
      p->start(s);
      // start-before-complete is the canonical misuse.
      EXPECT_THROW(p->start(s), std::logic_error);
      // ... and so is freeing a started generation.
      EXPECT_THROW(p->request_free(s), std::logic_error);
      p->wait(s);
      // Partitioned misuse: double-mark, out-of-range, wait with unmarked
      // partitions, pready before start.
      PersistentReq ps = p->psend_init(buf.data(), buf.size(), Datatype::kByte,
                                       1, 6, 4);
      EXPECT_THROW(p->pready(ps, 0), std::logic_error);  // not started
      p->start(ps);
      p->pready(ps, 2);
      EXPECT_THROW(p->pready(ps, 2), std::logic_error);  // double mark
      EXPECT_THROW(p->pready(ps, 4), std::logic_error);  // out of range
      EXPECT_THROW(p->wait(ps), std::logic_error);       // 3 unmarked
      EXPECT_FALSE(p->test(ps));                         // can never complete
      p->pready(ps, 0);
      // pready_range is inclusive and re-marking throws, so [1,1] then [3,3].
      p->pready_range(ps, 1, 1);
      EXPECT_THROW(p->pready_range(ps, 1, 3), std::logic_error);  // 2 re-marked
      p->pready(ps, 3);
      p->wait(ps);
      p->request_free(ps);
      EXPECT_TRUE(ps.is_null());
      p->request_free(ps);  // freeing a null handle is idempotent
      p->request_free(s);
      // Empty startall is a no-op.
      std::vector<PersistentReq> none;
      p->startall(none);
    } else {
      core::PReq r0 = p->irecv(buf.data(), buf.size(), Datatype::kByte, 0, 5);
      p->wait(r0);
      PersistentReq pr = p->precv_init(buf.data(), buf.size(), Datatype::kByte,
                                       0, 6, 4);
      p->start(pr);
      p->wait(pr);
      p->request_free(pr);
    }
    p->barrier();
    p->stop();
  });
}

INSTANTIATE_TEST_SUITE_P(Approaches, PersistentLifecycle,
                         ::testing::Values(Approach::kBaseline,
                                           Approach::kIprobe,
                                           Approach::kCommSelf,
                                           Approach::kOffload));

TEST(PersistentLifecycle, PartitionedRequiresSpecificSource) {
  smpi::Cluster cluster(ccfg(2, Approach::kBaseline));
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(Approach::kBaseline, rc);
    p->start_engine();
    std::vector<char> buf(64);
    // Partition frames carry encoded wire tags a wildcard can never match.
    EXPECT_THROW(p->precv_init(buf.data(), buf.size(), Datatype::kByte,
                               smpi::kAnySource, 3, 2),
                 std::logic_error);
    p->barrier();
    p->stop();
  });
}

TEST(PersistentLifecycle, RestartReusesPoolSlot) {
  constexpr int kGens = 6;
  smpi::Cluster cluster(ccfg(2));
  cluster.run([&](smpi::RankCtx& rc) {
    core::OffloadProxy p(rc, core::ProxyOptions{});
    p.start_engine();
    std::vector<char> buf(512);
    if (rc.rank() == 0) {
      PersistentReq s =
          p.send_init(buf.data(), buf.size(), Datatype::kByte, 1, 9);
      const std::uint32_t slot = p.channel().persist_pool_slot(
          static_cast<std::uint32_t>(s.v - 1));
      EXPECT_LT(slot, p.channel().pool().capacity());
      const std::size_t inflight0 = p.inflight();
      for (int g = 0; g < kGens; ++g) {
        p.start(s);
        p.wait(s);
        // The envelope is init-once: every generation re-arms the SAME pool
        // slot instead of allocating a new one.
        EXPECT_EQ(p.channel().persist_pool_slot(
                      static_cast<std::uint32_t>(s.v - 1)),
                  slot)
            << "generation " << g;
        EXPECT_EQ(p.inflight(), inflight0) << "generation " << g;
      }
      p.request_free(s);
    } else {
      sink_recvs(p, buf.data(), buf.size(), 9, kGens);
    }
    p.barrier();
    p.stop();
  });
}

// --------------------------------------------------------------- partitioned --

class PartitionedData : public ::testing::TestWithParam<Approach> {};

TEST_P(PartitionedData, OutOfOrderPreadyDeliversWholeMessage) {
  const Approach a = GetParam();
  constexpr std::uint32_t kParts = 4;
  constexpr std::size_t kBytes = 4096;
  constexpr int kGens = 3;
  smpi::Cluster cluster(ccfg(2, a));
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    std::vector<char> buf(kBytes);
    if (rc.rank() == 0) {
      PersistentReq s =
          p->psend_init(buf.data(), kBytes, Datatype::kByte, 1, 11, kParts);
      for (int g = 0; g < kGens; ++g) {
        p->start(s);
        // Publish partitions out of order, filling each chunk just before
        // its pready — early chunks ship while later ones are still blank.
        for (std::uint32_t part : {2u, 0u, 3u, 1u}) {
          const std::size_t lo = kBytes * part / kParts;
          const std::size_t hi = kBytes * (part + 1) / kParts;
          std::memset(buf.data() + lo, 'a' + static_cast<int>(part) + g,
                      hi - lo);
          p->pready(s, part);
        }
        p->wait(s);
      }
      p->request_free(s);
    } else {
      PersistentReq r =
          p->precv_init(buf.data(), kBytes, Datatype::kByte, 0, 11, kParts);
      for (int g = 0; g < kGens; ++g) {
        p->start(r);
        smpi::Status st;
        p->wait(r, &st);
        EXPECT_EQ(st.bytes, kBytes);
        EXPECT_EQ(st.tag, 11);
        for (std::uint32_t part = 0; part < kParts; ++part) {
          const std::size_t lo = kBytes * part / kParts;
          EXPECT_EQ(buf[lo], static_cast<char>('a' + static_cast<int>(part) + g))
              << "generation " << g << " partition " << part;
        }
      }
      p->request_free(r);
    }
    p->barrier();
    p->stop();
  });
}

INSTANTIATE_TEST_SUITE_P(Approaches, PartitionedData,
                         ::testing::Values(Approach::kBaseline,
                                           Approach::kIprobe,
                                           Approach::kCommSelf,
                                           Approach::kOffload));

// -------------------------------------------------------------- continuation --

TEST(PersistentContinuation, GenerationChainsAndRestarts) {
  constexpr int kGens = 4;
  smpi::Cluster cluster(ccfg(2));
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(Approach::kOffload, rc);
    p->start_engine();
    std::vector<char> buf(128);
    if (rc.rank() == 0) {
      PersistentReq s =
          p->send_init(buf.data(), buf.size(), Datatype::kByte, 1, 21);
      // Self-restarting generation loop: the callback observes the handle
      // back in the inactive state and starts the next generation itself.
      int fired = 0;
      cont::Event done;
      core::ContFn next = [&](const smpi::Status&) {
        if (++fired == kGens) {
          done.set();
          return;
        }
        p->start(s);
        cont::generation(*p, s).then(next);
      };
      p->start(s);
      cont::generation(*p, s).then(next);
      done.wait(*p);
      EXPECT_EQ(fired, kGens);
      p->request_free(s);
    } else {
      sink_recvs(*p, buf.data(), buf.size(), 21, kGens);
    }
    p->barrier();
    p->stop();
  });
}

TEST(PersistentContinuation, WhenAllGenerations) {
  smpi::Cluster cluster(ccfg(2));
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(Approach::kOffload, rc);
    p->start_engine();
    std::vector<char> a(64), b(64);
    if (rc.rank() == 0) {
      std::vector<PersistentReq> rs = {
          p->send_init(a.data(), a.size(), Datatype::kByte, 1, 31),
          p->send_init(b.data(), b.size(), Datatype::kByte, 1, 32)};
      p->startall(rs);
      cont::Event done;
      cont::when_all_generations(*p, rs,
                                 [&done](const smpi::Status&) { done.set(); });
      done.wait(*p);
      for (PersistentReq& r : rs) p->request_free(r);
    } else {
      core::PReq r31 = p->irecv(a.data(), a.size(), Datatype::kByte, 0, 31);
      core::PReq r32 = p->irecv(b.data(), b.size(), Datatype::kByte, 0, 32);
      p->wait(r31);
      p->wait(r32);
    }
    p->barrier();
    p->stop();
  });
}

// -------------------------------------------------------- differential soaks --

namespace {

/// QCD digest: the partitioned-persistent halo path must be bit-identical
/// to the one-shot apply() on every rank, for several restarted generations.
void dslash_differential(Approach a, bool faulted, std::size_t proxies) {
  using namespace qcd;
  const int nranks = 4;
  const Dims global{4, 4, 4, 8};
  const Dims grid = choose_grid(nranks, global);

  SpinorField gpsi(global);
  GaugeField gu(global);
  fill_random_spinor(gpsi, 11);
  fill_random_gauge(gu, 22);

  smpi::Cluster cluster(ccfg(nranks, a, faulted));
  cluster.run([&](smpi::RankCtx& rc) {
    std::unique_ptr<core::Proxy> p;
    if (a == Approach::kOffload) {
      core::ProxyOptions opts;
      opts.proxy_count = proxies;
      p = std::make_unique<core::OffloadProxy>(rc, opts);
    } else {
      p = core::make_proxy(a, rc);
    }
    p->start_engine();
    Decomposition dec(global, grid, rc.rank());
    DistributedDslash d(dec, *p);
    // Scatter the global fields into the local blocks.
    const Dims& ld = dec.local();
    Dims c;
    for (c[kT] = 0; c[kT] < ld[kT]; ++c[kT])
      for (c[kZ] = 0; c[kZ] < ld[kZ]; ++c[kZ])
        for (c[kY] = 0; c[kY] < ld[kY]; ++c[kY])
          for (c[kX] = 0; c[kX] < ld[kX]; ++c[kX]) {
            const int li = site_index(c, ld);
            const int gi = site_index(dec.to_global(c), global);
            for (int i = 0; i < kSpinorFloats; ++i)
              d.psi().site(li)[i] = gpsi.site(gi)[i];
            for (int mu = 0; mu < 4; ++mu)
              for (int i = 0; i < kLinkEntries; ++i)
                d.gauge().link(li, mu)[i] = gu.link(gi, mu)[i];
          }
    SpinorField ref(dec.local()), got(dec.local());
    d.apply(ref);
    for (int gen = 0; gen < 3; ++gen) {
      d.apply_partitioned(got);
      EXPECT_EQ(std::memcmp(got.v.data(), ref.v.data(),
                            got.v.size() * sizeof(qcd::cf)),
                0)
          << "rank " << rc.rank() << " generation " << gen;
    }
    p->barrier();
    d.release_persistent();
    p->barrier();
    p->stop();
  });
}

}  // namespace

class PartitionedDslash
    : public ::testing::TestWithParam<std::tuple<Approach, bool>> {};

TEST_P(PartitionedDslash, BitIdenticalToOneShot) {
  const auto [a, faulted] = GetParam();
  dslash_differential(a, faulted, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Approaches, PartitionedDslash,
    ::testing::Combine(::testing::Values(Approach::kBaseline, Approach::kIprobe,
                                         Approach::kCommSelf,
                                         Approach::kOffload),
                       ::testing::Bool()));

TEST(PartitionedDslash, BitIdenticalUnderShardedEngines) {
  dslash_differential(Approach::kOffload, /*faulted=*/false, /*proxies=*/4);
  dslash_differential(Approach::kOffload, /*faulted=*/true, /*proxies=*/4);
}

namespace {

/// Train 3 steps with the given gradient mode; returns the final conv
/// weights of rank 0 (all ranks hold identical weights by construction).
std::vector<float> cnn_train(Approach a, cnn::DistributedTrainer::GradMode m,
                             bool faulted) {
  using namespace cnn;
  const int nranks = 2;
  const int batch = 8, in_c = 1, h = 6, w = 6, conv_c = 2, hidden = 8, out = 4;
  Tensor images(batch, in_c, h, w);
  fill_random(images.v, 77, 1.0f);
  std::vector<float> targets(static_cast<std::size_t>(batch) * out);
  fill_random(targets, 88, 1.0f);

  std::vector<float> final_w;
  smpi::Cluster cluster(ccfg(nranks, a, faulted));
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    DistributedTrainer trainer(rc, *p, in_c, h, w, conv_c, hidden, out);
    trainer.set_grad_mode(m);
    const int local_b = batch / nranks;
    Tensor shard(local_b, in_c, h, w);
    std::copy(images.v.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(rc.rank()) *
                                     shard.size()),
              images.v.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(rc.rank() + 1) *
                                     shard.size()),
              shard.v.begin());
    for (int s = 0; s < 3; ++s) trainer.train_step(shard, targets, batch, 0.05f);
    if (rc.rank() == 0) final_w = trainer.conv().weight;
    p->barrier();
    trainer.release_persistent();
    p->barrier();
    p->stop();
  });
  return final_w;
}

}  // namespace

class PartitionedCnn : public ::testing::TestWithParam<Approach> {};

TEST_P(PartitionedCnn, RingModesBitIdentical) {
  using GradMode = cnn::DistributedTrainer::GradMode;
  const Approach a = GetParam();
  const std::vector<float> one_shot = cnn_train(a, GradMode::kRingOneShot,
                                                /*faulted=*/false);
  const std::vector<float> persistent = cnn_train(a, GradMode::kRingPersistent,
                                                  /*faulted=*/false);
  ASSERT_EQ(one_shot.size(), persistent.size());
  ASSERT_FALSE(one_shot.empty());
  // Identical float-addition order in both ring modes -> identical bits.
  EXPECT_EQ(std::memcmp(one_shot.data(), persistent.data(),
                        one_shot.size() * sizeof(float)),
            0);
  // And faults must not perturb the arithmetic either.
  const std::vector<float> faulted = cnn_train(a, GradMode::kRingPersistent,
                                               /*faulted=*/true);
  EXPECT_EQ(std::memcmp(one_shot.data(), faulted.data(),
                        one_shot.size() * sizeof(float)),
            0);
}

INSTANTIATE_TEST_SUITE_P(Approaches, PartitionedCnn,
                         ::testing::Values(Approach::kBaseline,
                                           Approach::kOffload));
