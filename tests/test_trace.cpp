// The trace subsystem: span recording, counters, JSON output, and the
// properties the benchmarks rely on — byte-identical output across identical
// runs and virtual-time neutrality of enabling the tracer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"
#include "trace/chrome_writer.hpp"
#include "trace/counters.hpp"
#include "trace/scope.hpp"
#include "trace/tracer.hpp"

using trace::Tracer;

namespace {

/// Every test runs against the process-wide tracer: start from a clean,
/// disabled state and leave it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::set_enabled(false);
    Tracer::instance().clear();
  }
};

// --------------------------------------------------------- mini JSON parser
// Just enough of a recursive-descent JSON reader to validate that what we
// emit is well-formed, without depending on a JSON library.

struct JsonChecker {
  const std::string& s;
  std::size_t i = 0;
  bool ok = true;

  explicit JsonChecker(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  bool peek(char c) {
    ws();
    return i < s.size() && s[i] == c;
  }
  bool string() {
    ws();
    if (i >= s.size() || s[i] != '"') return fail();
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return fail();
        const char e = s[i];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i;
            if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i])))
              return fail();
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail();
        }
      } else if (static_cast<unsigned char>(s[i]) < 0x20) {
        return fail();  // raw control character inside a string
      }
      ++i;
    }
    return eat('"');
  }
  bool number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                            s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                            s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start || fail();
  }
  bool value() {
    ws();
    if (i >= s.size()) return fail();
    if (s[i] == '"') return string();
    if (s[i] == '{') return object(nullptr);
    if (s[i] == '[') return array();
    return number();
  }
  bool array() {
    if (!eat('[')) return false;
    if (peek(']')) return eat(']');
    for (;;) {
      if (!value()) return false;
      if (peek(',')) {
        eat(',');
        continue;
      }
      return eat(']');
    }
  }
  /// Parse an object; when `keys` is non-null, record the top-level keys.
  bool object(std::vector<std::string>* keys) {
    if (!eat('{')) return false;
    if (peek('}')) return eat('}');
    for (;;) {
      ws();
      const std::size_t key_start = i;
      if (!string()) return false;
      if (keys != nullptr) {
        keys->push_back(s.substr(key_start + 1, i - key_start - 2));
      }
      if (!eat(':')) return false;
      if (!value()) return false;
      if (peek(',')) {
        eat(',');
        continue;
      }
      return eat('}');
    }
  }
  bool fail() {
    ok = false;
    return false;
  }
};

/// A 2-rank rendezvous-sized exchange through the offload proxy; touches all
/// four instrumented layers (sim, net, mpi, offload). Returns the final
/// virtual time.
sim::Time run_offload_exchange() {
  smpi::ClusterConfig cc;
  cc.nranks = 2;
  cc.deadline = sim::Time::from_sec(60);
  smpi::Cluster c(cc);
  const std::size_t bytes = 512 << 10;  // rendezvous path
  return c.run([&](smpi::RankCtx& rc) {
    core::OffloadProxy p(rc);
    p.start_engine();
    const int peer = 1 - rc.rank();
    std::vector<char> sbuf(bytes, 'x'), rbuf(bytes);
    for (int i = 0; i < 3; ++i) {
      core::PReq rr = p.irecv(rbuf.data(), bytes, smpi::Datatype::kByte, peer, i);
      core::PReq rs = p.isend(sbuf.data(), bytes, smpi::Datatype::kByte, peer, i);
      p.wait(rr);
      p.wait(rs);
    }
    p.barrier();
    p.stop();
  });
}

}  // namespace

TEST_F(TraceTest, DisabledRecordsNothing) {
  Tracer& tr = Tracer::instance();
  tr.begin(10, 0, 1, "a", "t");
  tr.end(20, 0, 1);
  tr.counter(30, 0, "c", 1.0);
  EXPECT_TRUE(tr.events().empty());
}

TEST_F(TraceTest, SpanNestingAndOrdering) {
  Tracer::set_enabled(true);
  Tracer& tr = Tracer::instance();
  tr.begin(100, 0, 1, "outer", "t");
  tr.begin(150, 0, 1, "inner", "t");
  tr.complete(160, 20, 0, 1, "leaf", "t");
  tr.end(200, 0, 1);
  tr.end(300, 0, 1);

  const auto& ev = tr.events();
  ASSERT_EQ(ev.size(), 5u);
  // Record order is preserved verbatim.
  EXPECT_EQ(ev[0].ph, 'B');
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[1].ph, 'B');
  EXPECT_EQ(ev[1].name, "inner");
  EXPECT_EQ(ev[2].ph, 'X');
  EXPECT_EQ(ev[2].dur_ns, 20);
  EXPECT_EQ(ev[3].ph, 'E');
  EXPECT_EQ(ev[4].ph, 'E');
  // Timestamps are monotone within the track and B/E balance.
  int depth = 0;
  std::int64_t last = -1;
  for (const auto& e : ev) {
    EXPECT_GE(e.ts_ns, last);
    last = e.ts_ns;
    if (e.ph == 'B') ++depth;
    if (e.ph == 'E') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceTest, ScopeUsesAmbientEngineAndBalances) {
  Tracer::set_enabled(true);
  sim::Engine e;
  e.spawn("f", [] {
    {
      trace::Scope s("work", "test");
      sim::advance(sim::Time(500));
    }
    trace::instant("done", "test");
  });
  e.run_until(sim::Time::from_sec(1));

  int b = 0, en = 0, inst = 0;
  for (const auto& ev : Tracer::instance().events()) {
    if (ev.ph == 'B' && ev.name == "work") {
      ++b;
      EXPECT_EQ(ev.ts_ns, 0);
    }
    if (ev.ph == 'E') ++en;
    if (ev.ph == 'i' && ev.name == "done") {
      ++inst;
      EXPECT_EQ(ev.ts_ns, 500);
    }
  }
  EXPECT_EQ(b, 1);
  EXPECT_EQ(en, 1);
  EXPECT_EQ(inst, 1);
}

TEST_F(TraceTest, CounterSeries) {
  trace::Counter cnt(3, "bytes");
  trace::Gauge g(3, "depth");
  // Disabled: values accumulate, nothing recorded.
  cnt.add(5);
  g.set(2);
  EXPECT_DOUBLE_EQ(cnt.value(), 5);
  EXPECT_DOUBLE_EQ(g.value(), 2);
  EXPECT_TRUE(Tracer::instance().events().empty());

  Tracer::set_enabled(true);
  cnt.add();      // 6
  cnt.add(4);     // 10
  g.set(7);
  const auto& ev = Tracer::instance().events();
  ASSERT_EQ(ev.size(), 3u);
  for (const auto& e : ev) {
    EXPECT_EQ(e.ph, 'C');
    EXPECT_EQ(e.pid, 3);
  }
  EXPECT_EQ(ev[0].name, "bytes");
  EXPECT_DOUBLE_EQ(ev[0].value, 6);
  EXPECT_DOUBLE_EQ(ev[1].value, 10);
  EXPECT_EQ(ev[2].name, "depth");
  EXPECT_DOUBLE_EQ(ev[2].value, 7);
}

TEST_F(TraceTest, EventLimitDropsDeterministically) {
  Tracer::set_enabled(true);
  Tracer& tr = Tracer::instance();
  tr.set_limit(4);
  for (int i = 0; i < 10; ++i) tr.instant(i, 0, 0, "e", "t");
  EXPECT_EQ(tr.events().size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
}

TEST_F(TraceTest, JsonEscaping) {
  using trace::ChromeWriter;
  EXPECT_EQ(ChromeWriter::escape("plain"), "plain");
  EXPECT_EQ(ChromeWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(ChromeWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(ChromeWriter::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(ChromeWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST_F(TraceTest, GoldenJsonIsValidAndCarriesRequiredKeys) {
  Tracer::set_enabled(true);
  Tracer& tr = Tracer::instance();
  tr.name_process(0, "rank 0");
  tr.name_thread(0, 1, "main \"thread\"\n");
  tr.begin(0, 0, 1, "span with \\ and \"quotes\"", "cat");
  tr.complete(100, 50, 0, 1, "leaf", "cat");
  tr.instant(120, 0, 0, "tick", "cat");
  tr.counter(150, 0, "gauge", 2.5);
  tr.end(200, 0, 1);

  std::ostringstream os;
  tr.write_json(os);
  const std::string json = os.str();

  // Whole document parses.
  JsonChecker doc(json);
  std::vector<std::string> top;
  ASSERT_TRUE(doc.object(&top)) << json;
  doc.ws();
  EXPECT_EQ(doc.i, json.size());
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0], "traceEvents");

  // Every event object carries the keys Perfetto needs.
  std::size_t events_seen = 0;
  for (std::size_t pos = json.find('{', 1); pos != std::string::npos;
       pos = json.find('{', pos + 1)) {
    JsonChecker ev(json);
    ev.i = pos;
    std::vector<std::string> keys;
    ASSERT_TRUE(ev.object(&keys)) << "at offset " << pos;
    ++events_seen;
    for (const char* required : {"ph", "ts", "pid", "tid"}) {
      EXPECT_NE(std::find(keys.begin(), keys.end(), required), keys.end())
          << "event missing \"" << required << "\" at offset " << pos;
    }
    pos = ev.i - 1;  // skip nested objects (args of M/C events)
  }
  // 2 metadata + 5 recorded events.
  EXPECT_EQ(events_seen, 7u);
}

TEST_F(TraceTest, EnablingTracingIsVirtualTimeNeutral) {
  const sim::Time off = run_offload_exchange();
  EXPECT_TRUE(Tracer::instance().events().empty());

  Tracer::set_enabled(true);
  const sim::Time on = run_offload_exchange();
  EXPECT_FALSE(Tracer::instance().events().empty());

  EXPECT_EQ(off.ns(), on.ns());
}

TEST_F(TraceTest, IdenticalRunsProduceByteIdenticalJson) {
  Tracer::set_enabled(true);
  const sim::Time t1 = run_offload_exchange();
  std::ostringstream os1;
  Tracer::instance().write_json(os1);

  Tracer::instance().clear();
  const sim::Time t2 = run_offload_exchange();
  std::ostringstream os2;
  Tracer::instance().write_json(os2);

  EXPECT_EQ(t1.ns(), t2.ns());
  EXPECT_EQ(os1.str(), os2.str());
  EXPECT_FALSE(os1.str().empty());
}

TEST_F(TraceTest, OffloadExchangeCoversAllFourLayers) {
  Tracer::set_enabled(true);
  run_offload_exchange();

  bool sim_cpu = false, net_wire = false, net_rx = false, mpi_call = false,
       mpi_rndv = false, off_cmd = false, off_publish = false;
  bool ctr_inflight = false, ctr_ring = false;
  for (const auto& e : Tracer::instance().events()) {
    const std::string cat = e.cat;
    if (cat == "sim" && e.name == "cpu") sim_cpu = true;
    if (cat == "net" && e.name.rfind("wire ", 0) == 0) net_wire = true;
    if (cat == "net" && e.name.rfind("rx:", 0) == 0) net_rx = true;
    if (cat == "mpi" && (e.name == "Isend" || e.name == "Irecv")) mpi_call = true;
    if (cat == "mpi" && e.name.rfind("rndv:", 0) == 0) mpi_rndv = true;
    if (cat == "offload" && e.name.rfind("cmd:", 0) == 0) off_cmd = true;
    if (cat == "offload" && e.name == "done:publish") off_publish = true;
    if (e.ph == 'C' && e.name == "inflight") ctr_inflight = true;
    if (e.ph == 'C' && e.name == "ring_occupancy") ctr_ring = true;
  }
  EXPECT_TRUE(sim_cpu);
  EXPECT_TRUE(net_wire);
  EXPECT_TRUE(net_rx);
  EXPECT_TRUE(mpi_call);
  EXPECT_TRUE(mpi_rndv);
  EXPECT_TRUE(off_cmd);
  EXPECT_TRUE(off_publish);
  EXPECT_TRUE(ctr_inflight);
  EXPECT_TRUE(ctr_ring);
}

TEST_F(TraceTest, SpansNestPerTrackAcrossTheFullExchange) {
  Tracer::set_enabled(true);
  run_offload_exchange();

  // B/E discipline: per (pid, tid) the stack never underflows and ends empty.
  std::map<std::pair<int, std::uint64_t>, int> depth;
  for (const auto& e : Tracer::instance().events()) {
    auto k = std::make_pair(e.pid, e.tid);
    if (e.ph == 'B') ++depth[k];
    if (e.ph == 'E') {
      --depth[k];
      ASSERT_GE(depth[k], 0) << "unmatched E on pid=" << e.pid
                             << " tid=" << e.tid;
    }
  }
  for (const auto& [k, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on pid=" << k.first << " tid=" << k.second;
  }
}
