// The serving-tier regression harness (apps/serve): statistical latency
// accounting units, traffic-generator properties against closed forms, the
// MPIOFF_SERVE spec grammar, and the end-to-end determinism matrix — same
// seed => bit-identical response-payload digests and latency histograms
// across repeated runs, payload digests additionally invariant across all
// four proxies, offload engine counts {1,4}, and clean vs faulted wires
// (the reliability layer must deliver every request exactly once).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "apps/serve/latency.hpp"
#include "apps/serve/serve.hpp"
#include "apps/serve/traffic.hpp"
#include "sim/rng.hpp"

using core::Approach;

namespace {

/// Small-but-real workload: 2 edges x 2 shards, enough requests that drops,
/// dups, hedges, and every allreduce round all occur.
serve::ServeConfig small_cfg(Approach a) {
  serve::ServeConfig cfg;
  cfg.approach = a;
  cfg.edges = 2;
  cfg.shards = 2;
  cfg.workers = 2;
  cfg.requests = 150;
  cfg.window = 8;
  cfg.rounds = 3;
  cfg.update = 32;
  cfg.traffic.seed = 42;
  cfg.traffic.mean_interarrival = sim::Time::from_us(2);
  return cfg;
}

serve::ServeConfig faulted(serve::ServeConfig cfg) {
  cfg.faults = true;
  cfg.deadline = sim::Time::from_sec(600);
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Latency histogram + SLO accounting units.

TEST(ServeLatency, HistogramQuantilesAndDigest) {
  serve::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(sim::Time::from_us(i));
  EXPECT_EQ(h.total(), 1000u);
  const double p50 = h.quantile_us(0.5);
  const double p99 = h.quantile_us(0.99);
  const double p999 = h.quantile_us(0.999);
  // Log-bucketed: quantiles are bucket interpolations, not exact order
  // statistics — assert the right bucket neighborhood and monotonicity.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1100.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // Digest is a pure function of the counts; merging is commutative.
  serve::LatencyHistogram a, b;
  a.add(sim::Time::from_us(3));
  b.add(sim::Time::from_ms(40));
  serve::LatencyHistogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.digest(), ba.digest());
  EXPECT_EQ(ab, ba);
  EXPECT_NE(ab.digest(), serve::LatencyHistogram{}.digest());
}

TEST(ServeLatency, HistogramExtremesStayInBounds) {
  serve::LatencyHistogram h;
  h.add(sim::Time::from_ns(0));
  h.add(sim::Time::from_ns(1));
  h.add(sim::Time::from_sec(3600));  // clamps into the last bucket
  EXPECT_EQ(h.total(), 3u);
  EXPECT_GE(h.quantile_us(1.0), h.quantile_us(0.0));
}

TEST(ServeLatency, SloAccountBoundaryAndGoodput) {
  serve::SloAccount s(sim::Time::from_us(150));
  s.add(sim::Time::from_us(150));  // exactly-at-SLO counts as met
  s.add(sim::Time::from_us(151));
  s.add(sim::Time::from_us(10));
  EXPECT_EQ(s.ok(), 2u);
  EXPECT_EQ(s.miss(), 1u);
  EXPECT_DOUBLE_EQ(s.ok_fraction(), 2.0 / 3.0);
  // 2 SLO-met responses over 1ms of virtual time = 2000 req/s.
  EXPECT_DOUBLE_EQ(s.goodput_rps(sim::Time::from_ms(1)), 2'000'000.0 / 1000);
  EXPECT_DOUBLE_EQ(s.goodput_rps(sim::Time{}), 0.0);
  serve::SloAccount t(sim::Time::from_us(150));
  t.add(sim::Time::from_us(1));
  t.merge(s);
  EXPECT_EQ(t.ok(), 3u);
  EXPECT_EQ(t.miss(), 1u);
}

// ---------------------------------------------------------------------------
// Traffic generator properties vs closed forms.

TEST(ServeTraffic, BoundedParetoMatchesClosedFormMeanAndTail) {
  serve::BoundedPareto p{1.3, 64, 16384};
  sim::Rng rng(2026);
  constexpr int kN = 200000;
  double sum = 0;
  int above_1k = 0, above_8k = 0;
  for (int i = 0; i < kN; ++i) {
    const double x = p.sample(rng.next_double());
    ASSERT_GE(x, 64.0);
    ASSERT_LE(x, 16384.0);
    sum += x;
    if (x > 1024.0) ++above_1k;
    if (x > 8192.0) ++above_8k;
  }
  const double emp_mean = sum / kN;
  EXPECT_NEAR(emp_mean / p.mean(), 1.0, 0.03)
      << "empirical " << emp_mean << " vs closed form " << p.mean();
  // Tail mass against the closed-form CDF at two abscissae, within 3-sigma
  // binomial noise of the 200k-draw estimate.
  for (const auto& [x, got] :
       {std::pair<double, int>{1024.0, above_1k}, {8192.0, above_8k}}) {
    const double want = 1.0 - p.cdf(x);
    const double sigma = std::sqrt(want * (1 - want) / kN);
    EXPECT_NEAR(static_cast<double>(got) / kN, want, 3 * sigma + 1e-4)
        << "tail at " << x;
  }
}

TEST(ServeTraffic, ArrivalStreamIsDeterministicBySeedAndEdge) {
  serve::TrafficConfig cfg;
  cfg.seed = 7;
  cfg.phases = 4;
  serve::TrafficGen a(cfg, 0), b(cfg, 0);
  serve::TrafficGen other_edge(cfg, 1);
  serve::TrafficConfig cfg2 = cfg;
  cfg2.seed = 8;
  serve::TrafficGen other_seed(cfg2, 0);
  bool edge_differs = false, seed_differs = false;
  for (int i = 0; i < 500; ++i) {
    const serve::Arrival x = a.next(), y = b.next();
    EXPECT_EQ(x.at.ns(), y.at.ns());
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.client, y.client);
    EXPECT_EQ(x.req_bytes, y.req_bytes);
    EXPECT_EQ(x.resp_bytes, y.resp_bytes);
    EXPECT_EQ(x.hedged, y.hedged);
    const serve::Arrival e = other_edge.next(), s = other_seed.next();
    edge_differs |= e.key != x.key || e.at.ns() != x.at.ns();
    seed_differs |= s.key != x.key || s.at.ns() != x.at.ns();
  }
  EXPECT_TRUE(edge_differs);
  EXPECT_TRUE(seed_differs);
}

TEST(ServeTraffic, OpenLoopArrivalsAdvanceAndBurstsModulate) {
  // Arrival stamps are the INTENDED injection times — a pure, monotone
  // function of the seed, independent of any downstream backpressure.
  serve::TrafficConfig cfg;
  cfg.seed = 3;
  cfg.phases = 4;
  cfg.phase_len = sim::Time::from_us(100);
  cfg.mean_interarrival = sim::Time::from_us(2);
  serve::TrafficGen g(cfg, 0);
  sim::Time prev;
  std::vector<std::int64_t> stamps;
  for (int i = 0; i < 2000; ++i) {
    const serve::Arrival a = g.next();
    EXPECT_GE(a.at.ns(), prev.ns()) << "open-loop clock must not go back";
    prev = a.at;
    stamps.push_back(a.at.ns());
    EXPECT_LT(a.client, cfg.clients);
  }
  // The diurnal multiplier really modulates rate: count arrivals in the
  // busiest vs calmest phase bucket of the first schedule period.
  const std::int64_t period = cfg.phase_len.ns() * cfg.phases;
  std::vector<int> per_phase(static_cast<std::size_t>(cfg.phases), 0);
  for (const std::int64_t t : stamps) {
    if (t >= period) break;
    per_phase[static_cast<std::size_t>(t / cfg.phase_len.ns())] += 1;
  }
  int lo = per_phase[0], hi = per_phase[0];
  for (const int n : per_phase) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_GT(hi, lo) << "burst schedule did not modulate the arrival rate";
}

TEST(ServeTraffic, PhaseMultiplierIsBoundedAndPeriodic) {
  for (int phases : {1, 4, 8}) {
    for (int ph = 0; ph < phases * 2; ++ph) {
      const double m = serve::phase_multiplier(ph, phases);
      EXPECT_GE(m, 0.39);
      EXPECT_LE(m, 1.61);
      EXPECT_NEAR(serve::phase_multiplier(ph + phases, phases), m, 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// MPIOFF_SERVE spec grammar.

TEST(ServeSpec, AppliesEveryKey) {
  serve::ServeConfig base;
  const serve::ServeConfig c = serve::apply_serve_spec(
      base,
      "requests=10,edges=3,shards=4,workers=5,window=6,clients=1000,"
      "rounds=2,update=16,seed=99,hedge=0.5,alpha=1.5,smin=128,smax=256,"
      "ia=3us,phases=2,phase_len=50us,slo=200us,service=4us,service_kb=1us");
  EXPECT_EQ(c.requests, 10u);
  EXPECT_EQ(c.edges, 3);
  EXPECT_EQ(c.shards, 4);
  EXPECT_EQ(c.workers, 5);
  EXPECT_EQ(c.window, 6u);
  EXPECT_EQ(c.traffic.clients, 1000u);
  EXPECT_EQ(c.rounds, 2);
  EXPECT_EQ(c.update, 16u);
  EXPECT_EQ(c.traffic.seed, 99u);
  EXPECT_DOUBLE_EQ(c.traffic.hedge, 0.5);
  EXPECT_DOUBLE_EQ(c.traffic.alpha, 1.5);
  EXPECT_EQ(c.traffic.smin, 128u);
  EXPECT_EQ(c.traffic.smax, 256u);
  EXPECT_EQ(c.traffic.mean_interarrival.ns(), 3000);
  EXPECT_EQ(c.traffic.phases, 2);
  EXPECT_EQ(c.traffic.phase_len.ns(), 50000);
  EXPECT_EQ(c.slo.ns(), 200000);
  EXPECT_EQ(c.service_base.ns(), 4000);
  EXPECT_EQ(c.service_per_kb.ns(), 1000);
}

TEST(ServeSpec, EmptySpecIsIdentity) {
  serve::ServeConfig base;
  base.requests = 77;
  const serve::ServeConfig c = serve::apply_serve_spec(base, "");
  EXPECT_EQ(c.requests, 77u);
}

TEST(ServeSpec, RejectsMalformedSpecs) {
  serve::ServeConfig base;
  EXPECT_THROW(serve::apply_serve_spec(base, "bogus_key=1"),
               std::invalid_argument);
  EXPECT_THROW(serve::apply_serve_spec(base, "requests=not_a_number"),
               std::invalid_argument);
  EXPECT_THROW(serve::apply_serve_spec(base, "hedge=1.5"),
               std::invalid_argument);
  EXPECT_THROW(serve::apply_serve_spec(base, "smin=512,smax=64"),
               std::invalid_argument);
  EXPECT_THROW(serve::apply_serve_spec(base, "slo=12parsecs"),
               std::invalid_argument);
}

TEST(ServeSpec, RunRejectsInvalidTopology) {
  serve::ServeConfig cfg = small_cfg(Approach::kBaseline);
  cfg.edges = 0;
  EXPECT_THROW(serve::run_serve(cfg), std::invalid_argument);
  cfg = small_cfg(Approach::kBaseline);
  cfg.shards = 0;
  EXPECT_THROW(serve::run_serve(cfg), std::invalid_argument);
  cfg = small_cfg(Approach::kBaseline);
  cfg.window = 0;
  EXPECT_THROW(serve::run_serve(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end determinism matrix + faulted soak.

TEST(ServeEndToEnd, RepeatRunsAreBitIdentical) {
  const serve::ServeConfig cfg = small_cfg(Approach::kOffload);
  const serve::ServeResult a = serve::run_serve(cfg);
  const serve::ServeResult b = serve::run_serve(cfg);
  EXPECT_EQ(a.responses, cfg.requests * static_cast<std::size_t>(cfg.edges));
  // Same seed, same config: EVERYTHING reproduces, including the latency
  // distribution and the derived quantiles.
  EXPECT_EQ(a.payload_digest, b.payload_digest);
  EXPECT_EQ(a.update_digest, b.update_digest);
  EXPECT_EQ(a.histogram_digest, b.histogram_digest);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.hedged, b.hedged);
  EXPECT_EQ(a.hedge_wins, b.hedge_wins);
  EXPECT_EQ(a.slo_ok, b.slo_ok);
  EXPECT_EQ(a.slo_miss, b.slo_miss);
  EXPECT_EQ(a.makespan.ns(), b.makespan.ns());
  EXPECT_DOUBLE_EQ(a.p50_us, b.p50_us);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
  EXPECT_DOUBLE_EQ(a.p999_us, b.p999_us);
  EXPECT_DOUBLE_EQ(a.goodput_rps, b.goodput_rps);
}

TEST(ServeEndToEnd, PayloadDigestInvariantAcrossApproaches) {
  // Response payloads are a pure function of the request envelope — who
  // serves them, and how completions are progressed, must not matter.
  const serve::ServeResult base = serve::run_serve(small_cfg(Approach::kBaseline));
  for (Approach a :
       {Approach::kIprobe, Approach::kCommSelf, Approach::kOffload}) {
    const serve::ServeResult r = serve::run_serve(small_cfg(a));
    EXPECT_EQ(r.payload_digest, base.payload_digest)
        << core::approach_name(a);
    EXPECT_EQ(r.update_digest, base.update_digest) << core::approach_name(a);
    EXPECT_EQ(r.responses, base.responses) << core::approach_name(a);
    EXPECT_EQ(r.checksum_fail, 0u) << core::approach_name(a);
  }
}

TEST(ServeEndToEnd, DigestInvariantAcrossEnginesAndFaults) {
  // The acceptance matrix: offload engines {1,4} x {clean, faulted} all
  // produce the same payload and update digests, and every run answers
  // every request exactly once (faulted wires retransmit, never duplicate
  // into the application).
  std::vector<serve::ServeResult> rs;
  for (std::size_t engines : {1u, 4u}) {
    for (bool f : {false, true}) {
      serve::ServeConfig cfg = small_cfg(Approach::kOffload);
      cfg.proxy_count = engines;
      if (f) cfg = faulted(cfg);
      rs.push_back(serve::run_serve(cfg));
      const serve::ServeResult& r = rs.back();
      EXPECT_EQ(r.responses,
                cfg.requests * static_cast<std::size_t>(cfg.edges))
          << "engines=" << engines << " faulted=" << f;
      EXPECT_EQ(r.checksum_fail, 0u);
      EXPECT_EQ(r.hedge_wins + r.primary_wins, r.hedged);
    }
  }
  for (std::size_t i = 1; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].payload_digest, rs[0].payload_digest) << "run " << i;
    EXPECT_EQ(rs[i].update_digest, rs[0].update_digest) << "run " << i;
  }
}

TEST(ServeEndToEnd, FaultedSoakLosesAndDuplicatesNothing) {
  // Heavier fault mix and more traffic than the matrix test: the invariant
  // is exactly-once request/response accounting end to end.
  serve::ServeConfig cfg = faulted(small_cfg(Approach::kOffload));
  cfg.requests = 300;
  cfg.workers = 4;
  cfg.fault_drop = 0.03;
  cfg.fault_dup = 0.02;
  cfg.fault_reorder = 0.1;
  const serve::ServeResult r = serve::run_serve(cfg);
  EXPECT_EQ(r.requests, cfg.requests * static_cast<std::size_t>(cfg.edges));
  EXPECT_EQ(r.responses, r.requests) << "lost or duplicated responses";
  EXPECT_EQ(r.checksum_fail, 0u) << "corrupted payload reached the app";
  EXPECT_EQ(r.hedge_wins + r.primary_wins, r.hedged);
  EXPECT_GT(r.hedged, 0u) << "hedge fraction never triggered";
  // Repeat: the faulted run is as deterministic as the clean one.
  const serve::ServeResult r2 = serve::run_serve(cfg);
  EXPECT_EQ(r2.histogram_digest, r.histogram_digest);
  EXPECT_EQ(r2.payload_digest, r.payload_digest);
}

TEST(ServeEndToEnd, OfferedLoadIsIndependentOfBackpressure) {
  // Open-loop contract at the system level: arrival stamps (and thus the
  // offered rate) are fixed by the generator even when a tiny window makes
  // the edge queue requests long past their intended injection times.
  serve::ServeConfig wide = small_cfg(Approach::kOffload);
  wide.window = 16;
  serve::ServeConfig narrow = wide;
  narrow.window = 1;
  const serve::ServeResult a = serve::run_serve(wide);
  const serve::ServeResult b = serve::run_serve(narrow);
  EXPECT_DOUBLE_EQ(a.offered_rps, b.offered_rps);
  EXPECT_EQ(a.payload_digest, b.payload_digest);
  // Latency, by contrast, legitimately suffers under the narrow window.
  EXPECT_GE(b.p99_us, a.p99_us);
}
