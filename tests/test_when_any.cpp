// cont::when_any — the hedging combinator. Exactly-once winner election
// across all four proxies, loser drain through the settled hook (no leaked
// request slots), inline arming over null/completed handles, member indexing
// across mixed one-shot + persistent groups, and the hedge loop that
// restarts a losing persistent generation (the "cancel-free" interaction
// DESIGN.md §17 documents as the one relaxation vs MPI_Cancel).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"
#include "mpi/continuation.hpp"

using namespace smpi;
using core::Approach;
using core::PReq;
using core::PersistentReq;

namespace {

ClusterConfig cfg_for(Approach a, int n) {
  ClusterConfig c;
  c.nranks = n;
  c.thread_level = core::required_thread_level(a);
  c.deadline = sim::Time::from_sec(60);
  return c;
}

}  // namespace

class AnyMatrix : public ::testing::TestWithParam<Approach> {};

TEST_P(AnyMatrix, WinnerFiresExactlyOnceAndLosersDrain) {
  // Rank 0 races two recvs: rank 1 answers immediately, rank 2 answers
  // 300us later. The early member must win exactly once, the loser must
  // still complete (it is not cancelled), and `settled` must fire exactly
  // once after BOTH — at which point no request slot is leaked.
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 3));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank();
    if (me == 0) {
      std::vector<int> fast(64), slow(64);
      std::array<PReq, 2> rs = {
          p->irecv(fast.data(), fast.size(), Datatype::kInt, 1, 1),
          p->irecv(slow.data(), slow.size(), Datatype::kInt, 2, 2),
      };
      int wins = 0, settles = 0;
      std::size_t winner = 99;
      bool win_before_settled = false;
      cont::Event drained;
      cont::when_any(*p, rs).then(
          [&](std::size_t i, const Status& st) {
            ++wins;
            winner = i;
            EXPECT_EQ(st.bytes, fast.size() * sizeof(int));
            EXPECT_EQ(fast[7], 1007);  // payload visible to the winner hook
          },
          [&](const Status&) {
            win_before_settled = wins == 1;
            ++settles;
            drained.set();
          });
      // One-shot members are consumed at arm time.
      EXPECT_TRUE(rs[0].is_null());
      EXPECT_TRUE(rs[1].is_null());
      drained.wait(*p);
      EXPECT_EQ(wins, 1);
      EXPECT_EQ(winner, 0u) << "early member must win";
      EXPECT_EQ(settles, 1);
      EXPECT_TRUE(win_before_settled);
      EXPECT_EQ(slow[7], 2007) << "loser completed normally";
    } else {
      if (me == 2) compute(sim::Time::from_us(300));
      std::vector<int> sbuf(64);
      for (std::size_t i = 0; i < sbuf.size(); ++i) {
        sbuf[i] = me * 1000 + static_cast<int>(i);
      }
      PReq sr = p->isend(sbuf.data(), sbuf.size(), Datatype::kInt, 0, me);
      p->wait(sr);
    }
    p->barrier();
    p->stop();
    // The settled hook is also the slot-reclamation point: after it, every
    // member (winner and losers) has released its request-pool slot (the
    // comm-self helper's own standing loopback retires at stop()).
    EXPECT_EQ(rc.requests().active_count(), 0u) << "rank " << me;
  });
}

TEST_P(AnyMatrix, NullHandleWinsInlineAtArmTime) {
  // A null handle counts as already complete and races at arm time — the
  // winner hook runs inline, before then() returns. The live loser still
  // completes and is drained by settled.
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<int> rbuf(8), sbuf(8, me);
    std::array<PReq, 2> rs = {
        PReq{},  // null: completes inline at arm
        p->irecv(rbuf.data(), rbuf.size(), Datatype::kInt, peer, 0),
    };
    int wins = 0;
    std::size_t winner = 99;
    cont::Event drained;
    cont::when_any(*p, rs).then(
        [&](std::size_t i, const Status& st) {
          ++wins;
          winner = i;
          EXPECT_EQ(st.bytes, 0u);
        },
        [&](const Status&) { drained.set(); });
    EXPECT_EQ(wins, 1) << "null member must fire inline, within then()";
    EXPECT_EQ(winner, 0u);
    PReq sr = p->isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, 0);
    p->wait(sr);
    drained.wait(*p);
    EXPECT_EQ(wins, 1);
    EXPECT_EQ(rbuf[5], peer);
    p->barrier();
    p->stop();
    EXPECT_EQ(rc.requests().active_count(), 0u);
  });
}

TEST_P(AnyMatrix, HedgeLoopRestartsLosingPersistentGeneration) {
  // The serve-tier hedge loop in miniature: two PERSISTENT recvs raced
  // repeatedly. Persistent members are not consumed; each round the loser
  // completes (no cancel), settled marks the group drained, and both
  // requests restart for the next round.
  const Approach a = GetParam();
  constexpr int kRounds = 3;
  Cluster c(cfg_for(a, 3));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank();
    if (me == 0) {
      std::vector<int> fast(16), slow(16);
      std::array<PersistentReq, 2> gens = {
          p->recv_init(fast.data(), fast.size(), Datatype::kInt, 1, 1),
          p->recv_init(slow.data(), slow.size(), Datatype::kInt, 2, 2),
      };
      int early_wins = 0;
      for (int round = 0; round < kRounds; ++round) {
        p->startall(gens);
        int wins = 0;
        cont::Event drained;
        cont::when_any(*p, {}, gens).then(
            [&](std::size_t i, const Status&) {
              ++wins;
              if (i == 0) ++early_wins;
            },
            [&](const Status&) { drained.set(); });
        // Persistent members are NOT consumed by arming.
        EXPECT_FALSE(gens[0].is_null());
        EXPECT_FALSE(gens[1].is_null());
        drained.wait(*p);
        EXPECT_EQ(wins, 1) << "round " << round;
        EXPECT_EQ(fast[3], 1000 * (round + 1) + 3);
        EXPECT_EQ(slow[3], 2000 * (round + 1) + 3);
        p->barrier();
      }
      EXPECT_EQ(early_wins, kRounds) << "rank 1 answers first every round";
      p->request_free(gens[0]);
      p->request_free(gens[1]);
    } else {
      std::vector<int> sbuf(16);
      for (int round = 0; round < kRounds; ++round) {
        if (me == 2) compute(sim::Time::from_us(250));
        for (std::size_t i = 0; i < sbuf.size(); ++i) {
          sbuf[i] = me * 1000 * (round + 1) + static_cast<int>(i);
        }
        PReq sr = p->isend(sbuf.data(), sbuf.size(), Datatype::kInt, 0, me);
        p->wait(sr);
        p->barrier();
      }
    }
    p->barrier();
    p->stop();
    EXPECT_EQ(rc.requests().active_count(), 0u) << "rank " << me;
  });
}

TEST_P(AnyMatrix, MixedGroupIndexesGensAfterOneShots) {
  // Member indexing contract: one-shots take 0..n-1, persistent generations
  // follow. Here the persistent member (index 1) answers first and must be
  // reported under the gens-after-one-shots index.
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 3));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank();
    if (me == 0) {
      std::vector<int> slow(16), fast(16);
      std::array<PReq, 1> rs = {
          p->irecv(slow.data(), slow.size(), Datatype::kInt, 1, 1)};
      std::array<PersistentReq, 1> gens = {
          p->recv_init(fast.data(), fast.size(), Datatype::kInt, 2, 2)};
      p->start(gens[0]);
      std::size_t winner = 99;
      cont::Event drained;
      cont::when_any(*p, rs, gens).then(
          [&](std::size_t i, const Status&) { winner = i; },
          [&](const Status&) { drained.set(); });
      drained.wait(*p);
      EXPECT_EQ(winner, 1u) << "persistent member indexes after one-shots";
      p->request_free(gens[0]);
    } else {
      if (me == 1) compute(sim::Time::from_us(300));  // one-shot loses
      std::vector<int> sbuf(16, me);
      PReq sr = p->isend(sbuf.data(), sbuf.size(), Datatype::kInt, 0, me);
      p->wait(sr);
    }
    p->barrier();
    p->stop();
    EXPECT_EQ(rc.requests().active_count(), 0u) << "rank " << me;
  });
}

INSTANTIATE_TEST_SUITE_P(Approaches, AnyMatrix,
                         ::testing::Values(Approach::kBaseline,
                                           Approach::kIprobe,
                                           Approach::kCommSelf,
                                           Approach::kOffload),
                         [](const ::testing::TestParamInfo<Approach>& info) {
                           std::string n = core::approach_name(info.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(WhenAny, EmptyGroupThrows) {
  Cluster c(cfg_for(Approach::kBaseline, 1));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(Approach::kBaseline, rc);
    p->start_engine();
    EXPECT_THROW(cont::when_any(*p, {}).then([](std::size_t, const Status&) {}),
                 std::invalid_argument);
    p->stop();
  });
}
