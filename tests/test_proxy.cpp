// Semantic equivalence across the four approaches: identical application
// code must produce identical data under every proxy (only timing differs).
#include <gtest/gtest.h>

#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using namespace core;

namespace {

ClusterConfig cfg_for(Approach a, int n) {
  ClusterConfig c;
  c.nranks = n;
  c.thread_level = required_thread_level(a);
  c.deadline = sim::Time::from_sec(30);
  return c;
}

}  // namespace

class ProxyMatrix : public ::testing::TestWithParam<Approach> {};

TEST_P(ProxyMatrix, HaloExchangePattern) {
  // The Listing-1 pattern: pack, post nonblocking halo exchange, compute,
  // wait, unpack — the core loop of the QCD/stencil application.
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 4));
  c.run([&](RankCtx& rc) {
    auto p = make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), np = 4;
    const int left = (me + np - 1) % np, right = (me + 1) % np;
    const std::size_t n = 4096;
    std::vector<double> send_l(n, me * 10 + 1), send_r(n, me * 10 + 2);
    std::vector<double> recv_l(n), recv_r(n);
    for (int iter = 0; iter < 3; ++iter) {
      PReq reqs[4];
      reqs[0] = p->irecv(recv_l.data(), n, Datatype::kDouble, left, 0);
      reqs[1] = p->irecv(recv_r.data(), n, Datatype::kDouble, right, 1);
      reqs[2] = p->isend(send_r.data(), n, Datatype::kDouble, right, 0);
      reqs[3] = p->isend(send_l.data(), n, Datatype::kDouble, left, 1);
      compute(sim::Time::from_us(30));
      p->progress_hint();
      compute(sim::Time::from_us(30));
      p->waitall(reqs);
      EXPECT_DOUBLE_EQ(recv_l[0], left * 10 + 2);
      EXPECT_DOUBLE_EQ(recv_r[n - 1], right * 10 + 1);
      p->barrier();
    }
    p->stop();
  });
}

TEST_P(ProxyMatrix, CollectiveSuiteProducesIdenticalData) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 4));
  c.run([&](RankCtx& rc) {
    auto p = make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank();
    double v = me + 1.0, s = 0;
    p->allreduce(&v, &s, 1, Datatype::kDouble, Op::kSum);
    EXPECT_DOUBLE_EQ(s, 10.0);
    std::vector<float> blocks(4, static_cast<float>(me)), out(4);
    p->alltoall(blocks.data(), out.data(), 1, Datatype::kFloat);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], static_cast<float>(i));
    int root_val = me == 2 ? 1234 : 0;
    p->bcast(&root_val, 1, Datatype::kInt, 2);
    EXPECT_EQ(root_val, 1234);
    p->stop();
  });
}

TEST_P(ProxyMatrix, RendezvousMessagesThroughProxy) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 2));
  c.run([&](RankCtx& rc) {
    auto p = make_proxy(a, rc);
    p->start_engine();
    const std::size_t big = 1 << 20;
    std::vector<char> sb(big, static_cast<char>('A' + rc.rank())), rb(big);
    const int peer = 1 - rc.rank();
    PReq rr = p->irecv(rb.data(), big, Datatype::kByte, peer, 0);
    PReq rs = p->isend(sb.data(), big, Datatype::kByte, peer, 0);
    compute(sim::Time::from_us(200));
    p->wait(rr);
    p->wait(rs);
    EXPECT_EQ(rb[0], static_cast<char>('A' + peer));
    EXPECT_EQ(rb[big - 1], static_cast<char>('A' + peer));
    p->stop();
  });
}

TEST_P(ProxyMatrix, ComputeThreadAccounting) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 2));
  c.run([&](RankCtx& rc) {
    auto p = make_proxy(a, rc);
    const int cores = 14;
    const int expect = (a == Approach::kOffload || a == Approach::kCommSelf)
                           ? cores - 1
                           : cores;
    EXPECT_EQ(p->compute_threads(cores), expect);
    (void)rc;
  });
}

INSTANTIATE_TEST_SUITE_P(Approaches, ProxyMatrix,
                         ::testing::Values(Approach::kBaseline, Approach::kIprobe,
                                           Approach::kCommSelf, Approach::kOffload),
                         [](const ::testing::TestParamInfo<Approach>& info) {
                           std::string n = approach_name(info.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(ProxyFactory, NamesRoundTrip) {
  for (Approach a : {Approach::kBaseline, Approach::kIprobe, Approach::kCommSelf,
                     Approach::kOffload}) {
    EXPECT_EQ(approach_from_string(approach_name(a)), a);
  }
  // Both spellings of comm-self parse to the same approach.
  EXPECT_EQ(approach_from_string("commself"), Approach::kCommSelf);
  EXPECT_EQ(approach_from_string("comm-self"), Approach::kCommSelf);
  // The rejection names every valid choice, so a CLI typo is self-explaining.
  try {
    approach_from_string("bogus");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    for (const char* name : {"baseline", "iprobe", "comm-self", "offload"}) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << ": " << msg;
    }
  }
}

TEST(ProxyFactory, RequiredThreadLevels) {
  EXPECT_EQ(required_thread_level(Approach::kBaseline), ThreadLevel::kFunneled);
  EXPECT_EQ(required_thread_level(Approach::kIprobe), ThreadLevel::kFunneled);
  EXPECT_EQ(required_thread_level(Approach::kCommSelf), ThreadLevel::kMultiple);
  EXPECT_EQ(required_thread_level(Approach::kOffload), ThreadLevel::kFunneled);
}
