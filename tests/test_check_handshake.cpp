// Model-checking the engine handshake: doorbell (release/acquire) publishes
// a plain argument cell, the command flows through the ring, completion
// flows back through the pool's done-flag protocol.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Options;
using chk::Result;
using chk::specs::check_handshake;

TEST(CheckHandshake, Exhaustive) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_handshake(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "state space not exhausted in " << r.executions;
}

TEST(CheckHandshake, ExhaustiveDeeperPreemptionBound) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  opt.preemption_bound = 3;
  const Result r = check_handshake(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckHandshake, RandomSweep) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 2000;
  opt.seed = 4;
  const Result r = check_handshake(opt);
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
  EXPECT_EQ(r.executions, 2000u);
}

TEST(CheckHandshake, ObservesDoorbellAndDoneSites) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 50;
  const Result r = check_handshake(opt);
  ASSERT_FALSE(r.failed) << r.message;
  auto has = [&](const char* loc, chk::OpKind op, chk::Side side) {
    return std::find(r.sites.begin(), r.sites.end(),
                     chk::Site{loc, op, side}) != r.sites.end();
  };
  // The handshake composes all three protocols, so its site set includes
  // the doorbell edge and the completion publish on top of ring + pool.
  EXPECT_TRUE(has("doorbell", chk::OpKind::kStore, chk::Side::kRelease));
  EXPECT_TRUE(has("doorbell", chk::OpKind::kLoad, chk::Side::kAcquire));
  EXPECT_TRUE(has("pool.done", chk::OpKind::kStore, chk::Side::kRelease));
  EXPECT_TRUE(has("pool.done", chk::OpKind::kLoad, chk::Side::kAcquire));
  EXPECT_TRUE(has("ring.seq", chk::OpKind::kStore, chk::Side::kRelease));
}

}  // namespace
