// FFT correctness: local kernel vs naive DFT, distributed 6-step transform
// vs reference, perf-harness sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/fft/distributed_fft.hpp"
#include "apps/fft/fft.hpp"
#include "mpi/cluster.hpp"
#include "sim/rng.hpp"

using namespace fft;
using core::Approach;

namespace {

std::vector<cd> random_signal(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<cd> v(n);
  for (auto& z : v) z = cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

double max_rel_err(const std::vector<cd>& a, const std::vector<cd>& b) {
  double scale = 0, err = 0;
  for (std::size_t i = 0; i < a.size(); ++i) scale = std::max(scale, std::abs(a[i]));
  for (std::size_t i = 0; i < a.size(); ++i) err = std::max(err, std::abs(a[i] - b[i]));
  return err / (scale > 0 ? scale : 1.0);
}

smpi::ClusterConfig ccfg(int n, Approach a = Approach::kBaseline) {
  smpi::ClusterConfig c;
  c.nranks = n;
  c.thread_level = core::required_thread_level(a);
  c.deadline = sim::Time::from_sec(120);
  return c;
}

}  // namespace

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n);
  auto want = naive_dft(x);
  auto got = x;
  fft_inplace(got.data(), n);
  EXPECT_LT(max_rel_err(want, got), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 512));

TEST(Fft, InverseRoundTrip) {
  const std::size_t n = 256;
  auto x = random_signal(n, 3);
  auto y = x;
  fft_inplace(y.data(), n);
  fft_inplace(y.data(), n, /*inverse=*/true);
  for (auto& z : y) z /= static_cast<double>(n);
  EXPECT_LT(max_rel_err(x, y), 1e-10);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cd> v(12);
  EXPECT_THROW(fft_inplace(v.data(), 12), std::invalid_argument);
}

struct DistCase {
  int ranks;
  std::size_t rows, cols;
  Approach approach;
};

class DistFft : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistFft, MatchesNaiveDft) {
  const DistCase tc = GetParam();
  const std::size_t n = tc.rows * tc.cols;
  auto x = random_signal(n, 42);
  auto want = naive_dft(x);
  std::vector<cd> got(n);

  smpi::Cluster cluster(ccfg(tc.ranks, tc.approach));
  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(tc.approach, rc);
    proxy->start_engine();
    DistributedFft dfft(rc, *proxy, tc.rows, tc.cols);
    const std::size_t loc = dfft.local();
    std::vector<cd> block(x.begin() + static_cast<std::ptrdiff_t>(loc * static_cast<std::size_t>(rc.rank())),
                          x.begin() + static_cast<std::ptrdiff_t>(loc * static_cast<std::size_t>(rc.rank() + 1)));
    dfft.forward(block);
    std::copy(block.begin(), block.end(),
              got.begin() + static_cast<std::ptrdiff_t>(loc * static_cast<std::size_t>(rc.rank())));
    proxy->barrier();
    proxy->stop();
  });
  EXPECT_LT(max_rel_err(want, got), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistFft,
    ::testing::Values(DistCase{1, 8, 8, Approach::kBaseline},
                      DistCase{2, 8, 16, Approach::kBaseline},
                      DistCase{4, 16, 16, Approach::kBaseline},
                      DistCase{4, 32, 16, Approach::kOffload},
                      DistCase{8, 32, 32, Approach::kBaseline},
                      DistCase{4, 16, 16, Approach::kCommSelf}));

TEST(FftFlops, OperationCount) {
  EXPECT_DOUBLE_EQ(fft_flops(1024), 5.0 * 1024 * 10);
}

TEST(FftPerf, OffloadCutsPostTimeAndWins) {
  FftPerfConfig c;
  c.nodes = 4;
  c.points_per_node = 1u << 22;
  c.iters = 2;
  c.warmup = 1;
  c.approach = Approach::kBaseline;
  const FftPerfResult base = run_fft_perf(c);
  c.approach = Approach::kOffload;
  const FftPerfResult off = run_fft_perf(c);
  EXPECT_GT(base.total_ms, 0);
  EXPECT_GT(base.gflops, 0);
  // Paper Table 2: ~90%+ post-time reduction, better total time.
  EXPECT_LT(off.post_ms, base.post_ms * 0.2);
  EXPECT_LT(off.total_ms, base.total_ms);
}
