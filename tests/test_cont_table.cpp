// ContTable unit + stress coverage. The stress tests use real std::thread
// (not sim fibers) so the TSan CI job exercises the claim CAS under genuine
// concurrency — keep test names matching `ContTable` (the TSan job's filter).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/cont_table.hpp"

using core::ContTable;

TEST(ContTable, ArmThenFireHandsCallbackToCompleter) {
  ContTable t(4);
  EXPECT_FALSE(t.arm(0));  // claim won: completer will run it
  EXPECT_TRUE(t.fire(0));  // completion finds the armed claim: run it
  EXPECT_EQ(t.state_of(0), ContTable::kArmed);
}

TEST(ContTable, FireThenArmHandsCallbackToAttacher) {
  ContTable t(4);
  EXPECT_FALSE(t.fire(1));  // completion first: nothing armed yet
  EXPECT_TRUE(t.arm(1));    // late attach runs inline
  EXPECT_EQ(t.state_of(1), ContTable::kFired);
}

TEST(ContTable, ResetRecyclesTheSlot) {
  ContTable t(2);
  EXPECT_FALSE(t.arm(0));
  EXPECT_TRUE(t.fire(0));
  t.reset(0);
  EXPECT_EQ(t.state_of(0), ContTable::kIdle);
  // The recycled slot races fresh.
  EXPECT_FALSE(t.fire(0));
  EXPECT_TRUE(t.arm(0));
}

TEST(ContTable, SlotsAreIndependent) {
  ContTable t(3);
  EXPECT_FALSE(t.arm(0));
  EXPECT_FALSE(t.fire(1));
  EXPECT_EQ(t.state_of(0), ContTable::kArmed);
  EXPECT_EQ(t.state_of(1), ContTable::kFired);
  EXPECT_EQ(t.state_of(2), ContTable::kIdle);
}

TEST(ContTable, StressExactlyOneRunnerPerSlot) {
  // Two real threads race arm() vs fire() over many slots; exactly one side
  // must be told to run the callback for every slot, and the loser must see
  // the winner's pre-claim publication (TSan checks the edge).
  constexpr std::uint32_t kSlots = 4096;
  ContTable t(kSlots);
  std::vector<int> armed_payload(kSlots, 0);
  std::vector<int> fired_payload(kSlots, 0);
  std::atomic<std::uint64_t> runs{0};

  std::thread completer([&] {
    for (std::uint32_t i = 0; i < kSlots; ++i) {
      fired_payload[i] = 1;  // publish before the claim
      if (t.fire(i)) {
        EXPECT_EQ(armed_payload[i], 1);  // attacher's publication visible
        runs.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread attacher([&] {
    for (std::uint32_t i = 0; i < kSlots; ++i) {
      armed_payload[i] = 1;
      if (t.arm(i)) {
        EXPECT_EQ(fired_payload[i], 1);  // completer's publication visible
        runs.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  completer.join();
  attacher.join();

  // Every slot was claimed by one side and run by the other — never zero,
  // never twice.
  EXPECT_EQ(runs.load(), kSlots);
  for (std::uint32_t i = 0; i < kSlots; ++i) {
    EXPECT_NE(t.state_of(i), ContTable::kIdle);
  }
}

TEST(ContTable, StressRecycledSlotsStayExactlyOnce) {
  // Round-based reuse of a tiny table: reset() between rounds must not let a
  // stale claim leak into the next round.
  constexpr std::uint32_t kSlots = 8;
  constexpr int kRounds = 2000;
  ContTable t(kSlots);
  std::atomic<std::uint64_t> runs{0};
  std::atomic<int> round_gate{0};

  auto body = [&](bool completer) {
    for (int r = 0; r < kRounds; ++r) {
      // Spin until both threads entered the round (the single writer of
      // round_gate is the completer after reset below).
      while (round_gate.load(std::memory_order_acquire) < r) {
      }
      for (std::uint32_t i = 0; i < kSlots; ++i) {
        const bool run = completer ? t.fire(i) : t.arm(i);
        if (run) runs.fetch_add(1, std::memory_order_relaxed);
      }
      if (completer) {
        // Both sides done with round r once every slot is claimed twice,
        // i.e. the attacher also finished — wait for its half of the runs.
        while (runs.load(std::memory_order_acquire) <
               static_cast<std::uint64_t>(r + 1) * kSlots) {
        }
        for (std::uint32_t i = 0; i < kSlots; ++i) t.reset(i);
        round_gate.store(r + 1, std::memory_order_release);
      }
    }
  };
  std::thread completer([&] { body(true); });
  std::thread attacher([&] { body(false); });
  completer.join();
  attacher.join();
  EXPECT_EQ(runs.load(), static_cast<std::uint64_t>(kRounds) * kSlots);
}
