// Self-tests for the model checker itself: classic litmus shapes must
// behave per the C++ memory model (races found iff the synchronization is
// missing), and failure reports must replay deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "check/check.hpp"

namespace {

using chk::Mode;
using chk::Options;
using chk::Result;
using chk::Sim;

Options exhaustive() {
  Options o;
  o.mode = Mode::kExhaustive;
  return o;
}

// --- message passing: data published under a flag ---------------------------

Result message_passing(const Options& opt, std::memory_order store_mo,
                       std::memory_order load_mo) {
  return chk::explore(opt, [=](Sim& sim) {
    auto flag = std::make_unique<chk::atomic<int>>(0);
    auto data = std::make_unique<chk::var<int>>();
    sim.threads({
        [&] {
          data->ref_w() = 42;
          flag->store(1, store_mo);
        },
        [&] {
          if (flag->load(load_mo) == 1) {
            chk::check(data->ref_r() == 42, "published value visible");
          }
        },
    });
  });
}

TEST(CheckLitmus, MessagePassingRelaxedIsRacy) {
  const Result r = message_passing(exhaustive(), std::memory_order_relaxed,
                                   std::memory_order_relaxed);
  ASSERT_TRUE(r.failed) << r.str();
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
  EXPECT_FALSE(r.trace.empty());
  EXPECT_FALSE(r.failing_trail.empty());
}

TEST(CheckLitmus, MessagePassingReleaseAcquireIsClean) {
  const Result r = message_passing(exhaustive(), std::memory_order_release,
                                   std::memory_order_acquire);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckLitmus, MessagePassingHalfFencedIsStillRacy) {
  // Release store alone does not help if the load is relaxed, and vice versa.
  EXPECT_TRUE(message_passing(exhaustive(), std::memory_order_release,
                              std::memory_order_relaxed)
                  .failed);
  EXPECT_TRUE(message_passing(exhaustive(), std::memory_order_relaxed,
                              std::memory_order_acquire)
                  .failed);
}

// --- store buffering: the weak-memory signature x86 cannot show --------------

Result store_buffering(const Options& opt, std::memory_order store_mo,
                       std::memory_order load_mo) {
  return chk::explore(opt, [=](Sim& sim) {
    auto x = std::make_unique<chk::atomic<int>>(0);
    auto y = std::make_unique<chk::atomic<int>>(0);
    int r1 = -1;
    int r2 = -1;
    sim.threads({
        [&] {
          x->store(1, store_mo);
          r1 = y->load(load_mo);
        },
        [&] {
          y->store(1, store_mo);
          r2 = x->load(load_mo);
        },
    });
    chk::check(!(r1 == 0 && r2 == 0), "store buffering: both loads zero");
  });
}

TEST(CheckLitmus, StoreBufferingRelaxedAllowsBothZero) {
  // The model must be able to produce the stale outcome TSO hardware hides.
  const Result r =
      store_buffering(exhaustive(), std::memory_order_relaxed,
                      std::memory_order_relaxed);
  ASSERT_TRUE(r.failed) << r.str();
  EXPECT_NE(r.message.find("store buffering"), std::string::npos);
}

TEST(CheckLitmus, StoreBufferingSeqCstForbidsBothZero) {
  const Result r =
      store_buffering(exhaustive(), std::memory_order_seq_cst,
                      std::memory_order_seq_cst);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckLitmus, ReleaseAcquireAllowsBothZero) {
  // Unlike seq_cst, release/acquire still permits the store-buffering
  // outcome; the checker must not over-synchronize.
  EXPECT_TRUE(store_buffering(exhaustive(), std::memory_order_release,
                              std::memory_order_acquire)
                  .failed);
}

// --- progress: spin loops, stale bounds, livelock ---------------------------

TEST(CheckProgress, BoundedStaleReadsLetSpinLoopsFinish) {
  // Reader spins on a relaxed flag: stale reads are bounded, so the newest
  // value must eventually be returned and the execution terminates.
  const Result r = chk::explore(exhaustive(), [](Sim& sim) {
    auto flag = std::make_unique<chk::atomic<int>>(0);
    sim.threads({
        [&] { flag->store(1, std::memory_order_relaxed); },
        [&] {
          while (flag->load(std::memory_order_relaxed) == 0) Sim::yield();
        },
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckProgress, LivelockIsDetected) {
  const Result r = chk::explore(exhaustive(), [](Sim& sim) {
    auto flag = std::make_unique<chk::atomic<int>>(0);
    sim.threads({
        [&] {
          while (flag->load(std::memory_order_acquire) == 0) Sim::yield();
        },
    });
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.message.find("livelock"), std::string::npos) << r.message;
}

TEST(CheckProgress, FailedAssertionAbortsExecution) {
  const Result r = chk::explore(exhaustive(), [](Sim& sim) {
    sim.threads({[] { chk::check(false, "boom"); }});
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.message.find("boom"), std::string::npos);
}

// --- replay -----------------------------------------------------------------

TEST(CheckReplay, ExhaustiveTrailReplaysSameFailure) {
  const Result first = message_passing(
      exhaustive(), std::memory_order_relaxed, std::memory_order_relaxed);
  ASSERT_TRUE(first.failed);
  Options replay = exhaustive();
  replay.replay_trail = first.failing_trail;
  const Result again = message_passing(replay, std::memory_order_relaxed,
                                       std::memory_order_relaxed);
  ASSERT_TRUE(again.failed);
  EXPECT_EQ(again.executions, 1u);
  EXPECT_EQ(again.message, first.message);
  EXPECT_EQ(again.trace, first.trace);
}

TEST(CheckReplay, RandomSeedReplaysSameFailure) {
  Options rnd;
  rnd.mode = Mode::kRandom;
  rnd.iterations = 500;
  rnd.seed = 99;
  const Result first = message_passing(rnd, std::memory_order_relaxed,
                                       std::memory_order_relaxed);
  ASSERT_TRUE(first.failed);
  ASSERT_NE(first.failing_seed, 0u);

  Options replay;
  replay.mode = Mode::kRandom;
  replay.iterations = 1;
  replay.seed = first.failing_seed;
  const Result again = message_passing(replay, std::memory_order_relaxed,
                                       std::memory_order_relaxed);
  ASSERT_TRUE(again.failed);
  EXPECT_EQ(again.executions, 1u);
  EXPECT_EQ(again.message, first.message);
  EXPECT_EQ(again.trace, first.trace);
}

}  // namespace
