// One-sided (RMA) tests: put/get correctness, fence semantics, overlap,
// offload-proxy round trips, error handling.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using core::Approach;

namespace {
ClusterConfig cfg(int n) {
  ClusterConfig c;
  c.nranks = n;
  c.deadline = sim::Time::from_sec(60);
  return c;
}
}  // namespace

class RmaProxies : public ::testing::TestWithParam<Approach> {};

TEST_P(RmaProxies, PutIntoNeighborWindow) {
  const Approach a = GetParam();
  ClusterConfig c = cfg(4);
  c.thread_level = core::required_thread_level(a);
  Cluster cluster(c);
  cluster.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), np = rc.nranks();
    std::vector<int> window(static_cast<std::size_t>(np), -1);
    Win w = p->win_create(window.data(), window.size() * sizeof(int));
    // Everyone writes its rank into slot `me` of every peer's window.
    for (int t = 0; t < np; ++t) {
      const int v = me;
      p->put(&v, sizeof(int), t, static_cast<std::size_t>(me) * sizeof(int), w);
    }
    p->fence(w);
    for (int i = 0; i < np; ++i) {
      EXPECT_EQ(window[static_cast<std::size_t>(i)], i);
    }
    p->win_free(w);
    p->stop();
  });
}

TEST_P(RmaProxies, GetFromNeighborWindow) {
  const Approach a = GetParam();
  ClusterConfig c = cfg(3);
  c.thread_level = core::required_thread_level(a);
  Cluster cluster(c);
  cluster.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), np = rc.nranks();
    std::vector<double> window(8, me * 1.5);
    Win w = p->win_create(window.data(), window.size() * sizeof(double));
    p->fence(w);  // everyone's window initialized
    const int peer = (me + 1) % np;
    std::vector<double> got(8, -1);
    p->get(got.data(), got.size() * sizeof(double), peer, 0, w);
    p->fence(w);
    for (double v : got) EXPECT_DOUBLE_EQ(v, peer * 1.5);
    p->win_free(w);
    p->stop();
  });
}

INSTANTIATE_TEST_SUITE_P(Approaches, RmaProxies,
                         ::testing::Values(Approach::kBaseline,
                                           Approach::kOffload),
                         [](const ::testing::TestParamInfo<Approach>& i) {
                           return std::string(core::approach_name(i.param));
                         });

TEST(Rma, LargePutMovesWithoutTargetCpu) {
  // The target computes throughout; the put lands anyway (true RDMA).
  Cluster cluster(cfg(2));
  cluster.run([&](RankCtx& rc) {
    const std::size_t n = 1 << 20;
    std::vector<char> window(n, 'w');
    Win w = rc.win_create(window.data(), n, kCommWorld);
    if (rc.rank() == 0) {
      std::vector<char> src(n, 'P');
      rc.put(src.data(), n, 1, 0, w);
      rc.win_fence(w);
    } else {
      compute(sim::Time::from_ms(1));  // not in MPI while the put flies
      rc.win_fence(w);
      EXPECT_EQ(window[0], 'P');
      EXPECT_EQ(window[n - 1], 'P');
    }
  });
}

TEST(Rma, FenceWaitsForOutstandingOps) {
  Cluster cluster(cfg(2));
  std::int64_t fence_ns = 0;
  cluster.run([&](RankCtx& rc) {
    const std::size_t n = 6 << 20;  // ~1ms of wire
    std::vector<char> window(rc.rank() == 1 ? n : 0);
    Win w = rc.win_create(window.empty() ? nullptr : window.data(),
                          window.empty() ? n : window.size(), kCommWorld);
    if (rc.rank() == 0) {
      rc.put(nullptr, n, 1, 0, w);  // phantom payload
      const sim::Time t0 = sim::now();
      rc.win_fence(w);
      fence_ns = (sim::now() - t0).ns();
    } else {
      rc.win_fence(w);
    }
  });
  EXPECT_GT(fence_ns, 900000);  // the fence absorbed the wire time
}

TEST(Rma, MultipleWindowsAreIndependent) {
  Cluster cluster(cfg(2));
  cluster.run([&](RankCtx& rc) {
    int wa = -1, wb = -1;
    Win a = rc.win_create(&wa, sizeof(int), kCommWorld);
    Win b = rc.win_create(&wb, sizeof(int), kCommWorld);
    const int peer = 1 - rc.rank();
    const int va = 100 + rc.rank(), vb = 200 + rc.rank();
    rc.put(&va, sizeof(int), peer, 0, a);
    rc.put(&vb, sizeof(int), peer, 0, b);
    rc.win_fence(a);
    rc.win_fence(b);
    EXPECT_EQ(wa, 100 + peer);
    EXPECT_EQ(wb, 200 + peer);
  });
}

TEST(Rma, OutOfRangeAccessThrows) {
  Cluster cluster(cfg(2));
  EXPECT_THROW(cluster.run([&](RankCtx& rc) {
                 int x = 0;
                 Win w = rc.win_create(&x, sizeof(int), kCommWorld);
                 const long big = 1;
                 rc.put(&big, sizeof(long), 1 - rc.rank(), 0, w);  // 8 > 4
                 rc.win_fence(w);
               }),
               std::out_of_range);
}

TEST(Rma, UseAfterFreeThrows) {
  Cluster cluster(cfg(2));
  EXPECT_THROW(cluster.run([&](RankCtx& rc) {
                 int x = 0;
                 Win w = rc.win_create(&x, sizeof(int), kCommWorld);
                 rc.win_free(w);
                 barrier();
                 const int v = 1;
                 rc.put(&v, sizeof(int), 1 - rc.rank(), 0, w);
               }),
               std::invalid_argument);
}

TEST(Rma, OffloadedFenceDoesNotStallOtherCommands) {
  // The Section-3.3 caveat, solved: a fence in the command stream is issued
  // as a nonblocking ifence, so later p2p commands still flow.
  ClusterConfig c = cfg(2);
  Cluster cluster(c);
  cluster.run([&](RankCtx& rc) {
    core::OffloadProxy p(rc);
    p.start_engine();
    const int me = rc.rank(), peer = 1 - me;
    int wslot = -1;
    Win w = p.win_create(&wslot, sizeof(int), kCommWorld);
    const int v = 42 + me;
    p.put(&v, sizeof(int), peer, 0, w);
    // Concurrent p2p while the fence is pending engine-side.
    int got = -1;
    core::PReq rr = p.irecv(&got, 1, Datatype::kInt, peer, 9);
    core::PReq rs = p.isend(&v, 1, Datatype::kInt, peer, 9);
    p.fence(w);
    p.wait(rr);
    p.wait(rs);
    EXPECT_EQ(wslot, 42 + peer);
    EXPECT_EQ(got, 42 + peer);
    p.win_free(w);
    p.stop();
  });
}
