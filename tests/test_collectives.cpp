// Collective correctness against serial references, across rank counts
// (powers of two and not) and payload sizes (eager and rendezvous).
#include <gtest/gtest.h>

#include <complex>
#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

using namespace smpi;

namespace {

ClusterConfig cfg(int n) {
  ClusterConfig c;
  c.nranks = n;
  c.deadline = sim::Time::from_sec(30);
  return c;
}

}  // namespace

class CollRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollRanks, BarrierSynchronizes) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx& rc) {
    // Stagger, then barrier: everyone must leave at >= the latest arrival.
    compute(sim::Time::from_us(static_cast<double>(rc.rank()) * 10.0));
    barrier();
    EXPECT_GE(sim::now().ns(), (size() - 1) * 10000);
  });
}

TEST_P(CollRanks, AllreduceSumMatchesSerial) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx&) {
    const int p = size();
    std::vector<double> in(64), out(64);
    for (int i = 0; i < 64; ++i) in[static_cast<std::size_t>(i)] = rank() * 64 + i;
    allreduce(in.data(), out.data(), 64, Datatype::kDouble, Op::kSum);
    for (int i = 0; i < 64; ++i) {
      double want = 0;
      for (int r = 0; r < p; ++r) want += r * 64 + i;
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], want);
    }
  });
}

TEST_P(CollRanks, AllreduceMaxMin) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx&) {
    const int p = size();
    int v = (rank() * 37) % 11;
    int mx = 0, mn = 0;
    allreduce(&v, &mx, 1, Datatype::kInt, Op::kMax);
    allreduce(&v, &mn, 1, Datatype::kInt, Op::kMin);
    int wmx = 0, wmn = 1 << 30;
    for (int r = 0; r < p; ++r) {
      wmx = std::max(wmx, (r * 37) % 11);
      wmn = std::min(wmn, (r * 37) % 11);
    }
    EXPECT_EQ(mx, wmx);
    EXPECT_EQ(mn, wmn);
  });
}

TEST_P(CollRanks, BcastFromEveryRoot) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx&) {
    for (int root = 0; root < size(); ++root) {
      std::vector<int> v(16, rank() == root ? root * 1000 : -1);
      bcast(v.data(), 16, Datatype::kInt, root);
      for (int x : v) EXPECT_EQ(x, root * 1000);
    }
  });
}

TEST_P(CollRanks, ReduceToEveryRoot) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx&) {
    const int p = size();
    for (int root = 0; root < p; ++root) {
      long v = rank() + 1;
      long out = -1;
      reduce(&v, &out, 1, Datatype::kLong, Op::kSum, root);
      if (rank() == root) {
        EXPECT_EQ(out, static_cast<long>(p) * (p + 1) / 2);
      }
    }
  });
}

TEST_P(CollRanks, AlltoallPermutesBlocks) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx&) {
    const int p = size();
    const int blk = 8;
    std::vector<int> sb(static_cast<std::size_t>(p * blk)), rb(static_cast<std::size_t>(p * blk));
    for (int d = 0; d < p; ++d) {
      for (int i = 0; i < blk; ++i) {
        sb[static_cast<std::size_t>(d * blk + i)] = rank() * 10000 + d * 100 + i;
      }
    }
    alltoall(sb.data(), rb.data(), blk, Datatype::kInt);
    for (int s = 0; s < p; ++s) {
      for (int i = 0; i < blk; ++i) {
        EXPECT_EQ(rb[static_cast<std::size_t>(s * blk + i)], s * 10000 + rank() * 100 + i);
      }
    }
  });
}

TEST_P(CollRanks, AllgatherCollectsInRankOrder) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx&) {
    const int p = size();
    std::array<int, 2> mine{rank(), rank() * rank()};
    std::vector<int> all(static_cast<std::size_t>(2 * p));
    allgather(mine.data(), all.data(), 2, Datatype::kInt);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * r);
    }
  });
}

TEST_P(CollRanks, GatherScatterRoundTrip) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx&) {
    const int p = size();
    const int root = p - 1;
    int v = rank() * 3 + 1;
    std::vector<int> g(static_cast<std::size_t>(p), -1);
    gather(&v, g.data(), 1, Datatype::kInt, root);
    if (rank() == root) {
      for (int r = 0; r < p; ++r) EXPECT_EQ(g[static_cast<std::size_t>(r)], r * 3 + 1);
      for (auto& x : g) x *= 2;
    }
    int back = -1;
    scatter(g.data(), &back, 1, Datatype::kInt, root);
    EXPECT_EQ(back, (rank() * 3 + 1) * 2);
  });
}

TEST_P(CollRanks, ReduceScatterBlock) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx&) {
    const int p = size();
    std::vector<int> in(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) in[static_cast<std::size_t>(i)] = rank() + i;
    int out = -1;
    reduce_scatter_block(in.data(), &out, 1, Datatype::kInt, Op::kSum);
    int want = 0;
    for (int r = 0; r < p; ++r) want += r + rank();
    EXPECT_EQ(out, want);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollRanks,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16));

// ---- large payloads (rendezvous path inside collectives) ----

TEST(CollectivesLarge, AllreduceMegabyteVector) {
  Cluster c(cfg(4));
  c.run([&](RankCtx&) {
    const std::size_t n = (1 << 20) / sizeof(double) * 2;  // 2 MB
    std::vector<double> in(n, static_cast<double>(rank() + 1)), out(n);
    allreduce(in.data(), out.data(), n, Datatype::kDouble, Op::kSum);
    EXPECT_DOUBLE_EQ(out[0], 10.0);
    EXPECT_DOUBLE_EQ(out[n - 1], 10.0);
  });
}

TEST(CollectivesLarge, AlltoallRendezvousBlocks) {
  Cluster c(cfg(4));
  c.run([&](RankCtx&) {
    const std::size_t blk = 512 * 1024;  // > eager threshold -> pairwise path
    std::vector<char> sb(blk * 4), rb(blk * 4);
    for (int d = 0; d < 4; ++d) {
      std::fill_n(sb.begin() + static_cast<std::ptrdiff_t>(blk * static_cast<std::size_t>(d)),
                  blk, static_cast<char>('A' + rank() * 4 + d));
    }
    alltoall(sb.data(), rb.data(), blk, Datatype::kByte);
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(rb[blk * static_cast<std::size_t>(s)], static_cast<char>('A' + s * 4 + rank()));
    }
  });
}

// ---- nonblocking collectives ----

TEST(Icollectives, IallreduceOverlapsAndCompletes) {
  Cluster c(cfg(4));
  c.run([&](RankCtx&) {
    double v = rank() + 1.0, out = 0;
    Request r = iallreduce(&v, &out, 1, Datatype::kDouble, Op::kSum);
    compute(sim::Time::from_us(5));
    wait(r);
    EXPECT_DOUBLE_EQ(out, 10.0);
  });
}

TEST(Icollectives, ConcurrentDistinctCollectives) {
  Cluster c(cfg(4));
  c.run([&](RankCtx&) {
    double a = rank() + 1.0, as = 0;
    int b = rank(), bs = -1;
    std::vector<int> gat(4);
    Request r1 = iallreduce(&a, &as, 1, Datatype::kDouble, Op::kSum);
    Request r2 = iallreduce(&b, &bs, 1, Datatype::kInt, Op::kMax);
    Request r3 = iallgather(&b, gat.data(), 1, Datatype::kInt);
    std::vector<Request> rs{r1, r2, r3};
    waitall(rs);
    EXPECT_DOUBLE_EQ(as, 10.0);
    EXPECT_EQ(bs, 3);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(gat[static_cast<std::size_t>(i)], i);
  });
}

TEST(Icollectives, IbarrierCompletesOnlyAfterAllJoin) {
  Cluster c(cfg(3));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      Request r = ibarrier(kCommWorld);
      // Rank 2 joins at 100us; the barrier must not complete before that.
      EXPECT_FALSE(test(r));
      wait(r);
      EXPECT_GE(sim::now().ns(), 100000);
    } else if (rc.rank() == 1) {
      barrier();
    } else {
      compute(sim::Time::from_us(100));
      barrier();
    }
  });
}

TEST(Icollectives, CollectivesOnDuplicatedCommunicator) {
  Cluster c(cfg(4));
  c.run([&](RankCtx& rc) {
    Comm dup = comm_dup(kCommWorld);
    // Traffic on dup must not interfere with world traffic posted first.
    int w = rank(), wsum = 0, d = rank() * 2, dsum = 0;
    Request r1 = rc.iallreduce(&w, &wsum, 1, Datatype::kInt, Op::kSum, kCommWorld);
    Request r2 = rc.iallreduce(&d, &dsum, 1, Datatype::kInt, Op::kSum, dup);
    wait(r2);
    wait(r1);
    EXPECT_EQ(wsum, 6);
    EXPECT_EQ(dsum, 12);
  });
}

TEST(Comm, SplitHalvesAndCollectivesWithin) {
  Cluster c(cfg(8));
  c.run([&](RankCtx& rc) {
    const int color = rank() / 4;
    Comm half = comm_split(kCommWorld, color, rank());
    EXPECT_EQ(rc.comms().get(half).size(), 4);
    int v = rank(), s = 0;
    rc.allreduce(&v, &s, 1, Datatype::kInt, Op::kSum, half);
    EXPECT_EQ(s, color == 0 ? 0 + 1 + 2 + 3 : 4 + 5 + 6 + 7);
  });
}
