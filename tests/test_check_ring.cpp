// Model-checking the production MpscRing (instantiated with ModelAtomics):
// exhaustive small bounds and a fixed-seed random sweep. The mutation suite
// (test_check_mutations.cpp) proves these specs have teeth.
#include <gtest/gtest.h>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Options;
using chk::Result;
using chk::specs::check_ring;
using chk::specs::RingCfg;

TEST(CheckRing, ExhaustiveTwoProducersOneItem) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_ring(opt, RingCfg{2, 1, 2});
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "state space not exhausted in " << r.executions;
}

TEST(CheckRing, ExhaustiveFifoSingleProducerWrapAround) {
  // 1 producer, 3 items through a capacity-2 ring: exercises the full edge
  // and cell reuse (lap 2) exhaustively.
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_ring(opt, RingCfg{1, 3, 2});
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckRing, RandomSweepDefaultCfg) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 2000;
  opt.seed = 1;
  const Result r = check_ring(opt);  // 2 producers x 2 items, capacity 2
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
  EXPECT_EQ(r.executions, 2000u);
}

TEST(CheckRing, RandomSweepThreeProducers) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 1000;
  opt.seed = 2;
  const Result r = check_ring(opt, RingCfg{3, 2, 4});
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
}

TEST(CheckRing, SitesObservedMatchTheDocumentedInventory) {
  // The ring's documented memory-order inventory: acquire/release only on
  // ring.seq (tail/head are relaxed and must NOT show up as sync sites).
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 50;
  const Result r = check_ring(opt);
  ASSERT_FALSE(r.failed) << r.message;
  ASSERT_EQ(r.sites.size(), 2u);
  EXPECT_EQ(r.sites[0], (chk::Site{"ring.seq", chk::OpKind::kLoad,
                                   chk::Side::kAcquire}));
  EXPECT_EQ(r.sites[1], (chk::Site{"ring.seq", chk::OpKind::kStore,
                                   chk::Side::kRelease}));
}

}  // namespace
