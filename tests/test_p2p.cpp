// SimMPI point-to-point semantics: protocols, wildcards, ordering, progress.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

using namespace smpi;
using sim::Time;

namespace {

ClusterConfig cfg(int n, ThreadLevel lvl = ThreadLevel::kFunneled) {
  ClusterConfig c;
  c.nranks = n;
  c.thread_level = lvl;
  c.deadline = Time::from_sec(10);
  return c;
}

std::vector<std::uint8_t> pattern(std::size_t n, int seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>((i * 131 + static_cast<std::size_t>(seed) * 7) & 0xff);
  }
  return v;
}

}  // namespace

// ---- protocol sweep across the eager/rendezvous boundary (property test) ----

class P2PSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(P2PSizeSweep, PingPongDeliversExactBytes) {
  const std::size_t sz = GetParam();
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    auto want_peer = pattern(sz, 1 - rc.rank());
    auto mine = pattern(sz, rc.rank());
    std::vector<std::uint8_t> got(sz, 0xEE);
    if (rc.rank() == 0) {
      send(mine.data(), sz, Datatype::kByte, 1, 3);
      Status st;
      recv(got.data(), sz, Datatype::kByte, 1, 4, kCommWorld, &st);
      EXPECT_EQ(st.bytes, sz);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 4);
    } else {
      recv(got.data(), sz, Datatype::kByte, 0, 3);
      send(mine.data(), sz, Datatype::kByte, 0, 4);
    }
    EXPECT_EQ(got, want_peer);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, P2PSizeSweep,
                         ::testing::Values(0, 1, 7, 64, 1024, 65536,
                                           131072,           // == eager threshold
                                           131073,           // first rndv byte
                                           262144, 1 << 20, 4 << 20));

TEST(P2P, EagerSendCompletesLocallyBeforeReceiverPosts) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      int v = 42;
      Request r = isend(&v, 1, Datatype::kInt, 1, 0);
      // Eager: complete without any receiver action.
      EXPECT_TRUE(test(r));
    } else {
      compute(Time::from_us(50));  // post late
      int got = 0;
      recv(&got, 1, Datatype::kInt, 0, 0);
      EXPECT_EQ(got, 42);
    }
  });
}

TEST(P2P, RendezvousSendBlocksUntilReceiverPosts) {
  Cluster c(cfg(2));
  const std::size_t big = 1 << 20;
  std::int64_t send_done_ns = 0;
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      std::vector<char> buf(big, 'a');
      send(buf.data(), big, Datatype::kByte, 1, 0);
      send_done_ns = sim::now().ns();
    } else {
      compute(Time::from_us(500));  // receiver is late
      std::vector<char> buf(big);
      recv(buf.data(), big, Datatype::kByte, 0, 0);
      EXPECT_EQ(buf[0], 'a');
    }
  });
  // The sender cannot finish before the receiver posted at t=500us.
  EXPECT_GT(send_done_ns, 500000);
}

TEST(P2P, UnexpectedEagerIsBufferedAndMatchedInOrder) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        send(&i, 1, Datatype::kInt, 1, 7);  // same tag: order must hold
      }
    } else {
      compute(Time::from_us(100));
      for (int i = 0; i < 5; ++i) {
        int got = -1;
        recv(&got, 1, Datatype::kInt, 0, 7);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(P2P, AnySourceAnyTagReceives) {
  Cluster c(cfg(3));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      int got = 0;
      Status st;
      for (int i = 0; i < 2; ++i) {
        recv(&got, 1, Datatype::kInt, kAnySource, kAnyTag, kCommWorld, &st);
        EXPECT_EQ(got, st.source * 100 + st.tag);
      }
    } else {
      const int v = rc.rank() * 100 + rc.rank() + 10;
      send(&v, 1, Datatype::kInt, 0, rc.rank() + 10);
    }
  });
}

TEST(P2P, TagSelectivityAcrossInterleavedMessages) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      int a = 1, b = 2;
      send(&a, 1, Datatype::kInt, 1, 100);
      send(&b, 1, Datatype::kInt, 1, 200);
    } else {
      int got200 = 0, got100 = 0;
      // Receive in reverse tag order; matching must pick by tag, not arrival.
      recv(&got200, 1, Datatype::kInt, 0, 200);
      recv(&got100, 1, Datatype::kInt, 0, 100);
      EXPECT_EQ(got200, 2);
      EXPECT_EQ(got100, 1);
    }
  });
}

TEST(P2P, SelfSendAnySize) {
  for (std::size_t sz : {16ul, 1ul << 20}) {
    Cluster c(cfg(1));
    c.run([&](RankCtx&) {
      auto data = pattern(sz, 9);
      std::vector<std::uint8_t> got(sz);
      Request r = irecv(got.data(), sz, Datatype::kByte, 0, 5);
      send(data.data(), sz, Datatype::kByte, 0, 5);
      wait(r);
      EXPECT_EQ(got, data);
    });
  }
}

TEST(P2P, ProcNullOps) {
  Cluster c(cfg(1));
  c.run([&](RankCtx&) {
    int v = 0;
    Request s = isend(&v, 1, Datatype::kInt, kProcNull, 0);
    Request r = irecv(&v, 1, Datatype::kInt, kProcNull, 0);
    EXPECT_TRUE(test(s));
    Status st;
    wait(r, &st);
    EXPECT_EQ(st.source, kProcNull);
    EXPECT_EQ(st.bytes, 0u);
  });
}

TEST(P2P, WaitallAndWaitany) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      std::vector<int> vals(4);
      std::vector<Request> rs;
      for (int i = 0; i < 4; ++i) {
        rs.push_back(irecv(&vals[static_cast<std::size_t>(i)], 1, Datatype::kInt, 1, i));
      }
      int idx = waitany(rs);
      EXPECT_GE(idx, 0);
      waitall(rs);
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(vals[static_cast<std::size_t>(i)], i * 11);
        EXPECT_TRUE(rs[static_cast<std::size_t>(i)].is_null());
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        const int v = i * 11;
        send(&v, 1, Datatype::kInt, 0, i);
      }
    }
  });
}

TEST(P2P, TestanyFindsCompletions) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      int v = 0;
      std::vector<Request> rs{irecv(&v, 1, Datatype::kInt, 1, 0)};
      int idx = -1;
      // Poll until completion (testany also drives progress).
      while (!testany(rs, &idx)) compute(Time::from_us(1));
      EXPECT_EQ(idx, 0);
      EXPECT_EQ(v, 77);
      // All-null vector: returns true with idx = -1.
      EXPECT_TRUE(testany(rs, &idx));
      EXPECT_EQ(idx, -1);
    } else {
      compute(Time::from_us(20));
      const int v = 77;
      send(&v, 1, Datatype::kInt, 0, 0);
    }
  });
}

TEST(P2P, IprobeSeesUnexpectedWithoutConsuming) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      const double v = 2.5;
      send(&v, 1, Datatype::kDouble, 1, 33);
    } else {
      Status st;
      while (!iprobe(0, 33, kCommWorld, &st)) compute(Time::from_us(1));
      EXPECT_EQ(st.bytes, sizeof(double));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 33);
      double got = 0;
      recv(&got, 1, Datatype::kDouble, 0, 33);
      EXPECT_EQ(got, 2.5);
      EXPECT_FALSE(iprobe(0, 33));
    }
  });
}

TEST(P2P, ProbeBlocksUntilMessage) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      compute(Time::from_us(40));
      const int v = 5;
      send(&v, 1, Datatype::kInt, 1, 1);
    } else {
      Status st;
      rc.probe(0, 1, kCommWorld, &st);
      EXPECT_GE(sim::now().ns(), 40000);
      EXPECT_EQ(st.bytes, sizeof(int));
      int got;
      recv(&got, 1, Datatype::kInt, 0, 1);
    }
  });
}

TEST(P2P, TruncationIsAnError) {
  Cluster c(cfg(2));
  EXPECT_THROW(
      c.run([&](RankCtx& rc) {
        if (rc.rank() == 0) {
          std::vector<char> v(100, 'x');
          send(v.data(), 100, Datatype::kByte, 1, 0);
        } else {
          char small[10];
          recv(small, 10, Datatype::kByte, 0, 0);
        }
      }),
      std::runtime_error);
}

TEST(P2P, StatsTrackProtocols) {
  Cluster c(cfg(2));
  std::uint64_t eager = 0, rndv = 0;
  c.run([&](RankCtx& rc) {
    std::vector<char> buf(1 << 20, 'q');
    if (rc.rank() == 0) {
      send(buf.data(), 100, Datatype::kByte, 1, 0);
      send(buf.data(), buf.size(), Datatype::kByte, 1, 0);
      eager = rc.stats().eager_sends;
      rndv = rc.stats().rndv_sends;
    } else {
      std::vector<char> in(1 << 20);
      recv(in.data(), 100, Datatype::kByte, 0, 0);
      recv(in.data(), in.size(), Datatype::kByte, 0, 0);
    }
  });
  EXPECT_EQ(eager, 1u);
  EXPECT_EQ(rndv, 1u);
}

// The defining asynchrony defect (paper Sec. 2): a rendezvous transfer makes
// no progress during compute because nobody is inside MPI; the data moves
// only at MPI_Wait. Verified by timing: wait time covers the whole transfer.
TEST(P2P, NoProgressOutsideMpiForRendezvous) {
  const std::size_t big = 6 << 20;  // 1ms of wire time at 6 B/ns
  Cluster c(cfg(2));
  std::int64_t wait_ns = 0;
  c.run([&](RankCtx& rc) {
    std::vector<char> sbuf(big, 's'), rbuf(big);
    const int peer = 1 - rc.rank();
    Request rr = irecv(rbuf.data(), big, Datatype::kByte, peer, 0);
    Request sr = isend(sbuf.data(), big, Datatype::kByte, peer, 0);
    compute(Time::from_ms(5));  // plenty of time to overlap — but nobody polls
    const Time t0 = sim::now();
    wait(rr);
    wait(sr);
    if (rc.rank() == 0) wait_ns = (sim::now() - t0).ns();
  });
  // Transfer ~1ms happened inside wait, not during compute.
  EXPECT_GT(wait_ns, 800000);
}
