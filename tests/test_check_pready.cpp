// Model-checking the partition-ready word (core/part_ready.hpp): publisher
// fibers write their slice of the user buffer and then mark(p) with a
// release fetch_or; the engine consumer polls with an acquire load and
// reads every newly-ready slice. The word is the only ordering between
// compute fibers and the engine for partitioned sends, so both sides of
// the release/acquire pair must be load-bearing under every interleaving.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Mutation;
using chk::Options;
using chk::Result;
using chk::specs::check_pready;
using chk::specs::PreadyCfg;

TEST(CheckPready, Exhaustive) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_pready(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "state space not exhausted in " << r.executions;
}

TEST(CheckPready, ExhaustiveDeeperPreemptionBound) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  opt.preemption_bound = 3;
  const Result r = check_pready(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckPready, RandomSweepThreePublishers) {
  // Three publishers + consumer: out-of-order marks, partial fresh masks.
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 2000;
  opt.seed = 17;
  PreadyCfg cfg;
  cfg.publishers = 3;
  const Result r = check_pready(opt, cfg);
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
  EXPECT_EQ(r.executions, 2000u);
}

TEST(CheckPready, ObservesBothSidesOfTheWord) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 50;
  const Result r = check_pready(opt);
  ASSERT_FALSE(r.failed) << r.message;
  auto has = [&](const char* loc, chk::OpKind op, chk::Side side) {
    return std::find(r.sites.begin(), r.sites.end(),
                     chk::Site{loc, op, side}) != r.sites.end();
  };
  EXPECT_TRUE(has("pready.word", chk::OpKind::kRmw, chk::Side::kRelease));
  EXPECT_TRUE(has("pready.word", chk::OpKind::kLoad, chk::Side::kAcquire));
}

TEST(CheckPready, WeakenedWordFencesAreCaught) {
  // The mutation suite runs these rows too (test_check_mutations); asserting
  // them here keeps the partitioned-send story self-contained: drop either
  // side and the engine ships an unpublished slice.
  for (const auto& [op, side] :
       {std::pair{chk::OpKind::kRmw, chk::Side::kRelease},
        std::pair{chk::OpKind::kLoad, chk::Side::kAcquire}}) {
    Options opt;
    opt.mode = Mode::kExhaustive;
    opt.mutation = Mutation::of({"pready.word", op, side});
    const Result r = check_pready(opt);
    ASSERT_TRUE(r.failed) << "mutant survived: " << opt.mutation.str();
    EXPECT_FALSE(r.trace.empty());
  }
}

}  // namespace
