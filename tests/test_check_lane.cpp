// Model-checking the production SpscLane (instantiated with ModelAtomics):
// exhaustive small bounds and a fixed-seed random sweep. The mutation suite
// (test_check_mutations.cpp) proves these specs have teeth.
#include <gtest/gtest.h>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Options;
using chk::Result;
using chk::specs::check_lane;
using chk::specs::LaneCfg;

TEST(CheckLane, ExhaustiveTwoItemsNoWrap) {
  // 2 items through a capacity-2 lane: tail publish + empty edge only.
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_lane(opt, LaneCfg{2, 2});
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "state space not exhausted in " << r.executions;
}

TEST(CheckLane, ExhaustiveDefaultCfgWrapAround) {
  // 4 items through capacity 2: every cell is reused, so the head
  // release/acquire pair (cell return) is on the critical path, and the
  // second half goes through the try_push_n batch publish.
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_lane(opt);  // LaneCfg{4, 2}
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckLane, RandomSweepDeeperStream) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 2000;
  opt.seed = 7;
  const Result r = check_lane(opt, LaneCfg{8, 4});
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
  EXPECT_EQ(r.executions, 2000u);
}

TEST(CheckLane, SitesObservedMatchTheDocumentedInventory) {
  // The lane's documented memory-order inventory: acquire/release on the
  // cross-thread index refreshes and publishes only — the same-side index
  // loads are relaxed and must NOT show up as sync sites.
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 50;
  const Result r = check_lane(opt);
  ASSERT_FALSE(r.failed) << r.message;
  ASSERT_EQ(r.sites.size(), 4u);
  EXPECT_EQ(r.sites[0], (chk::Site{"lane.head", chk::OpKind::kLoad,
                                   chk::Side::kAcquire}));
  EXPECT_EQ(r.sites[1], (chk::Site{"lane.head", chk::OpKind::kStore,
                                   chk::Side::kRelease}));
  EXPECT_EQ(r.sites[2], (chk::Site{"lane.tail", chk::OpKind::kLoad,
                                   chk::Side::kAcquire}));
  EXPECT_EQ(r.sites[3], (chk::Site{"lane.tail", chk::OpKind::kStore,
                                   chk::Side::kRelease}));
}

}  // namespace
