// Model-checking the production RequestPoolT free list (Treiber stack with
// ABA tags) under ModelAtomics: slot exclusivity, no lost slots, clean
// alloc/free handoff.
#include <gtest/gtest.h>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Options;
using chk::Result;
using chk::specs::check_pool;
using chk::specs::PoolCfg;

TEST(CheckPool, ExhaustiveSingleSlotContention) {
  // Two threads fight over one slot: every alloc/free handoff is cross-
  // thread, which is the hardest case for the head CAS protocol.
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_pool(opt, PoolCfg{2, 1, 1});
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "state space not exhausted in " << r.executions;
}

TEST(CheckPool, ExhaustiveDefaultCfg) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_pool(opt);  // 2 threads x 2 rounds, capacity 2
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckPool, RandomSweepThreeThreads) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 1500;
  opt.seed = 3;
  const Result r = check_pool(opt, PoolCfg{3, 2, 2});
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
  EXPECT_EQ(r.executions, 1500u);
}

TEST(CheckPool, SitesObservedMatchTheDocumentedInventory) {
  // The pool's minimized memory-order inventory (request_pool.hpp header
  // comment): acquire on the alloc path's head load + CAS, release on the
  // free CAS. done/status sync shows up only in the handshake spec.
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 50;
  const Result r = check_pool(opt);
  ASSERT_FALSE(r.failed) << r.message;
  ASSERT_EQ(r.sites.size(), 3u);
  EXPECT_EQ(r.sites[0], (chk::Site{"pool.head", chk::OpKind::kLoad,
                                   chk::Side::kAcquire}));
  EXPECT_EQ(r.sites[1], (chk::Site{"pool.head", chk::OpKind::kRmw,
                                   chk::Side::kAcquire}));
  EXPECT_EQ(r.sites[2], (chk::Site{"pool.head", chk::OpKind::kRmw,
                                   chk::Side::kRelease}));
}

}  // namespace
