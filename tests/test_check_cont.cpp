// Model-checking the continuation claim race: ContTable's arm()/fire() CAS
// pair must run the callback exactly once, with both sides' publications
// (callback record, completion payload) visible to whichever side runs it,
// under every interleaving of a weak-memory model.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Mutation;
using chk::Options;
using chk::Result;
using chk::specs::check_cont;

TEST(CheckCont, Exhaustive) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_cont(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "state space not exhausted in " << r.executions;
}

TEST(CheckCont, ExhaustiveDeeperPreemptionBound) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  opt.preemption_bound = 3;
  const Result r = check_cont(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckCont, RandomSweep) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 2000;
  opt.seed = 9;
  const Result r = check_cont(opt);
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
  EXPECT_EQ(r.executions, 2000u);
}

TEST(CheckCont, ObservesTheClaimCasSites) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 50;
  const Result r = check_cont(opt);
  ASSERT_FALSE(r.failed) << r.message;
  auto has = [&](const char* loc, chk::OpKind op, chk::Side side) {
    return std::find(r.sites.begin(), r.sites.end(),
                     chk::Site{loc, op, side}) != r.sites.end();
  };
  // Both halves of the claim CAS are the whole protocol: the winner's
  // release publishes its record, the loser's failure-acquire reads it.
  EXPECT_TRUE(has("cont.state", chk::OpKind::kRmw, chk::Side::kRelease));
  EXPECT_TRUE(has("cont.state", chk::OpKind::kRmw, chk::Side::kAcquire));
}

TEST(CheckCont, WeakenedClaimFencesAreCaught) {
  // The mutation suite runs these rows too (test_check_mutations); asserting
  // them here keeps the continuation story self-contained: drop either side
  // of the CAS ordering and the callback reads an unpublished cell.
  for (const chk::Side side : {chk::Side::kAcquire, chk::Side::kRelease}) {
    Options opt;
    opt.mode = Mode::kExhaustive;
    opt.mutation = Mutation::of({"cont.state", chk::OpKind::kRmw, side});
    const Result r = check_cont(opt);
    ASSERT_TRUE(r.failed) << "mutant survived: " << opt.mutation.str();
    EXPECT_FALSE(r.trace.empty());
  }
}

}  // namespace
