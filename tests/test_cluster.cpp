// Cluster runner semantics: determinism, deadlock/deadline diagnostics,
// exception propagation, fiber-context binding.
#include <gtest/gtest.h>

#include "mpi/cluster.hpp"

using namespace smpi;

TEST(Cluster, DeterministicAcrossRuns) {
  auto run_once = [] {
    ClusterConfig cfg;
    cfg.nranks = 4;
    Cluster c(cfg);
    c.run([](RankCtx& rc) {
      double v = rc.rank() + 1.0, s = 0;
      for (int i = 0; i < 5; ++i) {
        allreduce(&v, &s, 1, Datatype::kDouble, Op::kSum);
        compute(sim::Time::from_us(static_cast<double>(rc.rank() * 3 + 1)));
        barrier();
      }
    });
    return std::pair(c.engine().now().ns(), c.engine().stats().events_fired);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Cluster, DeadlockIsDetectedAndNamed) {
  ClusterConfig cfg;
  cfg.nranks = 2;
  Cluster c(cfg);
  try {
    c.run([](RankCtx& rc) {
      if (rc.rank() == 0) {
        int v;
        recv(&v, 1, Datatype::kInt, 1, 0);  // never sent
      }
    });
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rank0.main"), std::string::npos);
  }
}

TEST(Cluster, DeadlineExceededReported) {
  ClusterConfig cfg;
  cfg.nranks = 1;
  cfg.deadline = sim::Time::from_us(10);
  Cluster c(cfg);
  try {
    c.run([](RankCtx&) {
      for (int i = 0; i < 100; ++i) compute(sim::Time::from_us(1));
    });
    FAIL() << "expected deadline error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(Cluster, ApplicationExceptionPropagates) {
  ClusterConfig cfg;
  cfg.nranks = 2;
  Cluster c(cfg);
  EXPECT_THROW(c.run([](RankCtx& rc) {
                 if (rc.rank() == 1) throw std::invalid_argument("app bug");
                 barrier();
               }),
               std::invalid_argument);
}

TEST(Cluster, SpawnOnBindsRankContext) {
  ClusterConfig cfg;
  cfg.nranks = 3;
  Cluster c(cfg);
  c.run([](RankCtx& rc) {
    if (rc.rank() != 2) return;
    int seen = -1;
    bool done = false;
    rc.cluster().spawn_on(2, "helper", [&] {
      seen = rank();  // resolves through the fiber's bound context
      done = true;
    });
    while (!done) compute(sim::Time::from_us(1));
    EXPECT_EQ(seen, 2);
  });
}

TEST(Cluster, HereOutsideFiberThrows) {
  EXPECT_THROW(Cluster::here(), std::logic_error);
}

TEST(Cluster, SingleRankWorldIsUsable) {
  ClusterConfig cfg;
  cfg.nranks = 1;
  Cluster c(cfg);
  c.run([](RankCtx&) {
    EXPECT_EQ(rank(), 0);
    EXPECT_EQ(size(), 1);
    barrier();
    int v = 7, s = 0;
    allreduce(&v, &s, 1, Datatype::kInt, Op::kSum);
    EXPECT_EQ(s, 7);
  });
}

TEST(Cluster, TimeInMpiAccounted) {
  ClusterConfig cfg;
  cfg.nranks = 2;
  Cluster c(cfg);
  c.run([](RankCtx& rc) {
    const std::size_t big = 1 << 20;
    std::vector<char> b(big);
    if (rc.rank() == 0) {
      send(b.data(), big, Datatype::kByte, 1, 0);
    } else {
      recv(b.data(), big, Datatype::kByte, 0, 0);
    }
    EXPECT_GT(rc.stats().time_in_mpi.ns(), 0);
    EXPECT_GT(rc.stats().calls, 0u);
    EXPECT_GT(rc.stats().progress_passes, 0u);
  });
}
