// QCD application correctness: lattice decomposition, distributed Dslash vs
// single-rank reference, solver convergence, operator properties.
#include <gtest/gtest.h>

#include <memory>

#include "apps/qcd/dslash.hpp"
#include "apps/qcd/dslash_perf.hpp"
#include "apps/qcd/solver.hpp"
#include "mpi/cluster.hpp"

using namespace qcd;
using core::Approach;

namespace {

smpi::ClusterConfig cfg(int n, core::Approach a = Approach::kBaseline) {
  smpi::ClusterConfig c;
  c.nranks = n;
  c.thread_level = core::required_thread_level(a);
  c.deadline = sim::Time::from_sec(60);
  return c;
}

/// Scatter globally-seeded fields into a rank's local blocks so every rank
/// sees the same global configuration the reference sees.
void load_local(const Decomposition& dec, const SpinorField& gpsi,
                const GaugeField& gu, SpinorField& lpsi, GaugeField& lu) {
  const Dims& ld = dec.local();
  Dims c;
  for (c[kT] = 0; c[kT] < ld[kT]; ++c[kT])
    for (c[kZ] = 0; c[kZ] < ld[kZ]; ++c[kZ])
      for (c[kY] = 0; c[kY] < ld[kY]; ++c[kY])
        for (c[kX] = 0; c[kX] < ld[kX]; ++c[kX]) {
          const int li = site_index(c, ld);
          const int gi = site_index(dec.to_global(c), gpsi.dims);
          for (int i = 0; i < kSpinorFloats; ++i) {
            lpsi.site(li)[i] = gpsi.site(gi)[i];
          }
          for (int mu = 0; mu < 4; ++mu) {
            for (int i = 0; i < kLinkEntries; ++i) {
              lu.link(li, mu)[i] = gu.link(gi, mu)[i];
            }
          }
        }
}

}  // namespace

TEST(Lattice, ChooseGridCoversRanksAndDivides) {
  const Dims global{32, 32, 32, 256};
  for (int n : {1, 2, 4, 8, 16, 64, 512}) {
    const Dims g = choose_grid(n, global);
    EXPECT_EQ(static_cast<std::int64_t>(g[0]) * g[1] * g[2] * g[3], n);
    for (int mu = 0; mu < 4; ++mu) {
      EXPECT_EQ(global[static_cast<std::size_t>(mu)] % g[static_cast<std::size_t>(mu)], 0);
    }
  }
  // Paper order: T is split first.
  const Dims g2 = choose_grid(2, global);
  EXPECT_EQ(g2[kT], 2);
  // Non-power-of-two counts decompose too (Edison runs use 1152 nodes).
  const Dims g3 = choose_grid(1152, Dims{48, 48, 48, 512});
  EXPECT_EQ(static_cast<std::int64_t>(g3[0]) * g3[1] * g3[2] * g3[3], 1152);
}

TEST(Lattice, NeighborRanksAreMutual) {
  const Dims global{8, 8, 8, 16};
  const Dims grid = choose_grid(8, global);
  for (int r = 0; r < 8; ++r) {
    Decomposition dec(global, grid, r);
    for (int mu = 0; mu < 4; ++mu) {
      const int up = dec.neighbor_rank(mu, +1);
      Decomposition up_dec(global, grid, up);
      EXPECT_EQ(up_dec.neighbor_rank(mu, -1), r);
    }
  }
}

TEST(Lattice, FaceAndBoundaryCounts) {
  Decomposition dec({8, 8, 8, 8}, {1, 1, 2, 2}, 0);
  EXPECT_EQ(dec.local_volume(), 8 * 8 * 4 * 4);
  EXPECT_EQ(dec.face_sites(kZ), 8 * 8 * 4);
  EXPECT_EQ(dec.face_sites(kT), 8 * 8 * 4);
  // boundary: local (8,8,4,4), interior (8,8,2,2) -> 1024 - 256.
  EXPECT_EQ(dec.boundary_sites(), 1024 - 256);
}

class DslashGrids : public ::testing::TestWithParam<int> {};

TEST_P(DslashGrids, DistributedMatchesReference) {
  const int nranks = GetParam();
  const Dims global{4, 4, 4, 8};
  const Dims grid = choose_grid(nranks, global);

  SpinorField gpsi(global);
  GaugeField gu(global);
  fill_random_spinor(gpsi, 11);
  fill_random_gauge(gu, 22);
  SpinorField want(global);
  dslash_reference(gu, gpsi, want);

  SpinorField got(global);  // shared across rank fibers (same address space)
  smpi::Cluster cluster(cfg(nranks));
  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(Approach::kBaseline, rc);
    proxy->start_engine();
    Decomposition dec(global, grid, rc.rank());
    DistributedDslash d(dec, *proxy);
    load_local(dec, gpsi, gu, d.psi(), d.gauge());
    SpinorField out(dec.local());
    d.apply(out);
    // Write my block into the shared global result.
    const Dims& ld = dec.local();
    Dims c;
    for (c[kT] = 0; c[kT] < ld[kT]; ++c[kT])
      for (c[kZ] = 0; c[kZ] < ld[kZ]; ++c[kZ])
        for (c[kY] = 0; c[kY] < ld[kY]; ++c[kY])
          for (c[kX] = 0; c[kX] < ld[kX]; ++c[kX]) {
            const int li = site_index(c, ld);
            const int gi = site_index(dec.to_global(c), global);
            for (int i = 0; i < kSpinorFloats; ++i) {
              got.site(gi)[i] = out.site(li)[i];
            }
          }
    proxy->barrier();
    proxy->stop();
  });

  double max_err = 0;
  for (std::size_t i = 0; i < want.v.size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::abs(want.v[i] - got.v[i])));
  }
  EXPECT_LT(max_err, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Ranks, DslashGrids, ::testing::Values(1, 2, 4, 8));

TEST(Dslash, DistributedMatchesReferenceUnderOffload) {
  const Dims global{4, 4, 4, 8};
  const Dims grid = choose_grid(4, global);
  SpinorField gpsi(global);
  GaugeField gu(global);
  fill_random_spinor(gpsi, 5);
  fill_random_gauge(gu, 6);
  SpinorField want(global);
  dslash_reference(gu, gpsi, want);
  double max_err = 0;
  smpi::Cluster cluster(cfg(4, Approach::kOffload));
  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(Approach::kOffload, rc);
    proxy->start_engine();
    Decomposition dec(global, grid, rc.rank());
    DistributedDslash d(dec, *proxy);
    load_local(dec, gpsi, gu, d.psi(), d.gauge());
    SpinorField out(dec.local());
    d.apply(out);
    const Dims& ld = dec.local();
    Dims c;
    for (c[kT] = 0; c[kT] < ld[kT]; ++c[kT])
      for (c[kZ] = 0; c[kZ] < ld[kZ]; ++c[kZ])
        for (c[kY] = 0; c[kY] < ld[kY]; ++c[kY])
          for (c[kX] = 0; c[kX] < ld[kX]; ++c[kX]) {
            const int li = site_index(c, ld);
            const int gi = site_index(dec.to_global(c), global);
            for (int i = 0; i < kSpinorFloats; ++i) {
              max_err = std::max(max_err,
                                 static_cast<double>(std::abs(
                                     want.site(gi)[i] - out.site(li)[i])));
            }
          }
    proxy->barrier();
    proxy->stop();
  });
  EXPECT_LT(max_err, 1e-4);
}

TEST(Dslash, OperatorIsHermitian) {
  // <a, D b> == <D a, b> for the simplified hopping operator.
  const Dims d{4, 4, 4, 4};
  SpinorField a(d), b(d), da(d), db(d);
  GaugeField u(d);
  fill_random_spinor(a, 1);
  fill_random_spinor(b, 2);
  fill_random_gauge(u, 3);
  dslash_reference(u, a, da);
  dslash_reference(u, b, db);
  const auto lhs = spinor_dot(a, db);
  const auto rhs = spinor_dot(da, b);
  EXPECT_NEAR(lhs.real(), rhs.real(), 1e-2);
  EXPECT_NEAR(lhs.imag(), rhs.imag(), 1e-2);
}

class SolverTest : public ::testing::TestWithParam<core::Approach> {};

TEST_P(SolverTest, CgConvergesAndSolvesSystem) {
  const Approach a = GetParam();
  const Dims global{4, 4, 4, 8};
  const Dims grid = choose_grid(4, global);
  smpi::Cluster cluster(cfg(4, a));
  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(a, rc);
    proxy->start_engine();
    Decomposition dec(global, grid, rc.rank());
    DistributedDslash d(dec, *proxy);
    fill_random_gauge(d.gauge(), 7);
    WilsonOp op(d, 0.08f);
    SpinorField b(dec.local()), x(dec.local());
    fill_random_spinor(b, 100 + static_cast<std::uint64_t>(rc.rank()));
    SolveResult res = cg_solve(op, *proxy, b, x, 1e-6, 300);
    EXPECT_TRUE(res.converged);
    // Verify the residual independently.
    SpinorField mx(dec.local());
    op.apply(x, mx);
    spinor_axpy(cf(-1), b, mx);
    const double rel = std::sqrt(global_norm2(*proxy, mx) / global_norm2(*proxy, b));
    EXPECT_LT(rel, 1e-4);
    proxy->stop();
  });
}

INSTANTIATE_TEST_SUITE_P(Approaches, SolverTest,
                         ::testing::Values(Approach::kBaseline, Approach::kOffload));

TEST(Solver, BicgstabConverges) {
  const Dims global{4, 4, 4, 4};
  const Dims grid = choose_grid(2, global);
  smpi::Cluster cluster(cfg(2));
  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(Approach::kBaseline, rc);
    proxy->start_engine();
    Decomposition dec(global, grid, rc.rank());
    DistributedDslash d(dec, *proxy);
    fill_random_gauge(d.gauge(), 9);
    WilsonOp op(d, 0.08f);
    SpinorField b(dec.local()), x(dec.local());
    fill_random_spinor(b, 55);
    SolveResult res = bicgstab_solve(op, *proxy, b, x, 1e-6, 300);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.residual, 1e-5);
    proxy->stop();
  });
}

TEST(QcdPerf, HarnessRunsAndOffloadHidesWait) {
  QcdPerfConfig c;
  c.global = {16, 16, 16, 32};
  c.nodes = 4;
  c.iters = 5;
  c.warmup = 1;
  c.approach = Approach::kBaseline;
  const QcdPerfResult base = run_qcd_perf(c);
  c.approach = Approach::kOffload;
  const QcdPerfResult off = run_qcd_perf(c);
  EXPECT_GT(base.total_us, 0);
  EXPECT_GT(base.tflops, 0);
  // The offload approach must slash post time (paper: >99% reduction) and
  // not lose overall performance.
  EXPECT_LT(off.post_us, base.post_us * 0.2);
  EXPECT_LE(off.total_us, base.total_us * 1.1);
}
