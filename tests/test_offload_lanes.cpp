// Sharded submission front-end: per-thread SPSC lanes, command batching,
// shutdown draining, ProxyOptions parsing, and the waitany/testall additions
// to the Proxy API.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/proxy.hpp"
#include "core/proxy_options.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using namespace core;

namespace {

ClusterConfig cfg(int n) {
  ClusterConfig c;
  c.nranks = n;
  c.thread_level = ThreadLevel::kFunneled;
  c.deadline = sim::Time::from_sec(30);
  return c;
}

}  // namespace

TEST(OffloadLanes, MultiLaneSubmitIsFairAcrossThreads) {
  // Four submitter fibers on rank 0, one lane each. Every message must land
  // (no starved lane), every lane must be bound and fully drained, and the
  // submissions must go through the lane path, not the shared-ring fallback.
  constexpr int kThreads = 4, kPer = 32;
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, ProxyOptions{.lane_count = kThreads,
                                    .lane_capacity = 8,
                                    .lane_drain_bound = 2});
    p.start_engine();
    if (rc.rank() == 0) {
      auto done = std::make_shared<int>(0);
      auto submit = [&p, done](int tid) {
        std::vector<int> vals(kPer);
        std::vector<PReq> reqs(kPer);
        for (int i = 0; i < kPer; ++i) {
          vals[static_cast<std::size_t>(i)] = tid * kPer + i;
          reqs[static_cast<std::size_t>(i)] =
              p.isend(&vals[static_cast<std::size_t>(i)], 1, Datatype::kInt, 1,
                      tid * 100 + i);
        }
        p.waitall(reqs);
        ++*done;
      };
      for (int t = 1; t < kThreads; ++t) {
        rc.cluster().spawn_on(0, "sub" + std::to_string(t),
                              [submit, t]() { submit(t); });
      }
      submit(0);
      while (*done < kThreads) sim::advance(sim::Time::from_us(1));
    } else {
      std::vector<PReq> reqs;
      std::vector<int> got(kThreads * kPer, -1);
      for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPer; ++i) {
          reqs.push_back(p.irecv(&got[static_cast<std::size_t>(t * kPer + i)],
                                 1, Datatype::kInt, 0, t * 100 + i));
        }
      }
      p.waitall(reqs);
      for (int k = 0; k < kThreads * kPer; ++k) {
        EXPECT_EQ(got[static_cast<std::size_t>(k)], k);
      }
    }
    p.barrier();
    if (rc.rank() == 0) {
      const OffloadStats& s = p.channel().stats();
      EXPECT_GE(s.lane_submits, static_cast<std::uint64_t>(kThreads * kPer));
      EXPECT_EQ(s.shared_submits, 0u);
      int bound = 0;
      for (std::size_t i = 0; i < p.channel().lane_count(); ++i) {
        const LaneStats& ls = p.channel().lane_stats(i);
        if (ls.submits == 0) continue;
        ++bound;
        EXPECT_GE(ls.submits, static_cast<std::uint64_t>(kPer));
        EXPECT_EQ(ls.drained, ls.submits) << "lane " << i << " starved";
      }
      EXPECT_EQ(bound, kThreads);
    }
    p.stop();
  });
}

TEST(OffloadLanes, SubmitBatchKeepsFifoOrderWithinLane) {
  // 16 same-tag sends posted through one post_batch call must match the
  // peer's receives in posting order — FIFO within a lane is the ordering
  // contract batching must not break.
  constexpr int kN = 16;
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, ProxyOptions{.lane_count = 2, .batch_flush = 8});
    p.start_engine();
    if (rc.rank() == 0) {
      std::vector<int> vals(kN);
      std::vector<BatchOp> ops;
      for (int i = 0; i < kN; ++i) {
        vals[static_cast<std::size_t>(i)] = i;
        ops.push_back(BatchOp::isend(&vals[static_cast<std::size_t>(i)], 1,
                                     Datatype::kInt, 1, 7));
      }
      std::vector<PReq> reqs(kN);
      p.post_batch(ops, reqs);
      p.waitall(reqs);
      const OffloadStats& s = p.channel().stats();
      EXPECT_GE(s.batches, 1u);
      EXPECT_EQ(s.batched_commands, static_cast<std::uint64_t>(kN));
      bool found = false;
      for (std::size_t i = 0; i < p.channel().lane_count(); ++i) {
        const LaneStats& ls = p.channel().lane_stats(i);
        if (ls.batches == 0) continue;
        found = true;
        EXPECT_EQ(ls.batched_commands, static_cast<std::uint64_t>(kN));
      }
      EXPECT_TRUE(found) << "no lane saw the batch";
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        p.recv(&v, 1, Datatype::kInt, 0, 7);
        EXPECT_EQ(v, i) << "batch broke FIFO order at message " << i;
      }
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadLanes, ShutdownDrainsNonEmptyLanes) {
  // stop() immediately after a batch post: the engine must drain the lanes
  // and finish every in-flight send before exiting — nothing may be dropped
  // on the floor.
  constexpr int kN = 16;
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, ProxyOptions{.lane_count = 2});
    p.start_engine();
    if (rc.rank() == 0) {
      std::vector<int> vals(kN);
      std::vector<BatchOp> ops;
      for (int i = 0; i < kN; ++i) {
        vals[static_cast<std::size_t>(i)] = 1000 + i;
        ops.push_back(BatchOp::isend(&vals[static_cast<std::size_t>(i)], 1,
                                     Datatype::kInt, 1, i));
      }
      std::vector<PReq> reqs(kN);
      p.post_batch(ops, reqs);
      p.stop();  // no waitall: shutdown races the lane drain
      const OffloadStats& s = p.channel().stats();
      EXPECT_EQ(s.commands, static_cast<std::uint64_t>(kN));
      EXPECT_EQ(s.completions, s.commands);
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        p.recv(&v, 1, Datatype::kInt, 0, i);
        EXPECT_EQ(v, 1000 + i);
      }
      p.stop();
    }
  });
}

TEST(OffloadLanes, OverflowThreadsFallBackToSharedRing) {
  // More submitters than lanes: the extras must still make progress through
  // the shared MPSC ring fallback.
  constexpr int kThreads = 3, kPer = 8;
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, ProxyOptions{.lane_count = 1});
    p.start_engine();
    if (rc.rank() == 0) {
      auto done = std::make_shared<int>(0);
      auto submit = [&p, done](int tid) {
        std::vector<int> vals(kPer);
        std::vector<PReq> reqs(kPer);
        for (int i = 0; i < kPer; ++i) {
          vals[static_cast<std::size_t>(i)] = tid * kPer + i;
          reqs[static_cast<std::size_t>(i)] =
              p.isend(&vals[static_cast<std::size_t>(i)], 1, Datatype::kInt, 1,
                      tid * 100 + i);
        }
        p.waitall(reqs);
        ++*done;
      };
      for (int t = 1; t < kThreads; ++t) {
        rc.cluster().spawn_on(0, "sub" + std::to_string(t),
                              [submit, t]() { submit(t); });
      }
      submit(0);
      while (*done < kThreads) sim::advance(sim::Time::from_us(1));
      const OffloadStats& s = p.channel().stats();
      EXPECT_GT(s.lane_submits, 0u);
      // Lane-table overflow is its own counter now: shared_submits stays
      // reserved for the lanes-disabled configuration, so a capacity-planning
      // dashboard can tell "ran out of lanes" from "chose no lanes".
      EXPECT_GT(s.overflow_submits, 0u);
      EXPECT_EQ(s.shared_submits, 0u);
    } else {
      std::vector<PReq> reqs;
      std::vector<int> got(kThreads * kPer, -1);
      for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPer; ++i) {
          reqs.push_back(p.irecv(&got[static_cast<std::size_t>(t * kPer + i)],
                                 1, Datatype::kInt, 0, t * 100 + i));
        }
      }
      p.waitall(reqs);
      for (int k = 0; k < kThreads * kPer; ++k) {
        EXPECT_EQ(got[static_cast<std::size_t>(k)], k);
      }
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadLanes, WaitanyRetiresInCompletionOrder) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start_engine();
    if (rc.rank() == 0) {
      int slow = -1, fast = -1;
      PReq reqs[2] = {p.irecv(&slow, 1, Datatype::kInt, 1, 0),
                      p.irecv(&fast, 1, Datatype::kInt, 1, 1)};
      // Peer sends tag 1 immediately and tag 0 only after a long compute, so
      // index 1 must retire first.
      const int first = p.waitany(reqs);
      EXPECT_EQ(first, 1);
      EXPECT_EQ(fast, 11);
      EXPECT_TRUE(reqs[1].is_null());
      const int second = p.waitany(reqs);
      EXPECT_EQ(second, 0);
      EXPECT_EQ(slow, 10);
      // All handles consumed: waitany on an all-null span returns -1.
      EXPECT_EQ(p.waitany(reqs), -1);
    } else {
      const int vf = 11;
      p.send(&vf, 1, Datatype::kInt, 0, 1);
      compute(sim::Time::from_ms(1));
      const int vs = 10;
      p.send(&vs, 1, Datatype::kInt, 0, 0);
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadLanes, TestallReleasesAllOrNothing) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc);
    p.start_engine();
    if (rc.rank() == 0) {
      int a = -1, b = -1;
      PReq reqs[2] = {p.irecv(&a, 1, Datatype::kInt, 1, 0),
                      p.irecv(&b, 1, Datatype::kInt, 1, 1)};
      // Nothing sent yet: testall must fail and release neither handle.
      EXPECT_FALSE(p.testall(reqs));
      EXPECT_FALSE(reqs[0].is_null());
      EXPECT_FALSE(reqs[1].is_null());
      p.barrier();  // peer sends both after the barrier
      while (!p.testall(reqs)) sim::advance(sim::Time::from_us(1));
      EXPECT_TRUE(reqs[0].is_null());
      EXPECT_TRUE(reqs[1].is_null());
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
      // All-null span is vacuously complete.
      EXPECT_TRUE(p.testall(reqs));
    } else {
      p.barrier();
      const int va = 1, vb = 2;
      p.send(&va, 1, Datatype::kInt, 0, 0);
      p.send(&vb, 1, Datatype::kInt, 0, 1);
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadLanes, DirectProxyWaitanyAndTestall) {
  // The same API surface must work on the non-offload proxies (DirectProxy
  // wraps real requests; null handling and -1 semantics must match).
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    auto p = make_proxy(Approach::kBaseline, rc);
    p->start_engine();
    if (rc.rank() == 0) {
      int a = -1, b = -1;
      PReq reqs[2] = {p->irecv(&a, 1, Datatype::kInt, 1, 0),
                      p->irecv(&b, 1, Datatype::kInt, 1, 1)};
      int got = 0;
      while (p->waitany(reqs) >= 0) ++got;
      EXPECT_EQ(got, 2);
      EXPECT_EQ(a, 5);
      EXPECT_EQ(b, 6);
      EXPECT_EQ(p->waitany(reqs), -1);
      EXPECT_TRUE(p->testall(reqs));  // all-null span
    } else {
      const int va = 5, vb = 6;
      p->send(&va, 1, Datatype::kInt, 0, 0);
      p->send(&vb, 1, Datatype::kInt, 0, 1);
    }
    p->barrier();
    p->stop();
  });
}

TEST(ProxyOptions, ParseOverridesEveryKey) {
  const ProxyOptions o = ProxyOptions::parse(
      "ring=2048,pool=128,lanes=4,lane_cap=32,drain=3,batch=4,watchdog=250us,"
      "cont_run=5,proxies=2,steal=4");
  EXPECT_EQ(o.ring_capacity, 2048u);
  EXPECT_EQ(o.pool_capacity, 128u);
  EXPECT_EQ(o.lane_count, 4u);
  EXPECT_EQ(o.lane_capacity, 32u);
  EXPECT_EQ(o.lane_drain_bound, 3u);
  EXPECT_EQ(o.batch_flush, 4u);
  EXPECT_EQ(o.watchdog_budget.ns(), 250'000);
  EXPECT_EQ(o.cont_run_bound, 5u);
  EXPECT_EQ(o.proxy_count, 2u);
  EXPECT_EQ(o.steal_bound, 4u);
}

TEST(ProxyOptions, ParseAcceptsColonSeparator) {
  // proxies:4 reads naturally next to the MPIOFF_SAN-style specs; both
  // separators must work, mixed freely within one spec.
  const ProxyOptions o = ProxyOptions::parse("proxies:4,steal:0,lanes=2");
  EXPECT_EQ(o.proxy_count, 4u);
  EXPECT_EQ(o.steal_bound, 0u);  // steal=0 is valid: disables stealing
  EXPECT_EQ(o.lane_count, 2u);
}

TEST(ProxyOptions, ParseRejectsZeroProxies) {
  EXPECT_THROW(ProxyOptions::parse("proxies=0"), std::invalid_argument);
  EXPECT_THROW(ProxyOptions::parse("proxies:0"), std::invalid_argument);
}

TEST(ProxyOptions, ParseAcceptsDurationSuffixes) {
  EXPECT_EQ(ProxyOptions::parse("watchdog=500").watchdog_budget.ns(), 500);
  EXPECT_EQ(ProxyOptions::parse("watchdog=500ns").watchdog_budget.ns(), 500);
  EXPECT_EQ(ProxyOptions::parse("watchdog=2ms").watchdog_budget.ns(),
            2'000'000);
  EXPECT_EQ(ProxyOptions::parse("watchdog=1s").watchdog_budget.ns(),
            1'000'000'000);
}

TEST(ProxyOptions, ParseRejectsUnknownKeyNamingValidOnes) {
  try {
    ProxyOptions::parse("rings=64");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rings"), std::string::npos);
    EXPECT_NE(msg.find("lane_cap"), std::string::npos) << msg;
  }
}

TEST(ProxyOptions, ParseRejectsBadValues) {
  EXPECT_THROW(ProxyOptions::parse("ring=abc"), std::invalid_argument);
  EXPECT_THROW(ProxyOptions::parse("watchdog=2fortnights"),
               std::invalid_argument);
  EXPECT_THROW(ProxyOptions::parse("ring"), std::invalid_argument);
  EXPECT_THROW(ProxyOptions::parse("ring="), std::invalid_argument);
  EXPECT_THROW(ProxyOptions::parse("drain=0"), std::invalid_argument);
  EXPECT_THROW(ProxyOptions::parse("batch=0"), std::invalid_argument);
  EXPECT_THROW(ProxyOptions::parse("cont_run=0"), std::invalid_argument);
}

TEST(ProxyOptions, ParseRejectsDuplicateKeysNamingTheOffender) {
  try {
    ProxyOptions::parse("ring=64,lanes=2,ring=128");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'ring'"), std::string::npos) << msg;
    // The message must teach the full vocabulary, including the new knob.
    EXPECT_NE(msg.find("cont_run"), std::string::npos) << msg;
  }
  EXPECT_THROW(ProxyOptions::parse("cont_run=2,cont_run=3"),
               std::invalid_argument);
}

TEST(ProxyOptions, DefaultsDeriveFromProfile) {
  machine::Profile p = machine::xeon_fdr();
  p.cores_per_rank = 28;
  ProxyOptions o = ProxyOptions::defaults_for(p);
  EXPECT_EQ(o.lane_count, 16u);  // 27 usable submitters, capped at 16
  EXPECT_EQ(o.watchdog_budget.ns(), p.offload_watchdog_budget.ns());
  EXPECT_EQ(o.proxy_count, 2u);  // one engine fiber per NUMA domain
  p.cores_per_rank = 4;
  EXPECT_EQ(ProxyOptions::defaults_for(p).lane_count, 3u);
  // Single-domain profiles stay single-engine: the sharded paths must never
  // switch on for a machine that cannot benefit from them.
  EXPECT_EQ(ProxyOptions::defaults_for(machine::xeon_phi()).proxy_count, 1u);
  EXPECT_EQ(ProxyOptions::defaults_for(machine::aries()).proxy_count, 1u);
  // The plain struct default is also 1: explicit aggregate options in tests
  // and benches keep the classic single-engine channel unless asked.
  EXPECT_EQ(ProxyOptions{}.proxy_count, 1u);
}

TEST(ProxyOptions, FromEnvAppliesSpecOnTopOfDefaults) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test
  setenv("MPIOFF_PROXY", "lanes=2,batch=16", 1);
  const ProxyOptions o = ProxyOptions::from_env(machine::xeon_fdr());
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  unsetenv("MPIOFF_PROXY");
  EXPECT_EQ(o.lane_count, 2u);
  EXPECT_EQ(o.batch_flush, 16u);
  // Untouched keys keep their profile-derived defaults.
  EXPECT_EQ(o.ring_capacity, 1024u);
}

TEST(OffloadLanes, MultiProxyShardsTrafficAcrossEngines) {
  // Four engine fibers on the submitting rank: traffic to four distinct
  // peers is partitioned by peer hash, every message still lands, and the
  // lane table becomes a grid with one column per engine.
  constexpr int kPeers = 4, kPer = 16;
  Cluster c(cfg(kPeers + 1));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, ProxyOptions{.lane_count = 2,
                                    .proxy_count = 4,
                                    .steal_bound = 0});
    p.start_engine();
    EXPECT_EQ(p.channel().engine_count(), 4u);
    EXPECT_EQ(p.channel().lane_count(), 8u);  // 2 rows x 4 engine columns
    if (rc.rank() == 0) {
      std::vector<int> vals(kPeers * kPer);
      std::vector<PReq> reqs;
      for (int peer = 1; peer <= kPeers; ++peer) {
        for (int i = 0; i < kPer; ++i) {
          const std::size_t k =
              static_cast<std::size_t>((peer - 1) * kPer + i);
          vals[k] = peer * 1000 + i;
          reqs.push_back(p.isend(&vals[k], 1, Datatype::kInt, peer, i));
        }
      }
      p.waitall(reqs);
      const OffloadStats& s = p.channel().stats();
      EXPECT_EQ(s.commands, static_cast<std::uint64_t>(kPeers * kPer));
    } else {
      for (int i = 0; i < kPer; ++i) {
        int v = -1;
        p.recv(&v, 1, Datatype::kInt, 0, i);
        EXPECT_EQ(v, rc.rank() * 1000 + i)
            << "peer " << rc.rank() << " message " << i;
      }
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadLanes, IdleEnginesStealSkewedTraffic) {
  // All traffic targets one peer, so the peer-hash partition lands every
  // command on a single engine; its three idle siblings must pick up part of
  // the backlog through the bounded claim-protected steal path — and the
  // per-peer wire order must survive them doing so.
  constexpr int kN = 96;
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, ProxyOptions{.lane_count = 2,
                                    .batch_flush = 16,
                                    .proxy_count = 4,
                                    .steal_bound = 4});
    p.start_engine();
    if (rc.rank() == 0) {
      std::vector<int> vals(kN);
      std::vector<BatchOp> ops;
      for (int i = 0; i < kN; ++i) {
        vals[static_cast<std::size_t>(i)] = i;
        ops.push_back(BatchOp::isend(&vals[static_cast<std::size_t>(i)], 1,
                                     Datatype::kInt, 1, 7));
      }
      std::vector<PReq> reqs(kN);
      p.post_batch(ops, reqs);
      p.waitall(reqs);
      const OffloadStats& s = p.channel().stats();
      EXPECT_GT(s.steal_rounds, 0u);
      EXPECT_GT(s.steal_commands, 0u);
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        p.recv(&v, 1, Datatype::kInt, 0, 7);
        EXPECT_EQ(v, i) << "stealing broke same-peer FIFO at message " << i;
      }
    }
    p.barrier();
    p.stop();
  });
}

TEST(OffloadLanes, EngineIdentityGuardsReentryAndClearsOnExit) {
  // While the proxy runs, every engine slot is owned by a live fiber:
  // re-entering any of them must fail loudly instead of silently corrupting
  // the owner's identity. After stop(), the identity has been cleared on the
  // exit path, so a fresh run of the drained engine is legal and returns
  // immediately (shutdown is already latched).
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    OffloadProxy p(rc, ProxyOptions{.proxy_count = 2});
    p.start_engine();
    // start() only spawns the engine fibers; let them run far enough to take
    // ownership of their slots before poking at the re-entry guard.
    sim::advance(sim::Time::from_us(10));
    EXPECT_THROW(p.channel().engine_main(0), std::logic_error);
    EXPECT_THROW(p.channel().engine_main(1), std::logic_error);
    p.barrier();
    p.stop();
    p.channel().engine_main(0);
    p.channel().engine_main(1);
  });
}
