// Model-checking the multi-consumer ring protocol: the production MpscRing
// consumed by TWO model threads alternating through the production
// DrainClaim — the shape the multi-proxy engine's work stealing puts the
// queues in. The claim is what restores the single-consumer invariant the
// ring and lanes were built on; the mutation suite rows for claim.state
// prove both of its fences are load-bearing.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Options;
using chk::Result;
using chk::specs::check_mring;
using chk::specs::MringCfg;

TEST(CheckMring, ExhaustiveSingleConsumerBaseline) {
  // consumers=1 degenerates to the classic ring shape, but through the
  // claim protocol: the claim is uncontended, so this pins down that the
  // claim fast path adds no behavior of its own. The claim retry loops make
  // even this space too large to exhaust, so it is a bounded DFS sweep.
  Options opt;
  opt.mode = Mode::kExhaustive;
  opt.max_executions = 30000;
  const Result r = check_mring(opt, MringCfg{2, 2, 2, 1});
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

TEST(CheckMring, ExhaustiveTwoConsumersHandoff) {
  // The real subject: two consumers trading the claim mid-stream. Small
  // bounds (2 producers x 1 item, capacity 2) pack consumer handoffs into
  // the front of the bounded-preemption DFS.
  Options opt;
  opt.mode = Mode::kExhaustive;
  opt.max_executions = 30000;
  const Result r = check_mring(opt, MringCfg{2, 1, 2, 2});
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

TEST(CheckMring, ExhaustiveDefaultCfgBounded) {
  // Default cfg (2x2 items through capacity 2, 2 consumers) exercises the
  // full/empty edges under handoff; the space is larger than the exec cap,
  // so this is a bounded sweep, not an exhaustion proof.
  Options opt;
  opt.mode = Mode::kExhaustive;
  opt.max_executions = 30000;
  const Result r = check_mring(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

TEST(CheckMring, RandomSweepDeeperStream) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 2000;
  opt.seed = 7;
  const Result r = check_mring(opt, MringCfg{2, 3, 2, 2});
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
  EXPECT_EQ(r.executions, 2000u);
}

TEST(CheckMring, ClaimSitesAreObserved) {
  // The claim contributes exactly two sync sites: the successful CAS's
  // acquire and the release store. (The CAS failure ordering and held()
  // are relaxed by design — they must NOT appear.)
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 50;
  const Result r = check_mring(opt);
  ASSERT_FALSE(r.failed) << r.message;
  const chk::Site cas_acq{"claim.state", chk::OpKind::kRmw,
                          chk::Side::kAcquire};
  const chk::Site rel{"claim.state", chk::OpKind::kStore, chk::Side::kRelease};
  EXPECT_NE(std::find(r.sites.begin(), r.sites.end(), cas_acq),
            r.sites.end());
  EXPECT_NE(std::find(r.sites.begin(), r.sites.end(), rel), r.sites.end());
  for (const chk::Site& s : r.sites) {
    if (s.loc == "claim.state") {
      EXPECT_TRUE(s == cas_acq || s == rel) << "unexpected claim site "
                                            << s.str();
    }
  }
}

}  // namespace
