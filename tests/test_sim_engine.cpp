// Unit tests for the discrete-event engine and fibers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

using namespace sim;
using namespace sim::literals;

TEST(Time, ArithmeticAndConversions) {
  Time a = Time::from_us(1.5);
  EXPECT_EQ(a.ns(), 1500);
  EXPECT_DOUBLE_EQ(a.us(), 1.5);
  EXPECT_EQ((a + 500_ns).ns(), 2000);
  EXPECT_EQ((a - 500_ns).ns(), 1000);
  EXPECT_EQ((a * 2).ns(), 3000);
  EXPECT_LT(Time::zero(), a);
  EXPECT_EQ(Time::from_ms(1).ns(), 1000000);
  EXPECT_EQ(Time::from_sec(1).ns(), 1000000000);
}

TEST(Engine, AdvanceMovesVirtualClock) {
  Engine e;
  Time seen_before, seen_after;
  e.spawn("f", [&] {
    seen_before = now();
    advance(10_us);
    seen_after = now();
  });
  e.run();
  EXPECT_EQ(seen_before.ns(), 0);
  EXPECT_EQ(seen_after.ns(), 10000);
  EXPECT_TRUE(e.all_fibers_done());
}

TEST(Engine, FibersInterleaveByTime) {
  Engine e;
  std::vector<int> order;
  e.spawn("a", [&] {
    advance(5_us);
    order.push_back(1);
    advance(10_us);
    order.push_back(3);
  });
  e.spawn("b", [&] {
    advance(8_us);
    order.push_back(2);
    advance(20_us);
    order.push_back(4);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(e.now().ns(), 28000);
}

TEST(Engine, SameTimeEventsFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.spawn("f" + std::to_string(i), [&order, i] {
      advance(Time::from_us(1));
      order.push_back(i);
    });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CallAtRunsCallbacksAtTheRightTime) {
  Engine e;
  std::vector<std::int64_t> at;
  e.call_at(5_us, [&] { at.push_back(Engine::current()->now().ns()); });
  e.call_at(2_us, [&] { at.push_back(Engine::current()->now().ns()); });
  e.run();
  EXPECT_EQ(at, (std::vector<std::int64_t>{2000, 5000}));
}

TEST(Engine, BlockAndUnblock) {
  Engine e;
  bool woke = false;
  Fiber* sleeper = nullptr;
  sleeper = &e.spawn("sleeper", [&] {
    Engine::current()->block();
    woke = true;
  });
  e.spawn("waker", [&] {
    advance(3_us);
    Engine::current()->unblock(*sleeper);
  });
  e.run();
  EXPECT_TRUE(woke);
  EXPECT_TRUE(e.all_fibers_done());
}

TEST(Engine, DuplicateUnblockDoesNotDoubleResume) {
  Engine e;
  int resumes = 0;
  Fiber* sleeper = &e.spawn("sleeper", [&] {
    Engine::current()->block();
    ++resumes;
    Engine::current()->block();  // second sleep: must need a second unblock
    ++resumes;
  });
  e.spawn("waker", [&] {
    advance(1_us);
    Engine::current()->unblock(*sleeper);
    Engine::current()->unblock(*sleeper);  // stale duplicate
    advance(10_us);
    Engine::current()->unblock(*sleeper);
  });
  e.run();
  EXPECT_EQ(resumes, 2);
  EXPECT_TRUE(e.all_fibers_done());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  e.spawn("t", [&] {
    for (int i = 0; i < 100; ++i) advance(1_ms);
  });
  const Time end = e.run_until(Time::from_ms(10));
  EXPECT_LE(end.ns(), Time::from_ms(11).ns());
  EXPECT_FALSE(e.all_fibers_done());
  EXPECT_EQ(e.unfinished_fibers().size(), 1u);
}

TEST(Engine, DeadlockedFibersAreNamedInDiagnostics) {
  // Classic AB-BA deadlock: run() returns once no event can fire, and
  // unfinished_fibers() must name exactly the stuck fibers so the user can
  // see who is blocked (and not the fiber that completed).
  Engine e;
  Mutex a;
  Mutex b;
  e.spawn("lock-a-then-b", [&] {
    a.lock();
    advance(1_us);  // guarantee both fibers hold their first mutex
    b.lock();
    b.unlock();
    a.unlock();
  });
  e.spawn("lock-b-then-a", [&] {
    b.lock();
    advance(1_us);
    a.lock();
    a.unlock();
    b.unlock();
  });
  e.spawn("bystander", [&] { advance(5_us); });
  e.run();

  EXPECT_FALSE(e.all_fibers_done());
  const std::vector<std::string> stuck = e.unfinished_fibers();
  ASSERT_EQ(stuck.size(), 2u);
  EXPECT_NE(std::find(stuck.begin(), stuck.end(), "lock-a-then-b"),
            stuck.end());
  EXPECT_NE(std::find(stuck.begin(), stuck.end(), "lock-b-then-a"),
            stuck.end());
  EXPECT_EQ(std::find(stuck.begin(), stuck.end(), "bystander"), stuck.end());
}

TEST(Engine, FiberStuckOnForeverHeldMutexIsReported) {
  Engine e;
  Mutex m;
  Mutex cv_m;
  CondVar never_signaled;
  e.spawn("holder", [&] {
    m.lock();  // held across the wait: progress hostage
    cv_m.lock();
    never_signaled.wait(cv_m);  // parks forever (releases only cv_m)
    cv_m.unlock();
    m.unlock();
  });
  e.spawn("blocked-on-mutex", [&] {
    advance(1_us);
    m.lock();
    m.unlock();
  });
  e.run();

  const std::vector<std::string> stuck = e.unfinished_fibers();
  ASSERT_EQ(stuck.size(), 2u);
  EXPECT_NE(std::find(stuck.begin(), stuck.end(), "holder"), stuck.end());
  EXPECT_NE(std::find(stuck.begin(), stuck.end(), "blocked-on-mutex"),
            stuck.end());
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    Rng rng(42);
    std::vector<std::int64_t> trace;
    for (int f = 0; f < 4; ++f) {
      e.spawn("f", [&, f] {
        Rng local(static_cast<std::uint64_t>(f) + 7);
        for (int i = 0; i < 50; ++i) {
          advance(Time(static_cast<std::int64_t>(local.next_below(1000) + 1)));
          trace.push_back(now().ns() * 10 + f);
        }
      });
    }
    e.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, StatsCountEvents) {
  Engine e;
  e.spawn("f", [&] {
    for (int i = 0; i < 5; ++i) advance(1_us);
  });
  e.run();
  EXPECT_EQ(e.stats().fibers_spawned, 1u);
  EXPECT_GE(e.stats().events_fired, 6u);
}

TEST(Engine, ManyFibersLargeFanout) {
  Engine e;
  int done = 0;
  for (int i = 0; i < 2000; ++i) {
    e.spawn("w", [&, i] {
      advance(Time(i % 97));
      ++done;
    });
  }
  e.run();
  EXPECT_EQ(done, 2000);
}

TEST(Rng, DeterministicAndRoughlyUniform) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
  Rng r(123);
  Stats s;
  for (int i = 0; i < 10000; ++i) s.add(r.next_double());
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_GE(s.min(), 0.0);
  EXPECT_LT(s.max(), 1.0);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
}
