// Unit tests for the tag-matching engine (wildcards, FIFO order), plus the
// cluster-level per-peer ordering contract under the sharded offload engine.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"
#include "mpi/matching.hpp"
#include "mpi/request.hpp"

using namespace smpi;

namespace {

UnexpectedMsg um(std::uint32_t ctx, int src, int tag, std::size_t bytes = 4) {
  UnexpectedMsg m;
  m.env = {ctx, src, tag};
  m.bytes = bytes;
  m.payload.resize(bytes);
  return m;
}

RequestImpl recv_req(std::uint32_t ctx, int src, int tag) {
  RequestImpl r;
  r.kind = ReqKind::kRecv;
  r.ctx = ctx;
  r.src_global = src;
  r.tag = tag;
  return r;
}

}  // namespace

TEST(Matching, ExactTriple) {
  EXPECT_TRUE(MatchingEngine::matches(5, 2, 9, {5, 2, 9}));
  EXPECT_FALSE(MatchingEngine::matches(5, 2, 9, {6, 2, 9}));
  EXPECT_FALSE(MatchingEngine::matches(5, 2, 9, {5, 3, 9}));
  EXPECT_FALSE(MatchingEngine::matches(5, 2, 9, {5, 2, 8}));
}

TEST(Matching, Wildcards) {
  EXPECT_TRUE(MatchingEngine::matches(5, kAnySource, 9, {5, 7, 9}));
  EXPECT_TRUE(MatchingEngine::matches(5, 7, kAnyTag, {5, 7, 1234}));
  EXPECT_TRUE(MatchingEngine::matches(5, kAnySource, kAnyTag, {5, 0, 0}));
  // Context never wildcards.
  EXPECT_FALSE(MatchingEngine::matches(5, kAnySource, kAnyTag, {6, 0, 0}));
}

TEST(Matching, PostedQueueFifoPerMatch) {
  MatchingEngine m;
  RequestImpl r1 = recv_req(1, kAnySource, kAnyTag);
  RequestImpl r2 = recv_req(1, kAnySource, kAnyTag);
  m.post_recv(&r1);
  m.post_recv(&r2);
  EXPECT_EQ(m.match_posted({1, 0, 0}), &r1);
  EXPECT_EQ(m.match_posted({1, 0, 0}), &r2);
  EXPECT_EQ(m.match_posted({1, 0, 0}), nullptr);
}

TEST(Matching, PostedSkipsNonMatching) {
  MatchingEngine m;
  RequestImpl specific = recv_req(1, 3, 7);
  RequestImpl any = recv_req(1, kAnySource, kAnyTag);
  m.post_recv(&specific);
  m.post_recv(&any);
  // Envelope from src 9 skips the specific receive, takes the wildcard.
  EXPECT_EQ(m.match_posted({1, 9, 7}), &any);
  EXPECT_EQ(m.match_posted({1, 3, 7}), &specific);
}

TEST(Matching, RemovePosted) {
  MatchingEngine m;
  RequestImpl r = recv_req(1, 0, 0);
  m.post_recv(&r);
  EXPECT_TRUE(m.remove_posted(&r));
  EXPECT_FALSE(m.remove_posted(&r));
  EXPECT_EQ(m.match_posted({1, 0, 0}), nullptr);
}

TEST(Matching, UnexpectedFifoAndByteAccounting) {
  MatchingEngine m;
  m.add_unexpected(um(1, 0, 5, 16));
  m.add_unexpected(um(1, 0, 5, 32));
  EXPECT_EQ(m.unexpected_count(), 2u);
  EXPECT_EQ(m.unexpected_bytes(), 48u);
  auto first = m.match_unexpected(1, 0, 5);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->bytes, 16u);
  EXPECT_EQ(m.unexpected_bytes(), 32u);
  auto second = m.match_unexpected(1, kAnySource, kAnyTag);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->bytes, 32u);
  EXPECT_FALSE(m.match_unexpected(1, 0, 5).has_value());
}

TEST(Matching, PeekDoesNotRemove) {
  MatchingEngine m;
  m.add_unexpected(um(2, 4, 8));
  const UnexpectedMsg* p = m.peek_unexpected(2, kAnySource, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->env.src_global, 4);
  EXPECT_EQ(m.unexpected_count(), 1u);
  EXPECT_EQ(m.peek_unexpected(2, 5, 8), nullptr);
}

TEST(Matching, PerPeerFifoSurvivesMultiProxy) {
  // Four engine fibers on the sender: the peer-hash partition spreads
  // different peers across engines and work stealing may move a backlog
  // between them, but the same-envelope stream to EACH peer must still
  // match that peer's posted receives in submission order. Sends are
  // round-robined across peers so adjacent submissions target different
  // engines — the interleaving most likely to expose a cross-engine
  // reordering of one peer's stream.
  constexpr int kPeers = 3, kPer = 48;
  ClusterConfig cc;
  cc.nranks = kPeers + 1;
  cc.thread_level = ThreadLevel::kFunneled;
  cc.deadline = sim::Time::from_sec(60);
  Cluster c(cc);
  c.run([&](RankCtx& rc) {
    core::OffloadProxy p(rc, core::ProxyOptions{.lane_count = 2,
                                                .proxy_count = 4,
                                                .steal_bound = 4});
    p.start_engine();
    if (rc.rank() == 0) {
      std::vector<int> vals(kPeers * kPer);
      std::vector<core::PReq> reqs;
      for (int i = 0; i < kPer; ++i) {
        for (int peer = 1; peer <= kPeers; ++peer) {
          const std::size_t k =
              static_cast<std::size_t>(i * kPeers + (peer - 1));
          vals[k] = i;
          reqs.push_back(p.isend(&vals[k], 1, Datatype::kInt, peer, 7));
        }
      }
      p.waitall(reqs);
    } else {
      for (int i = 0; i < kPer; ++i) {
        int v = -1;
        p.recv(&v, 1, Datatype::kInt, 0, 7);
        ASSERT_EQ(v, i) << "per-peer FIFO broken: rank " << rc.rank()
                        << " message " << i;
      }
    }
    p.barrier();
    p.stop();
  });
}

TEST(RequestTable, AllocRecyclesSlots) {
  RequestTable t;
  RequestImpl& a = t.alloc();
  RequestImpl& b = t.alloc();
  EXPECT_NE(a.idx, b.idx);
  EXPECT_NE(a.idx, 0);
  const int old_idx = a.idx;
  t.release(a);
  RequestImpl& c = t.alloc();
  EXPECT_EQ(c.idx, old_idx);  // LIFO recycling
  EXPECT_TRUE(c.active);
  EXPECT_FALSE(c.complete);
  EXPECT_EQ(t.active_count(), 2u);
}

TEST(RequestTable, ResetClearsAllFields) {
  RequestTable t;
  RequestImpl& a = t.alloc();
  a.kind = ReqKind::kSendRndv;
  a.complete = true;
  a.sbytes = 99;
  a.cts_received = true;
  t.release(a);
  RequestImpl& b = t.alloc();
  EXPECT_EQ(b.kind, ReqKind::kNull);
  EXPECT_FALSE(b.complete);
  EXPECT_EQ(b.sbytes, 0u);
  EXPECT_FALSE(b.cts_received);
}
