// Protocol-level property tests: phantom-vs-real timing equivalence, the
// chunked rendezvous pipeline, eager-threshold boundary behaviour, and a
// randomized traffic soak across seeds.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mpi/cluster.hpp"
#include "sim/rng.hpp"

using namespace smpi;

namespace {

ClusterConfig cfg(int n) {
  ClusterConfig c;
  c.nranks = n;
  c.deadline = sim::Time::from_sec(120);
  return c;
}

/// Virtual duration of a 2-rank exchange of `bytes` with the given buffers.
std::int64_t exchange_ns(std::size_t bytes, bool phantom,
                         machine::Profile prof = machine::xeon_fdr()) {
  ClusterConfig c = cfg(2);
  c.profile = prof;
  Cluster cluster(c);
  std::int64_t ns = 0;
  cluster.run([&](RankCtx& rc) {
    std::vector<char> real_s(phantom ? 0 : bytes, 'x');
    std::vector<char> real_r(phantom ? 0 : bytes);
    void* sb = phantom ? nullptr : static_cast<void*>(real_s.data());
    void* rb = phantom ? nullptr : static_cast<void*>(real_r.data());
    const int peer = 1 - rc.rank();
    barrier();
    const sim::Time t0 = sim::now();
    Request rr = irecv(rb, bytes, Datatype::kByte, peer, 0);
    Request rs = isend(sb, bytes, Datatype::kByte, peer, 0);
    wait(rr);
    wait(rs);
    if (rc.rank() == 0) ns = (sim::now() - t0).ns();
  });
  return ns;
}

}  // namespace

class PhantomEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PhantomEquivalence, PhantomTransfersTakeIdenticalVirtualTime) {
  const std::size_t bytes = GetParam();
  EXPECT_EQ(exchange_ns(bytes, false), exchange_ns(bytes, true));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhantomEquivalence,
                         ::testing::Values(64, 4096, 131072, 1 << 20, 8 << 20));

TEST(ChunkedRndv, NoHandshakeMeansNoOverlapAtAnyDepth) {
  // Both sides compute after posting: the RTS/CTS handshake only happens at
  // the waits, so the full wire time is exposed regardless of pipeline
  // depth — the paper's core rendezvous argument (Sec. 4.1).
  const std::size_t bytes = 8 << 20;
  auto run_with_depth = [&](int depth) {
    machine::Profile prof = machine::xeon_fdr();
    prof.rndv_pipeline_depth = depth;
    ClusterConfig c = cfg(2);
    c.profile = prof;
    Cluster cluster(c);
    std::int64_t wait_ns = 0;
    cluster.run([&](RankCtx& rc) {
      const int peer = 1 - rc.rank();
      Request rr = irecv(nullptr, bytes, Datatype::kByte, peer, 0);
      Request rs = isend(nullptr, bytes, Datatype::kByte, peer, 0);
      compute(sim::Time::from_ms(10));  // nobody polls during this
      const sim::Time t0 = sim::now();
      wait(rr);
      wait(rs);
      if (rc.rank() == 0) wait_ns = (sim::now() - t0).ns();
    });
    return wait_ns;
  };
  const std::int64_t wire_ns = 1300000;  // 8MB at 6 B/ns
  EXPECT_GT(run_with_depth(1), wire_ns);
  EXPECT_GT(run_with_depth(1024), wire_ns);
}

TEST(ChunkedRndv, PipelineDepthBoundsOverlapPerPoll) {
  // A sender that polls periodically injects at most depth*chunk bytes per
  // poll; a deeper pipeline therefore hides more of the transfer.
  const std::size_t bytes = 8 << 20;
  auto exposed_with_depth = [&](int depth) {
    machine::Profile prof = machine::xeon_fdr();
    prof.rndv_pipeline_depth = depth;
    ClusterConfig c = cfg(2);
    c.profile = prof;
    Cluster cluster(c);
    std::int64_t wait_ns = 0;
    cluster.run([&](RankCtx& rc) {
      if (rc.rank() == 0) {
        Request rs = isend(nullptr, bytes, Datatype::kByte, 1, 0);
        for (int i = 0; i < 10; ++i) {
          compute(sim::Time::from_us(200));
          progress();  // Listing-1-style PROGRESS insertion
        }
        const sim::Time t0 = sim::now();
        wait(rs);
        wait_ns = (sim::now() - t0).ns();
      } else {
        recv(nullptr, bytes, Datatype::kByte, 0, 0);  // waits in MPI
      }
    });
    return wait_ns;
  };
  const std::int64_t shallow = exposed_with_depth(1);
  const std::int64_t deep = exposed_with_depth(8);
  // Depth 1 injects 512KB per 200us poll (< wire rate): most of the 8MB is
  // exposed at the wait. Depth 8 keeps the NIC saturated between polls.
  EXPECT_GT(shallow, 500000);
  EXPECT_LT(deep, shallow / 3);
}

TEST(ChunkedRndv, ChunksReassembleExactly) {
  // Odd chunk boundaries: message not a multiple of the chunk size.
  machine::Profile prof = machine::xeon_fdr();
  prof.rndv_chunk_bytes = 100000;  // deliberately unaligned
  ClusterConfig c = cfg(2);
  c.profile = prof;
  Cluster cluster(c);
  const std::size_t bytes = 1234567;
  cluster.run([&](RankCtx& rc) {
    std::vector<std::uint8_t> sb(bytes), rb(bytes, 0);
    for (std::size_t i = 0; i < bytes; ++i) sb[i] = static_cast<std::uint8_t>(i * 7);
    const int peer = 1 - rc.rank();
    Request rr = irecv(rb.data(), bytes, Datatype::kByte, peer, 0);
    Request rs = isend(sb.data(), bytes, Datatype::kByte, peer, 0);
    wait(rr);
    wait(rs);
    for (std::size_t i = 0; i < bytes; i += 1009) {
      ASSERT_EQ(rb[i], static_cast<std::uint8_t>(i * 7)) << "at " << i;
    }
  });
}

TEST(EagerThreshold, PostTimeDropsAcrossBoundary) {
  // Issue time of Isend is proportional to size below the threshold and
  // constant above it (the Fig. 4 cliff), as a property of the protocol.
  auto post_ns = [&](std::size_t bytes) {
    ClusterConfig c = cfg(2);
    Cluster cluster(c);
    std::int64_t ns = 0;
    cluster.run([&](RankCtx& rc) {
      const int peer = 1 - rc.rank();
      Request rr = irecv(nullptr, bytes, Datatype::kByte, peer, 0);
      const sim::Time t0 = sim::now();
      Request rs = isend(nullptr, bytes, Datatype::kByte, peer, 0);
      if (rc.rank() == 0) ns = (sim::now() - t0).ns();
      wait(rr);
      wait(rs);
    });
    return ns;
  };
  const std::int64_t at_threshold = post_ns(128 * 1024);
  const std::int64_t above = post_ns(128 * 1024 + 1);
  const std::int64_t way_above = post_ns(16 << 20);
  EXPECT_GT(at_threshold, 10 * above);  // copy cost vanishes
  EXPECT_EQ(above, way_above);          // rendezvous post is size-independent
}

TEST(EagerThreshold, MovingThresholdMovesTheCliff) {
  auto post_ns_with = [&](std::size_t thr, std::size_t bytes) {
    machine::Profile prof = machine::xeon_fdr();
    prof.eager_threshold = thr;
    ClusterConfig c = cfg(2);
    c.profile = prof;
    Cluster cluster(c);
    std::int64_t ns = 0;
    cluster.run([&](RankCtx& rc) {
      const int peer = 1 - rc.rank();
      Request rr = irecv(nullptr, bytes, Datatype::kByte, peer, 0);
      const sim::Time t0 = sim::now();
      Request rs = isend(nullptr, bytes, Datatype::kByte, peer, 0);
      if (rc.rank() == 0) ns = (sim::now() - t0).ns();
      wait(rr);
      wait(rs);
    });
    return ns;
  };
  // 192K is eager under a 512K threshold (slow post) and rendezvous under a
  // 32K threshold (fast post).
  EXPECT_GT(post_ns_with(512 << 10, 192 << 10),
            5 * post_ns_with(32 << 10, 192 << 10));
}

class TrafficSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrafficSoak, RandomizedTrafficDeliversEverythingIntact) {
  // Every rank sends a deterministic pseudo-random schedule of messages of
  // assorted sizes (eager, rendezvous, zero-byte) to random peers; receivers
  // post matching wildcard receives. Every payload is integrity-checked.
  const std::uint64_t seed = GetParam();
  const int nranks = 5;
  constexpr int kMsgsPerRank = 30;
  // Precompute the schedule so senders/receivers agree: msgs[src] = list of
  // (dst, bytes).
  sim::Rng plan(seed);
  std::vector<std::vector<std::pair<int, std::size_t>>> sched(nranks);
  std::vector<int> inbound(nranks, 0);
  const std::size_t sizes[] = {0, 8, 1000, 60000, 200000, 600000};
  for (int s = 0; s < nranks; ++s) {
    for (int m = 0; m < kMsgsPerRank; ++m) {
      const int dst = static_cast<int>(plan.next_below(nranks));
      const std::size_t sz = sizes[plan.next_below(std::size(sizes))];
      sched[static_cast<std::size_t>(s)].push_back({dst, sz});
      ++inbound[static_cast<std::size_t>(dst)];
    }
  }
  Cluster cluster(cfg(nranks));
  cluster.run([&](RankCtx& rc) {
    const int me = rc.rank();
    // Post every send nonblocking (payloads must outlive the waitall), then
    // drain all inbound with wildcard receives, then complete the sends.
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<Request> sends;
    for (const auto& [dst, sz] : sched[static_cast<std::size_t>(me)]) {
      payloads.emplace_back(sz);
      auto& payload = payloads.back();
      for (std::size_t i = 0; i < sz; ++i) {
        payload[i] = static_cast<std::uint8_t>((i + sz) & 0xff);
      }
      sends.push_back(isend(payload.data(), sz, Datatype::kByte, dst,
                            /*tag=*/static_cast<int>(sz)));
    }
    std::vector<std::uint8_t> rbuf(600000);
    int received = 0;
    while (received < inbound[static_cast<std::size_t>(me)]) {
      Status st;
      recv(rbuf.data(), rbuf.size(), Datatype::kByte, kAnySource, kAnyTag,
           kCommWorld, &st);
      ASSERT_EQ(st.bytes, static_cast<std::size_t>(st.tag));
      for (std::size_t i = 0; i < st.bytes; i += 977) {
        ASSERT_EQ(rbuf[i], static_cast<std::uint8_t>((i + st.bytes) & 0xff));
      }
      ++received;
    }
    waitall(sends);
    barrier();
    EXPECT_EQ(received, inbound[static_cast<std::size_t>(me)]);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficSoak,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));
