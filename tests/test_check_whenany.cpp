// Model-checking the when_any claim race: AnyClaim's first-wins CAS must
// elect exactly one winner, publish that winner's completion record to every
// loser (through the CAS failure-acquire) and to late observers (through the
// winner() acquire load), under every interleaving of a weak-memory model.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/specs.hpp"

namespace {

using chk::Mode;
using chk::Mutation;
using chk::Options;
using chk::Result;
using chk::specs::check_whenany;

TEST(CheckWhenAny, Exhaustive) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  const Result r = check_whenany(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "state space not exhausted in " << r.executions;
}

TEST(CheckWhenAny, ExhaustiveDeeperPreemptionBound) {
  Options opt;
  opt.mode = Mode::kExhaustive;
  opt.preemption_bound = 3;
  const Result r = check_whenany(opt);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(CheckWhenAny, ThreeCompleters) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 1500;
  opt.seed = 11;
  chk::specs::WhenAnyCfg cfg;
  cfg.completers = 3;
  const Result r = check_whenany(opt, cfg);
  EXPECT_FALSE(r.failed) << r.str() << "\n" << r.trace;
  EXPECT_EQ(r.executions, 1500u);
}

TEST(CheckWhenAny, ObservesTheClaimSites) {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 50;
  const Result r = check_whenany(opt);
  ASSERT_FALSE(r.failed) << r.message;
  auto has = [&](const char* loc, chk::OpKind op, chk::Side side) {
    return std::find(r.sites.begin(), r.sites.end(),
                     chk::Site{loc, op, side}) != r.sites.end();
  };
  // The protocol is one CAS and one load: the winner's release publishes its
  // record, the loser's failure-acquire reads it, the observer's acquire
  // load of winner() reads it from outside the race.
  EXPECT_TRUE(has("any.winner", chk::OpKind::kRmw, chk::Side::kRelease));
  EXPECT_TRUE(has("any.winner", chk::OpKind::kRmw, chk::Side::kAcquire));
  EXPECT_TRUE(has("any.winner", chk::OpKind::kLoad, chk::Side::kAcquire));
}

TEST(CheckWhenAny, WeakenedClaimFencesAreCaught) {
  // All three orders are load-bearing: weaken any one and either a loser or
  // the observer reads the winner's record before it was published.
  const chk::Site rows[] = {
      {"any.winner", chk::OpKind::kRmw, chk::Side::kRelease},
      {"any.winner", chk::OpKind::kRmw, chk::Side::kAcquire},
      {"any.winner", chk::OpKind::kLoad, chk::Side::kAcquire},
  };
  for (const chk::Site& site : rows) {
    Options opt;
    opt.mode = Mode::kExhaustive;
    opt.mutation = Mutation::of(site);
    const Result r = check_whenany(opt);
    ASSERT_TRUE(r.failed) << "mutant survived: " << opt.mutation.str();
    EXPECT_FALSE(r.trace.empty());
  }
}

}  // namespace
