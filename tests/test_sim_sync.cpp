// Unit tests for virtual-time synchronization primitives.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

using namespace sim;
using namespace sim::literals;

TEST(Mutex, MutualExclusionAndFifoFairness) {
  Engine e;
  Mutex m;
  std::vector<int> order;
  int inside = 0;
  for (int i = 0; i < 4; ++i) {
    e.spawn("t" + std::to_string(i), [&, i] {
      advance(Time(i));  // stagger arrival => FIFO should preserve 0,1,2,3
      m.lock();
      EXPECT_EQ(inside, 0);
      ++inside;
      advance(10_us);
      --inside;
      order.push_back(i);
      m.unlock();
    });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(m.locked());
}

TEST(Mutex, AcquireCostIsCharged) {
  Engine e;
  Mutex m(500_ns);
  Time t;
  e.spawn("t", [&] {
    m.lock();
    t = now();
    m.unlock();
  });
  e.run();
  EXPECT_EQ(t.ns(), 500);
}

TEST(Mutex, TryLock) {
  Engine e;
  Mutex m;
  bool first = false, second = true;
  e.spawn("a", [&] {
    first = m.try_lock();
    advance(5_us);
    m.unlock();
  });
  e.spawn("b", [&] {
    advance(1_us);
    second = m.try_lock();  // held by a
  });
  e.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(CondVar, WaitNotify) {
  Engine e;
  Mutex m;
  CondVar cv;
  bool ready = false;
  Time woke_at;
  e.spawn("waiter", [&] {
    m.lock();
    while (!ready) cv.wait(m);
    woke_at = now();
    m.unlock();
  });
  e.spawn("setter", [&] {
    advance(7_us);
    m.lock();
    ready = true;
    cv.notify_one();
    m.unlock();
  });
  e.run();
  EXPECT_TRUE(e.all_fibers_done());
  EXPECT_GE(woke_at.ns(), 7000);
}

TEST(Barrier, ReleasesAllAtLastArrival) {
  Engine e;
  Barrier bar(3);
  std::vector<std::int64_t> release_times;
  for (int i = 0; i < 3; ++i) {
    e.spawn("t", [&, i] {
      advance(Time::from_us(static_cast<double>(i * 10)));
      bar.arrive_and_wait();
      release_times.push_back(now().ns());
    });
  }
  e.run();
  ASSERT_EQ(release_times.size(), 3u);
  for (auto t : release_times) EXPECT_EQ(t, 20000);
}

TEST(Barrier, ReusableAcrossGenerations) {
  Engine e;
  Barrier bar(2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    e.spawn("t", [&, i] {
      for (int r = 0; r < 5; ++r) {
        advance(Time(100 * (i + 1)));
        bar.arrive_and_wait();
      }
      ++rounds_done;
    });
  }
  e.run();
  EXPECT_EQ(rounds_done, 2);
}

TEST(Notifier, SignalWakesAfterDetectLatency) {
  Engine e;
  Notifier n(50_ns);
  Time woke;
  e.spawn("w", [&] {
    n.wait_beyond(0);
    woke = now();
  });
  e.spawn("s", [&] {
    advance(1_us);
    n.signal();
  });
  e.run();
  EXPECT_EQ(woke.ns(), 1050);
}

TEST(Notifier, NoLostSignals) {
  Engine e;
  Notifier n(10_ns);
  std::uint64_t observed = 0;
  e.spawn("w", [&] {
    std::uint64_t seen = 0;
    while (observed < 3) {
      const std::uint64_t cur = n.wait_beyond(seen);
      observed += cur - seen;  // signals may batch between wakes
      seen = cur;
    }
  });
  e.spawn("s", [&] {
    // Two signals back-to-back before the waiter runs again, then one later.
    advance(1_us);
    n.signal();
    n.signal();
    advance(1_us);
    n.signal();
  });
  e.run();
  EXPECT_EQ(observed, 3u);
  EXPECT_EQ(n.count(), 3u);
}

TEST(Notifier, TimeoutFiresWithoutSignal) {
  Engine e;
  Notifier n(10_ns);
  bool got = true;
  Time woke;
  e.spawn("w", [&] {
    got = n.wait_beyond_timeout(0, 5_us);
    woke = now();
  });
  e.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(woke.ns(), 5000);
}

TEST(Notifier, TimeoutWaitStillSeesSignal) {
  Engine e;
  Notifier n(10_ns);
  bool got = false;
  e.spawn("w", [&] { got = n.wait_beyond_timeout(0, 100_us); });
  e.spawn("s", [&] {
    advance(2_us);
    n.signal();
  });
  e.run();
  EXPECT_TRUE(got);
  EXPECT_TRUE(e.all_fibers_done());
}

TEST(Notifier, StaleTimeoutDoesNotCorruptLaterWaits) {
  Engine e;
  Notifier n(10_ns);
  std::vector<std::int64_t> wakes;
  e.spawn("w", [&] {
    // First wait times out at 1us; its (already-fired) callback must not
    // disturb the second wait which should end at the 8us signal.
    n.wait_beyond_timeout(0, 1_us);
    wakes.push_back(now().ns());
    n.wait_beyond(0);  // count becomes 1 at 8us
    wakes.push_back(now().ns());
  });
  e.spawn("s", [&] {
    advance(8_us);
    n.signal();
  });
  e.run();
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], 1000);
  EXPECT_EQ(wakes[1], 8010);
}
