// Fault-injection + wire-reliability coverage:
//   * FaultSpec parsing (the MPIOFF_FAULTS grammar);
//   * determinism of the fault plan (same seed → same schedule and results);
//   * the parameterized soak: seed × fault mix, each run through all four
//     proxies, asserting bit-wise payload equality and identical MPI-level
//     outcomes against a fault-free reference run;
//   * matching-layer: duplicated/reordered frames never double-match;
//   * the offload engine watchdog flagging stuck requests;
//   * the MPIOFF_FAULTS environment hook.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/proxy.hpp"
#include "machine/fault.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using core::Approach;
using core::PReq;
using machine::FaultSpec;

namespace {

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Per-rank record of everything MPI-visible the workload produced: payload
/// digest (bit-wise), statuses (source/tag/bytes), and the allreduce result.
struct RankOutcome {
  std::uint64_t digest = 14695981039346656037ull;
  std::vector<int> sources, tags;
  std::vector<std::size_t> byte_counts;
  long long reduced = 0;

  bool operator==(const RankOutcome&) const = default;
};

struct SoakResult {
  std::vector<RankOutcome> outcomes;  // one per rank
  std::uint64_t retransmits = 0;
  std::uint64_t dup_drops = 0;
  std::uint64_t injected_drops = 0;
};

/// Mixed-protocol workload: eager + multi-chunk rendezvous ring exchange, a
/// same-tag burst (non-overtaking check), and a closing allreduce so every
/// rank is still inside MPI while peers recover lost frames.
SoakResult run_soak(Approach a, const FaultSpec& faults) {
  constexpr int kRanks = 4, kIters = 3, kBurst = 6;
  constexpr std::size_t kEager = 2 << 10, kRndv = 24 << 10;
  ClusterConfig cfg;
  cfg.nranks = kRanks;
  cfg.profile.eager_threshold = 8 << 10;
  cfg.profile.rndv_chunk_bytes = 8 << 10;
  cfg.profile.rndv_pipeline_depth = 2;
  cfg.profile.faults = faults;
  cfg.thread_level = core::required_thread_level(a);
  cfg.deadline = sim::Time::from_sec(600);
  Cluster c(cfg);
  SoakResult res;
  res.outcomes.resize(kRanks);
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank();
    const int right = (me + 1) % kRanks, left = (me + kRanks - 1) % kRanks;
    RankOutcome& out = res.outcomes[static_cast<std::size_t>(me)];
    std::vector<char> se(kEager), sr(kRndv), re(kEager), rr(kRndv);
    for (int it = 0; it < kIters; ++it) {
      for (std::size_t i = 0; i < kEager; ++i) {
        se[i] = static_cast<char>((me * 131 + it * 17 + static_cast<int>(i)) & 0x7f);
      }
      for (std::size_t i = 0; i < kRndv; ++i) {
        sr[i] = static_cast<char>((me * 29 + it * 7 + static_cast<int>(i * 3)) & 0x7f);
      }
      Status ste, str;
      PReq reqs[4] = {p->irecv(re.data(), kEager, Datatype::kByte, left, it),
                      p->irecv(rr.data(), kRndv, Datatype::kByte, left, 100 + it),
                      p->isend(se.data(), kEager, Datatype::kByte, right, it),
                      p->isend(sr.data(), kRndv, Datatype::kByte, right, 100 + it)};
      p->wait(reqs[0], &ste);
      p->wait(reqs[1], &str);
      p->wait(reqs[2]);
      p->wait(reqs[3]);
      out.digest = fnv1a(re.data(), kEager, out.digest);
      out.digest = fnv1a(rr.data(), kRndv, out.digest);
      for (const Status& st : {ste, str}) {
        out.sources.push_back(st.source);
        out.tags.push_back(st.tag);
        out.byte_counts.push_back(st.bytes);
      }
    }
    // Same-tag burst: MPI non-overtaking must hold under reordering faults.
    {
      std::vector<PReq> reqs;
      std::vector<std::vector<char>> rbufs(kBurst, std::vector<char>(kEager));
      std::vector<std::vector<char>> sbufs(kBurst, std::vector<char>(kEager));
      for (int i = 0; i < kBurst; ++i) {
        reqs.push_back(p->irecv(rbufs[static_cast<std::size_t>(i)].data(),
                                kEager, Datatype::kByte, left, 777));
      }
      for (int i = 0; i < kBurst; ++i) {
        auto& sb = sbufs[static_cast<std::size_t>(i)];
        std::memset(sb.data(), 'a' + i, kEager);
        reqs.push_back(p->isend(sb.data(), kEager, Datatype::kByte, right, 777));
      }
      p->waitall(reqs);
      for (int i = 0; i < kBurst; ++i) {
        out.digest = fnv1a(rbufs[static_cast<std::size_t>(i)].data(), kEager,
                           out.digest);
      }
    }
    long long v = me + 1, sum = 0;
    p->allreduce(&v, &sum, 1, Datatype::kLong, Op::kSum);
    out.reduced = sum;
    p->barrier();
    p->stop();
  });
  for (int r = 0; r < kRanks; ++r) {
    res.retransmits += c.rank(r).rel_stats().retransmits;
    res.dup_drops += c.rank(r).rel_stats().dup_drops;
  }
  if (const machine::FaultPlan* fp = c.network().faults()) {
    res.injected_drops = fp->stats().dropped;
  }
  return res;
}

}  // namespace

// --------------------------------------------------------- spec parsing ----

TEST(FaultSpec, ParsesFullSpec) {
  const FaultSpec s = FaultSpec::parse(
      "drop=0.02,dup=0.01,corrupt=0.005,delay=0.1:20us,reorder=0.05,"
      "stall=0.001:50us,rto=150us,seed=42");
  EXPECT_TRUE(s.on);
  EXPECT_DOUBLE_EQ(s.drop, 0.02);
  EXPECT_DOUBLE_EQ(s.dup, 0.01);
  EXPECT_DOUBLE_EQ(s.corrupt, 0.005);
  EXPECT_DOUBLE_EQ(s.delay, 0.1);
  EXPECT_EQ(s.delay_max.ns(), 20'000);
  EXPECT_DOUBLE_EQ(s.reorder, 0.05);
  EXPECT_DOUBLE_EQ(s.stall, 0.001);
  EXPECT_EQ(s.stall_window.ns(), 50'000);
  EXPECT_EQ(s.rto_base.ns(), 150'000);
  EXPECT_EQ(s.seed, 42u);
}

TEST(FaultSpec, DurationSuffixes) {
  EXPECT_EQ(FaultSpec::parse("rto=250").rto_base.ns(), 250);
  EXPECT_EQ(FaultSpec::parse("rto=250ns").rto_base.ns(), 250);
  EXPECT_EQ(FaultSpec::parse("rto=5us").rto_base.ns(), 5'000);
  EXPECT_EQ(FaultSpec::parse("rto=2ms").rto_base.ns(), 2'000'000);
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("drop="), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("drop=0.1:10us"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("rto=10xs"), std::invalid_argument);
}

TEST(FaultSpec, DisabledByDefaultAndInert) {
  const FaultSpec s;
  EXPECT_FALSE(s.enabled());
  ClusterConfig cfg;
  cfg.nranks = 2;
  Cluster c(cfg);
  EXPECT_EQ(c.network().faults(), nullptr);
}

TEST(FaultSpec, EnvVarEnablesFaults) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  ::setenv("MPIOFF_FAULTS", "drop=0.01,seed=5", 1);
  ClusterConfig cfg;
  cfg.nranks = 2;
  Cluster c(cfg);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  ::unsetenv("MPIOFF_FAULTS");
  ASSERT_NE(c.network().faults(), nullptr);
  EXPECT_DOUBLE_EQ(c.network().faults()->spec().drop, 0.01);
  EXPECT_EQ(c.network().faults()->spec().seed, 5u);
}

// ---------------------------------------------------------- determinism ----

TEST(FaultPlan, SameSeedSameScheduleAndResults) {
  FaultSpec s = FaultSpec::parse("drop=0.05,dup=0.03,corrupt=0.01,seed=11");
  const SoakResult a = run_soak(Approach::kBaseline, s);
  const SoakResult b = run_soak(Approach::kBaseline, s);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.dup_drops, b.dup_drops);
  EXPECT_EQ(a.injected_drops, b.injected_drops);
}

// ------------------------------------------------------------- the soak ----

class FaultSoak
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {};

TEST_P(FaultSoak, AllProxiesBitIdenticalToFaultFreeRun) {
  const auto [seed, mix] = GetParam();
  FaultSpec faults = FaultSpec::parse(mix);
  faults.seed = seed;

  // Fault-free reference: what MPI semantics say the workload must produce.
  const SoakResult ref = run_soak(Approach::kBaseline, FaultSpec{});
  EXPECT_EQ(ref.retransmits, 0u);

  for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                     Approach::kCommSelf, Approach::kOffload}) {
    SCOPED_TRACE(core::approach_name(a));
    const SoakResult got = run_soak(a, faults);
    // Bit-wise payload equality + identical statuses + identical collective
    // results, per rank, no matter what the wire did.
    EXPECT_EQ(got.outcomes, ref.outcomes);
    if (faults.drop > 0) {
      EXPECT_GT(got.injected_drops, 0u);
      EXPECT_GT(got.retransmits, 0u);  // recovery actually happened
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMixes, FaultSoak,
    ::testing::Combine(
        ::testing::Values<std::uint64_t>(1, 2),
        ::testing::Values("drop=0.03", "drop=0.02,dup=0.03",
                          "corrupt=0.02,reorder=0.1,delay=0.3:15us",
                          "drop=0.02,dup=0.02,corrupt=0.01,reorder=0.05,"
                          "stall=0.01:40us")));

// ------------------------------------------------------- matching layer ----

TEST(FaultMatching, DupAndReorderNeverDoubleMatch) {
  // A duplicate eager frame that reached the matching engine twice would
  // steal a second posted recv (two recvs with the same payload, and a later
  // sender message left unexpected). The NIC-level dedup must prevent it.
  FaultSpec faults = FaultSpec::parse("dup=0.3,reorder=0.25,delay=0.5:10us,seed=3");
  constexpr int kN = 24;
  constexpr std::size_t kBytes = 1 << 10;
  ClusterConfig cfg;
  cfg.nranks = 2;
  cfg.profile.faults = faults;
  cfg.deadline = sim::Time::from_sec(600);
  Cluster c(cfg);
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      std::vector<std::vector<char>> bufs(kN, std::vector<char>(kBytes));
      std::vector<Request> reqs;
      reqs.reserve(kN);
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(rc.irecv(bufs[static_cast<std::size_t>(i)].data(),
                                kBytes, Datatype::kByte, 1, 5, kCommWorld));
      }
      rc.waitall(reqs);
      // Same tag ⇒ non-overtaking: recv i must hold message i, exactly once.
      for (int i = 0; i < kN; ++i) {
        for (std::size_t b = 0; b < kBytes; ++b) {
          ASSERT_EQ(bufs[static_cast<std::size_t>(i)][b],
                    static_cast<char>('A' + i % 26))
              << "recv " << i << " byte " << b;
        }
      }
      EXPECT_EQ(rc.matching().unexpected_count(), 0u);
      EXPECT_EQ(rc.matching().posted_count(), 0u);
    } else {
      std::vector<char> buf(kBytes);
      for (int i = 0; i < kN; ++i) {
        std::memset(buf.data(), 'A' + i % 26, kBytes);
        rc.send(buf.data(), kBytes, Datatype::kByte, 0, 5, kCommWorld);
      }
    }
    rc.barrier(kCommWorld);
  });
  // The wire really was hostile (otherwise this test proves nothing).
  ASSERT_NE(c.network().faults(), nullptr);
  EXPECT_GT(c.network().faults()->stats().duplicated, 0u);
  EXPECT_GT(c.rank(0).rel_stats().dup_drops + c.rank(0).rel_stats().ooo_drops,
            0u);
}

// ------------------------------------------------------------- watchdog ----

TEST(OffloadWatchdog, FlagsRequestsStuckBeyondBudget) {
  ClusterConfig cfg;
  cfg.nranks = 2;
  cfg.profile.offload_watchdog_budget = sim::Time::from_ms(1);
  cfg.deadline = sim::Time::from_sec(30);
  Cluster c(cfg);
  std::uint64_t flags = 0;
  c.run([&](RankCtx& rc) {
    core::OffloadProxy p(rc);
    p.start_engine();
    if (rc.rank() == 0) {
      int got = -1;
      PReq r = p.irecv(&got, 1, Datatype::kInt, 1, 0);
      p.wait(r);
      EXPECT_EQ(got, 7);
      flags = p.channel().stats().watchdog_flags;
    } else {
      compute(sim::Time::from_ms(5));  // 5x the budget before sending
      const int v = 7;
      p.send(&v, 1, Datatype::kInt, 0, 0);
    }
    p.barrier();
    p.stop();
  });
  EXPECT_GE(flags, 1u);
}

TEST(OffloadWatchdog, ZeroBudgetDisables) {
  ClusterConfig cfg;
  cfg.nranks = 2;
  cfg.profile.offload_watchdog_budget = sim::Time::zero();
  cfg.deadline = sim::Time::from_sec(30);
  Cluster c(cfg);
  c.run([&](RankCtx& rc) {
    core::OffloadProxy p(rc);
    p.start_engine();
    if (rc.rank() == 0) {
      int got = -1;
      PReq r = p.irecv(&got, 1, Datatype::kInt, 1, 0);
      p.wait(r);
      EXPECT_EQ(p.channel().stats().watchdog_flags, 0u);
    } else {
      compute(sim::Time::from_ms(5));
      const int v = 1;
      p.send(&v, 1, Datatype::kInt, 0, 0);
    }
    p.barrier();
    p.stop();
  });
}
