// Continuation subsystem: then()/when_all chaining across all four proxies,
// the engine-run completion path (inline, deferred, engine-posted
// follow-ups), wait-API edge cases, and the chained QCD/FFT phases'
// bit-identical digests (clean and under injected wire faults).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/fft/distributed_fft.hpp"
#include "apps/qcd/dslash.hpp"
#include "core/proxy.hpp"
#include "mpi/cluster.hpp"
#include "mpi/continuation.hpp"
#include "sim/rng.hpp"

using namespace smpi;
using core::Approach;
using core::PReq;

namespace {

ClusterConfig cfg_for(Approach a, int n) {
  ClusterConfig c;
  c.nranks = n;
  c.thread_level = core::required_thread_level(a);
  c.deadline = sim::Time::from_sec(60);
  return c;
}

ClusterConfig faulty_cfg_for(Approach a, int n) {
  ClusterConfig c = cfg_for(a, n);
  c.deadline = sim::Time::from_sec(600);
  c.profile.faults.on = true;
  c.profile.faults.drop = 0.02;
  c.profile.faults.dup = 0.01;
  c.profile.faults.seed = 7;
  return c;
}

}  // namespace

class ContMatrix : public ::testing::TestWithParam<Approach> {};

TEST_P(ContMatrix, ThenRunsExactlyOnceWithPayloadVisible) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<double> rbuf(256), sbuf(256, me + 1.0);
    int runs = 0;
    cont::Event done;
    cont::irecv(*p, rbuf.data(), rbuf.size(), Datatype::kDouble, peer, 0)
        .then([&](const Status& st) {
          ++runs;
          // Payload must be visible before the callback runs.
          EXPECT_DOUBLE_EQ(rbuf[0], peer + 1.0);
          EXPECT_DOUBLE_EQ(rbuf[255], peer + 1.0);
          EXPECT_EQ(st.bytes, rbuf.size() * sizeof(double));
          done.set();
        });
    PReq s = p->isend(sbuf.data(), sbuf.size(), Datatype::kDouble, peer, 0);
    compute(sim::Time::from_us(50));
    done.wait(*p);
    p->wait(s);
    EXPECT_EQ(runs, 1);
    p->barrier();
    p->stop();
  });
}

TEST_P(ContMatrix, ChainedCallbacksPostFollowUpsWithoutAppThreadMpi) {
  // A 3-hop dependency graph per rank: recv -> (callback posts send) ->
  // recv ... The application thread posts only the first hop, then sleeps
  // on the tail event; every follow-up posting happens in the proxy's
  // completion context.
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), peer = 1 - me;
    constexpr int kHops = 3;
    // Per-hop buffers: hop h's isend may still be in flight when hop h+1 is
    // posted from its recv callback.
    std::vector<std::vector<int>> rbuf(kHops, std::vector<int>(16));
    std::vector<std::vector<int>> sbuf(kHops, std::vector<int>(16));
    int hops_done = 0;
    cont::Event done;
    // Each hop's recv callback posts the next round — in the proxy's
    // completion context, never on this thread.
    std::function<void(int)> post_hop = [&](int hop) {
      const auto h = static_cast<std::size_t>(hop);
      for (std::size_t i = 0; i < sbuf[h].size(); ++i) {
        sbuf[h][i] = me * 1000 + hop * 100 + static_cast<int>(i);
      }
      cont::irecv(*p, rbuf[h].data(), rbuf[h].size(), Datatype::kInt, peer,
                  hop)
          .then([&, hop, h](const Status&) {
            EXPECT_EQ(rbuf[h][3], peer * 1000 + hop * 100 + 3);
            ++hops_done;
            if (hop + 1 < kHops) {
              post_hop(hop + 1);
            } else {
              done.set();
            }
          });
      cont::isend(*p, sbuf[h].data(), sbuf[h].size(), Datatype::kInt, peer,
                  hop)
          .then([](const Status&) {});
    };
    post_hop(0);
    compute(sim::Time::from_us(20));
    done.wait(*p);
    EXPECT_EQ(hops_done, kHops);
    p->barrier();
    p->stop();
  });
}

TEST_P(ContMatrix, WhenAllRunsEachHookThenFinalExactlyOnce) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<float> r0(64), r1(64), s0(64, 1.0F), s1(64, 2.0F);
    std::vector<PReq> reqs(4);
    reqs[0] = p->irecv(r0.data(), r0.size(), Datatype::kFloat, peer, 0);
    reqs[1] = p->irecv(r1.data(), r1.size(), Datatype::kFloat, peer, 1);
    reqs[2] = p->isend(s0.data(), s0.size(), Datatype::kFloat, peer, 0);
    reqs[3] = p->isend(s1.data(), s1.size(), Datatype::kFloat, peer, 1);
    std::vector<int> each_seen(4, 0);
    int finals = 0;
    cont::Event done;
    cont::when_all(*p, reqs,
                   [&](std::size_t i, const Status&) { ++each_seen[i]; })
        .then([&](const Status&) {
          ++finals;
          done.set();
        });
    // when_all consumed every handle.
    for (const PReq& r : reqs) EXPECT_TRUE(r.is_null());
    done.wait(*p);
    EXPECT_EQ(finals, 1);
    for (int n : each_seen) EXPECT_EQ(n, 1);
    EXPECT_FLOAT_EQ(r0[0], 1.0F);
    EXPECT_FLOAT_EQ(r1[0], 2.0F);
    p->barrier();
    p->stop();
  });
}

TEST_P(ContMatrix, AttachToCompletedRequestRunsInline) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<char> rbuf(32), sbuf(32, static_cast<char>('a' + me));
    PReq rr = p->irecv(rbuf.data(), rbuf.size(), Datatype::kByte, peer, 0);
    p->send(sbuf.data(), sbuf.size(), Datatype::kByte, peer, 0);
    // Drive the rank past the delivery: a barrier completes only after all
    // traffic flushed, so rr is done by now (but never waited).
    p->barrier();
    compute(sim::Time::from_us(5));
    p->progress_hint();
    bool ran = false;
    p->attach_continuation(rr, [&](const Status& st) {
      ran = true;
      EXPECT_EQ(st.bytes, rbuf.size());
      EXPECT_EQ(rbuf[0], static_cast<char>('a' + peer));
    });
    // Already-complete request: the callback ran inline, before we touched
    // the proxy again.
    EXPECT_TRUE(ran);
    EXPECT_TRUE(rr.is_null());
    p->barrier();
    p->stop();
  });
}

TEST_P(ContMatrix, NullAndReleasedHandlesRunInline) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 1));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    // Attach on a never-posted (null) handle: inline, empty Status.
    PReq null_req;
    bool ran = false;
    p->attach_continuation(null_req, [&](const Status& st) {
      ran = true;
      EXPECT_EQ(st.bytes, 0u);
    });
    EXPECT_TRUE(ran);
    // when_all over a span of released handles: final runs inline.
    std::vector<PReq> nulls(3);
    int finals = 0;
    cont::when_all(*p, nulls).then([&](const Status&) { ++finals; });
    EXPECT_EQ(finals, 1);
    // when_all over an empty span too.
    std::vector<PReq> empty;
    cont::when_all(*p, empty).then([&](const Status&) { ++finals; });
    EXPECT_EQ(finals, 2);
    p->stop();
  });
}

TEST_P(ContMatrix, EmptySpanWaitApisAreNoOps) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 1));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    std::vector<PReq> empty;
    p->waitall(empty);                    // MPI_Waitall(0, ...): no-op
    EXPECT_EQ(p->waitany(empty), -1);     // MPI_UNDEFINED
    EXPECT_TRUE(p->testall(empty));       // MPI_Testall(0, ...): flag = true
    // All-null spans behave the same (every member already released).
    std::vector<PReq> nulls(2);
    p->waitall(nulls);
    EXPECT_EQ(p->waitany(nulls), -1);
    EXPECT_TRUE(p->testall(nulls));
    p->stop();
  });
}

TEST_P(ContMatrix, PendingDestructorWaitsAndReleaseOptsOut) {
  const Approach a = GetParam();
  Cluster c(cfg_for(a, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<int> rbuf(8), sbuf(8, me);
    {
      // Unconsumed Pending: destructor waits (RAII) — no leak, no hang.
      cont::Pending pend =
          cont::irecv(*p, rbuf.data(), rbuf.size(), Datatype::kInt, peer, 0);
      PReq s = p->isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, 0);
      p->wait(s);
    }
    EXPECT_EQ(rbuf[0], peer);
    // release(): take the raw handle back and wait it manually.
    PReq rr = cont::irecv(*p, rbuf.data(), rbuf.size(), Datatype::kInt, peer,
                          1)
                  .release();
    EXPECT_FALSE(rr.is_null());
    PReq s = p->isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, 1);
    p->wait(rr);
    p->wait(s);
    p->barrier();
    p->stop();
  });
}

INSTANTIATE_TEST_SUITE_P(Approaches, ContMatrix,
                         ::testing::Values(Approach::kBaseline,
                                           Approach::kIprobe,
                                           Approach::kCommSelf,
                                           Approach::kOffload),
                         [](const ::testing::TestParamInfo<Approach>& info) {
                           std::string n = core::approach_name(info.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Offload-engine specifics: continuation stats, engine-context posting
// rules, and the bounded run queue.

TEST(ContOffload, EngineRunsCallbacksAndCountsThem) {
  Cluster c(cfg_for(Approach::kOffload, 2));
  c.run([&](RankCtx& rc) {
    core::OffloadProxy p(rc, {});
    p.start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<int> rbuf(16), sbuf(16, me);
    cont::Event done;
    cont::irecv(p, rbuf.data(), rbuf.size(), Datatype::kInt, peer, 0)
        .then([&](const Status&) { done.set(); });
    PReq s = p.isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, 0);
    compute(sim::Time::from_us(50));
    done.wait(p);
    p.wait(s);
    const core::OffloadStats& st = p.channel().stats();
    EXPECT_EQ(st.cont_armed, 1u);
    EXPECT_EQ(st.cont_executed, 1u);
    EXPECT_EQ(st.cont_inline, 0u);
    p.barrier();
    p.stop();
  });
}

TEST(ContOffload, CallbackPostsThroughEngineBypassingTheRing) {
  // The continuation posts its follow-up from the engine fiber: the submit
  // must bypass lanes/ring (cont_posts counts it) and never deadlock, even
  // with a 2-deep ring that the app thread keeps full.
  ClusterConfig cc = cfg_for(Approach::kOffload, 2);
  Cluster c(cc);
  c.run([&](RankCtx& rc) {
    core::ProxyOptions opts;
    opts.ring_capacity = 2;
    opts.lane_count = 0;  // everything through the tiny shared ring
    core::OffloadProxy p(rc, opts);
    p.start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<int> r1(8), r2(8), sbuf(8, me + 40);
    cont::Event done;
    cont::irecv(p, r1.data(), r1.size(), Datatype::kInt, peer, 1)
        .then([&](const Status&) {
          // Engine context: post the second round right here.
          cont::irecv(p, r2.data(), r2.size(), Datatype::kInt, peer, 2)
              .then([&](const Status&) { done.set(); });
          cont::isend(p, sbuf.data(), sbuf.size(), Datatype::kInt, peer, 2)
              .then([](const Status&) {});
        });
    PReq s = p.isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, 1);
    p.wait(s);
    done.wait(p);
    EXPECT_EQ(r2[0], peer + 40);
    EXPECT_GE(p.channel().stats().cont_posts, 2u);
    p.barrier();
    p.stop();
  });
}

TEST(ContOffload, BlockingWaitFromCallbackThrows) {
  Cluster c(cfg_for(Approach::kOffload, 2));
  c.run([&](RankCtx& rc) {
    core::OffloadProxy p(rc, {});
    p.start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<int> rbuf(8), rbuf2(8), sbuf(8, me);
    bool threw = false;
    cont::Event done;
    cont::irecv(p, rbuf.data(), rbuf.size(), Datatype::kInt, peer, 0)
        .then([&](const Status&) {
          PReq follow = p.isend(sbuf.data(), sbuf.size(), Datatype::kInt,
                                peer, 1);
          try {
            p.wait(follow);  // illegal: blocks the engine on itself
          } catch (const std::logic_error&) {
            threw = true;
            follow = PReq{};  // leak the slot knowingly; engine still runs
          }
          done.set();
        });
    PReq s = p.isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, 0);
    PReq r2 = p.irecv(rbuf2.data(), rbuf2.size(), Datatype::kInt, peer, 1);
    p.wait(s);
    done.wait(p);
    EXPECT_TRUE(threw);
    p.wait(r2);
    p.barrier();
    p.stop();
  });
}

TEST(ContOffload, RunBoundDefersBurstsToTheNextPass) {
  // cont_run=1 with a burst of completions: the engine may only run one
  // callback per pass; the rest are re-queued and counted as deferred.
  Cluster c(cfg_for(Approach::kOffload, 2));
  c.run([&](RankCtx& rc) {
    core::ProxyOptions opts;
    opts.cont_run_bound = 1;
    core::OffloadProxy p(rc, opts);
    p.start_engine();
    const int me = rc.rank(), peer = 1 - me;
    constexpr int kN = 8;
    std::vector<std::vector<int>> rbufs(kN, std::vector<int>(512));
    std::vector<int> sbuf(512, me);
    int runs = 0;
    cont::Event done;
    std::vector<PReq> sends(kN);
    for (int i = 0; i < kN; ++i) {
      cont::irecv(p, rbufs[static_cast<std::size_t>(i)].data(), 512,
                  Datatype::kInt, peer, i)
          .then([&](const Status&) {
            if (++runs == kN) done.set();
          });
      sends[static_cast<std::size_t>(i)] =
          p.isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, i);
    }
    p.waitall(sends);
    done.wait(p);
    EXPECT_EQ(runs, kN);
    EXPECT_EQ(p.channel().stats().cont_executed, static_cast<std::uint64_t>(kN));
    p.barrier();
    p.stop();
  });
}

// ---------------------------------------------------------------------------
// Application phases as continuation graphs: bit-identical to the polling
// versions, clean and under injected wire faults.

namespace {

void qcd_chained_vs_polling(const ClusterConfig& base, Approach a) {
  using namespace qcd;
  const Dims global{4, 4, 4, 8};
  const int nranks = 4;
  const Dims grid = choose_grid(nranks, global);
  SpinorField gpsi(global);
  GaugeField gu(global);
  fill_random_spinor(gpsi, 11);
  fill_random_gauge(gu, 22);
  ClusterConfig cc = base;
  cc.nranks = nranks;
  cc.thread_level = core::required_thread_level(a);
  Cluster cluster(cc);
  cluster.run([&](RankCtx& rc) {
    auto proxy = core::make_proxy(a, rc);
    proxy->start_engine();
    Decomposition dec(global, grid, rc.rank());
    DistributedDslash d(dec, *proxy);
    const Dims& ld = dec.local();
    Dims coord;
    for (coord[kT] = 0; coord[kT] < ld[kT]; ++coord[kT])
      for (coord[kZ] = 0; coord[kZ] < ld[kZ]; ++coord[kZ])
        for (coord[kY] = 0; coord[kY] < ld[kY]; ++coord[kY])
          for (coord[kX] = 0; coord[kX] < ld[kX]; ++coord[kX]) {
            const int li = site_index(coord, ld);
            const int gi = site_index(dec.to_global(coord), global);
            for (int i = 0; i < kSpinorFloats; ++i) {
              d.psi().site(li)[i] = gpsi.site(gi)[i];
            }
            for (int mu = 0; mu < 4; ++mu) {
              for (int i = 0; i < kLinkEntries; ++i) {
                d.gauge().link(li, mu)[i] = gu.link(gi, mu)[i];
              }
            }
          }
    SpinorField out_poll(dec.local()), out_chain(dec.local());
    d.apply(out_poll);
    proxy->barrier();
    d.apply_chained(out_chain);
    // Bit-identical, not approximately equal: the chained phase reorders
    // nothing (scratch accumulators fold in boundary()'s exact term order).
    EXPECT_EQ(std::memcmp(out_poll.v.data(), out_chain.v.data(),
                          out_poll.v.size() * sizeof(float)),
              0);
    proxy->barrier();
    proxy->stop();
  });
}

void fft_chained_vs_polling(const ClusterConfig& base, Approach a) {
  using namespace fft;
  const std::size_t rows = 16, cols = 16;
  const int nranks = 4;
  sim::Rng rng(42);
  std::vector<cd> x(rows * cols);
  for (auto& z : x) z = cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
  ClusterConfig cc = base;
  cc.nranks = nranks;
  cc.thread_level = core::required_thread_level(a);
  Cluster cluster(cc);
  cluster.run([&](RankCtx& rc) {
    auto proxy = core::make_proxy(a, rc);
    proxy->start_engine();
    DistributedFft dfft(rc, *proxy, rows, cols);
    const std::size_t loc = dfft.local();
    const auto lo = static_cast<std::ptrdiff_t>(
        loc * static_cast<std::size_t>(rc.rank()));
    std::vector<cd> poll(x.begin() + lo,
                         x.begin() + lo + static_cast<std::ptrdiff_t>(loc));
    std::vector<cd> chain = poll;
    dfft.forward(poll);
    proxy->barrier();
    dfft.forward_chained(chain);
    EXPECT_EQ(std::memcmp(poll.data(), chain.data(), loc * sizeof(cd)), 0);
    proxy->barrier();
    proxy->stop();
  });
}

}  // namespace

TEST(ContApps, QcdChainedHaloBitIdenticalToPolling) {
  for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
    qcd_chained_vs_polling(cfg_for(a, 4), a);
  }
}

TEST(ContApps, QcdChainedHaloBitIdenticalUnderFaults) {
  for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
    qcd_chained_vs_polling(faulty_cfg_for(a, 4), a);
  }
}

TEST(ContApps, FftChainedTransposeBitIdenticalToPolling) {
  for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
    fft_chained_vs_polling(cfg_for(a, 4), a);
  }
}

TEST(ContApps, FftChainedTransposeBitIdenticalUnderFaults) {
  for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
    fft_chained_vs_polling(faulty_cfg_for(a, 4), a);
  }
}
