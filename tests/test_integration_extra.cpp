// Cross-cutting integration tests: algorithm-path equivalences, concurrent
// offload submission, fabric taper, nested communicators, RMA interleaving.
#include <gtest/gtest.h>

#include <vector>

#include "core/proxy.hpp"
#include "machine/network.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using core::Approach;

namespace {
ClusterConfig cfg(int n) {
  ClusterConfig c;
  c.nranks = n;
  c.deadline = sim::Time::from_sec(120);
  return c;
}
}  // namespace

TEST(AllreduceAlgorithms, RabenseifnerAndRecursiveDoublingAgree) {
  // count % p == 0 and bytes >= 64K selects Rabenseifner; count % p != 0
  // falls back to recursive doubling. Same answer required.
  auto run = [](std::size_t count) {
    std::vector<double> result;
    Cluster c(cfg(4));
    c.run([&](RankCtx& rc) {
      std::vector<double> in(count), out(count);
      for (std::size_t i = 0; i < count; ++i) {
        in[i] = rc.rank() * 1000.0 + static_cast<double>(i % 97);
      }
      allreduce(in.data(), out.data(), count, Datatype::kDouble, Op::kSum);
      if (rc.rank() == 2) result = out;
    });
    return result;
  };
  const std::size_t big = 16384;       // divisible by 4, 128KB -> Rabenseifner
  const std::vector<double> a = run(big);
  const std::vector<double> b = run(big + 1);  // not divisible -> rec. doubling
  for (std::size_t i = 0; i < big; ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]) << "algorithms disagree at " << i;
  }
}

TEST(OffloadConcurrency, ManyFibersSubmitThroughOneRing) {
  // The paper's THREAD_MULTIPLE story: application threads submit MPI calls
  // concurrently through the lock-free ring while the library stays
  // FUNNELED. Every payload must arrive intact.
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    core::OffloadProxy p(rc);
    p.start_engine();
    const int me = rc.rank(), peer = 1 - me;
    constexpr int kThreads = 6, kMsgs = 20;
    auto done = std::make_shared<int>(0);
    auto worker = [&, done](int tid) {
      std::vector<int> rvals(kMsgs), svals(kMsgs);
      std::vector<core::PReq> reqs;
      for (int i = 0; i < kMsgs; ++i) {
        svals[static_cast<std::size_t>(i)] = me * 100000 + tid * 1000 + i;
        reqs.push_back(p.irecv(&rvals[static_cast<std::size_t>(i)], 1,
                               Datatype::kInt, peer, tid * 100 + i));
        reqs.push_back(p.isend(&svals[static_cast<std::size_t>(i)], 1,
                               Datatype::kInt, peer, tid * 100 + i));
      }
      p.waitall(reqs);
      for (int i = 0; i < kMsgs; ++i) {
        EXPECT_EQ(rvals[static_cast<std::size_t>(i)], peer * 100000 + tid * 1000 + i);
      }
      ++*done;
    };
    for (int t = 1; t < kThreads; ++t) {
      rc.cluster().spawn_on(me, "app" + std::to_string(t),
                            [worker, t]() { worker(t); });
    }
    worker(0);
    while (*done < kThreads) compute(sim::Time::from_us(5));
    p.barrier();
    p.stop();
  });
}

TEST(FabricTaper, SharedBisectionStretchesConcurrentFlows) {
  // With full bisection, 4 disjoint pair-flows finish in one wire time; with
  // a taper equal to one NIC, they serialize ~4x.
  auto run_with = [](double bisection) {
    machine::Profile prof = machine::xeon_fdr();
    prof.bisection_bytes_per_ns = bisection;
    ClusterConfig c;
    c.nranks = 8;
    c.profile = prof;
    c.deadline = sim::Time::from_sec(60);
    Cluster cluster(c);
    std::int64_t ns = 0;
    cluster.run([&](RankCtx& rc) {
      const std::size_t bytes = 3 << 20;
      const int me = rc.rank();
      const int peer = me ^ 1;
      barrier();
      const sim::Time t0 = sim::now();
      Request rr = irecv(nullptr, bytes, Datatype::kByte, peer, 0);
      Request rs = isend(nullptr, bytes, Datatype::kByte, peer, 0);
      wait(rr);
      wait(rs);
      barrier();
      if (me == 0) ns = (sim::now() - t0).ns();
    });
    return ns;
  };
  const std::int64_t full = run_with(0);
  const std::int64_t tapered = run_with(machine::xeon_fdr().net_bytes_per_ns);
  EXPECT_GT(tapered, full * 3);
}

TEST(Communicators, NestedSplitsFormAGrid) {
  // 2-D process grid: row comms and column comms from two splits; a row
  // allreduce followed by a column allreduce equals a global allreduce.
  Cluster c(cfg(8));  // 2 x 4 grid
  c.run([&](RankCtx& rc) {
    const int me = rank();
    const int row = me / 4, col = me % 4;
    Comm row_comm = comm_split(kCommWorld, row, col);
    Comm col_comm = comm_split(kCommWorld, col, row);
    double v = me + 1.0, row_sum = 0, total = 0;
    rc.allreduce(&v, &row_sum, 1, Datatype::kDouble, Op::kSum, row_comm);
    rc.allreduce(&row_sum, &total, 1, Datatype::kDouble, Op::kSum, col_comm);
    EXPECT_DOUBLE_EQ(total, 36.0);  // 1+..+8
  });
}

TEST(Rma, PutsToSameLocationApplyInOrder) {
  // In-order delivery per pair means the later put wins.
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    int slot = -1;
    Win w = rc.win_create(&slot, sizeof(int), kCommWorld);
    if (rc.rank() == 0) {
      // Origin buffers must stay valid until the fence (MPI RMA rule), so
      // each put gets its own slot of a long-lived array.
      int vals[10];
      for (int v = 0; v < 10; ++v) {
        vals[v] = v;
        rc.put(&vals[v], sizeof(int), 1, 0, w);
      }
      rc.win_fence(w);
    } else {
      rc.win_fence(w);
      EXPECT_EQ(slot, 9);
    }
  });
}

TEST(Rma, GetAfterPutRoundTrips) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    std::vector<long> window(4, rc.rank() * 10);
    Win w = rc.win_create(window.data(), window.size() * sizeof(long), kCommWorld);
    const int peer = 1 - rc.rank();
    const long mark = 777 + rc.rank();
    rc.put(&mark, sizeof(long), peer, 2 * sizeof(long), w);
    rc.win_fence(w);
    long read_back = -1;
    rc.get(&read_back, sizeof(long), peer, 2 * sizeof(long), w);
    rc.win_fence(w);
    // Peer's slot 2 holds MY mark... no: it holds the mark the peer received,
    // which is mine; reading it back returns my own mark.
    EXPECT_EQ(read_back, 777 + rc.rank());
    EXPECT_EQ(window[2], 777 + peer);
  });
}

TEST(Determinism, FullAppPipelineIsBitStable) {
  // The CNN perf harness (collectives, rendezvous, offload engine, barriers)
  // must produce the identical virtual duration on repeated runs.
  auto run = [] {
    Cluster c(cfg(4));
    std::int64_t t = 0;
    c.run([&](RankCtx& rc) {
      auto p = core::make_proxy(Approach::kOffload, rc);
      p->start_engine();
      std::vector<float> g(100000, 1.0f), out(100000);
      for (int i = 0; i < 3; ++i) {
        core::PReq r = p->iallreduce(g.data(), out.data(), g.size(),
                                     Datatype::kFloat, Op::kSum);
        compute(sim::Time::from_us(50));
        p->wait(r);
        p->barrier();
      }
      p->stop();
      if (rc.rank() == 0) t = sim::now().ns();
    });
    return t;
  };
  EXPECT_EQ(run(), run());
}
