// Tests for the extended MPI surface: sendrecv, waitsome/testall, scan.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

using namespace smpi;

namespace {
ClusterConfig cfg(int n) {
  ClusterConfig c;
  c.nranks = n;
  c.deadline = sim::Time::from_sec(60);
  return c;
}
}  // namespace

TEST(Sendrecv, RingShiftIsDeadlockFree) {
  Cluster c(cfg(5));
  c.run([&](RankCtx& rc) {
    const int me = rc.rank(), np = rc.nranks();
    // Everyone sends right, receives from left — simultaneously, with a
    // rendezvous-sized payload (blocking send/recv pairs would deadlock).
    const std::size_t n = 300000;
    std::vector<int> out(n / 4, me), in(n / 4, -1);
    Status st;
    rc.sendrecv(out.data(), n / 4, (me + 1) % np, 7, in.data(), n / 4,
                (me + np - 1) % np, 7, Datatype::kInt, kCommWorld, &st);
    EXPECT_EQ(in[0], (me + np - 1) % np);
    EXPECT_EQ(st.source, (me + np - 1) % np);
  });
}

TEST(Waitsome, ReturnsCompletedSubset) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      int a = -1, b = -1;
      std::vector<Request> rs{irecv(&a, 1, Datatype::kInt, 1, 1),
                              irecv(&b, 1, Datatype::kInt, 1, 2)};
      // Peer sends tag 1 at 10us and tag 2 at 500us: the first waitsome
      // should return only index 0.
      std::vector<int> done = rc.waitsome(rs);
      ASSERT_EQ(done.size(), 1u);
      EXPECT_EQ(done[0], 0);
      EXPECT_EQ(a, 11);
      EXPECT_TRUE(rs[0].is_null());
      done = rc.waitsome(rs);
      ASSERT_EQ(done.size(), 1u);
      EXPECT_EQ(done[0], 1);
      EXPECT_EQ(b, 22);
      // All null now: empty result, no blocking.
      EXPECT_TRUE(rc.waitsome(rs).empty());
    } else {
      compute(sim::Time::from_us(10));
      int v = 11;
      send(&v, 1, Datatype::kInt, 0, 1);
      compute(sim::Time::from_us(500));
      v = 22;
      send(&v, 1, Datatype::kInt, 0, 2);
    }
  });
}

TEST(Waitsome, EmptySpanIsAFreeNoOp) {
  Cluster c(cfg(1));
  c.run([&](RankCtx& rc) {
    std::vector<Request> none;
    const std::int64_t before = sim::now().ns();
    EXPECT_TRUE(rc.waitsome(none).empty());
    EXPECT_EQ(sim::now().ns(), before);  // no MPI entry overhead charged
  });
}

TEST(Testany, EmptySpanIsAFreeNoOp) {
  Cluster c(cfg(1));
  c.run([&](RankCtx& rc) {
    std::vector<Request> none;
    int index = 123;
    const std::int64_t before = sim::now().ns();
    EXPECT_TRUE(rc.testany(none, &index));
    EXPECT_EQ(index, -1);                // MPI_UNDEFINED-style result
    EXPECT_EQ(sim::now().ns(), before);  // no MPI entry overhead charged
  });
}

TEST(Testall, AllOrNothing) {
  Cluster c(cfg(2));
  c.run([&](RankCtx& rc) {
    if (rc.rank() == 0) {
      int a = -1, b = -1;
      std::vector<Request> rs{irecv(&a, 1, Datatype::kInt, 1, 1),
                              irecv(&b, 1, Datatype::kInt, 1, 2)};
      EXPECT_FALSE(rc.testall(rs));   // nothing arrived yet
      EXPECT_FALSE(rs[0].is_null());  // not released on failure
      while (!rc.testall(rs)) compute(sim::Time::from_us(5));
      EXPECT_TRUE(rs[0].is_null());
      EXPECT_TRUE(rs[1].is_null());
      EXPECT_EQ(a + b, 3);
    } else {
      compute(sim::Time::from_us(20));
      int v = 1;
      send(&v, 1, Datatype::kInt, 0, 1);
      v = 2;
      send(&v, 1, Datatype::kInt, 0, 2);
    }
  });
}

class ScanRanks : public ::testing::TestWithParam<int> {};

TEST_P(ScanRanks, InclusivePrefixSum) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx& rc) {
    const int me = rank();
    std::vector<long> in(8), out(8, -1);
    for (int i = 0; i < 8; ++i) in[static_cast<std::size_t>(i)] = me * 8 + i;
    rc.scan(in.data(), out.data(), 8, Datatype::kLong, Op::kSum, kCommWorld);
    for (int i = 0; i < 8; ++i) {
      long want = 0;
      for (int r = 0; r <= me; ++r) want += r * 8 + i;
      EXPECT_EQ(out[static_cast<std::size_t>(i)], want) << "elem " << i;
    }
  });
}

TEST_P(ScanRanks, PrefixMax) {
  Cluster c(cfg(GetParam()));
  c.run([&](RankCtx& rc) {
    const int me = rank();
    const int v = (me * 37) % 13;
    int out = -1;
    rc.scan(&v, &out, 1, Datatype::kInt, Op::kMax, kCommWorld);
    int want = 0;
    for (int r = 0; r <= me; ++r) want = std::max(want, (r * 37) % 13);
    EXPECT_EQ(out, want);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, ScanRanks, ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(Scan, NonblockingOverlaps) {
  Cluster c(cfg(4));
  c.run([&](RankCtx& rc) {
    double v = rank() + 1.0, out = 0;
    Request r = rc.iscan(&v, &out, 1, Datatype::kDouble, Op::kSum, kCommWorld);
    compute(sim::Time::from_us(10));
    wait(r);
    double want = 0;
    for (int i = 0; i <= rank(); ++i) want += i + 1.0;
    EXPECT_DOUBLE_EQ(out, want);
  });
}
