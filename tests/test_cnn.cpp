// CNN correctness: finite-difference gradient checks, distributed-equals-
// serial training, perf-harness sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cnn/trainer.hpp"
#include "mpi/cluster.hpp"

using namespace cnn;
using core::Approach;

namespace {

smpi::ClusterConfig ccfg(int n) {
  smpi::ClusterConfig c;
  c.nranks = n;
  c.deadline = sim::Time::from_sec(120);
  return c;
}

/// Forward pass of the tiny serial net as a scalar loss function of a
/// perturbed parameter — used by the finite-difference checks.
float net_loss(Conv2d& conv, Linear& fc, const Tensor& x,
               const std::vector<float>& target) {
  Tensor c1 = conv.forward(x);
  Tensor r1 = relu_forward(c1);
  Tensor am;
  Tensor p1 = maxpool_forward(r1, &am);
  std::vector<float> pred = fc.forward(p1.v, x.n);
  return mse_loss(pred, target, nullptr);
}

}  // namespace

TEST(Layers, ConvGradientFiniteDifference) {
  Tensor x(2, 2, 6, 6);
  fill_random(x.v, 1, 1.0f);
  Conv2d conv(2, 3, 3);
  Linear fc(3 * 2 * 2, 2);
  std::vector<float> target(2 * 2);
  fill_random(target, 2, 1.0f);

  // Analytic gradients.
  conv.zero_grad();
  fc.zero_grad();
  Tensor c1 = conv.forward(x);
  Tensor r1 = relu_forward(c1);
  Tensor am;
  Tensor p1 = maxpool_forward(r1, &am);
  std::vector<float> pred = fc.forward(p1.v, x.n);
  std::vector<float> dpred;
  mse_loss(pred, target, &dpred);
  std::vector<float> dfeat = fc.backward(p1.v, dpred, x.n);
  Tensor dp1(p1.n, p1.c, p1.h, p1.w);
  dp1.v = dfeat;
  Tensor dr1 = maxpool_backward(r1, am, dp1);
  Tensor dc1 = relu_backward(c1, dr1);
  conv.backward(x, dc1);

  // Finite differences on a sample of conv weights and fc weights.
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < conv.weight.size(); i += 7) {
    const float w0 = conv.weight[i];
    conv.weight[i] = w0 + eps;
    const float lp = net_loss(conv, fc, x, target);
    conv.weight[i] = w0 - eps;
    const float lm = net_loss(conv, fc, x, target);
    conv.weight[i] = w0;
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(conv.wgrad[i], numeric, 2e-2f + 0.05f * std::abs(numeric))
        << "conv weight " << i;
  }
  for (std::size_t i = 0; i < fc.weight.size(); i += 5) {
    const float w0 = fc.weight[i];
    fc.weight[i] = w0 + eps;
    const float lp = net_loss(conv, fc, x, target);
    fc.weight[i] = w0 - eps;
    const float lm = net_loss(conv, fc, x, target);
    fc.weight[i] = w0;
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(fc.wgrad[i], numeric, 2e-2f + 0.05f * std::abs(numeric))
        << "fc weight " << i;
  }
}

TEST(Layers, PoolingSelectsMaxAndRoutesGradient) {
  Tensor x(1, 1, 2, 2);
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 0, 0, 1) = 5;
  x.at(0, 0, 1, 0) = 2;
  x.at(0, 0, 1, 1) = 3;
  Tensor am;
  Tensor y = maxpool_forward(x, &am);
  EXPECT_EQ(y.at(0, 0, 0, 0), 5);
  Tensor dy(1, 1, 1, 1);
  dy.at(0, 0, 0, 0) = 7;
  Tensor dx = maxpool_backward(x, am, dy);
  EXPECT_EQ(dx.at(0, 0, 0, 1), 7);
  EXPECT_EQ(dx.at(0, 0, 0, 0), 0);
}

TEST(Layers, ReluMasksNegatives) {
  Tensor x(1, 1, 2, 2);
  x.v = {-1, 2, -3, 4};
  Tensor y = relu_forward(x);
  EXPECT_EQ(y.v, (std::vector<float>{0, 2, 0, 4}));
  Tensor dy = x;
  dy.v = {10, 10, 10, 10};
  Tensor dx = relu_backward(x, dy);
  EXPECT_EQ(dx.v, (std::vector<float>{0, 10, 0, 10}));
}

class HybridRanks : public ::testing::TestWithParam<int> {};

TEST_P(HybridRanks, DistributedTrainingMatchesSerial) {
  const int nranks = GetParam();
  const int batch = 8, in_c = 1, h = 6, w = 6, conv_c = 2, hidden = 8, out = 4;

  Tensor images(batch, in_c, h, w);
  fill_random(images.v, 77, 1.0f);
  std::vector<float> targets(static_cast<std::size_t>(batch) * out);
  fill_random(targets, 88, 1.0f);

  // Serial reference: 3 SGD steps on the full batch.
  SerialTrainer serial(in_c, h, w, conv_c, hidden, out);
  std::vector<float> serial_losses;
  for (int s = 0; s < 3; ++s) {
    serial_losses.push_back(serial.train_step(images, targets, 0.05f));
  }

  std::vector<float> dist_losses;
  std::vector<float> final_conv_w;
  smpi::Cluster cluster(ccfg(nranks));
  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(Approach::kBaseline, rc);
    proxy->start_engine();
    DistributedTrainer trainer(rc, *proxy, in_c, h, w, conv_c, hidden, out);
    const int local_b = batch / nranks;
    Tensor shard(local_b, in_c, h, w);
    std::copy(images.v.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(rc.rank()) * shard.size()),
              images.v.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(rc.rank() + 1) * shard.size()),
              shard.v.begin());
    for (int s = 0; s < 3; ++s) {
      const float loss = trainer.train_step(shard, targets, batch, 0.05f);
      if (rc.rank() == 0) dist_losses.push_back(loss);
    }
    if (rc.rank() == 0) final_conv_w = trainer.conv().weight;
    proxy->barrier();
    proxy->stop();
  });

  ASSERT_EQ(dist_losses.size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_NEAR(dist_losses[static_cast<std::size_t>(s)],
                serial_losses[static_cast<std::size_t>(s)], 1e-4f)
        << "loss diverged at step " << s;
  }
  for (std::size_t i = 0; i < final_conv_w.size(); ++i) {
    EXPECT_NEAR(final_conv_w[i], serial.conv().weight[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, HybridRanks, ::testing::Values(1, 2, 4));

TEST(CnnPerf, HarnessRunsAndOffloadWinsAtScale) {
  CnnPerfConfig c;
  c.nodes = 16;
  c.iters = 2;
  c.warmup = 1;
  c.approach = Approach::kBaseline;
  const CnnPerfResult base = run_cnn_perf(c);
  c.approach = Approach::kOffload;
  const CnnPerfResult off = run_cnn_perf(c);
  EXPECT_GT(base.imgs_per_sec, 0);
  // Paper Fig. 14: at scale, offload beats baseline.
  EXPECT_GT(off.imgs_per_sec, base.imgs_per_sec);
}
