// Negative fixtures for the MPIOFF_SAN usage lint: each test runs a small
// cluster containing exactly one deliberate MPI-usage bug and asserts the
// sanitizer raises exactly the expected diagnostic (report-only mode, so
// the buggy run still completes). The final test runs a clean workload
// under fail:1 and asserts the sanitizer stays silent — the fixtures prove
// detection, the clean run proves the absence of false positives.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"
#include "mpi/continuation.hpp"
#include "san/san.hpp"

using namespace smpi;
using core::Approach;
using core::PReq;

#ifdef MPIOFFLOAD_NO_SAN
#define SAN_OR_SKIP() GTEST_SKIP() << "built with MPIOFFLOAD_ENABLE_SAN=OFF"
#else
#define SAN_OR_SKIP()
#endif

namespace {

// 2x the 128 KiB eager threshold: forces the rendezvous path, whose send
// buffers must stay byte-stable while inflight (eager sends are copied out
// at post time and are deliberately not checked).
constexpr std::size_t kRndvBytes = 256 * 1024;

ClusterConfig san_cfg(int n, const char* spec) {
  ClusterConfig c;
  c.nranks = n;
  c.deadline = sim::Time::from_sec(60);
  c.san_spec = spec;  // wins over the MPIOFF_SAN env, so these fixtures
                      // behave identically under the CI sanitizer job
  return c;
}

}  // namespace

TEST(SanNegative, WriteWhileInflightSendIsReported) {
  SAN_OR_SKIP();
  {
    Cluster c(san_cfg(2, "1,race:0"));
    c.run([&](RankCtx& rc) {
      if (rc.rank() == 0) {
        std::vector<char> buf(kRndvBytes, 'a');
        Request r = isend(buf.data(), buf.size(), Datatype::kByte, 1, 0);
        buf[0] = 'Z';  // BUG: the rendezvous buffer must stay stable
        wait(r);
      } else {
        std::vector<char> buf(kRndvBytes);
        recv(buf.data(), buf.size(), Datatype::kByte, 0, 0);
      }
    });
  }
  EXPECT_EQ(san::count("send-buffer-modified"), 1u);
  ASSERT_FALSE(san::reports().empty());
  EXPECT_NE(san::reports()[0].message.find("checksum"), std::string::npos);
}

TEST(SanNegative, ReadOfInflightRecvBufferIsReported) {
  SAN_OR_SKIP();
  {
    Cluster c(san_cfg(2, "1,race:0"));
    c.run([&](RankCtx& rc) {
      if (rc.rank() == 0) {
        std::vector<int> buf(16, -1);
        Request r = irecv(buf.data(), buf.size(), Datatype::kInt, 1, 0);
        // BUG: the sender posts at t=100us, so this reads an inflight
        // target. The annotation is how app code declares the access.
        san::check_read(buf.data(), sizeof(int), "fixture.early-read");
        wait(r);
      } else {
        compute(sim::Time::from_us(100));
        std::vector<int> buf(16, 7);
        send(buf.data(), buf.size(), Datatype::kInt, 0, 0);
      }
    });
  }
  EXPECT_EQ(san::count("read-inflight-recv"), 1u);
  ASSERT_FALSE(san::reports().empty());
  EXPECT_NE(san::reports()[0].message.find("fixture.early-read"),
            std::string::npos);
}

TEST(SanNegative, RequestLeakAtTeardownIsReported) {
  SAN_OR_SKIP();
  {
    Cluster c(san_cfg(2, "1,race:0"));
    c.run([&](RankCtx& rc) {
      if (rc.rank() == 0) {
        static std::vector<char> buf(kRndvBytes, 'b');  // outlives rank_main
        (void)isend(buf.data(), buf.size(), Datatype::kByte, 1, 0);
        // The barrier drives progress, so the rendezvous transfer itself
        // completes — but the BUG remains: rank_main returns without ever
        // waiting on the request, so its slot is still active at teardown.
        barrier();
      } else {
        std::vector<char> buf(kRndvBytes);
        recv(buf.data(), buf.size(), Datatype::kByte, 0, 0);
        barrier();
      }
    });
  }
  EXPECT_EQ(san::count("request-leak"), 1u);
  ASSERT_FALSE(san::reports().empty());
  EXPECT_NE(san::reports()[0].message.find("rank 0"), std::string::npos);
  EXPECT_NE(san::reports()[0].message.find("1 active request"),
            std::string::npos);
}

TEST(SanNegative, DoubleWaitOnReleasedHandleIsReported) {
  SAN_OR_SKIP();
  {
    Cluster c(san_cfg(2, "1,race:0"));
    c.run([&](RankCtx& rc) {
      if (rc.rank() == 0) {
        int v = 7;
        Request r = isend(&v, 1, Datatype::kInt, 1, 0);
        Request again = r;  // BUG: aliased handle survives the release
        wait(r);
        wait(again);  // stale: the slot went back to the pool at first wait
      } else {
        int got = 0;
        recv(&got, 1, Datatype::kInt, 0, 0);
        EXPECT_EQ(got, 7);
      }
    });
  }
  EXPECT_EQ(san::count("stale-request"), 1u);
  ASSERT_FALSE(san::reports().empty());
  EXPECT_NE(san::reports()[0].message.find("double wait/test"),
            std::string::npos);
}

TEST(SanNegative, BlockingWaitInEngineContextIsReported) {
  SAN_OR_SKIP();
  bool threw = false;
  {
    ClusterConfig cfg = san_cfg(2, "1,race:0");
    cfg.thread_level = core::required_thread_level(Approach::kOffload);
    Cluster c(cfg);
    c.run([&](RankCtx& rc) {
      core::OffloadProxy p(rc, {});
      p.start_engine();
      const int me = rc.rank(), peer = 1 - me;
      std::vector<int> rbuf(8), rbuf2(8), sbuf(8, me);
      cont::Event done;
      cont::irecv(p, rbuf.data(), rbuf.size(), Datatype::kInt, peer, 0)
          .then([&](const Status&) {
            PReq follow =
                p.isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, 1);
            try {
              p.wait(follow);  // BUG: blocks the offload engine on itself
            } catch (const std::logic_error&) {
              threw = true;
              follow = PReq{};  // leak the slot knowingly; engine still runs
            }
            done.set();
          });
      PReq s = p.isend(sbuf.data(), sbuf.size(), Datatype::kInt, peer, 0);
      PReq r2 = p.irecv(rbuf2.data(), rbuf2.size(), Datatype::kInt, peer, 1);
      p.wait(s);
      done.wait(p);
      p.wait(r2);
      p.barrier();
      p.stop();
    });
  }
  EXPECT_TRUE(threw);  // the call site still honors its logic_error contract
  EXPECT_GE(san::count("engine-block"), 1u);
}

TEST(SanNegative, CleanWorkloadProducesNoReports) {
  SAN_OR_SKIP();
  {
    // fail:1 — any diagnostic would throw out of run() and fail the test.
    Cluster c(san_cfg(4, "1,fail:1"));
    c.run([&](RankCtx& rc) {
      const int me = rc.rank(), np = rc.nranks();
      double v = me + 1.0, sum = 0;
      allreduce(&v, &sum, 1, Datatype::kDouble, Op::kSum);
      EXPECT_DOUBLE_EQ(sum, np * (np + 1) / 2.0);
      // Rendezvous ring shift with correct waits: registers and releases.
      std::vector<char> out(kRndvBytes, static_cast<char>('a' + me));
      std::vector<char> in(kRndvBytes);
      Request s = isend(out.data(), out.size(), Datatype::kByte, (me + 1) % np, 3);
      Request r = irecv(in.data(), in.size(), Datatype::kByte, (me + np - 1) % np, 3);
      wait(r);
      wait(s);
      EXPECT_EQ(in[0], static_cast<char>('a' + (me + np - 1) % np));
      barrier();
    });
  }
  EXPECT_TRUE(san::reports().empty());
  EXPECT_GT(san::stats().buffer_regs, 0u);  // the lint did watch the run
}
