// Hybrid-parallel CNN training example: real arithmetic on 4 ranks (data-
// parallel conv, model-parallel FC), demonstrating that the distributed
// trainer follows the serial one step for step, then a throughput comparison
// at Figure-14 scale.
//
//   $ ./examples/cnn_training
#include <cstdio>
#include <vector>

#include "apps/cnn/trainer.hpp"
#include "mpi/cluster.hpp"

using namespace cnn;
using core::Approach;

int main() {
  const int batch = 8, in_c = 1, h = 6, w = 6, conv_c = 2, hidden = 8, out = 4;
  Tensor images(batch, in_c, h, w);
  fill_random(images.v, 7, 1.0f);
  std::vector<float> targets(static_cast<std::size_t>(batch) * out);
  fill_random(targets, 8, 1.0f);

  SerialTrainer serial(in_c, h, w, conv_c, hidden, out);
  std::printf("step   serial-loss   distributed-loss (4 ranks)\n");
  std::vector<float> serial_losses;
  for (int s = 0; s < 5; ++s) serial_losses.push_back(serial.train_step(images, targets, 0.05f));

  smpi::ClusterConfig cfg;
  cfg.nranks = 4;
  smpi::Cluster cluster(cfg);
  std::vector<float> dist_losses;
  cluster.run([&](smpi::RankCtx& rc) {
    auto mpi = core::make_proxy(Approach::kOffload, rc);
    mpi->start_engine();
    DistributedTrainer trainer(rc, *mpi, in_c, h, w, conv_c, hidden, out);
    const int local_b = batch / rc.nranks();
    Tensor shard(local_b, in_c, h, w);
    std::copy(images.v.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(rc.rank()) * shard.size()),
              images.v.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(rc.rank() + 1) * shard.size()),
              shard.v.begin());
    for (int s = 0; s < 5; ++s) {
      const float loss = trainer.train_step(shard, targets, batch, 0.05f);
      if (rc.rank() == 0) dist_losses.push_back(loss);
    }
    mpi->barrier();
    mpi->stop();
  });
  for (int s = 0; s < 5; ++s) {
    std::printf("%4d   %11.6f   %11.6f\n", s,
                static_cast<double>(serial_losses[static_cast<std::size_t>(s)]),
                static_cast<double>(dist_losses[static_cast<std::size_t>(s)]));
  }

  std::printf("\nThroughput at scale (batch 256, 32 nodes):\n");
  for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
    CnnPerfConfig pc;
    pc.nodes = 32;
    pc.iters = 3;
    pc.approach = a;
    const CnnPerfResult r = run_cnn_perf(pc);
    std::printf("  %-9s %7.0f images/s\n", core::approach_name(a), r.imgs_per_sec);
  }
  return 0;
}
