// Distributed 1-D FFT example: runs the real-arithmetic 6-step transform
// (three all-to-alls) on 4 ranks, verifies against a naive DFT, then shows
// the SOI-style pipelined harness comparing baseline vs offload.
//
//   $ ./examples/pipeline_fft
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/fft/distributed_fft.hpp"
#include "mpi/cluster.hpp"
#include "sim/rng.hpp"

using namespace fft;
using core::Approach;

int main() {
  // ---- part 1: a real distributed transform, checked against the DFT ----
  const std::size_t rows = 32, cols = 32, n = rows * cols;
  std::vector<cd> signal(n);
  sim::Rng rng(2024);
  for (auto& z : signal) z = cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const std::vector<cd> reference = naive_dft(signal);

  double max_err = 0;
  smpi::ClusterConfig cfg;
  cfg.nranks = 4;
  smpi::Cluster cluster(cfg);
  cluster.run([&](smpi::RankCtx& rc) {
    auto mpi = core::make_proxy(Approach::kOffload, rc);
    mpi->start_engine();
    DistributedFft dfft(rc, *mpi, rows, cols);
    const std::size_t loc = dfft.local();
    std::vector<cd> block(
        signal.begin() + static_cast<std::ptrdiff_t>(loc * static_cast<std::size_t>(rc.rank())),
        signal.begin() + static_cast<std::ptrdiff_t>(loc * static_cast<std::size_t>(rc.rank() + 1)));
    dfft.forward(block);
    for (std::size_t i = 0; i < loc; ++i) {
      max_err = std::max(max_err,
                         std::abs(block[i] - reference[loc * static_cast<std::size_t>(rc.rank()) + i]));
    }
    mpi->barrier();
    mpi->stop();
  });
  std::printf("distributed FFT of %zu points on 4 ranks: max |err| vs DFT = %.2e\n",
              n, max_err);

  // ---- part 2: the SOI pipeline at paper scale (phantom traffic) ----
  std::printf("\nSOI-pipelined FFT, 2^26 points/node, 8 nodes:\n");
  for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
    FftPerfConfig pc;
    pc.nodes = 8;
    pc.points_per_node = 1u << 26;
    pc.iters = 2;
    pc.approach = a;
    const FftPerfResult r = run_fft_perf(pc);
    std::printf("  %-9s total %7.1f ms (post %6.3f ms, wait %6.1f ms)  %.1f GFLOPS\n",
                core::approach_name(a), r.total_ms, r.post_ms, r.wait_ms, r.gflops);
  }
  return 0;
}
