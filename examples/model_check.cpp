// CLI driver for the src/check/ model checker.
//
//   model_check <spec> [options]            explore a spec
//   model_check list                        list specs and mutation sites
//
//   <spec>      ring | pool | lane | handshake | cont | whenany | mring | sleep
//   --random            random exploration (default: exhaustive DFS)
//   --iters N           random-mode executions (default 2000)
//   --seed S            random-mode base seed (default 1)
//   --replay-seed S     replay exactly one random execution
//   --replay-trail T    replay one exhaustive execution, e.g. "3.0.1"
//   --preemptions N     exhaustive preemption bound (default 2)
//   --stale N           stale-read budget per thread/location (default 2)
//   --mutate SITE       weaken one site, e.g. "ring.seq:store:release"
//
// Typical workflow: a CI failure prints "[replay seed 1234]" — rerun with
//   model_check pool --random --replay-seed 1234
// to get the same interleaving trace deterministically.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/specs.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: model_check "
               "<ring|pool|lane|handshake|cont|whenany|mring|sleep|list> "
               "[--random] "
               "[--iters N] [--seed S]\n"
               "                   [--replay-seed S] [--replay-trail T] "
               "[--preemptions N] [--stale N]\n"
               "                   [--mutate loc:op:side]\n");
}

chk::Mutation parse_mutation(const std::string& s) {
  const std::size_t a = s.find(':');
  const std::size_t b = s.rfind(':');
  if (a == std::string::npos || b == a) {
    throw std::invalid_argument("--mutate expects loc:op:side");
  }
  chk::Mutation m;
  m.loc = s.substr(0, a);
  const std::string op = s.substr(a + 1, b - a - 1);
  const std::string side = s.substr(b + 1);
  if (op == "load") {
    m.op = chk::OpKind::kLoad;
  } else if (op == "store") {
    m.op = chk::OpKind::kStore;
  } else if (op == "rmw") {
    m.op = chk::OpKind::kRmw;
  } else {
    throw std::invalid_argument("mutation op must be load|store|rmw");
  }
  if (side == "acquire") {
    m.drop = chk::Side::kAcquire;
  } else if (side == "release") {
    m.drop = chk::Side::kRelease;
  } else {
    throw std::invalid_argument("mutation side must be acquire|release");
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string spec = argv[1];
  if (spec == "list") {
    std::printf(
        "specs: ring pool lane handshake cont whenany mring sleep pready\n\n"
        "mutation matrix:\n");
    for (const auto& mc : chk::specs::mutation_matrix()) {
      std::printf("  %-30s -> %s\n", mc.site.str().c_str(), mc.spec);
    }
    return 0;
  }

  chk::Options opt;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--random") {
      opt.mode = chk::Mode::kRandom;
    } else if (a == "--iters") {
      opt.iterations = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--replay-seed") {
      opt.mode = chk::Mode::kRandom;
      opt.seed = std::strtoull(next(), nullptr, 10);
      opt.iterations = 1;
    } else if (a == "--replay-trail") {
      opt.mode = chk::Mode::kExhaustive;
      opt.replay_trail = next();
    } else if (a == "--preemptions") {
      opt.preemption_bound = std::atoi(next());
    } else if (a == "--stale") {
      opt.stale_read_bound = std::atoi(next());
    } else if (a == "--mutate") {
      opt.mutation = parse_mutation(next());
    } else {
      usage();
      return 2;
    }
  }

  try {
    const chk::Result r = chk::specs::run_spec(spec, opt);
    if (opt.mutation.active()) {
      std::printf("mutation: %s\n", opt.mutation.str().c_str());
    }
    std::printf("%s\n", r.str().c_str());
    if (r.failed) {
      std::printf("\ninterleaving trace:\n%s", r.trace.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
