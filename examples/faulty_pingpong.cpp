// Ping-pong over a lossy wire: the same exchange run on a perfect fabric and
// on one that drops, duplicates, and corrupts frames, showing the software
// reliability sublayer repairing everything without changing a single
// received byte.
//
//   $ ./examples/faulty_pingpong
//   # or pick your own fault mix (same spec format as the profile field):
//   $ MPIOFF_FAULTS="drop=0.05,dup=0.02,corrupt=0.01,seed=9" ./examples/faulty_pingpong
//
// Two things to notice in the output:
//   * the payload digest is identical with and without faults — go-back-N
//     retransmission, duplicate suppression, and frame checksums preserve
//     MPI semantics bit for bit;
//   * the faulty run is slower, and the offload proxy loses less time than
//     the baseline: retransmission is *software* progress, and the offload
//     thread is always inside MPI to drive it, while the baseline only
//     repairs loss when the application happens to call into the library.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"
#include "util/env.hpp"

using core::Approach;

namespace {

std::uint64_t fnv1a(const std::vector<char>& v, std::uint64_t h) {
  for (char c : v) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct RunResult {
  double total_us = 0;
  std::uint64_t digest = 14695981039346656037ull;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_drops = 0;
  std::uint64_t corrupt_drops = 0;
};

RunResult pingpong(Approach a, const machine::FaultSpec& faults) {
  constexpr std::size_t kBytes = 32 << 10;
  constexpr int kIters = 16;
  smpi::ClusterConfig cfg;
  cfg.nranks = 2;
  cfg.profile.eager_threshold = 8 << 10;  // make the exchange use rendezvous
  cfg.profile.rndv_chunk_bytes = 8 << 10;
  cfg.profile.faults = faults;
  cfg.thread_level = core::required_thread_level(a);
  smpi::Cluster cluster(cfg);
  RunResult res;
  cluster.run([&](smpi::RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int peer = 1 - rc.rank();
    std::vector<char> buf(kBytes);
    const sim::Time t0 = sim::now();
    for (int i = 0; i < kIters; ++i) {
      if (rc.rank() == 0) {
        std::memset(buf.data(), 'a' + i % 26, kBytes);
        p->send(buf.data(), kBytes, smpi::Datatype::kByte, peer, i);
        p->recv(buf.data(), kBytes, smpi::Datatype::kByte, peer, i);
        res.digest = fnv1a(buf, res.digest);
      } else {
        p->recv(buf.data(), kBytes, smpi::Datatype::kByte, peer, i);
        // Echo back exactly what arrived: any wire corruption that slipped
        // through would show up in rank 0's digest.
        p->send(buf.data(), kBytes, smpi::Datatype::kByte, peer, i);
      }
    }
    p->barrier();
    if (rc.rank() == 0) res.total_us = (sim::now() - t0).us();
    p->stop();
  });
  for (int r = 0; r < cluster.nranks(); ++r) {
    const smpi::RelStats& s = cluster.rank(r).rel_stats();
    res.retransmits += s.retransmits;
    res.dup_drops += s.dup_drops;
    res.corrupt_drops += s.corrupt_drops;
  }
  return res;
}

}  // namespace

int main() {
  machine::FaultSpec faulty;
  if (const char* env = env_util::get("MPIOFF_FAULTS"); env != nullptr && *env != '\0') {
    faulty = machine::FaultSpec::parse(env);
    // Consume the variable: Cluster would otherwise apply it to the "clean"
    // reference runs too, and the comparison would be faulty vs faulty.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    ::unsetenv("MPIOFF_FAULTS");
  } else {
    faulty = machine::FaultSpec::parse("drop=0.05,dup=0.02,corrupt=0.01,seed=42");
  }

  std::printf("32K ping-pong x16, 2 ranks — perfect wire vs faulty wire\n\n");
  std::printf("%-10s %-8s %12s %10s %10s %10s  %s\n", "approach", "wire",
              "time(us)", "retrans", "dup-drop", "crc-drop", "digest");
  for (Approach a : {Approach::kBaseline, Approach::kOffload}) {
    const RunResult clean = pingpong(a, machine::FaultSpec{});
    const RunResult lossy = pingpong(a, faulty);
    std::printf("%-10s %-8s %12.2f %10llu %10llu %10llu  %016llx\n",
                core::approach_name(a), "clean", clean.total_us,
                static_cast<unsigned long long>(clean.retransmits),
                static_cast<unsigned long long>(clean.dup_drops),
                static_cast<unsigned long long>(clean.corrupt_drops),
                static_cast<unsigned long long>(clean.digest));
    std::printf("%-10s %-8s %12.2f %10llu %10llu %10llu  %016llx\n",
                core::approach_name(a), "faulty", lossy.total_us,
                static_cast<unsigned long long>(lossy.retransmits),
                static_cast<unsigned long long>(lossy.dup_drops),
                static_cast<unsigned long long>(lossy.corrupt_drops),
                static_cast<unsigned long long>(lossy.digest));
    if (clean.digest != lossy.digest) {
      std::printf("ERROR: faulty-wire digest differs from clean-wire digest\n");
      return 1;
    }
  }
  std::printf("\nDigests match: the reliability sublayer hid every fault.\n");
  return 0;
}
