// Quickstart: the offload library in ~60 lines.
//
// Spawns a 4-rank simulated cluster, starts the MPI offload infrastructure
// on each rank, and demonstrates the headline property: a large nonblocking
// exchange makes progress *during* computation, so the waits at the end are
// nearly free — without the application doing anything special.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;

int main() {
  ClusterConfig cfg;
  cfg.nranks = 4;
  Cluster cluster(cfg);

  cluster.run([](RankCtx& rc) {
    // One line to get the paper's infrastructure: a dedicated offload thread
    // plus the lock-free command queue, behind the same API as direct MPI.
    auto mpi = core::make_proxy(core::Approach::kOffload, rc);
    mpi->start_engine();

    const int me = rc.rank();
    const int right = (me + 1) % rc.nranks();
    const int left = (me + rc.nranks() - 1) % rc.nranks();

    const std::size_t n = 1 << 20;  // 1 MB: rendezvous territory
    std::vector<char> send_buf(n, static_cast<char>('A' + me));
    std::vector<char> recv_buf(n);

    // Post the nonblocking ring exchange; each call costs ~140 ns (it only
    // touches the command queue).
    core::PReq reqs[2];
    reqs[0] = mpi->irecv(recv_buf.data(), n, Datatype::kByte, left, 0);
    reqs[1] = mpi->isend(send_buf.data(), n, Datatype::kByte, right, 0);

    // Compute. The offload thread drives the rendezvous handshake and the
    // transfer concurrently.
    compute(sim::Time::from_ms(1));

    const sim::Time before_wait = sim::now();
    mpi->waitall(reqs);
    const double wait_us = (sim::now() - before_wait).us();

    // Sum the received payload through an offloaded collective.
    double local = static_cast<double>(recv_buf[0]);
    double sum = 0;
    mpi->allreduce(&local, &sum, 1, Datatype::kDouble, Op::kSum);

    if (me == 0) {
      std::printf("rank 0: got '%c' from rank %d; wait took %.2f us "
                  "(transfer ~175 us, fully overlapped)\n",
                  recv_buf[0], left, wait_us);
      std::printf("rank 0: allreduce of first bytes = %.0f\n", sum);
    }
    mpi->stop();
  });
  std::printf("done at simulated t=%s\n",
              sim::Time(cluster.engine().now().ns()).str().c_str());
  return 0;
}
