// The motivating example of the paper (Listing 1): a stencil computation
// with halo exchange, run under all four approaches. Shows how the same
// application code gets very different overlap depending on who drives MPI
// progress.
//
//   $ ./examples/stencil_halo_exchange
#include <cstdio>
#include <vector>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"

using namespace smpi;
using core::Approach;
using core::PReq;

namespace {

struct Phases {
  double post_us, compute_us, wait_us, total_us;
};

Phases run_stencil(Approach a) {
  ClusterConfig cfg;
  cfg.nranks = 8;
  cfg.thread_level = core::required_thread_level(a);
  Cluster cluster(cfg);
  Phases ph{};

  cluster.run([&](RankCtx& rc) {
    auto mpi = core::make_proxy(a, rc);
    mpi->start_engine();
    const int me = rc.rank(), np = rc.nranks();
    const int up = (me + 1) % np, dn = (me + np - 1) % np;
    const std::size_t halo = 512 * 1024;  // 512 KB faces (rendezvous)
    std::vector<double> top(halo / 8, me), bottom(halo / 8, -me);
    std::vector<double> from_up(halo / 8), from_dn(halo / 8);

    for (int iter = 0; iter < 5; ++iter) {
      mpi->barrier();
      const sim::Time t0 = sim::now();
      // Line 6 of Listing 1: master posts the boundary exchange.
      PReq reqs[4];
      reqs[0] = mpi->irecv(from_up.data(), halo / 8, Datatype::kDouble, up, 0);
      reqs[1] = mpi->irecv(from_dn.data(), halo / 8, Datatype::kDouble, dn, 1);
      reqs[2] = mpi->isend(bottom.data(), halo / 8, Datatype::kDouble, dn, 0);
      reqs[3] = mpi->isend(top.data(), halo / 8, Datatype::kDouble, up, 1);
      const sim::Time t1 = sim::now();
      // Lines 7-17: internal volume processing with PROGRESS insertions.
      for (int chunk = 0; chunk < 4; ++chunk) {
        compute(sim::Time::from_us(100));
        mpi->progress_hint();
      }
      const sim::Time t2 = sim::now();
      // Line 18: wait for the boundary exchange.
      mpi->waitall(reqs);
      const sim::Time t3 = sim::now();
      if (rc.rank() == 0 && iter == 4) {
        ph.post_us = (t1 - t0).us();
        ph.compute_us = (t2 - t1).us();
        ph.wait_us = (t3 - t2).us();
        ph.total_us = (t3 - t0).us();
      }
    }
    mpi->stop();
  });
  return ph;
}

}  // namespace

int main() {
  std::printf("Stencil halo exchange (8 ranks, 512 KB faces, 400 us of "
              "interior compute)\n\n");
  std::printf("%-10s %10s %12s %10s %10s\n", "approach", "post(us)",
              "compute(us)", "wait(us)", "total(us)");
  for (Approach a : {Approach::kBaseline, Approach::kIprobe,
                     Approach::kCommSelf, Approach::kOffload}) {
    const Phases ph = run_stencil(a);
    std::printf("%-10s %10.2f %12.2f %10.2f %10.2f\n", core::approach_name(a),
                ph.post_us, ph.compute_us, ph.wait_us, ph.total_us);
  }
  std::printf("\nThe offload approach posts in nanoseconds and finds the "
              "exchange already\ncomplete at the wait — the transfer ran "
              "during the compute phase.\n");
  return 0;
}
