// CollTuner — size x ranks -> collective-algorithm selection.
//
// Every collective builder asks the tuner which schedule to compile. The
// defaults come from machine::Profile (segment size, per-collective size
// thresholds); the MPIOFF_COLL environment spec (or ClusterConfig::coll_spec)
// overrides them per collective:
//
//   MPIOFF_COLL=allreduce:ring@65536,bcast:pipeline@131072,seg:32768,chains:8
//
// Each item is <collective>:<algorithm>[@<min_bytes>] — "from min_bytes
// upward, prefer this algorithm" (several rules per collective stack; the
// largest threshold not exceeding the message wins) — or one of the scalar
// knobs seg:<bytes> (segment size) and chains:<n> (max pipeline chains).
// Sizes accept k/m suffixes. A forced algorithm that is illegal for the
// operands (non-commutative op on a ring, recursive doubling on a non-power-
// of-two communicator) falls back to a legal default, and the schedule
// records the algorithm that actually ran — stats never report a forced
// choice that was not executed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "machine/profile.hpp"
#include "sim/time.hpp"

namespace smpi {

/// Which collective a schedule implements (indexes CollStats tables).
enum class CollectiveId : std::uint8_t {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kAlltoall,
  kAllgather,
  kGather,
  kScatter,
  kScan,
  kFence,
};
inline constexpr int kNumCollectiveIds = 10;

/// Algorithm inventory (DESIGN.md §12). kUnknown never reaches a schedule:
/// start_collective rejects it, which is what guarantees the [stats] trailer
/// always names a real algorithm.
enum class CollAlgo : std::uint8_t {
  kUnknown,
  kLinear,             ///< rooted star (gather/scatter, ordered reduce)
  kBinomial,           ///< binomial tree (bcast, reduce)
  kDissemination,      ///< ceil(log2 p) rounds (barrier, fence)
  kRecursiveDoubling,  ///< log2 p exchange+combine rounds (pow2 allreduce)
  kRabenseifner,       ///< halving reduce-scatter + doubling allgather
  kReduceBcast,        ///< reduce-to-0 then bcast (order-preserving allreduce)
  kRing,               ///< segmented ring reduce-scatter + allgather
  kPipeline,           ///< segmented (pipelined) binomial bcast
  kPostAll,            ///< every peer posted at once (eager alltoall/allgather)
  kPairwise,           ///< sequential pairwise exchange (rendezvous alltoall)
  kHillisSteele,       ///< inclusive-scan doubling
};
inline constexpr int kNumCollAlgos = 12;

const char* coll_name(CollectiveId c);
const char* coll_algo_name(CollAlgo a);

/// Per-rank selection/execution counters, surfaced by the benchlib [stats]
/// trailer and asserted by the conformance tests.
struct CollStats {
  std::uint64_t algo_count[kNumCollectiveIds][kNumCollAlgos] = {};
  std::uint64_t chunks = 0;       ///< internal stages completed
  sim::Time chunk_time;           ///< aggregate post->complete stage latency
  std::uint64_t doorbells_amortized = 0;  ///< stage sends batched on one doorbell
  [[nodiscard]] std::uint64_t count(CollectiveId c, CollAlgo a) const {
    return algo_count[static_cast<int>(c)][static_cast<int>(a)];
  }
};

class CollTuner {
 public:
  struct Rule {
    CollAlgo algo = CollAlgo::kUnknown;
    std::size_t min_bytes = 0;
  };

  /// Thresholds and segmentation from the machine profile, no overrides.
  static CollTuner defaults_for(const machine::Profile& p);
  /// Apply an MPIOFF_COLL-grammar spec on top of `base`. Throws
  /// std::invalid_argument (naming valid keys) on malformed input.
  static CollTuner parse(const std::string& spec, CollTuner base);
  /// defaults_for + the MPIOFF_COLL environment variable, if set.
  static CollTuner from_env(const machine::Profile& p);

  /// Pick the schedule for one collective instance. `bytes` is the tuning
  /// size (full vector for allreduce/bcast, total result for allgather, one
  /// block for alltoall), `count` the element count (Rabenseifner needs
  /// count % ranks == 0), `commutative` gates order-sensitive algorithms.
  /// Always returns an algorithm that is legal for the operands.
  [[nodiscard]] CollAlgo choose(CollectiveId c, std::size_t bytes,
                                std::size_t count, int ranks,
                                bool commutative) const;

  /// Segment size for chunked schedules (ring, pipeline).
  [[nodiscard]] std::size_t seg_bytes() const { return seg_bytes_; }
  /// Hard cap on concurrent chains per collective: a CNN-scale 100 MB
  /// allreduce must not explode into thousands of independent chains.
  [[nodiscard]] int max_chains() const { return max_chains_; }
  /// Chains for a `total_bytes` schedule: ceil(total/seg) clamped to
  /// [1, max_chains]; the effective segment grows instead of the chain count.
  [[nodiscard]] int chains_for(std::size_t total_bytes) const;

 private:
  [[nodiscard]] CollAlgo default_for(CollectiveId c, std::size_t bytes,
                                     std::size_t count, int ranks,
                                     bool commutative) const;
  /// Is `a` executable for these operands (legality, not profitability)?
  [[nodiscard]] static bool legal(CollectiveId c, CollAlgo a, std::size_t count,
                                  int ranks, bool commutative);

  std::vector<Rule> rules_[kNumCollectiveIds];  ///< sorted by min_bytes asc
  std::size_t seg_bytes_ = 64 * 1024;
  int max_chains_ = 4;
  // Default thresholds (copied out of the profile).
  std::size_t ring_allreduce_min_ = 128 * 1024;
  std::size_t ring_allgather_min_ = 128 * 1024;
  std::size_t pipeline_bcast_min_ = 256 * 1024;
  std::size_t rabenseifner_min_ = 64 * 1024;
  std::size_t eager_threshold_ = 128 * 1024;
};

}  // namespace smpi
