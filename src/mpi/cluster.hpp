// Cluster — spawns and runs a simulated MPI job.
//
// A Cluster owns the event engine, the network, and one RankCtx per rank. It
// spawns a "main thread" fiber per rank running the user-provided rank_main,
// exactly like mpirun launching N processes. Additional fibers (OpenMP-style
// workers, comm-self progress threads, the offload thread) are spawned onto
// a rank with spawn_on(); they inherit the rank's context so the smpi:: free
// functions resolve correctly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/network.hpp"
#include "machine/profile.hpp"
#include "mpi/rank_ctx.hpp"
#include "mpi/types.hpp"
#include "sim/engine.hpp"

namespace smpi {

struct ClusterConfig {
  int nranks = 2;
  machine::Profile profile = machine::xeon_fdr();
  ThreadLevel thread_level = ThreadLevel::kFunneled;
  /// Abort the run if the virtual clock passes this (deadlock guard).
  sim::Time deadline = sim::Time::from_sec(3600);
  /// Collective algorithm overrides in MPIOFF_COLL grammar (see
  /// mpi/coll_tuner.hpp). Empty -> the MPIOFF_COLL environment variable,
  /// which in turn falls back to the profile's thresholds.
  std::string coll_spec;
  /// Sanitizer spec in MPIOFF_SAN grammar (see san/san.hpp). Empty -> the
  /// MPIOFF_SAN environment variable; both empty -> sanitizer off.
  std::string san_spec;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] int nranks() const { return cfg_.nranks; }
  [[nodiscard]] const machine::Profile& profile() const { return cfg_.profile; }
  [[nodiscard]] const CollTuner& coll_tuner() const { return tuner_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] machine::Network& network() { return net_; }
  [[nodiscard]] RankCtx& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }

  /// Spawn an extra fiber bound to `rank`'s context (a "thread" of that rank).
  sim::Fiber& spawn_on(int rank, std::string name, std::function<void()> body);

  /// Run rank_main on every rank to completion. Throws on deadlock (fibers
  /// left unfinished when the event queue drains) or deadline overrun.
  /// Returns the final virtual time.
  sim::Time run(std::function<void(RankCtx&)> rank_main);

  /// The RankCtx bound to the calling fiber.
  static RankCtx& here();

 private:
  /// All ranks' reliability queues empty (end-of-run teardown condition).
  [[nodiscard]] bool all_rel_drained() const;

  ClusterConfig cfg_;
  CollTuner tuner_;
  sim::Engine engine_;
  machine::Network net_;
  std::vector<std::unique_ptr<RankCtx>> ranks_;
  bool san_session_ = false;  ///< this Cluster opened the sanitizer session
};

// ------------------------------------------------------------------------
// Free-function API: MPI-flavoured wrappers that resolve the calling
// fiber's RankCtx. Application and benchmark code is written against these.
// ------------------------------------------------------------------------

inline RankCtx& ctx() { return Cluster::here(); }

inline int rank(Comm c = kCommWorld) { return ctx().comms().get(c).my_rank; }
inline int size(Comm c = kCommWorld) { return ctx().comms().get(c).size(); }
inline sim::Time wtime() { return sim::now(); }

inline Request isend(const void* b, std::size_t n, Datatype dt, int dst, int tag,
                     Comm c = kCommWorld) {
  return ctx().isend(b, n, dt, dst, tag, c);
}
inline Request irecv(void* b, std::size_t n, Datatype dt, int src, int tag,
                     Comm c = kCommWorld) {
  return ctx().irecv(b, n, dt, src, tag, c);
}
inline void send(const void* b, std::size_t n, Datatype dt, int dst, int tag,
                 Comm c = kCommWorld) {
  ctx().send(b, n, dt, dst, tag, c);
}
inline void recv(void* b, std::size_t n, Datatype dt, int src, int tag,
                 Comm c = kCommWorld, Status* st = nullptr) {
  ctx().recv(b, n, dt, src, tag, c, st);
}
inline bool test(Request& r, Status* st = nullptr) { return ctx().test(r, st); }
inline void wait(Request& r, Status* st = nullptr) { ctx().wait(r, st); }
inline void waitall(std::span<Request> rs) { ctx().waitall(rs); }
inline int waitany(std::span<Request> rs, Status* st = nullptr) {
  return ctx().waitany(rs, st);
}
inline bool testany(std::span<Request> rs, int* idx, Status* st = nullptr) {
  return ctx().testany(rs, idx, st);
}
inline bool iprobe(int src, int tag, Comm c = kCommWorld, Status* st = nullptr) {
  return ctx().iprobe(src, tag, c, st);
}

inline void barrier(Comm c = kCommWorld) { ctx().barrier(c); }
inline Request ibarrier(Comm c = kCommWorld) { return ctx().ibarrier(c); }
inline void bcast(void* b, std::size_t n, Datatype dt, int root, Comm c = kCommWorld) {
  ctx().bcast(b, n, dt, root, c);
}
inline Request ibcast(void* b, std::size_t n, Datatype dt, int root,
                      Comm c = kCommWorld) {
  return ctx().ibcast(b, n, dt, root, c);
}
inline void reduce(const void* s, void* r, std::size_t n, Datatype dt, Op op,
                   int root, Comm c = kCommWorld) {
  ctx().reduce(s, r, n, dt, op, root, c);
}
inline void allreduce(const void* s, void* r, std::size_t n, Datatype dt, Op op,
                      Comm c = kCommWorld) {
  ctx().allreduce(s, r, n, dt, op, c);
}
inline Request iallreduce(const void* s, void* r, std::size_t n, Datatype dt,
                          Op op, Comm c = kCommWorld) {
  return ctx().iallreduce(s, r, n, dt, op, c);
}
inline void alltoall(const void* s, void* r, std::size_t n_per, Datatype dt,
                     Comm c = kCommWorld) {
  ctx().alltoall(s, r, n_per, dt, c);
}
inline Request ialltoall(const void* s, void* r, std::size_t n_per, Datatype dt,
                         Comm c = kCommWorld) {
  return ctx().ialltoall(s, r, n_per, dt, c);
}
inline void allgather(const void* s, void* r, std::size_t n_per, Datatype dt,
                      Comm c = kCommWorld) {
  ctx().allgather(s, r, n_per, dt, c);
}
inline Request iallgather(const void* s, void* r, std::size_t n_per, Datatype dt,
                          Comm c = kCommWorld) {
  return ctx().iallgather(s, r, n_per, dt, c);
}
inline void gather(const void* s, void* r, std::size_t n_per, Datatype dt,
                   int root, Comm c = kCommWorld) {
  ctx().gather(s, r, n_per, dt, root, c);
}
inline void scatter(const void* s, void* r, std::size_t n_per, Datatype dt,
                    int root, Comm c = kCommWorld) {
  ctx().scatter(s, r, n_per, dt, root, c);
}
inline void reduce_scatter_block(const void* s, void* r, std::size_t n_per,
                                 Datatype dt, Op op, Comm c = kCommWorld) {
  ctx().reduce_scatter_block(s, r, n_per, dt, op, c);
}
inline Comm comm_dup(Comm parent) { return ctx().comm_dup(parent); }
inline Comm comm_split(Comm parent, int color, int key) {
  return ctx().comm_split(parent, color, key);
}
inline void progress() { ctx().progress(); }

/// Model a computation phase: occupy this simulated thread for `t`.
inline void compute(sim::Time t) { sim::advance(t); }

}  // namespace smpi
