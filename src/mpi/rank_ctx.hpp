// RankCtx — one MPI rank's library state and entry points.
//
// Everything an MPI implementation keeps per process lives here: the
// communicator and request tables, the matching engine, the NIC inbox, the
// progress engine, and the THREAD_MULTIPLE global lock. All fibers belonging
// to a rank (its "OpenMP threads", a comm-self progress thread, an offload
// thread) share one RankCtx.
//
// Progress model (the crux of the reproduction): the network autonomously
// deposits arrivals into `inbox_` and flips DMA flags, but *software* actions
// — matching, eager copy-out, rendezvous handshakes, collective schedules,
// request completion — happen only inside progress_poll(), which runs only
// while some fiber is executing an MPI call. An MPI implementation with no
// thread inside it makes no progress; that is the asynchrony gap the paper's
// offload thread closes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "machine/network.hpp"
#include "machine/profile.hpp"
#include "mpi/coll_op.hpp"
#include "mpi/comm.hpp"
#include "mpi/matching.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "trace/counters.hpp"

namespace smpi {

class Cluster;

/// Counters exposed for tests and benchmark sanity checks.
struct RankStats {
  std::uint64_t calls = 0;            ///< library entries
  std::uint64_t progress_passes = 0;
  std::uint64_t eager_sends = 0;
  std::uint64_t rndv_sends = 0;
  std::uint64_t unexpected_hits = 0;  ///< receives satisfied from unexpected q
  sim::Time time_in_mpi;              ///< virtual time spent inside the library
};

/// Reliability-sublayer counters (all zero while faults are disabled).
struct RelStats {
  std::uint64_t frames_sent = 0;    ///< sequenced first transmissions
  std::uint64_t retransmits = 0;    ///< go-back-N re-injections (software)
  std::uint64_t acks_sent = 0;      ///< pure kWireAck frames (software)
  std::uint64_t dup_drops = 0;      ///< duplicates suppressed at the NIC
  std::uint64_t ooo_drops = 0;      ///< out-of-order frames dropped (go-back-N)
  std::uint64_t corrupt_drops = 0;  ///< frames failing the checksum
};

class RankCtx {
 public:
  RankCtx(Cluster& cluster, int rank, ThreadLevel level);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const;
  [[nodiscard]] ThreadLevel thread_level() const { return level_; }
  [[nodiscard]] const machine::Profile& profile() const;
  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] const RankStats& stats() const { return stats_; }
  [[nodiscard]] RankStats& stats() { return stats_; }
  [[nodiscard]] const CollStats& coll_stats() const { return coll_stats_; }
  /// Algorithm-selection table shared by every rank (owned by the Cluster).
  [[nodiscard]] const CollTuner& coll_tuner() const;

  CommTable& comms() { return comms_; }
  RequestTable& requests() { return reqs_; }
  MatchingEngine& matching() { return match_; }
  sim::Notifier& arrivals() { return arrivals_; }

  // ---------------- thread registry ----------------
  /// Stable small integer identifying the calling fiber within this rank.
  /// Slots are assigned at fiber spawn (Cluster::spawn_on calls
  /// register_thread) or lazily on first use; the offload channel keys its
  /// per-thread submission lanes off them.
  int thread_slot() {
    const sim::Fiber* f = sim::Engine::current()->current_fiber();
    return slot_for(f != nullptr ? f->id() : 0);
  }
  /// Pre-assign a slot to `f` (idempotent).
  void register_thread(const sim::Fiber& f) { slot_for(f.id()); }
  [[nodiscard]] int thread_slots() const {
    return static_cast<int>(fiber_slots_.size());
  }

  // ---------------- progress sharing ----------------
  /// Declare `f` a progress sharer: a fiber (an offload engine) that may
  /// enter the library concurrently with its siblings even below
  /// THREAD_MULTIPLE. For sharers, progress_poll runs single-flight — a
  /// sharer arriving while a pass is live skips it (the running pass does
  /// the same software work it would have) instead of tripping the
  /// reentrancy invariant. Unregistered fibers keep the strict guarantee:
  /// concurrent entry under non-MULTIPLE still throws.
  void register_progress_sharer(const sim::Fiber* f) {
    progress_sharers_.push_back(f);
  }
  void unregister_progress_sharer(const sim::Fiber* f) {
    auto it = std::find(progress_sharers_.begin(), progress_sharers_.end(), f);
    if (it != progress_sharers_.end()) progress_sharers_.erase(it);
  }

  // ---------------- point-to-point ----------------
  Request isend(const void* buf, std::size_t count, Datatype dt, int dst,
                int tag, Comm comm);
  Request irecv(void* buf, std::size_t count, Datatype dt, int src, int tag,
                Comm comm);
  void send(const void* buf, std::size_t count, Datatype dt, int dst, int tag,
            Comm comm);
  void recv(void* buf, std::size_t count, Datatype dt, int src, int tag,
            Comm comm, Status* st = nullptr);
  /// MPI_Sendrecv: simultaneous exchange (deadlock-free composite).
  void sendrecv(const void* sbuf, std::size_t scount, int dst, int stag,
                void* rbuf, std::size_t rcount, int src, int rtag, Datatype dt,
                Comm comm, Status* st = nullptr);

  // ---------------- persistent point-to-point ----------------
  // MPI_Send_init / MPI_Recv_init: capture the envelope once, replay it with
  // Start. A persistent request cycles inactive -> started -> complete ->
  // inactive; the table slot (and handle) survives until request_free. The
  // completion calls treat an inactive persistent request as trivially
  // complete, and they reset — never release — a completed one (public
  // wait/test preserve the caller's handle; the array calls null their span
  // entries, so keep your own copy, as the proxies do).
  Request send_init(const void* buf, std::size_t count, Datatype dt, int dst,
                    int tag, Comm comm);
  Request recv_init(void* buf, std::size_t count, Datatype dt, int src, int tag,
                    Comm comm);
  /// MPI_Start: re-post the captured envelope. Throws std::logic_error on a
  /// non-persistent handle or when the previous generation is still in
  /// flight (start-before-complete). Charges Profile::persist_start instead
  /// of the full call overhead — the envelope is prebuilt. Persistent sends
  /// are treated as registered buffers (the caller promises byte stability
  /// for the generation), so eager starts skip the CPU bounce-copy charge.
  void start(Request r);
  /// MPI_Startall; empty span is a no-op with no entry overhead.
  void startall(std::span<Request> rs);
  /// MPI_Request_free restricted to persistent requests: requires the
  /// request inactive (or complete), releases the table slot, nulls `r`.
  void request_free(Request& r);

  // ---------------- completion ----------------
  bool test(Request& r, Status* st = nullptr);
  void wait(Request& r, Status* st = nullptr);
  void waitall(std::span<Request> rs);
  int waitany(std::span<Request> rs, Status* st = nullptr);
  /// MPI_Testany: true if some active request completed (index via *index),
  /// also true with *index = -1 ("undefined") when no active requests exist.
  bool testany(std::span<Request> rs, int* index, Status* st = nullptr);
  /// MPI_Testall: true iff every active request has completed (all released).
  bool testall(std::span<Request> rs);
  /// MPI_Waitsome: blocks until >=1 active request completes; returns the
  /// indices completed this call (empty if none were active).
  std::vector<int> waitsome(std::span<Request> rs);
  bool iprobe(int src, int tag, Comm comm, Status* st = nullptr);
  void probe(int src, int tag, Comm comm, Status* st = nullptr);

  // ---------------- collectives ----------------
  void barrier(Comm comm);
  Request ibarrier(Comm comm);
  void bcast(void* buf, std::size_t count, Datatype dt, int root, Comm comm);
  Request ibcast(void* buf, std::size_t count, Datatype dt, int root, Comm comm);
  void reduce(const void* sbuf, void* rbuf, std::size_t count, Datatype dt,
              Op op, int root, Comm comm);
  Request ireduce(const void* sbuf, void* rbuf, std::size_t count, Datatype dt,
                  Op op, int root, Comm comm);
  void allreduce(const void* sbuf, void* rbuf, std::size_t count, Datatype dt,
                 Op op, Comm comm);
  Request iallreduce(const void* sbuf, void* rbuf, std::size_t count,
                     Datatype dt, Op op, Comm comm);
  void alltoall(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                Datatype dt, Comm comm);
  Request ialltoall(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                    Datatype dt, Comm comm);
  void allgather(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                 Datatype dt, Comm comm);
  Request iallgather(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                     Datatype dt, Comm comm);
  void gather(const void* sbuf, void* rbuf, std::size_t count_per_rank,
              Datatype dt, int root, Comm comm);
  Request igather(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                  Datatype dt, int root, Comm comm);
  void scatter(const void* sbuf, void* rbuf, std::size_t count_per_rank,
               Datatype dt, int root, Comm comm);
  Request iscatter(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                   Datatype dt, int root, Comm comm);
  void reduce_scatter_block(const void* sbuf, void* rbuf,
                            std::size_t count_per_rank, Datatype dt, Op op,
                            Comm comm);
  /// Inclusive prefix reduction (MPI_Scan), binomial up-phase per rank.
  void scan(const void* sbuf, void* rbuf, std::size_t count, Datatype dt,
            Op op, Comm comm);
  Request iscan(const void* sbuf, void* rbuf, std::size_t count, Datatype dt,
                Op op, Comm comm);

  // ---------------- one-sided (RMA) ----------------
  /// Collective over `comm`: expose [base, base+bytes) for remote access.
  Win win_create(void* base, std::size_t bytes, Comm comm);
  void win_free(Win w);
  /// Nonblocking one-sided write/read; completed by the next fence.
  void put(const void* origin, std::size_t bytes, int target_rank,
           std::size_t target_offset, Win w);
  void get(void* origin, std::size_t bytes, int target_rank,
           std::size_t target_offset, Win w);
  /// Fence: completes all locally-issued RMA and synchronizes the group.
  void win_fence(Win w);
  /// Nonblocking fence (an extension MPI lacks — the paper's Sec. 3.3
  /// caveat; having it lets the offload engine never block on a fence).
  Request ifence(Win w);

  // ---------------- communicator management ----------------
  Comm comm_dup(Comm parent);
  /// Collective over `parent` (exchanges colors/keys internally).
  Comm comm_split(Comm parent, int color, int key);
  void comm_free(Comm c);

  /// One locked pass of the progress engine (what MPI_Iprobe is typically
  /// used for by the "iprobe" approach).
  void progress();

  // ---------------- internal: called by the Cluster / network ----------------
  /// NIC delivery handler; runs in scheduler context.
  void deliver(machine::NetMessage&& m);

  /// All library-internal wire injection funnels through here. With faults
  /// enabled it stamps the reliability header (seq, piggybacked ack,
  /// checksum) and queues a retransmit copy; otherwise it is a plain
  /// Network::send. Safe from both fiber and scheduler context (never
  /// advances the clock).
  void net_send(machine::NetMessage&& m);

  [[nodiscard]] const RelStats& rel_stats() const { return rel_stats_; }

  /// True when no frame this rank sent is still awaiting an ack. Used by the
  /// cluster's end-of-run teardown: a rank may only stop entering MPI once
  /// every rank is drained, otherwise its software retransmit timers die
  /// with frames still lost on the wire.
  [[nodiscard]] bool rel_drained() const {
    for (const RelPeer& p : rel_) {
      if (!p.unacked.empty()) return false;
    }
    return true;
  }

 private:
  friend class MpiEntry;

  // Library-internal variants: no entry overhead/locking (already inside).
  Request isend_internal(const void* buf, std::size_t bytes, int dst_global,
                         std::uint32_t ctx, int tag, Comm comm);
  Request irecv_internal(void* buf, std::size_t bytes, int src_global,
                         std::uint32_t ctx, int tag, Comm comm);
  /// Post-into core shared by the one-shot and persistent paths: `r` is an
  /// allocated slot; fills transfer state and injects/posts. `registered`
  /// marks a byte-stable buffer (persistent send, collective stage) whose
  /// eager path skips the CPU bounce-copy charge.
  void post_send_into(RequestImpl& r, const void* buf, std::size_t bytes,
                      int dst_global, std::uint32_t ctx, int tag, Comm comm,
                      bool registered);
  void post_recv_into(RequestImpl& r, void* buf, std::size_t bytes,
                      int src_global, std::uint32_t ctx, int tag, Comm comm);
  /// Start one persistent request (no entry overhead; caller is inside).
  void start_internal(RequestImpl& r);
  bool test_internal(RequestImpl& r, Status* st);
  void release_if_complete(Request& r, Status* st);

  /// Software progress pass: drain the inbox, advance rendezvous transfers
  /// and collective schedules. Charges CPU time on the calling fiber.
  void progress_poll();
  void process_inbox_message(machine::NetMessage&& m);
  void handle_eager(machine::NetMessage&& m);
  void handle_rts(machine::NetMessage&& m);
  void handle_cts(machine::NetMessage&& m);
  void send_cts(std::uint64_t sender_req, int sender_global, RequestImpl& rreq);
  void start_rndv_chunk(RequestImpl& sreq);
  void advance_collectives();
  void post_coll_stage(RequestImpl& creq, std::size_t chain_idx);
  Request start_collective(std::unique_ptr<CollOp> op);

  /// Blocking-wait kernel shared by recv/wait/waitall/...: loops
  /// progress→check→sleep with the thread-level-appropriate lock cycling.
  /// `done` is evaluated after each progress pass.
  void wait_until(class MpiEntry& entry, const std::function<bool()>& done);

  [[nodiscard]] bool software_work_pending() const;

  /// True when the calling fiber is a registered progress sharer.
  [[nodiscard]] bool progress_sharer_current() const {
    const sim::Fiber* f = sim::Engine::current()->current_fiber();
    return f != nullptr &&
           std::find(progress_sharers_.begin(), progress_sharers_.end(), f) !=
               progress_sharers_.end();
  }
  /// True when the calling fiber is the one running the live progress pass.
  /// The collective-posting flags below (coll_posting_, coll_doorbell_*) are
  /// pass-local state: with several engine fibers interleaving inside the
  /// library, a send issued by a sibling while a pass posts a collective
  /// stage must NOT inherit the pass's batching/registered-buffer treatment.
  [[nodiscard]] bool progress_pass_current() const {
    return in_progress_ &&
           in_progress_fiber_ == sim::Engine::current()->current_fiber();
  }

  /// Slot lookup/assignment for the thread registry. Linear scan: a rank
  /// hosts a handful of fibers, and the offload channel caches the result.
  int slot_for(std::uint64_t fiber_id) {
    for (std::size_t i = 0; i < fiber_slots_.size(); ++i) {
      if (fiber_slots_[i] == fiber_id) return static_cast<int>(i);
    }
    fiber_slots_.push_back(fiber_id);
    return static_cast<int>(fiber_slots_.size() - 1);
  }

  Cluster& cluster_;
  int rank_;
  ThreadLevel level_;

  CommTable comms_;
  RequestTable reqs_;
  MatchingEngine match_;

  sim::Mutex big_lock_;
  sim::Notifier arrivals_;
  std::vector<std::uint64_t> fiber_slots_;  ///< slot index -> fiber id
  std::deque<machine::NetMessage> inbox_;
  std::vector<RequestImpl*> pending_rndv_send_;
  std::vector<RequestImpl*> pending_rndv_recv_;
  std::vector<RequestImpl*> active_colls_;

  struct WinInfo {
    void* base = nullptr;
    std::size_t bytes = 0;
    Comm comm{};
    std::uint32_t id = 0;        ///< globally consistent window id
    std::int64_t outstanding = 0;  ///< my un-acked puts/gets
    bool freed = false;
  };
  std::vector<WinInfo> wins_;
  /// Hardware-side RMA delivery; true if the message was RMA traffic.
  bool rma_deliver(machine::NetMessage& m);
  bool in_progress_ = false;  ///< reentrancy guard (debug invariant)
  /// The fiber running the live progress pass (meaningful while
  /// in_progress_); identifies the pass owner for progress_pass_current().
  const sim::Fiber* in_progress_fiber_ = nullptr;
  /// Fibers allowed to skip (rather than fail) a concurrent progress pass.
  std::vector<const sim::Fiber*> progress_sharers_;
  int blocked_in_mpi_ = 0;    ///< threads currently inside a blocking wait

  // ------- reliability sublayer (active only when profile faults are on) ----
  /// Receive side (rx_*) runs in hardware context at the NIC — checksum,
  /// in-order filter, dedup — like a NIC's CRC/RC logic. Send-side recovery
  /// (retransmit timers, pure-ack flush) is software: rel_poll() runs only
  /// from progress_poll().
  struct RelPeer {
    std::uint64_t tx_next_seq = 1;
    std::size_t tx_unacked_bytes = 0;  ///< wire bytes awaiting ack
    struct Unacked {
      machine::NetMessage frame;  ///< byte-identical retransmit copy
      sim::Time deadline;
      int attempts = 0;
    };
    std::deque<Unacked> unacked;
    std::uint64_t rx_expected = 1;  ///< next in-order seq accepted from peer
    bool ack_owed = false;          ///< peer needs our cursor (data or re-ack)
  };
  /// Hardware rx filter; false = frame consumed/dropped by reliability.
  bool rel_admit(machine::NetMessage& m);
  /// Software: fire expired retransmit timers, flush owed pure acks.
  void rel_poll();
  [[nodiscard]] sim::Time rel_rto(std::size_t backlog_bytes, int attempts) const;

  bool rel_on_ = false;
  std::vector<RelPeer> rel_;
  RelStats rel_stats_;
  trace::Counter c_retransmits_;
  trace::Counter c_dup_drops_;

  // ------- collective-stage doorbell batching (profile.coll_batch_doorbells) -
  /// While a stage's sends are being posted, isend_internal charges the NIC
  /// doorbell only for the first descriptor; the rest ride the same doorbell
  /// (the post_batch amortization applied to schedule-internal p2p).
  bool coll_doorbell_batch_ = false;
  bool coll_doorbell_rung_ = false;
  /// Set while post_coll_stage posts: stage traffic uses schedule-owned
  /// registered buffers, so eager sends/recvs skip the CPU bounce copy.
  bool coll_posting_ = false;

  RankStats stats_;
  CollStats coll_stats_;
};

}  // namespace smpi
