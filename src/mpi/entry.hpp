// MpiEntry — RAII guard for one entry into the MPI library.
//
// Charges the per-call software overhead and, under THREAD_MULTIPLE, the
// extra atomic/locking cost plus the global lock itself. Blocking waits must
// release the lock while sleeping (unlock_for_sleep/relock), which is how
// real big-lock MPIs let a progress thread run while another thread blocks.
//
// When tracing is enabled the entry also emits the library-call span (named
// by the caller) and the big-lock wait/hold spans, which is how lock
// contention under THREAD_MULTIPLE (paper Fig. 6) becomes visible on a
// Perfetto timeline.
#pragma once

#include "machine/profile.hpp"
#include "mpi/rank_ctx.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "trace/scope.hpp"

namespace smpi {

class MpiEntry {
 public:
  /// `call_cost` overrides the fixed entry overhead (mpi_call_overhead) for
  /// thin entry points that skip argument validation and envelope setup —
  /// Start on a persistent request replays a prebuilt envelope, so it pays
  /// Profile::persist_start instead. Locking behavior is unchanged.
  MpiEntry(RankCtx& rc, bool internal, const char* call_name = nullptr,
           const sim::Time* call_cost = nullptr)
      : rc_(rc), internal_(internal) {
    if (internal_) return;
    const auto& p = rc_.profile();
    entered_at_ = sim::now();
    ++rc_.stats().calls;
    if (trace::Tracer::on() && call_name != nullptr) {
      call_span_ = true;
      begin_span(call_name);
    }
    sim::advance(call_cost != nullptr ? *call_cost : p.mpi_call_overhead);
    if (rc_.thread_level() == ThreadLevel::kMultiple) {
      const bool contended = trace::Tracer::on() && rc_.big_lock_.locked();
      if (contended) begin_span("lock:wait");
      rc_.big_lock_.lock();  // Mutex charges big_lock_acquire itself
      if (contended) end_span();
      open_hold_span();
      locked_ = true;
      // The extra THREAD_MULTIPLE bookkeeping happens inside the critical
      // section in big-lock MPIs — this is what makes concurrent calls
      // serialize so badly (paper Fig. 6).
      sim::advance(p.thread_multiple_entry);
    }
  }

  ~MpiEntry() {
    if (internal_) return;
    if (locked_) {
      close_hold_span();
      rc_.big_lock_.unlock();
    }
    rc_.stats().time_in_mpi += sim::now() - entered_at_;
    if (call_span_) end_span();
  }

  MpiEntry(const MpiEntry&) = delete;
  MpiEntry& operator=(const MpiEntry&) = delete;

  void unlock_for_sleep() {
    if (locked_) {
      close_hold_span();
      rc_.big_lock_.unlock();
      locked_ = false;
    }
  }
  void relock() {
    if (!internal_ && rc_.thread_level() == ThreadLevel::kMultiple && !locked_) {
      rc_.big_lock_.lock();
      open_hold_span();
      locked_ = true;
    }
  }
  [[nodiscard]] bool holds_lock() const { return locked_; }
  [[nodiscard]] bool internal() const { return internal_; }

 private:
  void begin_span(const char* name) {
    trace::Tracer::instance().begin(trace::ambient_ts(), rc_.rank(),
                                    trace::ambient_tid(), name, "mpi");
  }
  void end_span() {
    trace::Tracer::instance().end(trace::ambient_ts(), rc_.rank(),
                                  trace::ambient_tid());
  }
  void open_hold_span() {
    if (!trace::Tracer::on()) return;
    hold_span_ = true;
    begin_span("lock:hold");
  }
  void close_hold_span() {
    if (!hold_span_) return;
    hold_span_ = false;
    end_span();
  }

  RankCtx& rc_;
  bool internal_;
  bool locked_ = false;
  bool call_span_ = false;
  bool hold_span_ = false;
  sim::Time entered_at_;
};

}  // namespace smpi
