// MpiEntry — RAII guard for one entry into the MPI library.
//
// Charges the per-call software overhead and, under THREAD_MULTIPLE, the
// extra atomic/locking cost plus the global lock itself. Blocking waits must
// release the lock while sleeping (unlock_for_sleep/relock), which is how
// real big-lock MPIs let a progress thread run while another thread blocks.
#pragma once

#include "machine/profile.hpp"
#include "mpi/rank_ctx.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace smpi {

class MpiEntry {
 public:
  MpiEntry(RankCtx& rc, bool internal) : rc_(rc), internal_(internal) {
    if (internal_) return;
    const auto& p = rc_.profile();
    entered_at_ = sim::now();
    ++rc_.stats().calls;
    sim::advance(p.mpi_call_overhead);
    if (rc_.thread_level() == ThreadLevel::kMultiple) {
      rc_.big_lock_.lock();  // Mutex charges big_lock_acquire itself
      locked_ = true;
      // The extra THREAD_MULTIPLE bookkeeping happens inside the critical
      // section in big-lock MPIs — this is what makes concurrent calls
      // serialize so badly (paper Fig. 6).
      sim::advance(p.thread_multiple_entry);
    }
  }

  ~MpiEntry() {
    if (internal_) return;
    if (locked_) rc_.big_lock_.unlock();
    rc_.stats().time_in_mpi += sim::now() - entered_at_;
  }

  MpiEntry(const MpiEntry&) = delete;
  MpiEntry& operator=(const MpiEntry&) = delete;

  void unlock_for_sleep() {
    if (locked_) {
      rc_.big_lock_.unlock();
      locked_ = false;
    }
  }
  void relock() {
    if (!internal_ && rc_.thread_level() == ThreadLevel::kMultiple && !locked_) {
      rc_.big_lock_.lock();
      locked_ = true;
    }
  }
  [[nodiscard]] bool holds_lock() const { return locked_; }
  [[nodiscard]] bool internal() const { return internal_; }

 private:
  RankCtx& rc_;
  bool internal_;
  bool locked_ = false;
  sim::Time entered_at_;
};

}  // namespace smpi
