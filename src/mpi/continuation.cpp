#include "mpi/continuation.hpp"

#include <memory>
#include <stdexcept>

namespace cont {

Join::Join(core::Proxy& p, std::span<core::PReq> rs, EachFn each)
    : proxy_(&p), each_(std::move(each)) {
  reqs_.reserve(rs.size());
  for (core::PReq& r : rs) {
    reqs_.push_back(std::exchange(r, core::PReq{}));
  }
}

Join when_all(core::Proxy& p, std::span<core::PReq> rs, EachFn each) {
  return Join(p, rs, std::move(each));
}

void Join::then(ContFn fin) && {
  std::size_t active = 0;
  for (const core::PReq& r : reqs_) {
    if (!r.is_null()) ++active;
  }
  if (active == 0) {
    // Empty group or every handle already released: complete by contract,
    // inline on the attaching thread (mirrors attach on a null handle).
    fin(smpi::Status{});
    return;
  }
  // Shared countdown. A plain size_t: all attached callbacks run on this
  // rank's cooperatively scheduled fibers (see header).
  struct State {
    std::size_t remaining;
    ContFn fin;
  };
  auto st = std::make_shared<State>(State{active, std::move(fin)});
  const EachFn each = std::move(each_);
  for (std::size_t i = 0; i < reqs_.size(); ++i) {
    if (reqs_[i].is_null()) continue;
    proxy_->attach_continuation(
        reqs_[i], [st, each, i](const smpi::Status& s) {
          if (each) each(i, s);
          if (--st->remaining == 0) st->fin(s);
        });
  }
}

AnyJoin::AnyJoin(core::Proxy& p, std::span<core::PReq> rs,
                 std::span<core::PersistentReq> gens)
    : proxy_(&p) {
  reqs_.reserve(rs.size());
  for (core::PReq& r : rs) {
    reqs_.push_back(std::exchange(r, core::PReq{}));
  }
  gens_.assign(gens.begin(), gens.end());
}

AnyJoin when_any(core::Proxy& p, std::span<core::PReq> rs,
                 std::span<core::PersistentReq> gens) {
  return AnyJoin(p, rs, gens);
}

void AnyJoin::then(AnyFn win) && {
  std::move(*this).then(std::move(win), ContFn{});
}

void AnyJoin::then(AnyFn win, ContFn settled) && {
  const std::size_t members = reqs_.size() + gens_.size();
  if (members == 0) {
    throw std::invalid_argument("cont::when_any: empty group has no winner");
  }
  // The claim word is the only cross-context state; the countdown is a plain
  // size_t because all attached callbacks run on this rank's cooperatively
  // scheduled fibers (see header). A real pthread port must make `remaining`
  // atomic (the claim already is).
  struct State {
    core::AnyClaim claim;
    std::size_t remaining;
    AnyFn win;
    ContFn settled;
  };
  auto st = std::make_shared<State>();
  st->remaining = members;
  st->win = std::move(win);
  st->settled = std::move(settled);
  auto member_done = [st](std::size_t i, const smpi::Status& s) {
    // Status publication happens-before the claim through the claim CAS
    // itself (the completer's attach path already published `s` to this
    // callback); the CAS decides the winner exactly once.
    if (st->claim.claim(static_cast<std::uint32_t>(i))) st->win(i, s);
    if (--st->remaining == 0 && st->settled) st->settled(s);
  };
  for (std::size_t i = 0; i < reqs_.size(); ++i) {
    // Null / already-completed handles run the callback inline from
    // attach_continuation — they race for the win right here at arm time.
    proxy_->attach_continuation(reqs_[i], [member_done, i](
                                              const smpi::Status& s) {
      member_done(i, s);
    });
  }
  for (std::size_t j = 0; j < gens_.size(); ++j) {
    const std::size_t i = reqs_.size() + j;
    proxy_->attach_continuation(gens_[j], [member_done, i](
                                              const smpi::Status& s) {
      member_done(i, s);
    });
  }
}

}  // namespace cont
