#include "mpi/continuation.hpp"

#include <memory>

namespace cont {

Join::Join(core::Proxy& p, std::span<core::PReq> rs, EachFn each)
    : proxy_(&p), each_(std::move(each)) {
  reqs_.reserve(rs.size());
  for (core::PReq& r : rs) {
    reqs_.push_back(std::exchange(r, core::PReq{}));
  }
}

Join when_all(core::Proxy& p, std::span<core::PReq> rs, EachFn each) {
  return Join(p, rs, std::move(each));
}

void Join::then(ContFn fin) && {
  std::size_t active = 0;
  for (const core::PReq& r : reqs_) {
    if (!r.is_null()) ++active;
  }
  if (active == 0) {
    // Empty group or every handle already released: complete by contract,
    // inline on the attaching thread (mirrors attach on a null handle).
    fin(smpi::Status{});
    return;
  }
  // Shared countdown. A plain size_t: all attached callbacks run on this
  // rank's cooperatively scheduled fibers (see header).
  struct State {
    std::size_t remaining;
    ContFn fin;
  };
  auto st = std::make_shared<State>(State{active, std::move(fin)});
  const EachFn each = std::move(each_);
  for (std::size_t i = 0; i < reqs_.size(); ++i) {
    if (reqs_[i].is_null()) continue;
    proxy_->attach_continuation(
        reqs_[i], [st, each, i](const smpi::Status& s) {
          if (each) each(i, s);
          if (--st->remaining == 0) st->fin(s);
        });
  }
}

}  // namespace cont
