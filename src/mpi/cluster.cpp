#include "mpi/cluster.hpp"

#include <stdexcept>

#include "trace/tracer.hpp"

namespace smpi {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), engine_(), net_(engine_, cfg_.profile, cfg_.nranks) {
  if (cfg_.nranks < 1) throw std::invalid_argument("nranks must be >= 1");
  ranks_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r) {
    ranks_.push_back(std::make_unique<RankCtx>(*this, r, cfg_.thread_level));
    RankCtx* rc = ranks_.back().get();
    net_.set_delivery_handler(r, [rc](machine::NetMessage&& m) {
      rc->deliver(std::move(m));
    });
    trace::Tracer::instance().name_process(r, "rank " + std::to_string(r));
  }
}

Cluster::~Cluster() = default;

sim::Fiber& Cluster::spawn_on(int rank, std::string name,
                              std::function<void()> body) {
  RankCtx* rc = ranks_.at(static_cast<std::size_t>(rank)).get();
  sim::Fiber& f = engine_.spawn(std::move(name), std::move(body));
  f.set_user_data(rc);
  f.set_trace_pid(rank);
  trace::Tracer::instance().name_thread(rank, f.id() + 1, f.name());
  return f;
}

sim::Time Cluster::run(std::function<void(RankCtx&)> rank_main) {
  for (int r = 0; r < cfg_.nranks; ++r) {
    RankCtx* rc = ranks_[static_cast<std::size_t>(r)].get();
    spawn_on(r, "rank" + std::to_string(r) + ".main",
             [rc, rank_main]() { rank_main(*rc); });
  }
  const sim::Time end = engine_.run_until(cfg_.deadline);
  if (!engine_.all_fibers_done()) {
    std::string who;
    for (const auto& n : engine_.unfinished_fibers()) {
      who += ' ';
      who += n;
    }
    throw std::runtime_error(
        (end >= cfg_.deadline ? "simulation deadline exceeded; stuck fibers:"
                              : "simulated deadlock; stuck fibers:") +
        who);
  }
  return end;
}

RankCtx& Cluster::here() {
  sim::Engine* e = sim::Engine::current();
  if (e == nullptr || e->current_fiber() == nullptr) {
    throw std::logic_error("smpi call outside a cluster fiber");
  }
  void* p = e->current_fiber()->user_data();
  if (p == nullptr) {
    throw std::logic_error("calling fiber is not bound to an MPI rank");
  }
  return *static_cast<RankCtx*>(p);
}

}  // namespace smpi
