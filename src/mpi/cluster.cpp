#include "mpi/cluster.hpp"

#include <stdexcept>

#include "san/san.hpp"
#include "trace/tracer.hpp"
#include "util/env.hpp"

namespace smpi {

namespace {
/// If the config does not already enable faults, honor the MPIOFF_FAULTS
/// environment spec (e.g. "drop=0.02,seed=7") so any benchmark or example
/// can be run under faults without a rebuild.
ClusterConfig with_env_faults(ClusterConfig cfg) {
  if (!cfg.profile.faults.enabled()) {
    const std::string spec = env_util::get_or("MPIOFF_FAULTS");
    if (!spec.empty()) cfg.profile.faults = machine::FaultSpec::parse(spec);
  }
  return cfg;
}

/// Algorithm selection: an explicit ClusterConfig::coll_spec wins; otherwise
/// the MPIOFF_COLL environment spec applies on top of the profile defaults.
CollTuner make_tuner(const ClusterConfig& cfg) {
  if (!cfg.coll_spec.empty()) {
    return CollTuner::parse(cfg.coll_spec, CollTuner::defaults_for(cfg.profile));
  }
  return CollTuner::from_env(cfg.profile);
}
}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(with_env_faults(std::move(cfg))),
      tuner_(make_tuner(cfg_)),
      engine_(),
      net_(engine_, cfg_.profile, cfg_.nranks) {
  if (cfg_.nranks < 1) throw std::invalid_argument("nranks must be >= 1");
  ranks_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r) {
    ranks_.push_back(std::make_unique<RankCtx>(*this, r, cfg_.thread_level));
    RankCtx* rc = ranks_.back().get();
    net_.set_delivery_handler(r, [rc](machine::NetMessage&& m) {
      rc->deliver(std::move(m));
    });
    trace::Tracer::instance().name_process(r, "rank " + std::to_string(r));
  }
  // An explicit san_spec wins; otherwise the MPIOFF_SAN environment spec.
  // Only the Cluster that actually opened the session closes it, so nested
  // Clusters (rare, but tests do it) share one session cleanly.
  san_session_ = san::begin_session(
      cfg_.san_spec.empty() ? env_util::get_or("MPIOFF_SAN") : cfg_.san_spec);
}

Cluster::~Cluster() {
  if (san_session_) san::end_session();
}

bool Cluster::all_rel_drained() const {
  for (const auto& r : ranks_) {
    if (!r->rel_drained()) return false;
  }
  return true;
}

sim::Fiber& Cluster::spawn_on(int rank, std::string name,
                              std::function<void()> body) {
  RankCtx* rc = ranks_.at(static_cast<std::size_t>(rank)).get();
  sim::Fiber& f = engine_.spawn(std::move(name), std::move(body));
  f.set_user_data(rc);
  f.set_trace_pid(rank);
  // Register the fiber in the rank's thread registry at spawn so per-thread
  // offload submission lanes are bound deterministically, in spawn order.
  rc->register_thread(f);
  trace::Tracer::instance().name_thread(rank, f.id() + 1, f.name());
  return f;
}

sim::Time Cluster::run(std::function<void(RankCtx&)> rank_main) {
  for (int r = 0; r < cfg_.nranks; ++r) {
    RankCtx* rc = ranks_[static_cast<std::size_t>(r)].get();
    spawn_on(r, "rank" + std::to_string(r) + ".main", [this, rc, rank_main]() {
      rank_main(*rc);
      // Reliability teardown: retransmission is software, so a rank that
      // stops entering MPI stops repairing its own lost frames. Stay in the
      // library until EVERY rank's unacked queues are empty — the global sum
      // of unacked frames is non-increasing once rank_mains have returned,
      // so observing global drain once is a safe exit condition.
      if (cfg_.profile.faults.enabled()) {
        while (!all_rel_drained()) {
          rc->progress();
          const std::uint64_t seen = rc->arrivals().count();
          rc->arrivals().wait_beyond_timeout(seen,
                                             cfg_.profile.faults.rto_base);
        }
      }
    });
  }
  const sim::Time end = engine_.run_until(cfg_.deadline);
  if (!engine_.all_fibers_done()) {
    std::string who;
    for (const auto& n : engine_.unfinished_fibers()) {
      who += ' ';
      who += n;
    }
    throw std::runtime_error(
        (end >= cfg_.deadline ? "simulation deadline exceeded; stuck fibers:"
                              : "simulated deadlock; stuck fibers:") +
        who);
  }
  // Every rank_main returned: anything still active in a request table was
  // posted and never waited/tested to release — a leak under the usage lint.
  if (san::usage_on()) {
    for (const auto& rc : ranks_) {
      san::mpi_teardown(rc->rank(), rc->requests().active_count());
    }
  }
  return end;
}

RankCtx& Cluster::here() {
  sim::Engine* e = sim::Engine::current();
  if (e == nullptr || e->current_fiber() == nullptr) {
    throw std::logic_error("smpi call outside a cluster fiber");
  }
  void* p = e->current_fiber()->user_data();
  if (p == nullptr) {
    throw std::logic_error("calling fiber is not bound to an MPI rank");
  }
  return *static_cast<RankCtx*>(p);
}

}  // namespace smpi
