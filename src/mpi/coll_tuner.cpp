#include "mpi/coll_tuner.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/env.hpp"
#include "util/spec_parser.hpp"

namespace smpi {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

constexpr const char* kEnv = "MPIOFF_COLL";

constexpr const char* kValidItems =
    "barrier|bcast|reduce|allreduce|alltoall|allgather|gather|scatter|scan|"
    "fence :algo[@bytes], seg:<bytes>, chains:<n>";

constexpr const char* kValidAlgos =
    "linear, binomial, dissemination, rdbl, rabenseifner, reduce-bcast, ring, "
    "pipeline, postall, pairwise, hillis-steele";

/// Parse a byte count with optional k/K (KiB) or m/M (MiB) suffix.
std::size_t parse_bytes(const std::string& v, const std::string& item) {
  return util::SpecParser::parse_bytes(kEnv, v, item);
}

bool parse_coll(const std::string& s, CollectiveId* out) {
  static constexpr struct {
    const char* name;
    CollectiveId id;
  } kTable[] = {
      {"barrier", CollectiveId::kBarrier},   {"bcast", CollectiveId::kBcast},
      {"reduce", CollectiveId::kReduce},     {"allreduce", CollectiveId::kAllreduce},
      {"alltoall", CollectiveId::kAlltoall}, {"allgather", CollectiveId::kAllgather},
      {"gather", CollectiveId::kGather},     {"scatter", CollectiveId::kScatter},
      {"scan", CollectiveId::kScan},         {"fence", CollectiveId::kFence},
  };
  for (const auto& e : kTable) {
    if (s == e.name) {
      *out = e.id;
      return true;
    }
  }
  return false;
}

CollAlgo parse_algo(const std::string& s, const std::string& item) {
  static constexpr struct {
    const char* name;
    CollAlgo algo;
  } kTable[] = {
      {"linear", CollAlgo::kLinear},
      {"binomial", CollAlgo::kBinomial},
      {"dissemination", CollAlgo::kDissemination},
      {"rdbl", CollAlgo::kRecursiveDoubling},
      {"recursive-doubling", CollAlgo::kRecursiveDoubling},
      {"rabenseifner", CollAlgo::kRabenseifner},
      {"reduce-bcast", CollAlgo::kReduceBcast},
      {"ring", CollAlgo::kRing},
      {"pipeline", CollAlgo::kPipeline},
      {"postall", CollAlgo::kPostAll},
      {"pairwise", CollAlgo::kPairwise},
      {"hillis-steele", CollAlgo::kHillisSteele},
  };
  for (const auto& e : kTable) {
    if (s == e.name) return e.algo;
  }
  throw std::invalid_argument("MPIOFF_COLL: unknown algorithm in '" + item +
                              "' (valid: " + kValidAlgos + ")");
}

}  // namespace

const char* coll_name(CollectiveId c) {
  switch (c) {
    case CollectiveId::kBarrier:
      return "barrier";
    case CollectiveId::kBcast:
      return "bcast";
    case CollectiveId::kReduce:
      return "reduce";
    case CollectiveId::kAllreduce:
      return "allreduce";
    case CollectiveId::kAlltoall:
      return "alltoall";
    case CollectiveId::kAllgather:
      return "allgather";
    case CollectiveId::kGather:
      return "gather";
    case CollectiveId::kScatter:
      return "scatter";
    case CollectiveId::kScan:
      return "scan";
    case CollectiveId::kFence:
      return "fence";
  }
  return "?";
}

const char* coll_algo_name(CollAlgo a) {
  switch (a) {
    case CollAlgo::kUnknown:
      return "unknown";
    case CollAlgo::kLinear:
      return "linear";
    case CollAlgo::kBinomial:
      return "binomial";
    case CollAlgo::kDissemination:
      return "dissemination";
    case CollAlgo::kRecursiveDoubling:
      return "rdbl";
    case CollAlgo::kRabenseifner:
      return "rabenseifner";
    case CollAlgo::kReduceBcast:
      return "reduce-bcast";
    case CollAlgo::kRing:
      return "ring";
    case CollAlgo::kPipeline:
      return "pipeline";
    case CollAlgo::kPostAll:
      return "postall";
    case CollAlgo::kPairwise:
      return "pairwise";
    case CollAlgo::kHillisSteele:
      return "hillis-steele";
  }
  return "?";
}

CollTuner CollTuner::defaults_for(const machine::Profile& p) {
  CollTuner t;
  t.seg_bytes_ = p.coll_seg_bytes;
  t.max_chains_ = p.coll_max_chains;
  t.ring_allreduce_min_ = p.coll_ring_allreduce_min;
  t.ring_allgather_min_ = p.coll_ring_allgather_min;
  t.pipeline_bcast_min_ = p.coll_pipeline_bcast_min;
  t.rabenseifner_min_ = p.coll_rabenseifner_min;
  t.eager_threshold_ = p.eager_threshold;
  return t;
}

CollTuner CollTuner::parse(const std::string& spec, CollTuner base) {
  CollTuner t = std::move(base);
  // Algo rules for the same collective stack by threshold (that is the
  // grammar's way to build a size-tiered policy), but the scalar knobs are
  // single-valued: a repeated seg/chains is a typo, not an override. The
  // collective names form an open key class handled by the fallback.
  util::SpecParser grammar(kEnv, ":", kValidItems);
  grammar.key("seg").key("chains").open_keys([](const std::string& k) {
    CollectiveId ignored{};
    return parse_coll(k, &ignored);
  });
  for (const util::SpecItem& it : grammar.parse(spec)) {
    if (it.key == "seg") {
      t.seg_bytes_ = std::max<std::size_t>(1, parse_bytes(it.value, it.raw));
      continue;
    }
    if (it.key == "chains") {
      const std::size_t n = parse_bytes(it.value, it.raw);
      if (n < 1 || n > 64) {
        throw std::invalid_argument("MPIOFF_COLL: chains must be 1..64 in '" +
                                    it.raw + "'");
      }
      t.max_chains_ = static_cast<int>(n);
      continue;
    }
    CollectiveId coll{};
    parse_coll(it.key, &coll);  // open_keys already vetted the name
    const std::size_t at = it.value.find('@');
    Rule r;
    r.algo = parse_algo(it.value.substr(0, at), it.raw);
    r.min_bytes =
        at == std::string::npos ? 0 : parse_bytes(it.value.substr(at + 1), it.raw);
    auto& rules = t.rules_[static_cast<int>(coll)];
    rules.push_back(r);
    std::stable_sort(rules.begin(), rules.end(),
                     [](const Rule& a, const Rule& b) {
                       return a.min_bytes < b.min_bytes;
                     });
  }
  return t;
}

CollTuner CollTuner::from_env(const machine::Profile& p) {
  CollTuner t = defaults_for(p);
  if (const char* spec = env_util::get("MPIOFF_COLL"); spec != nullptr) {
    t = parse(spec, std::move(t));
  }
  return t;
}

int CollTuner::chains_for(std::size_t total_bytes) const {
  if (total_bytes <= seg_bytes_) return 1;
  const std::size_t n = (total_bytes + seg_bytes_ - 1) / seg_bytes_;
  return static_cast<int>(
      std::min<std::size_t>(n, static_cast<std::size_t>(max_chains_)));
}

bool CollTuner::legal(CollectiveId c, CollAlgo a, std::size_t count, int ranks,
                      bool commutative) {
  switch (a) {
    case CollAlgo::kUnknown:
      return false;
    case CollAlgo::kRecursiveDoubling:
      return c == CollectiveId::kAllreduce && is_pow2(ranks) && commutative;
    case CollAlgo::kRabenseifner:
      return c == CollectiveId::kAllreduce && is_pow2(ranks) && ranks > 1 &&
             commutative && count % static_cast<std::size_t>(ranks) == 0;
    case CollAlgo::kRing:
      return (c == CollectiveId::kAllreduce && commutative) ||
             c == CollectiveId::kAllgather;
    case CollAlgo::kReduceBcast:
      return c == CollectiveId::kAllreduce;
    case CollAlgo::kPipeline:
      return c == CollectiveId::kBcast;
    case CollAlgo::kBinomial:
      // The binomial reduce combines lower⊕higher in *relative* rank order,
      // which wraps around the root — only safe when the op commutes.
      return c == CollectiveId::kBcast ||
             (c == CollectiveId::kReduce && commutative);
    case CollAlgo::kPostAll:
    case CollAlgo::kPairwise:
      return c == CollectiveId::kAlltoall || c == CollectiveId::kAllgather;
    case CollAlgo::kLinear:
      return c == CollectiveId::kGather || c == CollectiveId::kScatter ||
             c == CollectiveId::kReduce;
    case CollAlgo::kDissemination:
      return c == CollectiveId::kBarrier || c == CollectiveId::kFence;
    case CollAlgo::kHillisSteele:
      return c == CollectiveId::kScan;
  }
  return false;
}

CollAlgo CollTuner::default_for(CollectiveId c, std::size_t bytes,
                                std::size_t count, int ranks,
                                bool commutative) const {
  switch (c) {
    case CollectiveId::kBarrier:
    case CollectiveId::kFence:
      return CollAlgo::kDissemination;
    case CollectiveId::kBcast:
      return (ranks > 1 && bytes >= pipeline_bcast_min_) ? CollAlgo::kPipeline
                                                         : CollAlgo::kBinomial;
    case CollectiveId::kReduce:
      // The binomial schedule is rank-order-correct only from rank 0's
      // perspective; non-commutative reductions use the ordered linear fold.
      return commutative ? CollAlgo::kBinomial : CollAlgo::kLinear;
    case CollectiveId::kAllreduce:
      if (!commutative || ranks <= 1) return CollAlgo::kReduceBcast;
      if (bytes >= ring_allreduce_min_) return CollAlgo::kRing;
      if (legal(c, CollAlgo::kRabenseifner, count, ranks, commutative) &&
          bytes >= rabenseifner_min_) {
        return CollAlgo::kRabenseifner;
      }
      if (is_pow2(ranks)) return CollAlgo::kRecursiveDoubling;
      return CollAlgo::kReduceBcast;
    case CollectiveId::kAlltoall:
      return bytes <= eager_threshold_ ? CollAlgo::kPostAll : CollAlgo::kPairwise;
    case CollectiveId::kAllgather:
      return (ranks > 1 && bytes >= ring_allgather_min_) ? CollAlgo::kRing
                                                         : CollAlgo::kPostAll;
    case CollectiveId::kGather:
    case CollectiveId::kScatter:
      return CollAlgo::kLinear;
    case CollectiveId::kScan:
      return CollAlgo::kHillisSteele;
  }
  return CollAlgo::kUnknown;
}

CollAlgo CollTuner::choose(CollectiveId c, std::size_t bytes, std::size_t count,
                           int ranks, bool commutative) const {
  // Forced rules: largest threshold not exceeding the message wins; an
  // illegal forced choice falls back to the defaults so the recorded
  // algorithm is always the one that ran.
  const auto& rules = rules_[static_cast<int>(c)];
  for (auto it = rules.rbegin(); it != rules.rend(); ++it) {
    if (bytes < it->min_bytes) continue;
    if (legal(c, it->algo, count, ranks, commutative)) return it->algo;
    break;
  }
  return default_for(c, bytes, count, ranks, commutative);
}

}  // namespace smpi
