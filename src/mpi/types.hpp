// Public types and constants of SimMPI, the simulator-hosted MPI subset.
//
// Naming follows the MPI standard closely (ANY_SOURCE, Status fields, thread
// levels) so that code written against SimMPI reads like MPI code; handles
// are small value types rather than opaque pointers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smpi {

// ---- wildcards & special ranks ----
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
inline constexpr int kProcNull = -2;

// ---- partitioned point-to-point tag encoding ----
// A partitioned operation (MPI_Psend_init-style) ships every partition as an
// independent wire message; the partition index is folded into the tag so
// normal matching pairs partition p of the send with partition p of the
// receive. Bit 30 marks a partition frame — kAnyTag receives never match one
// (a wildcard must not steal a single slice out of a partitioned transfer).
// The base tag occupies bits [12, 29), so partitioned ops accept base tags
// in [0, 2^17) and partition counts in [1, 4096].
inline constexpr int kPartTagBit = 1 << 30;
inline constexpr int kPartTagShift = 12;
inline constexpr int kMaxPartitions = 1 << kPartTagShift;  // 4096
inline constexpr int kMaxPartBaseTag = 1 << 17;

/// Wire tag of partition `p` of a partitioned op with base tag `tag`.
constexpr int part_wire_tag(int tag, int p) {
  return kPartTagBit | (tag << kPartTagShift) | p;
}

/// MPI_Init_thread levels. kSingle and kSerialized behave like kFunneled in
/// this implementation (no library locking); kMultiple enables the global
/// lock path that mainstream MPIs use.
enum class ThreadLevel : std::uint8_t {
  kSingle,
  kFunneled,
  kSerialized,
  kMultiple,
};

/// Basic datatypes (contiguous only; derived datatypes are out of scope —
/// the paper's benchmarks and apps use contiguous buffers).
enum class Datatype : std::uint8_t {
  kByte,
  kChar,
  kInt,
  kLong,
  kFloat,
  kDouble,
  kComplexFloat,
  kComplexDouble,
};

/// Reduction operations. kUser0..kUser3 are slots handed out by
/// register_user_op (MPI_Op_create); unregistered slots are invalid.
enum class Op : std::uint8_t {
  kSum,
  kProd,
  kMax,
  kMin,
  kUser0,
  kUser1,
  kUser2,
  kUser3,
};

/// User reduction function: inout[i] = f(inout[i], in[i]) elementwise, like
/// MPI_User_function (the second operand is the accumulator).
using UserOpFn = void (*)(const void* in, void* inout, std::size_t count,
                          Datatype dt);

/// MPI_Op_create: register `fn` into a kUser slot. Idempotent per function
/// pointer (re-registering returns the same slot); at most 4 distinct user
/// ops per process. Call before fibers spawn — the registry is unsynchronized.
Op register_user_op(UserOpFn fn, bool commutative);

/// Whether `op` commutes (built-ins do; user ops report their declaration).
/// Collective algorithm selection gates order-sensitive schedules on this.
bool op_commutative(Op op);

/// Communicator handle; value type, valid within one rank.
struct Comm {
  int idx = -1;
  [[nodiscard]] bool valid() const { return idx >= 0; }
  friend bool operator==(Comm a, Comm b) { return a.idx == b.idx; }
};

inline constexpr Comm kCommWorld{0};
inline constexpr Comm kCommSelf{1};
inline constexpr Comm kCommNull{-1};

/// Request handle; value type, valid within one rank. Index 0 is the null
/// request (complete, inactive).
struct Request {
  int idx = 0;
  [[nodiscard]] bool is_null() const { return idx == 0; }
  friend bool operator==(Request a, Request b) { return a.idx == b.idx; }
};

inline constexpr Request kRequestNull{0};

/// RMA window handle; value type, valid within one rank.
struct Win {
  int idx = -1;
  [[nodiscard]] bool valid() const { return idx >= 0; }
};

/// Completion status of a receive (or probe).
struct Status {
  int source = kAnySource;  ///< rank within the receive's communicator
  int tag = kAnyTag;
  std::uint64_t bytes = 0;  ///< received byte count

  /// Element count for a given datatype, MPI_Get_count style.
  [[nodiscard]] int count(Datatype dt) const;
};

/// Size in bytes of one element of `dt`.
std::size_t datatype_size(Datatype dt);

}  // namespace smpi
