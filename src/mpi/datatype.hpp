// Datatype sizes and reduction-operator application.
#pragma once

#include <cstddef>

#include "mpi/types.hpp"

namespace smpi {

/// Apply `inout[i] = op(inout[i], in[i])` elementwise over `count` elements
/// of type `dt`. Complex types support kSum and kProd only.
void apply_op(Op op, Datatype dt, const void* in, void* inout, std::size_t count);

}  // namespace smpi
