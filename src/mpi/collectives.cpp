// Collective algorithms, compiled to CollOp schedules per rank.
//
// Which schedule a collective compiles to is decided per instance by the
// CollTuner (size x ranks x operand properties; see mpi/coll_tuner.hpp for
// the override grammar). The inventory:
//   * barrier      — dissemination (ceil(log2 p) rounds)
//   * bcast        — binomial tree; pipelined (segmented) binomial for large
//                    vectors, one chain per segment
//   * reduce       — binomial tree for commutative ops, ordered linear fold
//                    for non-commutative ones
//   * allreduce    — segmented ring (reduce-scatter + allgather) for large
//                    commutative vectors, Rabenseifner / recursive doubling
//                    for medium power-of-two cases, reduce-to-0 + bcast
//                    otherwise
//   * alltoall     — post-all for eager-sized blocks, pairwise sequential
//                    exchange for rendezvous-sized blocks
//   * allgather    — segmented ring for large results, post-all otherwise
//   * gather/scatter — linear rooted trees
//   * scan         — Hillis-Steele doubling
//   * reduce_scatter_block — reduce + scatter
#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "mpi/cluster.hpp"
#include "mpi/datatype.hpp"
#include "mpi/entry.hpp"
#include "mpi/rank_ctx.hpp"

namespace smpi {

namespace {

std::unique_ptr<CollOp> new_op(CommInfo& ci, Comm comm, CollectiveId kind,
                               CollAlgo algo) {
  auto op = std::make_unique<CollOp>();
  op->comm = comm;
  op->seq = ci.coll_seq++;
  op->kind = kind;
  op->algo = algo;
  return op;
}

std::size_t add_temp(CollOp& op, std::size_t bytes) {
  op.temps.emplace_back(bytes);
  return op.temps.size() - 1;
}

/// Offset into a possibly-phantom buffer (phantom schedules carry byte
/// counts but no storage).
std::byte* at(std::byte* base, std::size_t off) {
  return base == nullptr ? nullptr : base + off;
}

/// Append the stages of a binomial broadcast of `buf` (bytes) from comm rank
/// `root` to chain `ch`.
void build_bcast_stages(CollChain& ch, const CommInfo& ci, void* buf,
                        std::size_t bytes, int root) {
  const int p = ci.size();
  const int rel = (ci.my_rank - root + p) % p;
  int mask = 1;
  int parent_rel = -1;
  while (mask < p) {
    if ((rel & mask) != 0) {
      parent_rel = rel - mask;
      break;
    }
    mask <<= 1;
  }
  if (parent_rel >= 0) {
    CollStage st;
    st.recvs.push_back({(parent_rel + root) % p, buf, bytes});
    ch.stages.push_back(std::move(st));
  } else {
    mask = 1;
    while (mask < p) mask <<= 1;
  }
  // Children: all set bits below my entry bit.
  CollStage sends;
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (rel + m < p) sends.sends.push_back({(rel + m + root) % p, buf, bytes});
  }
  if (!sends.sends.empty()) ch.stages.push_back(std::move(sends));
}

/// Append binomial-reduce stages to `ch` combining into `accum` (which must
/// start as this rank's contribution); the result lands in rank `root`'s
/// accum. Combines are accum ⊕ recv with the received block always the
/// higher relative-rank range — rank-order-correct at root 0, commutative
/// ops only elsewhere (the tuner enforces this).
void build_reduce_stages(CollOp& op, CollChain& ch, const CommInfo& ci,
                         std::byte* accum, std::size_t bytes, Datatype dt,
                         Op rop, int root, std::size_t count,
                         std::size_t store) {
  const int p = ci.size();
  const int rel = (ci.my_rank - root + p) % p;
  CollOp* opp = &op;  // CollOp lives in a unique_ptr; its address is stable
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((rel & mask) == 0) {
      const int src_rel = rel + mask;
      if (src_rel >= p) continue;
      const std::size_t t = add_temp(op, store);
      CollStage st;
      st.recvs.push_back({(src_rel + root) % p, op.temps[t].data(), bytes});
      st.on_complete = [opp, t, accum, dt, rop, count, bytes](RankCtx& rc) {
        sim::advance(rc.profile().reduce_cost(bytes));
        apply_op(rop, dt, opp->temps[t].data(), accum, count);
      };
      ch.stages.push_back(std::move(st));
    } else {
      CollStage st;
      st.sends.push_back({(rel - mask + root) % p, accum, bytes});
      ch.stages.push_back(std::move(st));
      return;  // after sending inward this rank is done reducing
    }
  }
}

/// Ordered linear fold into rank `root`: the only reduce schedule that is
/// correct for non-commutative operators at any root. Non-roots send once;
/// the root receives and combines strictly in rank order (serial by design).
/// `accum` must start as this rank's own contribution.
void build_linear_reduce(CollOp& op, CollChain& ch, const CommInfo& ci,
                         std::byte* accum, const void* sbuf, std::size_t bytes,
                         Datatype dt, Op rop, int root, std::size_t count,
                         std::size_t store) {
  const int p = ci.size();
  const int me = ci.my_rank;
  if (me != root) {
    CollStage st;
    st.sends.push_back({root, sbuf, bytes});
    ch.stages.push_back(std::move(st));
    return;
  }
  const bool phantom = store == 0;
  CollOp* opp = &op;
  // Root with root > 0: accum must end up as fold(0..p-1) in index order, so
  // the first arriving block (rank 0) *replaces* accum and the root's own
  // block is re-folded at its position from a snapshot taken now.
  std::byte* own = nullptr;
  if (root != 0) {
    const std::size_t own_t = add_temp(op, store);
    if (!phantom) std::memcpy(op.temps[own_t].data(), accum, bytes);
    own = op.temps[own_t].data();
  }
  for (int k = 0; k < p; ++k) {
    if (k == root) continue;
    const std::size_t t = add_temp(op, store);
    CollStage st;
    st.recvs.push_back({k, op.temps[t].data(), bytes});
    const bool replace = (k == 0 && root != 0);
    const bool fold_own = (root != 0 && k == root - 1);
    st.on_complete = [opp, t, accum, own, dt, rop, count, bytes, replace,
                      fold_own, phantom](RankCtx& rc) {
      sim::advance(rc.profile().reduce_cost(bytes));
      if (replace) {
        if (!phantom) std::memcpy(accum, opp->temps[t].data(), bytes);
      } else {
        apply_op(rop, dt, opp->temps[t].data(), accum, count);
      }
      if (fold_own) {
        sim::advance(rc.profile().reduce_cost(bytes));
        apply_op(rop, dt, own, accum, count);
      }
    };
    ch.stages.push_back(std::move(st));
  }
}

/// Segmented ring allreduce. Chain c owns the element range
/// [c*count/C, (c+1)*count/C); within a chain the range splits into p chunks
/// and runs the classic reduce-scatter + allgather ring: 2(p-1) stages, each
/// moving ~n/p elements to the right neighbour. Chains advance independently,
/// so chunk k+1's sends are on the wire while chunk k's combine runs — and
/// segments stay below the eager threshold, which is what keeps the schedule
/// overlap-friendly for the offload thread (no rendezvous stalls).
void build_ring_allreduce(CollOp& op, const CommInfo& ci, std::byte* accum,
                          std::size_t count, std::size_t elem, Datatype dt,
                          Op rop, bool phantom, int nchains) {
  const int p = ci.size();
  const int me = ci.my_rank;
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  const auto up = static_cast<std::size_t>(p);
  CollOp* opp = &op;
  for (int c = 0; c < nchains; ++c) {
    const auto uc = static_cast<std::size_t>(c);
    const std::size_t base = count * uc / static_cast<std::size_t>(nchains);
    const std::size_t n = count * (uc + 1) / static_cast<std::size_t>(nchains) - base;
    CollChain& ch = op.chain(uc);
    // Chunk j of this chain: n/p elements plus one of the remainder.
    const auto cn = [n, up](int j) {
      return n / up + (static_cast<std::size_t>(j) < n % up ? 1 : 0);
    };
    const auto coff = [n, up](int j) {
      const auto uj = static_cast<std::size_t>(j);
      return uj * (n / up) + std::min(uj, n % up);
    };
    // One receive temp per chain: stages are chain-sequential, and the
    // incoming partial is consumed by the combine before the next post.
    const std::size_t t = add_temp(op, phantom ? 0 : cn(0) * elem);
    // ---- reduce-scatter: stage s sends the chunk combined at stage s-1 ----
    for (int s = 0; s < p - 1; ++s) {
      const int schunk = ((me - s) % p + p) % p;
      const int rchunk = ((me - s - 1) % p + p) % p;
      CollStage st;
      st.sends.push_back(
          {right, at(accum, (base + coff(schunk)) * elem), cn(schunk) * elem});
      st.recvs.push_back({left, op.temps[t].data(), cn(rchunk) * elem});
      const std::size_t roff = (base + coff(rchunk)) * elem;
      const std::size_t rcnt = cn(rchunk);
      st.on_complete = [opp, t, accum, dt, rop, roff, rcnt, elem](RankCtx& rc) {
        sim::advance(rc.profile().reduce_cost(rcnt * elem));
        apply_op(rop, dt, opp->temps[t].data(), at(accum, roff), rcnt);
      };
      ch.stages.push_back(std::move(st));
    }
    // ---- allgather: circulate the finished chunks, landing in place ----
    for (int s = 0; s < p - 1; ++s) {
      const int schunk = ((me + 1 - s) % p + p) % p;
      const int rchunk = ((me - s) % p + p) % p;
      CollStage st;
      st.sends.push_back(
          {right, at(accum, (base + coff(schunk)) * elem), cn(schunk) * elem});
      st.recvs.push_back(
          {left, at(accum, (base + coff(rchunk)) * elem), cn(rchunk) * elem});
      ch.stages.push_back(std::move(st));
    }
  }
}

/// Segmented ring allgather: stage s forwards the block received at stage
/// s-1. Chain c carries the byte range [c*blk/C, (c+1)*blk/C) of every block.
void build_ring_allgather(CollOp& op, const CommInfo& ci, std::byte* rb,
                          std::size_t blk, int nchains) {
  const int p = ci.size();
  const int me = ci.my_rank;
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  for (int c = 0; c < nchains; ++c) {
    const auto uc = static_cast<std::size_t>(c);
    const std::size_t blo = blk * uc / static_cast<std::size_t>(nchains);
    const std::size_t bn = blk * (uc + 1) / static_cast<std::size_t>(nchains) - blo;
    CollChain& ch = op.chain(uc);
    for (int s = 0; s < p - 1; ++s) {
      const auto sblk = static_cast<std::size_t>(((me - s) % p + p) % p);
      const auto rblk = static_cast<std::size_t>(((me - s - 1) % p + p) % p);
      CollStage st;
      st.sends.push_back({right, at(rb, sblk * blk + blo), bn});
      st.recvs.push_back({left, at(rb, rblk * blk + blo), bn});
      ch.stages.push_back(std::move(st));
    }
  }
}

}  // namespace

// --------------------------------------------------------------- barrier ----

Request RankCtx::ibarrier(Comm comm) {
  MpiEntry entry(*this, false, "Ibarrier");
  CommInfo& ci = comms_.get(comm);
  const int p = ci.size();
  auto op = new_op(ci, comm, CollectiveId::kBarrier,
                   coll_tuner().choose(CollectiveId::kBarrier, 0, 0, p, true));
  CollChain& ch = op->chain(0);
  const int me = ci.my_rank;
  for (int k = 1; k < p; k <<= 1) {
    CollStage st;
    // 1-byte token: zero-length messages are legal but a token keeps the
    // payload path uniform.
    const std::size_t t = add_temp(*op, 1);
    const std::size_t t2 = add_temp(*op, 1);
    st.sends.push_back({(me + k) % p, op->temps[t].data(), 1});
    st.recvs.push_back({(me - k + p) % p, op->temps[t2].data(), 1});
    ch.stages.push_back(std::move(st));
  }
  return start_collective(std::move(op));
}

void RankCtx::barrier(Comm comm) {
  Request r = ibarrier(comm);
  wait(r);
}

// ----------------------------------------------------------------- bcast ----

Request RankCtx::ibcast(void* buf, std::size_t count, Datatype dt, int root,
                        Comm comm) {
  MpiEntry entry(*this, false, "Ibcast");
  CommInfo& ci = comms_.get(comm);
  const std::size_t bytes = count * datatype_size(dt);
  const int p = ci.size();
  auto op = new_op(ci, comm, CollectiveId::kBcast,
                   coll_tuner().choose(CollectiveId::kBcast, bytes, count, p,
                                       true));
  op->root = root;
  if (op->algo == CollAlgo::kPipeline) {
    // One chain per segment, each an independent binomial tree: the root
    // pushes segment c+1 into the wire while segment c propagates down.
    const int nchains = coll_tuner().chains_for(bytes);
    auto* b = static_cast<std::byte*>(buf);
    for (int c = 0; c < nchains; ++c) {
      const auto uc = static_cast<std::size_t>(c);
      const std::size_t lo = bytes * uc / static_cast<std::size_t>(nchains);
      const std::size_t n = bytes * (uc + 1) / static_cast<std::size_t>(nchains) - lo;
      build_bcast_stages(op->chain(uc), ci, at(b, lo), n, root);
    }
  } else {
    build_bcast_stages(op->chain(0), ci, buf, bytes, root);
  }
  return start_collective(std::move(op));
}

void RankCtx::bcast(void* buf, std::size_t count, Datatype dt, int root,
                    Comm comm) {
  Request r = ibcast(buf, count, dt, root, comm);
  wait(r);
}

// ---------------------------------------------------------------- reduce ----

Request RankCtx::ireduce(const void* sbuf, void* rbuf, std::size_t count,
                         Datatype dt, Op rop, int root, Comm comm) {
  MpiEntry entry(*this, false, "Ireduce");
  CommInfo& ci = comms_.get(comm);
  const std::size_t bytes = count * datatype_size(dt);
  // Phantom (timing-only) reductions carry no data, so the schedule's
  // scratch buffers are not materialized either.
  const bool phantom = sbuf == nullptr;
  const std::size_t store = phantom ? 0 : bytes;
  const int p = ci.size();
  auto op = new_op(ci, comm, CollectiveId::kReduce,
                   coll_tuner().choose(CollectiveId::kReduce, bytes, count, p,
                                       op_commutative(rop)));
  op->root = root;
  const std::size_t acc = add_temp(*op, store);
  sim::advance(profile().copy_cost(bytes));
  if (!phantom) std::memcpy(op->temps[acc].data(), sbuf, bytes);
  std::byte* accum = op->temps[acc].data();
  if (op->algo == CollAlgo::kLinear) {
    build_linear_reduce(*op, op->chain(0), ci, accum, sbuf, bytes, dt, rop,
                        root, count, store);
  } else {
    build_reduce_stages(*op, op->chain(0), ci, accum, bytes, dt, rop, root,
                        count, store);
  }
  if (ci.my_rank == root) {
    op->on_finish = [accum, rbuf, bytes](RankCtx& rc) {
      sim::advance(rc.profile().copy_cost(bytes));
      if (rbuf != nullptr) std::memcpy(rbuf, accum, bytes);
    };
  }
  return start_collective(std::move(op));
}

void RankCtx::reduce(const void* sbuf, void* rbuf, std::size_t count,
                     Datatype dt, Op rop, int root, Comm comm) {
  Request r = ireduce(sbuf, rbuf, count, dt, rop, root, comm);
  wait(r);
}

// ------------------------------------------------------------- allreduce ----

Request RankCtx::iallreduce(const void* sbuf, void* rbuf, std::size_t count,
                            Datatype dt, Op rop, Comm comm) {
  MpiEntry entry(*this, false, "Iallreduce");
  CommInfo& ci = comms_.get(comm);
  const std::size_t bytes = count * datatype_size(dt);
  const bool phantom = sbuf == nullptr;
  const std::size_t store = phantom ? 0 : bytes;
  const int p = ci.size();
  auto op = new_op(ci, comm, CollectiveId::kAllreduce,
                   coll_tuner().choose(CollectiveId::kAllreduce, bytes, count,
                                       p, op_commutative(rop)));
  const std::size_t acc = add_temp(*op, store);
  sim::advance(profile().copy_cost(bytes));
  if (!phantom) std::memcpy(op->temps[acc].data(), sbuf, bytes);
  std::byte* accum = op->temps[acc].data();

  const std::size_t elem = datatype_size(dt);
  if (op->algo == CollAlgo::kRing) {
    build_ring_allreduce(*op, ci, accum, count, elem, dt, rop, phantom,
                         coll_tuner().chains_for(bytes));
  } else if (op->algo == CollAlgo::kRabenseifner) {
    // Rabenseifner: recursive-halving reduce-scatter followed by a
    // recursive-doubling allgather — ~2x the vector on the wire instead of
    // log2(p)x. The tuner guarantees pow2 ranks and count % p == 0 here.
    CollChain& ch = op->chain(0);
    CollOp* opp = op.get();
    const int logp = [&] {
      int l = 0;
      for (int k = 1; k < p; k <<= 1) ++l;
      return l;
    }();
    // Segment [lo,hi) owned after k halving rounds (element indices).
    auto rs_range = [&](int rank, int k) {
      std::size_t lo = 0, hi = count;
      int step = p / 2;
      for (int j = 0; j < k; ++j, step /= 2) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if ((rank & step) == 0) {
          hi = mid;  // lower half kept by the lower partner
        } else {
          lo = mid;
        }
      }
      return std::pair<std::size_t, std::size_t>(lo, hi);
    };
    // ---- reduce-scatter (recursive halving) ----
    int step = p / 2;
    for (int j = 0; j < logp; ++j, step /= 2) {
      const int partner = ci.my_rank ^ step;
      const auto [lo, hi] = rs_range(ci.my_rank, j);
      const std::size_t mid = lo + (hi - lo) / 2;
      const bool keep_lower = (ci.my_rank & step) == 0;
      const std::size_t keep_lo = keep_lower ? lo : mid;
      const std::size_t keep_n = (hi - lo) / 2;
      const std::size_t send_lo = keep_lower ? mid : lo;
      const std::size_t t = add_temp(*op, phantom ? 0 : keep_n * elem);
      CollStage st;
      st.sends.push_back({partner, at(accum, send_lo * elem), keep_n * elem});
      st.recvs.push_back({partner, op->temps[t].data(), keep_n * elem});
      st.on_complete = [opp, t, accum, dt, rop, keep_lo, keep_n, elem,
                        phantom](RankCtx& rc) {
        sim::advance(rc.profile().reduce_cost(keep_n * elem));
        if (!phantom) {
          apply_op(rop, dt, opp->temps[t].data(), accum + keep_lo * elem, keep_n);
        }
      };
      ch.stages.push_back(std::move(st));
    }
    // ---- allgather (recursive doubling, undoing the halvings) ----
    for (int j = logp - 1; j >= 0; --j) {
      const int s2 = p >> (j + 1);
      const int partner = ci.my_rank ^ s2;
      const auto [mlo, mhi] = rs_range(ci.my_rank, j + 1);
      const auto [plo, phi] = rs_range(partner, j + 1);
      CollStage st;
      st.sends.push_back({partner, at(accum, mlo * elem), (mhi - mlo) * elem});
      st.recvs.push_back({partner, at(accum, plo * elem), (phi - plo) * elem});
      ch.stages.push_back(std::move(st));
    }
  } else if (op->algo == CollAlgo::kRecursiveDoubling) {
    // Recursive doubling: log2(p) exchange-and-combine rounds. Each round
    // sends a snapshot of the accumulator prepared by the previous round so
    // that rendezvous-sized payloads can be read at DMA time safely.
    CollChain& ch = op->chain(0);
    int nrounds = 0;
    for (int k = 1; k < p; k <<= 1) ++nrounds;
    std::vector<std::size_t> snaps, rtmps;
    for (int i = 0; i < nrounds; ++i) {
      snaps.push_back(add_temp(*op, store));
      rtmps.push_back(add_temp(*op, store));
    }
    if (nrounds > 0 && !phantom) {
      std::memcpy(op->temps[snaps[0]].data(), accum, bytes);
    }
    CollOp* opp = op.get();
    int round = 0;
    for (int k = 1; k < p; k <<= 1, ++round) {
      const int partner = ci.my_rank ^ k;
      CollStage st;
      st.sends.push_back({partner, op->temps[snaps[static_cast<std::size_t>(round)]].data(), bytes});
      st.recvs.push_back({partner, op->temps[rtmps[static_cast<std::size_t>(round)]].data(), bytes});
      const std::size_t rt = rtmps[static_cast<std::size_t>(round)];
      const bool last = (round == nrounds - 1);
      const std::size_t next_snap = last ? 0 : snaps[static_cast<std::size_t>(round + 1)];
      st.on_complete = [opp, rt, accum, dt, rop, count, bytes, last, phantom,
                        next_snap](RankCtx& rc) {
        sim::advance(rc.profile().reduce_cost(bytes));
        apply_op(rop, dt, opp->temps[rt].data(), accum, count);
        if (!last && !phantom) {
          std::memcpy(opp->temps[next_snap].data(), accum, bytes);
        }
      };
      ch.stages.push_back(std::move(st));
    }
  } else {
    // Reduce-to-0 + bcast: the order-preserving fallback (binomial combines
    // at root 0 fold strictly lower⊕higher rank ranges, so it is correct
    // even for non-commutative operators).
    assert(op->algo == CollAlgo::kReduceBcast);
    CollChain& ch = op->chain(0);
    build_reduce_stages(*op, ch, ci, accum, bytes, dt, rop, /*root=*/0, count,
                        store);
    build_bcast_stages(ch, ci, accum, bytes, /*root=*/0);
  }

  op->on_finish = [accum, rbuf, bytes](RankCtx& rc) {
    sim::advance(rc.profile().copy_cost(bytes));
    if (rbuf != nullptr) std::memcpy(rbuf, accum, bytes);
  };
  return start_collective(std::move(op));
}

void RankCtx::allreduce(const void* sbuf, void* rbuf, std::size_t count,
                        Datatype dt, Op rop, Comm comm) {
  Request r = iallreduce(sbuf, rbuf, count, dt, rop, comm);
  wait(r);
}

// -------------------------------------------------------------- alltoall ----

Request RankCtx::ialltoall(const void* sbuf, void* rbuf,
                           std::size_t count_per_rank, Datatype dt, Comm comm) {
  MpiEntry entry(*this, false, "Ialltoall");
  CommInfo& ci = comms_.get(comm);
  const std::size_t blk = count_per_rank * datatype_size(dt);
  const int p = ci.size();
  const int me = ci.my_rank;
  const auto* sb = static_cast<const std::byte*>(sbuf);
  auto* rb = static_cast<std::byte*>(rbuf);
  auto blk_at = [blk](const std::byte* base, int i) -> const std::byte* {
    return base == nullptr ? nullptr : base + static_cast<std::size_t>(i) * blk;
  };
  auto blk_at_mut = [blk](std::byte* base, int i) -> std::byte* {
    return base == nullptr ? nullptr : base + static_cast<std::size_t>(i) * blk;
  };
  auto op = new_op(ci, comm, CollectiveId::kAlltoall,
                   coll_tuner().choose(CollectiveId::kAlltoall, blk,
                                       count_per_rank, p, true));

  // Self block: local copy at post time (phantom runs model their data
  // movement separately, so only real buffers are charged).
  if (sb != nullptr && rb != nullptr) {
    sim::advance(profile().copy_cost(blk));
    std::memcpy(rb + static_cast<std::size_t>(me) * blk,
                sb + static_cast<std::size_t>(me) * blk, blk);
  }

  if (op->algo == CollAlgo::kPostAll) {
    // Latency-bound regime: post everything at once.
    CollStage st;
    for (int k = 1; k < p; ++k) {
      const int dst = (me + k) % p;
      const int src = (me - k + p) % p;
      st.sends.push_back({dst, blk_at(sb, dst), blk});
      st.recvs.push_back({src, blk_at_mut(rb, src), blk});
    }
    if (!st.sends.empty() || !st.recvs.empty()) {
      op->chain(0).stages.push_back(std::move(st));
    }
  } else {
    // Bandwidth-bound regime: pairwise sequential exchange bounds the number
    // of concurrent rendezvous flows (what MPICH does for large alltoall).
    assert(op->algo == CollAlgo::kPairwise);
    CollChain& ch = op->chain(0);
    for (int k = 1; k < p; ++k) {
      const int dst = (me + k) % p;
      const int src = (me - k + p) % p;
      CollStage st;
      st.sends.push_back({dst, blk_at(sb, dst), blk});
      st.recvs.push_back({src, blk_at_mut(rb, src), blk});
      ch.stages.push_back(std::move(st));
    }
  }
  return start_collective(std::move(op));
}

void RankCtx::alltoall(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                       Datatype dt, Comm comm) {
  Request r = ialltoall(sbuf, rbuf, count_per_rank, dt, comm);
  wait(r);
}

// ------------------------------------------------------------- allgather ----

Request RankCtx::iallgather(const void* sbuf, void* rbuf,
                            std::size_t count_per_rank, Datatype dt, Comm comm) {
  MpiEntry entry(*this, false, "Iallgather");
  CommInfo& ci = comms_.get(comm);
  const std::size_t blk = count_per_rank * datatype_size(dt);
  const int p = ci.size();
  const int me = ci.my_rank;
  auto* rb = static_cast<std::byte*>(rbuf);
  // Tuning size is the total gathered result (that is what the wire carries).
  auto op = new_op(ci, comm, CollectiveId::kAllgather,
                   coll_tuner().choose(CollectiveId::kAllgather,
                                       blk * static_cast<std::size_t>(p),
                                       count_per_rank * static_cast<std::size_t>(p),
                                       p, true));

  if (sbuf != nullptr && rb != nullptr) {
    sim::advance(profile().copy_cost(blk));
    std::memcpy(rb + static_cast<std::size_t>(me) * blk, sbuf, blk);
  }

  if (op->algo == CollAlgo::kRing) {
    build_ring_allgather(*op, ci, rb, blk, coll_tuner().chains_for(blk));
  } else if (op->algo == CollAlgo::kPairwise) {
    // Sequential exchange rounds (rendezvous-friendly, rarely forced).
    CollChain& ch = op->chain(0);
    for (int k = 1; k < p; ++k) {
      const int dst = (me + k) % p;
      const int src = (me - k + p) % p;
      CollStage st;
      st.sends.push_back({dst, at(rb, static_cast<std::size_t>(me) * blk), blk});
      st.recvs.push_back({src, at(rb, static_cast<std::size_t>(src) * blk), blk});
      ch.stages.push_back(std::move(st));
    }
  } else {
    assert(op->algo == CollAlgo::kPostAll);
    CollStage st;
    for (int k = 1; k < p; ++k) {
      const int dst = (me + k) % p;
      const int src = (me - k + p) % p;
      st.sends.push_back({dst, at(rb, static_cast<std::size_t>(me) * blk), blk});
      st.recvs.push_back({src, at(rb, static_cast<std::size_t>(src) * blk), blk});
    }
    if (!st.sends.empty() || !st.recvs.empty()) {
      op->chain(0).stages.push_back(std::move(st));
    }
  }
  return start_collective(std::move(op));
}

void RankCtx::allgather(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                        Datatype dt, Comm comm) {
  Request r = iallgather(sbuf, rbuf, count_per_rank, dt, comm);
  wait(r);
}

// --------------------------------------------------------- gather/scatter ----

Request RankCtx::igather(const void* sbuf, void* rbuf,
                         std::size_t count_per_rank, Datatype dt, int root,
                         Comm comm) {
  MpiEntry entry(*this, false, "Igather");
  CommInfo& ci = comms_.get(comm);
  const std::size_t blk = count_per_rank * datatype_size(dt);
  const int p = ci.size();
  const int me = ci.my_rank;
  auto op = new_op(ci, comm, CollectiveId::kGather,
                   coll_tuner().choose(CollectiveId::kGather, blk,
                                       count_per_rank, p, true));
  op->root = root;
  if (me == root) {
    auto* rb = static_cast<std::byte*>(rbuf);
    sim::advance(profile().copy_cost(blk));
    std::memcpy(rb + static_cast<std::size_t>(me) * blk, sbuf, blk);
    CollStage st;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      st.recvs.push_back({r, rb + static_cast<std::size_t>(r) * blk, blk});
    }
    if (!st.recvs.empty()) op->chain(0).stages.push_back(std::move(st));
  } else {
    CollStage st;
    st.sends.push_back({root, sbuf, blk});
    op->chain(0).stages.push_back(std::move(st));
  }
  return start_collective(std::move(op));
}

void RankCtx::gather(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                     Datatype dt, int root, Comm comm) {
  Request r = igather(sbuf, rbuf, count_per_rank, dt, root, comm);
  wait(r);
}

Request RankCtx::iscatter(const void* sbuf, void* rbuf,
                          std::size_t count_per_rank, Datatype dt, int root,
                          Comm comm) {
  MpiEntry entry(*this, false, "Iscatter");
  CommInfo& ci = comms_.get(comm);
  const std::size_t blk = count_per_rank * datatype_size(dt);
  const int p = ci.size();
  const int me = ci.my_rank;
  auto op = new_op(ci, comm, CollectiveId::kScatter,
                   coll_tuner().choose(CollectiveId::kScatter, blk,
                                       count_per_rank, p, true));
  op->root = root;
  if (me == root) {
    const auto* sb = static_cast<const std::byte*>(sbuf);
    sim::advance(profile().copy_cost(blk));
    std::memcpy(rbuf, sb + static_cast<std::size_t>(me) * blk, blk);
    CollStage st;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      st.sends.push_back({r, sb + static_cast<std::size_t>(r) * blk, blk});
    }
    if (!st.sends.empty()) op->chain(0).stages.push_back(std::move(st));
  } else {
    CollStage st;
    st.recvs.push_back({root, rbuf, blk});
    op->chain(0).stages.push_back(std::move(st));
  }
  return start_collective(std::move(op));
}

void RankCtx::scatter(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                      Datatype dt, int root, Comm comm) {
  Request r = iscatter(sbuf, rbuf, count_per_rank, dt, root, comm);
  wait(r);
}

// -------------------------------------------------------------------- scan ----

Request RankCtx::iscan(const void* sbuf, void* rbuf, std::size_t count,
                       Datatype dt, Op rop, Comm comm) {
  MpiEntry entry(*this, false, "Iscan");
  CommInfo& ci = comms_.get(comm);
  const std::size_t bytes = count * datatype_size(dt);
  const bool phantom = sbuf == nullptr;
  const std::size_t store = phantom ? 0 : bytes;
  const int p = ci.size();
  const int me = ci.my_rank;
  auto op = new_op(ci, comm, CollectiveId::kScan,
                   coll_tuner().choose(CollectiveId::kScan, bytes, count, p,
                                       op_commutative(rop)));
  CollChain& ch = op->chain(0);
  CollOp* opp = op.get();
  const std::size_t acc = add_temp(*op, store);
  sim::advance(profile().copy_cost(bytes));
  if (!phantom) std::memcpy(op->temps[acc].data(), sbuf, bytes);
  std::byte* accum = op->temps[acc].data();
  // Hillis-Steele inclusive scan: at distance d, receive the partial sum of
  // [me-d, me] prefixes from rank me-d and send mine to me+d. A snapshot of
  // the accumulator is sent (receives combine after both complete).
  int round = 0;
  for (int d = 1; d < p; d <<= 1, ++round) {
    CollStage st;
    const std::size_t snap = add_temp(*op, store);
    if (!phantom) std::memcpy(op->temps[snap].data(), accum, bytes);
    const std::size_t snap_runtime = snap;
    std::size_t rtmp = 0;
    bool has_recv = false;
    if (me + d < p) st.sends.push_back({me + d, op->temps[snap].data(), bytes});
    if (me - d >= 0) {
      rtmp = add_temp(*op, store);
      st.recvs.push_back({me - d, op->temps[rtmp].data(), bytes});
      has_recv = true;
    }
    if (st.sends.empty() && st.recvs.empty()) break;
    st.on_complete = [opp, rtmp, has_recv, accum, dt, rop, count, bytes,
                      phantom, snap_runtime](RankCtx& rc) {
      if (has_recv) {
        sim::advance(rc.profile().reduce_cost(bytes));
        apply_op(rop, dt, opp->temps[rtmp].data(), accum, count);
      }
      // Refresh the next round's snapshot now that accum changed.
      (void)snap_runtime;
      (void)phantom;
    };
    ch.stages.push_back(std::move(st));
  }
  // Snapshots for later rounds must reflect combines from earlier rounds:
  // rebuild them lazily by chaining on_complete handlers. Simpler approach:
  // each round's send snapshot is prepared by the previous round's
  // on_complete; round 0's was prepared above. Patch the handlers:
  for (std::size_t r = 0; r + 1 < ch.stages.size(); ++r) {
    auto prev = ch.stages[r].on_complete;
    // The next round's snapshot temp is the one its send points at.
    const CollStage& next = ch.stages[r + 1];
    std::byte* next_snap = next.sends.empty()
                               ? nullptr
                               : const_cast<std::byte*>(
                                     static_cast<const std::byte*>(next.sends[0].buf));
    ch.stages[r].on_complete = [prev, next_snap, accum, bytes,
                                phantom](RankCtx& rc) {
      if (prev) prev(rc);
      if (next_snap != nullptr && !phantom) {
        std::memcpy(next_snap, accum, bytes);
      }
    };
  }
  op->on_finish = [accum, rbuf, bytes](RankCtx& rc) {
    sim::advance(rc.profile().copy_cost(bytes));
    if (rbuf != nullptr) std::memcpy(rbuf, accum, bytes);
  };
  return start_collective(std::move(op));
}

void RankCtx::scan(const void* sbuf, void* rbuf, std::size_t count, Datatype dt,
                   Op rop, Comm comm) {
  Request r = iscan(sbuf, rbuf, count, dt, rop, comm);
  wait(r);
}

// ---------------------------------------------------- reduce_scatter_block ----

void RankCtx::reduce_scatter_block(const void* sbuf, void* rbuf,
                                   std::size_t count_per_rank, Datatype dt,
                                   Op op, Comm comm) {
  const CommInfo& ci = comms_.get(comm);
  const std::size_t total = count_per_rank * static_cast<std::size_t>(ci.size());
  std::vector<std::byte> full(total * datatype_size(dt));
  reduce(sbuf, full.data(), total, dt, op, /*root=*/0, comm);
  scatter(full.data(), rbuf, count_per_rank, dt, /*root=*/0, comm);
}

}  // namespace smpi
