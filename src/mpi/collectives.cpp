// Collective algorithms, compiled to CollOp schedules per rank.
//
// Algorithm choices mirror mainstream MPI implementations:
//   * barrier      — dissemination (ceil(log2 p) rounds)
//   * bcast        — binomial tree
//   * reduce       — binomial tree (leaves send partial results inward)
//   * allreduce    — recursive doubling for power-of-two sizes, otherwise
//                    reduce-to-0 + bcast
//   * alltoall     — post-all for eager-sized blocks, pairwise sequential
//                    exchange for rendezvous-sized blocks
//   * allgather    — post-all (blocks are typically small)
//   * gather/scatter — linear rooted trees
//   * reduce_scatter_block — reduce + scatter
#include <cassert>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "mpi/cluster.hpp"
#include "mpi/datatype.hpp"
#include "mpi/entry.hpp"
#include "mpi/rank_ctx.hpp"

namespace smpi {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

std::unique_ptr<CollOp> new_op(CommInfo& ci, Comm comm) {
  auto op = std::make_unique<CollOp>();
  op->comm = comm;
  op->seq = ci.coll_seq++;
  return op;
}

std::size_t add_temp(CollOp& op, std::size_t bytes) {
  op.temps.emplace_back(bytes);
  return op.temps.size() - 1;
}

/// Append the stages of a binomial broadcast of `buf` (bytes) from comm rank
/// `root` to schedule `op`.
void build_bcast_stages(CollOp& op, const CommInfo& ci, void* buf,
                        std::size_t bytes, int root) {
  const int p = ci.size();
  const int rel = (ci.my_rank - root + p) % p;
  int mask = 1;
  int parent_rel = -1;
  while (mask < p) {
    if ((rel & mask) != 0) {
      parent_rel = rel - mask;
      break;
    }
    mask <<= 1;
  }
  if (parent_rel >= 0) {
    CollStage st;
    st.recvs.push_back({(parent_rel + root) % p, buf, bytes});
    op.stages.push_back(std::move(st));
  } else {
    mask = 1;
    while (mask < p) mask <<= 1;
  }
  // Children: all set bits below my entry bit.
  CollStage sends;
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (rel + m < p) sends.sends.push_back({(rel + m + root) % p, buf, bytes});
  }
  if (!sends.sends.empty()) op.stages.push_back(std::move(sends));
}

/// Append binomial-reduce stages combining into `accum` (which must start as
/// this rank's contribution); the result lands in rank `root`'s accum.
void build_reduce_stages(CollOp& op, const CommInfo& ci, std::byte* accum,
                         std::size_t bytes, Datatype dt, Op rop, int root,
                         std::size_t count, std::size_t store) {
  const int p = ci.size();
  const int rel = (ci.my_rank - root + p) % p;
  CollOp* opp = &op;  // CollOp lives in a unique_ptr; its address is stable
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((rel & mask) == 0) {
      const int src_rel = rel + mask;
      if (src_rel >= p) continue;
      const std::size_t t = add_temp(op, store);
      CollStage st;
      st.recvs.push_back({(src_rel + root) % p, op.temps[t].data(), bytes});
      st.on_complete = [opp, t, accum, dt, rop, count, bytes](RankCtx& rc) {
        sim::advance(rc.profile().reduce_cost(bytes));
        apply_op(rop, dt, opp->temps[t].data(), accum, count);
      };
      op.stages.push_back(std::move(st));
    } else {
      CollStage st;
      st.sends.push_back({(rel - mask + root) % p, accum, bytes});
      op.stages.push_back(std::move(st));
      return;  // after sending inward this rank is done reducing
    }
  }
}

}  // namespace

// --------------------------------------------------------------- barrier ----

Request RankCtx::ibarrier(Comm comm) {
  MpiEntry entry(*this, false, "Ibarrier");
  CommInfo& ci = comms_.get(comm);
  auto op = new_op(ci, comm);
  const int p = ci.size();
  const int me = ci.my_rank;
  for (int k = 1; k < p; k <<= 1) {
    CollStage st;
    // 1-byte token: zero-length messages are legal but a token keeps the
    // payload path uniform.
    const std::size_t t = add_temp(*op, 1);
    const std::size_t t2 = add_temp(*op, 1);
    st.sends.push_back({(me + k) % p, op->temps[t].data(), 1});
    st.recvs.push_back({(me - k + p) % p, op->temps[t2].data(), 1});
    op->stages.push_back(std::move(st));
  }
  return start_collective(std::move(op));
}

void RankCtx::barrier(Comm comm) {
  Request r = ibarrier(comm);
  wait(r);
}

// ----------------------------------------------------------------- bcast ----

Request RankCtx::ibcast(void* buf, std::size_t count, Datatype dt, int root,
                        Comm comm) {
  MpiEntry entry(*this, false, "Ibcast");
  CommInfo& ci = comms_.get(comm);
  auto op = new_op(ci, comm);
  build_bcast_stages(*op, ci, buf, count * datatype_size(dt), root);
  return start_collective(std::move(op));
}

void RankCtx::bcast(void* buf, std::size_t count, Datatype dt, int root,
                    Comm comm) {
  Request r = ibcast(buf, count, dt, root, comm);
  wait(r);
}

// ---------------------------------------------------------------- reduce ----

Request RankCtx::ireduce(const void* sbuf, void* rbuf, std::size_t count,
                         Datatype dt, Op rop, int root, Comm comm) {
  MpiEntry entry(*this, false, "Ireduce");
  CommInfo& ci = comms_.get(comm);
  const std::size_t bytes = count * datatype_size(dt);
  // Phantom (timing-only) reductions carry no data, so the schedule's
  // scratch buffers are not materialized either.
  const bool phantom = sbuf == nullptr;
  const std::size_t store = phantom ? 0 : bytes;
  auto op = new_op(ci, comm);
  const std::size_t acc = add_temp(*op, store);
  sim::advance(profile().copy_cost(bytes));
  if (!phantom) std::memcpy(op->temps[acc].data(), sbuf, bytes);
  std::byte* accum = op->temps[acc].data();
  build_reduce_stages(*op, ci, accum, bytes, dt, rop, root, count, store);
  if (ci.my_rank == root) {
    op->on_finish = [accum, rbuf, bytes](RankCtx& rc) {
      sim::advance(rc.profile().copy_cost(bytes));
      if (rbuf != nullptr) std::memcpy(rbuf, accum, bytes);
    };
  }
  return start_collective(std::move(op));
}

void RankCtx::reduce(const void* sbuf, void* rbuf, std::size_t count,
                     Datatype dt, Op rop, int root, Comm comm) {
  Request r = ireduce(sbuf, rbuf, count, dt, rop, root, comm);
  wait(r);
}

// ------------------------------------------------------------- allreduce ----

Request RankCtx::iallreduce(const void* sbuf, void* rbuf, std::size_t count,
                            Datatype dt, Op rop, Comm comm) {
  MpiEntry entry(*this, false, "Iallreduce");
  CommInfo& ci = comms_.get(comm);
  const std::size_t bytes = count * datatype_size(dt);
  const bool phantom = sbuf == nullptr;
  const std::size_t store = phantom ? 0 : bytes;
  const int p = ci.size();
  auto op = new_op(ci, comm);
  const std::size_t acc = add_temp(*op, store);
  sim::advance(profile().copy_cost(bytes));
  if (!phantom) std::memcpy(op->temps[acc].data(), sbuf, bytes);
  std::byte* accum = op->temps[acc].data();

  const std::size_t elem = datatype_size(dt);
  if (is_pow2(p) && p > 1 && count % static_cast<std::size_t>(p) == 0 &&
      bytes >= 64 * 1024) {
    // Rabenseifner: recursive-halving reduce-scatter followed by a
    // recursive-doubling allgather — ~2x the vector on the wire instead of
    // log2(p)x. This is what mainstream MPIs use for large allreduce and
    // what makes CNN-scale gradient exchanges feasible (Fig. 14).
    CollOp* opp = op.get();
    const int logp = [&] {
      int l = 0;
      for (int k = 1; k < p; k <<= 1) ++l;
      return l;
    }();
    // Segment [lo,hi) owned after k halving rounds (element indices).
    auto rs_range = [&](int rank, int k) {
      std::size_t lo = 0, hi = count;
      int step = p / 2;
      for (int j = 0; j < k; ++j, step /= 2) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if ((rank & step) == 0) {
          hi = mid;  // lower half kept by the lower partner
        } else {
          lo = mid;
        }
      }
      return std::pair<std::size_t, std::size_t>(lo, hi);
    };
    // ---- reduce-scatter (recursive halving) ----
    int step = p / 2;
    for (int j = 0; j < logp; ++j, step /= 2) {
      const int partner = ci.my_rank ^ step;
      const auto [lo, hi] = rs_range(ci.my_rank, j);
      const std::size_t mid = lo + (hi - lo) / 2;
      const bool keep_lower = (ci.my_rank & step) == 0;
      const std::size_t keep_lo = keep_lower ? lo : mid;
      const std::size_t keep_n = (hi - lo) / 2;
      const std::size_t send_lo = keep_lower ? mid : lo;
      const std::size_t t = add_temp(*op, phantom ? 0 : keep_n * elem);
      CollStage st;
      st.sends.push_back({partner,
                          phantom ? nullptr : accum + send_lo * elem,
                          keep_n * elem});
      st.recvs.push_back({partner, op->temps[t].data(), keep_n * elem});
      st.on_complete = [opp, t, accum, dt, rop, keep_lo, keep_n, elem,
                        phantom](RankCtx& rc) {
        sim::advance(rc.profile().reduce_cost(keep_n * elem));
        if (!phantom) {
          apply_op(rop, dt, opp->temps[t].data(), accum + keep_lo * elem, keep_n);
        }
      };
      op->stages.push_back(std::move(st));
    }
    // ---- allgather (recursive doubling, undoing the halvings) ----
    for (int j = logp - 1; j >= 0; --j) {
      const int s2 = p >> (j + 1);
      const int partner = ci.my_rank ^ s2;
      const auto [mlo, mhi] = rs_range(ci.my_rank, j + 1);
      const auto [plo, phi] = rs_range(partner, j + 1);
      CollStage st;
      st.sends.push_back({partner, phantom ? nullptr : accum + mlo * elem,
                          (mhi - mlo) * elem});
      st.recvs.push_back({partner, phantom ? nullptr : accum + plo * elem,
                          (phi - plo) * elem});
      op->stages.push_back(std::move(st));
    }
  } else if (is_pow2(p)) {
    // Recursive doubling: log2(p) exchange-and-combine rounds. Each round
    // sends a snapshot of the accumulator prepared by the previous round so
    // that rendezvous-sized payloads can be read at DMA time safely.
    int nrounds = 0;
    for (int k = 1; k < p; k <<= 1) ++nrounds;
    std::vector<std::size_t> snaps, rtmps;
    for (int i = 0; i < nrounds; ++i) {
      snaps.push_back(add_temp(*op, store));
      rtmps.push_back(add_temp(*op, store));
    }
    if (nrounds > 0 && !phantom) {
      std::memcpy(op->temps[snaps[0]].data(), accum, bytes);
    }
    CollOp* opp = op.get();
    int round = 0;
    for (int k = 1; k < p; k <<= 1, ++round) {
      const int partner = ci.my_rank ^ k;
      CollStage st;
      st.sends.push_back({partner, op->temps[snaps[static_cast<std::size_t>(round)]].data(), bytes});
      st.recvs.push_back({partner, op->temps[rtmps[static_cast<std::size_t>(round)]].data(), bytes});
      const std::size_t rt = rtmps[static_cast<std::size_t>(round)];
      const bool last = (round == nrounds - 1);
      const std::size_t next_snap = last ? 0 : snaps[static_cast<std::size_t>(round + 1)];
      st.on_complete = [opp, rt, accum, dt, rop, count, bytes, last, phantom,
                        next_snap](RankCtx& rc) {
        sim::advance(rc.profile().reduce_cost(bytes));
        apply_op(rop, dt, opp->temps[rt].data(), accum, count);
        if (!last && !phantom) {
          std::memcpy(opp->temps[next_snap].data(), accum, bytes);
        }
      };
      op->stages.push_back(std::move(st));
    }
  } else {
    build_reduce_stages(*op, ci, accum, bytes, dt, rop, /*root=*/0, count, store);
    build_bcast_stages(*op, ci, accum, bytes, /*root=*/0);
  }

  op->on_finish = [accum, rbuf, bytes](RankCtx& rc) {
    sim::advance(rc.profile().copy_cost(bytes));
    if (rbuf != nullptr) std::memcpy(rbuf, accum, bytes);
  };
  return start_collective(std::move(op));
}

void RankCtx::allreduce(const void* sbuf, void* rbuf, std::size_t count,
                        Datatype dt, Op rop, Comm comm) {
  Request r = iallreduce(sbuf, rbuf, count, dt, rop, comm);
  wait(r);
}

// -------------------------------------------------------------- alltoall ----

Request RankCtx::ialltoall(const void* sbuf, void* rbuf,
                           std::size_t count_per_rank, Datatype dt, Comm comm) {
  MpiEntry entry(*this, false, "Ialltoall");
  CommInfo& ci = comms_.get(comm);
  const std::size_t blk = count_per_rank * datatype_size(dt);
  const int p = ci.size();
  const int me = ci.my_rank;
  const auto* sb = static_cast<const std::byte*>(sbuf);
  auto* rb = static_cast<std::byte*>(rbuf);
  auto blk_at = [blk](const std::byte* base, int i) -> const std::byte* {
    return base == nullptr ? nullptr : base + static_cast<std::size_t>(i) * blk;
  };
  auto blk_at_mut = [blk](std::byte* base, int i) -> std::byte* {
    return base == nullptr ? nullptr : base + static_cast<std::size_t>(i) * blk;
  };
  auto op = new_op(ci, comm);

  // Self block: local copy at post time (phantom runs model their data
  // movement separately, so only real buffers are charged).
  if (sb != nullptr && rb != nullptr) {
    sim::advance(profile().copy_cost(blk));
    std::memcpy(rb + static_cast<std::size_t>(me) * blk,
                sb + static_cast<std::size_t>(me) * blk, blk);
  }

  if (blk <= profile().eager_threshold) {
    // Latency-bound regime: post everything at once.
    CollStage st;
    for (int k = 1; k < p; ++k) {
      const int dst = (me + k) % p;
      const int src = (me - k + p) % p;
      st.sends.push_back({dst, blk_at(sb, dst), blk});
      st.recvs.push_back({src, blk_at_mut(rb, src), blk});
    }
    if (!st.sends.empty() || !st.recvs.empty()) op->stages.push_back(std::move(st));
  } else {
    // Bandwidth-bound regime: pairwise sequential exchange bounds the number
    // of concurrent rendezvous flows (what MPICH does for large alltoall).
    for (int k = 1; k < p; ++k) {
      const int dst = (me + k) % p;
      const int src = (me - k + p) % p;
      CollStage st;
      st.sends.push_back({dst, blk_at(sb, dst), blk});
      st.recvs.push_back({src, blk_at_mut(rb, src), blk});
      op->stages.push_back(std::move(st));
    }
  }
  return start_collective(std::move(op));
}

void RankCtx::alltoall(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                       Datatype dt, Comm comm) {
  Request r = ialltoall(sbuf, rbuf, count_per_rank, dt, comm);
  wait(r);
}

// ------------------------------------------------------------- allgather ----

Request RankCtx::iallgather(const void* sbuf, void* rbuf,
                            std::size_t count_per_rank, Datatype dt, Comm comm) {
  MpiEntry entry(*this, false, "Iallgather");
  CommInfo& ci = comms_.get(comm);
  const std::size_t blk = count_per_rank * datatype_size(dt);
  const int p = ci.size();
  const int me = ci.my_rank;
  auto* rb = static_cast<std::byte*>(rbuf);
  auto op = new_op(ci, comm);

  if (sbuf != nullptr && rb != nullptr) {
    sim::advance(profile().copy_cost(blk));
    std::memcpy(rb + static_cast<std::size_t>(me) * blk, sbuf, blk);
  }

  CollStage st;
  for (int k = 1; k < p; ++k) {
    const int dst = (me + k) % p;
    const int src = (me - k + p) % p;
    st.sends.push_back({dst, rb == nullptr ? nullptr : rb + static_cast<std::size_t>(me) * blk, blk});
    st.recvs.push_back({src, rb == nullptr ? nullptr : rb + static_cast<std::size_t>(src) * blk, blk});
  }
  if (!st.sends.empty() || !st.recvs.empty()) op->stages.push_back(std::move(st));
  return start_collective(std::move(op));
}

void RankCtx::allgather(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                        Datatype dt, Comm comm) {
  Request r = iallgather(sbuf, rbuf, count_per_rank, dt, comm);
  wait(r);
}

// --------------------------------------------------------- gather/scatter ----

Request RankCtx::igather(const void* sbuf, void* rbuf,
                         std::size_t count_per_rank, Datatype dt, int root,
                         Comm comm) {
  MpiEntry entry(*this, false, "Igather");
  CommInfo& ci = comms_.get(comm);
  const std::size_t blk = count_per_rank * datatype_size(dt);
  const int p = ci.size();
  const int me = ci.my_rank;
  auto op = new_op(ci, comm);
  if (me == root) {
    auto* rb = static_cast<std::byte*>(rbuf);
    sim::advance(profile().copy_cost(blk));
    std::memcpy(rb + static_cast<std::size_t>(me) * blk, sbuf, blk);
    CollStage st;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      st.recvs.push_back({r, rb + static_cast<std::size_t>(r) * blk, blk});
    }
    if (!st.recvs.empty()) op->stages.push_back(std::move(st));
  } else {
    CollStage st;
    st.sends.push_back({root, sbuf, blk});
    op->stages.push_back(std::move(st));
  }
  return start_collective(std::move(op));
}

void RankCtx::gather(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                     Datatype dt, int root, Comm comm) {
  Request r = igather(sbuf, rbuf, count_per_rank, dt, root, comm);
  wait(r);
}

Request RankCtx::iscatter(const void* sbuf, void* rbuf,
                          std::size_t count_per_rank, Datatype dt, int root,
                          Comm comm) {
  MpiEntry entry(*this, false, "Iscatter");
  CommInfo& ci = comms_.get(comm);
  const std::size_t blk = count_per_rank * datatype_size(dt);
  const int p = ci.size();
  const int me = ci.my_rank;
  auto op = new_op(ci, comm);
  if (me == root) {
    const auto* sb = static_cast<const std::byte*>(sbuf);
    sim::advance(profile().copy_cost(blk));
    std::memcpy(rbuf, sb + static_cast<std::size_t>(me) * blk, blk);
    CollStage st;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      st.sends.push_back({r, sb + static_cast<std::size_t>(r) * blk, blk});
    }
    if (!st.sends.empty()) op->stages.push_back(std::move(st));
  } else {
    CollStage st;
    st.recvs.push_back({root, rbuf, blk});
    op->stages.push_back(std::move(st));
  }
  return start_collective(std::move(op));
}

void RankCtx::scatter(const void* sbuf, void* rbuf, std::size_t count_per_rank,
                      Datatype dt, int root, Comm comm) {
  Request r = iscatter(sbuf, rbuf, count_per_rank, dt, root, comm);
  wait(r);
}

// -------------------------------------------------------------------- scan ----

Request RankCtx::iscan(const void* sbuf, void* rbuf, std::size_t count,
                       Datatype dt, Op rop, Comm comm) {
  MpiEntry entry(*this, false, "Iscan");
  CommInfo& ci = comms_.get(comm);
  const std::size_t bytes = count * datatype_size(dt);
  const bool phantom = sbuf == nullptr;
  const std::size_t store = phantom ? 0 : bytes;
  const int p = ci.size();
  const int me = ci.my_rank;
  auto op = new_op(ci, comm);
  CollOp* opp = op.get();
  const std::size_t acc = add_temp(*op, store);
  sim::advance(profile().copy_cost(bytes));
  if (!phantom) std::memcpy(op->temps[acc].data(), sbuf, bytes);
  std::byte* accum = op->temps[acc].data();
  // Hillis-Steele inclusive scan: at distance d, receive the partial sum of
  // [me-d, me] prefixes from rank me-d and send mine to me+d. A snapshot of
  // the accumulator is sent (receives combine after both complete).
  int round = 0;
  for (int d = 1; d < p; d <<= 1, ++round) {
    CollStage st;
    const std::size_t snap = add_temp(*op, store);
    if (!phantom) std::memcpy(op->temps[snap].data(), accum, bytes);
    const std::size_t snap_runtime = snap;
    std::size_t rtmp = 0;
    bool has_recv = false;
    if (me + d < p) st.sends.push_back({me + d, op->temps[snap].data(), bytes});
    if (me - d >= 0) {
      rtmp = add_temp(*op, store);
      st.recvs.push_back({me - d, op->temps[rtmp].data(), bytes});
      has_recv = true;
    }
    if (st.sends.empty() && st.recvs.empty()) break;
    st.on_complete = [opp, rtmp, has_recv, accum, dt, rop, count, bytes,
                      phantom, snap_runtime](RankCtx& rc) {
      if (has_recv) {
        sim::advance(rc.profile().reduce_cost(bytes));
        apply_op(rop, dt, opp->temps[rtmp].data(), accum, count);
      }
      // Refresh the next round's snapshot now that accum changed.
      (void)snap_runtime;
      (void)phantom;
    };
    op->stages.push_back(std::move(st));
  }
  // Snapshots for later rounds must reflect combines from earlier rounds:
  // rebuild them lazily by chaining on_complete handlers. Simpler approach:
  // each round's send snapshot is prepared by the previous round's
  // on_complete; round 0's was prepared above. Patch the handlers:
  for (std::size_t r = 0; r + 1 < op->stages.size(); ++r) {
    auto prev = op->stages[r].on_complete;
    // The next round's snapshot temp is the one its send points at.
    const CollStage& next = op->stages[r + 1];
    std::byte* next_snap = next.sends.empty()
                               ? nullptr
                               : const_cast<std::byte*>(
                                     static_cast<const std::byte*>(next.sends[0].buf));
    op->stages[r].on_complete = [prev, next_snap, accum, bytes,
                                 phantom](RankCtx& rc) {
      if (prev) prev(rc);
      if (next_snap != nullptr && !phantom) {
        std::memcpy(next_snap, accum, bytes);
      }
    };
  }
  op->on_finish = [accum, rbuf, bytes](RankCtx& rc) {
    sim::advance(rc.profile().copy_cost(bytes));
    if (rbuf != nullptr) std::memcpy(rbuf, accum, bytes);
  };
  return start_collective(std::move(op));
}

void RankCtx::scan(const void* sbuf, void* rbuf, std::size_t count, Datatype dt,
                   Op rop, Comm comm) {
  Request r = iscan(sbuf, rbuf, count, dt, rop, comm);
  wait(r);
}

// ---------------------------------------------------- reduce_scatter_block ----

void RankCtx::reduce_scatter_block(const void* sbuf, void* rbuf,
                                   std::size_t count_per_rank, Datatype dt,
                                   Op op, Comm comm) {
  const CommInfo& ci = comms_.get(comm);
  const std::size_t total = count_per_rank * static_cast<std::size_t>(ci.size());
  std::vector<std::byte> full(total * datatype_size(dt));
  reduce(sbuf, full.data(), total, dt, op, /*root=*/0, comm);
  scatter(full.data(), rbuf, count_per_rank, dt, /*root=*/0, comm);
}

}  // namespace smpi
