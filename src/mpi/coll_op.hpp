// Nonblocking-collective schedules.
//
// A collective is compiled (per rank) into one or more *chains* of stages.
// Each stage posts a set of internal point-to-point operations; when they all
// complete, an optional local computation runs (e.g. a reduction combine) and
// the chain's next stage is posted. Chains advance independently — that is
// the pipelining: a segmented ring allreduce compiles each segment into its
// own chain, so segment k+1's sends are on the wire while segment k's combine
// runs. The schedule advances only inside the progress engine — i.e. only
// while some thread is in the MPI library — which is exactly why nonblocking
// collectives need asynchronous progress (paper Fig. 3/5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "mpi/coll_tuner.hpp"
#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace smpi {

class RankCtx;

/// Chains per op are bounded so the per-chain tag salt fits alongside the
/// sequence number (tag = (seq * kCollMaxChains + chain) mod 2^30).
inline constexpr std::size_t kCollMaxChains = 64;

struct CollStage {
  struct SendItem {
    int dst;  ///< comm rank
    const void* buf;
    std::size_t bytes;
  };
  struct RecvItem {
    int src;  ///< comm rank
    void* buf;
    std::size_t bytes;
  };
  std::vector<SendItem> sends;
  std::vector<RecvItem> recvs;
  /// Local work after the stage's messages complete (reduction combines,
  /// copy-outs). Runs on the fiber driving progress; may advance the clock.
  std::function<void(RankCtx&)> on_complete;
};

/// One independent stage sequence. Within a chain stages are strictly
/// ordered; across chains there is no ordering, so a chain must never read a
/// buffer another chain writes (segmented schedules keep chains on disjoint
/// element ranges).
struct CollChain {
  std::vector<CollStage> stages;
  std::size_t cur = 0;
  bool stage_posted = false;
  std::vector<Request> pending;  ///< internal requests of the current stage
  sim::Time posted_at;           ///< current stage's post time (chunk timing)

  [[nodiscard]] bool done() const { return cur >= stages.size() && !stage_posted; }
};

struct CollOp {
  Comm comm{};
  /// Optional gate: no chain posts its first stage (and the op cannot
  /// complete) until this returns true. Used by ifence to drain RMA first.
  std::function<bool(RankCtx&)> gate;
  bool gate_open = false;
  std::uint64_t seq = 0;  ///< per-comm collective sequence number (tag base)
  CollectiveId kind = CollectiveId::kBarrier;
  CollAlgo algo = CollAlgo::kUnknown;  ///< set by the builder via the tuner
  int root = -1;  ///< comm-rank root for rooted collectives (-1: unrooted)
  std::vector<CollChain> chains;
  /// Scratch buffers owned by the schedule (accumulators, pack buffers).
  std::vector<std::vector<std::byte>> temps;
  /// Final copy-out / epilogue, run once when the last chain completes.
  std::function<void(RankCtx&)> on_finish;

  std::byte* temp(std::size_t i) { return temps[i].data(); }
  /// Chain accessor, growing on demand (chain 0 is the unsegmented default).
  CollChain& chain(std::size_t i) {
    while (chains.size() <= i) chains.emplace_back();
    return chains[i];
  }
  [[nodiscard]] bool done() const {
    for (const CollChain& c : chains) {
      if (!c.done()) return false;
    }
    return true;
  }
};

}  // namespace smpi
