// Nonblocking-collective schedules.
//
// A collective is compiled (per rank) into a list of stages. Each stage posts
// a set of internal point-to-point operations; when they all complete, an
// optional local computation runs (e.g. a reduction combine) and the next
// stage is posted. The schedule advances only inside the progress engine —
// i.e. only while some thread is in the MPI library — which is exactly why
// nonblocking collectives need asynchronous progress (paper Fig. 3/5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace smpi {

class RankCtx;

struct CollStage {
  struct SendItem {
    int dst;  ///< comm rank
    const void* buf;
    std::size_t bytes;
  };
  struct RecvItem {
    int src;  ///< comm rank
    void* buf;
    std::size_t bytes;
  };
  std::vector<SendItem> sends;
  std::vector<RecvItem> recvs;
  /// Local work after the stage's messages complete (reduction combines,
  /// copy-outs). Runs on the fiber driving progress; may advance the clock.
  std::function<void(RankCtx&)> on_complete;
};

struct CollOp {
  Comm comm{};
  /// Optional gate: the next stage (and final completion) is held back until
  /// this returns true. Used by ifence to drain outstanding RMA first.
  std::function<bool(RankCtx&)> gate;
  std::uint64_t seq = 0;  ///< per-comm collective sequence number (tag base)
  std::vector<CollStage> stages;
  std::size_t cur = 0;
  bool stage_posted = false;
  std::vector<Request> pending;  ///< internal requests of the current stage
  /// Scratch buffers owned by the schedule (accumulators, pack buffers).
  std::vector<std::vector<std::byte>> temps;
  /// Final copy-out / epilogue, run once when the last stage completes.
  std::function<void(RankCtx&)> on_finish;

  std::byte* temp(std::size_t i) { return temps[i].data(); }
};

}  // namespace smpi
