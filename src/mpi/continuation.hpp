// Continuation chaining: `.then(cb)` on nonblocking operations.
//
// The paper's offload proxy hides MPI *calls* from application threads, but
// a polling application still pulls its threads back into the runtime to
// discover completion. Continuations remove that last touch point: attach a
// callback to a request and the proxy's progress context — the offload
// engine fiber for the offload approach, the test/progress pump for the
// direct approaches — runs it at completion time. Callbacks may post
// follow-up operations and attach further continuations, so an entire
// dependency graph executes without the application thread re-entering MPI
// (cf. GHEX's continuation/callback communicators and the sender/receiver
// designs cited in PAPERS.md).
//
//   cont::Event done;
//   cont::irecv(proxy, buf, n, dt, src, tag).then([&](const smpi::Status&) {
//     cont::isend(proxy, buf, n, dt, nxt, tag).then(
//         [&](const smpi::Status&) { done.set(); });
//   });
//   ... compute ...
//   done.wait(proxy);   // drives the proxy's continuation machinery
//
// Execution rules (DESIGN.md §13):
//   * a continuation runs exactly once, after the payload/Status writes of
//     its operation are visible — for receives, only after the reliability
//     layer admitted the frame (rel_admit), never on a duplicate/corrupt one;
//   * callbacks must never block (Event::wait / proxy wait calls from a
//     callback throw on the offload engine); post + chain instead;
//   * attaching to an already-completed or already-released request runs the
//     callback inline on the attaching thread — the continuation analogue of
//     the "waiting twice is safe" contract on PReq.
//
// Counters are plain (non-atomic) because the simulator's fibers within one
// rank are cooperatively scheduled — documented loudly here because a real
// pthread port must make Event/Join state atomic.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/proxy.hpp"

namespace cont {

using core::ContFn;

/// Per-request hook of when_all: runs before the group countdown, with the
/// completing request's index in the span and its Status.
using EachFn = std::function<void(std::size_t, const smpi::Status&)>;

/// A posted operation awaiting its `.then()`. Move-only, rvalue-consumed:
/// either chain a continuation or take the raw handle back with release().
/// Destroying an unconsumed Pending waits for the operation (RAII: the
/// request must not outlive its buffers silently).
class Pending {
 public:
  Pending(core::Proxy& p, core::PReq r) : proxy_(&p), r_(r) {}
  Pending(Pending&& o) noexcept
      : proxy_(std::exchange(o.proxy_, nullptr)),
        r_(std::exchange(o.r_, core::PReq{})) {}
  Pending& operator=(Pending&&) = delete;
  Pending(const Pending&) = delete;
  Pending& operator=(const Pending&) = delete;
  ~Pending() {
    if (proxy_ != nullptr && !r_.is_null()) proxy_->wait(r_);
  }

  /// Chain `fn` to run at completion; consumes the Pending.
  void then(ContFn fn) && {
    proxy_->attach_continuation(r_, std::move(fn));
    proxy_ = nullptr;
  }

  /// Opt out of chaining: take the plain handle (wait/test it yourself).
  [[nodiscard]] core::PReq release() && {
    proxy_ = nullptr;
    return std::exchange(r_, core::PReq{});
  }

 private:
  core::Proxy* proxy_;
  core::PReq r_;
};

/// cont::isend(proxy, ...).then(cb) — post-and-chain entry points.
inline Pending isend(core::Proxy& p, const void* b, std::size_t n,
                     smpi::Datatype dt, int dst, int tag,
                     smpi::Comm c = smpi::kCommWorld) {
  return Pending(p, p.isend(b, n, dt, dst, tag, c));
}
inline Pending irecv(core::Proxy& p, void* b, std::size_t n,
                     smpi::Datatype dt, int src, int tag,
                     smpi::Comm c = smpi::kCommWorld) {
  return Pending(p, p.irecv(b, n, dt, src, tag, c));
}
/// Adopt any proxy request (collectives, post_batch output, ...).
inline Pending wrap(core::Proxy& p, core::PReq r) { return Pending(p, r); }

/// The current generation of a STARTED persistent request, awaiting its
/// `.then()`. Unlike Pending, chaining does NOT consume the handle: the
/// callback observes the request back in the inactive state and may
/// p.start(r) the next generation from inside itself — a self-restarting
/// receive loop is three lines. Not RAII (the persistent handle's lifetime
/// is the caller's, via request_free).
class PendingGeneration {
 public:
  PendingGeneration(core::Proxy& p, core::PersistentReq r)
      : proxy_(&p), r_(r) {}
  /// Chain `fn` onto the current generation's completion.
  void then(ContFn fn) && { proxy_->attach_continuation(r_, std::move(fn)); }

 private:
  core::Proxy* proxy_;
  core::PersistentReq r_;
};

/// cont::generation(proxy, pr).then(cb) — chain onto the current generation
/// of a started persistent request.
inline PendingGeneration generation(core::Proxy& p, core::PersistentReq r) {
  return PendingGeneration(p, r);
}

/// when_all over started persistent generations: `fin` runs exactly once,
/// after every member's CURRENT generation completes (with the Status of the
/// last one). Handles are NOT consumed — each member is back in the inactive
/// state when `fin` runs, so the callback may restart the whole set.
inline void when_all_generations(core::Proxy& p,
                                 std::span<core::PersistentReq> rs,
                                 ContFn fin) {
  if (rs.empty()) {
    fin(smpi::Status{});
    return;
  }
  auto remaining = std::make_shared<std::size_t>(rs.size());
  auto cb = std::make_shared<ContFn>(std::move(fin));
  for (core::PersistentReq& r : rs) {
    p.attach_continuation(r, [remaining, cb](const smpi::Status& st) {
      if (--*remaining == 0) (*cb)(st);
    });
  }
}

/// One-shot completion flag for joining a continuation graph back to the
/// application thread: the graph's tail continuation set()s it, the
/// application wait()s. Setting twice is harmless; waiting a set event
/// returns immediately.
class Event {
 public:
  void set() { fired_ = true; }
  [[nodiscard]] bool ready() const { return fired_; }
  /// Block the calling fiber until set(), driving the proxy's continuation
  /// machinery meanwhile. Must not be called from a continuation.
  void wait(core::Proxy& p) {
    p.cont_wait([this]() { return fired_; });
  }

 private:
  bool fired_ = false;  // cooperative fibers: no atomicity needed (header doc)
};

/// The when_all(...) combinator's intermediate: holds the group until
/// `.then()` arms it. Null handles in the group count as already complete
/// (all-null or empty groups run the final callback inline).
class Join {
 public:
  /// Arm: `fin` runs exactly once, after every member completed (with the
  /// Status of the last one); the optional per-request hook passed to
  /// when_all runs first for each member as it completes.
  void then(ContFn fin) &&;

 private:
  friend Join when_all(core::Proxy& p, std::span<core::PReq> rs, EachFn each);
  Join(core::Proxy& p, std::span<core::PReq> rs, EachFn each);
  core::Proxy* proxy_;
  std::vector<core::PReq> reqs_;
  EachFn each_;
};

/// Group combinator: when_all(proxy, reqs).then(cb). Consumes (nulls) every
/// handle in `rs`; `each(i, st)` — if provided — runs per member completion
/// before the countdown, with `i` indexing the original span.
Join when_all(core::Proxy& p, std::span<core::PReq> rs, EachFn each = {});

/// Winner hook of when_any: runs exactly once, for the FIRST member of the
/// group to complete, with that member's index and Status.
using AnyFn = std::function<void(std::size_t, const smpi::Status&)>;

/// The when_any(...) combinator's intermediate: a racing group. Built for
/// redundant-request hedging (post the same request to a primary and a
/// replica shard, act on whichever answers first).
///
/// Semantics (DESIGN.md §17):
///   * `win` runs exactly once, for the first member to complete — decided
///     by a first-wins claim CAS (core::AnyClaim), so two members completing
///     on different progress contexts still elect exactly one winner;
///   * the losers are NOT cancelled (the one documented relaxation vs
///     MPI_Cancel): they complete normally through the usual continuation
///     path, which is also what frees their request slots — so every
///     member's buffer must stay valid until `settled` runs;
///   * `settled`, if provided, runs exactly once after EVERY member
///     completed (winner and losers alike) — the buffer-reclamation /
///     slot-reuse hook;
///   * one-shot members (span of PReq) are consumed (nulled); a null or
///     already-completed handle counts as completing at arm time, so it
///     races for the win like any other member (first arm wins, inline);
///   * persistent members (span of PersistentReq) are NOT consumed: the
///     group attaches to each member's CURRENT generation, and a loser is
///     back in the inactive state once `settled` runs — `win`/`settled` may
///     restart it (hedge loops over persistent requests re-arm for free);
///   * an entirely empty group throws std::invalid_argument (there is no
///     meaningful winner).
///
/// Member indexing: one-shots are 0..rs.size()-1 in span order; persistent
/// generations follow at rs.size()..rs.size()+gens.size()-1.
class AnyJoin {
 public:
  /// Arm the race: `win(index, status)` for the first completion.
  void then(AnyFn win) &&;
  /// Arm with a group-drained hook: `settled` runs after all members.
  void then(AnyFn win, ContFn settled) &&;

 private:
  friend AnyJoin when_any(core::Proxy& p, std::span<core::PReq> rs,
                          std::span<core::PersistentReq> gens);
  AnyJoin(core::Proxy& p, std::span<core::PReq> rs,
          std::span<core::PersistentReq> gens);
  core::Proxy* proxy_;
  std::vector<core::PReq> reqs_;
  std::vector<core::PersistentReq> gens_;
};

/// Racing combinator: when_any(proxy, reqs).then(win[, settled]). Consumes
/// (nulls) every one-shot handle in `rs`; started persistent generations in
/// `gens` are raced without being consumed.
AnyJoin when_any(core::Proxy& p, std::span<core::PReq> rs,
                 std::span<core::PersistentReq> gens = {});

}  // namespace cont
