#include "mpi/datatype.hpp"

#include <algorithm>
#include <complex>
#include <cstdint>
#include <stdexcept>

namespace smpi {

std::size_t datatype_size(Datatype dt) {
  switch (dt) {
    case Datatype::kByte:
    case Datatype::kChar:
      return 1;
    case Datatype::kInt:
      return sizeof(int);
    case Datatype::kLong:
      return sizeof(long);
    case Datatype::kFloat:
      return sizeof(float);
    case Datatype::kDouble:
      return sizeof(double);
    case Datatype::kComplexFloat:
      return sizeof(std::complex<float>);
    case Datatype::kComplexDouble:
      return sizeof(std::complex<double>);
  }
  throw std::logic_error("unknown datatype");
}

int Status::count(Datatype dt) const {
  return static_cast<int>(bytes / datatype_size(dt));
}

namespace {

/// MPI_Op_create registry. Four slots; fibers all run on one OS thread and
/// registration happens before clusters spawn, so no synchronization.
struct UserOpSlot {
  UserOpFn fn = nullptr;
  bool commutative = true;
};
UserOpSlot g_user_ops[4];  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

template <typename T>
void apply_typed(Op op, const T* in, T* inout, std::size_t n) {
  switch (op) {
    case Op::kSum:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] + in[i];
      return;
    case Op::kProd:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] * in[i];
      return;
    case Op::kMax:
      if constexpr (requires(T a, T b) { a < b; }) {
        for (std::size_t i = 0; i < n; ++i) inout[i] = std::max(inout[i], in[i]);
        return;
      }
      break;
    case Op::kMin:
      if constexpr (requires(T a, T b) { a < b; }) {
        for (std::size_t i = 0; i < n; ++i) inout[i] = std::min(inout[i], in[i]);
        return;
      }
      break;
    default:
      break;  // user ops are dispatched before apply_typed
  }
  throw std::invalid_argument("reduction op not supported for datatype");
}

[[nodiscard]] int user_slot(Op op) {
  const int s = static_cast<int>(op) - static_cast<int>(Op::kUser0);
  return (s >= 0 && s < 4) ? s : -1;
}

}  // namespace

Op register_user_op(UserOpFn fn, bool commutative) {
  if (fn == nullptr) throw std::invalid_argument("register_user_op: null fn");
  int free_slot = -1;
  for (int s = 0; s < 4; ++s) {
    if (g_user_ops[s].fn == fn && g_user_ops[s].commutative == commutative) {
      return static_cast<Op>(static_cast<int>(Op::kUser0) + s);
    }
    if (g_user_ops[s].fn == nullptr && free_slot < 0) free_slot = s;
  }
  if (free_slot < 0) throw std::runtime_error("register_user_op: all 4 slots taken");
  g_user_ops[free_slot] = {fn, commutative};
  return static_cast<Op>(static_cast<int>(Op::kUser0) + free_slot);
}

bool op_commutative(Op op) {
  const int s = user_slot(op);
  if (s < 0) return true;  // built-in sum/prod/max/min all commute
  if (g_user_ops[s].fn == nullptr) {
    throw std::invalid_argument("op_commutative: unregistered user op");
  }
  return g_user_ops[s].commutative;
}

void apply_op(Op op, Datatype dt, const void* in, void* inout, std::size_t count) {
  if (in == nullptr || inout == nullptr) return;  // phantom buffers: timing only
  if (const int s = user_slot(op); s >= 0) {
    if (g_user_ops[s].fn == nullptr) {
      throw std::invalid_argument("apply_op: unregistered user op");
    }
    g_user_ops[s].fn(in, inout, count, dt);
    return;
  }
  switch (dt) {
    case Datatype::kByte:
    case Datatype::kChar:
      apply_typed(op, static_cast<const std::uint8_t*>(in),
                  static_cast<std::uint8_t*>(inout), count);
      return;
    case Datatype::kInt:
      apply_typed(op, static_cast<const int*>(in), static_cast<int*>(inout), count);
      return;
    case Datatype::kLong:
      apply_typed(op, static_cast<const long*>(in), static_cast<long*>(inout), count);
      return;
    case Datatype::kFloat:
      apply_typed(op, static_cast<const float*>(in), static_cast<float*>(inout), count);
      return;
    case Datatype::kDouble:
      apply_typed(op, static_cast<const double*>(in), static_cast<double*>(inout), count);
      return;
    case Datatype::kComplexFloat:
      apply_typed(op, static_cast<const std::complex<float>*>(in),
                  static_cast<std::complex<float>*>(inout), count);
      return;
    case Datatype::kComplexDouble:
      apply_typed(op, static_cast<const std::complex<double>*>(in),
                  static_cast<std::complex<double>*>(inout), count);
      return;
  }
  throw std::logic_error("unknown datatype");
}

}  // namespace smpi
