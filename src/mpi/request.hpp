// Internal representation of nonblocking operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/coll_op.hpp"
#include "mpi/matching.hpp"
#include "mpi/types.hpp"

namespace smpi {

enum class ReqKind : std::uint8_t {
  kNull,
  kSendEager,  ///< complete at post time (data buffered/injected)
  kSendRndv,   ///< RTS -> CTS -> DMA; completes when DMA has drained
  kRecv,
  kColl,       ///< nonblocking collective driven by a schedule
};

struct RequestImpl {
  int idx = 0;  ///< handle value (self index in the table)
  ReqKind kind = ReqKind::kNull;
  bool active = false;    ///< slot in use
  bool complete = false;  ///< user-visible completion
  Status status;          ///< source/tag/bytes for receives

  // ---- receive fields ----
  void* rbuf = nullptr;
  std::size_t rbytes = 0;      ///< capacity of rbuf
  std::uint32_t ctx = 0;       ///< matching triple (with wildcards)
  int src_global = kAnySource;
  int tag = kAnyTag;
  Comm comm{};                 ///< for translating status.source
  bool matched_rndv = false;   ///< CTS sent, waiting for DMA
  bool data_arrived = false;   ///< set by the "NIC" when all DMA chunks land
  std::size_t rndv_received = 0;  ///< bytes landed so far (chunks in order)
  /// Posted by a collective schedule: the buffer is schedule-owned and
  /// registered, so an eager arrival lands by NIC DMA (no CPU copy charge).
  bool coll_internal = false;

  // ---- rendezvous-send fields ----
  const void* sbuf = nullptr;
  std::size_t sbytes = 0;
  int dst_global = -1;
  bool cts_received = false;      ///< processed by sender's progress
  std::uint64_t peer_rreq = 0;    ///< receiver's request index (from CTS)
  std::size_t dma_sent = 0;       ///< bytes injected so far
  std::size_t dma_delivered = 0;  ///< bytes the NIC reported delivered

  // ---- collective ----
  std::unique_ptr<CollOp> coll;

  // ---- persistent envelope (MPI_Send_init / MPI_Recv_init) ----
  // Captured once at init time and replayed by every Start; survives
  // reset_transfer_state() so one table slot serves many generations.
  bool persistent = false;
  bool p_started = false;  ///< a generation is active (or complete, unwaited)
  bool p_send = false;
  const void* p_buf = nullptr;  ///< send-side user buffer
  void* p_rbuf = nullptr;       ///< recv-side user buffer
  std::size_t p_bytes = 0;
  int p_peer = -1;  ///< global rank, kProcNull, or kAnySource (recv)
  std::uint32_t p_ctx = 0;
  int p_tag = 0;
  Comm p_comm{};

  /// A request the completion calls may settle: complete, or a persistent
  /// request with no generation in flight (MPI treats inactive persistent
  /// requests as trivially complete with an empty status).
  [[nodiscard]] bool settled() const {
    return complete || (persistent && !p_started);
  }

  /// Clear one generation's transfer state, preserving the slot identity and
  /// the persistent envelope. Called by Start before re-posting.
  void reset_transfer_state() {
    kind = ReqKind::kNull;
    complete = false;
    status = Status{};
    rbuf = nullptr;
    rbytes = 0;
    ctx = 0;
    src_global = kAnySource;
    tag = kAnyTag;
    comm = Comm{};
    matched_rndv = data_arrived = false;
    coll_internal = false;
    sbuf = nullptr;
    sbytes = 0;
    dst_global = -1;
    cts_received = false;
    peer_rreq = 0;
    dma_sent = dma_delivered = 0;
    rndv_received = 0;
  }

  void reset() {
    kind = ReqKind::kNull;
    active = complete = false;
    status = Status{};
    rbuf = nullptr;
    rbytes = 0;
    ctx = 0;
    src_global = kAnySource;
    tag = kAnyTag;
    comm = Comm{};
    matched_rndv = data_arrived = false;
    coll_internal = false;
    sbuf = nullptr;
    sbytes = 0;
    dst_global = -1;
    cts_received = false;
    peer_rreq = 0;
    dma_sent = dma_delivered = 0;
    rndv_received = 0;
    coll.reset();
    persistent = p_started = p_send = false;
    p_buf = nullptr;
    p_rbuf = nullptr;
    p_bytes = 0;
    p_peer = -1;
    p_ctx = 0;
    p_tag = 0;
    p_comm = Comm{};
  }
};

/// Per-rank request table. Handles are indices; 0 is reserved for the null
/// request. Freed slots are recycled through a free list.
class RequestTable {
 public:
  RequestTable() {
    slots_.push_back(std::make_unique<RequestImpl>());  // null request
    slots_[0]->idx = 0;
  }

  RequestImpl& alloc() {
    if (!free_.empty()) {
      int idx = free_.back();
      free_.pop_back();
      RequestImpl& r = *slots_[static_cast<std::size_t>(idx)];
      r.reset();
      r.idx = idx;
      r.active = true;
      return r;
    }
    int idx = static_cast<int>(slots_.size());
    slots_.push_back(std::make_unique<RequestImpl>());
    RequestImpl& r = *slots_.back();
    r.idx = idx;
    r.active = true;
    return r;
  }

  RequestImpl& get(Request h) { return *slots_.at(static_cast<std::size_t>(h.idx)); }
  const RequestImpl& get(Request h) const {
    return *slots_.at(static_cast<std::size_t>(h.idx));
  }

  void release(RequestImpl& r) {
    if (r.idx == 0) return;
    r.active = false;
    free_.push_back(r.idx);
  }

  [[nodiscard]] std::size_t active_count() const {
    return slots_.size() - 1 - free_.size();
  }

 private:
  std::vector<std::unique_ptr<RequestImpl>> slots_;
  std::vector<int> free_;
};

}  // namespace smpi
