// Two-sided message matching: posted-receive queue and unexpected queue.
//
// MPI matching rules implemented here:
//  * a message matches a posted receive iff context ids are equal, the
//    receive's source is the sender or kAnySource, and the receive's tag is
//    the message tag or kAnyTag;
//  * both queues are searched in FIFO order, which together with in-order
//    network delivery per (src,dst) yields MPI's non-overtaking guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "mpi/types.hpp"

namespace smpi {

struct RequestImpl;

/// The matchable identity of a message.
struct Envelope {
  std::uint32_t context = 0;
  int src_global = kAnySource;  ///< sender's global rank (never wildcard on wire)
  int tag = kAnyTag;
};

/// What an unexpected arrival is: either buffered eager data or a parked
/// rendezvous RTS waiting for its receive to be posted.
struct UnexpectedMsg {
  Envelope env;
  std::size_t bytes = 0;
  bool is_rndv = false;
  std::vector<std::byte> payload;    ///< eager only
  std::uint64_t sender_req = 0;      ///< rendezvous only: sender request idx
};

class MatchingEngine {
 public:
  /// Does `recv_ctx/src/tag` accept envelope `e`? `src` and `tag` may be
  /// wildcards; `e` never contains wildcards.
  static bool matches(std::uint32_t recv_ctx, int recv_src_global, int recv_tag,
                      const Envelope& e);

  // -- receiver side --
  void post_recv(RequestImpl* r);
  /// Remove a posted receive matching `e` (FIFO), or nullptr.
  RequestImpl* match_posted(const Envelope& e);
  /// Remove a specific posted receive (for cancel); true if found.
  bool remove_posted(RequestImpl* r);

  // -- unexpected side --
  void add_unexpected(UnexpectedMsg&& m);
  /// Remove the first unexpected message matching the receive triple.
  std::optional<UnexpectedMsg> match_unexpected(std::uint32_t ctx, int src_global,
                                                int tag);
  /// Probe (non-destructive): first matching unexpected message, or nullptr.
  const UnexpectedMsg* peek_unexpected(std::uint32_t ctx, int src_global,
                                       int tag) const;

  [[nodiscard]] std::size_t posted_count() const { return posted_.size(); }
  [[nodiscard]] std::size_t unexpected_count() const { return unexpected_.size(); }
  [[nodiscard]] std::size_t unexpected_bytes() const { return unexpected_bytes_; }

 private:
  std::deque<RequestImpl*> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  std::size_t unexpected_bytes_ = 0;
};

}  // namespace smpi
