// Communicator bookkeeping (per rank).
//
// A communicator is a context id plus an ordered group of global ranks.
// Context ids are derived deterministically from the parent communicator's
// id and a per-parent construction counter; MPI requires all members of a
// communicator to invoke constructors in the same order, which makes the
// derived ids agree across ranks without any exchange.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/types.hpp"

namespace smpi {

struct CommInfo {
  std::uint32_t context = 0;        ///< matching context id
  std::vector<int> group;           ///< group[i] = global rank of comm rank i
  int my_rank = -1;                 ///< my rank within the group
  std::uint32_t next_child = 0;     ///< counter for derived communicators
  std::uint64_t coll_seq = 0;       ///< per-comm collective sequence number
  std::uint32_t win_seq = 0;        ///< per-comm RMA-window counter
  bool freed = false;

  [[nodiscard]] int size() const { return static_cast<int>(group.size()); }
  [[nodiscard]] int to_global(int comm_rank) const { return group.at(static_cast<std::size_t>(comm_rank)); }
  /// Returns the comm rank of `global`, or kAnySource if not a member.
  [[nodiscard]] int from_global(int global) const;
};

/// Per-rank table of communicators. Slots 0 and 1 are WORLD and SELF.
class CommTable {
 public:
  /// Initialize WORLD (all ranks) and SELF for global rank `me` of `nranks`.
  void init(int me, int nranks);

  [[nodiscard]] CommInfo& get(Comm c);
  [[nodiscard]] const CommInfo& get(Comm c) const;

  /// Duplicate `parent` (same group, fresh context).
  Comm dup(Comm parent);
  /// Split: members with the same `color` form a new communicator, ordered
  /// by (key, parent rank). `others` must supply the (color, key) of every
  /// parent-comm member so the split is computable locally — the Cluster
  /// gathers these via the collective layer before calling.
  Comm split(Comm parent, const std::vector<std::pair<int, int>>& color_key);

  void free(Comm c);

 private:
  Comm insert(CommInfo info);
  std::vector<CommInfo> comms_;
};

}  // namespace smpi
