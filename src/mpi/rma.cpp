// One-sided communication (RMA): MPI_Put / MPI_Get / MPI_Win_fence.
//
// This implements the paper's stated future work ("explore efficient
// implementations of other MPI operations, including RMA") on the same
// simulated fabric: puts and gets are true RDMA — the target's CPU is never
// involved — and the fence is exposed both in its blocking MPI form and as
// a nonblocking `ifence` (a gated collective schedule). The latter is what
// lets the offload engine handle fences without stalling its command queue,
// addressing the Section-3.3 caveat that MPI_WIN_FENCE has no nonblocking
// equivalent.
#include <cassert>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "mpi/cluster.hpp"
#include "mpi/entry.hpp"
#include "mpi/rank_ctx.hpp"
#include "mpi/wire.hpp"

namespace smpi {

Win RankCtx::win_create(void* base, std::size_t bytes, Comm comm) {
  // Collective: synchronize so no rank targets a window that does not exist
  // everywhere yet. The id derivation matches across ranks because window
  // creations on a communicator are ordered.
  barrier(comm);
  MpiEntry entry(*this, false, "Win_create");
  CommInfo& ci = comms_.get(comm);
  WinInfo w;
  w.base = base;
  w.bytes = bytes;
  w.comm = comm;
  w.id = ci.context * 256 + ci.win_seq++;
  wins_.push_back(w);
  return Win{static_cast<int>(wins_.size() - 1)};
}

void RankCtx::win_free(Win w) {
  WinInfo& wi = wins_.at(static_cast<std::size_t>(w.idx));
  win_fence(w);  // complete all traffic before teardown
  wi.freed = true;
}

void RankCtx::put(const void* origin, std::size_t bytes, int target_rank,
                  std::size_t target_offset, Win w) {
  MpiEntry entry(*this, false, "Put");
  WinInfo& wi = wins_.at(static_cast<std::size_t>(w.idx));
  if (wi.freed) throw std::invalid_argument("put on freed window");
  if (target_offset + bytes > wi.bytes) {
    throw std::out_of_range("put outside target window");
  }
  const CommInfo& ci = comms_.get(wi.comm);
  sim::advance(profile().nic_doorbell);
  machine::NetMessage m;
  m.src = rank_;
  m.dst = ci.to_global(target_rank);
  m.kind = kWireRmaPut;
  m.h0 = wi.id;
  m.h1 = reinterpret_cast<std::uint64_t>(origin);
  m.h2 = target_offset;
  m.h3 = bytes;
  m.wire_bytes = bytes;
  ++wi.outstanding;
  net_send(std::move(m));
  progress_poll();
}

void RankCtx::get(void* origin, std::size_t bytes, int target_rank,
                  std::size_t target_offset, Win w) {
  MpiEntry entry(*this, false, "Get");
  WinInfo& wi = wins_.at(static_cast<std::size_t>(w.idx));
  if (wi.freed) throw std::invalid_argument("get on freed window");
  if (target_offset + bytes > wi.bytes) {
    throw std::out_of_range("get outside target window");
  }
  const CommInfo& ci = comms_.get(wi.comm);
  sim::advance(profile().nic_doorbell);
  machine::NetMessage m;
  m.src = rank_;
  m.dst = ci.to_global(target_rank);
  m.kind = kWireRmaGetReq;
  m.h0 = wi.id;
  m.h1 = reinterpret_cast<std::uint64_t>(origin);
  m.h2 = target_offset;
  m.h3 = bytes;
  ++wi.outstanding;
  net_send(std::move(m));
  progress_poll();
}

Request RankCtx::ifence(Win w) {
  MpiEntry entry(*this, false, "Ifence");
  WinInfo& wi = wins_.at(static_cast<std::size_t>(w.idx));
  CommInfo& ci = comms_.get(wi.comm);
  const int p = ci.size();
  auto op = std::make_unique<CollOp>();
  op->comm = wi.comm;
  op->seq = ci.coll_seq++;
  op->kind = CollectiveId::kFence;
  op->algo = coll_tuner().choose(CollectiveId::kFence, 0, 0, p, true);
  // Gate: hold the synchronization until my own RMA has fully drained. The
  // gate covers every chain (none posts before it opens).
  const int widx = w.idx;
  op->gate = [widx](RankCtx& rc) {
    return rc.wins_.at(static_cast<std::size_t>(widx)).outstanding == 0;
  };
  // Dissemination barrier stages over the window's communicator.
  CollChain& ch = op->chain(0);
  const int me = ci.my_rank;
  for (int k = 1; k < p; k <<= 1) {
    CollStage st;
    op->temps.emplace_back(1);
    op->temps.emplace_back(1);
    st.sends.push_back({(me + k) % p, op->temps[op->temps.size() - 2].data(), 1});
    st.recvs.push_back({(me - k + p) % p, op->temps.back().data(), 1});
    ch.stages.push_back(std::move(st));
  }
  return start_collective(std::move(op));
}

void RankCtx::win_fence(Win w) {
  Request r = ifence(w);
  wait(r);
}

/// Hardware-side handling of RMA wire traffic (called from deliver()).
bool RankCtx::rma_deliver(machine::NetMessage& m) {
  RankCtx& self = *this;
  auto find_win = [](RankCtx& rc, std::uint32_t id) -> RankCtx::WinInfo* {
    for (auto& w : rc.wins_) {
      if (w.id == id && !w.freed) return &w;
    }
    return nullptr;
  };
  switch (m.kind) {
    case kWireRmaPut: {
      RankCtx::WinInfo* w = find_win(self, static_cast<std::uint32_t>(m.h0));
      if (w == nullptr) throw std::logic_error("RMA put to unknown window");
      if (w->base != nullptr && m.h1 != 0) {
        std::memcpy(static_cast<std::byte*>(w->base) + m.h2,
                    reinterpret_cast<const void*>(m.h1), m.h3);
      }
      self.arrivals_.signal();
      // Origin-side NIC completion.
      RankCtx& origin = self.cluster_.rank(m.src);
      if (RankCtx::WinInfo* ow = find_win(origin, static_cast<std::uint32_t>(m.h0))) {
        --ow->outstanding;
      }
      origin.arrivals_.signal();
      return true;
    }
    case kWireRmaGetReq: {
      RankCtx::WinInfo* w = find_win(self, static_cast<std::uint32_t>(m.h0));
      if (w == nullptr) throw std::logic_error("RMA get from unknown window");
      // RDMA read: the target NIC streams the data back without CPU help.
      machine::NetMessage resp;
      resp.src = self.rank();
      resp.dst = m.src;
      resp.kind = kWireRmaGetResp;
      resp.h0 = m.h0;
      resp.h1 = w->base == nullptr
                    ? 0
                    : reinterpret_cast<std::uint64_t>(
                          static_cast<std::byte*>(w->base) + m.h2);
      resp.h2 = m.h1;  // origin buffer
      resp.h3 = m.h3;
      resp.wire_bytes = m.h3;
      // Scheduler context is fine: net_send stamps and queues but never
      // advances the virtual clock (the NIC answers the RDMA read itself).
      self.net_send(std::move(resp));
      return true;
    }
    case kWireRmaGetResp: {
      if (m.h2 != 0 && m.h1 != 0) {
        std::memcpy(reinterpret_cast<void*>(m.h2),
                    reinterpret_cast<const void*>(m.h1), m.h3);
      }
      if (RankCtx::WinInfo* w = find_win(self, static_cast<std::uint32_t>(m.h0))) {
        --w->outstanding;
      }
      self.arrivals_.signal();
      return true;
    }
    default:
      return false;
  }
}

}  // namespace smpi
