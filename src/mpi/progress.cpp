// The progress engine: NIC delivery (hardware side) and progress_poll
// (software side).
#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "mpi/cluster.hpp"
#include "mpi/rank_ctx.hpp"
#include "mpi/wire.hpp"
#include "san/san.hpp"
#include "trace/scope.hpp"

namespace smpi {

namespace {
const char* wire_kind_name(std::uint32_t kind) {
  switch (kind) {
    case kWireEager:
      return "rx:eager";
    case kWireRts:
      return "rx:rts";
    case kWireCts:
      return "rx:cts";
    case kWireData:
      return "rx:dma";
    case kWireRmaPut:
      return "rx:rma-put";
    case kWireRmaGetReq:
      return "rx:rma-get";
    case kWireRmaGetResp:
      return "rx:rma-resp";
    case kWireAck:
      return "rx:ack";
  }
  return "rx:?";
}

std::size_t frame_wire_bytes(const machine::NetMessage& m) {
  return std::max(std::max(m.wire_bytes, m.payload.size()),
                  static_cast<std::size_t>(64));
}
}  // namespace

// -------------------------------------------------- reliability sublayer ----

void RankCtx::net_send(machine::NetMessage&& m) {
  if (rel_on_) {
    RelPeer& peer = rel_[static_cast<std::size_t>(m.dst)];
    m.seq = peer.tx_next_seq++;
    m.ack = peer.rx_expected;  // piggyback our cursor; no pure ack needed now
    peer.ack_owed = false;
    m.checksum = wire_checksum(m);
    ++rel_stats_.frames_sent;
    const std::size_t wire = frame_wire_bytes(m);
    peer.tx_unacked_bytes += wire;
    // RTO scales with the whole unacked backlog: a burst of pipeline chunks
    // serializes behind one egress link, and a timer sized for a single
    // frame would fire spuriously on every deep rendezvous pipeline.
    peer.unacked.push_back(
        {m, sim::now() + rel_rto(peer.tx_unacked_bytes, 0), 0});
  }
  cluster_.network().send(std::move(m));
}

sim::Time RankCtx::rel_rto(std::size_t backlog_bytes, int attempts) const {
  const auto& p = profile();
  const std::int64_t base = p.faults.rto_base.ns() + 2 * p.net_latency.ns() +
                            4 * p.wire_cost(backlog_bytes).ns();
  return sim::Time(base << std::min(attempts, 8));
}

/// Hardware receive filter (NIC CRC + reliable-connection logic): verify the
/// checksum before trusting any header word, harvest the piggybacked ack,
/// and accept only the next in-order sequence number per source. Runs in
/// scheduler context — no simulated CPU, exactly like the rest of deliver().
bool RankCtx::rel_admit(machine::NetMessage& m) {
  if (m.checksum != wire_checksum(m)) {
    // Garbage frame: even src/seq are untrustworthy, so nothing can be
    // acked or re-acked — the sender's retransmit timer covers it.
    ++rel_stats_.corrupt_drops;
    trace::instant(rank_, trace::kHwTid, "rx:corrupt-drop", "net");
    return false;
  }
  RelPeer& peer = rel_[static_cast<std::size_t>(m.src)];
  // Cumulative ack: the peer has everything below m.ack, retire our copies.
  while (!peer.unacked.empty() && peer.unacked.front().frame.seq < m.ack) {
    peer.tx_unacked_bytes -= frame_wire_bytes(peer.unacked.front().frame);
    peer.unacked.pop_front();
  }
  if (peer.unacked.empty()) peer.tx_unacked_bytes = 0;
  if (m.kind == kWireAck) return false;  // pure ack: no data to deliver
  if (m.seq != peer.rx_expected) {
    // Duplicate (below the cursor) or a gap (go-back-N receivers take only
    // in-order frames). Drop it, but owe the sender a fresh ack — its copy
    // of our cursor may have been lost — and wake software to send one.
    if (m.seq < peer.rx_expected) {
      ++rel_stats_.dup_drops;
      c_dup_drops_.add();
      trace::instant(rank_, trace::kHwTid, "rx:dup-drop", "net");
    } else {
      ++rel_stats_.ooo_drops;
      trace::instant(rank_, trace::kHwTid, "rx:ooo-drop", "net");
    }
    peer.ack_owed = true;
    arrivals_.signal();
    return false;
  }
  ++peer.rx_expected;
  peer.ack_owed = true;
  return true;
}

/// Software half of the protocol, called from progress_poll(): go-back-N
/// retransmission with exponential backoff, and pure-ack flush for cursors
/// no outgoing frame piggybacked in time. Only runs while a fiber is inside
/// MPI — a rank that never enters the library recovers nothing.
void RankCtx::rel_poll() {
  const auto& p = profile();
  const sim::Time now = sim::now();
  // Note: the self entry is NOT skipped — RMA to the local rank still rides
  // the network (and its fault plan), so self-directed frames need the same
  // retransmit/ack machinery as any other pair.
  for (std::size_t peer_rank = 0; peer_rank < rel_.size(); ++peer_rank) {
    RelPeer& peer = rel_[peer_rank];
    if (!peer.unacked.empty() && now >= peer.unacked.front().deadline) {
      trace::Scope tsc("rel:retransmit", "mpi");
      const int attempts = peer.unacked.front().attempts + 1;
      const sim::Time deadline =
          now + rel_rto(peer.tx_unacked_bytes, attempts);
      for (RelPeer::Unacked& u : peer.unacked) {
        sim::advance(p.nic_doorbell);
        ++rel_stats_.retransmits;
        c_retransmits_.add();
        u.attempts = attempts;
        u.deadline = deadline;
        // Byte-identical re-injection (stale piggybacked ack and all): the
        // checksum still matches and cumulative acks are monotone-safe.
        machine::NetMessage copy = u.frame;
        cluster_.network().send(std::move(copy));
      }
    }
    if (peer.ack_owed) {
      sim::advance(p.nic_doorbell);
      machine::NetMessage ack;
      ack.src = rank_;
      ack.dst = static_cast<int>(peer_rank);
      ack.kind = kWireAck;
      ack.ack = peer.rx_expected;
      ack.checksum = wire_checksum(ack);
      ++rel_stats_.acks_sent;
      peer.ack_owed = false;
      // Unsequenced on purpose: acking acks would regress infinitely. Loss
      // is repaired by the next dup-triggered re-ack.
      cluster_.network().send(std::move(ack));
    }
  }
}

// ------------------------------------------------------------- hardware ----

void RankCtx::deliver(machine::NetMessage&& m) {
  // Hardware-side arrival (scheduler context, no simulated CPU): mark it on
  // the rank's "hw" track so software reaction latency is visible.
  trace::instant(rank_, trace::kHwTid, wire_kind_name(m.kind), "net");
  if (rel_on_ && !rel_admit(m)) return;
  if (m.kind == kWireRmaPut || m.kind == kWireRmaGetReq ||
      m.kind == kWireRmaGetResp) {
    rma_deliver(m);
    return;
  }
  if (m.kind == kWireData) {
    // RDMA write of one pipeline chunk: the NIC moves the bytes straight
    // into the matched receive buffer and raises completion counters. No
    // simulated CPU is consumed — but injecting the NEXT chunk beyond the
    // pipeline depth requires the sender's progress engine (software).
    RequestImpl& rreq = reqs_.get(Request{static_cast<int>(m.h0)});
    assert(rreq.active && rreq.kind == ReqKind::kRecv && rreq.matched_rndv);
    const auto chunk = static_cast<std::size_t>(m.h3);
    assert(rreq.rndv_received + chunk <= rreq.rbytes);
    if (rreq.rbuf != nullptr && m.h1 != 0) {
      // Chunks arrive in order per (src,dst) pair.
      std::memcpy(static_cast<std::byte*>(rreq.rbuf) + rreq.rndv_received,
                  reinterpret_cast<const void*>(m.h1), chunk);
    }
    rreq.rndv_received += chunk;
    if (rreq.rndv_received >= rreq.status.bytes) rreq.data_arrived = true;
    arrivals_.signal();
    // Sender-side NIC completion counter.
    RankCtx& sender = cluster_.rank(m.src);
    RequestImpl& sreq = sender.reqs_.get(Request{static_cast<int>(m.h2)});
    assert(sreq.active && sreq.kind == ReqKind::kSendRndv);
    sreq.dma_delivered += chunk;
    sender.arrivals_.signal();
    return;
  }
  inbox_.push_back(std::move(m));
  arrivals_.signal();
}

// ------------------------------------------------------------- software ----

void RankCtx::progress_poll() {
  if (in_progress_) {
    // Registered progress sharers (the offload engine fibers) legitimately
    // interleave inside the library at yield points. The pass already
    // running does every piece of software work this one would — inbox,
    // rendezvous, collectives, reliability — so the late arrival just skips
    // (single-flight). Covers recursive entry by the pass owner too.
    if (progress_sharer_current()) return;
    // Anyone else: two fibers inside the library concurrently without the
    // big lock — a violation of the declared thread level.
    throw std::logic_error("concurrent MPI entry under non-MULTIPLE level");
  }
  in_progress_ = true;
  in_progress_fiber_ = sim::Engine::current()->current_fiber();
  ++stats_.progress_passes;
  trace::Scope tsc("progress", "mpi");
  const auto& p = profile();
  sim::advance(p.mpi_progress_poll_cost);

  while (!inbox_.empty()) {
    machine::NetMessage m = std::move(inbox_.front());
    inbox_.pop_front();
    process_inbox_message(std::move(m));
  }

  // Drive rendezvous sends: keep the chunk pipeline full, notice completion.
  for (std::size_t i = 0; i < pending_rndv_send_.size();) {
    RequestImpl* r = pending_rndv_send_[i];
    if (r->cts_received) {
      while (r->dma_sent < r->sbytes &&
             r->dma_sent - r->dma_delivered <
                 p.rndv_chunk_bytes * static_cast<std::size_t>(p.rndv_pipeline_depth)) {
        start_rndv_chunk(*r);
      }
    }
    if (r->cts_received && r->dma_delivered >= r->sbytes) {
      sim::advance(p.mpi_match_cost);
      r->complete = true;
      arrivals_.signal();  // wake the fiber tracking this request (see below)
      pending_rndv_send_[i] = pending_rndv_send_.back();
      pending_rndv_send_.pop_back();
    } else {
      ++i;
    }
  }
  for (std::size_t i = 0; i < pending_rndv_recv_.size();) {
    RequestImpl* r = pending_rndv_recv_[i];
    if (r->data_arrived) {
      sim::advance(p.mpi_match_cost);
      r->complete = true;
      arrivals_.signal();
      pending_rndv_recv_[i] = pending_rndv_recv_.back();
      pending_rndv_recv_.pop_back();
    } else {
      ++i;
    }
  }

  advance_collectives();
  if (rel_on_) rel_poll();
  in_progress_ = false;
  in_progress_fiber_ = nullptr;
}

void RankCtx::process_inbox_message(machine::NetMessage&& m) {
  switch (m.kind) {
    case kWireEager:
      handle_eager(std::move(m));
      return;
    case kWireRts:
      handle_rts(std::move(m));
      return;
    case kWireCts:
      handle_cts(std::move(m));
      return;
    default:
      throw std::logic_error("unknown wire message kind");
  }
}

void RankCtx::handle_eager(machine::NetMessage&& m) {
  trace::Scope tsc("match:eager", "mpi");
  const auto& p = profile();
  sim::advance(p.mpi_match_cost);
  Envelope env{static_cast<std::uint32_t>(m.h0), m.src,
               static_cast<int>(static_cast<std::int64_t>(m.h1))};
  const auto declared = static_cast<std::size_t>(m.h2);
  if (RequestImpl* r = match_.match_posted(env)) {
    if (declared > r->rbytes) {
      throw std::runtime_error("recv truncation (eager)");
    }
    // Pre-posted registered collective buffers take the payload by NIC DMA;
    // everything else drains through a CPU copy out of the bounce buffer.
    if (!r->coll_internal) sim::advance(p.copy_cost(declared));
    if (r->rbuf != nullptr && !m.payload.empty()) {
      std::memcpy(r->rbuf, m.payload.data(), m.payload.size());
    }
    r->status.source = comms_.get(r->comm).from_global(env.src_global);
    r->status.tag = env.tag;
    r->status.bytes = declared;
    r->complete = true;
    // Completion is a wake event of its own, distinct from the deliver-time
    // doorbell: the copy above yields, and with several engine fibers sharing
    // this progress engine (single-flight progress_poll), the fiber that
    // tracks this request may poll during that yield, take the busy
    // fast-path, observe the request still incomplete, and arm its doorbell
    // against an arrivals count that already includes the deliver signal. If
    // the transition to complete did not re-ring, that fiber would sleep past
    // its own request forever. With one consumer the completer and the
    // scanner were the same fiber and this signal was redundant — one of the
    // single-consumer assumptions sharding exposes (DESIGN.md §15).
    arrivals_.signal();
    return;
  }
  UnexpectedMsg um;
  um.env = env;
  um.bytes = declared;
  um.payload = std::move(m.payload);
  match_.add_unexpected(std::move(um));
}

void RankCtx::handle_rts(machine::NetMessage&& m) {
  trace::Scope tsc("match:rts", "mpi");
  const auto& p = profile();
  sim::advance(p.mpi_match_cost);
  Envelope env{static_cast<std::uint32_t>(m.h0), m.src,
               static_cast<int>(static_cast<std::int64_t>(m.h1))};
  const auto bytes = static_cast<std::size_t>(m.h3);
  if (RequestImpl* r = match_.match_posted(env)) {
    if (bytes > r->rbytes) throw std::runtime_error("recv truncation (rndv)");
    send_cts(m.h2, m.src, *r);
    r->matched_rndv = true;
    r->status.source = comms_.get(r->comm).from_global(env.src_global);
    r->status.tag = env.tag;
    r->status.bytes = bytes;
    pending_rndv_recv_.push_back(r);
    return;
  }
  UnexpectedMsg um;
  um.env = env;
  um.bytes = bytes;
  um.is_rndv = true;
  um.sender_req = m.h2;
  match_.add_unexpected(std::move(um));
}

void RankCtx::send_cts(std::uint64_t sender_req, int sender_global,
                       RequestImpl& rreq) {
  trace::Scope tsc("rndv:cts-send", "mpi");
  const auto& p = profile();
  sim::advance(p.rndv_handshake_cpu);
  sim::advance(p.nic_doorbell);
  machine::NetMessage cts;
  cts.src = rank_;
  cts.dst = sender_global;
  cts.kind = kWireCts;
  cts.h0 = sender_req;
  cts.h1 = static_cast<std::uint64_t>(rreq.idx);
  net_send(std::move(cts));
}

void RankCtx::handle_cts(machine::NetMessage&& m) {
  trace::Scope tsc("rndv:cts", "mpi");
  const auto& p = profile();
  sim::advance(p.rndv_handshake_cpu);
  RequestImpl& sreq = reqs_.get(Request{static_cast<int>(m.h0)});
  assert(sreq.active && sreq.kind == ReqKind::kSendRndv);
  sreq.cts_received = true;
  sreq.peer_rreq = m.h1;
  // Fill the chunk pipeline; further chunks are injected by progress as
  // NIC completions come back.
  while (sreq.dma_sent < sreq.sbytes &&
         sreq.dma_sent - sreq.dma_delivered <
             p.rndv_chunk_bytes * static_cast<std::size_t>(p.rndv_pipeline_depth)) {
    start_rndv_chunk(sreq);
  }
}

void RankCtx::start_rndv_chunk(RequestImpl& sreq) {
  trace::Scope tsc("rndv:chunk", "mpi");
  const auto& p = profile();
  const std::size_t chunk =
      std::min(p.rndv_chunk_bytes, sreq.sbytes - sreq.dma_sent);
  sim::advance(p.nic_doorbell);
  machine::NetMessage data;
  data.src = rank_;
  data.dst = sreq.dst_global;
  data.kind = kWireData;
  data.h0 = sreq.peer_rreq;
  data.h1 = sreq.sbuf == nullptr
                ? 0
                : reinterpret_cast<std::uint64_t>(
                      static_cast<const std::byte*>(sreq.sbuf) + sreq.dma_sent);
  data.h2 = static_cast<std::uint64_t>(sreq.idx);
  data.h3 = chunk;
  data.wire_bytes = chunk;
  sreq.dma_sent += chunk;
  net_send(std::move(data));
}

// ----------------------------------------------------------- collectives ----

const CollTuner& RankCtx::coll_tuner() const { return cluster_.coll_tuner(); }

void RankCtx::post_coll_stage(RequestImpl& creq, std::size_t chain_idx) {
  CollOp& op = *creq.coll;
  CollChain& ch = op.chains[chain_idx];
  trace::Scope tsc(trace::Tracer::on()
                       ? std::string("coll:") + coll_algo_name(op.algo) + ":c" +
                             std::to_string(chain_idx) + ":s" +
                             std::to_string(ch.cur)
                       : std::string(),
                   "mpi");
  const CommInfo& ci = comms_.get(op.comm);
  const std::uint32_t ictx = ci.context | 0x40000000u;
  const CollStage& st = ch.stages[ch.cur];
  // One tag per (instance, chain): within a chain stages are sequential and
  // per-pair message order is preserved end to end, so FIFO matching pairs
  // stage messages correctly. Chains, however, run concurrently with no
  // ordering between them, so each gets its own tag salt.
  const int tag = static_cast<int>(
      (op.seq * kCollMaxChains + chain_idx) % (1u << 30));
  ch.pending.clear();
  // Stage traffic moves between schedule-owned registered buffers, so the
  // transport treats it as zero-copy (NIC DMA, no CPU bounce-buffer charge).
  coll_posting_ = true;
  // Post receives before sends (good practice and avoids self-flooding).
  for (const auto& rv : st.recvs) {
    ch.pending.push_back(irecv_internal(rv.buf, rv.bytes, ci.to_global(rv.src),
                                        ictx, tag, op.comm));
  }
  for (const auto& sd : st.sends) {
    ch.pending.push_back(isend_internal(sd.buf, sd.bytes, ci.to_global(sd.dst),
                                        ictx, tag, op.comm));
  }
  coll_posting_ = false;
  ch.posted_at = sim::now();
  ch.stage_posted = true;
}

void RankCtx::advance_collectives() {
  bool moved = true;
  while (moved) {
    moved = false;
    for (std::size_t i = 0; i < active_colls_.size();) {
      RequestImpl* creq = active_colls_[i];
      CollOp& op = *creq->coll;
      if (!op.gate_open) {
        if (op.gate && !op.gate(*this)) {
          ++i;
          continue;  // e.g. ifence waiting for outstanding RMA to drain
        }
        op.gate_open = true;  // gateless ops open immediately
      }
      // Each chain advances independently — this is the pipelining: chain
      // k+1's sends go to the NIC while chain k sits in its combine. All
      // stage sends posted in this pass ride one doorbell when the profile
      // allows it (the post_batch amortization applied to schedule-internal
      // p2p: the engine drains the whole descriptor batch, rings once).
      coll_doorbell_batch_ = profile().coll_batch_doorbells;
      coll_doorbell_rung_ = false;
      for (std::size_t c = 0; c < op.chains.size(); ++c) {
        CollChain& ch = op.chains[c];
        if (ch.cur < ch.stages.size() && !ch.stage_posted) {
          post_coll_stage(*creq, c);
          moved = true;
        }
        if (ch.stage_posted) {
          bool all_done = true;
          for (Request r : ch.pending) {
            if (!r.is_null() && !reqs_.get(r).complete) {
              all_done = false;
              break;
            }
          }
          if (all_done) {
            for (Request r : ch.pending) {
              if (!r.is_null()) reqs_.release(reqs_.get(r));
            }
            ch.pending.clear();
            ++coll_stats_.chunks;
            coll_stats_.chunk_time += sim::now() - ch.posted_at;
            if (ch.stages[ch.cur].on_complete) ch.stages[ch.cur].on_complete(*this);
            ++ch.cur;
            ch.stage_posted = false;
            moved = true;
          }
        }
      }
      coll_doorbell_batch_ = false;
      if (op.done()) {
        trace::instant(rank_, trace::ambient_tid(), "coll:done", "mpi");
        if (op.on_finish) op.on_finish(*this);
        creq->complete = true;
        active_colls_[i] = active_colls_.back();
        active_colls_.pop_back();
        arrivals_.signal();  // wake local waiters blocked on this collective
        continue;            // re-examine the swapped-in element
      }
      ++i;
    }
  }
}

Request RankCtx::start_collective(std::unique_ptr<CollOp> op) {
  // Every schedule must carry the algorithm that built it: this is what
  // makes the [stats] trailer's "unknown" impossible by construction.
  if (op->algo == CollAlgo::kUnknown) {
    throw std::logic_error(std::string("collective schedule for ") +
                           coll_name(op->kind) + " built without an algorithm");
  }
  ++coll_stats_.algo_count[static_cast<int>(op->kind)][static_cast<int>(op->algo)];
  if (op->chains.size() > kCollMaxChains) {
    throw std::logic_error("collective schedule exceeds kCollMaxChains");
  }
  // Cross-rank posting-order lint: every rank must post the same (kind, root)
  // sequence per communicator context. Read the fields before op is moved.
  san::mpi_coll_posted(rank_, comms_.get(op->comm).context,
                       static_cast<int>(op->kind), op->root,
                       coll_name(op->kind));
  RequestImpl& r = reqs_.alloc();
  r.kind = ReqKind::kColl;
  r.coll = std::move(op);
  active_colls_.push_back(&r);
  progress_poll();  // posts stage 0 (and may finish a 1-rank collective)
  return Request{r.idx};
}

}  // namespace smpi
