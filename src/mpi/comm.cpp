#include "mpi/comm.hpp"

#include <algorithm>
#include <stdexcept>

namespace smpi {

namespace {
// Context-id derivation: child = parent * kCtxFan + 2 + counter. WORLD = 0,
// SELF = 1. kCtxFan bounds how many communicators may be derived from one
// parent; 0x40000000 on context ids is reserved for the internal collective
// channel (see matching.hpp).
constexpr std::uint32_t kCtxFan = 64;
}  // namespace

int CommInfo::from_global(int global) const {
  auto it = std::find(group.begin(), group.end(), global);
  if (it == group.end()) return kAnySource;
  return static_cast<int>(it - group.begin());
}

void CommTable::init(int me, int nranks) {
  comms_.clear();
  CommInfo world;
  world.context = 0;
  world.group.resize(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) world.group[static_cast<std::size_t>(i)] = i;
  world.my_rank = me;
  comms_.push_back(std::move(world));

  CommInfo self;
  self.context = 1;
  self.group = {me};
  self.my_rank = 0;
  comms_.push_back(std::move(self));
}

CommInfo& CommTable::get(Comm c) {
  if (c.idx < 0 || static_cast<std::size_t>(c.idx) >= comms_.size()) {
    throw std::invalid_argument("invalid communicator handle");
  }
  CommInfo& info = comms_[static_cast<std::size_t>(c.idx)];
  if (info.freed) throw std::invalid_argument("use of freed communicator");
  return info;
}

const CommInfo& CommTable::get(Comm c) const {
  return const_cast<CommTable*>(this)->get(c);
}

Comm CommTable::insert(CommInfo info) {
  comms_.push_back(std::move(info));
  return Comm{static_cast<int>(comms_.size() - 1)};
}

Comm CommTable::dup(Comm parent) {
  CommInfo& p = get(parent);
  CommInfo child;
  child.context = p.context * kCtxFan + 2 + p.next_child++;
  child.group = p.group;
  child.my_rank = p.my_rank;
  return insert(std::move(child));
}

Comm CommTable::split(Comm parent,
                      const std::vector<std::pair<int, int>>& color_key) {
  CommInfo& p = get(parent);
  if (color_key.size() != p.group.size()) {
    throw std::invalid_argument("split: need (color,key) for every member");
  }
  const std::uint32_t ctx_base = p.context * kCtxFan + 2 + p.next_child++;
  const int my_color = color_key[static_cast<std::size_t>(p.my_rank)].first;
  if (my_color < 0) return kCommNull;  // MPI_UNDEFINED-style opt-out

  // Members of my color, ordered by (key, parent rank).
  std::vector<int> members;  // parent-comm ranks
  for (int r = 0; r < p.size(); ++r) {
    if (color_key[static_cast<std::size_t>(r)].first == my_color) members.push_back(r);
  }
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return color_key[static_cast<std::size_t>(a)].second <
           color_key[static_cast<std::size_t>(b)].second;
  });

  CommInfo child;
  // Same derived context for every color: safe because the color groups are
  // disjoint, so (context, source-rank) still uniquely identifies traffic.
  child.context = ctx_base;
  child.group.reserve(members.size());
  for (int pr : members) child.group.push_back(p.to_global(pr));
  child.my_rank = static_cast<int>(
      std::find(members.begin(), members.end(), p.my_rank) - members.begin());
  return insert(std::move(child));
}

void CommTable::free(Comm c) {
  if (c.idx <= 1) throw std::invalid_argument("cannot free WORLD/SELF");
  get(c).freed = true;
}

}  // namespace smpi
