#include "mpi/matching.hpp"

#include <algorithm>

#include "mpi/request.hpp"

namespace smpi {

bool MatchingEngine::matches(std::uint32_t recv_ctx, int recv_src_global,
                             int recv_tag, const Envelope& e) {
  if (recv_ctx != e.context) return false;
  if (recv_src_global != kAnySource && recv_src_global != e.src_global) return false;
  if (recv_tag == kAnyTag) {
    // Partition frames (tag bit 30) carry one slice of a partitioned
    // transfer; a wildcard receive must never intercept one.
    if ((e.tag & kPartTagBit) != 0) return false;
  } else if (recv_tag != e.tag) {
    return false;
  }
  return true;
}

void MatchingEngine::post_recv(RequestImpl* r) { posted_.push_back(r); }

RequestImpl* MatchingEngine::match_posted(const Envelope& e) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    RequestImpl* r = *it;
    if (matches(r->ctx, r->src_global, r->tag, e)) {
      posted_.erase(it);
      return r;
    }
  }
  return nullptr;
}

bool MatchingEngine::remove_posted(RequestImpl* r) {
  auto it = std::find(posted_.begin(), posted_.end(), r);
  if (it == posted_.end()) return false;
  posted_.erase(it);
  return true;
}

void MatchingEngine::add_unexpected(UnexpectedMsg&& m) {
  unexpected_bytes_ += m.payload.size();
  unexpected_.push_back(std::move(m));
}

std::optional<UnexpectedMsg> MatchingEngine::match_unexpected(std::uint32_t ctx,
                                                              int src_global,
                                                              int tag) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(ctx, src_global, tag, it->env)) {
      UnexpectedMsg m = std::move(*it);
      unexpected_.erase(it);
      unexpected_bytes_ -= m.payload.size();
      return m;
    }
  }
  return std::nullopt;
}

const UnexpectedMsg* MatchingEngine::peek_unexpected(std::uint32_t ctx,
                                                     int src_global,
                                                     int tag) const {
  for (const auto& m : unexpected_) {
    if (matches(ctx, src_global, tag, m.env)) return &m;
  }
  return nullptr;
}

}  // namespace smpi
