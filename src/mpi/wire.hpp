// Wire-message kinds and header layouts shared by p2p.cpp / progress.cpp.
#pragma once

#include <cstdint>

namespace smpi {

enum WireKind : std::uint32_t {
  kWireEager = 1,  ///< h0=ctx, h1=tag, h2=bytes; payload = data
  kWireRts = 2,    ///< h0=ctx, h1=tag, h2=sender req idx, h3=bytes
  kWireCts = 3,    ///< h0=sender req idx, h1=recv req idx
  kWireData = 4,   ///< h0=recv req idx, h1=src buf ptr, h2=sender req idx, h3=bytes
  kWireRmaPut = 5,     ///< h0=win id, h1=src ptr, h2=target offset, h3=bytes
  kWireRmaGetReq = 6,  ///< h0=win id, h1=origin buf ptr, h2=target offset, h3=bytes (+origin win in src)
  kWireRmaGetResp = 7, ///< h0=origin win id, h1=src ptr(unused), h2=origin buf ptr, h3=bytes
};

}  // namespace smpi
