// Wire-message kinds and header layouts shared by p2p.cpp / progress.cpp,
// plus the frame checksum of the reliability sublayer.
//
// Reliability (active only when the profile's FaultSpec is enabled): every
// frame RankCtx::net_send injects carries a per-(src,dst) sequence number, a
// piggybacked cumulative ack, and a checksum over ids + headers + payload.
// The receiver's NIC (hardware context) verifies the checksum and accepts
// only the next in-order sequence number — duplicates and gaps are dropped
// and re-acked. Retransmission is *software*: the sender's go-back-N timers
// are checked only inside progress_poll(), i.e. only while some fiber is
// inside MPI, so recovering from loss is subject to the same asynchrony
// problem the paper studies.
#pragma once

#include <cstdint>
#include <cstring>

#include "machine/network.hpp"

namespace smpi {

enum WireKind : std::uint32_t {
  kWireEager = 1,  ///< h0=ctx, h1=tag, h2=bytes; payload = data
  kWireRts = 2,    ///< h0=ctx, h1=tag, h2=sender req idx, h3=bytes
  kWireCts = 3,    ///< h0=sender req idx, h1=recv req idx
  kWireData = 4,   ///< h0=recv req idx, h1=src buf ptr, h2=sender req idx, h3=bytes
  kWireRmaPut = 5,     ///< h0=win id, h1=src ptr, h2=target offset, h3=bytes
  kWireRmaGetReq = 6,  ///< h0=win id, h1=origin buf ptr, h2=target offset, h3=bytes (+origin win in src)
  kWireRmaGetResp = 7, ///< h0=origin win id, h1=src ptr(unused), h2=origin buf ptr, h3=bytes
  kWireAck = 8,        ///< pure cumulative ack (unsequenced); only `ack` is meaningful
};

/// FNV-1a over everything the receiver will interpret: ids, kind, headers,
/// sequence/ack numbers, and the inline payload. Computed before injection,
/// verified at delivery *before* any header word is trusted — several kinds
/// carry raw pointers in h1/h2, so a corrupted frame must never get that far.
inline std::uint32_t wire_checksum(const machine::NetMessage& m) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.src)) << 32) |
      static_cast<std::uint32_t>(m.dst));
  mix(m.kind);
  mix(m.h0);
  mix(m.h1);
  mix(m.h2);
  mix(m.h3);
  mix(m.seq);
  mix(m.ack);
  mix(m.payload.size());
  std::size_t i = 0;
  for (; i + 8 <= m.payload.size(); i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, m.payload.data() + i, 8);
    mix(w);
  }
  for (; i < m.payload.size(); ++i) {
    mix(std::to_integer<std::uint8_t>(m.payload[i]));
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace smpi
