// Point-to-point operations, request completion, and the blocking-wait
// kernel. Protocol selection:
//   * bytes <= profile.eager_threshold → eager: copy into an internal buffer
//     (CPU, proportional to size), inject; the send request completes
//     immediately (locally buffered).
//   * bytes >  threshold → rendezvous: post an RTS; data moves only after
//     the receiver's progress engine matched it and returned a CTS — the
//     mechanism behind the paper's Fig. 2/4 overlap cliff.
#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "mpi/cluster.hpp"
#include "mpi/entry.hpp"
#include "mpi/rank_ctx.hpp"
#include "mpi/wire.hpp"
#include "san/san.hpp"
#include "trace/scope.hpp"

namespace smpi {

RankCtx::RankCtx(Cluster& cluster, int rank, ThreadLevel level)
    : cluster_(cluster),
      rank_(rank),
      level_(level),
      c_retransmits_(rank, "rel.retransmits"),
      c_dup_drops_(rank, "rel.dup_drops") {
  comms_.init(rank, cluster.nranks());
  rel_on_ = cluster.profile().faults.enabled();
  if (rel_on_) rel_.resize(static_cast<std::size_t>(cluster.nranks()));
}

int RankCtx::nranks() const { return cluster_.nranks(); }

const machine::Profile& RankCtx::profile() const { return cluster_.profile(); }

// ------------------------------------------------------------ internals ----

Request RankCtx::isend_internal(const void* buf, std::size_t bytes,
                                int dst_global, std::uint32_t ctx, int tag,
                                Comm comm) {
  RequestImpl& r = reqs_.alloc();
  post_send_into(r, buf, bytes, dst_global, ctx, tag, comm,
                 /*registered=*/false);
  return Request{r.idx};
}

void RankCtx::post_send_into(RequestImpl& r, const void* buf,
                             std::size_t bytes, int dst_global,
                             std::uint32_t ctx, int tag, Comm comm,
                             bool registered) {
  (void)comm;
  const auto& p = profile();

  if (dst_global == rank_) {
    // Loopback: one shared-memory copy, delivered straight to our own inbox
    // (always "eager" — no NIC involved). Registered (persistent) buffers
    // are byte-stable for the generation, so the receiver DMAs straight from
    // them — no sender-side bounce-copy charge (the memcpy below stays:
    // simulation bookkeeping, digests must see the payload).
    trace::Scope tsc("send:loopback", "mpi");
    if (!registered) sim::advance(p.copy_cost(bytes));
    machine::NetMessage m;
    m.src = m.dst = rank_;
    m.kind = kWireEager;
    m.h0 = ctx;
    m.h1 = static_cast<std::uint64_t>(static_cast<std::int64_t>(tag));
    m.h2 = bytes;
    if (buf != nullptr) {
      m.payload.resize(bytes);
      std::memcpy(m.payload.data(), buf, bytes);
    } else {
      m.wire_bytes = bytes;  // phantom payload: timing only
    }
    inbox_.push_back(std::move(m));
    arrivals_.signal();
    r.kind = ReqKind::kSendEager;
    r.complete = true;
    ++stats_.eager_sends;
    return;
  }

  // Collective stages batch their sends on one doorbell (see
  // post_coll_stage): the first descriptor rings, the rest only pay the
  // already-charged enqueue work. The coll_* flags are state of the LIVE
  // progress pass; a send issued by a sibling engine fiber interleaving with
  // that pass must not inherit its batching or registered-buffer treatment.
  const bool stage_post = coll_posting_ && progress_pass_current();
  const auto charge_doorbell = [&] {
    const bool batching = coll_doorbell_batch_ && progress_pass_current();
    if (batching && coll_doorbell_rung_) {
      ++coll_stats_.doorbells_amortized;
      return;
    }
    sim::advance(p.nic_doorbell);
    if (batching) coll_doorbell_rung_ = true;
  };

  if (bytes <= p.eager_threshold) {
    // Eager: internal copy + doorbell; complete at once. Collective stage
    // sends come from schedule-owned registered buffers that stay stable
    // until the stage completes, so the NIC serializes straight from them —
    // no CPU bounce copy (the simulation memcpy below is bookkeeping only).
    // Registered persistent-send buffers get the same treatment.
    trace::Scope tsc("send:eager", "mpi");
    if (!stage_post && !registered) sim::advance(p.copy_cost(bytes));
    charge_doorbell();
    machine::NetMessage m;
    m.src = rank_;
    m.dst = dst_global;
    m.kind = kWireEager;
    m.h0 = ctx;
    m.h1 = static_cast<std::uint64_t>(static_cast<std::int64_t>(tag));
    m.h2 = bytes;
    if (buf != nullptr) {
      m.payload.resize(bytes);
      std::memcpy(m.payload.data(), buf, bytes);
    }
    m.wire_bytes = bytes;
    net_send(std::move(m));
    r.kind = ReqKind::kSendEager;
    r.complete = true;
    ++stats_.eager_sends;
    return;
  }

  // Rendezvous: control message only; the payload stays in the user buffer.
  trace::Scope tsc("send:rts", "mpi");
  charge_doorbell();
  r.kind = ReqKind::kSendRndv;
  r.sbuf = buf;
  r.sbytes = bytes;
  r.dst_global = dst_global;
  machine::NetMessage m;
  m.src = rank_;
  m.dst = dst_global;
  m.kind = kWireRts;
  m.h0 = ctx;
  m.h1 = static_cast<std::uint64_t>(static_cast<std::int64_t>(tag));
  m.h2 = static_cast<std::uint64_t>(r.idx);
  m.h3 = bytes;
  net_send(std::move(m));
  pending_rndv_send_.push_back(&r);
  ++stats_.rndv_sends;
  // Rendezvous keeps the payload in the user buffer until the CTS/DMA runs:
  // that inflight window is exactly what the sanitizer's buffer lint guards.
  // (Eager/loopback sends complete at post time — nothing stays inflight.)
  if (!stage_post) san::mpi_post_send(rank_, r.idx, buf, bytes);
}

Request RankCtx::irecv_internal(void* buf, std::size_t bytes, int src_global,
                                std::uint32_t ctx, int tag, Comm comm) {
  RequestImpl& r = reqs_.alloc();
  post_recv_into(r, buf, bytes, src_global, ctx, tag, comm);
  return Request{r.idx};
}

void RankCtx::post_recv_into(RequestImpl& r, void* buf, std::size_t bytes,
                             int src_global, std::uint32_t ctx, int tag,
                             Comm comm) {
  const auto& p = profile();
  r.kind = ReqKind::kRecv;
  r.rbuf = buf;
  r.rbytes = bytes;
  r.ctx = ctx;
  r.src_global = src_global;
  r.tag = tag;
  r.comm = comm;
  r.coll_internal = coll_posting_ && progress_pass_current();

  // First look in the unexpected queue (MPI ordering requires it).
  if (auto um = match_.match_unexpected(ctx, src_global, tag)) {
    trace::Scope tsc("recv:unexpected", "mpi");
    ++stats_.unexpected_hits;
    sim::advance(p.mpi_match_cost);
    if (um->is_rndv) {
      if (um->bytes > bytes) throw std::runtime_error("recv truncation (rndv)");
      send_cts(um->sender_req, um->env.src_global, r);
      r.matched_rndv = true;
      r.status.source = comms_.get(comm).from_global(um->env.src_global);
      r.status.tag = um->env.tag;
      r.status.bytes = um->bytes;
      pending_rndv_recv_.push_back(&r);
      if (!r.coll_internal) san::mpi_post_recv(rank_, r.idx, buf, bytes);
    } else {
      if (um->bytes > bytes) throw std::runtime_error("recv truncation");
      sim::advance(p.copy_cost(um->bytes));
      if (buf != nullptr && !um->payload.empty()) {
        std::memcpy(buf, um->payload.data(), um->payload.size());
      }
      r.status.source = comms_.get(comm).from_global(um->env.src_global);
      r.status.tag = um->env.tag;
      r.status.bytes = um->bytes;
      r.complete = true;
    }
    return;
  }

  match_.post_recv(&r);
  if (!r.coll_internal) san::mpi_post_recv(rank_, r.idx, buf, bytes);
}

// ---------------------------------------------------- persistent internals --

void RankCtx::start_internal(RequestImpl& r) {
  if (!r.persistent) {
    san::mpi_persist_misuse(rank_, "Start", "request is not persistent");
    throw std::logic_error("MPI_Start: request is not persistent");
  }
  if (r.p_started && !r.complete) {
    san::mpi_persist_misuse(rank_, "Start",
                            "previous generation still in flight");
    throw std::logic_error("MPI_Start: previous generation still in flight");
  }
  if (r.p_started && r.complete) {
    // Completed but never waited: settle the old generation before re-arming
    // (its status is dropped — wait/test between generations to observe it).
    san::mpi_complete(rank_, r.idx);
  }
  r.reset_transfer_state();
  r.p_started = true;
  if (r.p_peer == kProcNull) {
    r.kind = r.p_send ? ReqKind::kSendEager : ReqKind::kRecv;
    if (!r.p_send) r.status = Status{kProcNull, kAnyTag, 0};
    r.complete = true;
    return;
  }
  if (r.p_send) {
    post_send_into(r, r.p_buf, r.p_bytes, r.p_peer, r.p_ctx, r.p_tag, r.p_comm,
                   /*registered=*/true);
  } else {
    post_recv_into(r, r.p_rbuf, r.p_bytes, r.p_peer, r.p_ctx, r.p_tag,
                   r.p_comm);
  }
}

// ------------------------------------------------------------ wait core ----

bool RankCtx::software_work_pending() const {
  return !inbox_.empty() || !pending_rndv_send_.empty() ||
         !pending_rndv_recv_.empty() || !active_colls_.empty();
}

void RankCtx::wait_until(MpiEntry& entry, const std::function<bool()>& done) {
  const auto& p = profile();
  // Fast path: already complete (e.g. MPI_Wait on a finished eager send) —
  // real implementations check the request state before touching the
  // progress engine.
  if (done()) return;
  ++blocked_in_mpi_;
  struct Dec {
    int& v;
    ~Dec() { --v; }
  } dec{blocked_in_mpi_};
  // Adaptive spin: a MULTIPLE waiter hammers the lock at the base period
  // while traffic is active, but backs off exponentially when consecutive
  // re-polls find nothing (bounds simulator event counts on long waits
  // without changing contention behaviour at microsecond scales).
  std::int64_t backoff = p.multiple_repoll.ns();
  for (;;) {
    // Capture the arrival cursor BEFORE polling: anything that lands while
    // the poll's own work advances the clock makes the wait below return
    // immediately instead of being lost.
    const std::uint64_t seen = arrivals_.count();
    progress_poll();
    if (done()) return;
    if (level_ == ThreadLevel::kMultiple) {
      // A blocked MULTIPLE thread cycles lock→progress→unlock; it holds the
      // lock for a slice each cycle, which is what serializes other threads
      // when several of them block concurrently (paper Fig. 6). With no
      // other thread inside the library the cycling has no observable
      // effect, so the model waits for an arrival instead (every protocol
      // transition is arrival-signalled).
      sim::advance(p.big_lock_slice);
      entry.unlock_for_sleep();
      if (blocked_in_mpi_ > 1 || rel_on_) {
        if (arrivals_.wait_beyond_timeout(seen, sim::Time(backoff))) {
          backoff = p.multiple_repoll.ns();  // traffic: spin hard again
        } else {
          backoff = std::min<std::int64_t>(backoff * 2,
                                           p.multiple_repoll.ns() * 128);
        }
      } else {
        arrivals_.wait_beyond(seen);
      }
      entry.relock();
    } else if (rel_on_) {
      // Under faults the wake we are waiting for may itself be lost (dropped
      // ack, dropped data frame): sleep with a bound so the software
      // retransmit timers in progress_poll get a chance to fire. Same
      // exponential backoff as the MULTIPLE path to bound event counts.
      if (arrivals_.wait_beyond_timeout(seen, sim::Time(backoff))) {
        backoff = p.multiple_repoll.ns();
      } else {
        backoff =
            std::min<std::int64_t>(backoff * 2, p.multiple_repoll.ns() * 128);
      }
    } else {
      arrivals_.wait_beyond(seen);
    }
  }
}

bool RankCtx::test_internal(RequestImpl& r, Status* st) {
  if (!r.settled()) return false;
  if (st != nullptr) *st = r.status;
  return true;
}

void RankCtx::release_if_complete(Request& r, Status* st) {
  RequestImpl& impl = reqs_.get(r);
  if (impl.persistent) {
    // Persistent requests are reset, never released: the table slot (and the
    // handle value) survive until request_free. The caller's handle COPY is
    // nulled — that is load-bearing for the offload engine's testany sweep,
    // which uses a nulled scratch entry as its dead-slot marker; the public
    // wait/test restore the app-visible handle afterwards.
    if (!impl.p_started) {  // inactive: trivially complete, empty status
      if (st != nullptr) *st = Status{};
      r = kRequestNull;
      return;
    }
    if (!impl.complete) return;
    if (st != nullptr) *st = impl.status;
    san::mpi_complete(rank_, impl.idx);  // verify checksum, drop registration
    impl.complete = false;
    impl.p_started = false;  // back to inactive, ready for the next Start
    r = kRequestNull;
    return;
  }
  if (!impl.complete) return;
  if (st != nullptr) *st = impl.status;
  san::mpi_complete(rank_, impl.idx);  // verify checksum, drop registration
  reqs_.release(impl);
  r = kRequestNull;
}

// ------------------------------------------------------------ public API ----

Request RankCtx::isend(const void* buf, std::size_t count, Datatype dt, int dst,
                       int tag, Comm comm) {
  MpiEntry entry(*this, false, "Isend");
  const CommInfo& ci = comms_.get(comm);
  if (dst == kProcNull) {
    RequestImpl& r = reqs_.alloc();
    r.kind = ReqKind::kSendEager;
    r.complete = true;
    return Request{r.idx};
  }
  Request rq = isend_internal(buf, count * datatype_size(dt), ci.to_global(dst),
                              ci.context, tag, comm);
  progress_poll();  // an MPI entry is a progress opportunity
  return rq;
}

Request RankCtx::irecv(void* buf, std::size_t count, Datatype dt, int src,
                       int tag, Comm comm) {
  MpiEntry entry(*this, false, "Irecv");
  const CommInfo& ci = comms_.get(comm);
  if (src == kProcNull) {
    RequestImpl& r = reqs_.alloc();
    r.kind = ReqKind::kRecv;
    r.complete = true;
    r.status = Status{kProcNull, kAnyTag, 0};
    return Request{r.idx};
  }
  const int src_global = (src == kAnySource) ? kAnySource : ci.to_global(src);
  Request rq = irecv_internal(buf, count * datatype_size(dt), src_global,
                              ci.context, tag, comm);
  progress_poll();
  return rq;
}

void RankCtx::send(const void* buf, std::size_t count, Datatype dt, int dst,
                   int tag, Comm comm) {
  Request r = isend(buf, count, dt, dst, tag, comm);
  wait(r);
}

void RankCtx::recv(void* buf, std::size_t count, Datatype dt, int src, int tag,
                   Comm comm, Status* st) {
  Request r = irecv(buf, count, dt, src, tag, comm);
  wait(r, st);
}

bool RankCtx::test(Request& r, Status* st) {
  MpiEntry entry(*this, false, "Test");
  if (r.is_null()) {
    if (st != nullptr) *st = Status{};
    return true;
  }
  if (!san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Test")) {
    r = kRequestNull;  // stale handle: treat as complete, as a real wait would
    if (st != nullptr) *st = Status{};
    return true;
  }
  progress_poll();
  RequestImpl& impl = reqs_.get(r);
  if (!impl.settled()) return false;
  const bool keep = impl.persistent;
  release_if_complete(r, st);
  if (keep) r = Request{impl.idx};  // handle survives across generations
  return true;
}

void RankCtx::wait(Request& r, Status* st) {
  MpiEntry entry(*this, false, "Wait");
  if (r.is_null()) return;
  if (!san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Wait")) {
    r = kRequestNull;
    if (st != nullptr) *st = Status{};
    return;
  }
  RequestImpl& impl = reqs_.get(r);
  wait_until(entry, [&] { return impl.settled(); });
  const bool keep = impl.persistent;
  release_if_complete(r, st);
  if (keep) r = Request{impl.idx};  // handle survives across generations
}

void RankCtx::waitall(std::span<Request> rs) {
  MpiEntry entry(*this, false, "Waitall");
  for (Request& r : rs) {
    if (!r.is_null() &&
        !san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Waitall")) {
      r = kRequestNull;
    }
  }
  wait_until(entry, [&] {
    for (Request& r : rs) {
      if (!r.is_null() && !reqs_.get(r).settled()) return false;
    }
    return true;
  });
  for (Request& r : rs) {
    if (!r.is_null()) release_if_complete(r, nullptr);
  }
}

int RankCtx::waitany(std::span<Request> rs, Status* st) {
  MpiEntry entry(*this, false, "Waitany");
  for (Request& r : rs) {
    if (!r.is_null() &&
        !san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Waitany")) {
      r = kRequestNull;
    }
  }
  int found = -1;
  wait_until(entry, [&] {
    bool any_active = false;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i].is_null()) continue;
      any_active = true;
      if (reqs_.get(rs[i]).settled()) {
        found = static_cast<int>(i);
        return true;
      }
    }
    return !any_active;  // all null → "undefined" completion
  });
  if (found >= 0) release_if_complete(rs[static_cast<std::size_t>(found)], st);
  return found;
}

bool RankCtx::testany(std::span<Request> rs, int* index, Status* st) {
  if (rs.empty()) {
    // MPI_Testany(0, ...): flag = true, index = MPI_UNDEFINED — and no call
    // overhead, matching implementations that short-circuit before entry.
    *index = -1;
    return true;
  }
  MpiEntry entry(*this, false, "Testany");
  for (Request& r : rs) {
    if (!r.is_null() &&
        !san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Testany")) {
      r = kRequestNull;
    }
  }
  progress_poll();
  bool any_active = false;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (rs[i].is_null()) continue;
    any_active = true;
    if (reqs_.get(rs[i]).settled()) {
      *index = static_cast<int>(i);
      release_if_complete(rs[i], st);
      return true;
    }
  }
  *index = -1;
  return !any_active;
}

bool RankCtx::testall(std::span<Request> rs) {
  MpiEntry entry(*this, false, "Testall");
  for (Request& r : rs) {
    if (!r.is_null() &&
        !san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Testall")) {
      r = kRequestNull;
    }
  }
  progress_poll();
  for (Request& r : rs) {
    if (!r.is_null() && !reqs_.get(r).settled()) return false;
  }
  for (Request& r : rs) {
    if (!r.is_null()) release_if_complete(r, nullptr);
  }
  return true;
}

std::vector<int> RankCtx::waitsome(std::span<Request> rs) {
  if (rs.empty()) return {};  // MPI_Waitsome(0, ...): no entry overhead
  MpiEntry entry(*this, false, "Waitsome");
  for (Request& r : rs) {
    if (!r.is_null() &&
        !san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Waitsome")) {
      r = kRequestNull;
    }
  }
  bool any_active = false;
  for (Request& r : rs) any_active = any_active || !r.is_null();
  if (!any_active) return {};
  wait_until(entry, [&] {
    for (Request& r : rs) {
      if (!r.is_null() && reqs_.get(r).settled()) return true;
    }
    return false;
  });
  std::vector<int> done;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (!rs[i].is_null() && reqs_.get(rs[i]).settled()) {
      done.push_back(static_cast<int>(i));
      release_if_complete(rs[i], nullptr);
    }
  }
  return done;
}

Request RankCtx::send_init(const void* buf, std::size_t count, Datatype dt,
                           int dst, int tag, Comm comm) {
  MpiEntry entry(*this, false, "Send_init");
  const CommInfo& ci = comms_.get(comm);
  RequestImpl& r = reqs_.alloc();
  r.persistent = true;
  r.p_send = true;
  r.p_buf = buf;
  r.p_bytes = count * datatype_size(dt);
  r.p_peer = (dst == kProcNull) ? kProcNull : ci.to_global(dst);
  r.p_ctx = ci.context;
  r.p_tag = tag;
  r.p_comm = comm;
  return Request{r.idx};
}

Request RankCtx::recv_init(void* buf, std::size_t count, Datatype dt, int src,
                           int tag, Comm comm) {
  MpiEntry entry(*this, false, "Recv_init");
  const CommInfo& ci = comms_.get(comm);
  RequestImpl& r = reqs_.alloc();
  r.persistent = true;
  r.p_send = false;
  r.p_rbuf = buf;
  r.p_bytes = count * datatype_size(dt);
  r.p_peer = (src == kProcNull || src == kAnySource) ? src : ci.to_global(src);
  r.p_ctx = ci.context;
  r.p_tag = tag;
  r.p_comm = comm;
  return Request{r.idx};
}

void RankCtx::start(Request r) {
  const auto& p = profile();
  MpiEntry entry(*this, false, "Start", &p.persist_start);
  if (r.is_null()) {
    san::mpi_persist_misuse(rank_, "Start", "null request");
    throw std::logic_error("MPI_Start on the null request");
  }
  if (!san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Start")) {
    throw std::logic_error("MPI_Start on a freed request handle");
  }
  start_internal(reqs_.get(r));
  // Deliberately no progress_poll: Start is the thin re-arm path — that the
  // entry stays cheap is the point of persistent requests.
}

void RankCtx::startall(std::span<Request> rs) {
  if (rs.empty()) return;  // MPI_Startall(0, ...): no entry overhead
  const auto& p = profile();
  MpiEntry entry(*this, false, "Startall", &p.persist_start);
  for (Request& r : rs) {
    if (r.is_null()) {
      san::mpi_persist_misuse(rank_, "Startall", "null request");
      throw std::logic_error("MPI_Startall on the null request");
    }
    if (!san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Startall")) {
      throw std::logic_error("MPI_Startall on a freed request handle");
    }
    start_internal(reqs_.get(r));
  }
}

void RankCtx::request_free(Request& r) {
  MpiEntry entry(*this, false, "Request_free");
  if (r.is_null()) return;
  if (!san::mpi_handle_ok(rank_, r.idx, reqs_.get(r).active, "Request_free")) {
    r = kRequestNull;
    return;
  }
  RequestImpl& impl = reqs_.get(r);
  if (!impl.persistent) {
    san::mpi_persist_misuse(rank_, "Request_free",
                            "request is not persistent");
    throw std::logic_error("MPI_Request_free: request is not persistent");
  }
  if (impl.p_started && !impl.complete) {
    san::mpi_persist_misuse(rank_, "Request_free", "generation in flight");
    throw std::logic_error("MPI_Request_free: generation still in flight");
  }
  if (impl.p_started && impl.complete) san::mpi_complete(rank_, impl.idx);
  reqs_.release(impl);
  r = kRequestNull;
}

void RankCtx::sendrecv(const void* sbuf, std::size_t scount, int dst, int stag,
                       void* rbuf, std::size_t rcount, int src, int rtag,
                       Datatype dt, Comm comm, Status* st) {
  Request rr = irecv(rbuf, rcount, dt, src, rtag, comm);
  Request rs = isend(sbuf, scount, dt, dst, stag, comm);
  wait(rr, st);
  wait(rs);
}

bool RankCtx::iprobe(int src, int tag, Comm comm, Status* st) {
  MpiEntry entry(*this, false, "Iprobe");
  progress_poll();
  const CommInfo& ci = comms_.get(comm);
  const int src_global = (src == kAnySource) ? kAnySource : ci.to_global(src);
  const UnexpectedMsg* m = match_.peek_unexpected(ci.context, src_global, tag);
  if (m == nullptr) return false;
  if (st != nullptr) {
    st->source = ci.from_global(m->env.src_global);
    st->tag = m->env.tag;
    st->bytes = m->bytes;
  }
  return true;
}

void RankCtx::probe(int src, int tag, Comm comm, Status* st) {
  MpiEntry entry(*this, false, "Probe");
  const CommInfo& ci = comms_.get(comm);
  const int src_global = (src == kAnySource) ? kAnySource : ci.to_global(src);
  const UnexpectedMsg* found = nullptr;
  wait_until(entry, [&] {
    found = match_.peek_unexpected(ci.context, src_global, tag);
    return found != nullptr;
  });
  if (st != nullptr) {
    st->source = ci.from_global(found->env.src_global);
    st->tag = found->env.tag;
    st->bytes = found->bytes;
  }
}

void RankCtx::progress() {
  MpiEntry entry(*this, false, "Progress");
  progress_poll();
}

Comm RankCtx::comm_dup(Comm parent) {
  // Collective by MPI rules; synchronize like a barrier so no rank races
  // ahead and sends on the new context before everyone constructed it.
  barrier(parent);
  MpiEntry entry(*this, false, "Comm_dup");
  return comms_.dup(parent);
}

Comm RankCtx::comm_split(Comm parent, int color, int key) {
  // Exchange (color,key) of every member, then compute the split locally.
  const CommInfo& ci = comms_.get(parent);
  std::vector<std::pair<int, int>> color_key(
      static_cast<std::size_t>(ci.size()));
  std::pair<int, int> mine{color, key};
  static_assert(sizeof(std::pair<int, int>) == 2 * sizeof(int));
  allgather(&mine, color_key.data(), 2, Datatype::kInt, parent);
  MpiEntry entry(*this, false, "Comm_split");
  return comms_.split(parent, color_key);
}

void RankCtx::comm_free(Comm c) {
  MpiEntry entry(*this, false, "Comm_free");
  comms_.free(c);
}

}  // namespace smpi
