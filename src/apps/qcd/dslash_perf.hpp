// Performance harness for Wilson-Dslash at paper scale (Table 1, Figs 9-12).
//
// Communication is real (phantom-payload messages of the exact face sizes go
// through the full SimMPI protocol stack); computation phases advance the
// virtual clock through a calibrated rate model:
//     rate = flops_per_ns_thread * compute_threads * cache_boost
// where compute_threads loses one core to approaches with a dedicated
// communication thread, and cache_boost models the superlinear speedup the
// paper sees once the local working set fits in LLC.
#pragma once

#include <cstdint>

#include "apps/qcd/lattice.hpp"
#include "core/proxy.hpp"
#include "machine/profile.hpp"

namespace qcd {

struct QcdPerfConfig {
  Dims global{32, 32, 32, 256};
  int nodes = 8;
  int ranks_per_node = 2;  ///< paper: one MPI rank per socket
  machine::Profile profile = machine::xeon_fdr();
  core::Approach approach = core::Approach::kBaseline;
  int iters = 20;
  int warmup = 2;

  /// Effective per-hardware-thread Dslash rate (flops/ns); 28 HT x 6.5 =
  /// 182 flops/ns per rank, calibrated to Table 1's internal-compute times.
  double flops_per_ns_thread = 6.5;
  /// LLC working-set effect (paper: superlinear scaling at high node counts).
  double cache_boost = 1.35;
  double cache_threshold_bytes = 12.0 * 1024 * 1024;
  /// Resident bytes per site (spinors + gauge).
  double bytes_per_site = 408.0;

  /// Chunks the interior loop is split into; the iprobe approach calls
  /// progress_hint() between chunks (Listing 1's PROGRESS macro).
  int progress_chunks = 8;

  /// Fig. 12: number of thread groups concurrently issuing MPI calls
  /// (1 = funneled master-thread issue as in Listing 1).
  int thread_groups = 1;

  /// Fig. 11: model a solver iteration (adds BLAS1 work and global
  /// reductions around each Dslash application).
  bool solver = false;

  /// A9: replace the polling waitall with a when_all continuation graph —
  /// the proxy's progress context releases the requests; the application
  /// thread only sleeps on the graph's tail event (thread_groups == 1 only).
  bool continuations = false;
};

struct QcdPerfResult {
  // Mean per-iteration phase times at rank 0, microseconds.
  double internal_us = 0;
  double post_us = 0;
  double wait_us = 0;
  double misc_us = 0;
  double total_us = 0;
  double tflops = 0;  ///< aggregate sustained Dslash flops
  int ranks = 0;
  Dims grid{};
  std::size_t max_face_bytes = 0;
  std::size_t min_face_bytes = 0;
  // Rank-0 continuation counters (offload proxy only; zero elsewhere), so
  // the A9 ablation can report how completions were discovered.
  std::uint64_t cont_armed = 0;
  std::uint64_t cont_executed = 0;
  std::uint64_t cont_deferred = 0;
  std::uint64_t cont_inline = 0;
  std::uint64_t cont_posts = 0;
};

QcdPerfResult run_qcd_perf(const QcdPerfConfig& cfg);

}  // namespace qcd
