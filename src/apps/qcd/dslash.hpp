// Wilson-Dslash-style lattice operator (paper Section 5.1).
//
// Data model: a spinor carries 4 spins x 3 colors of complex<float> per
// site; gauge links are 3x3 complex matrices per site and direction. The
// operator implemented is the gauge-covariant central-difference hopping
// term
//     D psi(x) = sum_mu [ U_mu(x) psi(x+mu) + U_mu(x-mu)^dag psi(x-mu) ]
// applied per spin component. Compared to the full Wilson-Dslash it omits
// the spin-projection algebra (which halves the transferred spinor), but has
// the identical nearest-neighbor data movement, halo-exchange communication
// pattern, and comparable arithmetic intensity. This simplified D is
// Hermitian, which the solvers exploit. Performance experiments use the
// paper's Wilson-Dslash figure of 1320 flops/site.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "apps/qcd/lattice.hpp"
#include "core/proxy.hpp"
#include "mpi/rank_ctx.hpp"

namespace qcd {

using cf = std::complex<float>;

inline constexpr int kSpins = 4;
inline constexpr int kColors = 3;
inline constexpr int kSpinorFloats = kSpins * kColors;  // complex entries/site
inline constexpr int kLinkEntries = kColors * kColors;

/// Paper figure for full Wilson-Dslash arithmetic (single precision).
inline constexpr double kFlopsPerSite = 1320.0;
/// Bytes per face site on the wire (projected two-spin half spinor, as the
/// QPhiX implementation the paper builds on sends).
inline constexpr std::size_t kFaceBytesPerSite = 48;

struct SpinorField {
  Dims dims{};
  std::vector<cf> v;

  explicit SpinorField(const Dims& d)
      : dims(d), v(static_cast<std::size_t>(volume(d)) * kSpinorFloats) {}
  [[nodiscard]] cf* site(int idx) { return v.data() + static_cast<std::size_t>(idx) * kSpinorFloats; }
  [[nodiscard]] const cf* site(int idx) const {
    return v.data() + static_cast<std::size_t>(idx) * kSpinorFloats;
  }
  [[nodiscard]] std::int64_t sites() const { return volume(dims); }
};

struct GaugeField {
  Dims dims{};
  std::vector<cf> v;  ///< 4 links x 9 entries per site

  explicit GaugeField(const Dims& d)
      : dims(d), v(static_cast<std::size_t>(volume(d)) * 4 * kLinkEntries) {}
  [[nodiscard]] cf* link(int idx, int mu) {
    return v.data() + (static_cast<std::size_t>(idx) * 4 + static_cast<std::size_t>(mu)) * kLinkEntries;
  }
  [[nodiscard]] const cf* link(int idx, int mu) const {
    return v.data() + (static_cast<std::size_t>(idx) * 4 + static_cast<std::size_t>(mu)) * kLinkEntries;
  }
};

/// Deterministic pseudo-random fields. The gauge field is a perturbation of
/// the identity (keeps the Wilson matrix well conditioned for solver tests).
void fill_random_spinor(SpinorField& f, std::uint64_t seed);
void fill_random_gauge(GaugeField& g, std::uint64_t seed, float epsilon = 0.1f);

/// Single-rank reference: periodic boundaries over the whole field.
void dslash_reference(const GaugeField& u, const SpinorField& in, SpinorField& out);

/// axpy/dot helpers used by solvers (double-precision accumulation).
std::complex<double> spinor_dot(const SpinorField& a, const SpinorField& b);
double spinor_norm2(const SpinorField& a);
void spinor_axpy(cf alpha, const SpinorField& x, SpinorField& y);  // y += a*x
void spinor_xpay(const SpinorField& x, cf alpha, SpinorField& y);  // y = x + a*y
void spinor_scale(cf alpha, SpinorField& y);
void spinor_copy(const SpinorField& x, SpinorField& y);

/// Distributed operator: owns halo buffers and performs the Listing-1 loop
/// (pack -> post nonblocking exchange -> interior -> wait -> boundary) with
/// real arithmetic. Used for correctness at small volumes.
class DistributedDslash {
 public:
  DistributedDslash(const Decomposition& dec, core::Proxy& proxy);

  [[nodiscard]] const Decomposition& dec() const { return dec_; }
  SpinorField& psi() { return psi_; }
  GaugeField& gauge() { return gauge_; }

  /// out = D psi (halo exchange + stencil).
  void apply(SpinorField& out);
  /// out = D psi as a continuation graph: each received +mu face's U*psi
  /// products are computed by the face's completion continuation (on the
  /// proxy's progress context) into per-face scratch, overlapped with the
  /// interior stencil; the application thread only waits the graph's tail
  /// event and folds the accumulated faces in. Bit-identical to apply():
  /// the fold adds exactly the values boundary() would, in the same order.
  void apply_chained(SpinorField& out);
  /// Apply to an arbitrary input field (copies into psi storage).
  void apply_to(const SpinorField& in, SpinorField& out);
  /// out = D psi through init-once persistent/partitioned halo requests
  /// (DESIGN.md §16). The first call creates one partitioned psend/precv
  /// pair per split dimension and direction; every call restarts them,
  /// packs each face in partition-sized chunks and pready()s each chunk so
  /// early partitions ship while the rest of the face is still packing,
  /// overlaps the interior stencil, then waits the whole exchange before
  /// the boundary accumulation. Bit-identical to apply(): same receive
  /// buffers, same interior/boundary arithmetic in the same order.
  void apply_partitioned(SpinorField& out);
  /// Free the persistent halo requests (must be called after the last
  /// generation completed and before the proxy stops; idempotent).
  void release_persistent();
  /// Partition count apply_partitioned uses for dimension mu (0 = unsplit).
  [[nodiscard]] int halo_partitions(int mu) const { return halo_parts_[mu]; }

 private:
  void pack_faces();
  /// Pack face sites [lo, hi) of dimension mu into send_minus_/send_plus_
  /// — the chunk-granular form of pack_faces (identical per-site math).
  void pack_face_chunk(int mu, int lo, int hi);
  void init_persistent();
  void interior(SpinorField& out);
  void boundary(SpinorField& out);
  /// Continuation body: scratch_plus_[mu] = U(x,mu) * recv_plus_[mu] over
  /// the top face (what boundary()'s +mu term would add into out).
  void compute_face_plus(int mu);
  /// boundary() for the chained path: fold scratch_plus_ / recv_minus_.
  void fold_boundary(SpinorField& out);

  const Decomposition dec_;
  core::Proxy& proxy_;
  SpinorField psi_;
  GaugeField gauge_;
  // Per dimension: send/recv buffers for both directions (raw spinors go to
  // the -mu neighbor; premultiplied U^dag psi products go to the +mu one).
  std::vector<cf> send_minus_[4], send_plus_[4];
  std::vector<cf> recv_plus_[4], recv_minus_[4];
  std::vector<cf> scratch_plus_[4];  ///< apply_chained face accumulators
  // Persistent/partitioned halo state (apply_partitioned): per split mu the
  // requests come in groups of four — {recv_plus, recv_minus, send_minus,
  // send_plus} — mirroring the one-shot batch order in apply().
  std::vector<core::PersistentReq> halo_reqs_;
  std::vector<int> halo_mu_;          ///< which mu each group of four serves
  int halo_parts_[4] = {0, 0, 0, 0};  ///< partitions per dimension
};

}  // namespace qcd
