#include "apps/qcd/dslash.hpp"

#include <cassert>

#include "mpi/continuation.hpp"
#include "sim/rng.hpp"

namespace qcd {

namespace {

// ---- small complex linear algebra on 3-vectors / 3x3 matrices ----

/// out[s] += U * in[s] for all 4 spins (U row-major 3x3).
inline void mat_vec_acc(const cf* u, const cf* in, cf* out) {
  for (int s = 0; s < kSpins; ++s) {
    const cf* x = in + s * kColors;
    cf* y = out + s * kColors;
    for (int r = 0; r < kColors; ++r) {
      cf acc = 0;
      for (int c = 0; c < kColors; ++c) acc += u[r * kColors + c] * x[c];
      y[r] += acc;
    }
  }
}

/// out[s] += U^dag * in[s] for all 4 spins.
inline void matdag_vec_acc(const cf* u, const cf* in, cf* out) {
  for (int s = 0; s < kSpins; ++s) {
    const cf* x = in + s * kColors;
    cf* y = out + s * kColors;
    for (int r = 0; r < kColors; ++r) {
      cf acc = 0;
      for (int c = 0; c < kColors; ++c) acc += std::conj(u[c * kColors + r]) * x[c];
      y[r] += acc;
    }
  }
}

/// out[s] = U^dag * in[s] (no accumulate) — used when packing +mu faces.
inline void matdag_vec(const cf* u, const cf* in, cf* out) {
  for (int s = 0; s < kSpins; ++s) {
    const cf* x = in + s * kColors;
    cf* y = out + s * kColors;
    for (int r = 0; r < kColors; ++r) {
      cf acc = 0;
      for (int c = 0; c < kColors; ++c) acc += std::conj(u[c * kColors + r]) * x[c];
      y[r] = acc;
    }
  }
}

inline void vec_acc(const cf* in, cf* out) {
  for (int i = 0; i < kSpinorFloats; ++i) out[i] += in[i];
}

/// Linear index of a site on the face orthogonal to `mu`.
inline int face_index(const Dims& c, const Dims& dims, int mu) {
  Dims fd = dims;
  Dims fc = c;
  fd[static_cast<std::size_t>(mu)] = 1;
  fc[static_cast<std::size_t>(mu)] = 0;
  return site_index(fc, fd);
}

template <typename Fn>
void for_each_site(const Dims& dims, Fn&& fn) {
  Dims c;
  for (c[kT] = 0; c[kT] < dims[kT]; ++c[kT]) {
    for (c[kZ] = 0; c[kZ] < dims[kZ]; ++c[kZ]) {
      for (c[kY] = 0; c[kY] < dims[kY]; ++c[kY]) {
        for (c[kX] = 0; c[kX] < dims[kX]; ++c[kX]) fn(c);
      }
    }
  }
}

}  // namespace

void fill_random_spinor(SpinorField& f, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (auto& z : f.v) {
    z = cf(static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1)));
  }
}

void fill_random_gauge(GaugeField& g, std::uint64_t seed, float epsilon) {
  sim::Rng rng(seed);
  const auto n = static_cast<std::int64_t>(volume(g.dims));
  for (std::int64_t i = 0; i < n; ++i) {
    for (int mu = 0; mu < 4; ++mu) {
      cf* u = g.link(static_cast<int>(i), mu);
      for (int r = 0; r < kColors; ++r) {
        for (int c = 0; c < kColors; ++c) {
          const float re = (r == c) ? 1.0f : 0.0f;
          u[r * kColors + c] =
              cf(re + epsilon * static_cast<float>(rng.uniform(-1, 1)),
                 epsilon * static_cast<float>(rng.uniform(-1, 1)));
        }
      }
    }
  }
}

void dslash_reference(const GaugeField& u, const SpinorField& in, SpinorField& out) {
  assert(u.dims == in.dims && in.dims == out.dims);
  const Dims& d = in.dims;
  std::fill(out.v.begin(), out.v.end(), cf(0));
  for_each_site(d, [&](const Dims& c) {
    const int x = site_index(c, d);
    cf* o = out.site(x);
    for (int mu = 0; mu < 4; ++mu) {
      const auto m = static_cast<std::size_t>(mu);
      Dims cf_ = c, cb = c;
      cf_[m] = (c[m] + 1) % d[m];
      cb[m] = (c[m] - 1 + d[m]) % d[m];
      const int xf = site_index(cf_, d);
      const int xb = site_index(cb, d);
      mat_vec_acc(u.link(x, mu), in.site(xf), o);
      matdag_vec_acc(u.link(xb, mu), in.site(xb), o);
    }
  });
}

std::complex<double> spinor_dot(const SpinorField& a, const SpinorField& b) {
  std::complex<double> acc = 0;
  for (std::size_t i = 0; i < a.v.size(); ++i) {
    acc += std::conj(std::complex<double>(a.v[i])) * std::complex<double>(b.v[i]);
  }
  return acc;
}

double spinor_norm2(const SpinorField& a) {
  double acc = 0;
  for (const cf& z : a.v) acc += static_cast<double>(std::norm(z));
  return acc;
}

void spinor_axpy(cf alpha, const SpinorField& x, SpinorField& y) {
  for (std::size_t i = 0; i < x.v.size(); ++i) y.v[i] += alpha * x.v[i];
}

void spinor_xpay(const SpinorField& x, cf alpha, SpinorField& y) {
  for (std::size_t i = 0; i < x.v.size(); ++i) y.v[i] = x.v[i] + alpha * y.v[i];
}

void spinor_scale(cf alpha, SpinorField& y) {
  for (auto& z : y.v) z *= alpha;
}

void spinor_copy(const SpinorField& x, SpinorField& y) { y.v = x.v; }

// ------------------------------------------------------ DistributedDslash ----

DistributedDslash::DistributedDslash(const Decomposition& dec, core::Proxy& proxy)
    : dec_(dec), proxy_(proxy), psi_(dec.local()), gauge_(dec.local()) {
  for (int mu = 0; mu < 4; ++mu) {
    if (!dec_.partitioned(mu)) continue;
    const auto n = static_cast<std::size_t>(dec_.face_sites(mu)) * kSpinorFloats;
    send_minus_[mu].resize(n);
    send_plus_[mu].resize(n);
    recv_plus_[mu].resize(n);
    recv_minus_[mu].resize(n);
    scratch_plus_[mu].resize(n);
  }
}

void DistributedDslash::pack_faces() {
  const Dims& d = dec_.local();
  for (int mu = 0; mu < 4; ++mu) {
    if (!dec_.partitioned(mu)) continue;
    const auto m = static_cast<std::size_t>(mu);
    for_each_site(d, [&](const Dims& c) {
      if (c[m] == 0) {
        // Bottom face: raw spinor for the -mu neighbor's +mu term.
        const int fi = face_index(c, d, mu);
        const cf* s = psi_.site(site_index(c, d));
        std::copy(s, s + kSpinorFloats,
                  send_minus_[mu].begin() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats);
      }
      if (c[m] == d[m] - 1) {
        // Top face: premultiplied U^dag psi for the +mu neighbor's -mu term.
        const int fi = face_index(c, d, mu);
        const int x = site_index(c, d);
        matdag_vec(gauge_.link(x, mu), psi_.site(x),
                   send_plus_[mu].data() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats);
      }
    });
  }
}

void DistributedDslash::interior(SpinorField& out) {
  const Dims& d = dec_.local();
  std::fill(out.v.begin(), out.v.end(), cf(0));
  for_each_site(d, [&](const Dims& c) {
    const int x = site_index(c, d);
    cf* o = out.site(x);
    for (int mu = 0; mu < 4; ++mu) {
      const auto m = static_cast<std::size_t>(mu);
      const bool split = dec_.partitioned(mu);
      // Forward neighbor.
      if (!(split && c[m] == d[m] - 1)) {
        Dims cf_ = c;
        cf_[m] = (c[m] + 1) % d[m];
        mat_vec_acc(gauge_.link(x, mu), psi_.site(site_index(cf_, d)), o);
      }
      // Backward neighbor.
      if (!(split && c[m] == 0)) {
        Dims cb = c;
        cb[m] = (c[m] - 1 + d[m]) % d[m];
        const int xb = site_index(cb, d);
        matdag_vec_acc(gauge_.link(xb, mu), psi_.site(xb), o);
      }
    }
  });
}

void DistributedDslash::boundary(SpinorField& out) {
  const Dims& d = dec_.local();
  for (int mu = 0; mu < 4; ++mu) {
    if (!dec_.partitioned(mu)) continue;
    const auto m = static_cast<std::size_t>(mu);
    for_each_site(d, [&](const Dims& c) {
      const int x = site_index(c, d);
      cf* o = out.site(x);
      if (c[m] == d[m] - 1) {
        // +mu term: received raw spinor from the +mu neighbor's bottom face.
        const int fi = face_index(c, d, mu);
        mat_vec_acc(gauge_.link(x, mu),
                    recv_plus_[mu].data() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats, o);
      }
      if (c[m] == 0) {
        // -mu term: received premultiplied product from the -mu neighbor.
        const int fi = face_index(c, d, mu);
        vec_acc(recv_minus_[mu].data() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats, o);
      }
    });
  }
}

void DistributedDslash::apply(SpinorField& out) {
  using smpi::Datatype;
  pack_faces();
  // Post the whole boundary exchange (2 receives + 2 sends per partitioned
  // dim) as one batch: a single command-ring publish + doorbell under the
  // offload proxy instead of one per halo message.
  std::vector<core::BatchOp> ops;
  for (int mu = 0; mu < 4; ++mu) {
    if (!dec_.partitioned(mu)) continue;
    const std::size_t n = recv_plus_[mu].size();
    const int up = dec_.neighbor_rank(mu, +1);
    const int dn = dec_.neighbor_rank(mu, -1);
    // Tags: 8 directions, mu*2 for data flowing -mu-ward, mu*2+1 for +mu-ward.
    ops.push_back(core::BatchOp::irecv(recv_plus_[mu].data(), n,
                                       Datatype::kComplexFloat, up, mu * 2));
    ops.push_back(core::BatchOp::irecv(recv_minus_[mu].data(), n,
                                       Datatype::kComplexFloat, dn, mu * 2 + 1));
    ops.push_back(core::BatchOp::isend(send_minus_[mu].data(), n,
                                       Datatype::kComplexFloat, dn, mu * 2));
    ops.push_back(core::BatchOp::isend(send_plus_[mu].data(), n,
                                       Datatype::kComplexFloat, up, mu * 2 + 1));
  }
  std::vector<core::PReq> reqs(ops.size());
  proxy_.post_batch(ops, reqs);
  interior(out);
  proxy_.waitall(reqs);
  boundary(out);
}

void DistributedDslash::compute_face_plus(int mu) {
  const Dims& d = dec_.local();
  const auto m = static_cast<std::size_t>(mu);
  auto& scratch = scratch_plus_[mu];
  std::fill(scratch.begin(), scratch.end(), cf(0));
  for_each_site(d, [&](const Dims& c) {
    if (c[m] != d[m] - 1) return;
    const int x = site_index(c, d);
    const int fi = face_index(c, d, mu);
    // 0 + acc == acc exactly, so the later fold's `out += scratch` adds the
    // same float values boundary()'s direct mat_vec_acc would.
    mat_vec_acc(gauge_.link(x, mu),
                recv_plus_[mu].data() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats,
                scratch.data() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats);
  });
}

void DistributedDslash::fold_boundary(SpinorField& out) {
  // Same mu order, same site order, same per-site term order (+mu then -mu)
  // as boundary() — the fold is an addition-for-addition replay.
  const Dims& d = dec_.local();
  for (int mu = 0; mu < 4; ++mu) {
    if (!dec_.partitioned(mu)) continue;
    const auto m = static_cast<std::size_t>(mu);
    for_each_site(d, [&](const Dims& c) {
      const int x = site_index(c, d);
      cf* o = out.site(x);
      if (c[m] == d[m] - 1) {
        const int fi = face_index(c, d, mu);
        vec_acc(scratch_plus_[mu].data() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats, o);
      }
      if (c[m] == 0) {
        const int fi = face_index(c, d, mu);
        vec_acc(recv_minus_[mu].data() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats, o);
      }
    });
  }
}

void DistributedDslash::apply_chained(SpinorField& out) {
  using smpi::Datatype;
  pack_faces();
  // Same batched post as apply(); ops come in groups of four per partitioned
  // mu, the group's first op being the +mu-face receive whose continuation
  // does the face's U*psi work.
  std::vector<core::BatchOp> ops;
  std::vector<int> mus;
  for (int mu = 0; mu < 4; ++mu) {
    if (!dec_.partitioned(mu)) continue;
    const std::size_t n = recv_plus_[mu].size();
    const int up = dec_.neighbor_rank(mu, +1);
    const int dn = dec_.neighbor_rank(mu, -1);
    mus.push_back(mu);
    ops.push_back(core::BatchOp::irecv(recv_plus_[mu].data(), n,
                                       Datatype::kComplexFloat, up, mu * 2));
    ops.push_back(core::BatchOp::irecv(recv_minus_[mu].data(), n,
                                       Datatype::kComplexFloat, dn, mu * 2 + 1));
    ops.push_back(core::BatchOp::isend(send_minus_[mu].data(), n,
                                       Datatype::kComplexFloat, dn, mu * 2));
    ops.push_back(core::BatchOp::isend(send_plus_[mu].data(), n,
                                       Datatype::kComplexFloat, up, mu * 2 + 1));
  }
  std::vector<core::PReq> reqs(ops.size());
  proxy_.post_batch(ops, reqs);
  cont::Event done;
  // The per-request hook moves each +mu face's boundary arithmetic into the
  // completion continuation (it runs where the proxy runs continuations —
  // the offload engine fiber, or a direct proxy's progress pump). It writes
  // only this->scratch_plus_, never `out`, which interior() still owns.
  cont::when_all(proxy_, reqs,
                 [this, mus](std::size_t i, const smpi::Status&) {
                   if (i % 4 == 0) compute_face_plus(mus[i / 4]);
                 })
      .then([&done](const smpi::Status&) { done.set(); });
  interior(out);
  done.wait(proxy_);
  fold_boundary(out);
}

void DistributedDslash::pack_face_chunk(int mu, int lo, int hi) {
  const Dims& d = dec_.local();
  const auto m = static_cast<std::size_t>(mu);
  Dims fd = d;
  fd[m] = 1;
  for (int fi = lo; fi < hi; ++fi) {
    // Decode the face index back to face coordinates (inverse of the
    // column-major site_index over fd, which face_index uses).
    Dims c{};
    int r = fi;
    c[kX] = r % fd[kX];
    r /= fd[kX];
    c[kY] = r % fd[kY];
    r /= fd[kY];
    c[kZ] = r % fd[kZ];
    r /= fd[kZ];
    c[kT] = r;
    // Bottom face: raw spinor for the -mu neighbor's +mu term.
    c[m] = 0;
    const cf* s = psi_.site(site_index(c, d));
    std::copy(s, s + kSpinorFloats,
              send_minus_[mu].begin() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats);
    // Top face: premultiplied U^dag psi for the +mu neighbor's -mu term.
    c[m] = d[m] - 1;
    const int x = site_index(c, d);
    matdag_vec(gauge_.link(x, mu), psi_.site(x),
               send_plus_[mu].data() + static_cast<std::ptrdiff_t>(fi) * kSpinorFloats);
  }
}

void DistributedDslash::init_persistent() {
  using smpi::Datatype;
  for (int mu = 0; mu < 4; ++mu) {
    if (!dec_.partitioned(mu)) continue;
    const std::size_t n = recv_plus_[mu].size();
    const int up = dec_.neighbor_rank(mu, +1);
    const int dn = dec_.neighbor_rank(mu, -1);
    // Partition boundaries must land on site boundaries (the pack works in
    // whole sites), so pick the largest power-of-two partition count that
    // divides the face. Neighbor ranks share the local dims in a uniform
    // decomposition, so both ends derive the same count.
    const auto faces = static_cast<int>(dec_.face_sites(mu));
    int parts = 8;
    while (parts > 1 && faces % parts != 0) parts /= 2;
    halo_parts_[mu] = parts;
    const auto np = static_cast<std::uint32_t>(parts);
    halo_mu_.push_back(mu);
    halo_reqs_.push_back(proxy_.precv_init(recv_plus_[mu].data(), n,
                                           Datatype::kComplexFloat, up, mu * 2, np));
    halo_reqs_.push_back(proxy_.precv_init(recv_minus_[mu].data(), n,
                                           Datatype::kComplexFloat, dn, mu * 2 + 1, np));
    halo_reqs_.push_back(proxy_.psend_init(send_minus_[mu].data(), n,
                                           Datatype::kComplexFloat, dn, mu * 2, np));
    halo_reqs_.push_back(proxy_.psend_init(send_plus_[mu].data(), n,
                                           Datatype::kComplexFloat, up, mu * 2 + 1, np));
  }
}

void DistributedDslash::apply_partitioned(SpinorField& out) {
  if (halo_reqs_.empty()) init_persistent();
  // One lane command per request instead of a fresh envelope: restart the
  // whole exchange (receives post, sends arm awaiting partition readiness).
  proxy_.startall(halo_reqs_);
  // Pack each face a partition at a time and publish readiness as we go —
  // early chunks are on the wire while the rest of the face is still being
  // produced (the paper's compute/communication overlap, one level deeper).
  for (std::size_t g = 0; g < halo_mu_.size(); ++g) {
    const int mu = halo_mu_[g];
    const int parts = halo_parts_[mu];
    const auto faces = static_cast<int>(dec_.face_sites(mu));
    core::PersistentReq& send_dn = halo_reqs_[g * 4 + 2];
    core::PersistentReq& send_up = halo_reqs_[g * 4 + 3];
    for (int p = 0; p < parts; ++p) {
      pack_face_chunk(mu, faces * p / parts, faces * (p + 1) / parts);
      proxy_.pready(send_dn, static_cast<std::uint32_t>(p));
      proxy_.pready(send_up, static_cast<std::uint32_t>(p));
    }
  }
  interior(out);
  for (core::PersistentReq& r : halo_reqs_) proxy_.wait(r);
  boundary(out);
}

void DistributedDslash::release_persistent() {
  for (core::PersistentReq& r : halo_reqs_) proxy_.request_free(r);
  halo_reqs_.clear();
  halo_mu_.clear();
  for (int& p : halo_parts_) p = 0;
}

void DistributedDslash::apply_to(const SpinorField& in, SpinorField& out) {
  psi_.v = in.v;
  apply(out);
}

}  // namespace qcd
