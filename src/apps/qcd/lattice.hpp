// 4-D hypercubic lattice and processor-grid decomposition for Lattice QCD
// (paper Section 5.1).
//
// Conventions: dimensions ordered (X, Y, Z, T) with X fastest; the MPI ranks
// form a 4-D virtual processor grid; the paper partitions the largest
// dimension first (T, then Z, then Y, then X), one rank per socket.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace qcd {

using Dims = std::array<int, 4>;  ///< {X, Y, Z, T}

inline constexpr int kX = 0, kY = 1, kZ = 2, kT = 3;

/// Column-major linear index of a site inside `dims`.
inline int site_index(const Dims& c, const Dims& dims) {
  return c[kX] + dims[kX] * (c[kY] + dims[kY] * (c[kZ] + dims[kZ] * c[kT]));
}

inline std::int64_t volume(const Dims& d) {
  return static_cast<std::int64_t>(d[0]) * d[1] * d[2] * d[3];
}

/// Factor `nranks` into a 4-D processor grid, assigning prime factors
/// (largest first) to whichever dimension currently has the largest local
/// extent divisible by the factor — ties broken T, Z, Y, X as in the paper.
Dims choose_grid(int nranks, const Dims& global);

/// One rank's view of the decomposition.
class Decomposition {
 public:
  Decomposition(const Dims& global, const Dims& grid, int rank);

  [[nodiscard]] const Dims& global() const { return global_; }
  [[nodiscard]] const Dims& grid() const { return grid_; }
  [[nodiscard]] const Dims& local() const { return local_; }
  [[nodiscard]] const Dims& coords() const { return coords_; }
  [[nodiscard]] int rank() const { return rank_; }

  /// Rank of the neighbor one step along `mu` (dir = +1/-1), periodic.
  [[nodiscard]] int neighbor_rank(int mu, int dir) const;
  /// Is dimension `mu` split across ranks (i.e. needs halo exchange)?
  [[nodiscard]] bool partitioned(int mu) const { return grid_[static_cast<std::size_t>(mu)] > 1; }
  /// Sites on one face orthogonal to `mu`.
  [[nodiscard]] std::int64_t face_sites(int mu) const;
  /// Global coordinate of local site coordinate `c` (no wrap).
  [[nodiscard]] Dims to_global(const Dims& c) const;
  /// Number of local sites.
  [[nodiscard]] std::int64_t local_volume() const { return volume(local_); }
  /// Sites with at least one off-rank neighbor.
  [[nodiscard]] std::int64_t boundary_sites() const;

  static Dims rank_to_coords(int rank, const Dims& grid);
  static int coords_to_rank(const Dims& c, const Dims& grid);

 private:
  Dims global_, grid_, local_, coords_;
  int rank_;
};

}  // namespace qcd
