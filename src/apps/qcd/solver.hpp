// Iterative solvers for the Wilson fermion matrix M = 1 - kappa * D
// (paper Section 5.1: CG and BiCGStab dominate LQCD application time).
//
// Our simplified D is Hermitian, so M is Hermitian positive definite for
// small kappa and CG applies to M directly; BiCGStab is implemented in its
// general non-Hermitian form. Global inner products go through the proxy's
// allreduce — the source of the solver's sensitivity to MPI_Allreduce
// latency the paper calls out (Fig. 11).
#pragma once

#include "apps/qcd/dslash.hpp"

namespace qcd {

/// M x = x - kappa * D x.
class WilsonOp {
 public:
  WilsonOp(DistributedDslash& dslash, float kappa)
      : dslash_(dslash), kappa_(kappa) {}

  void apply(const SpinorField& in, SpinorField& out);
  [[nodiscard]] const Decomposition& dec() const { return dslash_.dec(); }

 private:
  DistributedDslash& dslash_;
  float kappa_;
};

struct SolveResult {
  int iterations = 0;
  double residual = 0;  ///< final ||b - Mx|| / ||b||
  bool converged = false;
};

/// Conjugate gradients on the (Hermitian positive definite) Wilson matrix.
SolveResult cg_solve(WilsonOp& op, core::Proxy& proxy, const SpinorField& b,
                     SpinorField& x, double tol = 1e-6, int max_iters = 200);

/// BiCGStab (general form; also converges for the Hermitian case).
SolveResult bicgstab_solve(WilsonOp& op, core::Proxy& proxy, const SpinorField& b,
                           SpinorField& x, double tol = 1e-6, int max_iters = 200);

/// Globally-summed inner products (allreduce over the proxy).
std::complex<double> global_dot(core::Proxy& proxy, const SpinorField& a,
                                const SpinorField& b);
double global_norm2(core::Proxy& proxy, const SpinorField& a);

}  // namespace qcd
