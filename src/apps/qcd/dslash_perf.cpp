#include "apps/qcd/dslash_perf.hpp"

#include <algorithm>

#include "apps/qcd/dslash.hpp"
#include <memory>
#include <vector>

#include "mpi/cluster.hpp"
#include "mpi/continuation.hpp"
#include "sim/sync.hpp"

namespace qcd {

using core::Approach;
using core::PReq;
using core::Proxy;
using smpi::Datatype;

namespace {

struct PhaseAccum {
  sim::Time internal, post, wait, misc;
};

/// All comm directions of one rank, with face byte counts.
struct CommPlan {
  struct Dir {
    int mu;
    int up_rank, dn_rank;
    std::size_t bytes;
  };
  std::vector<Dir> dirs;
  std::size_t total_bytes = 0;
};

CommPlan make_plan(const Decomposition& dec) {
  CommPlan plan;
  for (int mu = 0; mu < 4; ++mu) {
    if (!dec.partitioned(mu)) continue;
    CommPlan::Dir d;
    d.mu = mu;
    d.up_rank = dec.neighbor_rank(mu, +1);
    d.dn_rank = dec.neighbor_rank(mu, -1);
    d.bytes = static_cast<std::size_t>(dec.face_sites(mu)) * kFaceBytesPerSite;
    plan.total_bytes += 2 * d.bytes;
    plan.dirs.push_back(d);
  }
  return plan;
}

}  // namespace

QcdPerfResult run_qcd_perf(const QcdPerfConfig& cfg) {
  const int nranks = cfg.nodes * cfg.ranks_per_node;
  const Dims grid = choose_grid(nranks, cfg.global);

  smpi::ClusterConfig cc;
  cc.nranks = nranks;
  cc.profile = cfg.profile;
  cc.thread_level = (cfg.thread_groups > 1 &&
                     cfg.approach != Approach::kOffload)
                        ? smpi::ThreadLevel::kMultiple
                        : core::required_thread_level(cfg.approach);
  cc.deadline = sim::Time::from_sec(3600);
  smpi::Cluster cluster(cc);

  QcdPerfResult result;
  result.ranks = nranks;
  result.grid = grid;

  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(cfg.approach, rc);
    proxy->start_engine();
    const Decomposition dec(cfg.global, grid, rc.rank());
    const CommPlan plan = make_plan(dec);

    const int threads = proxy->compute_threads(cfg.profile.cores_per_rank);
    const double local_bytes =
        static_cast<double>(dec.local_volume()) * cfg.bytes_per_site;
    const double boost = local_bytes < cfg.cache_threshold_bytes ? cfg.cache_boost : 1.0;
    const double rate = cfg.flops_per_ns_thread * threads * boost;  // flops/ns

    const double interior_flops =
        static_cast<double>(dec.local_volume() - dec.boundary_sites()) * kFlopsPerSite;
    const double boundary_flops =
        static_cast<double>(dec.boundary_sites()) * kFlopsPerSite;
    const auto interior_time = sim::Time(static_cast<std::int64_t>(interior_flops / rate));
    const auto boundary_time = sim::Time(static_cast<std::int64_t>(boundary_flops / rate));
    // Pack/unpack move each face byte once, split across the team.
    const auto pack_time = sim::Time(static_cast<std::int64_t>(
        static_cast<double>(plan.total_bytes) / cfg.profile.copy_bytes_per_ns / threads));
    // BLAS1 (solver only): ~6 AXPY-class sweeps over the local spinor field,
    // bandwidth-bound at ~copy speed per thread.
    const auto blas_time = sim::Time(static_cast<std::int64_t>(
        cfg.solver ? 6.0 * static_cast<double>(dec.local_volume()) * 96.0 /
                         (cfg.profile.copy_bytes_per_ns * threads)
                   : 0.0));

    PhaseAccum acc;
    sim::Time run_start;
    const int groups = std::max(1, cfg.thread_groups);

    auto one_iteration = [&](bool measured) {
      const sim::Time it0 = sim::now();
      // ---- pack (misc) ----
      smpi::compute(pack_time);
      const sim::Time t_pack = sim::now();

      if (groups == 1) {
        // ---- post (Listing 1 line 6: master thread posts everything) ----
        std::vector<PReq> reqs;
        for (const auto& d : plan.dirs) {
          reqs.push_back(proxy->irecv(nullptr, d.bytes, Datatype::kByte, d.up_rank,
                                      d.mu * 2));
          reqs.push_back(proxy->irecv(nullptr, d.bytes, Datatype::kByte, d.dn_rank,
                                      d.mu * 2 + 1));
          reqs.push_back(proxy->isend(nullptr, d.bytes, Datatype::kByte, d.dn_rank,
                                      d.mu * 2));
          reqs.push_back(proxy->isend(nullptr, d.bytes, Datatype::kByte, d.up_rank,
                                      d.mu * 2 + 1));
        }
        // A9 continuation mode: arm the graph at post time. Completion then
        // belongs to the proxy's progress context; the wait phase below
        // collapses to one sleep on the tail event instead of a per-request
        // done-flag polling pass.
        cont::Event halo_done;
        if (cfg.continuations) {
          cont::when_all(*proxy, reqs).then([&halo_done](const smpi::Status&) {
            halo_done.set();
          });
        }
        const sim::Time t_post = sim::now();
        // ---- interior volume (with PROGRESS insertions) ----
        const auto chunk = sim::Time(interior_time.ns() / cfg.progress_chunks);
        for (int c = 0; c < cfg.progress_chunks; ++c) {
          smpi::compute(chunk);
          proxy->progress_hint();
        }
        const sim::Time t_comp = sim::now();
        // ---- wait ----
        if (cfg.continuations) {
          halo_done.wait(*proxy);
        } else {
          proxy->waitall(reqs);
        }
        const sim::Time t_wait = sim::now();
        // ---- boundary + unpack + solver BLAS (misc/internal) ----
        smpi::compute(boundary_time + pack_time);
        if (cfg.solver) {
          smpi::compute(blas_time);
          double v = 1.0, s = 0.0;
          proxy->allreduce(&v, &s, 1, Datatype::kDouble, smpi::Op::kSum);
        }
        proxy->barrier();
        const sim::Time t_end = sim::now();
        if (measured && rc.rank() == 0) {
          acc.misc += (t_pack - it0) + (t_end - t_wait);
          acc.post += t_post - t_pack;
          acc.internal += t_comp - t_post;
          acc.wait += t_wait - t_comp;
        }
      } else {
        // ---- Fig. 12: thread groups issue their directions concurrently ----
        sim::Barrier group_barrier(groups, sim::Time::from_ns(150));
        auto done = std::make_shared<int>(0);
        auto done_n = std::make_shared<sim::Notifier>(sim::Time::from_us(1));
        auto group_body = [&, done, done_n](int g) {
          std::vector<PReq> reqs;
          for (std::size_t i = static_cast<std::size_t>(g); i < plan.dirs.size();
               i += static_cast<std::size_t>(groups)) {
            const auto& d = plan.dirs[i];
            reqs.push_back(proxy->irecv(nullptr, d.bytes, Datatype::kByte,
                                        d.up_rank, d.mu * 2));
            reqs.push_back(proxy->irecv(nullptr, d.bytes, Datatype::kByte,
                                        d.dn_rank, d.mu * 2 + 1));
            reqs.push_back(proxy->isend(nullptr, d.bytes, Datatype::kByte,
                                        d.dn_rank, d.mu * 2));
            reqs.push_back(proxy->isend(nullptr, d.bytes, Datatype::kByte,
                                        d.up_rank, d.mu * 2 + 1));
          }
          // Each group owns 1/G of the team's threads and 1/G of the
          // volume: its wall time equals the full-team time.
          smpi::compute(interior_time);
          proxy->waitall(reqs);
          smpi::compute(boundary_time);
          group_barrier.arrive_and_wait();
          ++*done;
          done_n->signal();
        };
        for (int g = 1; g < groups; ++g) {
          rc.cluster().spawn_on(rc.rank(), "tg" + std::to_string(g),
                                [&group_body, g]() { group_body(g); });
        }
        group_body(0);
        // Sleep on the group-exit notifier instead of spinning the clock.
        for (std::uint64_t seen = 0; *done < groups;) {
          seen = done_n->wait_beyond(seen);
        }
        smpi::compute(pack_time);  // unpack
        proxy->barrier();
        if (measured && rc.rank() == 0) {
          acc.internal += sim::now() - it0;  // aggregate (split not meaningful)
        }
      }
    };

    for (int i = 0; i < cfg.warmup; ++i) one_iteration(false);
    proxy->barrier();
    run_start = sim::now();
    for (int i = 0; i < cfg.iters; ++i) one_iteration(true);
    const sim::Time run_end = sim::now();
    if (rc.rank() == 0) {
      if (auto* op = dynamic_cast<core::OffloadProxy*>(proxy.get())) {
        const core::OffloadStats& s = op->channel().stats();
        result.cont_armed = s.cont_armed;
        result.cont_executed = s.cont_executed;
        result.cont_deferred = s.cont_deferred;
        result.cont_inline = s.cont_inline;
        result.cont_posts = s.cont_posts;
      }
    }
    proxy->stop();

    if (rc.rank() == 0) {
      const double n = cfg.iters;
      result.internal_us = acc.internal.us() / n;
      result.post_us = acc.post.us() / n;
      result.wait_us = acc.wait.us() / n;
      result.misc_us = acc.misc.us() / n;
      result.total_us = (run_end - run_start).us() / n;
      const double total_flops =
          static_cast<double>(volume(cfg.global)) * kFlopsPerSite * cfg.iters;
      result.tflops = total_flops / (run_end - run_start).ns() / 1000.0;
      std::size_t mx = 0, mn = SIZE_MAX;
      for (const auto& d : plan.dirs) {
        mx = std::max(mx, d.bytes);
        mn = std::min(mn, d.bytes);
      }
      result.max_face_bytes = mx;
      result.min_face_bytes = mn == SIZE_MAX ? 0 : mn;
    }
  });
  return result;
}

}  // namespace qcd
