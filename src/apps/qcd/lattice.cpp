#include "apps/qcd/lattice.hpp"

#include <algorithm>
#include <stdexcept>

namespace qcd {

namespace {

std::vector<int> prime_factors_desc(int n) {
  std::vector<int> f;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      f.push_back(p);
      n /= p;
    }
  }
  if (n > 1) f.push_back(n);
  std::sort(f.rbegin(), f.rend());
  return f;
}

}  // namespace

Dims choose_grid(int nranks, const Dims& global) {
  if (nranks < 1) throw std::invalid_argument("nranks < 1");
  Dims grid{1, 1, 1, 1};
  Dims local = global;
  for (int f : prime_factors_desc(nranks)) {
    // Pick the dimension with the largest local extent divisible by f;
    // ties prefer T, then Z, then Y, then X (the paper's order).
    int best = -1;
    for (int mu : {kT, kZ, kY, kX}) {
      const auto m = static_cast<std::size_t>(mu);
      if (local[m] % f != 0) continue;
      if (best < 0 || local[m] > local[static_cast<std::size_t>(best)]) best = mu;
    }
    if (best < 0) {
      throw std::invalid_argument("cannot decompose lattice over this rank count");
    }
    const auto b = static_cast<std::size_t>(best);
    grid[b] *= f;
    local[b] /= f;
  }
  return grid;
}

Decomposition::Decomposition(const Dims& global, const Dims& grid, int rank)
    : global_(global), grid_(grid), rank_(rank) {
  for (std::size_t mu = 0; mu < 4; ++mu) {
    if (global[mu] % grid[mu] != 0) {
      throw std::invalid_argument("grid does not divide lattice");
    }
    local_[mu] = global[mu] / grid[mu];
  }
  coords_ = rank_to_coords(rank, grid);
}

Dims Decomposition::rank_to_coords(int rank, const Dims& grid) {
  Dims c;
  c[kX] = rank % grid[kX];
  rank /= grid[kX];
  c[kY] = rank % grid[kY];
  rank /= grid[kY];
  c[kZ] = rank % grid[kZ];
  rank /= grid[kZ];
  c[kT] = rank;
  return c;
}

int Decomposition::coords_to_rank(const Dims& c, const Dims& grid) {
  return c[kX] + grid[kX] * (c[kY] + grid[kY] * (c[kZ] + grid[kZ] * c[kT]));
}

int Decomposition::neighbor_rank(int mu, int dir) const {
  Dims c = coords_;
  const auto m = static_cast<std::size_t>(mu);
  c[m] = (c[m] + dir + grid_[m]) % grid_[m];
  return coords_to_rank(c, grid_);
}

std::int64_t Decomposition::face_sites(int mu) const {
  return local_volume() / local_[static_cast<std::size_t>(mu)];
}

Dims Decomposition::to_global(const Dims& c) const {
  Dims g;
  for (std::size_t mu = 0; mu < 4; ++mu) g[mu] = coords_[mu] * local_[mu] + c[mu];
  return g;
}

std::int64_t Decomposition::boundary_sites() const {
  // Inclusion-exclusion is overkill: boundary = V - interior where interior
  // shrinks each partitioned dimension by 2 (both faces).
  Dims inner = local_;
  for (std::size_t mu = 0; mu < 4; ++mu) {
    if (grid_[mu] > 1) inner[mu] = std::max(0, inner[mu] - 2);
  }
  return local_volume() - volume(inner);
}

}  // namespace qcd
