#include "apps/qcd/solver.hpp"

#include <cmath>

namespace qcd {

void WilsonOp::apply(const SpinorField& in, SpinorField& out) {
  dslash_.apply_to(in, out);
  // out = in - kappa * D in
  for (std::size_t i = 0; i < out.v.size(); ++i) {
    out.v[i] = in.v[i] - kappa_ * out.v[i];
  }
}

std::complex<double> global_dot(core::Proxy& proxy, const SpinorField& a,
                                const SpinorField& b) {
  const std::complex<double> local = spinor_dot(a, b);
  double in[2] = {local.real(), local.imag()};
  double out[2] = {0, 0};
  proxy.allreduce(in, out, 2, smpi::Datatype::kDouble, smpi::Op::kSum);
  return {out[0], out[1]};
}

double global_norm2(core::Proxy& proxy, const SpinorField& a) {
  const double local = spinor_norm2(a);
  double out = 0;
  proxy.allreduce(&local, &out, 1, smpi::Datatype::kDouble, smpi::Op::kSum);
  return out;
}

SolveResult cg_solve(WilsonOp& op, core::Proxy& proxy, const SpinorField& b,
                     SpinorField& x, double tol, int max_iters) {
  const Dims d = b.dims;
  SpinorField r(d), p(d), ap(d);
  // r = b - M x; p = r.
  op.apply(x, ap);
  spinor_copy(b, r);
  spinor_axpy(cf(-1), ap, r);
  spinor_copy(r, p);

  const double b2 = global_norm2(proxy, b);
  double rr = global_norm2(proxy, r);
  SolveResult res;
  for (int it = 0; it < max_iters; ++it) {
    op.apply(p, ap);
    const std::complex<double> pap = global_dot(proxy, p, ap);
    const double alpha = rr / pap.real();
    spinor_axpy(cf(static_cast<float>(alpha)), p, x);
    spinor_axpy(cf(static_cast<float>(-alpha)), ap, r);
    const double rr_new = global_norm2(proxy, r);
    res.iterations = it + 1;
    if (rr_new <= tol * tol * b2) {
      res.converged = true;
      res.residual = std::sqrt(rr_new / b2);
      return res;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    spinor_xpay(r, cf(static_cast<float>(beta)), p);  // p = r + beta p
  }
  res.residual = std::sqrt(rr / b2);
  return res;
}

SolveResult bicgstab_solve(WilsonOp& op, core::Proxy& proxy, const SpinorField& b,
                           SpinorField& x, double tol, int max_iters) {
  const Dims d = b.dims;
  SpinorField r(d), r0(d), p(d), v(d), s(d), t(d);
  op.apply(x, v);
  spinor_copy(b, r);
  spinor_axpy(cf(-1), v, r);
  spinor_copy(r, r0);
  spinor_copy(r, p);

  const double b2 = global_norm2(proxy, b);
  std::complex<double> rho = global_dot(proxy, r0, r);
  SolveResult res;
  for (int it = 0; it < max_iters; ++it) {
    op.apply(p, v);
    const std::complex<double> r0v = global_dot(proxy, r0, v);
    const std::complex<double> alpha = rho / r0v;
    // s = r - alpha v
    spinor_copy(r, s);
    spinor_axpy(cf(static_cast<cf::value_type>(-alpha.real()),
                   static_cast<cf::value_type>(-alpha.imag())),
                v, s);
    op.apply(s, t);
    const std::complex<double> ts = global_dot(proxy, t, s);
    const double tt = global_norm2(proxy, t);
    const std::complex<double> omega = ts / tt;
    // x += alpha p + omega s
    spinor_axpy(cf(static_cast<cf::value_type>(alpha.real()),
                   static_cast<cf::value_type>(alpha.imag())),
                p, x);
    spinor_axpy(cf(static_cast<cf::value_type>(omega.real()),
                   static_cast<cf::value_type>(omega.imag())),
                s, x);
    // r = s - omega t
    spinor_copy(s, r);
    spinor_axpy(cf(static_cast<cf::value_type>(-omega.real()),
                   static_cast<cf::value_type>(-omega.imag())),
                t, r);
    const double rr = global_norm2(proxy, r);
    res.iterations = it + 1;
    if (rr <= tol * tol * b2) {
      res.converged = true;
      res.residual = std::sqrt(rr / b2);
      return res;
    }
    const std::complex<double> rho_new = global_dot(proxy, r0, r);
    const std::complex<double> beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    // p = r + beta (p - omega v)
    spinor_axpy(cf(static_cast<cf::value_type>(-omega.real()),
                   static_cast<cf::value_type>(-omega.imag())),
                v, p);
    spinor_xpay(r,
                cf(static_cast<cf::value_type>(beta.real()),
                   static_cast<cf::value_type>(beta.imag())),
                p);
    const double rr2 = rr;
    (void)rr2;
  }
  res.residual = std::sqrt(global_norm2(proxy, r) / b2);
  return res;
}

}  // namespace qcd
