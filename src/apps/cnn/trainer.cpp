#include "apps/cnn/trainer.hpp"

#include <cstring>
#include <iterator>
#include <stdexcept>

#include "mpi/cluster.hpp"

namespace cnn {

using core::PReq;
using smpi::Datatype;

namespace {

/// Extract the row block [p*out/P, (p+1)*out/P) of a full Linear layer so
/// every rank's shard matches the serial reference initialization exactly.
Linear shard_rows(const Linear& full, int p, int parts) {
  if (full.out_f % parts != 0) throw std::invalid_argument("fc shard");
  const int rows = full.out_f / parts;
  Linear shard(full.in_f, rows);
  std::memcpy(shard.weight.data(),
              full.weight.data() + static_cast<std::size_t>(p) * rows * full.in_f,
              sizeof(float) * static_cast<std::size_t>(rows) * full.in_f);
  std::memcpy(shard.bias.data(), full.bias.data() + static_cast<std::size_t>(p) * rows,
              sizeof(float) * static_cast<std::size_t>(rows));
  return shard;
}

}  // namespace

// ------------------------------------------------------ DistributedTrainer ----

DistributedTrainer::DistributedTrainer(smpi::RankCtx& rc, core::Proxy& proxy,
                                       int in_c, int h, int w, int conv_c,
                                       int fc_hidden, int fc_out)
    : rc_(rc),
      proxy_(proxy),
      conv_(in_c, conv_c, 3),
      fc1_(shard_rows(Linear((h - 2) / 2 * ((w - 2) / 2) * conv_c, fc_hidden),
                      rc.rank(), rc.nranks())),
      fc2_(shard_rows(Linear(fc_hidden, fc_out), rc.rank(), rc.nranks())),
      fc_hidden_(fc_hidden),
      fc_out_(fc_out) {
  feat_ = (h - 2) / 2 * ((w - 2) / 2) * conv_c;
}

float DistributedTrainer::train_step(const Tensor& x,
                                     const std::vector<float>& targets,
                                     int global_batch, float lr) {
  const int p = rc_.nranks();
  const int local_b = x.n;
  if (local_b * p != global_batch) throw std::invalid_argument("batch split");

  conv_.zero_grad();
  fc1_.zero_grad();
  fc2_.zero_grad();

  // ---- data-parallel convolution forward on the local batch shard ----
  Tensor c1 = conv_.forward(x);
  Tensor r1 = relu_forward(c1);
  Tensor am;
  Tensor p1 = maxpool_forward(r1, &am);

  // Flatten local features (local_b, feat) and allgather the full batch —
  // the model-parallel FC stage needs every image on every rank.
  std::vector<float> local_feat(p1.v);
  std::vector<float> feat(static_cast<std::size_t>(global_batch) * feat_);
  proxy_.allgather(local_feat.data(), feat.data(), local_feat.size(),
                   Datatype::kFloat);

  // ---- model-parallel FC forward (each rank computes its neuron rows for
  // the whole batch, then the blocks are allgathered and re-interleaved) ----
  auto gather_neurons = [&](const std::vector<float>& mine, int rows,
                            int total) {
    std::vector<float> blocks(static_cast<std::size_t>(global_batch) * total);
    proxy_.allgather(mine.data(), blocks.data(), mine.size(), Datatype::kFloat);
    // blocks layout: (rank, batch, rows) -> want (batch, total).
    std::vector<float> out(static_cast<std::size_t>(global_batch) * total);
    for (int r = 0; r < p; ++r) {
      for (int n = 0; n < global_batch; ++n) {
        std::memcpy(out.data() + (static_cast<std::size_t>(n) * total + r * rows),
                    blocks.data() + (static_cast<std::size_t>(r) * global_batch + n) * rows,
                    sizeof(float) * static_cast<std::size_t>(rows));
      }
    }
    return out;
  };

  const std::vector<float> h1_mine = fc1_.forward(feat, global_batch);
  std::vector<float> h1_full = gather_neurons(h1_mine, fc1_.out_f, fc_hidden_);
  std::vector<float> h1_act = h1_full;
  for (float& v : h1_act) v = std::max(0.0f, v);
  const std::vector<float> y_mine = fc2_.forward(h1_act, global_batch);
  std::vector<float> pred = gather_neurons(y_mine, fc2_.out_f, fc_out_);

  std::vector<float> dpred;
  const float loss = mse_loss(pred, targets, &dpred);

  // ---- model-parallel FC backward ----
  // fc2: my dy block is the column slice of dpred for my output rows.
  std::vector<float> dy2(static_cast<std::size_t>(global_batch) * fc2_.out_f);
  for (int n = 0; n < global_batch; ++n) {
    std::memcpy(dy2.data() + static_cast<std::size_t>(n) * fc2_.out_f,
                dpred.data() + static_cast<std::size_t>(n) * fc_out_ +
                    rc_.rank() * fc2_.out_f,
                sizeof(float) * static_cast<std::size_t>(fc2_.out_f));
  }
  std::vector<float> dh1_part = fc2_.backward(h1_act, dy2, global_batch);
  // Partial input-gradients sum across ranks (each rank covered its rows).
  std::vector<float> dh1(dh1_part.size());
  proxy_.allreduce(dh1_part.data(), dh1.data(), dh1_part.size(),
                   Datatype::kFloat, smpi::Op::kSum);
  for (std::size_t i = 0; i < dh1.size(); ++i) {
    if (h1_full[i] <= 0.0f) dh1[i] = 0.0f;  // relu backward
  }
  std::vector<float> dy1(static_cast<std::size_t>(global_batch) * fc1_.out_f);
  for (int n = 0; n < global_batch; ++n) {
    std::memcpy(dy1.data() + static_cast<std::size_t>(n) * fc1_.out_f,
                dh1.data() + static_cast<std::size_t>(n) * fc_hidden_ +
                    rc_.rank() * fc1_.out_f,
                sizeof(float) * static_cast<std::size_t>(fc1_.out_f));
  }
  std::vector<float> dfeat_part = fc1_.backward(feat, dy1, global_batch);
  std::vector<float> dfeat(dfeat_part.size());
  proxy_.allreduce(dfeat_part.data(), dfeat.data(), dfeat_part.size(),
                   Datatype::kFloat, smpi::Op::kSum);

  // ---- data-parallel convolution backward on my batch shard ----
  Tensor dp1(local_b, p1.c, p1.h, p1.w);
  std::memcpy(dp1.v.data(),
              dfeat.data() + static_cast<std::size_t>(rc_.rank()) * local_b * feat_,
              sizeof(float) * dp1.v.size());
  Tensor dr1 = maxpool_backward(r1, am, dp1);
  Tensor dc1 = relu_backward(c1, dr1);
  conv_.backward(x, dc1);

  // Data-parallel gradient sum — the paper's overlappable allreduce; the
  // real-math trainer issues it nonblocking and waits before the update.
  // The ring modes route the same reduction through (persistent) p2p.
  if (grad_mode_ == GradMode::kAllreduce) {
    std::vector<float> wsum(conv_.wgrad.size()), bsum(conv_.bgrad.size());
    PReq rw = proxy_.iallreduce(conv_.wgrad.data(), wsum.data(), conv_.wgrad.size(),
                                Datatype::kFloat, smpi::Op::kSum);
    PReq rb = proxy_.iallreduce(conv_.bgrad.data(), bsum.data(), conv_.bgrad.size(),
                                Datatype::kFloat, smpi::Op::kSum);
    proxy_.wait(rw);
    proxy_.wait(rb);
    conv_.wgrad = wsum;
    conv_.bgrad = bsum;
  } else {
    ring_grad_sum();
  }

  conv_.sgd_step(lr);
  fc1_.sgd_step(lr);
  fc2_.sgd_step(lr);
  return loss;
}

namespace {

/// Base tag of the gradient ring (well clear of the FC exchange traffic and
/// below the partitioned-wire-tag ceiling).
constexpr int kGradRingTag = 900;
/// Partitions per ring block: "one partition per compute thread" at the
/// small real-math scale — each backprop worker publishes its quarter.
constexpr std::uint32_t kGradParts = 4;

}  // namespace

void DistributedTrainer::ring_grad_sum() {
  const int p = rc_.nranks();
  const int rank = rc_.rank();
  const std::size_t nw = conv_.wgrad.size();
  const std::size_t n = nw + conv_.bgrad.size();
  if (p == 1) return;  // the local gradients already are the sum
  if (ring_send_.size() != n) {
    ring_send_.assign(n, 0.0f);
    ring_recv_.assign(n, 0.0f);
  }
  if (grad_mode_ == GradMode::kRingPersistent && ring_sreq_.is_null()) {
    const int left = (rank - 1 + p) % p;
    const int right = (rank + 1) % p;
    ring_rreq_ = proxy_.precv_init(ring_recv_.data(), n, Datatype::kFloat,
                                   left, kGradRingTag, kGradParts);
    ring_sreq_ = proxy_.psend_init(ring_send_.data(), n, Datatype::kFloat,
                                   right, kGradRingTag, kGradParts);
  }

  // My block is wgrad ++ bgrad; circulate every rank's block around the
  // ring (p-1 steps, each forwarding the block received the step before).
  std::vector<float> mine(n);
  std::memcpy(mine.data(), conv_.wgrad.data(), sizeof(float) * nw);
  std::memcpy(mine.data() + nw, conv_.bgrad.data(), sizeof(float) * (n - nw));
  std::vector<std::vector<float>> blocks(static_cast<std::size_t>(p));
  blocks[static_cast<std::size_t>(rank)] = mine;
  const std::size_t bytes = n * sizeof(float);
  for (int s = 0; s < p - 1; ++s) {
    // The block arriving this step originated s+1 hops to the left.
    const int origin = (rank - 1 - s + p) % p;
    const float* src = (s == 0) ? mine.data()
                                : blocks[static_cast<std::size_t>((origin + 1) % p)].data();
    if (grad_mode_ == GradMode::kRingPersistent) {
      // Restart the pair (one lane command each), then stage the outgoing
      // block a partition at a time, publishing readiness per chunk so the
      // early quarters are on the wire while the rest is still copying.
      proxy_.start(ring_rreq_);
      proxy_.start(ring_sreq_);
      for (std::uint32_t c = 0; c < kGradParts; ++c) {
        const std::size_t lo = bytes * c / kGradParts;
        const std::size_t hi = bytes * (c + 1) / kGradParts;
        std::memcpy(reinterpret_cast<char*>(ring_send_.data()) + lo,
                    reinterpret_cast<const char*>(src) + lo, hi - lo);
        proxy_.pready(ring_sreq_, c);
      }
      proxy_.wait(ring_sreq_);
      proxy_.wait(ring_rreq_);
    } else {
      std::memcpy(ring_send_.data(), src, bytes);
      PReq rr = proxy_.irecv(ring_recv_.data(), n, Datatype::kFloat,
                             (rank - 1 + p) % p, kGradRingTag);
      PReq sr = proxy_.isend(ring_send_.data(), n, Datatype::kFloat,
                             (rank + 1) % p, kGradRingTag);
      proxy_.wait(rr);
      proxy_.wait(sr);
    }
    blocks[static_cast<std::size_t>(origin)] = ring_recv_;
  }

  // Deterministic reduction: accumulate blocks in rank order 0..p-1 — the
  // identical float-addition sequence in both ring modes, which is what
  // makes their trained weights bitwise identical.
  std::vector<float> sum(blocks[0]);
  for (int r = 1; r < p; ++r) {
    const std::vector<float>& b = blocks[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < n; ++i) sum[i] += b[i];
  }
  std::memcpy(conv_.wgrad.data(), sum.data(), sizeof(float) * nw);
  std::memcpy(conv_.bgrad.data(), sum.data() + nw, sizeof(float) * (n - nw));
}

void DistributedTrainer::release_persistent() {
  if (!ring_sreq_.is_null()) proxy_.request_free(ring_sreq_);
  if (!ring_rreq_.is_null()) proxy_.request_free(ring_rreq_);
}

// ----------------------------------------------------------- SerialTrainer ----

SerialTrainer::SerialTrainer(int in_c, int h, int w, int conv_c, int fc_hidden,
                             int fc_out)
    : conv_(in_c, conv_c, 3),
      fc1_((h - 2) / 2 * ((w - 2) / 2) * conv_c, fc_hidden),
      fc2_(fc_hidden, fc_out) {}

float SerialTrainer::train_step(const Tensor& images,
                                const std::vector<float>& targets, float lr) {
  conv_.zero_grad();
  fc1_.zero_grad();
  fc2_.zero_grad();
  Tensor c1 = conv_.forward(images);
  Tensor r1 = relu_forward(c1);
  Tensor am;
  Tensor p1 = maxpool_forward(r1, &am);
  const int batch = images.n;
  std::vector<float> h1 = fc1_.forward(p1.v, batch);
  std::vector<float> h1_act = h1;
  for (float& v : h1_act) v = std::max(0.0f, v);
  std::vector<float> pred = fc2_.forward(h1_act, batch);
  std::vector<float> dpred;
  const float loss = mse_loss(pred, targets, &dpred);
  std::vector<float> dh1 = fc2_.backward(h1_act, dpred, batch);
  for (std::size_t i = 0; i < dh1.size(); ++i) {
    if (h1[i] <= 0.0f) dh1[i] = 0.0f;
  }
  std::vector<float> dfeat = fc1_.backward(p1.v, dh1, batch);
  Tensor dp1(batch, p1.c, p1.h, p1.w);
  dp1.v = dfeat;
  Tensor dr1 = maxpool_backward(r1, am, dp1);
  Tensor dc1 = relu_backward(c1, dr1);
  conv_.backward(images, dc1);
  conv_.sgd_step(lr);
  fc1_.sgd_step(lr);
  fc2_.sgd_step(lr);
  return loss;
}

// ------------------------------------------------------------------- perf ----

namespace {

struct LayerSpec {
  const char* name;
  double params;          ///< weights (floats)
  double fwd_flops_img;   ///< forward flops per image
  double activations;     ///< output activations per image (floats)
};

// Deep-Image/VGG-class model of the paper's era (Wu et al. [35]): 13 conv
// layers grouped into 5 stages (params in floats, forward flops per image),
// plus 3 model-parallel FC layers. The large conv-gradient volume is what
// makes the data-parallel allreduce dominate at scale (paper Fig. 14).
constexpr LayerSpec kConv[] = {
    {"convA", 10.0e6, 2.6e9, 3.2e6}, {"convB", 25.0e6, 3.0e9, 1.6e6},
    {"convC", 30.0e6, 2.6e9, 0.8e6}, {"convD", 32.0e6, 2.2e9, 0.4e6},
    {"convE", 33.0e6, 1.6e9, 0.1e6},
};
constexpr LayerSpec kFc[] = {
    {"fc6", 102.8e6, 205e6, 4096},
    {"fc7", 16.8e6, 33.6e6, 4096},
    {"fc8", 4.1e6, 8.2e6, 1000},
};

}  // namespace

CnnPerfResult run_cnn_perf(const CnnPerfConfig& cfg) {
  const int nranks = cfg.nodes * cfg.ranks_per_node;
  smpi::ClusterConfig cc;
  cc.nranks = nranks;
  cc.profile = cfg.profile;
  cc.coll_spec = cfg.coll_spec;
  cc.thread_level = core::required_thread_level(cfg.approach);
  cc.deadline = sim::Time::from_sec(36000);
  smpi::Cluster cluster(cc);

  CnnPerfResult result;
  result.ranks = nranks;

  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(cfg.approach, rc);
    proxy->start_engine();
    const int threads = proxy->compute_threads(cfg.profile.cores_per_rank);
    const double rate = cfg.flops_per_ns_thread * threads;  // flops/ns
    const double local_imgs =
        static_cast<double>(cfg.global_batch) / nranks;

    auto compute_t = [&](double flops) {
      return sim::Time(static_cast<std::int64_t>(flops / rate));
    };

    sim::Time run_start;
    // Cross-iteration gradient requests: layer l's allreduce, posted during
    // backward, is waited on only when layer l is about to run forward in
    // the NEXT iteration — the paper's overlap window (Sec. 5.3).
    constexpr int kNConv = static_cast<int>(std::size(kConv));
    std::vector<PReq> grad_req(static_cast<std::size_t>(kNConv));
    std::vector<bool> grad_pending(static_cast<std::size_t>(kNConv), false);
    auto one_iteration = [&] {
      // ---- forward: data-parallel conv layers ----
      for (int i = 0; i < kNConv; ++i) {
        if (grad_pending[static_cast<std::size_t>(i)]) {
          proxy->wait(grad_req[static_cast<std::size_t>(i)]);
          grad_pending[static_cast<std::size_t>(i)] = false;
          // SGD update of this layer's weights before using them.
          smpi::compute(sim::Time(static_cast<std::int64_t>(
              kConv[i].params * 12.0 / (cfg.profile.copy_bytes_per_ns * threads))));
        }
        smpi::compute(compute_t(kConv[i].fwd_flops_img * local_imgs));
      }
      // ---- forward + backward: model-parallel FC layers (synchronous
      // all-to-alls moving activations between stages, paper Sec. 5.3) ----
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& l : kFc) {
          // Redistribute activations: each rank contributes its image shard.
          const auto bytes_per_rank = static_cast<std::size_t>(
              local_imgs * l.activations * 4.0 / nranks);
          proxy->alltoall(nullptr, nullptr, std::max<std::size_t>(bytes_per_rank, 1),
                          Datatype::kByte);
          // Whole batch through my slice of the layer (x2 flops backward).
          const double flops = 2.0 * l.params / nranks *
                               static_cast<double>(cfg.global_batch) *
                               (pass == 0 ? 1.0 : 2.0);
          smpi::compute(compute_t(flops));
        }
      }
      // ---- backward: conv layers 5..1; each layer's weight-gradient
      // allreduce is posted as soon as it is ready and left in flight until
      // that layer's next forward pass needs the updated weights. ----
      for (int i = kNConv - 1; i >= 0; --i) {
        smpi::compute(compute_t(2.0 * kConv[i].fwd_flops_img * local_imgs));
        grad_req[static_cast<std::size_t>(i)] = proxy->iallreduce(
            nullptr, nullptr, static_cast<std::size_t>(kConv[i].params),
            Datatype::kFloat, smpi::Op::kSum);
        grad_pending[static_cast<std::size_t>(i)] = true;
      }
    };
    auto drain = [&] {
      for (int i = 0; i < kNConv; ++i) {
        if (grad_pending[static_cast<std::size_t>(i)]) {
          proxy->wait(grad_req[static_cast<std::size_t>(i)]);
          grad_pending[static_cast<std::size_t>(i)] = false;
        }
      }
      proxy->barrier();
    };

    for (int i = 0; i < cfg.warmup; ++i) one_iteration();
    run_start = sim::now();
    for (int i = 0; i < cfg.iters; ++i) one_iteration();
    drain();
    const sim::Time run_end = sim::now();
    proxy->stop();

    if (rc.rank() == 0) {
      result.iter_ms = (run_end - run_start).ms() / cfg.iters;
      result.imgs_per_sec =
          cfg.global_batch / ((run_end - run_start).sec() / cfg.iters);
    }
  });
  return result;
}

}  // namespace cnn
