#include "apps/cnn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace cnn {

void fill_random(std::vector<float>& v, std::uint64_t seed, float scale) {
  sim::Rng rng(seed);
  for (float& x : v) x = scale * static_cast<float>(rng.uniform(-1.0, 1.0));
}

// ----------------------------------------------------------------- Conv2d ----

Conv2d::Conv2d(int in_c, int out_c, int k)
    : weight(static_cast<std::size_t>(out_c) * in_c * k * k),
      bias(static_cast<std::size_t>(out_c)),
      wgrad(weight.size()),
      bgrad(bias.size()),
      in_c_(in_c),
      out_c_(out_c),
      k_(k) {
  fill_random(weight, 0x1234 + static_cast<std::uint64_t>(out_c),
              1.0f / static_cast<float>(in_c * k * k));
}

Tensor Conv2d::forward(const Tensor& x) const {
  if (x.c != in_c_) throw std::invalid_argument("conv: channel mismatch");
  Tensor y(x.n, out_c_, out_h(x.h), out_w(x.w));
  for (int n = 0; n < x.n; ++n) {
    for (int oc = 0; oc < out_c_; ++oc) {
      for (int oh = 0; oh < y.h; ++oh) {
        for (int ow = 0; ow < y.w; ++ow) {
          float acc = bias[static_cast<std::size_t>(oc)];
          for (int ic = 0; ic < in_c_; ++ic) {
            for (int kh = 0; kh < k_; ++kh) {
              for (int kw = 0; kw < k_; ++kw) {
                const float wv = weight[((static_cast<std::size_t>(oc) * in_c_ + ic) * k_ + kh) * k_ + kw];
                acc += wv * x.at(n, ic, oh + kh, ow + kw);
              }
            }
          }
          y.at(n, oc, oh, ow) = acc;
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& x, const Tensor& dy) {
  Tensor dx(x.n, x.c, x.h, x.w);
  for (int n = 0; n < x.n; ++n) {
    for (int oc = 0; oc < out_c_; ++oc) {
      for (int oh = 0; oh < dy.h; ++oh) {
        for (int ow = 0; ow < dy.w; ++ow) {
          const float g = dy.at(n, oc, oh, ow);
          bgrad[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < in_c_; ++ic) {
            for (int kh = 0; kh < k_; ++kh) {
              for (int kw = 0; kw < k_; ++kw) {
                const std::size_t wi =
                    ((static_cast<std::size_t>(oc) * in_c_ + ic) * k_ + kh) * k_ + kw;
                wgrad[wi] += g * x.at(n, ic, oh + kh, ow + kw);
                dx.at(n, ic, oh + kh, ow + kw) += g * weight[wi];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

void Conv2d::sgd_step(float lr) {
  for (std::size_t i = 0; i < weight.size(); ++i) weight[i] -= lr * wgrad[i];
  for (std::size_t i = 0; i < bias.size(); ++i) bias[i] -= lr * bgrad[i];
}

void Conv2d::zero_grad() {
  std::fill(wgrad.begin(), wgrad.end(), 0.0f);
  std::fill(bgrad.begin(), bgrad.end(), 0.0f);
}

// ------------------------------------------------------------------- ReLU ----

Tensor relu_forward(const Tensor& x) {
  Tensor y = x;
  for (float& v : y.v) v = std::max(0.0f, v);
  return y;
}

Tensor relu_backward(const Tensor& x, const Tensor& dy) {
  Tensor dx = dy;
  for (std::size_t i = 0; i < x.v.size(); ++i) {
    if (x.v[i] <= 0.0f) dx.v[i] = 0.0f;
  }
  return dx;
}

// ---------------------------------------------------------------- MaxPool ----

Tensor maxpool_forward(const Tensor& x, Tensor* argmax) {
  if (x.h % 2 != 0 || x.w % 2 != 0) throw std::invalid_argument("pool: odd dims");
  Tensor y(x.n, x.c, x.h / 2, x.w / 2);
  if (argmax != nullptr) *argmax = Tensor(x.n, x.c, x.h / 2, x.w / 2);
  for (int n = 0; n < x.n; ++n) {
    for (int c = 0; c < x.c; ++c) {
      for (int oh = 0; oh < y.h; ++oh) {
        for (int ow = 0; ow < y.w; ++ow) {
          float best = -1e30f;
          int best_i = 0;
          for (int dh = 0; dh < 2; ++dh) {
            for (int dw = 0; dw < 2; ++dw) {
              const float v = x.at(n, c, oh * 2 + dh, ow * 2 + dw);
              if (v > best) {
                best = v;
                best_i = dh * 2 + dw;
              }
            }
          }
          y.at(n, c, oh, ow) = best;
          if (argmax != nullptr) {
            argmax->at(n, c, oh, ow) = static_cast<float>(best_i);
          }
        }
      }
    }
  }
  return y;
}

Tensor maxpool_backward(const Tensor& x, const Tensor& argmax, const Tensor& dy) {
  Tensor dx(x.n, x.c, x.h, x.w);
  for (int n = 0; n < x.n; ++n) {
    for (int c = 0; c < x.c; ++c) {
      for (int oh = 0; oh < dy.h; ++oh) {
        for (int ow = 0; ow < dy.w; ++ow) {
          const int best = static_cast<int>(argmax.at(n, c, oh, ow));
          dx.at(n, c, oh * 2 + best / 2, ow * 2 + best % 2) += dy.at(n, c, oh, ow);
        }
      }
    }
  }
  return dx;
}

// ----------------------------------------------------------------- Linear ----

Linear::Linear(int in_f_, int out_f_)
    : in_f(in_f_),
      out_f(out_f_),
      weight(static_cast<std::size_t>(out_f_) * in_f_),
      bias(static_cast<std::size_t>(out_f_)),
      wgrad(weight.size()),
      bgrad(bias.size()) {
  fill_random(weight, 0x9876 + static_cast<std::uint64_t>(out_f_),
              1.0f / static_cast<float>(in_f_));
}

std::vector<float> Linear::forward(const std::vector<float>& x, int batch) const {
  std::vector<float> y(static_cast<std::size_t>(batch) * out_f);
  for (int n = 0; n < batch; ++n) {
    for (int o = 0; o < out_f; ++o) {
      float acc = bias[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_f; ++i) {
        acc += weight[static_cast<std::size_t>(o) * in_f + i] *
               x[static_cast<std::size_t>(n) * in_f + i];
      }
      y[static_cast<std::size_t>(n) * out_f + o] = acc;
    }
  }
  return y;
}

std::vector<float> Linear::backward(const std::vector<float>& x,
                                    const std::vector<float>& dy, int batch) {
  std::vector<float> dx(static_cast<std::size_t>(batch) * in_f);
  for (int n = 0; n < batch; ++n) {
    for (int o = 0; o < out_f; ++o) {
      const float g = dy[static_cast<std::size_t>(n) * out_f + o];
      bgrad[static_cast<std::size_t>(o)] += g;
      for (int i = 0; i < in_f; ++i) {
        wgrad[static_cast<std::size_t>(o) * in_f + i] +=
            g * x[static_cast<std::size_t>(n) * in_f + i];
        dx[static_cast<std::size_t>(n) * in_f + i] +=
            g * weight[static_cast<std::size_t>(o) * in_f + i];
      }
    }
  }
  return dx;
}

void Linear::sgd_step(float lr) {
  for (std::size_t i = 0; i < weight.size(); ++i) weight[i] -= lr * wgrad[i];
  for (std::size_t i = 0; i < bias.size(); ++i) bias[i] -= lr * bgrad[i];
}

void Linear::zero_grad() {
  std::fill(wgrad.begin(), wgrad.end(), 0.0f);
  std::fill(bgrad.begin(), bgrad.end(), 0.0f);
}

// ------------------------------------------------------------------- loss ----

float mse_loss(const std::vector<float>& pred, const std::vector<float>& target,
               std::vector<float>* dpred) {
  if (pred.size() != target.size()) throw std::invalid_argument("mse size");
  float loss = 0;
  if (dpred != nullptr) dpred->assign(pred.size(), 0.0f);
  const float inv = 1.0f / static_cast<float>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    loss += 0.5f * d * d * inv;
    if (dpred != nullptr) (*dpred)[i] = d * inv;
  }
  return loss;
}

}  // namespace cnn
