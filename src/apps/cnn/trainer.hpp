// Hybrid-parallel CNN training (paper Section 5.3).
//
// Parallelization follows Krizhevsky's "one weird trick" as the paper does:
// convolutional layers are data-parallel (the minibatch is split across
// ranks; weight gradients are summed with allreduce, overlappable with the
// backpropagation of earlier layers), while fully-connected layers are
// model-parallel (neurons split across ranks; activations/gradients move
// through synchronous all-to-all exchanges inside the iteration).
//
// Two entry points:
//  * DistributedTrainer — real arithmetic at small scale; validated by
//    matching a serial trainer bit-for-bit-ish (fp tolerance).
//  * run_cnn_perf — AlexNet-scale cost-model harness behind Figure 14.
#pragma once

#include <string>

#include "apps/cnn/layers.hpp"
#include "core/proxy.hpp"
#include "machine/profile.hpp"
#include "mpi/rank_ctx.hpp"

namespace cnn {

/// A small conv->relu->pool->fc->fc network trained data/model-hybrid.
/// Geometry is fixed small so tests run fast; all ranks initialize identical
/// weights (deterministic seeds) exactly like a broadcast would.
class DistributedTrainer {
 public:
  /// How the data-parallel conv gradients are summed across ranks.
  ///  kAllreduce      — nonblocking allreduce (the original path);
  ///  kRingOneShot    — allgather ring of one-shot isend/irecv, then a local
  ///                    sum in rank order;
  ///  kRingPersistent — the same ring over init-once partitioned persistent
  ///                    requests: each step restarts the pair, copies the
  ///                    outgoing block a partition at a time and pready()s
  ///                    each chunk (DESIGN.md §16). Both ring modes perform
  ///                    identical arithmetic in identical order, so their
  ///                    trained weights are bitwise identical.
  enum class GradMode { kAllreduce, kRingOneShot, kRingPersistent };

  /// in: images (global_batch, in_c, h, w); global_batch divisible by ranks,
  /// fc1 output neurons divisible by ranks.
  DistributedTrainer(smpi::RankCtx& rc, core::Proxy& proxy, int in_c, int h,
                     int w, int conv_c, int fc_hidden, int fc_out);

  /// One SGD step on this rank's shard of the global batch; returns the
  /// global mean loss. Target layout: (global_batch, fc_out).
  float train_step(const Tensor& local_images,
                   const std::vector<float>& global_targets, int global_batch,
                   float lr);

  void set_grad_mode(GradMode m) { grad_mode_ = m; }
  /// Free the persistent gradient-ring requests (call after the last
  /// train_step and before the proxy stops; idempotent).
  void release_persistent();

  Conv2d& conv() { return conv_; }
  Linear& fc1() { return fc1_; }
  Linear& fc2() { return fc2_; }

 private:
  /// Sum wgrad/bgrad across ranks through the allgather ring (one-shot or
  /// persistent per grad_mode_), accumulating blocks in rank order.
  void ring_grad_sum();

  smpi::RankCtx& rc_;
  core::Proxy& proxy_;
  Conv2d conv_;
  Linear fc1_, fc2_;  ///< model-parallel: each rank owns out_f/P rows
  int fc_hidden_, fc_out_;
  int feat_ = 0;  ///< flattened conv feature size
  GradMode grad_mode_ = GradMode::kAllreduce;
  // Gradient-ring state: fixed-address staging buffers (the persistent
  // requests are bound to them) holding wgrad ++ bgrad concatenated.
  std::vector<float> ring_send_, ring_recv_;
  core::PersistentReq ring_sreq_{}, ring_rreq_{};
};

/// Serial reference trainer with identical topology and seeds.
class SerialTrainer {
 public:
  SerialTrainer(int in_c, int h, int w, int conv_c, int fc_hidden, int fc_out);
  float train_step(const Tensor& images, const std::vector<float>& targets,
                   float lr);
  Conv2d& conv() { return conv_; }
  Linear& fc1() { return fc1_; }
  Linear& fc2() { return fc2_; }

 private:
  Conv2d conv_;
  Linear fc1_, fc2_;
};

// ------------------------------------------------------------------ perf ----

struct CnnPerfConfig {
  int nodes = 2;
  int ranks_per_node = 1;
  int global_batch = 256;
  machine::Profile profile = machine::xeon_fdr();
  core::Approach approach = core::Approach::kBaseline;
  int iters = 4;
  int warmup = 1;
  double flops_per_ns_thread = 10.0;  ///< effective conv/FC compute rate
  /// MPIOFF_COLL-grammar override for the gradient allreduces (empty =
  /// profile defaults; the tuner picks the segmented ring at CNN sizes).
  std::string coll_spec;
};

struct CnnPerfResult {
  double iter_ms = 0;
  double imgs_per_sec = 0;
  int ranks = 0;
};

/// AlexNet-like layer schedule: 5 conv layers (data-parallel, gradients
/// allreduced with overlap) + 3 FC layers (model-parallel, synchronous
/// all-to-alls), per Figure 14.
CnnPerfResult run_cnn_perf(const CnnPerfConfig& cfg);

}  // namespace cnn
