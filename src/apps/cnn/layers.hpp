// Minimal-but-real CNN layers (paper Section 5.3): conv2d, ReLU, 2x2 max
// pooling, fully-connected, MSE loss — forward and backward passes with SGD.
// Correctness is established by finite-difference gradient checks; the
// distributed trainer (trainer.hpp) reuses these kernels at small scale.
#pragma once

#include <cstdint>
#include <vector>

namespace cnn {

/// Dense 4-D tensor (N, C, H, W), row-major with W fastest.
struct Tensor {
  int n = 0, c = 0, h = 0, w = 0;
  std::vector<float> v;

  Tensor() = default;
  Tensor(int n_, int c_, int h_, int w_)
      : n(n_), c(c_), h(h_), w(w_),
        v(static_cast<std::size_t>(n_) * c_ * h_ * w_, 0.0f) {}
  [[nodiscard]] std::size_t size() const { return v.size(); }
  [[nodiscard]] float& at(int in, int ic, int ih, int iw) {
    return v[((static_cast<std::size_t>(in) * c + ic) * h + ih) * w + iw];
  }
  [[nodiscard]] float at(int in, int ic, int ih, int iw) const {
    return v[((static_cast<std::size_t>(in) * c + ic) * h + ih) * w + iw];
  }
};

void fill_random(std::vector<float>& v, std::uint64_t seed, float scale);

/// 2-D convolution, stride 1, valid padding.
class Conv2d {
 public:
  Conv2d(int in_c, int out_c, int k);

  [[nodiscard]] int out_h(int in_h) const { return in_h - k_ + 1; }
  [[nodiscard]] int out_w(int in_w) const { return in_w - k_ + 1; }
  [[nodiscard]] std::size_t param_count() const { return weight.size() + bias.size(); }

  Tensor forward(const Tensor& x) const;
  /// Returns dL/dx; accumulates dL/dw into wgrad/bgrad (caller zeroes them).
  Tensor backward(const Tensor& x, const Tensor& dy);
  void sgd_step(float lr);
  void zero_grad();

  std::vector<float> weight;  ///< (out_c, in_c, k, k)
  std::vector<float> bias;    ///< (out_c)
  std::vector<float> wgrad, bgrad;

 private:
  int in_c_, out_c_, k_;
};

Tensor relu_forward(const Tensor& x);
Tensor relu_backward(const Tensor& x, const Tensor& dy);

/// 2x2 max pooling, stride 2 (h, w must be even).
Tensor maxpool_forward(const Tensor& x, Tensor* argmax = nullptr);
Tensor maxpool_backward(const Tensor& x, const Tensor& argmax, const Tensor& dy);

/// Fully connected y = W x + b over flattened (C*H*W) features.
class Linear {
 public:
  Linear(int in_f, int out_f);
  [[nodiscard]] std::size_t param_count() const { return weight.size() + bias.size(); }

  /// x: (N, in_f) flattened; returns (N, out_f).
  std::vector<float> forward(const std::vector<float>& x, int batch) const;
  std::vector<float> backward(const std::vector<float>& x,
                              const std::vector<float>& dy, int batch);
  void sgd_step(float lr);
  void zero_grad();

  int in_f, out_f;
  std::vector<float> weight;  ///< (out_f, in_f)
  std::vector<float> bias;
  std::vector<float> wgrad, bgrad;
};

/// 0.5 * mean squared error; fills dpred.
float mse_loss(const std::vector<float>& pred, const std::vector<float>& target,
               std::vector<float>* dpred);

}  // namespace cnn
