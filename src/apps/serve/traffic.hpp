// Open-loop traffic generation for the serving tier (apps/serve).
//
// The generator models the north-star traffic shape: millions of distinct
// clients issuing heavy-tailed requests in diurnal bursts. Three properties
// are load-bearing for the test harness (tests/test_serve.cpp pins each):
//
//   * deterministic by seed — the whole arrival stream (times, sizes, keys,
//     hedge flags) is a pure function of (seed, edge_index), byte-stable
//     across toolchains via sim::Rng;
//   * heavy-tailed sizes — bounded Pareto on [lo, hi] with shape alpha, the
//     classic web/storage request-size model; the closed-form mean/CDF below
//     let property tests check the sampler against analysis;
//   * OPEN-LOOP — arrival times are generated independently of the system's
//     state. The serving tier must time-stamp each request with its intended
//     arrival (latency clocks start here), never with its admit time, so
//     shard backpressure shows up as queueing latency instead of silently
//     thinning the offered load (the closed-loop fallacy).
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace serve {

/// splitmix64 — the standalone mixer used for per-request derived values
/// (payload seeds, hedge picks), so they depend only on (seed, seq) and not
/// on any stream position.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte range: the digest primitive for payload identity.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Bounded Pareto distribution on [lo, hi] with shape alpha (alpha != 1).
struct BoundedPareto {
  double alpha = 1.3;
  double lo = 64.0;
  double hi = 16384.0;

  /// Inverse-CDF sample from u in [0, 1).
  [[nodiscard]] double sample(double u) const {
    const double r = std::pow(lo / hi, alpha);  // (L/H)^a
    return lo / std::pow(1.0 - u * (1.0 - r), 1.0 / alpha);
  }

  /// Closed-form mean (the property tests compare the empirical mean).
  [[nodiscard]] double mean() const {
    const double r = std::pow(lo / hi, alpha);
    return alpha * std::pow(lo, alpha) *
           (std::pow(hi, 1.0 - alpha) - std::pow(lo, 1.0 - alpha)) /
           ((1.0 - alpha) * (1.0 - r));
  }

  /// P(X <= x) for x in [lo, hi].
  [[nodiscard]] double cdf(double x) const {
    const double r = std::pow(lo / hi, alpha);
    return (1.0 - std::pow(lo / x, alpha)) / (1.0 - r);
  }
};

/// The diurnal rate multiplier for phase p of `phases` (a raised-cosine
/// day: trough 0.4x, peak 1.6x the base rate). Pure function, so the burst
/// schedule is deterministic by construction; the phase index at virtual
/// time t is (t / phase_len) mod phases.
inline double phase_multiplier(int phase, int phases) {
  if (phases <= 1) return 1.0;
  const double x = 2.0 * 3.14159265358979323846 *
                   (static_cast<double>(phase) / static_cast<double>(phases));
  return 0.4 + 1.2 * 0.5 * (1.0 - std::cos(x));
}

struct TrafficConfig {
  std::uint64_t seed = 1;
  std::uint64_t clients = 4u << 20;     ///< distinct client-id space
  sim::Time mean_interarrival = sim::Time::from_us(2);  ///< base, per edge
  int phases = 4;                       ///< diurnal phases per cycle
  sim::Time phase_len = sim::Time::from_us(150);
  double alpha = 1.3;                   ///< Pareto shape
  std::size_t smin = 64, smax = 16384;  ///< request payload bytes
  double hedge = 0.1;                   ///< P(request is hedged to a replica)
};

/// One generated client request. `at` is the INTENDED arrival instant —
/// the latency clock for this request starts there regardless of when the
/// edge can admit it into its inflight window.
struct Arrival {
  sim::Time at;
  std::uint64_t seq = 0;     ///< unique per edge stream
  std::uint64_t client = 0;  ///< in [0, clients)
  std::uint64_t key = 0;     ///< shard-routing key
  std::uint32_t req_bytes = 0;
  std::uint32_t resp_bytes = 0;
  bool hedged = false;
};

/// Streaming open-loop generator for one edge rank. Calling next() n times
/// yields the same n arrivals for the same (cfg.seed, edge_index).
class TrafficGen {
 public:
  TrafficGen(const TrafficConfig& cfg, int edge_index)
      : cfg_(cfg),
        rng_(mix64(cfg.seed ^ (0x5e41ull + static_cast<std::uint64_t>(
                                               edge_index) * 0x9e37ull))),
        size_(BoundedPareto{cfg.alpha, static_cast<double>(cfg.smin),
                            static_cast<double>(cfg.smax)}) {}

  Arrival next() {
    Arrival a;
    // Exponential inter-arrival, rate-modulated by the diurnal phase the
    // PREVIOUS arrival fell in (rate changes take effect at phase edges in
    // the limit of small interarrival; exact phase integration is not worth
    // the complexity for a workload model).
    const int phase =
        cfg_.phases <= 1 || cfg_.phase_len.ns() == 0
            ? 0
            : static_cast<int>((clock_.ns() / cfg_.phase_len.ns()) %
                               cfg_.phases);
    const double rate_mult = phase_multiplier(phase, cfg_.phases);
    const double u = rng_.next_double();
    const double gap_ns = -std::log(1.0 - u) *
                          static_cast<double>(cfg_.mean_interarrival.ns()) /
                          rate_mult;
    clock_ += sim::Time::from_ns(static_cast<std::int64_t>(gap_ns) + 1);
    a.at = clock_;
    a.seq = seq_++;
    a.client = rng_.next_below(cfg_.clients);
    a.key = rng_.next_u64();
    a.req_bytes = static_cast<std::uint32_t>(size_.sample(rng_.next_double()));
    a.resp_bytes = static_cast<std::uint32_t>(size_.sample(rng_.next_double()));
    a.hedged = rng_.next_double() < cfg_.hedge;
    return a;
  }

 private:
  TrafficConfig cfg_;
  sim::Rng rng_;
  BoundedPareto size_;
  sim::Time clock_;
  std::uint64_t seq_ = 0;
};

}  // namespace serve
