#include "apps/serve/serve.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/serve/latency.hpp"
#include "core/proxy_options.hpp"
#include "mpi/cluster.hpp"
#include "mpi/continuation.hpp"
#include "sim/sync.hpp"
#include "util/spec_parser.hpp"

namespace serve {

using core::Approach;
using core::PReq;
using smpi::Datatype;
using smpi::Status;

namespace {

// ---- wire format ---------------------------------------------------------

/// Outstanding request receives each shard keeps pre-posted per edge. The
/// teardown contract depends on this constant: an edge finishes by sending
/// exactly this many poison frames to every shard, each of which completes
/// one pre-posted receive whose continuation then declines to re-arm.
constexpr std::size_t kReqSlotsPerEdge = 4;

constexpr int kReqTag = 1;        ///< edge -> shard requests (and poisons)
constexpr int kRespTagBase = 16;  ///< + slot*2 + copy, per edge window slot

constexpr std::uint32_t kFlagPoison = 1u;
constexpr std::uint32_t kFlagHedgeCopy = 2u;

struct ReqHeader {
  std::uint64_t client = 0;
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  std::uint64_t checksum = 0;  ///< fnv1a of the request payload
  std::uint32_t req_bytes = 0;
  std::uint32_t resp_bytes = 0;
  std::int32_t resp_tag = 0;
  std::uint32_t flags = 0;
};

struct RespHeader {
  std::uint64_t seq = 0;
  std::uint64_t digest = 0;  ///< fnv1a of the response payload
};

/// Response payload byte stream: a pure function of the request envelope,
/// so both replicas of a hedged request produce identical bytes and the
/// edge-side digest is independent of who wins the race.
std::uint64_t response_stream_seed(const ReqHeader& h) {
  return mix64(h.client ^ mix64(h.seq) ^ h.key ^ h.checksum);
}

void fill_stream(void* dst, std::size_t n, std::uint64_t seed) {
  auto* p = static_cast<unsigned char*>(dst);
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t w = mix64(seed + i / 8);
    const std::size_t take = std::min<std::size_t>(8, n - i);
    std::memcpy(p + i, &w, take);
    i += take;
  }
}

// ---- per-rank run state --------------------------------------------------

struct EdgeOut {
  LatencyHistogram hist;
  SloAccount slo;
  std::uint64_t responses = 0;
  std::uint64_t hedged = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t primary_wins = 0;
  std::uint64_t checksum_fail = 0;
  std::uint64_t payload_digest = 0;
  sim::Time last_arrival;
  sim::Time last_response;
  std::uint64_t cont_executed = 0, cont_posts = 0, steal_commands = 0;
};

struct ShardOut {
  std::uint64_t update_digest = 0;
  std::uint64_t checksum_fail = 0;
  std::uint64_t cont_executed = 0, cont_posts = 0, steal_commands = 0;
};

struct WorkItem {
  ReqHeader hdr;
  int edge = 0;
};

void grab_offload_counters(core::Proxy& p, std::uint64_t& executed,
                           std::uint64_t& posts, std::uint64_t& steals) {
  if (auto* op = dynamic_cast<core::OffloadProxy*>(&p)) {
    const core::OffloadStats& s = op->channel().stats();
    executed = s.cont_executed;
    posts = s.cont_posts;
    steals = s.steal_commands;
  }
}

// ---- edge rank -----------------------------------------------------------

void run_edge(smpi::RankCtx& rc, core::Proxy& proxy, const ServeConfig& cfg,
              smpi::Comm /*shard_comm*/, EdgeOut& out) {
  const int edge_index = rc.rank();
  const int shards = cfg.shards;
  const std::size_t hdr = sizeof(ReqHeader);
  const std::size_t rhdr = sizeof(RespHeader);
  out.slo = SloAccount(cfg.slo);

  struct Slot {
    std::vector<unsigned char> req[2];   ///< primary / hedge-copy frames
    std::vector<unsigned char> resp[2];  ///< raced response buffers
    Arrival arr;
    int copies = 0;   ///< 1, or 2 when hedged
    int pending = 0;  ///< send completions + the recv group's settled hook
    bool busy = false;
  };
  std::vector<Slot> slots(cfg.window);
  for (auto& s : slots) {
    s.req[0].resize(hdr + cfg.traffic.smax);
    s.req[1].resize(hdr + cfg.traffic.smax);
    s.resp[0].resize(rhdr + cfg.traffic.smax);
    s.resp[1].resize(rhdr + cfg.traffic.smax);
  }
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < slots.size(); ++i) free_slots.push_back(i);
  std::deque<Arrival> queue;  ///< admitted arrivals waiting for a slot
  std::size_t active = 0;     ///< slots with any operation outstanding

  // One self-contained dispatch step: move the queue's front request into
  // slot `si` and post its operations. Runs on the app fiber (pacer) or
  // inside a completion callback (slot turnover from engine context).
  std::function<void(std::size_t)> dispatch = [&](std::size_t si) {
    Slot& s = slots[si];
    s.arr = queue.front();
    queue.pop_front();
    s.busy = true;
    s.copies = s.arr.hedged ? 2 : 1;
    // The recv group settles as one unit; each send completion is its own.
    s.pending = 1 + s.copies;
    ++active;
    if (s.arr.hedged) ++out.hedged;

    const int primary =
        cfg.edges + static_cast<int>(s.arr.key % static_cast<std::uint64_t>(
                                                     shards));
    const int replica =
        cfg.edges + static_cast<int>((s.arr.key + 1) %
                                     static_cast<std::uint64_t>(shards));
    const std::uint64_t payload_seed =
        mix64(cfg.traffic.seed ^ mix64(s.arr.seq) ^
              static_cast<std::uint64_t>(edge_index));

    int dst[2] = {primary, replica};
    for (int c = 0; c < s.copies; ++c) {
      ReqHeader h;
      h.client = s.arr.client;
      h.seq = s.arr.seq;
      h.key = s.arr.key;
      h.req_bytes = s.arr.req_bytes;
      h.resp_bytes = s.arr.resp_bytes;
      h.resp_tag = kRespTagBase + static_cast<int>(si) * 2 + c;
      h.flags = c == 1 ? kFlagHedgeCopy : 0u;
      fill_stream(s.req[c].data() + hdr, s.arr.req_bytes, payload_seed);
      h.checksum = fnv1a(s.req[c].data() + hdr, s.arr.req_bytes);
      std::memcpy(s.req[c].data(), &h, hdr);
    }

    auto dec = [&, si](const Status&) {
      Slot& sl = slots[si];
      if (--sl.pending == 0) {
        sl.busy = false;
        --active;
        if (!queue.empty()) {
          dispatch(si);  // slot turnover without rejoining the app thread
        } else {
          free_slots.push_back(si);
        }
      }
    };

    // Race the response receives; the winner carries the latency sample,
    // the loser (hedged only) is drained by the settled hook.
    PReq recvs[2];
    for (int c = 0; c < s.copies; ++c) {
      recvs[c] = proxy.irecv(s.resp[c].data(), rhdr + s.arr.resp_bytes,
                             Datatype::kByte, dst[c],
                             kRespTagBase + static_cast<int>(si) * 2 + c);
    }
    cont::when_any(proxy, std::span<PReq>(recvs,
                                          static_cast<std::size_t>(s.copies)))
        .then(
            [&, si](std::size_t winner, const Status&) {
              Slot& sl = slots[si];
              const sim::Time lat = sim::now() - sl.arr.at;
              out.hist.add(lat);
              out.slo.add(lat);
              if (sl.arr.hedged) {
                if (winner == 0) {
                  ++out.primary_wins;
                } else {
                  ++out.hedge_wins;
                }
              }
              RespHeader rh;
              std::memcpy(&rh, sl.resp[winner].data(), rhdr);
              const std::uint64_t d =
                  fnv1a(sl.resp[winner].data() + rhdr, sl.arr.resp_bytes);
              if (rh.seq != sl.arr.seq || rh.digest != d) ++out.checksum_fail;
              out.payload_digest +=
                  mix64(d ^ mix64(sl.arr.seq * 0x9e3779b97f4a7c15ull));
              ++out.responses;
              out.last_response = sim::now();
            },
            dec);

    for (int c = 0; c < s.copies; ++c) {
      cont::isend(proxy, s.req[c].data(), hdr + s.arr.req_bytes,
                  Datatype::kByte, dst[c], kReqTag)
          .then(dec);
    }
  };

  // ---- open-loop pacer: inject at intended arrival times ----
  TrafficGen gen(cfg.traffic, edge_index);
  for (std::size_t n = 0; n < cfg.requests; ++n) {
    Arrival a = gen.next();
    if (a.at > sim::now()) smpi::compute(a.at - sim::now());
    out.last_arrival = a.at;
    // Open-loop contract: the request joins the system NOW even if every
    // slot is busy — its latency clock started at a.at either way.
    queue.push_back(a);
    if (!free_slots.empty()) {
      const std::size_t si = free_slots.back();
      free_slots.pop_back();
      dispatch(si);
    }
    proxy.progress_hint();
  }
  proxy.cont_wait([&]() { return out.responses == cfg.requests && active == 0; });

  // ---- teardown: fill every pre-posted shard receive with a poison ----
  std::vector<std::vector<unsigned char>> poisons;
  std::vector<PReq> preqs;
  for (int s = 0; s < shards; ++s) {
    for (std::size_t k = 0; k < kReqSlotsPerEdge; ++k) {
      ReqHeader h;
      h.flags = kFlagPoison;
      poisons.emplace_back(hdr);
      std::memcpy(poisons.back().data(), &h, hdr);
      preqs.push_back(proxy.isend(poisons.back().data(), hdr, Datatype::kByte,
                                  cfg.edges + s, kReqTag));
    }
  }
  proxy.waitall(preqs);

  grab_offload_counters(proxy, out.cont_executed, out.cont_posts,
                        out.steal_commands);
  proxy.barrier();
}

// ---- shard rank ----------------------------------------------------------

void run_shard(smpi::RankCtx& rc, core::Proxy& proxy, const ServeConfig& cfg,
               smpi::Comm shard_comm, ShardOut& out) {
  const int shard_index = rc.rank() - cfg.edges;
  const std::size_t hdr = sizeof(ReqHeader);
  const std::size_t rhdr = sizeof(RespHeader);

  // Shared shard state (plain: all fibers of a rank are cooperative).
  std::deque<WorkItem> queue;
  sim::Notifier work_n(sim::Time::from_ns(100));
  std::size_t poisons = 0;
  std::size_t resp_inflight = 0;
  bool workers_stop = false;
  int workers_exited = 0;
  sim::Notifier exit_n(sim::Time::from_ns(100));

  // Response buffer pool: workers block (they are app threads) when all
  // buffers are in flight; send-completion continuations recycle them.
  const std::size_t nbufs = 2 * static_cast<std::size_t>(cfg.workers) + 2;
  std::vector<std::vector<unsigned char>> bufs(nbufs);
  for (auto& b : bufs) b.resize(rhdr + cfg.traffic.smax);
  std::vector<std::size_t> free_bufs;
  for (std::size_t i = 0; i < nbufs; ++i) free_bufs.push_back(i);
  sim::Notifier buf_n(sim::Time::from_ns(100));

  // ---- reactive request receives: re-arm from the completion context ----
  struct RecvSlot {
    std::vector<unsigned char> buf;
    int edge = 0;
    core::ContFn again;
  };
  std::vector<std::unique_ptr<RecvSlot>> rslots;
  for (int e = 0; e < cfg.edges; ++e) {
    for (std::size_t k = 0; k < kReqSlotsPerEdge; ++k) {
      auto rs = std::make_unique<RecvSlot>();
      rs->buf.resize(hdr + cfg.traffic.smax);
      rs->edge = e;
      RecvSlot* raw = rs.get();
      rs->again = [&, raw](const Status&) {
        ReqHeader h;
        std::memcpy(&h, raw->buf.data(), sizeof h);
        if ((h.flags & kFlagPoison) != 0) {
          ++poisons;  // teardown frame: do NOT re-arm
          work_n.signal();
          return;
        }
        if (fnv1a(raw->buf.data() + hdr, h.req_bytes) != h.checksum) {
          ++out.checksum_fail;
        }
        queue.push_back(WorkItem{h, raw->edge});
        // Re-arm the same buffer before signalling: the loop lives entirely
        // in the proxy's completion context and never rejoins the shard's
        // main fiber.
        cont::irecv(proxy, raw->buf.data(), raw->buf.size(), Datatype::kByte,
                    raw->edge, kReqTag)
            .then(raw->again);
        work_n.signal();
      };
      cont::irecv(proxy, rs->buf.data(), rs->buf.size(), Datatype::kByte, e,
                  kReqTag)
          .then(rs->again);
      rslots.push_back(std::move(rs));
    }
  }

  // ---- continuation-chained model-update rounds (shard comm only) ----
  std::vector<double> contrib(cfg.update), result(cfg.update);
  int round = 0;
  bool rounds_done = cfg.rounds <= 0 || cfg.update == 0;
  std::function<void()> post_round = [&]() {
    for (std::size_t i = 0; i < cfg.update; ++i) {
      contrib[i] = (shard_index + 1) * 0.001 * (round + 1) +
                   static_cast<double>(i) * 1e-6;
    }
    PReq r = proxy.iallreduce(contrib.data(), result.data(), cfg.update,
                              Datatype::kDouble, smpi::Op::kSum, shard_comm);
    cont::wrap(proxy, r).then([&](const Status&) {
      out.update_digest = fnv1a(result.data(), cfg.update * sizeof(double),
                                out.update_digest + 0x100001b3ull);
      if (++round < cfg.rounds) {
        post_round();  // chain the next round from this completion
      } else {
        rounds_done = true;
      }
    });
  };
  if (!rounds_done) post_round();

  // ---- worker fibers: the ablation's "app threads" ----
  auto worker_body = [&]() {
    std::uint64_t seen = 0, buf_seen = 0;
    for (;;) {
      if (!queue.empty()) {
        const WorkItem it = queue.front();
        queue.pop_front();
        const auto kb = static_cast<std::int64_t>(
            (it.hdr.req_bytes + it.hdr.resp_bytes) / 1024);
        smpi::compute(cfg.service_base + cfg.service_per_kb * kb);
        while (free_bufs.empty()) buf_seen = buf_n.wait_beyond(buf_seen);
        const std::size_t bi = free_bufs.back();
        free_bufs.pop_back();
        RespHeader rh;
        rh.seq = it.hdr.seq;
        fill_stream(bufs[bi].data() + rhdr, it.hdr.resp_bytes,
                    response_stream_seed(it.hdr));
        rh.digest = fnv1a(bufs[bi].data() + rhdr, it.hdr.resp_bytes);
        std::memcpy(bufs[bi].data(), &rh, rhdr);
        ++resp_inflight;
        cont::isend(proxy, bufs[bi].data(), rhdr + it.hdr.resp_bytes,
                    Datatype::kByte, it.edge, it.hdr.resp_tag)
            .then([&, bi](const Status&) {
              free_bufs.push_back(bi);
              --resp_inflight;
              buf_n.signal();
              work_n.signal();  // the main fiber's quiesce wait re-checks
            });
        continue;
      }
      if (workers_stop) break;
      seen = work_n.wait_beyond(seen);
    }
    ++workers_exited;
    exit_n.signal();
  };
  for (int w = 0; w < cfg.workers; ++w) {
    rc.cluster().spawn_on(rc.rank(), "srv" + std::to_string(w), worker_body);
  }

  // Quiesce: every pre-posted receive poisoned, all admitted work served,
  // every response send completed, the update chain finished.
  const std::size_t all_poisons =
      static_cast<std::size_t>(cfg.edges) * kReqSlotsPerEdge;
  proxy.cont_wait([&]() {
    return poisons == all_poisons && queue.empty() && resp_inflight == 0 &&
           rounds_done;
  });
  workers_stop = true;
  work_n.signal();
  for (std::uint64_t seen = 0; workers_exited < cfg.workers;) {
    seen = exit_n.wait_beyond(seen);
  }

  grab_offload_counters(proxy, out.cont_executed, out.cont_posts,
                        out.steal_commands);
  proxy.barrier();
}

}  // namespace

// ---- driver --------------------------------------------------------------

ServeResult run_serve(const ServeConfig& cfg) {
  if (cfg.edges < 1 || cfg.shards < 1 || cfg.workers < 1 ||
      cfg.window < 1 || cfg.requests < 1) {
    throw std::invalid_argument("run_serve: edges/shards/workers/window/"
                                "requests must all be >= 1");
  }
  smpi::ClusterConfig cc;
  cc.nranks = cfg.edges + cfg.shards;
  cc.thread_level = (cfg.workers > 1 && cfg.approach != Approach::kOffload)
                        ? smpi::ThreadLevel::kMultiple
                        : core::required_thread_level(cfg.approach);
  cc.deadline = cfg.deadline;
  if (cfg.faults) {
    cc.profile.faults.on = true;
    cc.profile.faults.drop = cfg.fault_drop;
    cc.profile.faults.dup = cfg.fault_dup;
    cc.profile.faults.reorder = cfg.fault_reorder;
    cc.profile.faults.seed = cfg.fault_seed;
  }
  smpi::Cluster cluster(cc);

  std::vector<EdgeOut> edge_out(static_cast<std::size_t>(cfg.edges));
  std::vector<ShardOut> shard_out(static_cast<std::size_t>(cfg.shards));

  cluster.run([&](smpi::RankCtx& rc) {
    std::unique_ptr<core::Proxy> proxy;
    if (cfg.proxy_count > 0 && cfg.approach == Approach::kOffload) {
      core::ProxyOptions opts = core::ProxyOptions::from_env(cc.profile);
      opts.proxy_count = cfg.proxy_count;
      proxy = core::make_proxy(cfg.approach, rc, opts);
    } else {
      proxy = core::make_proxy(cfg.approach, rc);
    }
    proxy->start_engine();
    const bool is_shard = rc.rank() >= cfg.edges;
    smpi::Comm shard_comm = smpi::comm_split(smpi::kCommWorld,
                                             is_shard ? 1 : 0, rc.rank());
    if (is_shard) {
      run_shard(rc, *proxy, cfg, shard_comm,
                shard_out[static_cast<std::size_t>(rc.rank() - cfg.edges)]);
    } else {
      run_edge(rc, *proxy, cfg, shard_comm,
               edge_out[static_cast<std::size_t>(rc.rank())]);
    }
    proxy->stop();
  });

  ServeResult r;
  r.requests = static_cast<std::uint64_t>(cfg.edges) * cfg.requests;
  LatencyHistogram hist;
  SloAccount slo(cfg.slo);
  sim::Time last_arrival, last_response;
  for (const EdgeOut& e : edge_out) {
    hist.merge(e.hist);
    slo.merge(e.slo);
    r.responses += e.responses;
    r.hedged += e.hedged;
    r.hedge_wins += e.hedge_wins;
    r.primary_wins += e.primary_wins;
    r.checksum_fail += e.checksum_fail;
    r.payload_digest += e.payload_digest;
    last_arrival = std::max(last_arrival, e.last_arrival);
    last_response = std::max(last_response, e.last_response);
    r.cont_executed += e.cont_executed;
    r.cont_posts += e.cont_posts;
    r.steal_commands += e.steal_commands;
  }
  for (const ShardOut& s : shard_out) {
    r.checksum_fail += s.checksum_fail;
    r.cont_executed += s.cont_executed;
    r.cont_posts += s.cont_posts;
    r.steal_commands += s.steal_commands;
  }
  r.update_digest = shard_out.empty() ? 0 : shard_out[0].update_digest;
  r.histogram_digest = hist.digest();
  r.p50_us = hist.quantile_us(0.50);
  r.p99_us = hist.quantile_us(0.99);
  r.p999_us = hist.quantile_us(0.999);
  r.slo_ok = slo.ok();
  r.slo_miss = slo.miss();
  r.makespan = last_response;
  r.goodput_rps = slo.goodput_rps(r.makespan);
  r.offered_rps = last_arrival.ns() > 0
                      ? static_cast<double>(r.requests) * 1e9 /
                            static_cast<double>(last_arrival.ns())
                      : 0.0;
  return r;
}

// ---- MPIOFF_SERVE spec ---------------------------------------------------

namespace {

double parse_shape(const util::SpecParser& p, const std::string& v,
                   const std::string& where) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(d > 0.0) || d == 1.0) {
    p.fail(where + ": expected a positive shape (alpha != 1), got '" + v +
           "'");
  }
  return d;
}

}  // namespace

ServeConfig apply_serve_spec(ServeConfig base, const std::string& spec) {
  static const char* kEnv = "MPIOFF_SERVE";
  util::SpecParser p(kEnv, "=:",
                     "requests, edges, shards, workers, window, clients, "
                     "rounds, update, seed, hedge, alpha, smin, smax, ia, "
                     "phases, phase_len, slo, service, service_kb");
  for (const char* k :
       {"requests", "edges", "shards", "workers", "window", "clients",
        "rounds", "update", "seed", "hedge", "alpha", "smin", "smax", "ia",
        "phases", "phase_len", "slo", "service", "service_kb"}) {
    p.key(k);
  }
  auto count_of = [&](const util::SpecItem& it) {
    return util::SpecParser::parse_count(kEnv, it.value, it.key);
  };
  for (const util::SpecItem& it : p.parse(spec)) {
    if (it.key == "requests") {
      base.requests = count_of(it);
    } else if (it.key == "edges") {
      base.edges = static_cast<int>(count_of(it));
    } else if (it.key == "shards") {
      base.shards = static_cast<int>(count_of(it));
    } else if (it.key == "workers") {
      base.workers = static_cast<int>(count_of(it));
    } else if (it.key == "window") {
      base.window = count_of(it);
    } else if (it.key == "clients") {
      base.traffic.clients = count_of(it);
    } else if (it.key == "rounds") {
      base.rounds = static_cast<int>(count_of(it));
    } else if (it.key == "update") {
      base.update = count_of(it);
    } else if (it.key == "seed") {
      base.traffic.seed = count_of(it);
    } else if (it.key == "hedge") {
      base.traffic.hedge =
          util::SpecParser::parse_prob(kEnv, it.value, it.key);
    } else if (it.key == "alpha") {
      base.traffic.alpha = parse_shape(p, it.value, it.key);
    } else if (it.key == "smin") {
      base.traffic.smin = util::SpecParser::parse_bytes(kEnv, it.value, it.key);
    } else if (it.key == "smax") {
      base.traffic.smax = util::SpecParser::parse_bytes(kEnv, it.value, it.key);
    } else if (it.key == "ia") {
      base.traffic.mean_interarrival =
          util::SpecParser::parse_duration(kEnv, it.value, it.key);
    } else if (it.key == "phases") {
      base.traffic.phases = static_cast<int>(count_of(it));
    } else if (it.key == "phase_len") {
      base.traffic.phase_len =
          util::SpecParser::parse_duration(kEnv, it.value, it.key);
    } else if (it.key == "slo") {
      base.slo = util::SpecParser::parse_duration(kEnv, it.value, it.key);
    } else if (it.key == "service") {
      base.service_base =
          util::SpecParser::parse_duration(kEnv, it.value, it.key);
    } else if (it.key == "service_kb") {
      base.service_per_kb =
          util::SpecParser::parse_duration(kEnv, it.value, it.key);
    }
  }
  if (base.traffic.smin > base.traffic.smax) {
    p.fail("smin must be <= smax");
  }
  return base;
}

ServeConfig serve_config_from_env(ServeConfig base) {
  const char* s = std::getenv("MPIOFF_SERVE");
  if (s == nullptr || *s == '\0') return base;
  return apply_serve_spec(base, s);
}

}  // namespace serve
