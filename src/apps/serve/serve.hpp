// Sharded parameter-server / inference tier under a latency SLO.
//
// Topology: the first `edges` ranks are edge (front-end) ranks, the
// remaining `shards` ranks are shard (server) ranks.
//
//   * Each edge runs an OPEN-LOOP TrafficGen (apps/serve/traffic.hpp) and an
//     inflight window of `window` slots. A request hash-routes by key to a
//     primary shard; a seeded fraction is HEDGED — sent simultaneously to
//     the primary and its replica ((primary+1) % shards), with the two
//     response receives raced through cont::when_any: whichever replica
//     answers first wins, exactly once, and the loser's late response is
//     drained by the group's settled hook (no cancellation — DESIGN.md §17).
//   * Each shard pre-posts per-edge request receives whose continuations
//     re-arm themselves from engine context (a reactive loop that never
//     rejoins the app thread), queue the request, and hand it to `workers`
//     worker fibers — the "app threads" of the A12 ablation — which model
//     the service time with smpi::compute and send the response back.
//   * Shards co-run `rounds` continuation-chained iallreduce model-update
//     rounds on a shard-only communicator (each round posted from the
//     previous round's completion callback).
//
// Determinism contract (tests/test_serve.cpp):
//   * response payloads are a pure function of the request envelope
//     (client, seq, key, request-payload checksum) — both replicas of a
//     hedged request produce IDENTICAL bytes, so the edge's payload digest
//     does not depend on who wins the race, on the proxy approach, on the
//     engine count, or on fault-induced retransmits (the reliability layer
//     delivers bit-identical payloads);
//   * the latency histogram/SLO tallies are deterministic for a fixed
//     configuration (same seed => same histogram on every rerun), but NOT
//     comparable across different proxy approaches or engine counts, which
//     legitimately change virtual timing — the cross-proxy assertion is on
//     the payload digest, the repeat-run assertion is on everything.
#pragma once

#include <cstdint>
#include <string>

#include "apps/serve/traffic.hpp"
#include "core/proxy.hpp"
#include "sim/time.hpp"

namespace serve {

struct ServeConfig {
  core::Approach approach = core::Approach::kOffload;
  int edges = 1;
  int shards = 2;
  int workers = 4;           ///< worker fibers per shard ("app threads")
  std::size_t requests = 800;  ///< per edge
  std::size_t window = 16;     ///< inflight slots per edge
  TrafficConfig traffic;       ///< seed/clients/sizes/bursts/hedge
  sim::Time slo = sim::Time::from_us(150);
  sim::Time service_base = sim::Time::from_us(2);   ///< per request
  sim::Time service_per_kb = sim::Time::from_ns(200);
  int rounds = 8;            ///< model-update allreduce rounds
  std::size_t update = 64;   ///< doubles per update vector
  std::size_t proxy_count = 0;  ///< offload engines per rank; 0 = env default
  /// Fault mix for the run (fields of machine::FaultSpec); empty = clean.
  bool faults = false;
  double fault_drop = 0.02, fault_dup = 0.01, fault_reorder = 0.05;
  std::uint64_t fault_seed = 7;
  sim::Time deadline = sim::Time::from_sec(600);
};

/// Aggregated run outcome (all edges merged; shard 0's update digest).
struct ServeResult {
  std::uint64_t requests = 0;   ///< injected client requests (all edges)
  std::uint64_t responses = 0;  ///< requests whose winning response arrived
  std::uint64_t hedged = 0;     ///< requests sent to two replicas
  std::uint64_t hedge_wins = 0;    ///< hedged requests won by the replica
  std::uint64_t primary_wins = 0;  ///< hedged requests won by the primary
  std::uint64_t checksum_fail = 0;  ///< responses whose payload digest lied
  std::uint64_t payload_digest = 0;  ///< order-independent response identity
  std::uint64_t update_digest = 0;   ///< allreduce round results, in order
  std::uint64_t histogram_digest = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  std::uint64_t slo_ok = 0, slo_miss = 0;
  double goodput_rps = 0;  ///< SLO-met responses per virtual second
  double offered_rps = 0;  ///< injected requests per virtual second
  sim::Time makespan;      ///< first injection to last winning response
  // Offload engine counters (zero for direct approaches).
  std::uint64_t cont_executed = 0;
  std::uint64_t cont_posts = 0;
  std::uint64_t steal_commands = 0;
};

/// Run the serving tier to completion. Deterministic per config.
ServeResult run_serve(const ServeConfig& cfg);

/// Apply an MPIOFF_SERVE-grammar spec on top of `base`. Grammar (comma
/// separated, '=' or ':' separators; SpecParser error contract):
///   requests=N edges=N shards=N workers=N window=N clients=N rounds=N
///   update=N seed=N hedge=P alpha=F smin=BYTES smax=BYTES ia=DUR
///   phases=N phase_len=DUR slo=DUR service=DUR service_kb=DUR
/// Malformed specs throw std::invalid_argument naming the vocabulary.
ServeConfig apply_serve_spec(ServeConfig base, const std::string& spec);

/// apply_serve_spec over the MPIOFF_SERVE environment variable (if set).
ServeConfig serve_config_from_env(ServeConfig base);

}  // namespace serve
