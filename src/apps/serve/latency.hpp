// Latency accounting for the serving tier: log-bucketed virtual-time
// histogram (p50/p99/p999 by bucket interpolation) and SLO goodput.
//
// The histogram is the unit the regression harness diffs: counts are exact
// integers, merging is commutative, and digest() gives a single word that
// two runs of the same seed must reproduce bit-identically. Quantiles
// interpolate linearly inside a power-of-two bucket — a deterministic
// function of the counts, so they are comparable across runs even though
// they are doubles.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "apps/serve/traffic.hpp"  // fnv1a
#include "sim/time.hpp"

namespace serve {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;  ///< bucket b holds ns in [2^(b-1), 2^b)

  void add(sim::Time lat) {
    const auto ns = static_cast<std::uint64_t>(lat.ns() < 0 ? 0 : lat.ns());
    const int b = std::bit_width(ns);
    counts_[b >= kBuckets ? kBuckets - 1 : b] += 1;
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Smallest latency (us) such that at least q of the samples are <= it.
  /// Linear interpolation within the winning bucket; 0 when empty.
  [[nodiscard]] double quantile_us(double q) const {
    if (total_ == 0) return 0.0;
    const double want = q * static_cast<double>(total_);
    std::uint64_t below = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      const auto here = static_cast<double>(counts_[b]);
      if (static_cast<double>(below) + here >= want) {
        const double frac = (want - static_cast<double>(below)) / here;
        const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
        const double hi = static_cast<double>(
            b >= 63 ? ~0ull : (1ull << b));
        return (lo + frac * (hi - lo)) / 1000.0;
      }
      below += counts_[b];
    }
    return static_cast<double>(1ull << (kBuckets - 1)) / 1000.0;
  }

  /// Commutative merge (edges accumulate independently, any order).
  void merge(const LatencyHistogram& o) {
    for (int b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    total_ += o.total_;
  }

  /// Bit-stable identity of the distribution (FNV over the count array).
  [[nodiscard]] std::uint64_t digest() const {
    return fnv1a(counts_.data(), counts_.size() * sizeof(counts_[0]));
  }

  bool operator==(const LatencyHistogram&) const = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Goodput-under-SLO: a response counts only if its end-to-end virtual-time
/// latency met the target. Goodput is SLO-met responses per virtual second.
class SloAccount {
 public:
  explicit SloAccount(sim::Time slo = sim::Time::from_us(150)) : slo_(slo) {}

  void add(sim::Time lat) {
    if (lat <= slo_) {
      ++ok_;
    } else {
      ++miss_;
    }
  }

  [[nodiscard]] sim::Time slo() const { return slo_; }
  [[nodiscard]] std::uint64_t ok() const { return ok_; }
  [[nodiscard]] std::uint64_t miss() const { return miss_; }
  [[nodiscard]] std::uint64_t total() const { return ok_ + miss_; }

  [[nodiscard]] double ok_fraction() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(ok_) /
                              static_cast<double>(total());
  }

  /// SLO-met responses per second of the given virtual-time span.
  [[nodiscard]] double goodput_rps(sim::Time span) const {
    return span.ns() <= 0 ? 0.0
                          : static_cast<double>(ok_) * 1e9 /
                                static_cast<double>(span.ns());
  }

  void merge(const SloAccount& o) {
    ok_ += o.ok_;
    miss_ += o.miss_;
  }

 private:
  sim::Time slo_;
  std::uint64_t ok_ = 0;
  std::uint64_t miss_ = 0;
};

}  // namespace serve
