#include "apps/fft/distributed_fft.hpp"

#include <cmath>
#include <memory>
#include <numbers>
#include <stdexcept>

#include "mpi/cluster.hpp"
#include "mpi/continuation.hpp"

namespace fft {

using core::PReq;
using smpi::Datatype;

// --------------------------------------------------------- DistributedFft ----

DistributedFft::DistributedFft(smpi::RankCtx& rc, core::Proxy& proxy,
                               std::size_t rows, std::size_t cols)
    : rc_(rc),
      proxy_(proxy),
      rows_(rows),
      cols_(cols),
      nranks_(rc.nranks()),
      rank_(rc.rank()) {
  const auto p = static_cast<std::size_t>(nranks_);
  if (rows % p != 0 || cols % p != 0) {
    throw std::invalid_argument("rows and cols must be divisible by nranks");
  }
}

void DistributedFft::pack_tiles(const std::vector<cd>& block,
                                std::vector<cd>& sendbuf, std::size_t a,
                                std::size_t b) {
  const auto p = static_cast<std::size_t>(nranks_);
  const std::size_t ra = a / p;
  const std::size_t rb = b / p;
  for (std::size_t dest = 0; dest < p; ++dest) {
    cd* out = sendbuf.data() + dest * ra * rb;
    for (std::size_t r = 0; r < ra; ++r) {
      for (std::size_t c = 0; c < rb; ++c) {
        out[r * rb + c] = block[r * b + dest * rb + c];
      }
    }
  }
}

void DistributedFft::unpack_tiles(const std::vector<cd>& recvbuf,
                                  std::vector<cd>& block, std::size_t a,
                                  std::size_t b) {
  // Received tile from rank i holds rows [i*ra, (i+1)*ra) x my column block;
  // transpose into out[c][global_row].
  const auto p = static_cast<std::size_t>(nranks_);
  const std::size_t ra = a / p;
  const std::size_t rb = b / p;
  for (std::size_t i = 0; i < p; ++i) {
    const cd* tile = recvbuf.data() + i * ra * rb;
    for (std::size_t r = 0; r < ra; ++r) {
      for (std::size_t c = 0; c < rb; ++c) {
        block[c * a + i * ra + r] = tile[r * rb + c];
      }
    }
  }
}

void DistributedFft::transpose(std::vector<cd>& block, std::size_t a,
                               std::size_t b) {
  // I own a/P rows of an a x b matrix (row-major); produce my b/P rows of
  // the b x a transpose. Pack column-blocks per destination, alltoall,
  // then locally transpose each received (a/P x b/P) tile.
  const auto p = static_cast<std::size_t>(nranks_);
  const std::size_t ra = a / p;  // my row count before
  const std::size_t rb = b / p;  // my row count after
  std::vector<cd> sendbuf(block.size()), recvbuf(block.size());
  pack_tiles(block, sendbuf, a, b);
  proxy_.alltoall(sendbuf.data(), recvbuf.data(), ra * rb,
                  Datatype::kComplexDouble);
  unpack_tiles(recvbuf, block, a, b);
}

void DistributedFft::forward(std::vector<cd>& block) {
  const std::size_t n = total();
  const auto p = static_cast<std::size_t>(nranks_);
  if (block.size() != local()) throw std::invalid_argument("bad block size");

  // Input element x[q*C + b] lives at row q, col b of an R x C matrix.
  // Step 1: transpose (all-to-all #1) -> I own C/P rows of the C x R matrix,
  // i.e. T[b][q2] = x[q2*C + b].
  transpose(block, rows_, cols_);
  // Step 2: length-R FFT along each of my C/P rows.
  const std::size_t my_cols = cols_ / p;
  for (std::size_t r = 0; r < my_cols; ++r) {
    fft_inplace(block.data() + r * rows_, rows_);
  }
  // Step 3: twiddle T[b][q] *= W_N^{b q}.
  const std::size_t b0 = static_cast<std::size_t>(rank_) * my_cols;
  for (std::size_t r = 0; r < my_cols; ++r) {
    const std::size_t b = b0 + r;
    for (std::size_t q = 0; q < rows_; ++q) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>((b * q) % n) / static_cast<double>(n);
      block[r * rows_ + q] *= cd(std::cos(ang), std::sin(ang));
    }
  }
  // Step 4: transpose back (all-to-all #2) -> R/P rows of R x C: Z[q][b].
  transpose(block, cols_, rows_);
  // Step 5: length-C FFT along each of my R/P rows.
  const std::size_t my_rows = rows_ / p;
  for (std::size_t r = 0; r < my_rows; ++r) {
    fft_inplace(block.data() + r * cols_, cols_);
  }
  // Step 6: transpose for natural output order (all-to-all #3): element
  // (q, s) is X[q + R*s]; after transposing to C x R ownership, rank p holds
  // X[k] for k in [p*N/P, (p+1)*N/P) contiguously.
  transpose(block, rows_, cols_);
}

void DistributedFft::forward_chained(std::vector<cd>& block) {
  const std::size_t n = total();
  const auto p = static_cast<std::size_t>(nranks_);
  if (block.size() != local()) throw std::invalid_argument("bad block size");
  // Exchange buffers shared by all three stages (each stage's alltoall has
  // fully completed before the next pack reuses them); shared_ptr because
  // the continuations outlive this frame's locals between stages.
  struct Bufs {
    std::vector<cd> send, recv;
  };
  auto bufs = std::make_shared<Bufs>();
  bufs->send.resize(block.size());
  bufs->recv.resize(block.size());
  const std::size_t count = (rows_ / p) * (cols_ / p);  // same every stage
  const std::size_t my_cols = cols_ / p;
  const std::size_t my_rows = rows_ / p;
  const std::size_t b0 = static_cast<std::size_t>(rank_) * my_cols;
  cont::Event done;

  // Stages in reverse order so each can capture its successor by value.
  // `block` and `done` are captured by reference: done.wait below keeps
  // this frame alive until the tail continuation has run.
  auto stage3 = [this, bufs, &block, &done](const smpi::Status&) {
    unpack_tiles(bufs->recv, block, rows_, cols_);  // step 6 unpack
    done.set();
  };
  auto stage2 = [this, bufs, &block, count, my_rows,
                 stage3](const smpi::Status&) {
    unpack_tiles(bufs->recv, block, cols_, rows_);  // step 4 unpack
    for (std::size_t r = 0; r < my_rows; ++r) {     // step 5
      fft_inplace(block.data() + r * cols_, cols_);
    }
    pack_tiles(block, bufs->send, rows_, cols_);  // step 6 pack
    cont::wrap(proxy_, proxy_.ialltoall(bufs->send.data(), bufs->recv.data(),
                                        count, Datatype::kComplexDouble))
        .then(stage3);
  };
  auto stage1 = [this, bufs, &block, n, count, my_cols, b0,
                 stage2](const smpi::Status&) {
    unpack_tiles(bufs->recv, block, rows_, cols_);  // step 1 unpack
    for (std::size_t r = 0; r < my_cols; ++r) {     // step 2
      fft_inplace(block.data() + r * rows_, rows_);
    }
    for (std::size_t r = 0; r < my_cols; ++r) {  // step 3: twiddle
      const std::size_t b = b0 + r;
      for (std::size_t q = 0; q < rows_; ++q) {
        const double ang = -2.0 * std::numbers::pi *
                           static_cast<double>((b * q) % n) /
                           static_cast<double>(n);
        block[r * rows_ + q] *= cd(std::cos(ang), std::sin(ang));
      }
    }
    pack_tiles(block, bufs->send, cols_, rows_);  // step 4 pack
    cont::wrap(proxy_, proxy_.ialltoall(bufs->send.data(), bufs->recv.data(),
                                        count, Datatype::kComplexDouble))
        .then(stage2);
  };
  // Kick off stage 0 from the application thread; everything after runs as
  // continuations.
  pack_tiles(block, bufs->send, rows_, cols_);  // step 1 pack
  cont::wrap(proxy_, proxy_.ialltoall(bufs->send.data(), bufs->recv.data(),
                                      count, Datatype::kComplexDouble))
      .then(stage1);
  done.wait(proxy_);
}

// ------------------------------------------------------------------ perf ----

FftPerfResult run_fft_perf(const FftPerfConfig& cfg) {
  const int nranks = cfg.nodes * cfg.ranks_per_node;
  smpi::ClusterConfig cc;
  cc.nranks = nranks;
  cc.profile = cfg.profile;
  if (cfg.bisection_exponent > 0) {
    cc.profile.bisection_bytes_per_ns =
        cc.profile.net_bytes_per_ns * std::pow(nranks, cfg.bisection_exponent);
  }
  cc.thread_level = core::required_thread_level(cfg.approach);
  cc.deadline = sim::Time::from_sec(36000);
  smpi::Cluster cluster(cc);

  FftPerfResult result;
  result.ranks = nranks;

  cluster.run([&](smpi::RankCtx& rc) {
    auto proxy = core::make_proxy(cfg.approach, rc);
    proxy->start_engine();
    const int threads = proxy->compute_threads(cfg.profile.cores_per_rank);
    const double n_local = static_cast<double>(cfg.points_per_node);
    const double n_total = n_local * nranks;
    // SOI: total local compute = 5 n log2(N) * factor, split half before the
    // exchange (front end) and half after (back end), over S segments.
    const double total_flops = fft_flops(n_total) / nranks * cfg.soi_compute_factor;
    const double rate = cfg.flops_per_ns_thread * threads;  // flops/ns
    const auto seg_front = sim::Time(static_cast<std::int64_t>(
        total_flops / rate / 2.0 / cfg.segments));
    const auto seg_back = seg_front;
    // One all-to-all total: each rank exchanges its whole block once.
    const std::size_t seg_bytes_per_rank =
        static_cast<std::size_t>(n_local) * sizeof(cd) / static_cast<std::size_t>(cfg.segments) /
        static_cast<std::size_t>(nranks);
    // Local data rearrangement (segment pack/unpack): one copy pass each way.
    const auto seg_shuffle = sim::Time(static_cast<std::int64_t>(
        n_local * sizeof(cd) / cfg.segments / (cfg.profile.copy_bytes_per_ns * threads)));

    sim::Time t_internal, t_post, t_wait, t_misc, run_start;

    auto one_iteration = [&](bool measured) {
      std::vector<PReq> pending(static_cast<std::size_t>(cfg.segments));
      for (int s = 0; s < cfg.segments; ++s) {
        // Front-end compute of segment s.
        sim::Time t0 = sim::now();
        smpi::compute(seg_front);
        sim::Time t1 = sim::now();
        smpi::compute(seg_shuffle);  // pack (misc)
        sim::Time t2 = sim::now();
        pending[static_cast<std::size_t>(s)] =
            proxy->ialltoall(nullptr, nullptr, seg_bytes_per_rank,
                             Datatype::kByte);
        sim::Time t3 = sim::now();
        sim::Time t4 = t3, t5 = t3, t6 = t3;
        if (s > 0) {
          proxy->wait(pending[static_cast<std::size_t>(s - 1)]);
          t4 = sim::now();
          smpi::compute(seg_shuffle);  // unpack (misc)
          t5 = sim::now();
          smpi::compute(seg_back);  // back-end compute of segment s-1
          t6 = sim::now();
        }
        if (measured && rc.rank() == 0) {
          t_internal += (t1 - t0) + (t6 - t5);
          t_misc += (t2 - t1) + (t5 - t4);
          t_post += t3 - t2;
          t_wait += t4 - t3;
        }
      }
      // Drain the last segment.
      sim::Time t0 = sim::now();
      proxy->wait(pending[static_cast<std::size_t>(cfg.segments - 1)]);
      sim::Time t1 = sim::now();
      smpi::compute(seg_shuffle);
      smpi::compute(seg_back);
      sim::Time t2 = sim::now();
      proxy->barrier();
      if (measured && rc.rank() == 0) {
        t_wait += t1 - t0;
        t_internal += t2 - t1;
      }
    };

    for (int i = 0; i < cfg.warmup; ++i) one_iteration(false);
    proxy->barrier();
    run_start = sim::now();
    for (int i = 0; i < cfg.iters; ++i) one_iteration(true);
    const sim::Time run_end = sim::now();
    proxy->stop();

    if (rc.rank() == 0) {
      const double n = cfg.iters;
      result.internal_ms = t_internal.ms() / n;
      result.post_ms = t_post.ms() / n;
      result.wait_ms = t_wait.ms() / n;
      result.misc_ms = t_misc.ms() / n;
      result.total_ms = (run_end - run_start).ms() / n;
      result.gflops = fft_flops(n_total) * cfg.iters / (run_end - run_start).ns();
    }
  });
  return result;
}

}  // namespace fft
