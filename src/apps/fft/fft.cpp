#include "apps/fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fft {

void fft_inplace(cd* a, std::size_t n, bool inverse) {
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const cd wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cd w(1);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cd u = a[i + k];
        const cd v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<cd> naive_dft(const std::vector<cd>& in, bool inverse) {
  const std::size_t n = in.size();
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<cd> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cd acc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi *
                         static_cast<double>(j * k % n) / static_cast<double>(n);
      acc += in[j] * cd(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

double fft_flops(double n) { return 5.0 * n * std::log2(n); }

}  // namespace fft
