// Distributed 1-D FFT (paper Section 5.2).
//
// Two transforms are provided:
//
//  * DistributedFft — the classical Cooley-Tukey factorization with the
//    paper's "three all-to-all data exchanges" (a 6-step transform over an
//    R x C decomposition). Real arithmetic; validated against a naive DFT.
//
//  * run_fft_perf — the SOI-FFT-structured performance harness: the single
//    all-to-all of the low-communication algorithm is split into S segments
//    and pipelined against segment computation (front-end work, posted
//    Ialltoall, back-end work), with the algorithm's ~25% extra computation.
//    Communication is real phantom traffic at the paper's sizes (2^29
//    complex doubles per node on Xeon, 2^25 on Xeon Phi).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/fft/fft.hpp"
#include "core/proxy.hpp"
#include "machine/profile.hpp"
#include "mpi/rank_ctx.hpp"

namespace fft {

/// Real-math distributed transform of N = rows * cols elements over P ranks
/// (rows, cols powers of two, both divisible by P). Rank p holds input
/// elements [p*N/P, (p+1)*N/P) and ends with output elements in the same
/// natural-order block distribution.
class DistributedFft {
 public:
  DistributedFft(smpi::RankCtx& rc, core::Proxy& proxy, std::size_t rows,
                 std::size_t cols);

  [[nodiscard]] std::size_t total() const { return rows_ * cols_; }
  [[nodiscard]] std::size_t local() const { return total() / static_cast<std::size_t>(nranks_); }

  /// Forward transform of this rank's block.
  void forward(std::vector<cd>& block);
  /// Forward transform as a three-stage continuation chain: each of the
  /// three all-to-alls completes into a continuation that unpacks, runs the
  /// stage's FFTs/twiddle, packs, and posts the next exchange — all from the
  /// proxy's continuation context (the offload engine fiber posts follow-up
  /// collectives directly). The application thread only waits the tail
  /// event. Bit-identical to forward(): same helpers, same order.
  void forward_chained(std::vector<cd>& block);

 private:
  /// Own rows of an a x b matrix -> own rows of its transpose (alltoall).
  void transpose(std::vector<cd>& block, std::size_t a, std::size_t b);
  /// transpose()'s pack half: column-blocks per destination into sendbuf.
  void pack_tiles(const std::vector<cd>& block, std::vector<cd>& sendbuf,
                  std::size_t a, std::size_t b);
  /// transpose()'s unpack half: received tiles -> my rows of the transpose.
  void unpack_tiles(const std::vector<cd>& recvbuf, std::vector<cd>& block,
                    std::size_t a, std::size_t b);

  smpi::RankCtx& rc_;
  core::Proxy& proxy_;
  std::size_t rows_, cols_;
  int nranks_, rank_;
};

// ---------------------------------------------------------------- perf ----

struct FftPerfConfig {
  int nodes = 2;
  int ranks_per_node = 1;  ///< paper runs FFT one rank per node/coprocessor
  std::size_t points_per_node = 1ull << 29;  ///< complex doubles
  machine::Profile profile = machine::xeon_fdr();
  core::Approach approach = core::Approach::kBaseline;
  int segments = 8;  ///< SOI pipeline depth
  int iters = 3;
  int warmup = 1;
  /// Effective per-thread FFT compute rate, flops/ns (bandwidth-bound).
  double flops_per_ns_thread = 1.0;
  /// SOI computes ~25% more than Cooley-Tukey to save two all-to-alls.
  double soi_compute_factor = 1.25;
  /// Fabric taper: aggregate bandwidth = NIC bw * nranks^exponent. The
  /// sub-linear exponent reproduces the paper's "all-to-all bandwidth does
  /// not scale with node count". 0 disables (full bisection).
  double bisection_exponent = 0.6;
};

struct FftPerfResult {
  double internal_ms = 0;
  double post_ms = 0;
  double wait_ms = 0;
  double misc_ms = 0;
  double total_ms = 0;
  double gflops = 0;  ///< aggregate sustained 5 N log N rate
  int ranks = 0;
};

FftPerfResult run_fft_perf(const FftPerfConfig& cfg);

}  // namespace fft
