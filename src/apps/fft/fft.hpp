// Local FFT kernels (radix-2 iterative Cooley-Tukey) and a naive DFT
// reference used to validate the distributed transforms.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace fft {

using cd = std::complex<double>;

/// In-place radix-2 DIT FFT; n must be a power of two. inverse=true computes
/// the unnormalized inverse transform.
void fft_inplace(cd* data, std::size_t n, bool inverse = false);

/// O(n^2) reference DFT.
std::vector<cd> naive_dft(const std::vector<cd>& in, bool inverse = false);

/// 5 * n * log2(n) — the standard operation count used to report FFT flops.
double fft_flops(double n);

}  // namespace fft
