// Shared bench-harness plumbing: command-line/environment handling for
// tracing, CSV output, and the optional stats trailer.
//
// Every bench main constructs one Runner from (argc, argv) and hands each
// result table to finish(). Options:
//
//   --trace <file>   write a Chrome trace-event JSON of the whole run
//                    (env: MPIOFF_TRACE=<file>)
//   --csv <file>     also dump every table as CSV to <file>
//   --stats          print EngineStats/OffloadStats trailers and emit them
//                    as trace counters (env: MPIOFF_STATS=1)
//
// The tracer is enabled in the constructor (before any Cluster exists) and
// the trace file is written in the destructor, so a bench needs no other
// changes to become traceable.
#pragma once

#include <string>

#include "benchlib/table.hpp"

namespace core {
class Proxy;
}
namespace smpi {
class Cluster;
}

namespace benchlib {

class Runner {
 public:
  Runner(int argc, char** argv);
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Print the table to stdout and, with --csv, append it to the CSV file.
  void finish(const Table& t);

  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }
  [[nodiscard]] const std::string& trace_path() const { return trace_path_; }

  /// Global switch read by the benchlib kernels' stats hooks.
  static bool stats_enabled();
  static void set_stats_enabled(bool on);

  /// True when MPIOFF_BENCH_SMOKE=1: benches run a reduced configuration
  /// (fewer sizes/thread counts) so CI can execute them in minutes while
  /// still producing real `[stats]` trailers.
  static bool smoke_enabled();

  /// The Runner currently alive in this process (nullptr outside main).
  static Runner* active();

 private:
  std::string trace_path_;
  std::string csv_path_;
  bool csv_started_ = false;
};

/// Table output for code that can't see the Runner instance: routes through
/// Runner::active() when one exists (CSV-aware), plain print otherwise.
void finish_table(const Table& t);

// Hooks the benchlib kernels call at well-defined points. Both are no-ops
// unless stats are enabled (--stats / MPIOFF_STATS=1).

/// Per-rank hook, called just before Proxy::stop(): prints the rank-0
/// OffloadStats trailer and emits per-rank offload counters into the trace.
void report_proxy_stats(core::Proxy& p);

/// Whole-run hook, called after Cluster::run() returns: prints the
/// EngineStats trailer and emits them as trace counters.
void report_cluster_stats(smpi::Cluster& c);

}  // namespace benchlib
