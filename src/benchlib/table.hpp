// Fixed-width table printing for benchmark harnesses (paper-style rows).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace benchlib {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);
  void print(std::ostream& os = std::cout) const;
  /// Comma-separated dump (for plotting scripts).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string fmt_us(double us, int precision = 2);
std::string fmt_ms(double ms, int precision = 2);
std::string fmt_pct(double frac01, int precision = 0);  ///< 0.87 -> "87%"
std::string fmt_bytes(std::size_t bytes);               ///< 131072 -> "128K"
std::string fmt_double(double v, int precision = 2);
std::string fmt_int(long long v);

}  // namespace benchlib
