#include "benchlib/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace benchlib {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  }
  auto line = [&] {
    for (std::size_t w : width) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << "| " << std::setw(static_cast<int>(width[i])) << c << ' ';
    }
    os << "|\n";
  };
  line();
  emit(headers_);
  line();
  for (const auto& r : rows_) emit(r);
  line();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt_us(double us, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, us);
  return buf;
}

std::string fmt_ms(double ms, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, ms);
  return buf;
}

std::string fmt_pct(double frac01, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, frac01 * 100.0);
  return buf;
}

std::string fmt_bytes(std::size_t bytes) {
  char buf[64];
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    std::snprintf(buf, sizeof buf, "%zuM", bytes >> 20);
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof buf, "%zuK", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof buf, "%zu", bytes);
  }
  return buf;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

}  // namespace benchlib
