// The paper's compute-communication overlap benchmark (Section 4.1).
//
// Step 1 measures, with no intervening computation:
//   post time  — Irecv+Isend issue time,
//   wait time  — the two MPI_Waits,
//   comm time  — post + wait (the full exchange).
// Step 2 repeats with compute(comm_time) inserted between Isend and the
// first Wait. overlap = wait1 - wait2 (the communication that was hidden).
// All three are reported as fractions of comm time; 100% overlap means the
// second step's wait was (nearly) free.
#pragma once

#include <cstddef>
#include <string>

#include "core/proxy.hpp"
#include "machine/profile.hpp"

namespace benchlib {

struct OverlapResult {
  double comm_us = 0;
  double post_frac = 0;     ///< post time / comm time
  double wait_frac = 0;     ///< step-2 wait time / comm time
  double overlap_frac = 0;  ///< (wait1 - wait2) / comm time
  std::string algo = "-";   ///< collective algorithm that ran (CollStats)
};

/// Point-to-point overlap between 2 ranks for a message of `bytes`.
OverlapResult overlap_p2p(core::Approach a, const machine::Profile& prof,
                          std::size_t bytes, int iters = 20, int warmup = 4);

/// Which collective to measure in overlap_collective.
enum class CollKind { kIbcast, kIreduce, kIallreduce, kIalltoall, kIallgather, kIbarrier };

const char* coll_name(CollKind k);

/// IMB-NBC-style overlap for a nonblocking collective on `nranks` ranks with
/// per-rank payload `bytes`: overlap% = 1 - wait_overlapped / t_pure.
OverlapResult overlap_collective(core::Approach a, const machine::Profile& prof,
                                 CollKind kind, int nranks, std::size_t bytes,
                                 int iters = 10, int warmup = 2);

/// Issue time of a nonblocking collective (paper Fig. 5). When `algo_out`
/// is non-null it receives the name of the algorithm that actually ran.
double icollective_post_us(core::Approach a, const machine::Profile& prof,
                           CollKind kind, int nranks, std::size_t bytes,
                           int iters = 10, int warmup = 2,
                           std::string* algo_out = nullptr);

}  // namespace benchlib
