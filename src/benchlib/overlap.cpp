#include "benchlib/overlap.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "benchlib/runner.hpp"
#include "mpi/cluster.hpp"

namespace benchlib {

using namespace smpi;
using core::Approach;
using core::PReq;
using core::Proxy;

namespace {

ClusterConfig cluster_cfg(Approach a, const machine::Profile& prof, int n) {
  ClusterConfig c;
  c.nranks = n;
  c.profile = prof;
  c.thread_level = core::required_thread_level(a);
  c.deadline = sim::Time::from_sec(600);
  return c;
}

struct PhaseTimes {
  sim::Time post, wait, total;
};

/// One exchange: Irecv+Isend to the peer, optional compute, then drain both
/// completions through waitany — whichever finishes first is retired first,
/// instead of the old hand-rolled fixed-order wait pair.
PhaseTimes exchange_once(Proxy& p, int peer, char* sbuf, char* rbuf,
                         std::size_t bytes, sim::Time compute_time) {
  PhaseTimes t;
  const sim::Time t0 = sim::now();
  PReq reqs[2] = {p.irecv(rbuf, bytes, Datatype::kByte, peer, 0),
                  p.isend(sbuf, bytes, Datatype::kByte, peer, 0)};
  t.post = sim::now() - t0;
  if (compute_time > sim::Time::zero()) smpi::compute(compute_time);
  const sim::Time w0 = sim::now();
  while (p.waitany(reqs) >= 0) {
  }
  t.wait = sim::now() - w0;
  t.total = sim::now() - t0;
  return t;
}

}  // namespace

OverlapResult overlap_p2p(Approach a, const machine::Profile& prof,
                          std::size_t bytes, int iters, int warmup) {
  OverlapResult res;
  Cluster c(cluster_cfg(a, prof, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int peer = 1 - rc.rank();
    std::vector<char> sbuf(bytes, 'o'), rbuf(bytes);

    // Step 1: no compute — measure baseline post/wait/comm.
    sim::Time post1 = sim::Time::zero(), wait1 = sim::Time::zero(),
              comm = sim::Time::zero();
    for (int i = 0; i < warmup + iters; ++i) {
      p->barrier();
      PhaseTimes t = exchange_once(*p, peer, sbuf.data(), rbuf.data(), bytes,
                                   sim::Time::zero());
      if (i >= warmup) {
        post1 += t.post;
        wait1 += t.wait;
        comm += t.total;
      }
    }
    // Step 2: insert compute equal to the measured comm time.
    const sim::Time comp = sim::Time(comm.ns() / iters);
    sim::Time post2 = sim::Time::zero(), wait2 = sim::Time::zero();
    for (int i = 0; i < warmup + iters; ++i) {
      p->barrier();
      PhaseTimes t = exchange_once(*p, peer, sbuf.data(), rbuf.data(), bytes, comp);
      if (i >= warmup) {
        post2 += t.post;
        wait2 += t.wait;
      }
    }
    if (rc.rank() == 0) {
      const double comm_us = comm.us() / iters;
      res.comm_us = comm_us;
      res.post_frac = post2.us() / iters / comm_us;
      res.wait_frac = wait2.us() / iters / comm_us;
      res.overlap_frac =
          std::max(0.0, (wait1.us() - wait2.us()) / iters / comm_us);
    }
    report_proxy_stats(*p);
    p->stop();
  });
  report_cluster_stats(c);
  return res;
}

const char* coll_name(CollKind k) {
  switch (k) {
    case CollKind::kIbcast:
      return "Ibcast";
    case CollKind::kIreduce:
      return "Ireduce";
    case CollKind::kIallreduce:
      return "Iallreduce";
    case CollKind::kIalltoall:
      return "Ialltoall";
    case CollKind::kIallgather:
      return "Iallgather";
    case CollKind::kIbarrier:
      return "Ibarrier";
  }
  return "?";
}

namespace {

smpi::CollectiveId coll_id_of(CollKind k) {
  switch (k) {
    case CollKind::kIbcast:
      return smpi::CollectiveId::kBcast;
    case CollKind::kIreduce:
      return smpi::CollectiveId::kReduce;
    case CollKind::kIallreduce:
      return smpi::CollectiveId::kAllreduce;
    case CollKind::kIalltoall:
      return smpi::CollectiveId::kAlltoall;
    case CollKind::kIallgather:
      return smpi::CollectiveId::kAllgather;
    case CollKind::kIbarrier:
      return smpi::CollectiveId::kBarrier;
  }
  return smpi::CollectiveId::kBarrier;
}

/// Name of the algorithm rank 0 actually ran for `kind` (the schedule with
/// the highest count, in case an inner barrier shares the CollectiveId).
std::string ran_algo(Cluster& c, CollKind kind) {
  const smpi::CollStats& cs = c.rank(0).coll_stats();
  const int ci = static_cast<int>(coll_id_of(kind));
  int best = -1;
  std::uint64_t best_n = 0;
  for (int ai = 0; ai < smpi::kNumCollAlgos; ++ai) {
    if (cs.algo_count[ci][ai] > best_n) {
      best_n = cs.algo_count[ci][ai];
      best = ai;
    }
  }
  return best < 0 ? "-" : smpi::coll_algo_name(static_cast<smpi::CollAlgo>(best));
}

/// Post the chosen nonblocking collective through the proxy.
PReq post_coll(Proxy& p, CollKind k, std::size_t bytes, int nranks,
               std::vector<char>& s, std::vector<char>& r) {
  switch (k) {
    case CollKind::kIbcast:
      return p.ibcast(r.data(), bytes, Datatype::kByte, 0);
    case CollKind::kIreduce:
      return p.ireduce(s.data(), r.data(), bytes, Datatype::kByte, Op::kMax, 0);
    case CollKind::kIallreduce:
      return p.iallreduce(s.data(), r.data(), bytes, Datatype::kByte, Op::kMax);
    case CollKind::kIalltoall:
      return p.ialltoall(s.data(), r.data(), bytes / static_cast<std::size_t>(nranks),
                         Datatype::kByte);
    case CollKind::kIallgather:
      return p.iallgather(s.data(), r.data(), bytes / static_cast<std::size_t>(nranks),
                          Datatype::kByte);
    case CollKind::kIbarrier:
      return p.ibarrier();
  }
  return {};
}

}  // namespace

OverlapResult overlap_collective(Approach a, const machine::Profile& prof,
                                 CollKind kind, int nranks, std::size_t bytes,
                                 int iters, int warmup) {
  OverlapResult res;
  Cluster c(cluster_cfg(a, prof, nranks));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const std::size_t per = std::max<std::size_t>(bytes, static_cast<std::size_t>(nranks));
    std::vector<char> s(per * static_cast<std::size_t>(nranks), 'c');
    std::vector<char> r(per * static_cast<std::size_t>(nranks));

    // t_pure: post + immediately wait.
    sim::Time pure = sim::Time::zero();
    for (int i = 0; i < warmup + iters; ++i) {
      p->barrier();
      const sim::Time t0 = sim::now();
      PReq rq = post_coll(*p, kind, per, nranks, s, r);
      p->wait(rq);
      if (i >= warmup) pure += sim::now() - t0;
    }
    const sim::Time comp = sim::Time(pure.ns() / iters);
    // Overlapped: post, compute(t_pure), wait.
    sim::Time wait_ovl = sim::Time::zero(), post_ovl = sim::Time::zero();
    for (int i = 0; i < warmup + iters; ++i) {
      p->barrier();
      const sim::Time t0 = sim::now();
      PReq rq = post_coll(*p, kind, per, nranks, s, r);
      const sim::Time t1 = sim::now();
      smpi::compute(comp);
      const sim::Time w0 = sim::now();
      p->wait(rq);
      if (i >= warmup) {
        post_ovl += t1 - t0;
        wait_ovl += sim::now() - w0;
      }
    }
    if (rc.rank() == 0) {
      const double pure_us = pure.us() / iters;
      res.comm_us = pure_us;
      res.post_frac = post_ovl.us() / iters / pure_us;
      res.wait_frac = wait_ovl.us() / iters / pure_us;
      res.overlap_frac = std::max(0.0, 1.0 - res.wait_frac - res.post_frac);
    }
    report_proxy_stats(*p);
    p->stop();
  });
  res.algo = ran_algo(c, kind);
  report_cluster_stats(c);
  return res;
}

double icollective_post_us(Approach a, const machine::Profile& prof,
                           CollKind kind, int nranks, std::size_t bytes,
                           int iters, int warmup, std::string* algo_out) {
  double post_us = 0;
  Cluster c(cluster_cfg(a, prof, nranks));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const std::size_t per = std::max<std::size_t>(bytes, static_cast<std::size_t>(nranks));
    std::vector<char> s(per * static_cast<std::size_t>(nranks), 'p');
    std::vector<char> r(per * static_cast<std::size_t>(nranks));
    sim::Time post = sim::Time::zero();
    for (int i = 0; i < warmup + iters; ++i) {
      p->barrier();
      const sim::Time t0 = sim::now();
      PReq rq = post_coll(*p, kind, per, nranks, s, r);
      const sim::Time t1 = sim::now();
      p->wait(rq);
      if (i >= warmup) post += t1 - t0;
    }
    if (rc.rank() == 0) post_us = post.us() / iters;
    report_proxy_stats(*p);
    p->stop();
  });
  if (algo_out != nullptr) *algo_out = ran_algo(c, kind);
  report_cluster_stats(c);
  return post_us;
}

}  // namespace benchlib
