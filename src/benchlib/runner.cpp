#include "benchlib/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/proxy.hpp"
#include "mpi/cluster.hpp"
#include "san/san.hpp"
#include "trace/scope.hpp"
#include "trace/tracer.hpp"
#include "util/env.hpp"

namespace benchlib {

namespace {

bool g_stats_enabled = false;
Runner* g_active_runner = nullptr;

[[noreturn]] void usage_and_exit(const char* argv0, const char* bad) {
  std::fprintf(stderr, "unknown/incomplete option: %s\n", bad);
  std::fprintf(stderr,
               "usage: %s [--trace <file>] [--csv <file>] [--stats]\n"
               "  env: MPIOFF_TRACE=<file>  MPIOFF_STATS=1\n",
               argv0);
  std::exit(2);
}

}  // namespace

Runner::Runner(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--trace") == 0) {
      if (i + 1 >= argc) usage_and_exit(argv[0], a);
      trace_path_ = argv[++i];
    } else if (std::strcmp(a, "--csv") == 0) {
      if (i + 1 >= argc) usage_and_exit(argv[0], a);
      csv_path_ = argv[++i];
    } else if (std::strcmp(a, "--stats") == 0) {
      g_stats_enabled = true;
    } else {
      usage_and_exit(argv[0], a);
    }
  }
  if (trace_path_.empty()) trace_path_ = env_util::get_or("MPIOFF_TRACE");
  if (!g_stats_enabled) {
    const std::string e = env_util::get_or("MPIOFF_STATS");
    if (!e.empty() && e != "0") g_stats_enabled = true;
  }
  if (!trace_path_.empty()) trace::Tracer::set_enabled(true);
  g_active_runner = this;
}

Runner::~Runner() {
  if (g_active_runner == this) g_active_runner = nullptr;
  if (trace_path_.empty()) return;
  trace::Tracer& tr = trace::Tracer::instance();
  trace::Tracer::set_enabled(false);
  if (tr.write_file(trace_path_)) {
    std::fprintf(stderr, "[trace] wrote %zu events (%zu dropped) to %s\n",
                 tr.events().size(), tr.dropped(), trace_path_.c_str());
  } else {
    std::fprintf(stderr, "[trace] FAILED to write %s\n", trace_path_.c_str());
  }
}

void Runner::finish(const Table& t) {
  t.print();
  if (csv_path_.empty()) return;
  std::ofstream f(csv_path_, csv_started_ ? (std::ios::out | std::ios::app)
                                          : (std::ios::out | std::ios::trunc));
  if (!f) {
    std::fprintf(stderr, "[csv] cannot open %s\n", csv_path_.c_str());
    return;
  }
  if (csv_started_) f << '\n';  // blank line between successive tables
  t.print_csv(f);
  csv_started_ = true;
}

bool Runner::stats_enabled() { return g_stats_enabled; }
void Runner::set_stats_enabled(bool on) { g_stats_enabled = on; }

bool Runner::smoke_enabled() {
  static const bool on = [] {
    const std::string e = env_util::get_or("MPIOFF_BENCH_SMOKE");
    return !e.empty() && e != "0";
  }();
  return on;
}

Runner* Runner::active() { return g_active_runner; }

void finish_table(const Table& t) {
  if (g_active_runner != nullptr) {
    g_active_runner->finish(t);
  } else {
    t.print();
  }
}

void report_proxy_stats(core::Proxy& p) {
  if (!g_stats_enabled) return;
  auto* op = dynamic_cast<core::OffloadProxy*>(&p);
  if (op == nullptr) return;
  const core::OffloadStats& s = op->channel().stats();
  const int rank = p.rank_ctx().rank();
  if (trace::Tracer::on()) {
    const std::int64_t ts = trace::ambient_ts();
    trace::Tracer& tr = trace::Tracer::instance();
    tr.counter(ts, rank, "offload.commands", static_cast<double>(s.commands));
    tr.counter(ts, rank, "offload.testany_calls",
               static_cast<double>(s.testany_calls));
    tr.counter(ts, rank, "offload.completions",
               static_cast<double>(s.completions));
    tr.counter(ts, rank, "offload.ring_full_stalls",
               static_cast<double>(s.ring_full_stalls));
    tr.counter(ts, rank, "offload.pool_full_stalls",
               static_cast<double>(s.pool_full_stalls));
    tr.counter(ts, rank, "offload.watchdog_flags",
               static_cast<double>(s.watchdog_flags));
    tr.counter(ts, rank, "offload.lane_submits",
               static_cast<double>(s.lane_submits));
    tr.counter(ts, rank, "offload.shared_submits",
               static_cast<double>(s.shared_submits));
    tr.counter(ts, rank, "offload.overflow_submits",
               static_cast<double>(s.overflow_submits));
    tr.counter(ts, rank, "offload.steal_commands",
               static_cast<double>(s.steal_commands));
    tr.counter(ts, rank, "offload.batches", static_cast<double>(s.batches));
    tr.counter(ts, rank, "offload.lane_full_stalls",
               static_cast<double>(s.lane_full_stalls));
    tr.counter(ts, rank, "offload.cont_executed",
               static_cast<double>(s.cont_executed));
    tr.counter(ts, rank, "offload.cont_deferred",
               static_cast<double>(s.cont_deferred));
  }
  if (rank == 0) {
    std::printf(
        "[stats] offload rank0: commands=%llu testany=%llu completions=%llu "
        "max_inflight=%llu ring_full_stalls=%llu pool_full_stalls=%llu "
        "watchdog_flags=%llu\n",
        static_cast<unsigned long long>(s.commands),
        static_cast<unsigned long long>(s.testany_calls),
        static_cast<unsigned long long>(s.completions),
        static_cast<unsigned long long>(s.max_inflight),
        static_cast<unsigned long long>(s.ring_full_stalls),
        static_cast<unsigned long long>(s.pool_full_stalls),
        static_cast<unsigned long long>(s.watchdog_flags));
    // overflow_submits is deliberately NOT folded into the per-lane numbers:
    // lane-table overflow falling back to the shared ring used to inflate
    // per-lane throughput in this trailer.
    std::printf(
        "[stats] offload rank0 frontend: engines=%zu lanes=%zu "
        "lane_submits=%llu shared_submits=%llu overflow_submits=%llu "
        "batches=%llu batched=%llu lane_full_stalls=%llu "
        "spins=%llu yields=%llu sleeps=%llu\n",
        op->channel().engine_count(), op->channel().lane_count(),
        static_cast<unsigned long long>(s.lane_submits),
        static_cast<unsigned long long>(s.shared_submits),
        static_cast<unsigned long long>(s.overflow_submits),
        static_cast<unsigned long long>(s.batches),
        static_cast<unsigned long long>(s.batched_commands),
        static_cast<unsigned long long>(s.lane_full_stalls),
        static_cast<unsigned long long>(s.engine_spins),
        static_cast<unsigned long long>(s.engine_yields),
        static_cast<unsigned long long>(s.engine_sleeps));
    if (s.steal_rounds + s.steal_commands != 0) {
      std::printf(
          "[stats] offload rank0 steal: steal_rounds=%llu "
          "steal_commands=%llu\n",
          static_cast<unsigned long long>(s.steal_rounds),
          static_cast<unsigned long long>(s.steal_commands));
    }
    // Continuation summary (only when callbacks were armed, so benchmarks
    // that never chain keep their legacy output).
    if (s.cont_armed + s.cont_inline + s.cont_posts != 0) {
      std::printf(
          "[stats] offload rank0 cont: armed=%llu executed=%llu "
          "deferred=%llu inline=%llu posts=%llu\n",
          static_cast<unsigned long long>(s.cont_armed),
          static_cast<unsigned long long>(s.cont_executed),
          static_cast<unsigned long long>(s.cont_deferred),
          static_cast<unsigned long long>(s.cont_inline),
          static_cast<unsigned long long>(s.cont_posts));
    }
    for (std::size_t i = 0; i < op->channel().lane_count(); ++i) {
      const core::LaneStats& ls = op->channel().lane_stats(i);
      if (ls.submits == 0) continue;  // unbound lane: nothing to report
      std::printf(
          "[stats] offload rank0 lane%zu: submits=%llu drained=%llu "
          "batches=%llu batched=%llu max_occ=%llu full_stalls=%llu\n",
          i, static_cast<unsigned long long>(ls.submits),
          static_cast<unsigned long long>(ls.drained),
          static_cast<unsigned long long>(ls.batches),
          static_cast<unsigned long long>(ls.batched_commands),
          static_cast<unsigned long long>(ls.max_occupancy),
          static_cast<unsigned long long>(ls.full_stalls));
    }
  }
}

void report_cluster_stats(smpi::Cluster& c) {
  if (!g_stats_enabled) return;
  const sim::EngineStats& s = c.engine().stats();
  if (trace::Tracer::on()) {
    const std::int64_t ts = c.engine().now().ns();
    trace::Tracer& tr = trace::Tracer::instance();
    tr.counter(ts, 0, "engine.events_fired",
               static_cast<double>(s.events_fired));
    tr.counter(ts, 0, "engine.fibers_spawned",
               static_cast<double>(s.fibers_spawned));
    tr.counter(ts, 0, "engine.context_switches",
               static_cast<double>(s.context_switches));
  }
  std::printf(
      "[stats] engine: events=%llu fibers=%llu ctx_switches=%llu "
      "end=%.3fus\n",
      static_cast<unsigned long long>(s.events_fired),
      static_cast<unsigned long long>(s.fibers_spawned),
      static_cast<unsigned long long>(s.context_switches),
      c.engine().now().us());
  // Collective-algorithm summary (only when collectives actually ran, so
  // benchmarks that never enter a collective keep their legacy output).
  {
    const smpi::CollStats& cs = c.rank(0).coll_stats();
    bool any = false;
    for (const auto& per_coll : cs.algo_count) {
      for (const std::uint64_t n : per_coll) {
        if (n != 0) any = true;
      }
    }
    if (any) {
      std::printf("[stats] coll rank0:");
      for (int ci = 0; ci < smpi::kNumCollectiveIds; ++ci) {
        for (int ai = 0; ai < smpi::kNumCollAlgos; ++ai) {
          const std::uint64_t n = cs.algo_count[ci][ai];
          if (n == 0) continue;
          std::printf(" %s=%s:%llu",
                      smpi::coll_name(static_cast<smpi::CollectiveId>(ci)),
                      smpi::coll_algo_name(static_cast<smpi::CollAlgo>(ai)),
                      static_cast<unsigned long long>(n));
        }
      }
      std::printf("\n");
      const double avg_us =
          cs.chunks == 0 ? 0.0 : cs.chunk_time.us() / static_cast<double>(cs.chunks);
      std::printf(
          "[stats] coll rank0 chunks: chunks=%llu avg_chunk_us=%.3f "
          "doorbells_amortized=%llu\n",
          static_cast<unsigned long long>(cs.chunks), avg_us,
          static_cast<unsigned long long>(cs.doorbells_amortized));
      if (trace::Tracer::on()) {
        const std::int64_t ts = c.engine().now().ns();
        trace::Tracer& tr = trace::Tracer::instance();
        tr.counter(ts, 0, "coll.chunks", static_cast<double>(cs.chunks));
        tr.counter(ts, 0, "coll.doorbells_amortized",
                   static_cast<double>(cs.doorbells_amortized));
      }
    }
  }
  // Fault-injection + wire-reliability summary (only when a plan is active,
  // so fault-free output stays byte-identical to a fault-free build).
  if (const machine::FaultPlan* fp = c.network().faults()) {
    const machine::FaultPlan::Stats& f = fp->stats();
    smpi::RelStats rel;
    for (int r = 0; r < c.nranks(); ++r) {
      const smpi::RelStats& rs = c.rank(r).rel_stats();
      rel.frames_sent += rs.frames_sent;
      rel.retransmits += rs.retransmits;
      rel.acks_sent += rs.acks_sent;
      rel.dup_drops += rs.dup_drops;
      rel.ooo_drops += rs.ooo_drops;
      rel.corrupt_drops += rs.corrupt_drops;
    }
    std::printf(
        "[stats] faults: injected drop=%llu dup=%llu corrupt=%llu "
        "delay=%llu reorder=%llu stalls=%llu stall_ns=%lld\n",
        static_cast<unsigned long long>(f.dropped),
        static_cast<unsigned long long>(f.duplicated),
        static_cast<unsigned long long>(f.corrupted),
        static_cast<unsigned long long>(f.delayed),
        static_cast<unsigned long long>(f.reordered),
        static_cast<unsigned long long>(f.egress_stalls + f.ingress_stalls),
        static_cast<long long>(f.stall_time.ns()));
    std::printf(
        "[stats] wire: frames=%llu retransmits=%llu acks=%llu "
        "dup_drops=%llu ooo_drops=%llu corrupt_drops=%llu\n",
        static_cast<unsigned long long>(rel.frames_sent),
        static_cast<unsigned long long>(rel.retransmits),
        static_cast<unsigned long long>(rel.acks_sent),
        static_cast<unsigned long long>(rel.dup_drops),
        static_cast<unsigned long long>(rel.ooo_drops),
        static_cast<unsigned long long>(rel.corrupt_drops));
  }
  // Sanitizer summary (only when a session is active, so sanitizer-off runs
  // stay byte-identical to a pre-sanitizer build).
  if (san::on()) {
    const san::Stats& ss = san::stats();
    std::printf(
        "[stats] san: reports=%llu race_checks=%llu sync_edges=%llu "
        "buffer_regs=%llu checksums=%llu\n",
        static_cast<unsigned long long>(ss.reports),
        static_cast<unsigned long long>(ss.race_checks),
        static_cast<unsigned long long>(ss.sync_edges),
        static_cast<unsigned long long>(ss.buffer_regs),
        static_cast<unsigned long long>(ss.checksums));
  }
}

}  // namespace benchlib
