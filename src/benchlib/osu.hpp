// Reimplementations of the OSU microbenchmark kernels on SimMPI, driven
// through the approach proxies (paper Section 4.2, 4.4, 4.5).
#pragma once

#include <cstddef>

#include "core/proxy.hpp"
#include "machine/profile.hpp"

namespace benchlib {

struct OsuResult {
  double latency_us = 0;      ///< one-way latency
  double bandwidth_mbps = 0;  ///< MB/s (bandwidth test only)
  double post_us = 0;         ///< mean time in the nonblocking post call
};

/// OSU latency: ping-pong between 2 ranks; returns one-way latency and the
/// mean MPI_Isend issue time (the paper's Fig. 4 quantity).
OsuResult osu_latency(core::Approach a, const machine::Profile& prof,
                      std::size_t bytes, int iters = 40, int warmup = 5);

/// OSU bandwidth: rank 0 streams a window of nonblocking sends, rank 1
/// acknowledges the window; returns MB/s.
OsuResult osu_bandwidth(core::Approach a, const machine::Profile& prof,
                        std::size_t bytes, int window = 64, int iters = 8);

/// OSU multithreaded latency: `threads` thread-pairs ping-pong concurrently
/// (paper Fig. 6). baseline/comm-self run the MPI library at THREAD_MULTIPLE;
/// offload keeps FUNNELED because only its engine enters MPI.
OsuResult osu_latency_mt(core::Approach a, const machine::Profile& prof,
                         int threads, std::size_t bytes, int iters = 30,
                         int warmup = 5);

}  // namespace benchlib
