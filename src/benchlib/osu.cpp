#include "benchlib/osu.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "benchlib/runner.hpp"
#include "mpi/cluster.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

namespace benchlib {

using namespace smpi;
using core::Approach;
using core::PReq;

namespace {

ClusterConfig cluster_cfg(Approach a, const machine::Profile& prof, int nranks,
                          bool force_multiple = false) {
  ClusterConfig c;
  c.nranks = nranks;
  c.profile = prof;
  c.thread_level = force_multiple ? ThreadLevel::kMultiple
                                  : core::required_thread_level(a);
  c.deadline = sim::Time::from_sec(600);
  return c;
}

}  // namespace

OsuResult osu_latency(Approach a, const machine::Profile& prof,
                      std::size_t bytes, int iters, int warmup) {
  OsuResult res;
  Cluster c(cluster_cfg(a, prof, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    std::vector<char> sbuf(std::max<std::size_t>(bytes, 1), 'a');
    std::vector<char> rbuf(std::max<std::size_t>(bytes, 1));
    const int me = rc.rank(), peer = 1 - me;
    sim::Time t_start, post_acc = sim::Time::zero();
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup) {
        p->barrier();
        t_start = sim::now();
      }
      if (me == 0) {
        const sim::Time p0 = sim::now();
        PReq s = p->isend(sbuf.data(), bytes, Datatype::kByte, peer, 1);
        if (i >= warmup) post_acc += sim::now() - p0;
        p->wait(s);
        p->recv(rbuf.data(), bytes, Datatype::kByte, peer, 1);
      } else {
        p->recv(rbuf.data(), bytes, Datatype::kByte, peer, 1);
        const sim::Time p0 = sim::now();
        PReq s = p->isend(sbuf.data(), bytes, Datatype::kByte, peer, 1);
        if (i >= warmup) post_acc += sim::now() - p0;
        p->wait(s);
      }
    }
    if (me == 0) {
      const double total_us = (sim::now() - t_start).us();
      res.latency_us = total_us / (2.0 * iters);
      res.post_us = post_acc.us() / iters;
    }
    report_proxy_stats(*p);
    p->stop();
  });
  report_cluster_stats(c);
  return res;
}

OsuResult osu_bandwidth(Approach a, const machine::Profile& prof,
                        std::size_t bytes, int window, int iters) {
  OsuResult res;
  Cluster c(cluster_cfg(a, prof, 2));
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), peer = 1 - me;
    std::vector<char> buf(bytes * static_cast<std::size_t>(window), 'b');
    char ack = 0;
    p->barrier();
    const sim::Time t0 = sim::now();
    for (int it = 0; it < iters; ++it) {
      std::vector<PReq> reqs;
      reqs.reserve(static_cast<std::size_t>(window));
      if (me == 0) {
        for (int w = 0; w < window; ++w) {
          reqs.push_back(p->isend(buf.data() + static_cast<std::size_t>(w) * bytes,
                                  bytes, Datatype::kByte, peer, w));
        }
        p->waitall(reqs);
        p->recv(&ack, 1, Datatype::kByte, peer, 999);
      } else {
        for (int w = 0; w < window; ++w) {
          reqs.push_back(p->irecv(buf.data() + static_cast<std::size_t>(w) * bytes,
                                  bytes, Datatype::kByte, peer, w));
        }
        p->waitall(reqs);
        p->send(&ack, 1, Datatype::kByte, peer, 999);
      }
    }
    if (me == 0) {
      const double secs = (sim::now() - t0).sec();
      res.bandwidth_mbps = static_cast<double>(bytes) * window * iters / secs / 1e6;
    }
    report_proxy_stats(*p);
    p->stop();
  });
  report_cluster_stats(c);
  return res;
}

OsuResult osu_latency_mt(Approach a, const machine::Profile& prof, int threads,
                         std::size_t bytes, int iters, int warmup) {
  OsuResult res;
  // baseline/iprobe/comm-self expose the application's concurrent calls to
  // the MPI library (THREAD_MULTIPLE); offload keeps the library FUNNELED.
  const bool multiple = a != Approach::kOffload;
  Cluster c(cluster_cfg(a, prof, 2, multiple));
  sim::Stats lat_us;
  c.run([&](RankCtx& rc) {
    auto p = core::make_proxy(a, rc);
    p->start_engine();
    const int me = rc.rank(), peer = 1 - me;
    // Per-thread completion accounting on rank 0.
    auto done_count = std::make_shared<int>(0);
    auto done_n = std::make_shared<sim::Notifier>(sim::Time::from_us(1));
    auto run_pair = [&, done_count, done_n](int tid) {
      std::vector<char> sbuf(std::max<std::size_t>(bytes, 1), 's');
      std::vector<char> rbuf(std::max<std::size_t>(bytes, 1));
      sim::Time t_start;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t_start = sim::now();
        if (me == 0) {
          p->send(sbuf.data(), bytes, Datatype::kByte, peer, tid);
          p->recv(rbuf.data(), bytes, Datatype::kByte, peer, tid);
        } else {
          p->recv(rbuf.data(), bytes, Datatype::kByte, peer, tid);
          p->send(sbuf.data(), bytes, Datatype::kByte, peer, tid);
        }
      }
      if (me == 0) {
        lat_us.add((sim::now() - t_start).us() / (2.0 * iters));
      }
      ++*done_count;
      done_n->signal();
    };
    for (int t = 1; t < threads; ++t) {
      rc.cluster().spawn_on(rc.rank(), "mt" + std::to_string(t),
                            [run_pair, t]() { run_pair(t); });
    }
    run_pair(0);
    // Sleep on the thread-exit notifier instead of spinning the clock.
    for (std::uint64_t seen = 0; *done_count < threads;) {
      seen = done_n->wait_beyond(seen);
    }
    p->barrier();
    report_proxy_stats(*p);
    p->stop();
  });
  report_cluster_stats(c);
  res.latency_us = lat_us.mean();
  return res;
}

}  // namespace benchlib
