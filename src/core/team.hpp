// Team — an OpenMP-style persistent thread team for one rank.
//
// Models the `#pragma omp parallel` regions of Listing 1: `nthreads` fibers
// (the calling fiber is thread 0, the "master") execute a body in lockstep
// regions separated by team barriers. Workers are persistent across regions
// so large iteration counts do not accumulate fiber stacks.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"
#include "sim/sync.hpp"

namespace core {

class Team {
 public:
  /// Spawns nthreads-1 persistent worker fibers on `rc`'s rank.
  Team(smpi::RankCtx& rc, int nthreads,
       sim::Time barrier_entry_cost = sim::Time::from_ns(150))
      : rc_(rc),
        nthreads_(nthreads),
        barrier_(nthreads, barrier_entry_cost) {
    if (nthreads < 1) throw std::invalid_argument("Team needs >= 1 thread");
    workers_done_ = 0;
    for (int t = 1; t < nthreads; ++t) {
      rc.cluster().spawn_on(
          rc.rank(),
          "rank" + std::to_string(rc.rank()) + ".omp" + std::to_string(t),
          [this, t]() { worker_loop(t); });
    }
  }

  ~Team() {
    if (!stopped_) shutdown();
  }

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  [[nodiscard]] int nthreads() const { return nthreads_; }

  /// Run `body(tid)` on every team thread; the caller participates as tid 0.
  /// Returns when all threads have finished the region.
  void parallel(const std::function<void(int)>& body) {
    if (stopped_) throw std::logic_error("Team already shut down");
    body_ = &body;
    ++region_;
    work_avail_.signal();
    body(0);
    // Join: wait for all workers to report region completion.
    while (workers_finished_ != nthreads_ - 1) {
      const std::uint64_t seen = region_done_.count();
      if (workers_finished_ == nthreads_ - 1) break;
      region_done_.wait_beyond(seen);
    }
    workers_finished_ = 0;
    body_ = nullptr;
  }

  /// Team barrier usable inside a parallel region.
  void barrier() { barrier_.arrive_and_wait(); }

  /// Terminate the worker fibers (called automatically by the destructor).
  void shutdown() {
    stopped_ = true;
    ++region_;
    work_avail_.signal();
    while (workers_done_ != nthreads_ - 1) {
      const std::uint64_t seen = worker_exit_.count();
      if (workers_done_ == nthreads_ - 1) break;
      worker_exit_.wait_beyond(seen);
    }
  }

 private:
  void worker_loop(int tid) {
    std::uint64_t my_region = 0;
    for (;;) {
      while (region_ == my_region) {
        const std::uint64_t seen = work_avail_.count();
        if (region_ != my_region) break;
        work_avail_.wait_beyond(seen);
      }
      my_region = region_;
      if (stopped_) break;
      (*body_)(tid);
      ++workers_finished_;
      region_done_.signal();
    }
    ++workers_done_;
    worker_exit_.signal();
  }

  smpi::RankCtx& rc_;
  int nthreads_;
  sim::Barrier barrier_;
  const std::function<void(int)>* body_ = nullptr;
  std::uint64_t region_ = 0;
  int workers_finished_ = 0;
  int workers_done_ = 0;
  bool stopped_ = false;
  sim::Notifier work_avail_{sim::Time::from_ns(60)};
  sim::Notifier region_done_{sim::Time::from_ns(60)};
  sim::Notifier worker_exit_{sim::Time::from_ns(60)};
};

}  // namespace core
