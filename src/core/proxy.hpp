// Proxy — one interface, four communication approaches (paper Sections 2-3).
//
// Applications and benchmarks are written once against Proxy; selecting the
// approach at run time reproduces the paper's property that no application
// change is needed (the paper uses LD_PRELOAD interposition; we own the MPI
// library, so a vtable stands in for the PLT).
//
//   baseline  — direct MPI calls from the application thread(s).
//   iprobe    — baseline + progress_hint() mapped to MPI_Iprobe (the
//               PROGRESS macro of Listing 1).
//   comm-self — spawns a progress thread blocked in MPI_Recv on a duplicated
//               COMM_SELF; requires MPI_THREAD_MULTIPLE.
//   offload   — the paper's contribution: all calls serialized to the
//               dedicated offload thread via the lock-free command ring.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/offload_engine.hpp"
#include "mpi/rank_ctx.hpp"
#include "mpi/types.hpp"

namespace core {

/// Approach selector.
enum class Approach : std::uint8_t {
  kBaseline,
  kIprobe,
  kCommSelf,
  kOffload,
};

const char* approach_name(Approach a);
/// Parse "baseline" / "iprobe" / "commself" / "offload".
Approach approach_from_string(const std::string& s);
/// Thread level the underlying MPI must be initialized with.
smpi::ThreadLevel required_thread_level(Approach a);

/// Proxy-level request handle. Meaning is proxy-specific (real smpi request
/// index for direct proxies; RequestPool slot + 1 for offload). Zero is the
/// null handle for every proxy — a default-constructed PReq is null, and
/// completion calls null handles they release, so waiting twice is safe.
struct PReq {
  std::uint64_t v = 0;
  [[nodiscard]] bool is_null() const { return v == 0; }
};

/// Persistent (init-once/start-many) request handle. Unlike PReq, completion
/// calls do NOT consume it: wait/test return it to the inactive state, ready
/// for the next start(); only request_free() retires it. Meaning is
/// proxy-specific (base PersistentOp-table index + 1 for the direct
/// approaches, OffloadChannel persistent-slot index + 1 for offload); zero is
/// the null handle everywhere.
struct PersistentReq {
  std::uint64_t v = 0;
  [[nodiscard]] bool is_null() const { return v == 0; }
};

/// One operation of a batched nonblocking post (Proxy::post_batch). Only
/// point-to-point ops batch: that is the halo-exchange shape the batching
/// path exists for (N posts -> one lane publish + one doorbell). A
/// kStartPersistent entry re-arms an initialized persistent request in the
/// same group; its `out` slot stays null (the persistent handle itself is
/// how the caller waits).
struct BatchOp {
  CmdOp op = CmdOp::kIsend;  ///< kIsend, kIrecv, or kStartPersistent
  const void* sbuf = nullptr;
  void* rbuf = nullptr;
  std::size_t count = 0;
  smpi::Datatype dtype = smpi::Datatype::kByte;
  int peer = -1;
  int tag = 0;
  smpi::Comm comm = smpi::kCommWorld;
  std::uint64_t persist = 0;  ///< PersistentReq::v for kStartPersistent

  static BatchOp isend(const void* b, std::size_t n, smpi::Datatype dt,
                       int dst, int tag, smpi::Comm c = smpi::kCommWorld) {
    BatchOp o;
    o.op = CmdOp::kIsend;
    o.sbuf = b;
    o.count = n;
    o.dtype = dt;
    o.peer = dst;
    o.tag = tag;
    o.comm = c;
    return o;
  }
  static BatchOp irecv(void* b, std::size_t n, smpi::Datatype dt, int src,
                       int tag, smpi::Comm c = smpi::kCommWorld) {
    BatchOp o;
    o.op = CmdOp::kIrecv;
    o.rbuf = b;
    o.count = n;
    o.dtype = dt;
    o.peer = src;
    o.tag = tag;
    o.comm = c;
    return o;
  }
  static BatchOp start(PersistentReq r) {
    BatchOp o;
    o.op = CmdOp::kStartPersistent;
    o.persist = r.v;
    return o;
  }
};

class Proxy {
 public:
  explicit Proxy(smpi::RankCtx& rc) : rc_(rc) {}
  virtual ~Proxy() = default;

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  [[nodiscard]] smpi::RankCtx& rank_ctx() { return rc_; }
  [[nodiscard]] virtual Approach approach() const = 0;

  /// Spawn helper threads (comm-self progress thread / offload engine).
  /// (The old `start()` alias is gone: start(PersistentReq&) begins a
  /// persistent generation, start_engine() starts helper threads.)
  virtual void start_engine() {}
  /// Drain and join helper threads. Must be called before the rank exits.
  virtual void stop() {}

  // ---- point-to-point ----
  virtual PReq isend(const void* b, std::size_t n, smpi::Datatype dt, int dst,
                     int tag, smpi::Comm c = smpi::kCommWorld) = 0;
  virtual PReq irecv(void* b, std::size_t n, smpi::Datatype dt, int src,
                     int tag, smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void send(const void* b, std::size_t n, smpi::Datatype dt, int dst,
                    int tag, smpi::Comm c = smpi::kCommWorld);
  virtual void recv(void* b, std::size_t n, smpi::Datatype dt, int src, int tag,
                    smpi::Comm c = smpi::kCommWorld, smpi::Status* st = nullptr);

  /// Post a group of nonblocking point-to-point operations; `out[i]`
  /// receives the request for `ops[i]` (spans must be the same length). The
  /// default posts one at a time; the offload proxy serializes whole chunks
  /// into its submission lane with one publish and one doorbell each
  /// (ProxyOptions::batch_flush commands per chunk).
  virtual void post_batch(std::span<const BatchOp> ops, std::span<PReq> out);

  // ---- persistent & partitioned point-to-point (MPI-4 style) ----
  // init-once/start-many: the envelope is registered once, then each
  // generation cycles start -> complete -> (restart | free). Completion
  // calls return the handle to the inactive state instead of consuming it.
  // Partitioned variants split the buffer into `partitions` contiguous byte
  // slices; pready(p), callable from ANY compute fiber, publishes slice p as
  // ready so it can ship while sibling slices are still being computed —
  // under the offload approach the engines poll a per-partition ready word
  // and issue early partitions without the sender ever entering MPI.
  //
  // The base implementations serve the direct approaches (the caller's
  // thread enters MPI itself: pready ships its partition immediately);
  // OffloadProxy overrides everything onto its channel.

  virtual PersistentReq send_init(const void* b, std::size_t n,
                                  smpi::Datatype dt, int dst, int tag,
                                  smpi::Comm c = smpi::kCommWorld);
  virtual PersistentReq recv_init(void* b, std::size_t n, smpi::Datatype dt,
                                  int src, int tag,
                                  smpi::Comm c = smpi::kCommWorld);
  /// Partitioned send: `partitions` contiguous byte slices of the buffer
  /// (1..kMaxPartitions; tag < kMaxPartBaseTag). Every generation must mark
  /// each partition ready exactly once via pready.
  virtual PersistentReq psend_init(const void* b, std::size_t n,
                                   smpi::Datatype dt, int dst, int tag,
                                   std::uint32_t partitions,
                                   smpi::Comm c = smpi::kCommWorld);
  /// Partitioned receive: posts all partitions at start().
  virtual PersistentReq precv_init(void* b, std::size_t n, smpi::Datatype dt,
                                   int src, int tag, std::uint32_t partitions,
                                   smpi::Comm c = smpi::kCommWorld);
  /// Begin one generation. Throws std::logic_error when the previous
  /// generation's completion has not been consumed or the request was freed.
  virtual void start(PersistentReq& r);
  /// start() every handle in `rs`; an empty span is a no-op.
  virtual void startall(std::span<PersistentReq> rs);
  /// Mark partition `p` of a started partitioned send ready. Throws on
  /// double-mark, on an inactive generation, or on a non-partitioned handle.
  virtual void pready(PersistentReq& r, std::uint32_t p);
  /// pready for every partition in [lo, hi].
  virtual void pready_range(PersistentReq& r, std::uint32_t lo,
                            std::uint32_t hi);
  /// Block until the current generation completes; the handle returns to
  /// the inactive state (NOT nulled — start it again or free it). Trivially
  /// complete with an empty Status when no generation is active. Throws when
  /// a partitioned send still has unmarked partitions.
  virtual void wait(PersistentReq& r, smpi::Status* st = nullptr);
  /// Nonblocking wait(PersistentReq&). A partitioned send with unmarked
  /// partitions reports false (it can never complete yet).
  virtual bool test(PersistentReq& r, smpi::Status* st = nullptr);
  /// Retire the request (requires no generation in flight); nulls `r`.
  virtual void request_free(PersistentReq& r);
  /// Bind `fn` to the CURRENT generation's completion. The handle is NOT
  /// consumed: the callback observes the request back in the inactive state
  /// and may start() the next generation from inside itself.
  virtual void attach_continuation(PersistentReq& r, ContFn fn);

  // ---- completion ----
  virtual void wait(PReq& r, smpi::Status* st = nullptr) = 0;
  virtual bool test(PReq& r, smpi::Status* st = nullptr) = 0;
  virtual void waitall(std::span<PReq> rs);
  /// MPI_Waitany: block until some active request completes, release it,
  /// null its entry, and return its index; -1 when every entry is null.
  virtual int waitany(std::span<PReq> rs, smpi::Status* st = nullptr) = 0;
  /// MPI_Testall: true iff every active request has completed — then all are
  /// released and nulled; otherwise none are (and true for an all-null span).
  virtual bool testall(std::span<PReq> rs) = 0;

  // ---- continuations (mpi/continuation.hpp wraps these in `.then()`) ----

  /// Bind `fn` to run exactly once when `r` completes, consuming the handle
  /// (it is nulled; do not wait on it afterwards). Who runs the callback is
  /// approach-specific: the offload engine fiber for kOffload, the progress
  /// path (test/progress_hint/cont_wait pumps) for the direct approaches. A
  /// null handle is the released-request case and runs `fn` inline with an
  /// empty Status — attaching twice is as safe as waiting twice. Callbacks
  /// may post follow-ups and attach further continuations but must never
  /// block.
  virtual void attach_continuation(PReq& r, ContFn fn) = 0;

  /// Block until `done()` returns true, driving whatever machinery runs this
  /// proxy's continuations in the meantime. The standard pattern is an
  /// Event/flag that the tail continuation of a graph sets.
  virtual void cont_wait(const std::function<bool()>& done) = 0;

  // ---- collectives ----
  virtual void barrier(smpi::Comm c = smpi::kCommWorld);
  virtual PReq ibarrier(smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void bcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                     smpi::Comm c = smpi::kCommWorld);
  virtual PReq ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                      smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void reduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                      smpi::Op op, int root, smpi::Comm c = smpi::kCommWorld);
  virtual PReq ireduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                       smpi::Op op, int root, smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void allreduce(const void* s, void* r, std::size_t n,
                         smpi::Datatype dt, smpi::Op op,
                         smpi::Comm c = smpi::kCommWorld);
  virtual PReq iallreduce(const void* s, void* r, std::size_t n,
                          smpi::Datatype dt, smpi::Op op,
                          smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void alltoall(const void* s, void* r, std::size_t n_per,
                        smpi::Datatype dt, smpi::Comm c = smpi::kCommWorld);
  virtual PReq ialltoall(const void* s, void* r, std::size_t n_per,
                         smpi::Datatype dt, smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void allgather(const void* s, void* r, std::size_t n_per,
                         smpi::Datatype dt, smpi::Comm c = smpi::kCommWorld);
  virtual PReq iallgather(const void* s, void* r, std::size_t n_per,
                          smpi::Datatype dt, smpi::Comm c = smpi::kCommWorld) = 0;

  // ---- one-sided (RMA) ----
  virtual smpi::Win win_create(void* base, std::size_t bytes,
                               smpi::Comm c = smpi::kCommWorld);
  virtual void win_free(smpi::Win w);
  virtual void put(const void* origin, std::size_t bytes, int target,
                   std::size_t target_offset, smpi::Win w);
  virtual void get(void* origin, std::size_t bytes, int target,
                   std::size_t target_offset, smpi::Win w);
  virtual void fence(smpi::Win w);

  /// Hook the application sprinkles into compute loops (Listing 1's
  /// PROGRESS). No-op except for the iprobe approach.
  virtual void progress_hint() {}

  /// Number of threads left for application compute out of `cores`
  /// (approaches with a dedicated communication thread consume one).
  [[nodiscard]] virtual int compute_threads(int cores) const { return cores; }

  /// Requests still live inside the proxy's own bookkeeping (0 for the
  /// direct approaches, which hand out raw smpi requests). The differential
  /// conformance suite asserts this drains to zero at teardown.
  [[nodiscard]] virtual std::size_t inflight() const { return 0; }

 protected:
  /// Generic persistent request record for the direct approaches: one (or
  /// one-per-partition) rc_-level persistent MPI request. unique_ptr: stable
  /// addresses (continuation callbacks capture the record), never reused.
  struct PersistentOp {
    PState state = PState::kInactive;
    bool is_send = false;
    std::uint32_t partitions = 0;  ///< 0 = plain persistent
    int peer = -1;
    int tag = 0;                   ///< base tag (partition tags derive)
    std::uint64_t bytes = 0;       ///< whole-message size (Status synth)
    smpi::Request req{};           ///< plain: the one rc_ request
    std::vector<smpi::Request> parts;      ///< partitioned: per partition
    std::vector<bool> part_started;        ///< this generation's pready marks
    std::uint32_t started_parts = 0;       ///< count of marks this generation
  };
  /// Look up a handle, throwing on null/out-of-range.
  PersistentOp& pop_of(const PersistentReq& r, const char* call);

  std::vector<std::unique_ptr<PersistentOp>> pops_;
  smpi::RankCtx& rc_;
};

/// Direct-call proxy (baseline); also the base for iprobe and comm-self.
class DirectProxy : public Proxy {
 public:
  using Proxy::Proxy;
  // The PReq overrides below would hide the base's PersistentReq overloads
  // (which serve the direct approaches as-is) — keep both visible.
  using Proxy::wait;
  using Proxy::test;
  using Proxy::attach_continuation;
  [[nodiscard]] Approach approach() const override { return Approach::kBaseline; }

  PReq isend(const void* b, std::size_t n, smpi::Datatype dt, int dst, int tag,
             smpi::Comm c = smpi::kCommWorld) override;
  PReq irecv(void* b, std::size_t n, smpi::Datatype dt, int src, int tag,
             smpi::Comm c = smpi::kCommWorld) override;
  void wait(PReq& r, smpi::Status* st = nullptr) override;
  bool test(PReq& r, smpi::Status* st = nullptr) override;
  void waitall(std::span<PReq> rs) override;
  int waitany(std::span<PReq> rs, smpi::Status* st = nullptr) override;
  bool testall(std::span<PReq> rs) override;
  PReq ibarrier(smpi::Comm c = smpi::kCommWorld) override;
  PReq ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
              smpi::Comm c = smpi::kCommWorld) override;
  PReq ireduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
               smpi::Op op, int root, smpi::Comm c = smpi::kCommWorld) override;
  PReq iallreduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                  smpi::Op op, smpi::Comm c = smpi::kCommWorld) override;
  PReq ialltoall(const void* s, void* r, std::size_t n_per, smpi::Datatype dt,
                 smpi::Comm c = smpi::kCommWorld) override;
  PReq iallgather(const void* s, void* r, std::size_t n_per, smpi::Datatype dt,
                  smpi::Comm c = smpi::kCommWorld) override;

  /// Direct approaches have no engine fiber: armed continuations live in a
  /// list the progress path pumps (each pump MPI_Tests the armed requests
  /// and runs the callbacks of completed ones).
  void attach_continuation(PReq& r, ContFn fn) override;
  void cont_wait(const std::function<bool()>& done) override;
  [[nodiscard]] std::size_t inflight() const override {
    return armed_.size();
  }

 protected:
  /// Test each armed request once; run + retire completed ones. Safe against
  /// re-entry (callbacks posting follow-ups or attaching more continuations
  /// land in armed_ and are picked up by the restarted scan).
  void pump_continuations();

 private:
  struct Armed {
    smpi::Request req;
    ContFn fn;
  };
  std::vector<Armed> armed_;
  bool pumping_ = false;
};

class IprobeProxy : public DirectProxy {
 public:
  using DirectProxy::DirectProxy;
  [[nodiscard]] Approach approach() const override { return Approach::kIprobe; }
  void progress_hint() override;
};

class CommSelfProxy : public DirectProxy {
 public:
  using DirectProxy::DirectProxy;
  [[nodiscard]] Approach approach() const override { return Approach::kCommSelf; }
  void start_engine() override;
  void stop() override;
  [[nodiscard]] int compute_threads(int cores) const override {
    return cores > 1 ? cores - 1 : cores;
  }

 private:
  smpi::Comm progress_comm_{};
  bool running_ = false;
  char stop_token_ = 0;
  char recv_token_ = 0;
};

class OffloadProxy : public Proxy {
 public:
  /// Tuning from the machine profile + the MPIOFF_PROXY env spec.
  explicit OffloadProxy(smpi::RankCtx& rc);
  /// Explicit tuning (tests/ablations); the environment is NOT consulted.
  OffloadProxy(smpi::RankCtx& rc, const ProxyOptions& opts);
  [[nodiscard]] Approach approach() const override { return Approach::kOffload; }
  void start_engine() override;
  void stop() override;
  [[nodiscard]] int compute_threads(int cores) const override {
    return cores > 1 ? cores - 1 : cores;
  }
  [[nodiscard]] OffloadChannel& channel() { return channel_; }
  [[nodiscard]] std::size_t inflight() const override {
    return channel_.pool().capacity() - channel_.pool().free_count();
  }

  smpi::Win win_create(void* base, std::size_t bytes, smpi::Comm c) override;
  void win_free(smpi::Win w) override;
  void put(const void* origin, std::size_t bytes, int target,
           std::size_t target_offset, smpi::Win w) override;
  void get(void* origin, std::size_t bytes, int target,
           std::size_t target_offset, smpi::Win w) override;
  void fence(smpi::Win w) override;

  PReq isend(const void* b, std::size_t n, smpi::Datatype dt, int dst, int tag,
             smpi::Comm c = smpi::kCommWorld) override;
  PReq irecv(void* b, std::size_t n, smpi::Datatype dt, int src, int tag,
             smpi::Comm c = smpi::kCommWorld) override;
  void post_batch(std::span<const BatchOp> ops, std::span<PReq> out) override;
  void wait(PReq& r, smpi::Status* st = nullptr) override;
  bool test(PReq& r, smpi::Status* st = nullptr) override;
  /// Tuned completion surface: one pass over the pool's done flags per wake,
  /// no per-request channel calls.
  void waitall(std::span<PReq> rs) override;
  int waitany(std::span<PReq> rs, smpi::Status* st = nullptr) override;
  bool testall(std::span<PReq> rs) override;
  PReq ibarrier(smpi::Comm c = smpi::kCommWorld) override;
  PReq ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
              smpi::Comm c = smpi::kCommWorld) override;
  PReq ireduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
               smpi::Op op, int root, smpi::Comm c = smpi::kCommWorld) override;
  PReq iallreduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                  smpi::Op op, smpi::Comm c = smpi::kCommWorld) override;
  PReq ialltoall(const void* s, void* r, std::size_t n_per, smpi::Datatype dt,
                 smpi::Comm c = smpi::kCommWorld) override;
  PReq iallgather(const void* s, void* r, std::size_t n_per, smpi::Datatype dt,
                  smpi::Comm c = smpi::kCommWorld) override;

  /// Delegates to OffloadChannel::attach_continuation — the engine fiber
  /// runs the callback from its completion pass (inline here only when the
  /// request already completed).
  void attach_continuation(PReq& r, ContFn fn) override;
  void cont_wait(const std::function<bool()>& done) override;

  // ---- persistent & partitioned: mapped onto the channel's PersistSlots.
  // start publishes one cheap kStartPersistent command; pready publishes a
  // partition-ready bit the engines poll (early-partition shipping).
  PersistentReq send_init(const void* b, std::size_t n, smpi::Datatype dt,
                          int dst, int tag,
                          smpi::Comm c = smpi::kCommWorld) override;
  PersistentReq recv_init(void* b, std::size_t n, smpi::Datatype dt, int src,
                          int tag, smpi::Comm c = smpi::kCommWorld) override;
  PersistentReq psend_init(const void* b, std::size_t n, smpi::Datatype dt,
                           int dst, int tag, std::uint32_t partitions,
                           smpi::Comm c = smpi::kCommWorld) override;
  PersistentReq precv_init(void* b, std::size_t n, smpi::Datatype dt, int src,
                           int tag, std::uint32_t partitions,
                           smpi::Comm c = smpi::kCommWorld) override;
  void start(PersistentReq& r) override;
  void pready(PersistentReq& r, std::uint32_t p) override;
  void pready_range(PersistentReq& r, std::uint32_t lo,
                    std::uint32_t hi) override;
  void wait(PersistentReq& r, smpi::Status* st = nullptr) override;
  bool test(PersistentReq& r, smpi::Status* st = nullptr) override;
  void request_free(PersistentReq& r) override;
  void attach_continuation(PersistentReq& r, ContFn fn) override;

 private:
  OffloadChannel channel_;
  /// One fiber per engine (ProxyOptions::proxy_count), in engine order.
  std::vector<sim::Fiber*> engine_fibers_;
};

/// Factory; caller picks the approach per rank (all ranks should agree).
/// Offload tuning comes from ProxyOptions::from_env (profile defaults +
/// MPIOFF_PROXY); the second overload pins it explicitly instead.
std::unique_ptr<Proxy> make_proxy(Approach a, smpi::RankCtx& rc);
std::unique_ptr<Proxy> make_proxy(Approach a, smpi::RankCtx& rc,
                                  const ProxyOptions& opts);

}  // namespace core
