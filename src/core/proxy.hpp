// Proxy — one interface, four communication approaches (paper Sections 2-3).
//
// Applications and benchmarks are written once against Proxy; selecting the
// approach at run time reproduces the paper's property that no application
// change is needed (the paper uses LD_PRELOAD interposition; we own the MPI
// library, so a vtable stands in for the PLT).
//
//   baseline  — direct MPI calls from the application thread(s).
//   iprobe    — baseline + progress_hint() mapped to MPI_Iprobe (the
//               PROGRESS macro of Listing 1).
//   comm-self — spawns a progress thread blocked in MPI_Recv on a duplicated
//               COMM_SELF; requires MPI_THREAD_MULTIPLE.
//   offload   — the paper's contribution: all calls serialized to the
//               dedicated offload thread via the lock-free command ring.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/offload_engine.hpp"
#include "mpi/rank_ctx.hpp"
#include "mpi/types.hpp"

namespace core {

/// Approach selector.
enum class Approach : std::uint8_t {
  kBaseline,
  kIprobe,
  kCommSelf,
  kOffload,
};

const char* approach_name(Approach a);
/// Parse "baseline" / "iprobe" / "commself" / "offload".
Approach approach_from_string(const std::string& s);
/// Thread level the underlying MPI must be initialized with.
smpi::ThreadLevel required_thread_level(Approach a);

/// Proxy-level request handle. Meaning is proxy-specific (real smpi request
/// index for direct proxies; RequestPool slot + 1 for offload). Zero is the
/// null handle for every proxy — a default-constructed PReq is null, and
/// completion calls null handles they release, so waiting twice is safe.
struct PReq {
  std::uint64_t v = 0;
  [[nodiscard]] bool is_null() const { return v == 0; }
};

/// One operation of a batched nonblocking post (Proxy::post_batch). Only
/// point-to-point ops batch: that is the halo-exchange shape the batching
/// path exists for (N posts -> one lane publish + one doorbell).
struct BatchOp {
  CmdOp op = CmdOp::kIsend;  ///< kIsend or kIrecv
  const void* sbuf = nullptr;
  void* rbuf = nullptr;
  std::size_t count = 0;
  smpi::Datatype dtype = smpi::Datatype::kByte;
  int peer = -1;
  int tag = 0;
  smpi::Comm comm = smpi::kCommWorld;

  static BatchOp isend(const void* b, std::size_t n, smpi::Datatype dt,
                       int dst, int tag, smpi::Comm c = smpi::kCommWorld) {
    BatchOp o;
    o.op = CmdOp::kIsend;
    o.sbuf = b;
    o.count = n;
    o.dtype = dt;
    o.peer = dst;
    o.tag = tag;
    o.comm = c;
    return o;
  }
  static BatchOp irecv(void* b, std::size_t n, smpi::Datatype dt, int src,
                       int tag, smpi::Comm c = smpi::kCommWorld) {
    BatchOp o;
    o.op = CmdOp::kIrecv;
    o.rbuf = b;
    o.count = n;
    o.dtype = dt;
    o.peer = src;
    o.tag = tag;
    o.comm = c;
    return o;
  }
};

class Proxy {
 public:
  explicit Proxy(smpi::RankCtx& rc) : rc_(rc) {}
  virtual ~Proxy() = default;

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  [[nodiscard]] smpi::RankCtx& rank_ctx() { return rc_; }
  [[nodiscard]] virtual Approach approach() const = 0;

  /// Spawn helper threads (comm-self progress thread / offload engine).
  virtual void start() {}
  /// Drain and join helper threads. Must be called before the rank exits.
  virtual void stop() {}

  // ---- point-to-point ----
  virtual PReq isend(const void* b, std::size_t n, smpi::Datatype dt, int dst,
                     int tag, smpi::Comm c = smpi::kCommWorld) = 0;
  virtual PReq irecv(void* b, std::size_t n, smpi::Datatype dt, int src,
                     int tag, smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void send(const void* b, std::size_t n, smpi::Datatype dt, int dst,
                    int tag, smpi::Comm c = smpi::kCommWorld);
  virtual void recv(void* b, std::size_t n, smpi::Datatype dt, int src, int tag,
                    smpi::Comm c = smpi::kCommWorld, smpi::Status* st = nullptr);

  /// Post a group of nonblocking point-to-point operations; `out[i]`
  /// receives the request for `ops[i]` (spans must be the same length). The
  /// default posts one at a time; the offload proxy serializes whole chunks
  /// into its submission lane with one publish and one doorbell each
  /// (ProxyOptions::batch_flush commands per chunk).
  virtual void post_batch(std::span<const BatchOp> ops, std::span<PReq> out);

  // ---- completion ----
  virtual void wait(PReq& r, smpi::Status* st = nullptr) = 0;
  virtual bool test(PReq& r, smpi::Status* st = nullptr) = 0;
  virtual void waitall(std::span<PReq> rs);
  /// MPI_Waitany: block until some active request completes, release it,
  /// null its entry, and return its index; -1 when every entry is null.
  virtual int waitany(std::span<PReq> rs, smpi::Status* st = nullptr) = 0;
  /// MPI_Testall: true iff every active request has completed — then all are
  /// released and nulled; otherwise none are (and true for an all-null span).
  virtual bool testall(std::span<PReq> rs) = 0;

  // ---- continuations (mpi/continuation.hpp wraps these in `.then()`) ----

  /// Bind `fn` to run exactly once when `r` completes, consuming the handle
  /// (it is nulled; do not wait on it afterwards). Who runs the callback is
  /// approach-specific: the offload engine fiber for kOffload, the progress
  /// path (test/progress_hint/cont_wait pumps) for the direct approaches. A
  /// null handle is the released-request case and runs `fn` inline with an
  /// empty Status — attaching twice is as safe as waiting twice. Callbacks
  /// may post follow-ups and attach further continuations but must never
  /// block.
  virtual void attach_continuation(PReq& r, ContFn fn) = 0;

  /// Block until `done()` returns true, driving whatever machinery runs this
  /// proxy's continuations in the meantime. The standard pattern is an
  /// Event/flag that the tail continuation of a graph sets.
  virtual void cont_wait(const std::function<bool()>& done) = 0;

  // ---- collectives ----
  virtual void barrier(smpi::Comm c = smpi::kCommWorld);
  virtual PReq ibarrier(smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void bcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                     smpi::Comm c = smpi::kCommWorld);
  virtual PReq ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                      smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void reduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                      smpi::Op op, int root, smpi::Comm c = smpi::kCommWorld);
  virtual PReq ireduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                       smpi::Op op, int root, smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void allreduce(const void* s, void* r, std::size_t n,
                         smpi::Datatype dt, smpi::Op op,
                         smpi::Comm c = smpi::kCommWorld);
  virtual PReq iallreduce(const void* s, void* r, std::size_t n,
                          smpi::Datatype dt, smpi::Op op,
                          smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void alltoall(const void* s, void* r, std::size_t n_per,
                        smpi::Datatype dt, smpi::Comm c = smpi::kCommWorld);
  virtual PReq ialltoall(const void* s, void* r, std::size_t n_per,
                         smpi::Datatype dt, smpi::Comm c = smpi::kCommWorld) = 0;
  virtual void allgather(const void* s, void* r, std::size_t n_per,
                         smpi::Datatype dt, smpi::Comm c = smpi::kCommWorld);
  virtual PReq iallgather(const void* s, void* r, std::size_t n_per,
                          smpi::Datatype dt, smpi::Comm c = smpi::kCommWorld) = 0;

  // ---- one-sided (RMA) ----
  virtual smpi::Win win_create(void* base, std::size_t bytes,
                               smpi::Comm c = smpi::kCommWorld);
  virtual void win_free(smpi::Win w);
  virtual void put(const void* origin, std::size_t bytes, int target,
                   std::size_t target_offset, smpi::Win w);
  virtual void get(void* origin, std::size_t bytes, int target,
                   std::size_t target_offset, smpi::Win w);
  virtual void fence(smpi::Win w);

  /// Hook the application sprinkles into compute loops (Listing 1's
  /// PROGRESS). No-op except for the iprobe approach.
  virtual void progress_hint() {}

  /// Number of threads left for application compute out of `cores`
  /// (approaches with a dedicated communication thread consume one).
  [[nodiscard]] virtual int compute_threads(int cores) const { return cores; }

  /// Requests still live inside the proxy's own bookkeeping (0 for the
  /// direct approaches, which hand out raw smpi requests). The differential
  /// conformance suite asserts this drains to zero at teardown.
  [[nodiscard]] virtual std::size_t inflight() const { return 0; }

 protected:
  smpi::RankCtx& rc_;
};

/// Direct-call proxy (baseline); also the base for iprobe and comm-self.
class DirectProxy : public Proxy {
 public:
  using Proxy::Proxy;
  [[nodiscard]] Approach approach() const override { return Approach::kBaseline; }

  PReq isend(const void* b, std::size_t n, smpi::Datatype dt, int dst, int tag,
             smpi::Comm c = smpi::kCommWorld) override;
  PReq irecv(void* b, std::size_t n, smpi::Datatype dt, int src, int tag,
             smpi::Comm c = smpi::kCommWorld) override;
  void wait(PReq& r, smpi::Status* st = nullptr) override;
  bool test(PReq& r, smpi::Status* st = nullptr) override;
  void waitall(std::span<PReq> rs) override;
  int waitany(std::span<PReq> rs, smpi::Status* st = nullptr) override;
  bool testall(std::span<PReq> rs) override;
  PReq ibarrier(smpi::Comm c = smpi::kCommWorld) override;
  PReq ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
              smpi::Comm c = smpi::kCommWorld) override;
  PReq ireduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
               smpi::Op op, int root, smpi::Comm c = smpi::kCommWorld) override;
  PReq iallreduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                  smpi::Op op, smpi::Comm c = smpi::kCommWorld) override;
  PReq ialltoall(const void* s, void* r, std::size_t n_per, smpi::Datatype dt,
                 smpi::Comm c = smpi::kCommWorld) override;
  PReq iallgather(const void* s, void* r, std::size_t n_per, smpi::Datatype dt,
                  smpi::Comm c = smpi::kCommWorld) override;

  /// Direct approaches have no engine fiber: armed continuations live in a
  /// list the progress path pumps (each pump MPI_Tests the armed requests
  /// and runs the callbacks of completed ones).
  void attach_continuation(PReq& r, ContFn fn) override;
  void cont_wait(const std::function<bool()>& done) override;
  [[nodiscard]] std::size_t inflight() const override {
    return armed_.size();
  }

 protected:
  /// Test each armed request once; run + retire completed ones. Safe against
  /// re-entry (callbacks posting follow-ups or attaching more continuations
  /// land in armed_ and are picked up by the restarted scan).
  void pump_continuations();

 private:
  struct Armed {
    smpi::Request req;
    ContFn fn;
  };
  std::vector<Armed> armed_;
  bool pumping_ = false;
};

class IprobeProxy : public DirectProxy {
 public:
  using DirectProxy::DirectProxy;
  [[nodiscard]] Approach approach() const override { return Approach::kIprobe; }
  void progress_hint() override;
};

class CommSelfProxy : public DirectProxy {
 public:
  using DirectProxy::DirectProxy;
  [[nodiscard]] Approach approach() const override { return Approach::kCommSelf; }
  void start() override;
  void stop() override;
  [[nodiscard]] int compute_threads(int cores) const override {
    return cores > 1 ? cores - 1 : cores;
  }

 private:
  smpi::Comm progress_comm_{};
  bool running_ = false;
  char stop_token_ = 0;
  char recv_token_ = 0;
};

class OffloadProxy : public Proxy {
 public:
  /// Tuning from the machine profile + the MPIOFF_PROXY env spec.
  explicit OffloadProxy(smpi::RankCtx& rc);
  /// Explicit tuning (tests/ablations); the environment is NOT consulted.
  OffloadProxy(smpi::RankCtx& rc, const ProxyOptions& opts);
  [[nodiscard]] Approach approach() const override { return Approach::kOffload; }
  void start() override;
  void stop() override;
  [[nodiscard]] int compute_threads(int cores) const override {
    return cores > 1 ? cores - 1 : cores;
  }
  [[nodiscard]] OffloadChannel& channel() { return channel_; }
  [[nodiscard]] std::size_t inflight() const override {
    return channel_.pool().capacity() - channel_.pool().free_count();
  }

  smpi::Win win_create(void* base, std::size_t bytes, smpi::Comm c) override;
  void win_free(smpi::Win w) override;
  void put(const void* origin, std::size_t bytes, int target,
           std::size_t target_offset, smpi::Win w) override;
  void get(void* origin, std::size_t bytes, int target,
           std::size_t target_offset, smpi::Win w) override;
  void fence(smpi::Win w) override;

  PReq isend(const void* b, std::size_t n, smpi::Datatype dt, int dst, int tag,
             smpi::Comm c = smpi::kCommWorld) override;
  PReq irecv(void* b, std::size_t n, smpi::Datatype dt, int src, int tag,
             smpi::Comm c = smpi::kCommWorld) override;
  void post_batch(std::span<const BatchOp> ops, std::span<PReq> out) override;
  void wait(PReq& r, smpi::Status* st = nullptr) override;
  bool test(PReq& r, smpi::Status* st = nullptr) override;
  /// Tuned completion surface: one pass over the pool's done flags per wake,
  /// no per-request channel calls.
  void waitall(std::span<PReq> rs) override;
  int waitany(std::span<PReq> rs, smpi::Status* st = nullptr) override;
  bool testall(std::span<PReq> rs) override;
  PReq ibarrier(smpi::Comm c = smpi::kCommWorld) override;
  PReq ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
              smpi::Comm c = smpi::kCommWorld) override;
  PReq ireduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
               smpi::Op op, int root, smpi::Comm c = smpi::kCommWorld) override;
  PReq iallreduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                  smpi::Op op, smpi::Comm c = smpi::kCommWorld) override;
  PReq ialltoall(const void* s, void* r, std::size_t n_per, smpi::Datatype dt,
                 smpi::Comm c = smpi::kCommWorld) override;
  PReq iallgather(const void* s, void* r, std::size_t n_per, smpi::Datatype dt,
                  smpi::Comm c = smpi::kCommWorld) override;

  /// Delegates to OffloadChannel::attach_continuation — the engine fiber
  /// runs the callback from its completion pass (inline here only when the
  /// request already completed).
  void attach_continuation(PReq& r, ContFn fn) override;
  void cont_wait(const std::function<bool()>& done) override;

 private:
  OffloadChannel channel_;
  /// One fiber per engine (ProxyOptions::proxy_count), in engine order.
  std::vector<sim::Fiber*> engine_fibers_;
};

/// Factory; caller picks the approach per rank (all ranks should agree).
/// Offload tuning comes from ProxyOptions::from_env (profile defaults +
/// MPIOFF_PROXY); the second overload pins it explicitly instead.
std::unique_ptr<Proxy> make_proxy(Approach a, smpi::RankCtx& rc);
std::unique_ptr<Proxy> make_proxy(Approach a, smpi::RankCtx& rc,
                                  const ProxyOptions& opts);

}  // namespace core
