// Atomics policy for the lock-free core structures.
//
// MpscRing and RequestPool are templated over a policy that supplies the
// atomic type, a wrapper for *plain* shared payloads, and a no-op naming
// hook. Production code uses the default StdAtomics policy below, which is
// a zero-overhead passthrough to std::atomic (identical codegen to using
// std::atomic directly). The model checker in src/check/ supplies an
// alternative policy (chk::ModelAtomics) whose atomics trap every access,
// letting a Loom/relacy-style scheduler explore thread interleavings and a
// vector-clock detector flag unsynchronized plain accesses.
//
// Policy requirements:
//   * `template <class T> atomic` — std::atomic-compatible: load/store/
//     compare_exchange_weak with std::memory_order arguments.
//   * `template <class T> var`    — wrapper for plain (non-atomic) shared
//     data whose safety relies on the surrounding acquire/release protocol;
//     `ref_w()` returns a mutable reference (write access), `ref_r()` a
//     const reference (read access). StdAtomics compiles both to a direct
//     member access; the checker records a happens-before-checked event.
//   * `set_name(obj, base, index)` — diagnostic label, no-op in production.
#pragma once

#include <atomic>
#include <cstddef>

namespace core {

struct StdAtomics {
  template <class T>
  using atomic = std::atomic<T>;

  template <class T>
  struct var {
    T value{};
    T& ref_w() noexcept { return value; }
    const T& ref_r() const noexcept { return value; }
  };

  template <class T>
  static void set_name(const std::atomic<T>&, const char*, std::size_t = 0) {}
  template <class T>
  static void set_name(const var<T>&, const char*, std::size_t = 0) {}
};

}  // namespace core
