// Serialized MPI-call commands exchanged through the MPSC ring.
#pragma once

#include <cstdint>

#include "mpi/types.hpp"

namespace core {

enum class CmdOp : std::uint8_t {
  kShutdown,
  kIsend,
  kIrecv,
  kIbarrier,
  kIbcast,
  kIreduce,
  kIallreduce,
  kIalltoall,
  kIallgather,
  kIgather,
  kIscatter,
  kWinCreate,
  kWinFree,
  kPut,
  kGet,
  kIfence,
  /// Re-arm a persistent offload request: `count` carries the channel's
  /// persistent-slot index, nothing else — the envelope already lives in the
  /// engine's slot, which is why this command is cheap to publish
  /// (Profile::cmd_enqueue_persist).
  kStartPersistent,
  /// Tear down a persistent slot's MPI-level requests and release its pool
  /// slot; `count` carries the persistent-slot index. Ring FIFO guarantees
  /// it runs after every start of that slot.
  kFreePersistent,
};

/// Stable display name for a command opcode (trace span labels, logs).
constexpr const char* cmd_op_name(CmdOp op) {
  switch (op) {
    case CmdOp::kShutdown:   return "cmd:shutdown";
    case CmdOp::kIsend:      return "cmd:isend";
    case CmdOp::kIrecv:      return "cmd:irecv";
    case CmdOp::kIbarrier:   return "cmd:ibarrier";
    case CmdOp::kIbcast:     return "cmd:ibcast";
    case CmdOp::kIreduce:    return "cmd:ireduce";
    case CmdOp::kIallreduce: return "cmd:iallreduce";
    case CmdOp::kIalltoall:  return "cmd:ialltoall";
    case CmdOp::kIallgather: return "cmd:iallgather";
    case CmdOp::kIgather:    return "cmd:igather";
    case CmdOp::kIscatter:   return "cmd:iscatter";
    case CmdOp::kWinCreate:  return "cmd:win-create";
    case CmdOp::kWinFree:    return "cmd:win-free";
    case CmdOp::kPut:        return "cmd:put";
    case CmdOp::kGet:        return "cmd:get";
    case CmdOp::kIfence:     return "cmd:ifence";
    case CmdOp::kStartPersistent: return "cmd:start-persistent";
    case CmdOp::kFreePersistent:  return "cmd:free-persistent";
  }
  return "cmd:?";
}

/// One offloaded MPI call, parameters serialized into a flat struct (the
/// paper's "call-specific structure"). `proxy` is the RequestPool slot whose
/// done flag signals completion back to the application thread.
struct Command {
  CmdOp op = CmdOp::kShutdown;
  std::uint32_t proxy = 0;
  const void* sbuf = nullptr;
  void* rbuf = nullptr;
  std::uint64_t count = 0;
  smpi::Datatype dtype = smpi::Datatype::kByte;
  smpi::Op rop = smpi::Op::kSum;
  int peer = -1;  ///< dst/src/root/target depending on op
  int tag = 0;
  smpi::Comm comm = smpi::kCommWorld;
  // ---- RMA ----
  smpi::Win win{};
  smpi::Win* win_out = nullptr;  ///< result slot for kWinCreate
  std::uint64_t offset = 0;      ///< target window offset
};

}  // namespace core
