// Serialized MPI-call commands exchanged through the MPSC ring.
#pragma once

#include <cstdint>

#include "mpi/types.hpp"

namespace core {

enum class CmdOp : std::uint8_t {
  kShutdown,
  kIsend,
  kIrecv,
  kIbarrier,
  kIbcast,
  kIreduce,
  kIallreduce,
  kIalltoall,
  kIallgather,
  kIgather,
  kIscatter,
  kWinCreate,
  kWinFree,
  kPut,
  kGet,
  kIfence,
};

/// One offloaded MPI call, parameters serialized into a flat struct (the
/// paper's "call-specific structure"). `proxy` is the RequestPool slot whose
/// done flag signals completion back to the application thread.
struct Command {
  CmdOp op = CmdOp::kShutdown;
  std::uint32_t proxy = 0;
  const void* sbuf = nullptr;
  void* rbuf = nullptr;
  std::uint64_t count = 0;
  smpi::Datatype dtype = smpi::Datatype::kByte;
  smpi::Op rop = smpi::Op::kSum;
  int peer = -1;  ///< dst/src/root/target depending on op
  int tag = 0;
  smpi::Comm comm = smpi::kCommWorld;
  // ---- RMA ----
  smpi::Win win{};
  smpi::Win* win_out = nullptr;  ///< result slot for kWinCreate
  std::uint64_t offset = 0;      ///< target window offset
};

}  // namespace core
