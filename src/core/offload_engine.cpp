#include "core/offload_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "trace/scope.hpp"

namespace core {

OffloadChannel::OffloadChannel(smpi::RankCtx& rc, std::size_t ring_capacity,
                               std::uint32_t pool_capacity)
    : rc_(rc),
      ring_(ring_capacity),
      pool_(pool_capacity),
      completions_(rc.profile().done_flag_detect),
      g_ring_(rc.rank(), "ring_occupancy"),
      g_inflight_(rc.rank(), "inflight") {}

// ------------------------------------------------------ application side ----

std::uint32_t OffloadChannel::submit(Command cmd) {
  trace::Scope tsc("cmd:enqueue", "offload");
  const auto& p = rc_.profile();
  // Allocate the proxy request (lock-free pool op).
  sim::advance(p.request_pool_op);
  std::uint32_t proxy = pool_.alloc();
  for (int retries = 0; proxy == RequestPool::kNil; ++retries) {
    // Pool exhausted: wait for another thread to recycle a slot. A
    // single-threaded application that over-posts can never recycle, so a
    // bounded wait converts that programming error into a clear failure
    // instead of a silent deadlock.
    if (retries > 64) {
      throw std::runtime_error(
          "offload request pool exhausted: too many outstanding requests "
          "(increase pool_capacity or wait on requests sooner)");
    }
    ++stats_.pool_full_stalls;
    trace::instant("stall:pool-full", "offload");
    const std::uint64_t seen = completions_.count();
    completions_.wait_beyond_timeout(seen, sim::Time::from_us(200));
    proxy = pool_.alloc();
  }
  cmd.proxy = proxy;
  // Serialize parameters + lock-free enqueue.
  sim::advance(p.cmd_enqueue);
  for (int spins = 0; !ring_.try_push(cmd); ++spins) {
    // A full ring means the engine is behind, not gone — but if it never
    // drains (engine fiber stuck or dead) an unbounded spin here would look
    // like a silent hang. Bound it, and re-ring the doorbell each retry in
    // case the engine's sleep cursor predates the push that filled the ring.
    if (spins > (1 << 16)) {
      throw std::runtime_error(
          "offload command ring stuck full: engine is not draining "
          "(increase ring_capacity or check the offload fiber is running)");
    }
    ++stats_.ring_full_stalls;
    trace::instant("stall:ring-full", "offload");
    rc_.arrivals().signal();
    sim::advance(p.cmd_enqueue);  // retry cost
  }
  g_ring_.set(static_cast<double>(ring_.size_approx()));
  // Ring the doorbell: the offload thread's poll loop notices new work after
  // its detection latency.
  trace::instant("doorbell", "offload");
  rc_.arrivals().signal();
  return proxy;
}

void OffloadChannel::wait_done(std::uint32_t proxy, smpi::Status* st) {
  trace::Scope tsc("wait:flag", "offload");
  const auto& p = rc_.profile();
  for (;;) {
    sim::advance(p.done_flag_check);
    if (pool_.done(proxy)) break;
    const std::uint64_t seen = completions_.count();
    if (pool_.done(proxy)) break;
    completions_.wait_beyond(seen);
  }
  if (st != nullptr) *st = pool_.status(proxy);
  sim::advance(p.request_pool_op);
  pool_.free(proxy);
  completions_.signal();  // a freed slot may unblock a pool-exhausted submit
}

bool OffloadChannel::test_done(std::uint32_t proxy, smpi::Status* st) {
  const auto& p = rc_.profile();
  sim::advance(p.done_flag_check);
  if (!pool_.done(proxy)) return false;
  if (st != nullptr) *st = pool_.status(proxy);
  sim::advance(p.request_pool_op);
  pool_.free(proxy);
  completions_.signal();
  return true;
}

void OffloadChannel::shutdown() {
  Command c;
  c.op = CmdOp::kShutdown;
  sim::advance(rc_.profile().cmd_enqueue);
  while (!ring_.try_push(c)) sim::advance(rc_.profile().cmd_enqueue);
  rc_.arrivals().signal();
}

// ------------------------------------------------------------ engine side ----

void OffloadChannel::issue(const Command& cmd) {
  using smpi::Datatype;
  smpi::Request real{};
  // Ops with no (or immediate) MPI-level completion are finished inline.
  switch (cmd.op) {
    case CmdOp::kWinCreate:
      *cmd.win_out = rc_.win_create(cmd.rbuf, cmd.count, cmd.comm);
      pool_.complete(cmd.proxy, smpi::Status{});
      ++stats_.completions;
      trace::instant("done:publish", "offload");
      completions_.signal();
      return;
    case CmdOp::kWinFree:
      rc_.win_free(cmd.win);
      pool_.complete(cmd.proxy, smpi::Status{});
      ++stats_.completions;
      trace::instant("done:publish", "offload");
      completions_.signal();
      return;
    case CmdOp::kPut:
      rc_.put(cmd.sbuf, cmd.count, cmd.peer, cmd.offset, cmd.win);
      pool_.complete(cmd.proxy, smpi::Status{});
      ++stats_.completions;
      trace::instant("done:publish", "offload");
      completions_.signal();
      return;
    case CmdOp::kGet:
      rc_.get(cmd.rbuf, cmd.count, cmd.peer, cmd.offset, cmd.win);
      pool_.complete(cmd.proxy, smpi::Status{});
      ++stats_.completions;
      trace::instant("done:publish", "offload");
      completions_.signal();
      return;
    case CmdOp::kIfence:
      track_inflight(rc_.ifence(cmd.win), cmd.proxy);
      return;
    default:
      break;
  }
  switch (cmd.op) {
    case CmdOp::kIsend:
      real = rc_.isend(cmd.sbuf, cmd.count, cmd.dtype, cmd.peer, cmd.tag, cmd.comm);
      break;
    case CmdOp::kIrecv:
      real = rc_.irecv(cmd.rbuf, cmd.count, cmd.dtype, cmd.peer, cmd.tag, cmd.comm);
      break;
    case CmdOp::kIbarrier:
      real = rc_.ibarrier(cmd.comm);
      break;
    case CmdOp::kIbcast:
      real = rc_.ibcast(cmd.rbuf, cmd.count, cmd.dtype, cmd.peer, cmd.comm);
      break;
    case CmdOp::kIreduce:
      real = rc_.ireduce(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.rop,
                         cmd.peer, cmd.comm);
      break;
    case CmdOp::kIallreduce:
      real = rc_.iallreduce(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.rop,
                            cmd.comm);
      break;
    case CmdOp::kIalltoall:
      real = rc_.ialltoall(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.comm);
      break;
    case CmdOp::kIallgather:
      real = rc_.iallgather(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.comm);
      break;
    case CmdOp::kIgather:
      real = rc_.igather(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.peer,
                         cmd.comm);
      break;
    case CmdOp::kIscatter:
      real = rc_.iscatter(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.peer,
                          cmd.comm);
      break;
    case CmdOp::kShutdown:
      throw std::logic_error("shutdown reached issue()");
  }
  track_inflight(real, cmd.proxy);
}

void OffloadChannel::track_inflight(smpi::Request real, std::uint32_t proxy) {
  inflight_.push_back({real, proxy, sim::now(), false});
  scratch_reqs_.push_back(real);
  ++live_inflight_;
  stats_.max_inflight =
      std::max<std::uint64_t>(stats_.max_inflight, live_inflight_);
  g_inflight_.set(static_cast<double>(live_inflight_));
}

void OffloadChannel::drive_progress() {
  watchdog_scan();
  if (live_inflight_ == 0) return;
  trace::Scope tsc("testany:sweep", "offload");
  // MPI_Testany over the in-flight set; publish done flags as they complete.
  // Loop until a pass makes no progress (a real offload thread would call
  // Testany repeatedly while its queue is empty). Testany nulls the span
  // entry of the request it completes — that null is the dead-slot marker,
  // so no per-completion rebuild or erase is needed and the remaining
  // entries keep their FIFO positions.
  for (;;) {
    int idx = -1;
    smpi::Status st;
    ++stats_.testany_calls;
    const bool flag = rc_.testany(scratch_reqs_, &idx, &st);
    if (!flag || idx < 0) break;
    const auto i = static_cast<std::size_t>(idx);
    pool_.complete(inflight_[i].proxy, st);
    ++stats_.completions;
    --live_inflight_;
    trace::instant("done:publish", "offload");
    g_inflight_.set(static_cast<double>(live_inflight_));
    completions_.signal();
    if (live_inflight_ == 0) break;
  }
  compact_inflight();
}

void OffloadChannel::compact_inflight() {
  // Skipping dead slots during the Testany scan is cheap; reclaim them only
  // once they dominate so a steady stream of completions stays O(1) each.
  if (scratch_reqs_.size() <= 32 || live_inflight_ * 2 > scratch_reqs_.size()) {
    return;
  }
  std::size_t w = 0;
  for (std::size_t r = 0; r < scratch_reqs_.size(); ++r) {
    if (scratch_reqs_[r].is_null()) continue;
    scratch_reqs_[w] = scratch_reqs_[r];
    inflight_[w] = inflight_[r];
    ++w;
  }
  scratch_reqs_.resize(w);
  inflight_.resize(w);
}

void OffloadChannel::watchdog_scan() {
  const sim::Time budget = rc_.profile().offload_watchdog_budget;
  if (budget.ns() <= 0 || live_inflight_ == 0) return;
  const sim::Time now = sim::now();
  if (now < next_watchdog_scan_) return;
  next_watchdog_scan_ = now + sim::Time(budget.ns() / 8 + 1);
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    if (scratch_reqs_[i].is_null() || inflight_[i].flagged) continue;
    if (now - inflight_[i].issued_at > budget) {
      inflight_[i].flagged = true;
      ++stats_.watchdog_flags;
      trace::instant("watchdog:stuck", "offload");
    }
  }
}

void OffloadChannel::engine_main() {
  const auto& p = rc_.profile();
  const bool faults_on = p.faults.enabled();
  std::uint64_t seen = rc_.arrivals().count();
  for (;;) {
    Command cmd;
    bool worked = false;
    while (ring_.try_pop(cmd)) {
      // One span per command covering dequeue + issue, named after the op.
      trace::Scope tsc(cmd_op_name(cmd.op), "offload");
      g_ring_.set(static_cast<double>(ring_.size_approx()));
      sim::advance(p.cmd_dequeue);
      worked = true;
      if (cmd.op == CmdOp::kShutdown) {
        shutdown_requested_ = true;
        continue;
      }
      ++stats_.commands;
      issue(cmd);
    }
    drive_progress();
    if (shutdown_requested_ && live_inflight_ == 0 && ring_.empty_approx()) {
      return;
    }
    if (worked) {
      seen = rc_.arrivals().count();
      continue;
    }
    // Nothing to do: sleep until the doorbell (new command) or a network
    // event (progress opportunity). The Notifier's detection latency models
    // the spin-poll granularity of the real busy-waiting offload thread.
    const std::uint64_t cur = rc_.arrivals().count();
    if (cur > seen) {
      seen = cur;
      continue;  // something happened while we were working
    }
    if (faults_on) {
      // Under faults the wake we are waiting for may have been lost with the
      // frame that carried it. Sleep with a bound and run a progress pass so
      // the reliability layer's retransmit timers keep firing — the offload
      // thread is exactly the "always inside MPI" context the paper's
      // software-progress model promises.
      if (!rc_.arrivals().wait_beyond_timeout(seen, p.faults.rto_base)) {
        rc_.progress();
      }
      seen = rc_.arrivals().count();
    } else {
      seen = rc_.arrivals().wait_beyond(seen);
    }
  }
}

}  // namespace core
