#include "core/offload_engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "san/san.hpp"
#include "trace/scope.hpp"

namespace core {

namespace {
// A producer spinning this long on a full lane/ring means the engine is
// stuck or dead, not merely behind — fail loudly instead of hanging.
constexpr int kFullSpinBound = 1 << 16;
// lane_of_slot_ sentinels: slot not yet bound / bound to the shared rings.
constexpr std::uint32_t kNoLane = 0xffffffffu;
constexpr std::uint32_t kSharedRing = 0xfffffffeu;

// Fibonacci multiplicative mix: spreads consecutive peer/communicator keys
// across engines without clustering.
std::uint64_t mix64(std::uint64_t x) {
  return (x ^ (x >> 31)) * 0x9E3779B97F4A7C15ull;
}
}  // namespace

OffloadChannel::OffloadChannel(smpi::RankCtx& rc, const ProxyOptions& opts)
    : rc_(rc),
      opts_(opts),
      pool_(opts.pool_capacity),
      completions_(rc.profile().done_flag_detect),
      cont_(opts.pool_capacity),
      cont_fns_(opts.pool_capacity) {
  const std::size_t n = std::max<std::size_t>(1, opts_.proxy_count);
  engines_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    engines_.push_back(std::make_unique<Engine>(opts_.ring_capacity, rc_, i));
  }
  // Row-major lane grid: one row per potential submitter, one column per
  // engine, so every (producer, consumer) pair has a private SPSC ring.
  lanes_.reserve(opts_.lane_count * n);
  for (std::size_t row = 0; row < opts_.lane_count; ++row) {
    for (std::size_t e = 0; e < n; ++e) {
      lanes_.push_back(std::make_unique<Lane>(opts_.lane_capacity, rc_.rank(),
                                              row * n + e));
    }
  }
}

// --------------------------------------------------------------- routing ----

std::size_t OffloadChannel::engine_of(const Command& cmd) {
  const std::size_t n = engines_.size();
  if (n == 1) return 0;
  const auto by = [n](std::uint64_t key) {
    return static_cast<std::size_t>(mix64(key) >> 32) % n;
  };
  // Key construction: peer-addressed traffic mixes (peer, comm) so one hot
  // peer's envelopes serialize on one engine while different peers spread;
  // communicator-scoped traffic (collectives, wildcard receives) mixes only
  // the communicator; RMA mixes the window (RMA ops block at the proxy
  // level, so any stable function is order-safe).
  const auto peer_key = [&cmd] {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cmd.comm.idx))
            << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cmd.peer));
  };
  const auto comm_key = [&cmd] {
    return 0x636f6d6dull ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cmd.comm.idx))
            << 16);
  };
  switch (cmd.op) {
    case CmdOp::kIsend:
      return by(peer_key());
    case CmdOp::kIrecv: {
      const int ci = cmd.comm.idx;
      if (cmd.peer == smpi::kAnySource) {
        // Wildcard: pin this communicator to hash(comm) routing, stickily.
        // Every later receive on it follows, so a wildcard can neither
        // overtake nor be overtaken by a same-communicator receive posted
        // after it. (Specific receives already in a sibling's queue when
        // the first wildcard arrives are the one documented relaxation —
        // see DESIGN.md §15.)
        if (std::find(wildcard_comms_.begin(), wildcard_comms_.end(), ci) ==
            wildcard_comms_.end()) {
          wildcard_comms_.push_back(ci);
        }
        return by(comm_key());
      }
      if (std::find(wildcard_comms_.begin(), wildcard_comms_.end(), ci) !=
          wildcard_comms_.end()) {
        return by(comm_key());
      }
      return by(peer_key());
    }
    case CmdOp::kPut:
    case CmdOp::kGet:
    case CmdOp::kIfence:
      return by(0x776e0000ull ^
                static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(cmd.win.idx)));
    case CmdOp::kStartPersistent:
    case CmdOp::kFreePersistent:
      // The slot's home engine was fixed at init (engine_of of the
      // equivalent one-shot command), so every generation of one request
      // lands in one engine's queues in submission order.
      return persist_.at(static_cast<std::size_t>(cmd.count))->home_engine;
    case CmdOp::kShutdown:
      return 0;  // never routed: shutdown() broadcasts to every engine
    default:
      // Collectives and window management: same communicator -> same engine
      // preserves the rank's collective posting order.
      return by(comm_key());
  }
}

// ------------------------------------------------------ application side ----

OffloadChannel::Lane* OffloadChannel::lane_for_caller(std::size_t engine_idx,
                                                      bool& overflow) {
  overflow = false;
  if (opts_.lane_count == 0) return nullptr;
  const int slot = rc_.thread_slot();
  const auto s = static_cast<std::size_t>(slot);
  if (s >= lane_of_slot_.size()) lane_of_slot_.resize(s + 1, kNoLane);
  std::uint32_t row = lane_of_slot_[s];
  if (row == kNoLane) {
    if (next_lane_ < opts_.lane_count) {
      row = static_cast<std::uint32_t>(next_lane_++);
      lane_of_slot_[s] = row;
      for (std::size_t e = 0; e < engines_.size(); ++e) {
        lanes_[row * engines_.size() + e]->owner_slot = slot;
      }
    } else {
      // More submitting fibers than lane rows: overflow to the shared rings.
      lane_of_slot_[s] = kSharedRing;
      overflow = true;
      return nullptr;
    }
  }
  if (row == kSharedRing) {
    overflow = true;
    return nullptr;
  }
  return lanes_[row * engines_.size() + engine_idx].get();
}

std::uint32_t OffloadChannel::alloc_slot() {
  const auto& p = rc_.profile();
  // Allocate the proxy request (lock-free pool op).
  sim::advance(p.request_pool_op);
  std::uint32_t proxy = pool_.alloc();
  for (int retries = 0; proxy == RequestPool::kNil; ++retries) {
    // Pool exhausted: wait for another thread to recycle a slot. A
    // single-threaded application that over-posts can never recycle, so a
    // bounded wait converts that programming error into a clear failure
    // instead of a silent deadlock.
    if (retries > 64) {
      throw std::runtime_error(
          "offload request pool exhausted: too many outstanding requests "
          "(increase pool_capacity or wait on requests sooner)");
    }
    ++stats_.pool_full_stalls;
    trace::instant("stall:pool-full", "offload");
    const std::uint64_t seen = completions_.count();
    completions_.wait_beyond_timeout(seen, sim::Time::from_us(200));
    proxy = pool_.alloc();
  }
  san::acquire(&pool_, proxy);  // HB edge from the releasing free()
  cont_.reset(proxy);  // recycle the slot's continuation state with it
  return proxy;
}

std::uint32_t OffloadChannel::alloc_slot_engine(Engine& e) {
  const auto& p = rc_.profile();
  sim::advance(p.request_pool_op);
  std::uint32_t proxy = pool_.alloc();
  for (int retries = 0; proxy == RequestPool::kNil; ++retries) {
    // Engine context: blocking on completions_ would deadlock (the engines
    // are its only signallers). Complete in-flight work instead, and advance
    // the clock so application fibers get a chance to free finished slots.
    if (retries > 64) {
      throw std::runtime_error(
          "offload request pool exhausted while posting from a continuation "
          "(increase pool_capacity or post smaller follow-up graphs)");
    }
    ++stats_.pool_full_stalls;
    trace::instant("stall:pool-full", "offload");
    drive_progress(e);
    sim::advance(sim::Time::from_us(1));
    proxy = pool_.alloc();
  }
  san::acquire(&pool_, proxy);
  cont_.reset(proxy);
  return proxy;
}

std::uint32_t OffloadChannel::submit_from_engine(Engine& e, Command cmd) {
  // A continuation posting a follow-up: no lane, no ring, no doorbell — the
  // posting engine IS a consumer, so the command issues directly (and its
  // in-flight lands on this engine, whatever engine_of would have said).
  // This is also the no-deadlock rule: a full ring can never wedge a
  // posting callback.
  trace::Scope tsc("cont:post", "offload");
  cmd.proxy = alloc_slot_engine(e);
  ++stats_.cont_posts;
  process_command(e, cmd);
  return cmd.proxy;
}

void OffloadChannel::push_lane(Lane& lane, const Command& cmd) {
  const auto& p = rc_.profile();
  for (int spins = 0; !lane.ring.try_push(cmd); ++spins) {
    if (spins > kFullSpinBound) {
      throw std::runtime_error(
          "offload submission lane stuck full: engine is not draining "
          "(increase lane_capacity or check the offload fibers are running)");
    }
    ++stats_.lane_full_stalls;
    ++lane.stats.full_stalls;
    trace::instant("stall:lane-full", "offload");
    rc_.arrivals().signal();
    sim::advance(p.cmd_enqueue);  // retry cost
  }
  san::channel_push(&lane);  // SPSC publish: tail store-release
  const std::size_t occ = lane.ring.size_approx();
  lane.stats.max_occupancy =
      std::max<std::uint64_t>(lane.stats.max_occupancy, occ);
  lane.gauge.set(static_cast<double>(occ));
}

void OffloadChannel::push_shared_locked(Engine& e, const Command& cmd) {
  const auto& p = rc_.profile();
  // The target ring's tail cache line: concurrent producers serialize here,
  // each acquisition charging Profile::mpsc_line_transfer.
  sim::LockGuard g(e.tail_line);
  for (int spins = 0; !e.ring.try_push(cmd); ++spins) {
    if (spins > kFullSpinBound) {
      throw std::runtime_error(
          "offload command ring stuck full: engine is not draining "
          "(increase ring_capacity or check the offload fibers are running)");
    }
    ++stats_.ring_full_stalls;
    trace::instant("stall:ring-full", "offload");
    rc_.arrivals().signal();
    sim::advance(p.cmd_enqueue);  // retry cost
  }
  san::channel_push(&e.ring);  // MPSC publish: seq store-release
  e.g_ring.set(static_cast<double>(e.ring.size_approx()));
}

std::uint32_t OffloadChannel::submit(Command cmd) {
  if (Engine* e = engine_for_current_fiber(); e != nullptr) {
    return submit_from_engine(*e, cmd);
  }
  trace::Scope tsc("cmd:enqueue", "offload");
  const auto& p = rc_.profile();
  cmd.proxy = alloc_slot();
  // Serialize parameters + lock-free enqueue.
  sim::advance(p.cmd_enqueue);
  const std::size_t eidx = engine_of(cmd);
  bool overflow = false;
  if (Lane* lane = lane_for_caller(eidx, overflow); lane != nullptr) {
    push_lane(*lane, cmd);
    ++stats_.lane_submits;
    ++lane->stats.submits;
  } else {
    push_shared_locked(*engines_[eidx], cmd);
    ++(overflow ? stats_.overflow_submits : stats_.shared_submits);
  }
  // Ring the doorbell: the offload fibers' poll loops notice new work after
  // their detection latency.
  trace::instant("doorbell", "offload");
  rc_.arrivals().signal();
  return cmd.proxy;
}

void OffloadChannel::submit_batch(std::span<Command> cmds) {
  if (cmds.empty()) return;
  if (Engine* eng = engine_for_current_fiber(); eng != nullptr) {
    // Engine context keeps the batch's FIFO order but issues directly; the
    // batching win (one doorbell, one publish) is moot when an engine is
    // already awake running the posting callback.
    for (Command& c : cmds) c.proxy = submit_from_engine(*eng, c);
    ++stats_.batches;
    stats_.batched_commands += cmds.size();
    return;
  }
  trace::Scope tsc("cmd:enqueue-batch", "offload");
  const auto& p = rc_.profile();
  for (Command& c : cmds) c.proxy = alloc_slot();
  // The first command pays the full serialize+publish cost; the rest only
  // the marginal marshalling into already-hot cells.
  sim::advance(p.cmd_enqueue);
  if (cmds.size() > 1) {
    sim::advance(sim::Time(p.cmd_enqueue_batch.ns() *
                           static_cast<std::int64_t>(cmds.size() - 1)));
  }
  // Route once per command, in order (wildcard stickiness in engine_of is
  // order-sensitive), then publish each run of same-engine commands as one
  // group: relative order within an engine — the only order matching can
  // observe — is exactly the batch's.
  std::vector<std::size_t> target(cmds.size());
  for (std::size_t k = 0; k < cmds.size(); ++k) target[k] = engine_of(cmds[k]);
  std::size_t i = 0;
  while (i < cmds.size()) {
    std::size_t j = i + 1;
    while (j < cmds.size() && target[j] == target[i]) ++j;
    std::span<Command> group = cmds.subspan(i, j - i);
    const std::size_t eidx = target[i];
    bool overflow = false;
    if (Lane* lane = lane_for_caller(eidx, overflow); lane != nullptr) {
      std::span<Command> rest = group;
      int spins = 0;
      while (!rest.empty()) {
        const std::size_t n = lane->ring.try_push_n(rest);
        if (n != 0) san::channel_push(lane, n);  // one release covers the group
        rest = rest.subspan(n);
        if (rest.empty()) break;
        if (++spins > kFullSpinBound) {
          throw std::runtime_error(
              "offload submission lane stuck full: engine is not draining "
              "(increase lane_capacity or check the offload fibers are "
              "running)");
        }
        ++stats_.lane_full_stalls;
        ++lane->stats.full_stalls;
        trace::instant("stall:lane-full", "offload");
        rc_.arrivals().signal();
        sim::advance(p.cmd_enqueue);  // retry cost
      }
      const std::size_t occ = lane->ring.size_approx();
      lane->stats.max_occupancy =
          std::max<std::uint64_t>(lane->stats.max_occupancy, occ);
      lane->gauge.set(static_cast<double>(occ));
      lane->stats.submits += group.size();
      ++lane->stats.batches;
      lane->stats.batched_commands += group.size();
      stats_.lane_submits += group.size();
    } else {
      // No lane: the group still amortizes the doorbell and pays the tail
      // cache-line transfer once per engine touched.
      Engine& e = *engines_[eidx];
      sim::LockGuard g(e.tail_line);
      for (const Command& c : group) {
        for (int spins = 0; !e.ring.try_push(c); ++spins) {
          if (spins > kFullSpinBound) {
            throw std::runtime_error(
                "offload command ring stuck full: engine is not draining "
                "(increase ring_capacity or check the offload fibers are "
                "running)");
          }
          ++stats_.ring_full_stalls;
          trace::instant("stall:ring-full", "offload");
          rc_.arrivals().signal();
          sim::advance(p.cmd_enqueue);  // retry cost
        }
        san::channel_push(&e.ring);
      }
      e.g_ring.set(static_cast<double>(e.ring.size_approx()));
      (overflow ? stats_.overflow_submits : stats_.shared_submits) +=
          group.size();
    }
    i = j;
  }
  ++stats_.batches;
  stats_.batched_commands += cmds.size();
  // ONE doorbell for the whole batch.
  trace::instant("doorbell", "offload");
  rc_.arrivals().signal();
}

void OffloadChannel::push_to_engine(std::size_t eidx, const Command& cmd) {
  bool overflow = false;
  if (Lane* lane = lane_for_caller(eidx, overflow); lane != nullptr) {
    push_lane(*lane, cmd);
    ++stats_.lane_submits;
    ++lane->stats.submits;
  } else {
    push_shared_locked(*engines_[eidx], cmd);
    ++(overflow ? stats_.overflow_submits : stats_.shared_submits);
  }
  trace::instant("doorbell", "offload");
  rc_.arrivals().signal();
}

// ------------------------------------------- persistent application side ----

namespace {
[[noreturn]] void persist_throw(int rank, const char* call, const char* what) {
  san::mpi_persist_misuse(rank, call, what);
  throw std::logic_error(std::string(call) + ": " + what);
}
}  // namespace

std::uint32_t OffloadChannel::persist_init(const Command& cmd,
                                           std::uint32_t partitions) {
  if (cmd.op != CmdOp::kIsend && cmd.op != CmdOp::kIrecv) {
    throw std::invalid_argument("persist_init: only isend/irecv envelopes");
  }
  if (partitions != 0) {
    if (partitions > static_cast<std::uint32_t>(smpi::kMaxPartitions)) {
      persist_throw(rc_.rank(), "persist_init", "too many partitions");
    }
    if (cmd.tag < 0 || cmd.tag >= smpi::kMaxPartBaseTag) {
      persist_throw(rc_.rank(), "persist_init",
                    "partitioned base tag out of range");
    }
    if (cmd.peer == smpi::kAnySource) {
      // Partition frames are invisible to wildcard matching by design.
      persist_throw(rc_.rank(), "persist_init",
                    "partitioned ops require a specific peer");
    }
  }
  trace::Scope tsc("persist:init", "offload");
  const auto& p = rc_.profile();
  // Init pays the full serialize cost once — that is the bargain: every
  // subsequent start pays only cmd_enqueue_persist.
  sim::advance(p.cmd_enqueue);
  auto ps = std::make_unique<PersistSlot>();
  ps->is_send = cmd.op == CmdOp::kIsend;
  ps->sbuf = cmd.sbuf;
  ps->rbuf = cmd.rbuf;
  ps->count = cmd.count;
  ps->dtype = cmd.dtype;
  ps->peer = cmd.peer;
  ps->tag = cmd.tag;
  ps->comm = cmd.comm;
  ps->partitions = partitions;
  ps->proxy = alloc_slot();  // pinned for the lifetime of the request
  ps->home_engine = engine_of(cmd);
  if (partitions != 0) {
    const std::size_t words = (partitions + 63) / 64;
    ps->ready = std::vector<PartReadyWord>(words);
    ps->shipped.assign(words, 0);
  }
  if (slot_persist_.size() <= ps->proxy) {
    slot_persist_.resize(static_cast<std::size_t>(ps->proxy) + 1, 0);
  }
  const auto idx = static_cast<std::uint32_t>(persist_.size());
  slot_persist_[ps->proxy] = idx + 1;
  persist_.push_back(std::move(ps));
  return idx;
}

void OffloadChannel::persist_start(std::uint32_t idx) {
  PersistSlot& ps = *persist_.at(idx);
  if (ps.state == PState::kFreed) {
    persist_throw(rc_.rank(), "persist_start", "request was freed");
  }
  if (ps.state == PState::kStarted) {
    persist_throw(rc_.rank(), "persist_start",
                  "previous generation still in flight");
  }
  trace::Scope tsc("persist:start", "offload");
  const auto& p = rc_.profile();
  // Re-arm the pinned pool slot and the continuation claim; both are
  // quiescent (previous generation consumed, next start not yet published).
  sim::advance(p.request_pool_op);
  pool_.rearm(ps.proxy);
  cont_.reset(ps.proxy);
  for (PartReadyWord& w : ps.ready) w.reset();
  ps.marked = 0;
  ps.state = PState::kStarted;
  Command cmd;
  cmd.op = CmdOp::kStartPersistent;
  cmd.proxy = ps.proxy;
  cmd.count = idx;
  cmd.peer = ps.peer;
  cmd.comm = ps.comm;
  if (Engine* e = engine_for_current_fiber(); e != nullptr) {
    // A continuation restarting its own request: issue directly, like every
    // other engine-context post.
    sim::advance(p.cmd_dequeue);
    engine_start_persistent(*e, idx);
    return;
  }
  // The thin re-arm publish: a slot index, not an envelope.
  sim::advance(p.cmd_enqueue_persist);
  push_to_engine(ps.home_engine, cmd);
}

void OffloadChannel::persist_pready(std::uint32_t idx, std::uint32_t lo,
                                    std::uint32_t hi) {
  PersistSlot& ps = *persist_.at(idx);
  if (!ps.is_send || ps.partitions == 0) {
    persist_throw(rc_.rank(), "persist_pready",
                  "request is not a partitioned send");
  }
  if (ps.state != PState::kStarted) {
    persist_throw(rc_.rank(), "persist_pready", "no generation started");
  }
  if (lo > hi || hi >= ps.partitions) {
    persist_throw(rc_.rank(), "persist_pready", "partition out of range");
  }
  const auto& p = rc_.profile();
  for (std::uint32_t part = lo; part <= hi; ++part) {
    sim::advance(p.pready_publish);
    // One release-RMW: publishes the partition's payload bytes to the
    // engine that observes the bit. The previous value is the double-mark
    // check for free.
    const std::uint64_t prev = ps.ready[part / 64].mark(part % 64);
    if ((prev >> (part % 64)) & 1u) {
      persist_throw(rc_.rank(), "persist_pready",
                    "partition marked ready twice in one generation");
    }
    ++ps.marked;
  }
  trace::instant("pready", "offload");
  // Doorbell: a sleeping engine re-checks persistent_ready_pending against
  // this signal's count before committing to sleep.
  rc_.arrivals().signal();
}

void OffloadChannel::persist_wait(std::uint32_t idx, smpi::Status* st) {
  if (in_engine()) {
    throw std::logic_error(
        san::engine_block_message("OffloadChannel::persist_wait"));
  }
  PersistSlot& ps = *persist_.at(idx);
  if (ps.state == PState::kFreed) {
    persist_throw(rc_.rank(), "persist_wait", "request was freed");
  }
  if (ps.state == PState::kInactive) {
    if (st != nullptr) *st = smpi::Status{};
    return;  // trivially complete, like MPI_Wait on an inactive request
  }
  if (ps.is_send && ps.partitions != 0 && ps.marked != ps.partitions) {
    persist_throw(rc_.rank(), "persist_wait",
                  "wait with unmarked partitions (the send can never "
                  "complete; pready every partition first)");
  }
  trace::Scope tsc("wait:flag", "offload");
  const auto& p = rc_.profile();
  for (;;) {
    sim::advance(p.done_flag_check);
    if (pool_.done(ps.proxy)) break;
    const std::uint64_t seen = completions_.count();
    if (pool_.done(ps.proxy)) break;
    completions_.wait_beyond(seen);
  }
  san::acquire(&pool_, ps.proxy);  // done-flag acquire: Status visible
  if (st != nullptr) *st = pool_.status(ps.proxy);
  // Consume the completion WITHOUT freeing the pinned slot: the request
  // returns to kInactive, ready for the next start.
  ps.state = PState::kInactive;
}

bool OffloadChannel::persist_test(std::uint32_t idx, smpi::Status* st) {
  PersistSlot& ps = *persist_.at(idx);
  if (ps.state == PState::kFreed) {
    persist_throw(rc_.rank(), "persist_test", "request was freed");
  }
  if (ps.state == PState::kInactive) {
    if (st != nullptr) *st = smpi::Status{};
    return true;
  }
  const auto& p = rc_.profile();
  sim::advance(p.done_flag_check);
  if (!pool_.done(ps.proxy)) return false;
  san::acquire(&pool_, ps.proxy);
  if (st != nullptr) *st = pool_.status(ps.proxy);
  ps.state = PState::kInactive;
  return true;
}

void OffloadChannel::persist_free(std::uint32_t idx) {
  PersistSlot& ps = *persist_.at(idx);
  if (ps.state == PState::kFreed) return;  // freeing twice is a no-op
  if (ps.state == PState::kStarted) {
    persist_throw(rc_.rank(), "persist_free", "generation still in flight");
  }
  ps.state = PState::kFreed;
  Command cmd;
  cmd.op = CmdOp::kFreePersistent;
  cmd.proxy = ps.proxy;
  cmd.count = idx;
  cmd.peer = ps.peer;
  cmd.comm = ps.comm;
  if (Engine* e = engine_for_current_fiber(); e != nullptr) {
    sim::advance(rc_.profile().cmd_dequeue);
    engine_free_persistent(*e, idx);
    return;
  }
  sim::advance(rc_.profile().cmd_enqueue_persist);
  push_to_engine(ps.home_engine, cmd);
}

bool OffloadChannel::persist_attach_continuation(std::uint32_t idx,
                                                 ContFn fn) {
  PersistSlot& ps = *persist_.at(idx);
  if (ps.state != PState::kStarted) {
    persist_throw(rc_.rank(), "attach_continuation",
                  "no generation started on this persistent request");
  }
  // Same arm/fire protocol as one-shot slots; the persistent-aware free
  // paths (slot_persist_) reset the slot to kInactive instead of freeing it.
  return attach_continuation(ps.proxy, std::move(fn));
}

void OffloadChannel::wait_done(std::uint32_t proxy, smpi::Status* st) {
  if (in_engine()) {
    throw std::logic_error(
        san::engine_block_message("OffloadChannel::wait_done"));
  }
  trace::Scope tsc("wait:flag", "offload");
  const auto& p = rc_.profile();
  for (;;) {
    sim::advance(p.done_flag_check);
    if (pool_.done(proxy)) break;
    const std::uint64_t seen = completions_.count();
    if (pool_.done(proxy)) break;
    completions_.wait_beyond(seen);
  }
  san::acquire(&pool_, proxy);  // done-flag acquire: Status/payload visible
  if (st != nullptr) *st = pool_.status(proxy);
  sim::advance(p.request_pool_op);
  san::release(&pool_, proxy);  // hand the slot to the next alloc()
  pool_.free(proxy);
  completions_.signal();  // a freed slot may unblock a pool-exhausted submit
}

bool OffloadChannel::test_done(std::uint32_t proxy, smpi::Status* st) {
  const auto& p = rc_.profile();
  sim::advance(p.done_flag_check);
  if (!pool_.done(proxy)) return false;
  san::acquire(&pool_, proxy);
  if (st != nullptr) *st = pool_.status(proxy);
  sim::advance(p.request_pool_op);
  san::release(&pool_, proxy);
  pool_.free(proxy);
  completions_.signal();
  return true;
}

bool OffloadChannel::attach_continuation(std::uint32_t proxy, ContFn fn) {
  const auto& p = rc_.profile();
  // Publish the callback record first; the arm() claim's release makes it
  // visible to the engines. (From engine context — a callback chaining onto
  // a slot it just posted — the same protocol works: fire() for that slot
  // can only happen on the fiber that tracks it, later.)
  san::check_write(&cont_fns_[proxy], sizeof(ContFn), "cont.fns[slot]");
  cont_fns_[proxy] = std::move(fn);
  sim::advance(p.request_pool_op);
  san::release(&cont_, proxy);  // published before the claim CAS
  if (!cont_.arm(proxy)) {
    // Claim won: the completer will find kArmed and queue the callback.
    ++stats_.cont_armed;
    return false;
  }
  // Already fired: the completion's Status/payload are visible (failed-CAS
  // acquire), so run the callback inline on this thread and free the slot.
  san::acquire(&cont_, proxy);  // completer's publish (failed-CAS acquire)
  san::check_read(&cont_fns_[proxy], sizeof(ContFn), "cont.fns[slot]");
  ContFn f = std::move(cont_fns_[proxy]);
  cont_fns_[proxy] = nullptr;
  const smpi::Status st = pool_.status(proxy);
  cont_.reset(proxy);
  const std::uint32_t pers =
      proxy < slot_persist_.size() ? slot_persist_[proxy] : 0;
  if (pers != 0) {
    // Persistent: consume the completion (kInactive) but keep the pinned
    // slot — the inline callback may restart the request.
    persist_[pers - 1]->state = PState::kInactive;
  } else {
    sim::advance(p.request_pool_op);
    san::release(&pool_, proxy);
    pool_.free(proxy);
    completions_.signal();
  }
  ++stats_.cont_inline;
  {
    trace::Scope tsc("cont:inline", "offload");
    f(st);
  }
  completions_.signal();  // the callback may have set a cont_wait Event
  return true;
}

void OffloadChannel::shutdown() {
  Command c;
  c.op = CmdOp::kShutdown;
  sim::advance(rc_.profile().cmd_enqueue);
  // One shutdown per engine, each through that engine's shared ring
  // regardless of lanes: an engine keeps draining its lanes until they are
  // empty even after seeing it, and a stolen shutdown still sets the
  // channel-wide flag — every engine exits once its own share is drained.
  for (auto& ep : engines_) {
    Engine& e = *ep;
    sim::LockGuard g(e.tail_line);
    while (!e.ring.try_push(c)) sim::advance(rc_.profile().cmd_enqueue);
    san::channel_push(&e.ring);
  }
  rc_.arrivals().signal();
}

// ------------------------------------------------------------ engine side ----

OffloadChannel::Engine* OffloadChannel::engine_for_current_fiber() {
  sim::Engine* eng = sim::Engine::current();
  if (eng == nullptr) return nullptr;
  const sim::Fiber* f = eng->current_fiber();
  if (f == nullptr) return nullptr;
  for (auto& e : engines_) {
    if (e->fiber == f) return e.get();
  }
  return nullptr;
}

void OffloadChannel::complete_slot(Engine& e, std::uint32_t proxy,
                                   const smpi::Status& st) {
  // The payload/Status writes precede the fire() claim; an armed slot's
  // callback is therefore always entitled to read them.
  pool_.complete(proxy, st);
  san::release(&pool_, proxy);  // done-flag release: payload published
  ++stats_.completions;
  trace::instant("done:publish", "offload");
  completions_.signal();
  san::release(&cont_, proxy);  // published before the fire() claim
  if (cont_.fire(proxy)) {
    // A continuation is armed: its record is visible (failed-CAS acquire).
    // Queue it on the DISCOVERING engine for the bounded run pass rather
    // than running here so a burst of completions cannot starve the testany
    // sweep mid-loop.
    san::acquire(&cont_, proxy);
    e.cont_ready.push_back(proxy);
  }
}

void OffloadChannel::issue(Engine& e, const Command& cmd) {
  using smpi::Datatype;
  smpi::Request real{};
  // Ops with no (or immediate) MPI-level completion are finished inline.
  switch (cmd.op) {
    case CmdOp::kWinCreate:
      *cmd.win_out = rc_.win_create(cmd.rbuf, cmd.count, cmd.comm);
      complete_slot(e, cmd.proxy, smpi::Status{});
      return;
    case CmdOp::kWinFree:
      rc_.win_free(cmd.win);
      complete_slot(e, cmd.proxy, smpi::Status{});
      return;
    case CmdOp::kPut:
      rc_.put(cmd.sbuf, cmd.count, cmd.peer, cmd.offset, cmd.win);
      complete_slot(e, cmd.proxy, smpi::Status{});
      return;
    case CmdOp::kGet:
      rc_.get(cmd.rbuf, cmd.count, cmd.peer, cmd.offset, cmd.win);
      complete_slot(e, cmd.proxy, smpi::Status{});
      return;
    case CmdOp::kIfence:
      track_inflight(e, rc_.ifence(cmd.win), cmd.proxy);
      return;
    case CmdOp::kStartPersistent:
      engine_start_persistent(e, static_cast<std::uint32_t>(cmd.count));
      return;
    case CmdOp::kFreePersistent:
      engine_free_persistent(e, static_cast<std::uint32_t>(cmd.count));
      return;
    default:
      break;
  }
  switch (cmd.op) {
    case CmdOp::kIsend:
      real = rc_.isend(cmd.sbuf, cmd.count, cmd.dtype, cmd.peer, cmd.tag, cmd.comm);
      break;
    case CmdOp::kIrecv:
      real = rc_.irecv(cmd.rbuf, cmd.count, cmd.dtype, cmd.peer, cmd.tag, cmd.comm);
      break;
    case CmdOp::kIbarrier:
      real = rc_.ibarrier(cmd.comm);
      break;
    case CmdOp::kIbcast:
      real = rc_.ibcast(cmd.rbuf, cmd.count, cmd.dtype, cmd.peer, cmd.comm);
      break;
    case CmdOp::kIreduce:
      real = rc_.ireduce(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.rop,
                         cmd.peer, cmd.comm);
      break;
    case CmdOp::kIallreduce:
      real = rc_.iallreduce(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.rop,
                            cmd.comm);
      break;
    case CmdOp::kIalltoall:
      real = rc_.ialltoall(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.comm);
      break;
    case CmdOp::kIallgather:
      real = rc_.iallgather(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.comm);
      break;
    case CmdOp::kIgather:
      real = rc_.igather(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.peer,
                         cmd.comm);
      break;
    case CmdOp::kIscatter:
      real = rc_.iscatter(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.peer,
                          cmd.comm);
      break;
    case CmdOp::kShutdown:
      throw std::logic_error("shutdown reached issue()");
    default:  // RMA ops return from the inline-completion switch above
      throw std::logic_error("inline-completed op fell through to issue()");
  }
  track_inflight(e, real, cmd.proxy);
}

void OffloadChannel::track_inflight(Engine& e, smpi::Request real,
                                    std::uint32_t proxy,
                                    std::uint32_t persist) {
  e.inflight.push_back({real, proxy, sim::now(), false, persist});
  e.scratch_reqs.push_back(real);
  ++e.live_inflight;
  std::size_t live_total = 0;
  for (const auto& ep : engines_) live_total += ep->live_inflight;
  stats_.max_inflight =
      std::max<std::uint64_t>(stats_.max_inflight, live_total);
  e.g_inflight.set(static_cast<double>(e.live_inflight));
}

// ------------------------------------------------ persistent engine side ----

void OffloadChannel::engine_start_persistent(Engine& e, std::uint32_t idx) {
  PersistSlot& ps = *persist_.at(idx);
  const std::uint32_t pidx = idx + 1;  // Inflight.persist tag
  if (ps.partitions == 0) {
    // Plain persistent: the rc_-level persistent request is created lazily
    // on the first start (init never enters MPI from the engine), then every
    // generation is a bare MPI_Start on the same handle.
    if (ps.mpi.is_null()) {
      ps.mpi = ps.is_send ? rc_.send_init(ps.sbuf, ps.count, ps.dtype,
                                          ps.peer, ps.tag, ps.comm)
                          : rc_.recv_init(ps.rbuf, ps.count, ps.dtype,
                                          ps.peer, ps.tag, ps.comm);
    }
    rc_.start(ps.mpi);
    ps.remaining = 1;
    track_inflight(e, ps.mpi, ps.proxy, pidx);
    return;
  }
  // Partitioned: one rc_-level persistent request per partition, each a byte
  // slice of the buffer under its partition wire tag (wildcard receives can
  // never match these frames — matching.cpp rejects tag-bit-30).
  const std::uint64_t bytes = ps.count * smpi::datatype_size(ps.dtype);
  if (ps.parts.empty()) {
    ps.parts.resize(ps.partitions);
    for (std::uint32_t p = 0; p < ps.partitions; ++p) {
      const std::uint64_t lo = bytes * p / ps.partitions;
      const std::uint64_t hi = bytes * (p + 1) / ps.partitions;
      const int wtag = smpi::part_wire_tag(ps.tag, static_cast<int>(p));
      if (ps.is_send) {
        ps.parts[p] =
            rc_.send_init(static_cast<const char*>(ps.sbuf) + lo, hi - lo,
                          smpi::Datatype::kByte, ps.peer, wtag, ps.comm);
      } else {
        ps.parts[p] =
            rc_.recv_init(static_cast<char*>(ps.rbuf) + lo, hi - lo,
                          smpi::Datatype::kByte, ps.peer, wtag, ps.comm);
      }
    }
  }
  ps.remaining = ps.partitions;
  if (ps.is_send) {
    // Arm only: partitions ship from pump_persistent as pready bits land,
    // which is the whole point — early partitions go to the wire while
    // sibling compute threads are still producing theirs.
    std::fill(ps.shipped.begin(), ps.shipped.end(), 0);
    ps.armed = true;
    ++armed_psends_;
    // The arm races ahead-published pready bits: creating the per-partition
    // requests above yields, so an app thread may publish (and ring the
    // doorbell for) every partition before `armed` flips — a sibling engine
    // that polled in that window saw armed_psends_ == 0, judged the bits
    // un-actionable, and went to sleep past all of their signals. Re-ring
    // the doorbell after the arm so it re-evaluates ownership.
    for (const PartReadyWord& w : ps.ready) {
      if (w.load() != 0) {
        rc_.arrivals().signal();
        break;
      }
    }
    return;
  }
  // Partitioned receive: all partitions post immediately (the receiver has
  // no readiness to wait for).
  for (std::uint32_t p = 0; p < ps.partitions; ++p) {
    rc_.start(ps.parts[p]);
    track_inflight(e, ps.parts[p], ps.proxy, pidx);
  }
}

void OffloadChannel::engine_free_persistent(Engine& e, std::uint32_t idx) {
  (void)e;
  PersistSlot& ps = *persist_.at(idx);
  if (!ps.mpi.is_null()) rc_.request_free(ps.mpi);
  for (smpi::Request& r : ps.parts) {
    if (!r.is_null()) rc_.request_free(r);
  }
  ps.parts.clear();
  slot_persist_[ps.proxy] = 0;
  sim::advance(rc_.profile().request_pool_op);
  san::release(&pool_, ps.proxy);
  pool_.free(ps.proxy);
  completions_.signal();
}

std::size_t OffloadChannel::partition_engine(const PersistSlot& ps,
                                             std::uint32_t p) const {
  const std::size_t n = engines_.size();
  if (n == 1) return 0;
  // Deterministic disjoint ownership: every engine computes the same map, so
  // no two engines ever race to ship one partition. Mixing (comm, peer, p)
  // spreads one request's partitions across engines — per-partition wire
  // tags make them independent envelopes, so cross-engine issue is
  // order-safe.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ps.comm.idx))
       << 32) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(ps.peer)) ^
      (static_cast<std::uint64_t>(p + 1) << 20);
  return static_cast<std::size_t>(mix64(key) >> 32) % n;
}

bool OffloadChannel::persistent_ready_pending(const Engine& e) const {
  if (armed_psends_ == 0) return false;
  for (const auto& psp : persist_) {
    const PersistSlot& ps = *psp;
    if (!ps.armed) continue;
    for (std::size_t w = 0; w < ps.ready.size(); ++w) {
      std::uint64_t avail = ps.ready[w].load() & ~ps.shipped[w];
      while (avail != 0) {
        const auto p = static_cast<std::uint32_t>(
            w * 64 + static_cast<unsigned>(std::countr_zero(avail)));
        if (partition_engine(ps, p) == e.index) return true;
        avail &= avail - 1;
      }
    }
  }
  return false;
}

bool OffloadChannel::pump_persistent(Engine& e) {
  if (armed_psends_ == 0) return false;
  bool any = false;
  for (std::size_t i = 0; i < persist_.size(); ++i) {
    PersistSlot& ps = *persist_[i];
    if (!ps.armed) continue;  // also gates slots whose start is still queued
    for (std::size_t w = 0; w < ps.ready.size(); ++w) {
      for (;;) {
        // Re-read after every ship: rc_.start yields, and bits published
        // meanwhile should go out in this same pass.
        std::uint64_t avail = ps.ready[w].load() & ~ps.shipped[w];
        bool shipped_one = false;
        while (avail != 0) {
          const auto bit = static_cast<unsigned>(std::countr_zero(avail));
          avail &= avail - 1;
          const auto p = static_cast<std::uint32_t>(w * 64 + bit);
          if (partition_engine(ps, p) != e.index) continue;
          // Shipped bit set BEFORE issuing: the issue yields, and our own
          // next pass (or a sibling's re-check) must see the partition as
          // taken.
          ps.shipped[w] |= 1ull << bit;
          trace::Scope tsc("part:ship", "offload");
          sim::advance(rc_.profile().cmd_dequeue);
          rc_.start(ps.parts[p]);
          track_inflight(e, ps.parts[p], ps.proxy,
                         static_cast<std::uint32_t>(i) + 1);
          any = true;
          shipped_one = true;
          break;
        }
        if (!shipped_one) break;
      }
    }
  }
  return any;
}

void OffloadChannel::process_command(Engine& e, const Command& cmd) {
  // One span per command covering dequeue + issue, named after the op.
  trace::Scope tsc(cmd_op_name(cmd.op), "offload");
  sim::advance(rc_.profile().cmd_dequeue);
  if (cmd.op == CmdOp::kShutdown) {
    // Channel-wide: shutdown() broadcasts one per engine, and a stolen copy
    // must still stop the victim once its queues drain.
    shutdown_requested_ = true;
    return;
  }
  ++stats_.commands;
  issue(e, cmd);
}

bool OffloadChannel::drain_lanes_round(Engine& e) {
  // One round-robin pass over this engine's lane column, at most
  // lane_drain_bound commands per lane: the fairness bound keeps a
  // saturating lane from starving its neighbours or postponing the testany
  // pass indefinitely. Caller holds e.claim.
  bool any = false;
  const std::size_t rows = opts_.lane_count;
  if (rows == 0) return false;
  const std::size_t n = engines_.size();
  for (std::size_t k = 0; k < rows; ++k) {
    Lane& lane = *lanes_[((e.drain_cursor + k) % rows) * n + e.index];
    Command cmd;
    std::size_t popped = 0;
    while (popped < opts_.lane_drain_bound && lane.ring.try_pop(cmd)) {
      san::channel_pop(&lane);  // SPSC consume: joins the producer's publish
      ++popped;
      ++lane.stats.drained;
      lane.gauge.set(static_cast<double>(lane.ring.size_approx()));
      process_command(e, cmd);
    }
    any = any || popped != 0;
  }
  // Rotate the starting lane so equal backlogs drain at equal rates.
  e.drain_cursor = (e.drain_cursor + 1) % rows;
  return any;
}

bool OffloadChannel::drain_shared(Engine& e) {
  // Caller holds e.claim.
  bool any = false;
  Command cmd;
  while (e.ring.try_pop(cmd)) {
    san::channel_pop(&e.ring);
    any = true;
    e.g_ring.set(static_cast<double>(e.ring.size_approx()));
    process_command(e, cmd);
  }
  return any;
}

bool OffloadChannel::steal_round(Engine& e) {
  const std::size_t n = engines_.size();
  if (n < 2 || opts_.steal_bound == 0) return false;
  for (std::size_t k = 1; k < n; ++k) {
    Engine& v = *engines_[(e.index + k) % n];
    if (!submissions_pending(v)) continue;
    if (!v.claim.try_claim()) continue;  // owner (or another thief) is on it
    san::acquire(&v.claim, 0);  // previous holder's consumer-side state
    // Claim held across the WHOLE pop+issue sequence: issuing yields, and
    // releasing between pop and issue would let the owner interleave
    // same-envelope traffic out of posted order.
    std::size_t budget = opts_.steal_bound;
    std::size_t stolen = 0;
    Command cmd;
    const std::size_t rows = opts_.lane_count;
    for (std::size_t row = 0; row < rows && budget > 0; ++row) {
      Lane& lane = *lanes_[row * n + v.index];
      while (budget > 0 && lane.ring.try_pop(cmd)) {
        san::channel_pop(&lane);
        ++lane.stats.drained;
        lane.gauge.set(static_cast<double>(lane.ring.size_approx()));
        process_command(e, cmd);
        --budget;
        ++stolen;
      }
    }
    while (budget > 0 && v.ring.try_pop(cmd)) {
      san::channel_pop(&v.ring);
      v.g_ring.set(static_cast<double>(v.ring.size_approx()));
      process_command(e, cmd);
      --budget;
      ++stolen;
    }
    san::release(&v.claim, 0);  // hand consumer-side state to the next holder
    v.claim.release();
    if (stolen == 0) continue;
    ++stats_.steal_rounds;
    stats_.steal_commands += stolen;
    if (submissions_pending(v)) {
      // Leftovers: the owner may have armed its doorbell against a count
      // taken before our pops — re-ring so it cannot sleep past them.
      rc_.arrivals().signal();
    }
    return true;  // one victim per pass: stay fair to our own queues
  }
  return false;
}

bool OffloadChannel::submissions_pending(const Engine& e) const {
  if (!e.ring.empty_approx()) return true;
  const std::size_t rows = opts_.lane_count;
  const std::size_t n = engines_.size();
  for (std::size_t row = 0; row < rows; ++row) {
    if (!lanes_[row * n + e.index]->ring.empty_approx()) return true;
  }
  return false;
}

bool OffloadChannel::steal_work_available(const Engine& e) const {
  if (engines_.size() < 2 || opts_.steal_bound == 0) return false;
  for (const auto& v : engines_) {
    if (v.get() != &e && submissions_pending(*v)) return true;
  }
  return false;
}

void OffloadChannel::drive_progress(Engine& e) {
  watchdog_scan(e);
  if (e.live_inflight == 0) return;
  trace::Scope tsc("testany:sweep", "offload");
  // MPI_Testany over this engine's in-flight set; publish done flags as they
  // complete. Loop until a pass makes no progress (a real offload thread
  // would call Testany repeatedly while its queue is empty). Testany nulls
  // the span entry of the request it completes — that null is the dead-slot
  // marker, so no per-completion rebuild or erase is needed and the
  // remaining entries keep their FIFO positions.
  for (;;) {
    int idx = -1;
    smpi::Status st;
    ++stats_.testany_calls;
    const bool flag = rc_.testany(e.scratch_reqs, &idx, &st);
    if (!flag || idx < 0) break;
    const auto i = static_cast<std::size_t>(idx);
    if (const std::uint32_t pers = e.inflight[i].persist; pers != 0) {
      // One generation (or one partition) of a persistent request. The proxy
      // done flag publishes only when the whole generation is in: a
      // partitioned send/recv is complete when its LAST partition lands.
      PersistSlot& ps = *persist_[pers - 1];
      if (--ps.remaining == 0) {
        if (ps.armed) {
          ps.armed = false;
          --armed_psends_;
        }
        smpi::Status full = st;
        if (ps.partitions != 0) {
          // Synthesize the whole-message Status: base tag (the per-partition
          // wire tags are an implementation detail) and total bytes.
          full.tag = ps.tag;
          full.bytes = ps.count * smpi::datatype_size(ps.dtype);
        }
        complete_slot(e, ps.proxy, full);
      }
    } else {
      complete_slot(e, e.inflight[i].proxy, st);
    }
    --e.live_inflight;
    e.g_inflight.set(static_cast<double>(e.live_inflight));
    if (e.live_inflight == 0) break;
  }
  compact_inflight(e);
}

bool OffloadChannel::run_continuations(Engine& e) {
  if (e.cont_ready.empty()) return false;
  const auto& p = rc_.profile();
  // Bounded pass: callbacks may post follow-ups whose completions queue more
  // callbacks (drive_progress can run inside a post when the pool is tight),
  // so an unbounded drain could monopolize the engine. Leftovers run next
  // pass; the engine re-drains before sleeping because this returns true.
  std::size_t budget = opts_.cont_run_bound;
  bool any = false;
  while (budget-- > 0 && !e.cont_ready.empty()) {
    const std::uint32_t proxy = e.cont_ready.front();
    e.cont_ready.pop_front();
    san::check_read(&cont_fns_[proxy], sizeof(ContFn), "cont.fns[slot]");
    ContFn fn = std::move(cont_fns_[proxy]);
    cont_fns_[proxy] = nullptr;
    const smpi::Status st = pool_.status(proxy);
    // Free before running: the callback may post enough follow-ups to need
    // this very slot, and the exactly-once claim already consumed it.
    // Persistent slots are NOT freed — consuming the completion returns the
    // request to kInactive first, so the callback may Start the next
    // generation from inside itself.
    cont_.reset(proxy);
    const std::uint32_t pers =
        proxy < slot_persist_.size() ? slot_persist_[proxy] : 0;
    if (pers != 0) {
      persist_[pers - 1]->state = PState::kInactive;
    } else {
      sim::advance(p.request_pool_op);
      san::release(&pool_, proxy);
      pool_.free(proxy);
      completions_.signal();
    }
    {
      trace::Scope tsc("cont:run", "offload");
      fn(st);
    }
    // Signal again AFTER the callback: it may have set an application
    // visible flag (cont_wait's Event), and a waiter that snapshotted the
    // notifier mid-callback must not sleep past it.
    completions_.signal();
    ++stats_.cont_executed;
    any = true;
  }
  stats_.cont_deferred += e.cont_ready.size();
  return any;
}

void OffloadChannel::compact_inflight(Engine& e) {
  // Skipping dead slots during the Testany scan is cheap; reclaim them only
  // once they dominate so a steady stream of completions stays O(1) each.
  if (e.scratch_reqs.size() <= 32 ||
      e.live_inflight * 2 > e.scratch_reqs.size()) {
    return;
  }
  std::size_t w = 0;
  for (std::size_t r = 0; r < e.scratch_reqs.size(); ++r) {
    if (e.scratch_reqs[r].is_null()) continue;
    e.scratch_reqs[w] = e.scratch_reqs[r];
    e.inflight[w] = e.inflight[r];
    ++w;
  }
  e.scratch_reqs.resize(w);
  e.inflight.resize(w);
}

void OffloadChannel::watchdog_scan(Engine& e) {
  const sim::Time budget = opts_.watchdog_budget;
  if (budget.ns() <= 0 || e.live_inflight == 0) return;
  const sim::Time now = sim::now();
  if (now < e.next_watchdog_scan) return;
  e.next_watchdog_scan = now + sim::Time(budget.ns() / 8 + 1);
  for (std::size_t i = 0; i < e.inflight.size(); ++i) {
    if (e.scratch_reqs[i].is_null() || e.inflight[i].flagged) continue;
    if (now - e.inflight[i].issued_at > budget) {
      e.inflight[i].flagged = true;
      ++stats_.watchdog_flags;
      trace::instant("watchdog:stuck", "offload");
    }
  }
}

void OffloadChannel::engine_main(std::size_t idx) {
  Engine& e = *engines_.at(idx);
  const auto& p = rc_.profile();
  const bool faults_on = p.faults.enabled();
  sim::Fiber* self = sim::Engine::current()->current_fiber();
  // Stale-identity guard: a previous run of this engine that exited without
  // clearing its fiber (impossible via the RAII below, but the assert keeps
  // it that way) would let a RECYCLED fiber pointer inherit engine identity
  // and silently route application submits down the engine-only path.
  if (e.fiber != nullptr) {
    throw std::logic_error(
        "offload engine re-entered while a previous run still owns it "
        "(engine identity was never cleared)");
  }
  e.fiber = self;
  // Engine fibers share the rank's progress engine: progress_poll runs
  // single-flight across them instead of throwing on re-entry.
  rc_.register_progress_sharer(self);
  // Identity and registration must clear on EVERY exit path — clean return,
  // exception unwind, Cluster teardown — not just the happy one.
  struct IdentityGuard {
    smpi::RankCtx& rc;
    Engine& eng;
    sim::Fiber* f;
    ~IdentityGuard() {
      rc.unregister_progress_sharer(f);
      eng.fiber = nullptr;
    }
  } guard{rc_, e, self};

  std::uint64_t seen = rc_.arrivals().count();
  for (;;) {
    bool worked = false;
    if (e.claim.try_claim()) {
      san::acquire(&e.claim, 0);  // previous holder's consumer-side state
      worked = drain_lanes_round(e);
      worked = drain_shared(e) || worked;
      san::release(&e.claim, 0);
      e.claim.release();
    }
    // else: a thief holds our queues; progress/continuations still run, and
    // the spin polls below keep virtual time moving until it releases.
    drive_progress(e);
    // Ship any partition bits published since the last pass — this is where
    // early partitions overlap the senders still computing.
    worked = pump_persistent(e) || worked;
    worked = run_continuations(e) || worked;
    if (!worked) worked = steal_round(e);
    if (shutdown_requested_ && e.live_inflight == 0 &&
        !submissions_pending(e) && e.cont_ready.empty()) {
      return;
    }
    if (worked) {
      seen = rc_.arrivals().count();
      continue;
    }
    const std::uint64_t cur = rc_.arrivals().count();
    if (cur > seen) {
      seen = cur;
      continue;  // something happened while we were working
    }
    // Nothing to do: adaptive wait. Spin first (a doorbell rung during the
    // spin window is noticed within one cmd_detect poll — the cheapest
    // wake), then yield the core a few times, then block on the doorbell.
    // The Notifier's detection latency models the spin-poll granularity of
    // the real busy-waiting offload thread.
    bool woke = false;
    for (int i = 0; i < p.engine_spin_polls && !woke; ++i) {
      ++stats_.engine_spins;
      sim::advance(p.cmd_detect);
      woke = submissions_pending(e) || steal_work_available(e) ||
             persistent_ready_pending(e) || rc_.arrivals().count() > seen;
    }
    for (int i = 0; i < p.engine_yield_polls && !woke; ++i) {
      ++stats_.engine_yields;
      sim::yield();
      sim::advance(p.cmd_detect);
      woke = submissions_pending(e) || steal_work_available(e) ||
             persistent_ready_pending(e) || rc_.arrivals().count() > seen;
    }
    if (woke) continue;
    ++stats_.engine_sleeps;
    // Sleep transition, lost-doorbell hardened: snapshot the doorbell FIRST,
    // only then re-check every queue, and sleep beyond the snapshot. A
    // producer publishes (push) before it signals; if our re-check missed
    // the push, the signal necessarily lands after our snapshot, so the
    // wait below returns instead of stranding the command. (The buggy
    // ordering — re-check, THEN snapshot — leaves a window where the push
    // lands between the two and the signal is already counted in the
    // snapshot: armed equals the final count and the sleep never wakes. The
    // check-layer doorbell spec forces exactly that interleaving.)
    const std::uint64_t armed = rc_.arrivals().count();
    if (submissions_pending(e) || !e.cont_ready.empty() ||
        steal_work_available(e) || persistent_ready_pending(e)) {
      // (persistent_ready_pending: a pready published between our pump pass
      // and this snapshot would otherwise be stranded — its doorbell signal
      // may already be counted in `armed`.)
      // Own work re-checked under the armed snapshot — or a sibling still
      // has a backlog, which nothing would ring OUR doorbell for: keep
      // polling and retrying the steal instead of sleeping past it.
      seen = armed;
      continue;
    }
    if (faults_on) {
      // Under faults the wake we are waiting for may have been lost with the
      // frame that carried it. Sleep with a bound and run a progress pass so
      // the reliability layer's retransmit timers keep firing — the offload
      // thread is exactly the "always inside MPI" context the paper's
      // software-progress model promises.
      if (!rc_.arrivals().wait_beyond_timeout(armed, p.faults.rto_base)) {
        rc_.progress();
      }
      seen = rc_.arrivals().count();
    } else {
      seen = rc_.arrivals().wait_beyond(armed);
    }
  }
}

}  // namespace core
