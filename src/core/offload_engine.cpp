#include "core/offload_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "san/san.hpp"
#include "trace/scope.hpp"

namespace core {

namespace {
// A producer spinning this long on a full lane/ring means the engine is
// stuck or dead, not merely behind — fail loudly instead of hanging.
constexpr int kFullSpinBound = 1 << 16;
// lane_of_slot_ sentinels: slot not yet bound / bound to the shared ring.
constexpr std::uint32_t kNoLane = 0xffffffffu;
constexpr std::uint32_t kSharedRing = 0xfffffffeu;
}  // namespace

OffloadChannel::OffloadChannel(smpi::RankCtx& rc, const ProxyOptions& opts)
    : rc_(rc),
      opts_(opts),
      ring_(opts.ring_capacity),
      pool_(opts.pool_capacity),
      shared_tail_line_(rc.profile().mpsc_line_transfer),
      completions_(rc.profile().done_flag_detect),
      cont_(opts.pool_capacity),
      cont_fns_(opts.pool_capacity),
      g_ring_(rc.rank(), "ring_occupancy"),
      g_inflight_(rc.rank(), "inflight") {
  lanes_.reserve(opts_.lane_count);
  for (std::size_t i = 0; i < opts_.lane_count; ++i) {
    lanes_.push_back(
        std::make_unique<Lane>(opts_.lane_capacity, rc_.rank(), i));
  }
}

// ------------------------------------------------------ application side ----

OffloadChannel::Lane* OffloadChannel::lane_for_caller() {
  if (lanes_.empty()) return nullptr;
  const int slot = rc_.thread_slot();
  const auto s = static_cast<std::size_t>(slot);
  if (s >= lane_of_slot_.size()) lane_of_slot_.resize(s + 1, kNoLane);
  std::uint32_t li = lane_of_slot_[s];
  if (li == kNoLane) {
    if (next_lane_ < lanes_.size()) {
      li = static_cast<std::uint32_t>(next_lane_++);
      lane_of_slot_[s] = li;
      lanes_[li]->owner_slot = slot;
    } else {
      // More submitting fibers than lanes: overflow to the shared ring.
      lane_of_slot_[s] = kSharedRing;
      return nullptr;
    }
  }
  if (li == kSharedRing) return nullptr;
  return lanes_[li].get();
}

std::uint32_t OffloadChannel::alloc_slot() {
  const auto& p = rc_.profile();
  // Allocate the proxy request (lock-free pool op).
  sim::advance(p.request_pool_op);
  std::uint32_t proxy = pool_.alloc();
  for (int retries = 0; proxy == RequestPool::kNil; ++retries) {
    // Pool exhausted: wait for another thread to recycle a slot. A
    // single-threaded application that over-posts can never recycle, so a
    // bounded wait converts that programming error into a clear failure
    // instead of a silent deadlock.
    if (retries > 64) {
      throw std::runtime_error(
          "offload request pool exhausted: too many outstanding requests "
          "(increase pool_capacity or wait on requests sooner)");
    }
    ++stats_.pool_full_stalls;
    trace::instant("stall:pool-full", "offload");
    const std::uint64_t seen = completions_.count();
    completions_.wait_beyond_timeout(seen, sim::Time::from_us(200));
    proxy = pool_.alloc();
  }
  san::acquire(&pool_, proxy);  // HB edge from the releasing free()
  cont_.reset(proxy);  // recycle the slot's continuation state with it
  return proxy;
}

std::uint32_t OffloadChannel::alloc_slot_engine() {
  const auto& p = rc_.profile();
  sim::advance(p.request_pool_op);
  std::uint32_t proxy = pool_.alloc();
  for (int retries = 0; proxy == RequestPool::kNil; ++retries) {
    // Engine context: blocking on completions_ would deadlock (the engine is
    // its only signaller). Complete in-flight work instead, and advance the
    // clock so application fibers get a chance to free finished slots.
    if (retries > 64) {
      throw std::runtime_error(
          "offload request pool exhausted while posting from a continuation "
          "(increase pool_capacity or post smaller follow-up graphs)");
    }
    ++stats_.pool_full_stalls;
    trace::instant("stall:pool-full", "offload");
    drive_progress();
    sim::advance(sim::Time::from_us(1));
    proxy = pool_.alloc();
  }
  san::acquire(&pool_, proxy);
  cont_.reset(proxy);
  return proxy;
}

std::uint32_t OffloadChannel::submit_from_engine(Command cmd) {
  // A continuation posting a follow-up: no lane, no ring, no doorbell — the
  // engine IS the consumer, so the command issues directly. This is also the
  // no-deadlock rule: a full ring can never wedge a posting callback.
  trace::Scope tsc("cont:post", "offload");
  cmd.proxy = alloc_slot_engine();
  ++stats_.cont_posts;
  process_command(cmd);
  return cmd.proxy;
}

void OffloadChannel::push_lane(Lane& lane, const Command& cmd) {
  const auto& p = rc_.profile();
  for (int spins = 0; !lane.ring.try_push(cmd); ++spins) {
    if (spins > kFullSpinBound) {
      throw std::runtime_error(
          "offload submission lane stuck full: engine is not draining "
          "(increase lane_capacity or check the offload fiber is running)");
    }
    ++stats_.lane_full_stalls;
    ++lane.stats.full_stalls;
    trace::instant("stall:lane-full", "offload");
    rc_.arrivals().signal();
    sim::advance(p.cmd_enqueue);  // retry cost
  }
  san::channel_push(&lane);  // SPSC publish: tail store-release
  const std::size_t occ = lane.ring.size_approx();
  lane.stats.max_occupancy =
      std::max<std::uint64_t>(lane.stats.max_occupancy, occ);
  lane.gauge.set(static_cast<double>(occ));
}

void OffloadChannel::push_shared_locked(const Command& cmd) {
  const auto& p = rc_.profile();
  // The shared ring's tail cache line: concurrent producers serialize here,
  // each acquisition charging Profile::mpsc_line_transfer.
  sim::LockGuard g(shared_tail_line_);
  for (int spins = 0; !ring_.try_push(cmd); ++spins) {
    if (spins > kFullSpinBound) {
      throw std::runtime_error(
          "offload command ring stuck full: engine is not draining "
          "(increase ring_capacity or check the offload fiber is running)");
    }
    ++stats_.ring_full_stalls;
    trace::instant("stall:ring-full", "offload");
    rc_.arrivals().signal();
    sim::advance(p.cmd_enqueue);  // retry cost
  }
  san::channel_push(&ring_);  // MPSC publish: seq store-release
  g_ring_.set(static_cast<double>(ring_.size_approx()));
}

std::uint32_t OffloadChannel::submit(Command cmd) {
  if (in_engine()) return submit_from_engine(cmd);
  trace::Scope tsc("cmd:enqueue", "offload");
  const auto& p = rc_.profile();
  cmd.proxy = alloc_slot();
  // Serialize parameters + lock-free enqueue.
  sim::advance(p.cmd_enqueue);
  if (Lane* lane = lane_for_caller(); lane != nullptr) {
    push_lane(*lane, cmd);
    ++stats_.lane_submits;
    ++lane->stats.submits;
  } else {
    push_shared_locked(cmd);
    ++stats_.shared_submits;
  }
  // Ring the doorbell: the offload thread's poll loop notices new work after
  // its detection latency.
  trace::instant("doorbell", "offload");
  rc_.arrivals().signal();
  return cmd.proxy;
}

void OffloadChannel::submit_batch(std::span<Command> cmds) {
  if (cmds.empty()) return;
  if (in_engine()) {
    // Engine context keeps the batch's FIFO order but issues directly; the
    // batching win (one doorbell, one publish) is moot when the engine is
    // already awake running the posting callback.
    for (Command& c : cmds) c.proxy = submit_from_engine(c);
    ++stats_.batches;
    stats_.batched_commands += cmds.size();
    return;
  }
  trace::Scope tsc("cmd:enqueue-batch", "offload");
  const auto& p = rc_.profile();
  for (Command& c : cmds) c.proxy = alloc_slot();
  // The first command pays the full serialize+publish cost; the rest only
  // the marginal marshalling into already-hot cells.
  sim::advance(p.cmd_enqueue);
  if (cmds.size() > 1) {
    sim::advance(sim::Time(p.cmd_enqueue_batch.ns() *
                           static_cast<std::int64_t>(cmds.size() - 1)));
  }
  if (Lane* lane = lane_for_caller(); lane != nullptr) {
    std::span<Command> rest = cmds;
    int spins = 0;
    while (!rest.empty()) {
      const std::size_t n = lane->ring.try_push_n(rest);
      if (n != 0) san::channel_push(lane, n);  // one release covers the group
      rest = rest.subspan(n);
      if (rest.empty()) break;
      if (++spins > kFullSpinBound) {
        throw std::runtime_error(
            "offload submission lane stuck full: engine is not draining "
            "(increase lane_capacity or check the offload fiber is running)");
      }
      ++stats_.lane_full_stalls;
      ++lane->stats.full_stalls;
      trace::instant("stall:lane-full", "offload");
      rc_.arrivals().signal();
      sim::advance(p.cmd_enqueue);  // retry cost
    }
    const std::size_t occ = lane->ring.size_approx();
    lane->stats.max_occupancy =
        std::max<std::uint64_t>(lane->stats.max_occupancy, occ);
    lane->gauge.set(static_cast<double>(occ));
    lane->stats.submits += cmds.size();
    ++lane->stats.batches;
    lane->stats.batched_commands += cmds.size();
    stats_.lane_submits += cmds.size();
  } else {
    // No lane: the batch still amortizes the doorbell and pays the tail
    // cache-line transfer once for the whole group.
    sim::LockGuard g(shared_tail_line_);
    for (const Command& c : cmds) {
      for (int spins = 0; !ring_.try_push(c); ++spins) {
        if (spins > kFullSpinBound) {
          throw std::runtime_error(
              "offload command ring stuck full: engine is not draining "
              "(increase ring_capacity or check the offload fiber is "
              "running)");
        }
        ++stats_.ring_full_stalls;
        trace::instant("stall:ring-full", "offload");
        rc_.arrivals().signal();
        sim::advance(p.cmd_enqueue);  // retry cost
      }
      san::channel_push(&ring_);
    }
    g_ring_.set(static_cast<double>(ring_.size_approx()));
    stats_.shared_submits += cmds.size();
  }
  ++stats_.batches;
  stats_.batched_commands += cmds.size();
  // ONE doorbell for the whole batch.
  trace::instant("doorbell", "offload");
  rc_.arrivals().signal();
}

void OffloadChannel::wait_done(std::uint32_t proxy, smpi::Status* st) {
  if (in_engine()) {
    throw std::logic_error(
        san::engine_block_message("OffloadChannel::wait_done"));
  }
  trace::Scope tsc("wait:flag", "offload");
  const auto& p = rc_.profile();
  for (;;) {
    sim::advance(p.done_flag_check);
    if (pool_.done(proxy)) break;
    const std::uint64_t seen = completions_.count();
    if (pool_.done(proxy)) break;
    completions_.wait_beyond(seen);
  }
  san::acquire(&pool_, proxy);  // done-flag acquire: Status/payload visible
  if (st != nullptr) *st = pool_.status(proxy);
  sim::advance(p.request_pool_op);
  san::release(&pool_, proxy);  // hand the slot to the next alloc()
  pool_.free(proxy);
  completions_.signal();  // a freed slot may unblock a pool-exhausted submit
}

bool OffloadChannel::test_done(std::uint32_t proxy, smpi::Status* st) {
  const auto& p = rc_.profile();
  sim::advance(p.done_flag_check);
  if (!pool_.done(proxy)) return false;
  san::acquire(&pool_, proxy);
  if (st != nullptr) *st = pool_.status(proxy);
  sim::advance(p.request_pool_op);
  san::release(&pool_, proxy);
  pool_.free(proxy);
  completions_.signal();
  return true;
}

bool OffloadChannel::attach_continuation(std::uint32_t proxy, ContFn fn) {
  const auto& p = rc_.profile();
  // Publish the callback record first; the arm() claim's release makes it
  // visible to the engine. (From engine context — a callback chaining onto a
  // slot it just posted — the same protocol works: fire() for that slot can
  // only happen on this same fiber, later.)
  san::check_write(&cont_fns_[proxy], sizeof(ContFn), "cont.fns[slot]");
  cont_fns_[proxy] = std::move(fn);
  sim::advance(p.request_pool_op);
  san::release(&cont_, proxy);  // published before the claim CAS
  if (!cont_.arm(proxy)) {
    // Claim won: the completer will find kArmed and queue the callback.
    ++stats_.cont_armed;
    return false;
  }
  // Already fired: the completion's Status/payload are visible (failed-CAS
  // acquire), so run the callback inline on this thread and free the slot.
  san::acquire(&cont_, proxy);  // completer's publish (failed-CAS acquire)
  san::check_read(&cont_fns_[proxy], sizeof(ContFn), "cont.fns[slot]");
  ContFn f = std::move(cont_fns_[proxy]);
  cont_fns_[proxy] = nullptr;
  const smpi::Status st = pool_.status(proxy);
  cont_.reset(proxy);
  sim::advance(p.request_pool_op);
  san::release(&pool_, proxy);
  pool_.free(proxy);
  completions_.signal();
  ++stats_.cont_inline;
  {
    trace::Scope tsc("cont:inline", "offload");
    f(st);
  }
  completions_.signal();  // the callback may have set a cont_wait Event
  return true;
}

void OffloadChannel::shutdown() {
  Command c;
  c.op = CmdOp::kShutdown;
  sim::advance(rc_.profile().cmd_enqueue);
  // Shutdown goes through the shared ring regardless of lanes: the engine
  // keeps draining lanes until they are empty even after seeing it.
  sim::LockGuard g(shared_tail_line_);
  while (!ring_.try_push(c)) sim::advance(rc_.profile().cmd_enqueue);
  san::channel_push(&ring_);
  rc_.arrivals().signal();
}

// ------------------------------------------------------------ engine side ----

void OffloadChannel::complete_slot(std::uint32_t proxy,
                                   const smpi::Status& st) {
  // The payload/Status writes precede the fire() claim; an armed slot's
  // callback is therefore always entitled to read them.
  pool_.complete(proxy, st);
  san::release(&pool_, proxy);  // done-flag release: payload published
  ++stats_.completions;
  trace::instant("done:publish", "offload");
  completions_.signal();
  san::release(&cont_, proxy);  // published before the fire() claim
  if (cont_.fire(proxy)) {
    // A continuation is armed: its record is visible (failed-CAS acquire).
    // Queue it for the bounded run pass rather than running here so a burst
    // of completions cannot starve the testany sweep mid-loop.
    san::acquire(&cont_, proxy);
    cont_ready_.push_back(proxy);
  }
}

void OffloadChannel::issue(const Command& cmd) {
  using smpi::Datatype;
  smpi::Request real{};
  // Ops with no (or immediate) MPI-level completion are finished inline.
  switch (cmd.op) {
    case CmdOp::kWinCreate:
      *cmd.win_out = rc_.win_create(cmd.rbuf, cmd.count, cmd.comm);
      complete_slot(cmd.proxy, smpi::Status{});
      return;
    case CmdOp::kWinFree:
      rc_.win_free(cmd.win);
      complete_slot(cmd.proxy, smpi::Status{});
      return;
    case CmdOp::kPut:
      rc_.put(cmd.sbuf, cmd.count, cmd.peer, cmd.offset, cmd.win);
      complete_slot(cmd.proxy, smpi::Status{});
      return;
    case CmdOp::kGet:
      rc_.get(cmd.rbuf, cmd.count, cmd.peer, cmd.offset, cmd.win);
      complete_slot(cmd.proxy, smpi::Status{});
      return;
    case CmdOp::kIfence:
      track_inflight(rc_.ifence(cmd.win), cmd.proxy);
      return;
    default:
      break;
  }
  switch (cmd.op) {
    case CmdOp::kIsend:
      real = rc_.isend(cmd.sbuf, cmd.count, cmd.dtype, cmd.peer, cmd.tag, cmd.comm);
      break;
    case CmdOp::kIrecv:
      real = rc_.irecv(cmd.rbuf, cmd.count, cmd.dtype, cmd.peer, cmd.tag, cmd.comm);
      break;
    case CmdOp::kIbarrier:
      real = rc_.ibarrier(cmd.comm);
      break;
    case CmdOp::kIbcast:
      real = rc_.ibcast(cmd.rbuf, cmd.count, cmd.dtype, cmd.peer, cmd.comm);
      break;
    case CmdOp::kIreduce:
      real = rc_.ireduce(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.rop,
                         cmd.peer, cmd.comm);
      break;
    case CmdOp::kIallreduce:
      real = rc_.iallreduce(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.rop,
                            cmd.comm);
      break;
    case CmdOp::kIalltoall:
      real = rc_.ialltoall(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.comm);
      break;
    case CmdOp::kIallgather:
      real = rc_.iallgather(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.comm);
      break;
    case CmdOp::kIgather:
      real = rc_.igather(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.peer,
                         cmd.comm);
      break;
    case CmdOp::kIscatter:
      real = rc_.iscatter(cmd.sbuf, cmd.rbuf, cmd.count, cmd.dtype, cmd.peer,
                          cmd.comm);
      break;
    case CmdOp::kShutdown:
      throw std::logic_error("shutdown reached issue()");
  }
  track_inflight(real, cmd.proxy);
}

void OffloadChannel::track_inflight(smpi::Request real, std::uint32_t proxy) {
  inflight_.push_back({real, proxy, sim::now(), false});
  scratch_reqs_.push_back(real);
  ++live_inflight_;
  stats_.max_inflight =
      std::max<std::uint64_t>(stats_.max_inflight, live_inflight_);
  g_inflight_.set(static_cast<double>(live_inflight_));
}

void OffloadChannel::process_command(const Command& cmd) {
  // One span per command covering dequeue + issue, named after the op.
  trace::Scope tsc(cmd_op_name(cmd.op), "offload");
  sim::advance(rc_.profile().cmd_dequeue);
  if (cmd.op == CmdOp::kShutdown) {
    shutdown_requested_ = true;
    return;
  }
  ++stats_.commands;
  issue(cmd);
}

bool OffloadChannel::drain_lanes_round() {
  // One round-robin pass, at most lane_drain_bound commands per lane: the
  // fairness bound keeps a saturating lane from starving its neighbours or
  // postponing the testany pass indefinitely.
  bool any = false;
  const std::size_t n = lanes_.size();
  if (n == 0) return false;
  for (std::size_t k = 0; k < n; ++k) {
    Lane& lane = *lanes_[(drain_cursor_ + k) % n];
    Command cmd;
    std::size_t popped = 0;
    while (popped < opts_.lane_drain_bound && lane.ring.try_pop(cmd)) {
      san::channel_pop(&lane);  // SPSC consume: joins the producer's publish
      ++popped;
      ++lane.stats.drained;
      lane.gauge.set(static_cast<double>(lane.ring.size_approx()));
      process_command(cmd);
    }
    any = any || popped != 0;
  }
  // Rotate the starting lane so equal backlogs drain at equal rates.
  drain_cursor_ = (drain_cursor_ + 1) % n;
  return any;
}

bool OffloadChannel::drain_shared() {
  bool any = false;
  Command cmd;
  while (ring_.try_pop(cmd)) {
    san::channel_pop(&ring_);
    any = true;
    g_ring_.set(static_cast<double>(ring_.size_approx()));
    process_command(cmd);
  }
  return any;
}

bool OffloadChannel::lanes_empty() const {
  for (const auto& lane : lanes_) {
    if (!lane->ring.empty_approx()) return false;
  }
  return true;
}

bool OffloadChannel::submissions_pending() const {
  return !ring_.empty_approx() || !lanes_empty();
}

void OffloadChannel::drive_progress() {
  watchdog_scan();
  if (live_inflight_ == 0) return;
  trace::Scope tsc("testany:sweep", "offload");
  // MPI_Testany over the in-flight set; publish done flags as they complete.
  // Loop until a pass makes no progress (a real offload thread would call
  // Testany repeatedly while its queue is empty). Testany nulls the span
  // entry of the request it completes — that null is the dead-slot marker,
  // so no per-completion rebuild or erase is needed and the remaining
  // entries keep their FIFO positions.
  for (;;) {
    int idx = -1;
    smpi::Status st;
    ++stats_.testany_calls;
    const bool flag = rc_.testany(scratch_reqs_, &idx, &st);
    if (!flag || idx < 0) break;
    const auto i = static_cast<std::size_t>(idx);
    complete_slot(inflight_[i].proxy, st);
    --live_inflight_;
    g_inflight_.set(static_cast<double>(live_inflight_));
    if (live_inflight_ == 0) break;
  }
  compact_inflight();
}

bool OffloadChannel::run_continuations() {
  if (cont_ready_.empty()) return false;
  const auto& p = rc_.profile();
  // Bounded pass: callbacks may post follow-ups whose completions queue more
  // callbacks (drive_progress can run inside a post when the pool is tight),
  // so an unbounded drain could monopolize the engine. Leftovers run next
  // pass; the engine re-drains before sleeping because this returns true.
  std::size_t budget = opts_.cont_run_bound;
  bool any = false;
  while (budget-- > 0 && !cont_ready_.empty()) {
    const std::uint32_t proxy = cont_ready_.front();
    cont_ready_.pop_front();
    san::check_read(&cont_fns_[proxy], sizeof(ContFn), "cont.fns[slot]");
    ContFn fn = std::move(cont_fns_[proxy]);
    cont_fns_[proxy] = nullptr;
    const smpi::Status st = pool_.status(proxy);
    // Free before running: the callback may post enough follow-ups to need
    // this very slot, and the exactly-once claim already consumed it.
    cont_.reset(proxy);
    sim::advance(p.request_pool_op);
    san::release(&pool_, proxy);
    pool_.free(proxy);
    completions_.signal();
    {
      trace::Scope tsc("cont:run", "offload");
      fn(st);
    }
    // Signal again AFTER the callback: it may have set an application
    // visible flag (cont_wait's Event), and a waiter that snapshotted the
    // notifier mid-callback must not sleep past it.
    completions_.signal();
    ++stats_.cont_executed;
    any = true;
  }
  stats_.cont_deferred += cont_ready_.size();
  return any;
}

void OffloadChannel::compact_inflight() {
  // Skipping dead slots during the Testany scan is cheap; reclaim them only
  // once they dominate so a steady stream of completions stays O(1) each.
  if (scratch_reqs_.size() <= 32 || live_inflight_ * 2 > scratch_reqs_.size()) {
    return;
  }
  std::size_t w = 0;
  for (std::size_t r = 0; r < scratch_reqs_.size(); ++r) {
    if (scratch_reqs_[r].is_null()) continue;
    scratch_reqs_[w] = scratch_reqs_[r];
    inflight_[w] = inflight_[r];
    ++w;
  }
  scratch_reqs_.resize(w);
  inflight_.resize(w);
}

void OffloadChannel::watchdog_scan() {
  const sim::Time budget = opts_.watchdog_budget;
  if (budget.ns() <= 0 || live_inflight_ == 0) return;
  const sim::Time now = sim::now();
  if (now < next_watchdog_scan_) return;
  next_watchdog_scan_ = now + sim::Time(budget.ns() / 8 + 1);
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    if (scratch_reqs_[i].is_null() || inflight_[i].flagged) continue;
    if (now - inflight_[i].issued_at > budget) {
      inflight_[i].flagged = true;
      ++stats_.watchdog_flags;
      trace::instant("watchdog:stuck", "offload");
    }
  }
}

void OffloadChannel::engine_main() {
  const auto& p = rc_.profile();
  const bool faults_on = p.faults.enabled();
  // Remember this fiber for the engine's whole life: continuations run here,
  // and submit()/wait_done() route on current-fiber identity.
  engine_fiber_ = sim::Engine::current()->current_fiber();
  std::uint64_t seen = rc_.arrivals().count();
  for (;;) {
    bool worked = drain_lanes_round();
    worked = drain_shared() || worked;
    drive_progress();
    worked = run_continuations() || worked;
    if (shutdown_requested_ && live_inflight_ == 0 &&
        !submissions_pending() && cont_ready_.empty()) {
      engine_fiber_ = nullptr;
      return;
    }
    if (worked) {
      seen = rc_.arrivals().count();
      continue;
    }
    const std::uint64_t cur = rc_.arrivals().count();
    if (cur > seen) {
      seen = cur;
      continue;  // something happened while we were working
    }
    // Nothing to do: adaptive wait. Spin first (a doorbell rung during the
    // spin window is noticed within one cmd_detect poll — the cheapest
    // wake), then yield the core a few times, then block on the doorbell.
    // The Notifier's detection latency models the spin-poll granularity of
    // the real busy-waiting offload thread.
    bool woke = false;
    for (int i = 0; i < p.engine_spin_polls && !woke; ++i) {
      ++stats_.engine_spins;
      sim::advance(p.cmd_detect);
      woke = submissions_pending() || rc_.arrivals().count() > seen;
    }
    for (int i = 0; i < p.engine_yield_polls && !woke; ++i) {
      ++stats_.engine_yields;
      sim::yield();
      sim::advance(p.cmd_detect);
      woke = submissions_pending() || rc_.arrivals().count() > seen;
    }
    if (woke) continue;
    ++stats_.engine_sleeps;
    if (faults_on) {
      // Under faults the wake we are waiting for may have been lost with the
      // frame that carried it. Sleep with a bound and run a progress pass so
      // the reliability layer's retransmit timers keep firing — the offload
      // thread is exactly the "always inside MPI" context the paper's
      // software-progress model promises.
      if (!rc_.arrivals().wait_beyond_timeout(seen, p.faults.rto_base)) {
        rc_.progress();
      }
      seen = rc_.arrivals().count();
    } else {
      seen = rc_.arrivals().wait_beyond(seen);
    }
  }
}

}  // namespace core
