// DrainClaim — consumer-ownership token for the offload channel's queues.
//
// MpscRing::try_pop and SpscLane::try_pop are single-consumer protocols:
// the ring's head_ is relaxed (only one consumer ever advances it) and the
// lane keeps a *plain* cached_tail_ on the consumer side. With one engine
// fiber per rank that was true by construction. The multi-proxy engine
// (PR 8) breaks it: an engine's private queues may be drained either by
// their owner or by a stealing sibling engine.
//
// A DrainClaim restores the invariant. Exactly one fiber holds the claim
// covering a queue set at a time; the holder may run the single-consumer
// pop protocol and must keep the claim across the whole pop+issue sequence
// (issuing a command yields in the simulator, and releasing between pop and
// issue would let two fibers interleave same-envelope sends out of posted
// order). The claim's CAS-acquire / store-release pair is also the
// happens-before edge that hands the consumer-side plain state
// (SpscLane::cached_tail_, the thief's view of ring cells) from one
// consumer to the next:
//  * try_claim CAS (acquire on success): synchronizes with the previous
//    holder's release so this fiber sees every head_/cached_tail_ update
//    the previous holder made. Failure ordering is relaxed — a failed
//    claim reads nothing it acts on.
//  * release store (release): publishes this holder's consumer-side state
//    to the next claimant.
// held() is a relaxed value-only read (monitoring/asserts, never payload
// visibility).
//
// Like the rings, the class is templated over an atomics policy so the
// src/check/ model checker can instantiate it with chk::ModelAtomics; the
// "mring" spec (chk::specs::check_mring) runs the production MpscRing under
// two alternating consumers bracketed by this claim and its mutation rows
// prove both orderings above are load-bearing.
//
// memorder-audit: relaxed=2 acquire=1 release=1 acq_rel=0 seq_cst=0
// (tools/check_memorder.py fails CI when this line disagrees with the
// std::memory_order_* tokens actually used below — update both together.)
#pragma once

#include <atomic>
#include <cstdint>

#include "core/atomics_policy.hpp"

namespace core {

template <typename Atomics = StdAtomics>
class DrainClaimT {
 public:
  DrainClaimT() { Atomics::set_name(state_, "claim.state"); }

  DrainClaimT(const DrainClaimT&) = delete;
  DrainClaimT& operator=(const DrainClaimT&) = delete;

  /// Try to become the queues' consumer. True = this fiber now holds the
  /// claim and may run the single-consumer pop protocol until release().
  bool try_claim() {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  /// Hand the queues (and their consumer-side plain state) to the next
  /// claimant.
  void release() { state_.store(0, std::memory_order_release); }

  /// Value-only snapshot for stats/asserts; never guards a payload read.
  [[nodiscard]] bool held() const {
    return state_.load(std::memory_order_relaxed) != 0;
  }

 private:
  typename Atomics::template atomic<std::uint32_t> state_{0};
};

using DrainClaim = DrainClaimT<>;

}  // namespace core
