#include "core/proxy.hpp"

#include <algorithm>
#include <stdexcept>

#include "mpi/cluster.hpp"
#include "san/san.hpp"
#include "trace/scope.hpp"

namespace core {

const char* approach_name(Approach a) {
  switch (a) {
    case Approach::kBaseline:
      return "baseline";
    case Approach::kIprobe:
      return "iprobe";
    case Approach::kCommSelf:
      return "comm-self";
    case Approach::kOffload:
      return "offload";
  }
  return "?";
}

Approach approach_from_string(const std::string& s) {
  if (s == "baseline") return Approach::kBaseline;
  if (s == "iprobe") return Approach::kIprobe;
  if (s == "commself" || s == "comm-self") return Approach::kCommSelf;
  if (s == "offload") return Approach::kOffload;
  throw std::invalid_argument(
      "unknown approach: '" + s +
      "' (valid: baseline, iprobe, comm-self (or commself), offload)");
}

smpi::ThreadLevel required_thread_level(Approach a) {
  // comm-self needs concurrent MPI calls (progress thread + master); the
  // others drive MPI from a single thread.
  return a == Approach::kCommSelf ? smpi::ThreadLevel::kMultiple
                                  : smpi::ThreadLevel::kFunneled;
}

// ------------------------------------------------------- default blocking ----

void Proxy::send(const void* b, std::size_t n, smpi::Datatype dt, int dst,
                 int tag, smpi::Comm c) {
  PReq r = isend(b, n, dt, dst, tag, c);
  wait(r);
}

void Proxy::recv(void* b, std::size_t n, smpi::Datatype dt, int src, int tag,
                 smpi::Comm c, smpi::Status* st) {
  PReq r = irecv(b, n, dt, src, tag, c);
  wait(r, st);
}

void Proxy::post_batch(std::span<const BatchOp> ops, std::span<PReq> out) {
  if (ops.size() != out.size()) {
    throw std::invalid_argument("post_batch: ops/out span size mismatch");
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const BatchOp& o = ops[i];
    if (o.op == CmdOp::kIsend) {
      out[i] = isend(o.sbuf, o.count, o.dtype, o.peer, o.tag, o.comm);
    } else if (o.op == CmdOp::kIrecv) {
      out[i] = irecv(o.rbuf, o.count, o.dtype, o.peer, o.tag, o.comm);
    } else if (o.op == CmdOp::kStartPersistent) {
      PersistentReq pr{o.persist};
      start(pr);
      out[i] = PReq{};  // completion goes through the persistent handle
    } else {
      throw std::invalid_argument(
          "post_batch: only isend/irecv/start ops batch");
    }
  }
}

void Proxy::waitall(std::span<PReq> rs) {
  for (PReq& r : rs) wait(r);
}

void Proxy::barrier(smpi::Comm c) {
  PReq r = ibarrier(c);
  wait(r);
}

void Proxy::bcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                  smpi::Comm c) {
  PReq r = ibcast(b, n, dt, root, c);
  wait(r);
}

void Proxy::reduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                   smpi::Op op, int root, smpi::Comm c) {
  PReq rq = ireduce(s, r, n, dt, op, root, c);
  wait(rq);
}

void Proxy::allreduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                      smpi::Op op, smpi::Comm c) {
  PReq rq = iallreduce(s, r, n, dt, op, c);
  wait(rq);
}

void Proxy::alltoall(const void* s, void* r, std::size_t n_per,
                     smpi::Datatype dt, smpi::Comm c) {
  PReq rq = ialltoall(s, r, n_per, dt, c);
  wait(rq);
}

void Proxy::allgather(const void* s, void* r, std::size_t n_per,
                      smpi::Datatype dt, smpi::Comm c) {
  PReq rq = iallgather(s, r, n_per, dt, c);
  wait(rq);
}

// ---------------------------------------------- generic persistent (base) ----
// Serves the direct approaches: one rc_-level persistent MPI request per
// handle (or per partition). The calling thread enters MPI itself, so
// pready(p) ships its partition immediately — the offload proxy overrides
// all of this onto its channel's ready-word machinery.

namespace {
[[noreturn]] void persist_misuse(int rank, const char* call,
                                 const char* what) {
  san::mpi_persist_misuse(rank, call, what);
  throw std::logic_error(std::string(call) + ": " + what);
}
}  // namespace

Proxy::PersistentOp& Proxy::pop_of(const PersistentReq& r, const char* call) {
  if (r.is_null() || r.v > pops_.size()) {
    throw std::logic_error(std::string(call) +
                           ": null or invalid persistent request handle");
  }
  return *pops_[static_cast<std::size_t>(r.v - 1)];
}

PersistentReq Proxy::send_init(const void* b, std::size_t n, smpi::Datatype dt,
                               int dst, int tag, smpi::Comm c) {
  auto pop = std::make_unique<PersistentOp>();
  pop->is_send = true;
  pop->peer = dst;
  pop->tag = tag;
  pop->bytes = n * smpi::datatype_size(dt);
  pop->req = rc_.send_init(b, n, dt, dst, tag, c);
  pops_.push_back(std::move(pop));
  return PersistentReq{pops_.size()};
}

PersistentReq Proxy::recv_init(void* b, std::size_t n, smpi::Datatype dt,
                               int src, int tag, smpi::Comm c) {
  auto pop = std::make_unique<PersistentOp>();
  pop->peer = src;
  pop->tag = tag;
  pop->bytes = n * smpi::datatype_size(dt);
  pop->req = rc_.recv_init(b, n, dt, src, tag, c);
  pops_.push_back(std::move(pop));
  return PersistentReq{pops_.size()};
}

namespace {
void validate_partitioned(int rank, const char* call, int tag,
                          std::uint32_t partitions, int peer) {
  if (partitions == 0 ||
      partitions > static_cast<std::uint32_t>(smpi::kMaxPartitions)) {
    persist_misuse(rank, call, "partition count out of range");
  }
  if (tag < 0 || tag >= smpi::kMaxPartBaseTag) {
    persist_misuse(rank, call, "partitioned base tag out of range");
  }
  if (peer == smpi::kAnySource) {
    // Partition frames are invisible to wildcard matching by design
    // (mpi/matching.cpp); a wildcard partitioned receive would never match.
    persist_misuse(rank, call, "partitioned ops require a specific peer");
  }
}
}  // namespace

PersistentReq Proxy::psend_init(const void* b, std::size_t n,
                                smpi::Datatype dt, int dst, int tag,
                                std::uint32_t partitions, smpi::Comm c) {
  validate_partitioned(rc_.rank(), "psend_init", tag, partitions, dst);
  auto pop = std::make_unique<PersistentOp>();
  pop->is_send = true;
  pop->partitions = partitions;
  pop->peer = dst;
  pop->tag = tag;
  const std::uint64_t bytes = n * smpi::datatype_size(dt);
  pop->bytes = bytes;
  pop->parts.resize(partitions);
  pop->part_started.assign(partitions, false);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    const std::uint64_t lo = bytes * p / partitions;
    const std::uint64_t hi = bytes * (p + 1) / partitions;
    pop->parts[p] = rc_.send_init(
        static_cast<const char*>(b) + lo, hi - lo, smpi::Datatype::kByte, dst,
        smpi::part_wire_tag(tag, static_cast<int>(p)), c);
  }
  pops_.push_back(std::move(pop));
  return PersistentReq{pops_.size()};
}

PersistentReq Proxy::precv_init(void* b, std::size_t n, smpi::Datatype dt,
                                int src, int tag, std::uint32_t partitions,
                                smpi::Comm c) {
  validate_partitioned(rc_.rank(), "precv_init", tag, partitions, src);
  auto pop = std::make_unique<PersistentOp>();
  pop->partitions = partitions;
  pop->peer = src;
  pop->tag = tag;
  const std::uint64_t bytes = n * smpi::datatype_size(dt);
  pop->bytes = bytes;
  pop->parts.resize(partitions);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    const std::uint64_t lo = bytes * p / partitions;
    const std::uint64_t hi = bytes * (p + 1) / partitions;
    pop->parts[p] = rc_.recv_init(
        static_cast<char*>(b) + lo, hi - lo, smpi::Datatype::kByte, src,
        smpi::part_wire_tag(tag, static_cast<int>(p)), c);
  }
  pops_.push_back(std::move(pop));
  return PersistentReq{pops_.size()};
}

void Proxy::start(PersistentReq& r) {
  PersistentOp& pop = pop_of(r, "start");
  if (pop.state == PState::kFreed) {
    persist_misuse(rc_.rank(), "start", "request was freed");
  }
  if (pop.state == PState::kStarted) {
    persist_misuse(rc_.rank(), "start",
                   "previous generation still in flight");
  }
  pop.state = PState::kStarted;
  if (pop.partitions == 0) {
    rc_.start(pop.req);
    return;
  }
  pop.part_started.assign(pop.partitions, false);
  pop.started_parts = 0;
  // Sends arm only — pready ships each partition; receives post everything
  // now (the receiver has no readiness to wait for).
  if (!pop.is_send) rc_.startall(pop.parts);
}

void Proxy::startall(std::span<PersistentReq> rs) {
  if (rs.empty()) return;  // MPI_Startall(0, ...) is a no-op
  for (PersistentReq& r : rs) start(r);
}

void Proxy::pready(PersistentReq& r, std::uint32_t p) {
  PersistentOp& pop = pop_of(r, "pready");
  if (!pop.is_send || pop.partitions == 0) {
    persist_misuse(rc_.rank(), "pready", "request is not a partitioned send");
  }
  if (pop.state != PState::kStarted) {
    persist_misuse(rc_.rank(), "pready", "no generation started");
  }
  if (p >= pop.partitions) {
    persist_misuse(rc_.rank(), "pready", "partition out of range");
  }
  if (pop.part_started[p]) {
    persist_misuse(rc_.rank(), "pready",
                   "partition marked ready twice in one generation");
  }
  pop.part_started[p] = true;
  ++pop.started_parts;
  rc_.start(pop.parts[p]);  // direct approach: ships right here
}

void Proxy::pready_range(PersistentReq& r, std::uint32_t lo,
                         std::uint32_t hi) {
  if (lo > hi) {
    persist_misuse(rc_.rank(), "pready_range", "partition range is empty");
  }
  for (std::uint32_t p = lo; p <= hi; ++p) pready(r, p);
}

void Proxy::wait(PersistentReq& r, smpi::Status* st) {
  PersistentOp& pop = pop_of(r, "wait");
  if (pop.state == PState::kFreed) {
    persist_misuse(rc_.rank(), "wait", "request was freed");
  }
  if (pop.state == PState::kInactive) {
    if (st != nullptr) *st = smpi::Status{};
    return;  // trivially complete, like MPI_Wait on an inactive request
  }
  if (pop.partitions == 0) {
    rc_.wait(pop.req, st);  // persistent at the MPI layer: handle survives
  } else {
    if (pop.is_send && pop.started_parts != pop.partitions) {
      persist_misuse(rc_.rank(), "wait",
                     "wait with unmarked partitions (the send can never "
                     "complete; pready every partition first)");
    }
    // waitall nulls array entries of completed persistent requests (the
    // dead-slot contract) — wait on copies so the originals stay valid.
    std::vector<smpi::Request> copies(pop.parts.begin(), pop.parts.end());
    rc_.waitall(copies);
    if (st != nullptr) {
      st->source = pop.peer;
      st->tag = pop.tag;
      st->bytes = pop.bytes;
    }
  }
  pop.state = PState::kInactive;
}

bool Proxy::test(PersistentReq& r, smpi::Status* st) {
  PersistentOp& pop = pop_of(r, "test");
  if (pop.state == PState::kFreed) {
    persist_misuse(rc_.rank(), "test", "request was freed");
  }
  if (pop.state == PState::kInactive) {
    if (st != nullptr) *st = smpi::Status{};
    return true;
  }
  if (pop.partitions == 0) {
    if (!rc_.test(pop.req, st)) return false;
  } else {
    // Unstarted partitions are inactive — hence settled — at the MPI layer
    // and would wrongly pass a testall; an unfinished partitioned send is
    // simply not complete yet.
    if (pop.is_send && pop.started_parts != pop.partitions) return false;
    std::vector<smpi::Request> copies(pop.parts.begin(), pop.parts.end());
    if (!rc_.testall(copies)) return false;
    if (st != nullptr) {
      st->source = pop.peer;
      st->tag = pop.tag;
      st->bytes = pop.bytes;
    }
  }
  pop.state = PState::kInactive;
  return true;
}

void Proxy::request_free(PersistentReq& r) {
  if (r.is_null()) return;
  PersistentOp& pop = pop_of(r, "request_free");
  if (pop.state == PState::kStarted) {
    persist_misuse(rc_.rank(), "request_free", "generation still in flight");
  }
  if (pop.state != PState::kFreed) {
    if (!pop.req.is_null()) rc_.request_free(pop.req);
    for (smpi::Request& part : pop.parts) {
      if (!part.is_null()) rc_.request_free(part);
    }
    pop.state = PState::kFreed;
  }
  r = PersistentReq{};
}

void Proxy::attach_continuation(PersistentReq& r, ContFn fn) {
  PersistentOp& pop = pop_of(r, "attach_continuation");
  if (pop.state != PState::kStarted) {
    persist_misuse(rc_.rank(), "attach_continuation",
                   "no generation started on this persistent request");
  }
  PersistentOp* p = &pop;  // stable: pops_ holds unique_ptrs
  if (pop.partitions == 0) {
    PReq pr{static_cast<std::uint64_t>(pop.req.idx)};
    attach_continuation(pr, [p, f = std::move(fn)](const smpi::Status& st) {
      // Consumed first: the callback observes kInactive and may start() the
      // next generation from inside itself.
      p->state = PState::kInactive;
      f(st);
    });
    return;
  }
  if (pop.is_send && pop.started_parts != pop.partitions) {
    // An armed-but-unmarked partition would leave the when-all counter
    // permanently short — the continuation could never fire.
    persist_misuse(rc_.rank(), "attach_continuation",
                   "attach with unmarked partitions (pready every partition "
                   "first)");
  }
  auto remaining = std::make_shared<std::uint32_t>(pop.partitions);
  auto cb = std::make_shared<ContFn>(std::move(fn));
  for (const smpi::Request part : pop.parts) {
    PReq pr{static_cast<std::uint64_t>(part.idx)};
    attach_continuation(pr, [p, remaining, cb](const smpi::Status&) {
      if (--*remaining != 0) return;
      p->state = PState::kInactive;
      smpi::Status st;
      st.source = p->peer;
      st.tag = p->tag;
      st.bytes = p->bytes;
      (*cb)(st);
    });
  }
}

smpi::Win Proxy::win_create(void* base, std::size_t bytes, smpi::Comm c) {
  return rc_.win_create(base, bytes, c);
}
void Proxy::win_free(smpi::Win w) { rc_.win_free(w); }
void Proxy::put(const void* origin, std::size_t bytes, int target,
                std::size_t target_offset, smpi::Win w) {
  rc_.put(origin, bytes, target, target_offset, w);
}
void Proxy::get(void* origin, std::size_t bytes, int target,
                std::size_t target_offset, smpi::Win w) {
  rc_.get(origin, bytes, target, target_offset, w);
}
void Proxy::fence(smpi::Win w) { rc_.win_fence(w); }

// ------------------------------------------------------------ DirectProxy ----

namespace {
PReq wrap(smpi::Request r) { return PReq{static_cast<std::uint64_t>(r.idx)}; }
smpi::Request unwrap(PReq r) { return smpi::Request{static_cast<int>(r.v)}; }
}  // namespace

PReq DirectProxy::isend(const void* b, std::size_t n, smpi::Datatype dt,
                        int dst, int tag, smpi::Comm c) {
  return wrap(rc_.isend(b, n, dt, dst, tag, c));
}
PReq DirectProxy::irecv(void* b, std::size_t n, smpi::Datatype dt, int src,
                        int tag, smpi::Comm c) {
  return wrap(rc_.irecv(b, n, dt, src, tag, c));
}
void DirectProxy::wait(PReq& r, smpi::Status* st) {
  smpi::Request rq = unwrap(r);
  rc_.wait(rq, st);
  r = wrap(rq);
}
bool DirectProxy::test(PReq& r, smpi::Status* st) {
  smpi::Request rq = unwrap(r);
  const bool done = rc_.test(rq, st);
  r = wrap(rq);
  return done;
}
void DirectProxy::waitall(std::span<PReq> rs) {
  if (rs.empty()) return;  // MPI_Waitall(0, ...) is a no-op
  std::vector<smpi::Request> reqs;
  reqs.reserve(rs.size());
  for (PReq r : rs) reqs.push_back(unwrap(r));
  rc_.waitall(reqs);
  for (std::size_t i = 0; i < rs.size(); ++i) rs[i] = wrap(reqs[i]);
}
int DirectProxy::waitany(std::span<PReq> rs, smpi::Status* st) {
  if (rs.empty()) return -1;  // MPI_UNDEFINED for an empty list
  std::vector<smpi::Request> reqs;
  reqs.reserve(rs.size());
  for (PReq r : rs) reqs.push_back(unwrap(r));
  const int idx = rc_.waitany(reqs, st);
  for (std::size_t i = 0; i < rs.size(); ++i) rs[i] = wrap(reqs[i]);
  return idx;
}
bool DirectProxy::testall(std::span<PReq> rs) {
  if (rs.empty()) return true;  // MPI_Testall(0, ...) sets flag = true
  std::vector<smpi::Request> reqs;
  reqs.reserve(rs.size());
  for (PReq r : rs) reqs.push_back(unwrap(r));
  const bool done = rc_.testall(reqs);
  for (std::size_t i = 0; i < rs.size(); ++i) rs[i] = wrap(reqs[i]);
  return done;
}
PReq DirectProxy::ibarrier(smpi::Comm c) { return wrap(rc_.ibarrier(c)); }
PReq DirectProxy::ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                         smpi::Comm c) {
  return wrap(rc_.ibcast(b, n, dt, root, c));
}
PReq DirectProxy::ireduce(const void* s, void* r, std::size_t n,
                          smpi::Datatype dt, smpi::Op op, int root,
                          smpi::Comm c) {
  return wrap(rc_.ireduce(s, r, n, dt, op, root, c));
}
PReq DirectProxy::iallreduce(const void* s, void* r, std::size_t n,
                             smpi::Datatype dt, smpi::Op op, smpi::Comm c) {
  return wrap(rc_.iallreduce(s, r, n, dt, op, c));
}
PReq DirectProxy::ialltoall(const void* s, void* r, std::size_t n_per,
                            smpi::Datatype dt, smpi::Comm c) {
  return wrap(rc_.ialltoall(s, r, n_per, dt, c));
}
PReq DirectProxy::iallgather(const void* s, void* r, std::size_t n_per,
                             smpi::Datatype dt, smpi::Comm c) {
  return wrap(rc_.iallgather(s, r, n_per, dt, c));
}

void DirectProxy::attach_continuation(PReq& r, ContFn fn) {
  if (r.is_null()) {
    // Already-released handle: the continuation analogue of "waiting twice
    // is safe" — treat it as complete and run inline with an empty Status.
    fn(smpi::Status{});
    return;
  }
  armed_.push_back({unwrap(r), std::move(fn)});
  r = PReq{};
  // A request that already completed fires right here, not at the next
  // progress call — but arming must stay cheap (one test of THIS request,
  // not a pump over everything armed, or when_all's post phase turns into
  // a quadratic app-thread scan).
  if (pumping_) return;  // the in-progress pump's scan reaches appendees
  smpi::Status st;
  if (rc_.test(armed_.back().req, &st)) {
    ContFn f = std::move(armed_.back().fn);
    armed_.pop_back();
    trace::Scope tsc("cont:run", approach_name(approach()));
    f(st);
  }
}

void DirectProxy::pump_continuations() {
  if (pumping_ || armed_.empty()) return;
  pumping_ = true;  // callbacks re-enter via attach/test; they only append
  std::size_t i = 0;
  while (i < armed_.size()) {
    smpi::Status st;
    smpi::Request rq = armed_[i].req;
    if (!rc_.test(rq, &st)) {
      ++i;
      continue;
    }
    // Retire the entry BEFORE running the callback: fn may grow armed_
    // (posting follow-ups) and must not observe its own dead entry.
    ContFn fn = std::move(armed_[i].fn);
    armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
    trace::Scope tsc("cont:run", approach_name(approach()));
    fn(st);
    // No ++i: erase shifted the next candidate into position i.
  }
  pumping_ = false;
}

void DirectProxy::cont_wait(const std::function<bool()>& done) {
  trace::Scope tsc("cont:wait", approach_name(approach()));
  pump_continuations();
  // Exponential backoff between pumps: direct proxies have no engine fiber
  // to wake us precisely, so poll the progress path, sleeping on the rank's
  // arrival doorbell between polls.
  sim::Time backoff = sim::Time::from_us(1);
  while (!done()) {
    const std::uint64_t seen = rc_.arrivals().count();
    rc_.progress();
    pump_continuations();
    if (done()) break;
    rc_.arrivals().wait_beyond_timeout(seen, backoff);
    if (backoff.ns() < 100'000) backoff = sim::Time(backoff.ns() * 2);
  }
}

// ------------------------------------------------------------ IprobeProxy ----

void IprobeProxy::progress_hint() {
  rc_.iprobe(smpi::kAnySource, smpi::kAnyTag, smpi::kCommWorld, nullptr);
  // The PROGRESS macro is exactly where armed continuations get cycles.
  pump_continuations();
}

// ---------------------------------------------------------- CommSelfProxy ----

void CommSelfProxy::start_engine() {
  if (rc_.thread_level() != smpi::ThreadLevel::kMultiple) {
    throw std::logic_error("comm-self requires MPI_THREAD_MULTIPLE");
  }
  // Duplicate COMM_SELF (purely local) and park a thread in a blocking
  // receive on it. The matching send is only posted by stop().
  progress_comm_ = rc_.comm_dup(smpi::kCommSelf);
  running_ = true;
  smpi::RankCtx* rc = &rc_;
  auto* self = this;
  rc_.cluster().spawn_on(rc_.rank(), "rank" + std::to_string(rc_.rank()) + ".commself",
                         [rc, self]() {
                           rc->recv(&self->recv_token_, 1, smpi::Datatype::kByte,
                                    0, 0, self->progress_comm_, nullptr);
                           self->running_ = false;
                         });
}

void CommSelfProxy::stop() {
  if (!running_) return;
  // Unblock the progress thread by satisfying its receive.
  stop_token_ = 1;
  rc_.send(&stop_token_, 1, smpi::Datatype::kByte, 0, 0, progress_comm_);
  // Let the progress fiber observe completion and exit.
  while (running_) sim::advance(sim::Time::from_ns(100));
}

// ----------------------------------------------------------- OffloadProxy ----

OffloadProxy::OffloadProxy(smpi::RankCtx& rc)
    : OffloadProxy(rc, ProxyOptions::from_env(rc.profile())) {}

OffloadProxy::OffloadProxy(smpi::RankCtx& rc, const ProxyOptions& opts)
    : Proxy(rc), channel_(rc, opts) {}

namespace {
// PReq <-> pool-slot mapping: slots are biased by one so PReq{0} stays the
// universal null handle (slot 0 is a valid pool index).
PReq preq_of(std::uint32_t slot) {
  return PReq{static_cast<std::uint64_t>(slot) + 1};
}
std::uint32_t slot_of(PReq r) { return static_cast<std::uint32_t>(r.v - 1); }
}  // namespace

void OffloadProxy::start_engine() {
  auto* ch = &channel_;
  const std::size_t n = channel_.engine_count();
  engine_fibers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Engine 0 keeps the classic fiber name; siblings get a suffix so traces
    // and the fiber registry distinguish them.
    std::string name = "rank" + std::to_string(rc_.rank()) + ".offload";
    if (i != 0) name += std::to_string(i);
    engine_fibers_.push_back(&rc_.cluster().spawn_on(
        rc_.rank(), name, [ch, i]() { ch->engine_main(i); }));
  }
}

void OffloadProxy::stop() {
  channel_.shutdown();
  for (sim::Fiber* f : engine_fibers_) {
    while (f != nullptr && !f->done()) {
      sim::advance(sim::Time::from_ns(100));
    }
  }
}

namespace {
Command base_cmd(CmdOp op, smpi::Comm c) {
  Command cmd;
  cmd.op = op;
  cmd.comm = c;
  return cmd;
}
}  // namespace

PReq OffloadProxy::isend(const void* b, std::size_t n, smpi::Datatype dt,
                         int dst, int tag, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIsend, c);
  cmd.sbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = dst;
  cmd.tag = tag;
  return preq_of(channel_.submit(cmd));
}
PReq OffloadProxy::irecv(void* b, std::size_t n, smpi::Datatype dt, int src,
                         int tag, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIrecv, c);
  cmd.rbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = src;
  cmd.tag = tag;
  return preq_of(channel_.submit(cmd));
}
void OffloadProxy::wait(PReq& r, smpi::Status* st) {
  if (r.is_null()) return;
  channel_.wait_done(slot_of(r), st);
  r = PReq{};
}
bool OffloadProxy::test(PReq& r, smpi::Status* st) {
  if (r.is_null()) return true;
  if (!channel_.test_done(slot_of(r), st)) return false;
  r = PReq{};
  return true;
}
void OffloadProxy::waitall(std::span<PReq> rs) {
  if (rs.empty()) return;  // no-op: no flags to scan, no doorbell to ring
  if (channel_.in_engine()) {
    throw std::logic_error(san::engine_block_message("OffloadProxy::waitall"));
  }
  trace::Scope tsc("wait:all", "offload");
  const auto& p = rc_.profile();
  RequestPool& pool = channel_.pool();
  for (;;) {
    // One pass over the done flags per wake; the completion notifier's count
    // is snapshotted first so a flag published mid-scan re-runs the pass
    // instead of being slept past.
    const std::uint64_t seen = channel_.completions().count();
    bool all_done = true;
    for (const PReq& r : rs) {
      if (r.is_null()) continue;
      sim::advance(p.done_flag_check);
      if (!pool.done(slot_of(r))) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    channel_.completions().wait_beyond(seen);
  }
  for (PReq& r : rs) {
    if (r.is_null()) continue;
    sim::advance(p.request_pool_op);
    san::acquire(&pool, slot_of(r));  // completer's done-flag publish
    san::release(&pool, slot_of(r));  // hand the slot to the next alloc()
    pool.free(slot_of(r));
    r = PReq{};
  }
  channel_.completions().signal();  // freed slots may unblock a full pool
}
int OffloadProxy::waitany(std::span<PReq> rs, smpi::Status* st) {
  if (channel_.in_engine()) {
    throw std::logic_error(san::engine_block_message("OffloadProxy::waitany"));
  }
  trace::Scope tsc("wait:any", "offload");
  const auto& p = rc_.profile();
  RequestPool& pool = channel_.pool();
  for (;;) {
    const std::uint64_t seen = channel_.completions().count();
    bool any_active = false;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i].is_null()) continue;
      any_active = true;
      sim::advance(p.done_flag_check);
      const std::uint32_t slot = slot_of(rs[i]);
      if (!pool.done(slot)) continue;
      san::acquire(&pool, slot);
      if (st != nullptr) *st = pool.status(slot);
      sim::advance(p.request_pool_op);
      san::release(&pool, slot);
      pool.free(slot);
      channel_.completions().signal();
      rs[i] = PReq{};
      return static_cast<int>(i);
    }
    if (!any_active) return -1;
    channel_.completions().wait_beyond(seen);
  }
}
bool OffloadProxy::testall(std::span<PReq> rs) {
  const auto& p = rc_.profile();
  RequestPool& pool = channel_.pool();
  // Single pass over the done flags; release only if every one is set.
  for (const PReq& r : rs) {
    if (r.is_null()) continue;
    sim::advance(p.done_flag_check);
    if (!pool.done(slot_of(r))) return false;
  }
  bool freed = false;
  for (PReq& r : rs) {
    if (r.is_null()) continue;
    sim::advance(p.request_pool_op);
    san::acquire(&pool, slot_of(r));
    san::release(&pool, slot_of(r));
    pool.free(slot_of(r));
    r = PReq{};
    freed = true;
  }
  if (freed) channel_.completions().signal();
  return true;
}
void OffloadProxy::post_batch(std::span<const BatchOp> ops,
                              std::span<PReq> out) {
  if (ops.size() != out.size()) {
    throw std::invalid_argument("post_batch: ops/out span size mismatch");
  }
  for (const BatchOp& o : ops) {
    if (o.op == CmdOp::kStartPersistent) {
      // Persistent starts carry a pre-pinned pool slot and a different
      // command shape than the alloc-as-you-publish batch path — post mixed
      // groups element-wise (each start is already the cheap re-arm form).
      Proxy::post_batch(ops, out);
      return;
    }
  }
  const std::size_t flush = channel_.options().batch_flush;
  // Per-call scratch: submit_batch advances virtual time (and a real enqueue
  // would block), so another fiber can enter post_batch concurrently — a
  // shared member buffer would be clobbered mid-flush.
  std::vector<Command> scratch;
  scratch.reserve(std::min(flush, ops.size()));
  for (std::size_t base = 0; base < ops.size(); base += flush) {
    const std::size_t n = std::min(flush, ops.size() - base);
    scratch.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const BatchOp& o = ops[base + i];
      if (o.op != CmdOp::kIsend && o.op != CmdOp::kIrecv) {
        throw std::invalid_argument("post_batch: only isend/irecv ops batch");
      }
      Command cmd = base_cmd(o.op, o.comm);
      cmd.sbuf = o.sbuf;
      cmd.rbuf = o.rbuf;
      cmd.count = o.count;
      cmd.dtype = o.dtype;
      cmd.peer = o.peer;
      cmd.tag = o.tag;
      scratch.push_back(cmd);
    }
    channel_.submit_batch(scratch);
    for (std::size_t i = 0; i < n; ++i) {
      out[base + i] = preq_of(scratch[i].proxy);
    }
  }
}
PReq OffloadProxy::ibarrier(smpi::Comm c) {
  return preq_of(channel_.submit(base_cmd(CmdOp::kIbarrier, c)));
}
PReq OffloadProxy::ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                          smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIbcast, c);
  cmd.rbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = root;
  return preq_of(channel_.submit(cmd));
}
PReq OffloadProxy::ireduce(const void* s, void* r, std::size_t n,
                           smpi::Datatype dt, smpi::Op op, int root,
                           smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIreduce, c);
  cmd.sbuf = s;
  cmd.rbuf = r;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.rop = op;
  cmd.peer = root;
  return preq_of(channel_.submit(cmd));
}
PReq OffloadProxy::iallreduce(const void* s, void* r, std::size_t n,
                              smpi::Datatype dt, smpi::Op op, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIallreduce, c);
  cmd.sbuf = s;
  cmd.rbuf = r;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.rop = op;
  return preq_of(channel_.submit(cmd));
}
PReq OffloadProxy::ialltoall(const void* s, void* r, std::size_t n_per,
                             smpi::Datatype dt, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIalltoall, c);
  cmd.sbuf = s;
  cmd.rbuf = r;
  cmd.count = n_per;
  cmd.dtype = dt;
  return preq_of(channel_.submit(cmd));
}
PReq OffloadProxy::iallgather(const void* s, void* r, std::size_t n_per,
                              smpi::Datatype dt, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIallgather, c);
  cmd.sbuf = s;
  cmd.rbuf = r;
  cmd.count = n_per;
  cmd.dtype = dt;
  return preq_of(channel_.submit(cmd));
}

// Persistent & partitioned: every call maps onto the channel's PersistSlot
// machinery (persistent-slot index biased by one so the null handle stays 0).

namespace {
std::uint32_t persist_idx(PersistentReq r, const char* call) {
  if (r.is_null()) {
    throw std::logic_error(std::string(call) +
                           ": null persistent request handle");
  }
  return static_cast<std::uint32_t>(r.v - 1);
}
}  // namespace

PersistentReq OffloadProxy::send_init(const void* b, std::size_t n,
                                      smpi::Datatype dt, int dst, int tag,
                                      smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIsend, c);
  cmd.sbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = dst;
  cmd.tag = tag;
  return PersistentReq{
      static_cast<std::uint64_t>(channel_.persist_init(cmd, 0)) + 1};
}

PersistentReq OffloadProxy::recv_init(void* b, std::size_t n,
                                      smpi::Datatype dt, int src, int tag,
                                      smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIrecv, c);
  cmd.rbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = src;
  cmd.tag = tag;
  return PersistentReq{
      static_cast<std::uint64_t>(channel_.persist_init(cmd, 0)) + 1};
}

PersistentReq OffloadProxy::psend_init(const void* b, std::size_t n,
                                       smpi::Datatype dt, int dst, int tag,
                                       std::uint32_t partitions,
                                       smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIsend, c);
  cmd.sbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = dst;
  cmd.tag = tag;
  return PersistentReq{
      static_cast<std::uint64_t>(channel_.persist_init(cmd, partitions)) + 1};
}

PersistentReq OffloadProxy::precv_init(void* b, std::size_t n,
                                       smpi::Datatype dt, int src, int tag,
                                       std::uint32_t partitions,
                                       smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIrecv, c);
  cmd.rbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = src;
  cmd.tag = tag;
  return PersistentReq{
      static_cast<std::uint64_t>(channel_.persist_init(cmd, partitions)) + 1};
}

void OffloadProxy::start(PersistentReq& r) {
  channel_.persist_start(persist_idx(r, "start"));
}
void OffloadProxy::pready(PersistentReq& r, std::uint32_t p) {
  channel_.persist_pready(persist_idx(r, "pready"), p, p);
}
void OffloadProxy::pready_range(PersistentReq& r, std::uint32_t lo,
                                std::uint32_t hi) {
  channel_.persist_pready(persist_idx(r, "pready_range"), lo, hi);
}
void OffloadProxy::wait(PersistentReq& r, smpi::Status* st) {
  channel_.persist_wait(persist_idx(r, "wait"), st);
}
bool OffloadProxy::test(PersistentReq& r, smpi::Status* st) {
  return channel_.persist_test(persist_idx(r, "test"), st);
}
void OffloadProxy::request_free(PersistentReq& r) {
  if (r.is_null()) return;
  channel_.persist_free(persist_idx(r, "request_free"));
  r = PersistentReq{};
}
void OffloadProxy::attach_continuation(PersistentReq& r, ContFn fn) {
  channel_.persist_attach_continuation(persist_idx(r, "attach_continuation"),
                                       std::move(fn));
}

void OffloadProxy::attach_continuation(PReq& r, ContFn fn) {
  if (r.is_null()) {
    fn(smpi::Status{});  // released handle: complete by contract, run inline
    return;
  }
  channel_.attach_continuation(slot_of(r), std::move(fn));
  r = PReq{};
}

void OffloadProxy::cont_wait(const std::function<bool()>& done) {
  if (channel_.in_engine()) {
    throw std::logic_error(
        san::engine_block_message("OffloadProxy::cont_wait"));
  }
  trace::Scope tsc("cont:wait", "offload");
  // The engine fiber runs the continuations; this thread only sleeps on the
  // completion doorbell (same snapshot-then-wait pattern as waitall). When
  // the waiter IS the engine (a callback calling Event::wait) this would
  // self-deadlock — the engine forbids it.
  while (!done()) {
    const std::uint64_t seen = channel_.completions().count();
    if (done()) break;
    channel_.completions().wait_beyond(seen);
  }
}

smpi::Win OffloadProxy::win_create(void* base, std::size_t bytes, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kWinCreate, c);
  cmd.rbuf = base;
  cmd.count = bytes;
  smpi::Win out;
  cmd.win_out = &out;
  channel_.wait_done(channel_.submit(cmd));
  return out;
}
void OffloadProxy::win_free(smpi::Win w) {
  Command cmd = base_cmd(CmdOp::kWinFree, smpi::kCommWorld);
  cmd.win = w;
  channel_.wait_done(channel_.submit(cmd));
}
void OffloadProxy::put(const void* origin, std::size_t bytes, int target,
                       std::size_t target_offset, smpi::Win w) {
  Command cmd = base_cmd(CmdOp::kPut, smpi::kCommWorld);
  cmd.sbuf = origin;
  cmd.count = bytes;
  cmd.peer = target;
  cmd.offset = target_offset;
  cmd.win = w;
  // Fire-and-forget at the MPI level: the engine completes the proxy slot as
  // soon as the put is injected; remote completion is the fence's job.
  channel_.wait_done(channel_.submit(cmd));
}
void OffloadProxy::get(void* origin, std::size_t bytes, int target,
                       std::size_t target_offset, smpi::Win w) {
  Command cmd = base_cmd(CmdOp::kGet, smpi::kCommWorld);
  cmd.rbuf = origin;
  cmd.count = bytes;
  cmd.peer = target;
  cmd.offset = target_offset;
  cmd.win = w;
  channel_.wait_done(channel_.submit(cmd));
}
void OffloadProxy::fence(smpi::Win w) {
  Command cmd = base_cmd(CmdOp::kIfence, smpi::kCommWorld);
  cmd.win = w;
  channel_.wait_done(channel_.submit(cmd));
}

// ---------------------------------------------------------------- factory ----

std::unique_ptr<Proxy> make_proxy(Approach a, smpi::RankCtx& rc) {
  switch (a) {
    case Approach::kBaseline:
      return std::make_unique<DirectProxy>(rc);
    case Approach::kIprobe:
      return std::make_unique<IprobeProxy>(rc);
    case Approach::kCommSelf:
      return std::make_unique<CommSelfProxy>(rc);
    case Approach::kOffload:
      return std::make_unique<OffloadProxy>(rc);
  }
  throw std::logic_error("unknown approach");
}

std::unique_ptr<Proxy> make_proxy(Approach a, smpi::RankCtx& rc,
                                  const ProxyOptions& opts) {
  if (a == Approach::kOffload) return std::make_unique<OffloadProxy>(rc, opts);
  return make_proxy(a, rc);  // tuning only applies to the offload channel
}

}  // namespace core
