#include "core/proxy.hpp"

#include <stdexcept>

#include "mpi/cluster.hpp"

namespace core {

const char* approach_name(Approach a) {
  switch (a) {
    case Approach::kBaseline:
      return "baseline";
    case Approach::kIprobe:
      return "iprobe";
    case Approach::kCommSelf:
      return "comm-self";
    case Approach::kOffload:
      return "offload";
  }
  return "?";
}

Approach approach_from_string(const std::string& s) {
  if (s == "baseline") return Approach::kBaseline;
  if (s == "iprobe") return Approach::kIprobe;
  if (s == "commself" || s == "comm-self") return Approach::kCommSelf;
  if (s == "offload") return Approach::kOffload;
  throw std::invalid_argument("unknown approach: " + s);
}

smpi::ThreadLevel required_thread_level(Approach a) {
  // comm-self needs concurrent MPI calls (progress thread + master); the
  // others drive MPI from a single thread.
  return a == Approach::kCommSelf ? smpi::ThreadLevel::kMultiple
                                  : smpi::ThreadLevel::kFunneled;
}

// ------------------------------------------------------- default blocking ----

void Proxy::send(const void* b, std::size_t n, smpi::Datatype dt, int dst,
                 int tag, smpi::Comm c) {
  PReq r = isend(b, n, dt, dst, tag, c);
  wait(r);
}

void Proxy::recv(void* b, std::size_t n, smpi::Datatype dt, int src, int tag,
                 smpi::Comm c, smpi::Status* st) {
  PReq r = irecv(b, n, dt, src, tag, c);
  wait(r, st);
}

void Proxy::waitall(std::span<PReq> rs) {
  for (PReq& r : rs) wait(r);
}

void Proxy::barrier(smpi::Comm c) {
  PReq r = ibarrier(c);
  wait(r);
}

void Proxy::bcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                  smpi::Comm c) {
  PReq r = ibcast(b, n, dt, root, c);
  wait(r);
}

void Proxy::reduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                   smpi::Op op, int root, smpi::Comm c) {
  PReq rq = ireduce(s, r, n, dt, op, root, c);
  wait(rq);
}

void Proxy::allreduce(const void* s, void* r, std::size_t n, smpi::Datatype dt,
                      smpi::Op op, smpi::Comm c) {
  PReq rq = iallreduce(s, r, n, dt, op, c);
  wait(rq);
}

void Proxy::alltoall(const void* s, void* r, std::size_t n_per,
                     smpi::Datatype dt, smpi::Comm c) {
  PReq rq = ialltoall(s, r, n_per, dt, c);
  wait(rq);
}

void Proxy::allgather(const void* s, void* r, std::size_t n_per,
                      smpi::Datatype dt, smpi::Comm c) {
  PReq rq = iallgather(s, r, n_per, dt, c);
  wait(rq);
}

smpi::Win Proxy::win_create(void* base, std::size_t bytes, smpi::Comm c) {
  return rc_.win_create(base, bytes, c);
}
void Proxy::win_free(smpi::Win w) { rc_.win_free(w); }
void Proxy::put(const void* origin, std::size_t bytes, int target,
                std::size_t target_offset, smpi::Win w) {
  rc_.put(origin, bytes, target, target_offset, w);
}
void Proxy::get(void* origin, std::size_t bytes, int target,
                std::size_t target_offset, smpi::Win w) {
  rc_.get(origin, bytes, target, target_offset, w);
}
void Proxy::fence(smpi::Win w) { rc_.win_fence(w); }

// ------------------------------------------------------------ DirectProxy ----

namespace {
PReq wrap(smpi::Request r) { return PReq{static_cast<std::uint64_t>(r.idx)}; }
smpi::Request unwrap(PReq r) { return smpi::Request{static_cast<int>(r.v)}; }
}  // namespace

PReq DirectProxy::isend(const void* b, std::size_t n, smpi::Datatype dt,
                        int dst, int tag, smpi::Comm c) {
  return wrap(rc_.isend(b, n, dt, dst, tag, c));
}
PReq DirectProxy::irecv(void* b, std::size_t n, smpi::Datatype dt, int src,
                        int tag, smpi::Comm c) {
  return wrap(rc_.irecv(b, n, dt, src, tag, c));
}
void DirectProxy::wait(PReq& r, smpi::Status* st) {
  smpi::Request rq = unwrap(r);
  rc_.wait(rq, st);
  r = wrap(rq);
}
bool DirectProxy::test(PReq& r, smpi::Status* st) {
  smpi::Request rq = unwrap(r);
  const bool done = rc_.test(rq, st);
  r = wrap(rq);
  return done;
}
void DirectProxy::waitall(std::span<PReq> rs) {
  std::vector<smpi::Request> reqs;
  reqs.reserve(rs.size());
  for (PReq r : rs) reqs.push_back(unwrap(r));
  rc_.waitall(reqs);
  for (std::size_t i = 0; i < rs.size(); ++i) rs[i] = wrap(reqs[i]);
}
PReq DirectProxy::ibarrier(smpi::Comm c) { return wrap(rc_.ibarrier(c)); }
PReq DirectProxy::ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                         smpi::Comm c) {
  return wrap(rc_.ibcast(b, n, dt, root, c));
}
PReq DirectProxy::ireduce(const void* s, void* r, std::size_t n,
                          smpi::Datatype dt, smpi::Op op, int root,
                          smpi::Comm c) {
  return wrap(rc_.ireduce(s, r, n, dt, op, root, c));
}
PReq DirectProxy::iallreduce(const void* s, void* r, std::size_t n,
                             smpi::Datatype dt, smpi::Op op, smpi::Comm c) {
  return wrap(rc_.iallreduce(s, r, n, dt, op, c));
}
PReq DirectProxy::ialltoall(const void* s, void* r, std::size_t n_per,
                            smpi::Datatype dt, smpi::Comm c) {
  return wrap(rc_.ialltoall(s, r, n_per, dt, c));
}
PReq DirectProxy::iallgather(const void* s, void* r, std::size_t n_per,
                             smpi::Datatype dt, smpi::Comm c) {
  return wrap(rc_.iallgather(s, r, n_per, dt, c));
}

// ------------------------------------------------------------ IprobeProxy ----

void IprobeProxy::progress_hint() {
  rc_.iprobe(smpi::kAnySource, smpi::kAnyTag, smpi::kCommWorld, nullptr);
}

// ---------------------------------------------------------- CommSelfProxy ----

void CommSelfProxy::start() {
  if (rc_.thread_level() != smpi::ThreadLevel::kMultiple) {
    throw std::logic_error("comm-self requires MPI_THREAD_MULTIPLE");
  }
  // Duplicate COMM_SELF (purely local) and park a thread in a blocking
  // receive on it. The matching send is only posted by stop().
  progress_comm_ = rc_.comm_dup(smpi::kCommSelf);
  running_ = true;
  smpi::RankCtx* rc = &rc_;
  auto* self = this;
  rc_.cluster().spawn_on(rc_.rank(), "rank" + std::to_string(rc_.rank()) + ".commself",
                         [rc, self]() {
                           rc->recv(&self->recv_token_, 1, smpi::Datatype::kByte,
                                    0, 0, self->progress_comm_, nullptr);
                           self->running_ = false;
                         });
}

void CommSelfProxy::stop() {
  if (!running_) return;
  // Unblock the progress thread by satisfying its receive.
  stop_token_ = 1;
  rc_.send(&stop_token_, 1, smpi::Datatype::kByte, 0, 0, progress_comm_);
  // Let the progress fiber observe completion and exit.
  while (running_) sim::advance(sim::Time::from_ns(100));
}

// ----------------------------------------------------------- OffloadProxy ----

OffloadProxy::OffloadProxy(smpi::RankCtx& rc, std::size_t ring_capacity,
                           std::uint32_t pool_capacity)
    : Proxy(rc), channel_(rc, ring_capacity, pool_capacity) {}

void OffloadProxy::start() {
  auto* ch = &channel_;
  engine_fiber_ = &rc_.cluster().spawn_on(
      rc_.rank(), "rank" + std::to_string(rc_.rank()) + ".offload",
      [ch]() { ch->engine_main(); });
}

void OffloadProxy::stop() {
  channel_.shutdown();
  while (engine_fiber_ != nullptr && !engine_fiber_->done()) {
    sim::advance(sim::Time::from_ns(100));
  }
}

namespace {
Command base_cmd(CmdOp op, smpi::Comm c) {
  Command cmd;
  cmd.op = op;
  cmd.comm = c;
  return cmd;
}
}  // namespace

PReq OffloadProxy::isend(const void* b, std::size_t n, smpi::Datatype dt,
                         int dst, int tag, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIsend, c);
  cmd.sbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = dst;
  cmd.tag = tag;
  return PReq{channel_.submit(cmd)};
}
PReq OffloadProxy::irecv(void* b, std::size_t n, smpi::Datatype dt, int src,
                         int tag, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIrecv, c);
  cmd.rbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = src;
  cmd.tag = tag;
  return PReq{channel_.submit(cmd)};
}
void OffloadProxy::wait(PReq& r, smpi::Status* st) {
  channel_.wait_done(static_cast<std::uint32_t>(r.v), st);
}
bool OffloadProxy::test(PReq& r, smpi::Status* st) {
  return channel_.test_done(static_cast<std::uint32_t>(r.v), st);
}
PReq OffloadProxy::ibarrier(smpi::Comm c) {
  return PReq{channel_.submit(base_cmd(CmdOp::kIbarrier, c))};
}
PReq OffloadProxy::ibcast(void* b, std::size_t n, smpi::Datatype dt, int root,
                          smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIbcast, c);
  cmd.rbuf = b;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.peer = root;
  return PReq{channel_.submit(cmd)};
}
PReq OffloadProxy::ireduce(const void* s, void* r, std::size_t n,
                           smpi::Datatype dt, smpi::Op op, int root,
                           smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIreduce, c);
  cmd.sbuf = s;
  cmd.rbuf = r;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.rop = op;
  cmd.peer = root;
  return PReq{channel_.submit(cmd)};
}
PReq OffloadProxy::iallreduce(const void* s, void* r, std::size_t n,
                              smpi::Datatype dt, smpi::Op op, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIallreduce, c);
  cmd.sbuf = s;
  cmd.rbuf = r;
  cmd.count = n;
  cmd.dtype = dt;
  cmd.rop = op;
  return PReq{channel_.submit(cmd)};
}
PReq OffloadProxy::ialltoall(const void* s, void* r, std::size_t n_per,
                             smpi::Datatype dt, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIalltoall, c);
  cmd.sbuf = s;
  cmd.rbuf = r;
  cmd.count = n_per;
  cmd.dtype = dt;
  return PReq{channel_.submit(cmd)};
}
PReq OffloadProxy::iallgather(const void* s, void* r, std::size_t n_per,
                              smpi::Datatype dt, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kIallgather, c);
  cmd.sbuf = s;
  cmd.rbuf = r;
  cmd.count = n_per;
  cmd.dtype = dt;
  return PReq{channel_.submit(cmd)};
}

smpi::Win OffloadProxy::win_create(void* base, std::size_t bytes, smpi::Comm c) {
  Command cmd = base_cmd(CmdOp::kWinCreate, c);
  cmd.rbuf = base;
  cmd.count = bytes;
  smpi::Win out;
  cmd.win_out = &out;
  channel_.wait_done(channel_.submit(cmd));
  return out;
}
void OffloadProxy::win_free(smpi::Win w) {
  Command cmd = base_cmd(CmdOp::kWinFree, smpi::kCommWorld);
  cmd.win = w;
  channel_.wait_done(channel_.submit(cmd));
}
void OffloadProxy::put(const void* origin, std::size_t bytes, int target,
                       std::size_t target_offset, smpi::Win w) {
  Command cmd = base_cmd(CmdOp::kPut, smpi::kCommWorld);
  cmd.sbuf = origin;
  cmd.count = bytes;
  cmd.peer = target;
  cmd.offset = target_offset;
  cmd.win = w;
  // Fire-and-forget at the MPI level: the engine completes the proxy slot as
  // soon as the put is injected; remote completion is the fence's job.
  channel_.wait_done(channel_.submit(cmd));
}
void OffloadProxy::get(void* origin, std::size_t bytes, int target,
                       std::size_t target_offset, smpi::Win w) {
  Command cmd = base_cmd(CmdOp::kGet, smpi::kCommWorld);
  cmd.rbuf = origin;
  cmd.count = bytes;
  cmd.peer = target;
  cmd.offset = target_offset;
  cmd.win = w;
  channel_.wait_done(channel_.submit(cmd));
}
void OffloadProxy::fence(smpi::Win w) {
  Command cmd = base_cmd(CmdOp::kIfence, smpi::kCommWorld);
  cmd.win = w;
  channel_.wait_done(channel_.submit(cmd));
}

// ---------------------------------------------------------------- factory ----

std::unique_ptr<Proxy> make_proxy(Approach a, smpi::RankCtx& rc) {
  switch (a) {
    case Approach::kBaseline:
      return std::make_unique<DirectProxy>(rc);
    case Approach::kIprobe:
      return std::make_unique<IprobeProxy>(rc);
    case Approach::kCommSelf:
      return std::make_unique<CommSelfProxy>(rc);
    case Approach::kOffload:
      return std::make_unique<OffloadProxy>(rc);
  }
  throw std::logic_error("unknown approach");
}

}  // namespace core
