// Lock-free pool of proxy MPI_Request objects (paper Section 3.1/3.3).
//
// A nonblocking offloaded call must return a request handle before the
// offload thread has issued the real MPI call, so the library hands out
// slots from this pre-allocated pool; the slot index *is* the application's
// MPI_Request. The free list is an array-based Treiber stack whose head
// packs a 32-bit ABA tag next to the 32-bit slot index, making alloc/free
// safe for concurrent application threads (MPI_THREAD_MULTIPLE).
//
// Completion protocol: the offload thread writes the Status, then stores
// `done` with release; application threads spin on `done` with acquire.
//
// Memory-order inventory (minimal; the src/check/ mutation suite proves each
// remaining acquire/release is load-bearing — weakening any one of them to
// relaxed produces a detectable race or pool corruption):
//  * alloc: initial head load (acquire) — alloc dereferences
//    slots_[idx].next *before* its CAS, so the head value must come with the
//    freeing thread's writes (including `next`) already visible; an acquire
//    at the CAS cannot retroactively order the earlier deref.
//  * alloc: CAS (acquire success / acquire failure) — the failure load feeds
//    the retry's next-deref exactly like the initial load. No release side:
//    alloc publishes nothing through `head_`; the slot's contents are
//    published later via the done-flag protocol (C++20 release sequences
//    keep the chain intact through this relaxed-release RMW).
//  * free: CAS (release success / relaxed failure) — the release is the
//    ownership handoff: it publishes the `next` link and everything the
//    owner did with the slot to the next allocator. The initial head load
//    and the failure load only feed the packed *value*, which the CAS
//    itself validates, so they are relaxed.
//  * complete: done store (release) publishes the Status payload.
//  * done: done load (acquire) makes the Status safe to read.
//  * rearm: done store (relaxed) — quiescent between generations of a
//    persistent slot by construction (see rearm()).
//
// memorder-audit: relaxed=9 acquire=5 release=2 acq_rel=0 seq_cst=0
// (tools/check_memorder.py fails CI when this line disagrees with the
// std::memory_order_* tokens actually used below — update both together.)
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/atomics_policy.hpp"
#include "mpi/types.hpp"

namespace core {

template <typename Atomics = StdAtomics>
class RequestPoolT {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  explicit RequestPoolT(std::uint32_t capacity) : slots_(capacity) {
    for (std::uint32_t i = 0; i < capacity; ++i) {
      Atomics::set_name(slots_[i].done, "pool.done", i);
      Atomics::set_name(slots_[i].status, "pool.status", i);
      Atomics::set_name(slots_[i].next, "pool.next", i);
      slots_[i].next.store(i + 1 < capacity ? i + 1 : kNil,
                           std::memory_order_relaxed);
    }
    Atomics::set_name(head_, "pool.head");
    head_.store(pack(0, 0), std::memory_order_relaxed);
  }

  RequestPoolT(const RequestPoolT&) = delete;
  RequestPoolT& operator=(const RequestPoolT&) = delete;

  /// Pop a free slot; returns kNil when exhausted.
  std::uint32_t alloc() {
    std::uint64_t h = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t idx = index_of(h);
      if (idx == kNil) return kNil;
      const std::uint32_t next = slots_[idx].next.load(std::memory_order_relaxed);
      const std::uint64_t nh = pack(next, tag_of(h) + 1);
      if (head_.compare_exchange_weak(h, nh, std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        slots_[idx].done.store(0, std::memory_order_relaxed);
        slots_[idx].status.ref_w() = smpi::Status{};
        return idx;
      }
    }
  }

  /// Return a slot to the pool. The caller must own it (completed request).
  void free(std::uint32_t idx) {
    if (idx >= slots_.size()) throw std::out_of_range("RequestPool::free");
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      slots_[idx].next.store(index_of(h), std::memory_order_relaxed);
      const std::uint64_t nh = pack(idx, tag_of(h) + 1);
      if (head_.compare_exchange_weak(h, nh, std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Offload-thread side: publish completion.
  void complete(std::uint32_t idx, const smpi::Status& st) {
    slots_[idx].status.ref_w() = st;
    slots_[idx].done.store(1, std::memory_order_release);
  }

  /// Persistent re-arm: clear the done flag of a slot the caller owns
  /// between generations. Not part of the concurrent protocol — the previous
  /// generation's completion was consumed and the next start command has not
  /// been published, so nothing else touches the slot and relaxed suffices;
  /// the lane/ring publish of the start command is the release edge that
  /// hands the slot back to the engine.
  void rearm(std::uint32_t idx) {
    slots_[idx].done.store(0, std::memory_order_relaxed);
    slots_[idx].status.ref_w() = smpi::Status{};
  }

  /// Application side: has the request completed?
  [[nodiscard]] bool done(std::uint32_t idx) const {
    return slots_[idx].done.load(std::memory_order_acquire) != 0;
  }
  [[nodiscard]] const smpi::Status& status(std::uint32_t idx) const {
    return slots_[idx].status.ref_r();
  }

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Number of free slots (O(n); for tests only, quiescent state).
  [[nodiscard]] std::uint32_t free_count() const {
    std::uint32_t n = 0;
    std::uint32_t idx = index_of(head_.load(std::memory_order_acquire));
    while (idx != kNil) {
      ++n;
      idx = slots_[idx].next.load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  struct Slot {
    typename Atomics::template atomic<std::uint32_t> done{0};
    typename Atomics::template var<smpi::Status> status{};
    typename Atomics::template atomic<std::uint32_t> next{kNil};
  };

  static std::uint64_t pack(std::uint32_t idx, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(tag) << 32) | idx;
  }
  static std::uint32_t index_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h & 0xffffffffu);
  }
  static std::uint32_t tag_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 32);
  }

  std::vector<Slot> slots_;
  alignas(64) typename Atomics::template atomic<std::uint64_t> head_{0};
};

/// Production request pool: std::atomic, zero instrumentation.
using RequestPool = RequestPoolT<>;

}  // namespace core
